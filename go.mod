module marketscope

go 1.22
