package libdetect

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"marketscope/internal/dex"
	"marketscope/internal/signing"
)

// Detection is one third-party library found in an app.
type Detection struct {
	// Prefix is the package prefix the library occupies inside the app.
	// When an obfuscator renamed the package, this is the renamed prefix;
	// the Feature hash is what identified it.
	Prefix string
	// Library is the catalog entry when the library is known; for
	// cluster-learned but unlabeled libraries Name is "unknown" and the
	// category is empty.
	Library Library
	// Known reports whether the detection was resolved to a catalog entry.
	Known bool
	// Classes is the number of classes attributed to the library.
	Classes int
	// Feature is the hex feature hash that matched (empty for pure
	// catalog-prefix matches).
	Feature string
}

// IsAd reports whether the detection is an advertising library.
func (d Detection) IsAd() bool { return d.Known && d.Library.IsAd() }

// prefixDepth is the package depth at which candidate library prefixes are
// extracted. Depth 2 captures "com.umeng" and "com.baidu"; nested catalog
// prefixes such as "com.google.ads" are handled by also extracting depth 3.
const (
	prefixDepthCoarse = 2
	prefixDepthFine   = 3
	// minFeatureAPIs is the minimum number of API references a prefix needs
	// before it can serve as a clustering feature; tiny prefixes carry too
	// little signal and would collide.
	minFeatureAPIs = 3
)

// FeatureOf computes the obfuscation-resilient feature of a package prefix
// within an app: the SHA-256 of the sorted multiset of framework API calls
// made by classes under that prefix. Renaming packages or classes does not
// change the feature; changing behaviour does.
func FeatureOf(code *dex.File, prefix string) (string, int) {
	apiCounts := map[string]int{}
	classes := 0
	for _, c := range code.Classes {
		if !dex.UnderPrefix(c.Name, prefix) {
			continue
		}
		classes++
		for _, m := range c.Methods {
			for _, call := range m.APICalls {
				apiCounts[call]++
			}
		}
	}
	if classes == 0 {
		return "", 0
	}
	calls := make([]string, 0, len(apiCounts))
	for call := range apiCounts {
		calls = append(calls, call)
	}
	sort.Strings(calls)
	h := sha256.New()
	var buf [4]byte
	for _, call := range calls {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(call)))
		h.Write(buf[:])
		h.Write([]byte(call))
		binary.LittleEndian.PutUint32(buf[:], uint32(apiCounts[call]))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)), classes
}

// candidatePrefixes returns the package prefixes of an app worth considering
// as library homes, at both coarse and fine depth, excluding the app's own
// package prefix (host code is not a third-party library).
func candidatePrefixes(code *dex.File, ownPackage string) []string {
	set := map[string]bool{}
	ownCoarse := dex.PackagePrefix(ownPackage, prefixDepthCoarse)
	for _, pc := range code.TopLevelPackages(prefixDepthCoarse) {
		if pc.Package == ownCoarse || pc.Package == ownPackage {
			continue
		}
		set[pc.Package] = true
	}
	for _, pc := range code.TopLevelPackages(prefixDepthFine) {
		if pc.Package == ownPackage || dex.PackagePrefix(pc.Package, prefixDepthCoarse) == ownCoarse {
			continue
		}
		set[pc.Package] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// FeatureDB is the learned library feature database: feature hash ->
// observation statistics. It plays the role of LibRadar's pre-computed
// feature dataset, which the paper rebuilt from its own 6 M-app corpus
// because the published one was stale and Google-Play-centric.
type FeatureDB struct {
	// MinApps is the minimum number of distinct apps a feature must appear
	// in to be considered a library.
	MinApps int
	// MinDevelopers is the minimum number of distinct developers; code
	// recurring across unrelated developers is almost certainly a library
	// rather than shared in-house code.
	MinDevelopers int

	features map[string]*featureStats
}

type featureStats struct {
	apps       int
	developers map[signing.Fingerprint]bool
	prefixes   map[string]int
}

// NewFeatureDB creates an empty feature database with the given clustering
// thresholds. Non-positive thresholds default to 3 apps from 2 developers.
func NewFeatureDB(minApps, minDevelopers int) *FeatureDB {
	if minApps <= 0 {
		minApps = 3
	}
	if minDevelopers <= 0 {
		minDevelopers = 2
	}
	return &FeatureDB{
		MinApps:       minApps,
		MinDevelopers: minDevelopers,
		features:      make(map[string]*featureStats),
	}
}

// Observe adds one app's candidate prefixes to the database. ownPackage is
// the app's manifest package; developer is its signing identity.
func (db *FeatureDB) Observe(code *dex.File, ownPackage string, developer signing.Fingerprint) {
	for _, prefix := range candidatePrefixes(code, ownPackage) {
		feature, classes := FeatureOf(code, prefix)
		if feature == "" || classes == 0 {
			continue
		}
		if countAPIs(code, prefix) < minFeatureAPIs {
			continue
		}
		st, ok := db.features[feature]
		if !ok {
			st = &featureStats{developers: make(map[signing.Fingerprint]bool), prefixes: make(map[string]int)}
			db.features[feature] = st
		}
		st.apps++
		st.developers[developer] = true
		st.prefixes[prefix]++
	}
}

// Merge folds the observations of other into db, leaving other unchanged.
// Merging is commutative and associative — app counts add, developer sets
// union, prefix counts add — so a corpus sharded across per-worker databases
// merges to exactly the database a serial Observe loop would have built, in
// any merge order. The thresholds of db are kept; other's are ignored.
func (db *FeatureDB) Merge(other *FeatureDB) {
	if other == nil {
		return
	}
	for feature, src := range other.features {
		dst, ok := db.features[feature]
		if !ok {
			dst = &featureStats{developers: make(map[signing.Fingerprint]bool, len(src.developers)), prefixes: make(map[string]int, len(src.prefixes))}
			db.features[feature] = dst
		}
		dst.apps += src.apps
		for dev := range src.developers {
			dst.developers[dev] = true
		}
		for prefix, n := range src.prefixes {
			dst.prefixes[prefix] += n
		}
	}
}

func countAPIs(code *dex.File, prefix string) int {
	n := 0
	for _, c := range code.ClassesUnderPrefix(prefix) {
		for _, m := range c.Methods {
			n += len(m.APICalls)
		}
	}
	return n
}

// IsLibraryFeature reports whether the feature hash has been observed widely
// enough to be considered a library.
func (db *FeatureDB) IsLibraryFeature(feature string) bool {
	st, ok := db.features[feature]
	if !ok {
		return false
	}
	return st.apps >= db.MinApps && len(st.developers) >= db.MinDevelopers
}

// CanonicalPrefix returns the most common package prefix observed for a
// library feature, which recovers the original (unobfuscated) name for
// features that are usually shipped unrenamed.
func (db *FeatureDB) CanonicalPrefix(feature string) (string, bool) {
	st, ok := db.features[feature]
	if !ok {
		return "", false
	}
	best, bestCount := "", 0
	for p, n := range st.prefixes {
		if n > bestCount || (n == bestCount && p < best) {
			best, bestCount = p, n
		}
	}
	return best, best != ""
}

// NumFeatures returns the number of distinct features observed (library or
// not).
func (db *FeatureDB) NumFeatures() int { return len(db.features) }

// NumLibraries returns the number of features that qualify as libraries.
func (db *FeatureDB) NumLibraries() int {
	n := 0
	for f := range db.features {
		if db.IsLibraryFeature(f) {
			n++
		}
	}
	return n
}

// Detector combines the labeled catalog with an optional learned feature
// database. Once built it is read-only: Detect and LibraryPrefixesIn are safe
// to call from concurrent enrichment workers (the feature database must not
// receive further Observe/Merge calls while detections run).
type Detector struct {
	catalog *Catalog
	db      *FeatureDB
}

// NewDetector builds a detector. A nil catalog uses the built-in one; a nil
// db disables clustering-based detection (catalog prefixes only).
func NewDetector(catalog *Catalog, db *FeatureDB) *Detector {
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	return &Detector{catalog: catalog, db: db}
}

// Catalog returns the detector's catalog.
func (d *Detector) Catalog() *Catalog { return d.catalog }

// Detect returns the third-party libraries embedded in the app.
//
// Detection proceeds in two passes. The first matches every non-host class
// against the labeled catalog by package name (longest catalog prefix wins),
// which identifies unobfuscated copies of known libraries regardless of how
// deep their packages nest. The second pass clusters the remaining candidate
// prefixes through the learned feature database, which catches renamed copies
// of known libraries and recurring unlabeled libraries.
func (d *Detector) Detect(code *dex.File, ownPackage string) []Detection {
	var out []Detection

	// Pass 1: catalog matches by class package.
	byCatalogPrefix := map[string]*Detection{}
	matchedClasses := map[string]bool{}
	for _, c := range code.Classes {
		if ownPackage != "" && dex.UnderPrefix(c.Name, ownPackage) {
			continue
		}
		lib, ok := d.catalog.Match(dex.PackageOf(c.Name))
		if !ok {
			continue
		}
		det := byCatalogPrefix[lib.Prefix]
		if det == nil {
			det = &Detection{Prefix: lib.Prefix, Library: lib, Known: true}
			byCatalogPrefix[lib.Prefix] = det
		}
		det.Classes++
		matchedClasses[c.Name] = true
	}
	seenPrefix := map[string]bool{}
	for _, det := range byCatalogPrefix {
		det.Feature, _ = FeatureOf(code, det.Prefix)
		seenPrefix[det.Library.Prefix] = true
		out = append(out, *det)
	}

	// Pass 2: clustering over the candidate prefixes not already explained
	// by the catalog.
	for _, prefix := range candidatePrefixes(code, ownPackage) {
		classes := code.ClassesUnderPrefix(prefix)
		if len(classes) == 0 {
			continue
		}
		unmatched := 0
		for _, c := range classes {
			if !matchedClasses[c.Name] {
				unmatched++
			}
		}
		if unmatched == 0 {
			continue
		}
		feature, classCount := FeatureOf(code, prefix)
		if d.db == nil || !d.db.IsLibraryFeature(feature) {
			continue
		}
		// Cluster-learned library: try to resolve its canonical prefix to a
		// catalog entry (handles obfuscated copies of known libraries).
		det := Detection{Prefix: prefix, Classes: classCount, Feature: feature,
			Library: Library{Prefix: prefix, Name: "unknown"}}
		if canonical, ok := d.db.CanonicalPrefix(feature); ok {
			if lib, ok := d.catalog.Match(canonical); ok {
				det.Library = lib
				det.Known = true
			} else {
				det.Library = Library{Prefix: canonical, Name: "unknown"}
			}
		}
		if det.Known && seenPrefix[det.Library.Prefix] {
			continue
		}
		if det.Known {
			seenPrefix[det.Library.Prefix] = true
		}
		out = append(out, det)
	}
	// Drop unresolved coarse prefixes that merely contain a resolved
	// library (e.g. the depth-2 "com.google" candidate when
	// "com.google.ads" already matched); keeping them would double-count
	// the same classes under an "unknown" label.
	filtered := out[:0]
	for _, det := range out {
		if det.Known {
			filtered = append(filtered, det)
			continue
		}
		covered := false
		for _, other := range out {
			if other.Known && other.Prefix != det.Prefix && strings.HasPrefix(other.Prefix, det.Prefix+".") {
				covered = true
				break
			}
		}
		if !covered {
			filtered = append(filtered, det)
		}
	}
	out = filtered
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// LibraryPrefixesIn returns the in-app package prefixes occupied by detected
// libraries; the clone detector removes these before computing similarity.
func (d *Detector) LibraryPrefixesIn(code *dex.File, ownPackage string) []string {
	dets := d.Detect(code, ownPackage)
	out := make([]string, 0, len(dets))
	for _, det := range dets {
		out = append(out, det.Prefix)
	}
	return out
}

// Summary aggregates detections for one app.
type Summary struct {
	Total   int
	Ad      int
	ByName  map[string]int
	AdNames []string
}

// Summarize counts detections by type.
func Summarize(dets []Detection) Summary {
	s := Summary{ByName: map[string]int{}}
	for _, det := range dets {
		s.Total++
		name := det.Library.Name
		if name == "" {
			name = "unknown"
		}
		s.ByName[name]++
		if det.IsAd() {
			s.Ad++
			s.AdNames = append(s.AdNames, name)
		}
	}
	sort.Strings(s.AdNames)
	return s
}

// String renders the summary compactly for logs.
func (s Summary) String() string {
	return fmt.Sprintf("libraries=%d ads=%d", s.Total, s.Ad)
}
