package libdetect

import (
	"strings"
	"testing"

	"marketscope/internal/dex"
	"marketscope/internal/signing"
)

// appWithLibraries builds a dex file for a host app embedding the given
// catalog library prefixes, each with a small but distinctive API profile.
func appWithLibraries(hostPkg string, libs ...string) *dex.File {
	f := &dex.File{Classes: []dex.Class{
		{Name: hostPkg + ".MainActivity", Methods: []dex.Method{
			{Name: "onCreate", APICalls: []string{"android.app.Activity.onCreate", "android.widget.TextView.setText"}},
		}},
	}}
	for _, lib := range libs {
		f.AddClass(dex.Class{
			Name: lib + ".Core",
			Methods: []dex.Method{
				{Name: "init", APICalls: []string{
					"android.content.Context.getPackageName",
					"java.net.URL.openConnection",
					"android.net.ConnectivityManager.getActiveNetworkInfo",
					"lib." + lib + ".internalCall",
				}},
			},
		})
		f.AddClass(dex.Class{
			Name: lib + ".Helper",
			Methods: []dex.Method{
				{Name: "run", APICalls: []string{"android.os.Handler.post", "lib." + lib + ".helperCall"}},
			},
		})
	}
	return f
}

func TestCatalogLookupAndMatch(t *testing.T) {
	c := DefaultCatalog()
	if c.Size() < 40 {
		t.Fatalf("catalog too small: %d", c.Size())
	}
	if lib, ok := c.Lookup("com.umeng"); !ok || lib.Name != "Umeng" {
		t.Errorf("Lookup(com.umeng) = %+v, %v", lib, ok)
	}
	if _, ok := c.Lookup("com.nonexistent"); ok {
		t.Error("Lookup accepted unknown prefix")
	}
	if lib, ok := c.Match("com.google.ads.internal"); !ok || lib.Name != "Google AdMob" {
		t.Errorf("Match nested = %+v, %v", lib, ok)
	}
	// Longest-prefix: com.google.android.gms must win over a hypothetical
	// com.google match.
	if lib, ok := c.Match("com.google.android.gms.maps"); !ok || lib.Prefix != "com.google.android.gms" {
		t.Errorf("Match longest = %+v, %v", lib, ok)
	}
	if _, ok := c.Match("com.example.myapp"); ok {
		t.Error("Match accepted non-library package")
	}
	// No false prefix match on sibling packages.
	if _, ok := c.Match("com.umengineering.x"); ok {
		t.Error("Match matched a non-nested sibling package")
	}
}

func TestCatalogAdLibraries(t *testing.T) {
	ads := DefaultCatalog().AdLibraries()
	if len(ads) < 10 {
		t.Fatalf("too few ad libraries: %d", len(ads))
	}
	for _, l := range ads {
		if !l.IsAd() {
			t.Errorf("non-ad library %q in AdLibraries", l.Name)
		}
	}
}

func TestCatalogPrefixesSorted(t *testing.T) {
	prefixes := DefaultCatalog().Prefixes()
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i-1] > prefixes[i] {
			t.Fatal("Prefixes not sorted")
		}
	}
}

func TestFeatureOfStableUnderRenaming(t *testing.T) {
	orig := appWithLibraries("com.host.app", "com.umeng")
	renamed := orig.Clone()
	for i, c := range renamed.Classes {
		if strings.HasPrefix(c.Name, "com.umeng") {
			renamed.Classes[i].Name = strings.Replace(c.Name, "com.umeng", "a.b", 1)
		}
	}
	f1, n1 := FeatureOf(orig, "com.umeng")
	f2, n2 := FeatureOf(renamed, "a.b")
	if f1 == "" || f2 == "" {
		t.Fatal("features not computed")
	}
	if f1 != f2 {
		t.Error("feature changed under package renaming")
	}
	if n1 != n2 {
		t.Errorf("class counts differ: %d vs %d", n1, n2)
	}
	if f, n := FeatureOf(orig, "com.absent"); f != "" || n != 0 {
		t.Error("absent prefix should produce empty feature")
	}
}

func TestDetectCatalogLibraries(t *testing.T) {
	d := NewDetector(nil, nil)
	code := appWithLibraries("com.host.app", "com.umeng", "com.google.ads", "com.alipay")
	dets := d.Detect(code, "com.host.app")
	names := map[string]bool{}
	for _, det := range dets {
		if !det.Known {
			t.Errorf("catalog library not resolved: %+v", det)
		}
		names[det.Library.Name] = true
	}
	for _, want := range []string{"Umeng", "Google AdMob", "Alipay"} {
		if !names[want] {
			t.Errorf("library %q not detected (got %v)", want, names)
		}
	}
	// Host package must never be reported as a library.
	for _, det := range dets {
		if strings.HasPrefix(det.Prefix, "com.host") {
			t.Errorf("host code reported as library: %+v", det)
		}
	}
}

func TestDetectWithFeatureDBFindsRenamedLibraries(t *testing.T) {
	db := NewFeatureDB(2, 2)
	// Build a small corpus where the Umeng code appears under its real name
	// in several apps by different developers.
	for i := 0; i < 4; i++ {
		dev := signing.NewDeveloper("dev", uint64(100+i))
		code := appWithLibraries("com.corpus.app", "com.umeng")
		db.Observe(code, "com.corpus.app", dev.Fingerprint())
	}
	if db.NumLibraries() == 0 {
		t.Fatal("feature DB learned no libraries")
	}

	// A new app embeds the same code under an obfuscated prefix.
	obfuscated := appWithLibraries("com.victim.app", "com.umeng")
	for i, c := range obfuscated.Classes {
		if strings.HasPrefix(c.Name, "com.umeng") {
			obfuscated.Classes[i].Name = strings.Replace(c.Name, "com.umeng", "x.y", 1)
		}
	}
	d := NewDetector(nil, db)
	dets := d.Detect(obfuscated, "com.victim.app")
	found := false
	for _, det := range dets {
		if det.Known && det.Library.Name == "Umeng" {
			found = true
		}
	}
	if !found {
		t.Errorf("renamed Umeng not recovered via feature DB: %+v", dets)
	}
}

func TestDetectWithoutDBMissesRenamed(t *testing.T) {
	// Catalog-only detection cannot see renamed libraries; this is the gap
	// the clustering approach closes.
	obfuscated := appWithLibraries("com.victim.app", "com.umeng")
	for i, c := range obfuscated.Classes {
		if strings.HasPrefix(c.Name, "com.umeng") {
			obfuscated.Classes[i].Name = strings.Replace(c.Name, "com.umeng", "x.y", 1)
		}
	}
	d := NewDetector(nil, nil)
	for _, det := range d.Detect(obfuscated, "com.victim.app") {
		if det.Known && det.Library.Name == "Umeng" {
			t.Error("catalog-only detector should not identify renamed library")
		}
	}
}

func TestFeatureDBThresholds(t *testing.T) {
	db := NewFeatureDB(3, 2)
	devA := signing.NewDeveloper("a", 1)
	code := appWithLibraries("com.one.app", "com.umeng")
	// Seen in 3 apps but all by one developer -> not a library.
	db.Observe(code, "com.one.app", devA.Fingerprint())
	db.Observe(code, "com.one.app", devA.Fingerprint())
	db.Observe(code, "com.one.app", devA.Fingerprint())
	feature, _ := FeatureOf(code, "com.umeng")
	if db.IsLibraryFeature(feature) {
		t.Error("single-developer feature should not qualify")
	}
	devB := signing.NewDeveloper("b", 2)
	db.Observe(code, "com.one.app", devB.Fingerprint())
	if !db.IsLibraryFeature(feature) {
		t.Error("multi-developer recurring feature should qualify")
	}
	if db.IsLibraryFeature("ffff") {
		t.Error("unknown feature should not qualify")
	}
}

func TestFeatureDBDefaults(t *testing.T) {
	db := NewFeatureDB(0, -1)
	if db.MinApps != 3 || db.MinDevelopers != 2 {
		t.Errorf("defaults = %d/%d", db.MinApps, db.MinDevelopers)
	}
}

func TestCanonicalPrefix(t *testing.T) {
	db := NewFeatureDB(1, 1)
	dev := signing.NewDeveloper("d", 5)
	code := appWithLibraries("com.app.x", "com.umeng")
	db.Observe(code, "com.app.x", dev.Fingerprint())
	feature, _ := FeatureOf(code, "com.umeng")
	if p, ok := db.CanonicalPrefix(feature); !ok || p != "com.umeng" {
		t.Errorf("CanonicalPrefix = %q, %v", p, ok)
	}
	if _, ok := db.CanonicalPrefix("absent"); ok {
		t.Error("CanonicalPrefix accepted unknown feature")
	}
}

func TestSummarize(t *testing.T) {
	d := NewDetector(nil, nil)
	code := appWithLibraries("com.host.app", "com.umeng", "com.google.ads", "cn.domob")
	dets := d.Detect(code, "com.host.app")
	s := Summarize(dets)
	if s.Total != len(dets) {
		t.Errorf("Total = %d, want %d", s.Total, len(dets))
	}
	if s.Ad != 2 {
		t.Errorf("Ad = %d, want 2 (AdMob + Domob)", s.Ad)
	}
	if len(s.AdNames) != 2 {
		t.Errorf("AdNames = %v", s.AdNames)
	}
	if !strings.Contains(s.String(), "ads=2") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestLibraryPrefixesIn(t *testing.T) {
	d := NewDetector(nil, nil)
	code := appWithLibraries("com.host.app", "com.umeng", "com.alipay")
	prefixes := d.LibraryPrefixesIn(code, "com.host.app")
	if len(prefixes) != 2 {
		t.Errorf("prefixes = %v", prefixes)
	}
	stripped := code.WithoutPrefixes(prefixes)
	for _, c := range stripped.Classes {
		if strings.HasPrefix(c.Name, "com.umeng") || strings.HasPrefix(c.Name, "com.alipay") {
			t.Errorf("library class %q survived stripping", c.Name)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	d := NewDetector(nil, nil)
	code := appWithLibraries("com.host.app", "com.umeng", "com.google.ads", "com.alipay", "com.baidu", "com.facebook")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Detect(code, "com.host.app")
	}
}

func BenchmarkFeatureDBObserve(b *testing.B) {
	db := NewFeatureDB(3, 2)
	dev := signing.NewDeveloper("bench", 1)
	code := appWithLibraries("com.host.app", "com.umeng", "com.google.ads")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Observe(code, "com.host.app", dev.Fingerprint())
	}
}

// TestFeatureDBMergeMatchesSerialObserve shards a corpus of observations
// across several databases, merges them in an arbitrary order, and checks
// the result agrees with a single database that observed everything — the
// property the parallel enrichment pipeline's learn pass relies on.
func TestFeatureDBMergeMatchesSerialObserve(t *testing.T) {
	// 9 apps across 3 developers embedding overlapping libraries; thresholds
	// low enough that shared features qualify.
	type obs struct {
		code *dex.File
		pkg  string
		dev  signing.Fingerprint
	}
	var corpus []obs
	devs := []signing.Fingerprint{{1}, {2}, {3}}
	for i := 0; i < 9; i++ {
		pkg := "com.host.app" + strings.Repeat("x", i%3)
		libs := []string{"com.umeng"}
		if i%2 == 0 {
			libs = append(libs, "com.google.ads")
		}
		corpus = append(corpus, obs{appWithLibraries(pkg, libs...), pkg, devs[i%3]})
	}

	serial := NewFeatureDB(3, 2)
	for _, o := range corpus {
		serial.Observe(o.code, o.pkg, o.dev)
	}

	// Shard 9 observations over 3 databases, merge shards 2,1 into 0.
	shards := []*FeatureDB{NewFeatureDB(3, 2), NewFeatureDB(3, 2), NewFeatureDB(3, 2)}
	for i, o := range corpus {
		shards[i%3].Observe(o.code, o.pkg, o.dev)
	}
	merged := shards[0]
	merged.Merge(shards[2])
	merged.Merge(shards[1])
	merged.Merge(nil) // must be a no-op

	if merged.NumFeatures() != serial.NumFeatures() {
		t.Fatalf("NumFeatures: merged %d, serial %d", merged.NumFeatures(), serial.NumFeatures())
	}
	if merged.NumLibraries() != serial.NumLibraries() {
		t.Fatalf("NumLibraries: merged %d, serial %d", merged.NumLibraries(), serial.NumLibraries())
	}
	for feature := range serial.features {
		if merged.IsLibraryFeature(feature) != serial.IsLibraryFeature(feature) {
			t.Errorf("feature %s: IsLibraryFeature diverges", feature[:12])
		}
		mc, mok := merged.CanonicalPrefix(feature)
		sc, sok := serial.CanonicalPrefix(feature)
		if mc != sc || mok != sok {
			t.Errorf("feature %s: CanonicalPrefix %q/%v, serial %q/%v", feature[:12], mc, mok, sc, sok)
		}
		ms, ss := merged.features[feature], serial.features[feature]
		if ms.apps != ss.apps || len(ms.developers) != len(ss.developers) {
			t.Errorf("feature %s: stats diverge (apps %d/%d, devs %d/%d)",
				feature[:12], ms.apps, ss.apps, len(ms.developers), len(ss.developers))
		}
	}
	// Detections driven by the merged DB must match the serial DB's.
	det := NewDetector(nil, merged).Detect(corpus[0].code, corpus[0].pkg)
	want := NewDetector(nil, serial).Detect(corpus[0].code, corpus[0].pkg)
	if len(det) != len(want) {
		t.Fatalf("detections: merged %d, serial %d", len(det), len(want))
	}
	for i := range det {
		if det[i] != want[i] {
			t.Errorf("detection %d diverges: %+v vs %+v", i, det[i], want[i])
		}
	}
}
