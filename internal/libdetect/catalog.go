// Package libdetect identifies third-party libraries embedded in apps,
// following the clustering-based approach of LibRadar that the paper applies
// to its 6 M-app corpus (Section 4.4).
//
// Two complementary mechanisms are provided:
//
//   - a labeled catalog of well-known libraries (the manually labeled "top
//     2,000 libraries" of the paper, here a representative subset keyed by
//     package prefix and grouped into ad network, analytics, social
//     networking, development, payment, game engine and map categories), and
//
//   - a corpus-wide clustering detector that learns library features (the
//     multiset of framework API calls under a package prefix) from how often
//     the same feature recurs across apps from unrelated developers. The
//     learned features recognize libraries even when the package prefix has
//     been renamed by an obfuscator, which is what made LibRadar
//     "obfuscation-resilient".
package libdetect

import "sort"

// Category describes the purpose of a third-party library.
type Category string

// Library categories; these match the five groups in Section 4.4 plus the
// game-engine and map labels used in Table 2.
const (
	CategoryAd          Category = "Advertisement"
	CategoryAnalytics   Category = "Analytics"
	CategorySocial      Category = "Social Networking"
	CategoryDevelopment Category = "Development"
	CategoryPayment     Category = "Payment"
	CategoryGameEngine  Category = "Game Engine"
	CategoryMap         Category = "Map"
)

// Library is one catalog entry.
type Library struct {
	// Prefix is the package prefix that identifies the library in
	// unobfuscated apps, e.g. "com.google.ads".
	Prefix string
	// Name is the human-readable library or vendor name.
	Name string
	// Category is the library's primary purpose.
	Category Category
	// ChineseMarket marks libraries specific to the Chinese ecosystem
	// (WeChat, Alipay, Umeng, ...), which the paper contrasts with the
	// Google-centric libraries dominating Google Play.
	ChineseMarket bool
}

// IsAd reports whether the library is an advertising SDK.
func (l Library) IsAd() bool { return l.Category == CategoryAd }

// builtinCatalog is the labeled library list. Prefixes must not overlap
// except by true package nesting.
var builtinCatalog = []Library{
	// Google / global libraries (dominant in Google Play, Table 2 top).
	{Prefix: "com.google.android.gms", Name: "Google Mobile Services", Category: CategoryDevelopment},
	{Prefix: "com.google.ads", Name: "Google AdMob", Category: CategoryAd},
	{Prefix: "com.google.firebase", Name: "Firebase", Category: CategoryDevelopment},
	{Prefix: "com.google.gson", Name: "Gson", Category: CategoryDevelopment},
	{Prefix: "com.google.analytics", Name: "Google Analytics", Category: CategoryAnalytics},
	{Prefix: "com.android.vending", Name: "Google Play Billing", Category: CategoryPayment},
	{Prefix: "com.facebook", Name: "Facebook SDK", Category: CategorySocial},
	{Prefix: "org.apache", Name: "Apache Commons/HttpClient", Category: CategoryDevelopment},
	{Prefix: "com.squareup", Name: "Square (OkHttp/Retrofit/Picasso)", Category: CategoryDevelopment},
	{Prefix: "com.unity3d", Name: "Unity", Category: CategoryGameEngine},
	{Prefix: "org.fmod", Name: "FMOD", Category: CategoryGameEngine},
	{Prefix: "com.nostra13", Name: "Universal Image Loader", Category: CategoryDevelopment},
	{Prefix: "com.flurry", Name: "Flurry Analytics", Category: CategoryAnalytics},
	{Prefix: "com.mopub", Name: "MoPub", Category: CategoryAd},
	{Prefix: "com.inmobi", Name: "InMobi", Category: CategoryAd},
	{Prefix: "com.startapp", Name: "StartApp", Category: CategoryAd},
	{Prefix: "com.airpush", Name: "Airpush", Category: CategoryAd},
	{Prefix: "com.revmob", Name: "RevMob", Category: CategoryAd},
	{Prefix: "com.appsflyer", Name: "AppsFlyer", Category: CategoryAnalytics},
	{Prefix: "com.crashlytics", Name: "Crashlytics", Category: CategoryDevelopment},
	{Prefix: "com.twitter.sdk", Name: "Twitter Kit", Category: CategorySocial},
	{Prefix: "org.cocos2d", Name: "Cocos2d", Category: CategoryGameEngine},
	{Prefix: "com.badlogic.gdx", Name: "libGDX", Category: CategoryGameEngine},
	{Prefix: "com.leadbolt", Name: "Leadbolt", Category: CategoryAd},

	// Chinese-market libraries (Table 2 bottom half).
	{Prefix: "com.tencent.mm", Name: "Tencent WeChat SDK", Category: CategorySocial, ChineseMarket: true},
	{Prefix: "com.tencent.open", Name: "Tencent Open Platform", Category: CategorySocial, ChineseMarket: true},
	{Prefix: "com.tencent.bugly", Name: "Tencent Bugly", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "com.baidu", Name: "Baidu SDK (Map/Push)", Category: CategoryMap, ChineseMarket: true},
	{Prefix: "com.umeng", Name: "Umeng", Category: CategoryAnalytics, ChineseMarket: true},
	{Prefix: "com.alipay", Name: "Alipay", Category: CategoryPayment, ChineseMarket: true},
	{Prefix: "com.unionpay", Name: "UnionPay", Category: CategoryPayment, ChineseMarket: true},
	{Prefix: "com.qq.e", Name: "Tencent GDT Ads", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.sina.weibo", Name: "Sina Weibo SDK", Category: CategorySocial, ChineseMarket: true},
	{Prefix: "com.amap.api", Name: "AMap (Gaode)", Category: CategoryMap, ChineseMarket: true},
	{Prefix: "com.xiaomi.mipush", Name: "Xiaomi Push", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "com.huawei.hms", Name: "Huawei Mobile Services", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "com.getui", Name: "Getui Push", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "com.jpush", Name: "JPush", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "cn.jpush", Name: "JPush (cn)", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "cn.domob", Name: "Domob Ads", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.adwo", Name: "Adwo", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "net.youmi", Name: "Youmi Ads", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.kuguo.sdk", Name: "Kuguo Ads", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.dowgin", Name: "Dowgin Ads", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.waps", Name: "Wanpu Ads", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.kyview", Name: "AdView Aggregator", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.qihoo360", Name: "Qihoo 360 SDK", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "com.qihoo.jiagu", Name: "360 Jiagubao Packer", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "com.bytedance", Name: "Bytedance SDK", Category: CategoryAd, ChineseMarket: true},
	{Prefix: "com.iflytek", Name: "iFlytek Voice", Category: CategoryDevelopment, ChineseMarket: true},
	{Prefix: "com.pingplusplus", Name: "Ping++ Payment", Category: CategoryPayment, ChineseMarket: true},
	{Prefix: "com.commplat", Name: "Commplat Pay", Category: CategoryPayment, ChineseMarket: true},
	{Prefix: "com.smspay", Name: "SMS Pay", Category: CategoryPayment, ChineseMarket: true},
}

// Catalog is an immutable, prefix-indexed library catalog.
type Catalog struct {
	libs     []Library
	byPrefix map[string]Library
}

// DefaultCatalog returns the built-in labeled catalog.
func DefaultCatalog() *Catalog {
	return NewCatalog(builtinCatalog)
}

// NewCatalog builds a catalog from the given entries.
func NewCatalog(libs []Library) *Catalog {
	c := &Catalog{
		libs:     append([]Library(nil), libs...),
		byPrefix: make(map[string]Library, len(libs)),
	}
	for _, l := range libs {
		c.byPrefix[l.Prefix] = l
	}
	sort.Slice(c.libs, func(i, j int) bool { return c.libs[i].Prefix < c.libs[j].Prefix })
	return c
}

// Size returns the number of catalog entries.
func (c *Catalog) Size() int { return len(c.libs) }

// Libraries returns all entries sorted by prefix.
func (c *Catalog) Libraries() []Library { return append([]Library(nil), c.libs...) }

// Lookup finds the catalog entry whose prefix matches the given package
// prefix exactly.
func (c *Catalog) Lookup(prefix string) (Library, bool) {
	l, ok := c.byPrefix[prefix]
	return l, ok
}

// Match finds the catalog entry whose prefix is the longest one that the
// given package name (or class package) falls under.
func (c *Catalog) Match(pkg string) (Library, bool) {
	best := Library{}
	found := false
	for _, l := range c.libs {
		if underPrefix(pkg, l.Prefix) && len(l.Prefix) > len(best.Prefix) {
			best = l
			found = true
		}
	}
	return best, found
}

// AdLibraries returns the advertising entries of the catalog.
func (c *Catalog) AdLibraries() []Library {
	var out []Library
	for _, l := range c.libs {
		if l.IsAd() {
			out = append(out, l)
		}
	}
	return out
}

// Prefixes returns all catalog prefixes sorted. The clone detector uses this
// set to strip library code before comparing apps.
func (c *Catalog) Prefixes() []string {
	out := make([]string, 0, len(c.libs))
	for _, l := range c.libs {
		out = append(out, l.Prefix)
	}
	sort.Strings(out)
	return out
}

// underPrefix reports whether pkg equals prefix or is nested below it.
func underPrefix(pkg, prefix string) bool {
	if len(pkg) < len(prefix) || pkg[:len(prefix)] != prefix {
		return false
	}
	return len(pkg) == len(prefix) || pkg[len(prefix)] == '.'
}
