// Package core is the public orchestration API of marketscope: it wires the
// synthetic ecosystem generator, the market simulators, the crawler and every
// analysis into a single reproducible study run, and exposes an experiment
// registry mapping each of the paper's tables and figures to its rendered
// reproduction.
//
// A typical use looks like:
//
//	cfg := core.DefaultConfig()
//	results, err := core.Run(context.Background(), cfg)
//	if err != nil { ... }
//	results.WriteReport(os.Stdout)
//
// Run executes the full pipeline: generate the ground-truth ecosystem,
// publish it to the 17 simulated markets, crawl them (either in-process or
// over HTTP with the parallel-search crawler), parse every APK, enrich the
// dataset with library/permission/AV detections, advance the stores by eight
// months of moderation, re-crawl, and finally compute every table and figure.
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/clonedetect"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/synth"
)

// Mode selects how the crawl stage talks to the simulated markets.
type Mode string

// Crawl modes.
const (
	// ModeInProcess snapshots the market stores directly. It is fast and is
	// what the benches use.
	ModeInProcess Mode = "in-process"
	// ModeHTTP serves every market on a loopback HTTP listener and runs the
	// real crawler against them, exercising the full collection path
	// (per-market index styles, parallel search, rate-limit back-off).
	ModeHTTP Mode = "http"
)

// Config configures a study run.
type Config struct {
	// Synth controls the generated ecosystem.
	Synth synth.Config
	// Enrich controls the detector pass.
	Enrich analysis.EnrichOptions
	// Clone schedules the code-clone detection stage of the misbehavior
	// analysis: worker-pool size and candidate-index probe width. The zero
	// value runs the indexed detector with one worker per CPU; Workers == 1
	// is the serial oracle (same convention as Enrich.Workers).
	Clone clonedetect.CloneOptions
	// Analyses schedules the table/figure computations: the zero value runs
	// the independent analyses concurrently with one worker per CPU,
	// Workers == 1 reproduces the serial reference order (same convention
	// as the other stages; Results are identical either way).
	Analyses AnalysisOptions
	// Mode selects the crawl transport.
	Mode Mode
	// Concurrency is the number of crawl workers in ModeHTTP.
	Concurrency int
	// SeedCount is how many popular packages seed the BFS crawl of
	// related-apps markets in ModeHTTP (the stand-in for the paper's
	// PrivacyGrade seed list).
	SeedCount int
	// AVRankThreshold is the AV-rank cut-off used for Table 6 and Figure 12
	// (10 in the paper).
	AVRankThreshold int
}

// DefaultConfig returns a full-size laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Synth:           synth.DefaultConfig(),
		Enrich:          analysis.DefaultEnrichOptions(),
		Mode:            ModeInProcess,
		Concurrency:     8,
		SeedCount:       40,
		AVRankThreshold: 10,
	}
}

// QuickConfig returns a small configuration suitable for examples and tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Synth = synth.SmallConfig()
	cfg.SeedCount = 15
	return cfg
}

// Results bundles everything a study run produces.
type Results struct {
	Config      Config
	Ecosystem   *synth.Ecosystem
	FirstCrawl  *crawler.Snapshot
	SecondCrawl *crawler.Snapshot
	Dataset     *analysis.Dataset
	CrawlStats  crawler.Stats
	Elapsed     time.Duration

	Overview      []analysis.MarketOverviewRow
	Totals        analysis.OverviewTotals
	Concentration []analysis.TopShareStats
	Categories    []analysis.CategoryDistribution
	Downloads     []analysis.DownloadRow
	APILevelsGP   analysis.APILevelDistribution
	APILevelsCN   analysis.APILevelDistribution
	ReleaseGP     analysis.ReleaseDateDistribution
	ReleaseCN     analysis.ReleaseDateDistribution
	LibraryUsage  []analysis.LibraryUsageRow
	TopLibsGP     []analysis.LibraryRank
	TopLibsCN     []analysis.LibraryRank
	AdEcoGP       analysis.AdEcosystemStats
	AdEcoCN       analysis.AdEcosystemStats
	Ratings       []analysis.RatingDistribution
	Publishing    analysis.PublishingStats
	StoreOverlap  []analysis.StoreOverlapRow
	Clusters      analysis.ClusterCDFs
	Outdated      []analysis.OutdatedRow
	Identical     analysis.IdenticalAppStats
	Misbehavior   *analysis.MisbehaviorResult
	OverPrivGP    analysis.OverPrivilegeStats
	OverPrivCN    analysis.OverPrivilegeStats
	Malware       []analysis.MalwareRow
	MalwareAvg    analysis.MalwareAverages
	TopMalware    []analysis.TopMalwareEntry
	FamiliesGP    []analysis.FamilyShare
	FamiliesCN    []analysis.FamilyShare
	Repackaged    analysis.RepackagedMalwareStats
	Removal       []analysis.RemovalRow
	StillHosted   analysis.StillHostedStats
	Radar         []analysis.RadarRow
}

// Run executes the full study.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	start := time.Now()
	if cfg.Mode == "" {
		cfg.Mode = ModeInProcess
	}
	if cfg.AVRankThreshold <= 0 {
		cfg.AVRankThreshold = 10
	}
	if err := cfg.Synth.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	eco, err := synth.Generate(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("core: generate ecosystem: %w", err)
	}
	stores, err := eco.Populate()
	if err != nil {
		return nil, fmt.Errorf("core: populate markets: %w", err)
	}

	res := &Results{Config: cfg, Ecosystem: eco}

	// First crawl.
	switch cfg.Mode {
	case ModeInProcess:
		res.FirstCrawl, err = crawler.SnapshotFromStores(stores, true, cfg.Synth.CrawlDate)
		if err != nil {
			return nil, fmt.Errorf("core: first crawl: %w", err)
		}
	case ModeHTTP:
		res.FirstCrawl, res.CrawlStats, err = crawlOverHTTP(ctx, cfg, eco, stores, true, cfg.Synth.CrawlDate)
		if err != nil {
			return nil, fmt.Errorf("core: first crawl (http): %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown mode %q", cfg.Mode)
	}

	// Parse and enrich, on the same worker pool the enrichment uses (the
	// Workers and Progress knobs of cfg.Enrich govern both stages).
	res.Dataset, err = analysis.BuildDatasetWith(res.FirstCrawl, analysis.BuildOptions{
		Workers:  cfg.Enrich.Workers,
		Progress: cfg.Enrich.Progress,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build dataset: %w", err)
	}
	res.Dataset.Enrich(cfg.Enrich)

	// Eight months later: the stores moderate their catalogs and we crawl
	// again (metadata only, as only presence matters for Table 6).
	eco.ApplyModeration(stores)
	secondDate := cfg.Synth.CrawlDate.AddDate(0, 8, 15)
	switch cfg.Mode {
	case ModeInProcess:
		res.SecondCrawl, err = crawler.SnapshotFromStores(stores, false, secondDate)
	case ModeHTTP:
		res.SecondCrawl, _, err = crawlOverHTTP(ctx, cfg, eco, stores, false, secondDate)
	}
	if err != nil {
		return nil, fmt.Errorf("core: second crawl: %w", err)
	}

	// Every table and figure, on the analysis scheduler (schedule.go).
	res.ComputeAnalyses(cfg.Analyses.Workers)
	res.Elapsed = time.Since(start)
	return res, nil
}

// crawlOverHTTP serves every store on a loopback listener and runs the
// network crawler against them.
func crawlOverHTTP(ctx context.Context, cfg Config, eco *synth.Ecosystem,
	stores map[string]*market.Store, fetchAPKs bool, crawlTime time.Time) (*crawler.Snapshot, crawler.Stats, error) {
	servers := make([]*http.Server, 0, len(stores))
	endpoints := make([]crawler.Endpoint, 0, len(stores))
	var wg sync.WaitGroup
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
		wg.Wait()
	}()
	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, crawler.Stats{}, fmt.Errorf("listen for %s: %w", name, err)
		}
		srv := &http.Server{Handler: market.NewServer(stores[name])}
		servers = append(servers, srv)
		wg.Add(1)
		go func(s *http.Server, l net.Listener) {
			defer wg.Done()
			if err := s.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// The listener is closed during shutdown; other errors are
				// surfaced through failed crawls.
				_ = err
			}
		}(srv, ln)
		endpoints = append(endpoints, crawler.Endpoint{Name: name, BaseURL: "http://" + ln.Addr().String()})
	}

	c, err := crawler.New(crawler.Config{
		Endpoints:      endpoints,
		Seeds:          crawlSeeds(eco, cfg.SeedCount),
		Concurrency:    cfg.Concurrency,
		FetchAPKs:      fetchAPKs,
		ParallelSearch: true,
		Now:            func() time.Time { return crawlTime },
	})
	if err != nil {
		return nil, crawler.Stats{}, err
	}
	snap, err := c.Run(ctx)
	if err != nil {
		return nil, crawler.Stats{}, err
	}
	return snap, c.Stats(), nil
}

// crawlSeeds picks the most popular packages from the ground truth as BFS
// seeds, standing in for the paper's externally sourced PrivacyGrade seed
// list.
func crawlSeeds(eco *synth.Ecosystem, count int) []string {
	if count <= 0 {
		count = 20
	}
	apps := append([]*synth.App(nil), eco.Apps...)
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].BaseDownloads != apps[j].BaseDownloads {
			return apps[i].BaseDownloads > apps[j].BaseDownloads
		}
		return apps[i].Package < apps[j].Package
	})
	var seeds []string
	for _, a := range apps {
		if len(seeds) >= count {
			break
		}
		seeds = append(seeds, a.Package)
	}
	return seeds
}
