package core

import (
	"fmt"

	"marketscope/internal/analysis"
	"marketscope/internal/pipeline"
)

// The analysis scheduler: every table and figure of the paper is one task
// writing exactly one set of Results fields, almost all of them independent
// of each other. The scheduler runs the ready tasks concurrently on the
// pipeline worker pool, honoring an explicit dependency list (Totals needs
// Table 1's rows, the malware average needs Table 4, the repackaging join
// needs the clone results, and the radar reuses five earlier analyses
// instead of recomputing them). Workers == 1 reproduces the pre-scheduler
// serial order byte-identically; any other worker count produces identical
// Results because each task owns its output fields and the shared dataset
// engines are read-only and concurrency-safe.

// AnalysisOptions configures the analysis scheduler.
type AnalysisOptions struct {
	// Workers sizes the scheduler pool: 0 (or negative) means one worker
	// per CPU; 1 runs the analyses strictly in the pre-scheduler serial
	// order, the reference the equivalence tests compare against. Results
	// are identical for every setting.
	Workers int
}

// analysisTask is one schedulable analysis.
type analysisTask struct {
	name string
	// deps lists task names that must complete first.
	deps []string
	run  func(r *Results)
}

// analysisTasks returns the suite in the pre-scheduler serial order (which
// is therefore also the Workers == 1 execution order) with each task's
// dependencies made explicit.
func analysisTasks() []analysisTask {
	return []analysisTask{
		{name: "overview", run: func(r *Results) { r.Overview = analysis.MarketOverview(r.Dataset) }},
		{name: "totals", deps: []string{"overview"}, run: func(r *Results) {
			r.Totals = analysis.Totals(r.Dataset, r.Overview)
		}},
		{name: "concentration", run: func(r *Results) { r.Concentration = analysis.DownloadConcentration(r.Dataset) }},
		{name: "categories", run: func(r *Results) { r.Categories = analysis.Categories(r.Dataset) }},
		{name: "downloads", run: func(r *Results) { r.Downloads = analysis.Downloads(r.Dataset) }},
		{name: "api_levels", run: func(r *Results) { r.APILevelsGP, r.APILevelsCN = analysis.APILevels(r.Dataset) }},
		{name: "release_dates", run: func(r *Results) { r.ReleaseGP, r.ReleaseCN = analysis.ReleaseDates(r.Dataset) }},
		{name: "library_usage", run: func(r *Results) { r.LibraryUsage = analysis.LibraryUsage(r.Dataset) }},
		{name: "top_libraries", run: func(r *Results) { r.TopLibsGP, r.TopLibsCN = analysis.TopLibraries(r.Dataset, 10) }},
		{name: "ad_ecosystem", run: func(r *Results) { r.AdEcoGP, r.AdEcoCN = analysis.AdEcosystem(r.Dataset) }},
		{name: "ratings", run: func(r *Results) { r.Ratings = analysis.Ratings(r.Dataset) }},
		{name: "publishing", run: func(r *Results) { r.Publishing = analysis.Publishing(r.Dataset) }},
		{name: "store_overlap", run: func(r *Results) { r.StoreOverlap = analysis.StoreOverlap(r.Dataset) }},
		{name: "clusters", run: func(r *Results) { r.Clusters = analysis.Clusters(r.Dataset) }},
		{name: "outdated", run: func(r *Results) { r.Outdated = analysis.Outdated(r.Dataset) }},
		{name: "identical", run: func(r *Results) { r.Identical = analysis.IdenticalApps(r.Dataset) }},
		{name: "misbehavior", run: func(r *Results) {
			mis := analysis.DefaultMisbehaviorOptions()
			mis.Clone = r.Config.Clone
			r.Misbehavior = analysis.Misbehavior(r.Dataset, mis)
		}},
		{name: "over_privilege", run: func(r *Results) { r.OverPrivGP, r.OverPrivCN = analysis.OverPrivilege(r.Dataset) }},
		{name: "malware", run: func(r *Results) { r.Malware = analysis.MalwarePrevalence(r.Dataset) }},
		{name: "malware_avg", deps: []string{"malware"}, run: func(r *Results) {
			r.MalwareAvg = analysis.AverageChineseMalware(r.Dataset, r.Malware)
		}},
		{name: "top_malware", run: func(r *Results) { r.TopMalware = analysis.TopMalware(r.Dataset, 10) }},
		{name: "families", run: func(r *Results) {
			r.FamiliesGP, r.FamiliesCN = analysis.MalwareFamilies(r.Dataset, r.Config.AVRankThreshold, 15)
		}},
		{name: "repackaged", deps: []string{"misbehavior"}, run: func(r *Results) {
			r.Repackaged = analysis.RepackagedMalware(r.Dataset, r.Misbehavior, r.Config.AVRankThreshold)
		}},
		{name: "removal", run: func(r *Results) {
			r.Removal = analysis.PostAnalysis(r.Dataset, r.SecondCrawl, r.Config.AVRankThreshold)
		}},
		{name: "still_hosted", run: func(r *Results) {
			r.StillHosted = analysis.StillHosted(r.Dataset, r.SecondCrawl, r.Config.AVRankThreshold)
		}},
		// Last: the radar reuses Table 1, Figure 6, Table 4, Table 3 and
		// Figure 9 instead of recomputing them (RadarFrom), so it depends on
		// all five.
		{name: "radar", deps: []string{"overview", "ratings", "malware", "misbehavior", "outdated"},
			run: func(r *Results) {
				r.Radar = analysis.RadarFrom(r.Dataset, nil,
					r.Overview, r.Ratings, r.Malware, r.Misbehavior, r.Outdated)
			}},
	}
}

// NumAnalysisTasks returns the number of entries in the analysis
// scheduler's task table (one per table/figure computation), for reporting
// and benchmarks.
func NumAnalysisTasks() int { return len(analysisTasks()) }

// ComputeAnalyses (re)computes every table and figure of the Results on the
// analysis scheduler. Run calls it with Config.Analyses.Workers; benchmarks
// and tests call it directly to sweep worker counts over one dataset.
func (r *Results) ComputeAnalyses(workers int) {
	tasks := analysisTasks()
	if pipeline.Workers(workers, len(tasks)) == 1 {
		for _, t := range tasks {
			t.run(r)
		}
		return
	}
	// Wave scheduling: repeatedly fan the ready tasks out on the worker
	// pool. Each task writes only its own Results fields and the dataset
	// engines are read-only under concurrent scans, so the outcome is
	// independent of scheduling; the waves only bound how long a dependent
	// task waits.
	done := make(map[string]bool, len(tasks))
	remaining := tasks
	for len(remaining) > 0 {
		ready := remaining[:0:0]
		var blocked []analysisTask
		for _, t := range remaining {
			ok := true
			for _, dep := range t.deps {
				if !done[dep] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, t)
			} else {
				blocked = append(blocked, t)
			}
		}
		if len(ready) == 0 {
			// Static task table: an unsatisfiable dependency is a
			// programming error, not a runtime condition.
			panic(fmt.Sprintf("core: analysis dependency cycle among %d tasks", len(remaining)))
		}
		pipeline.ForEach(len(ready), workers, func(i int) { ready[i].run(r) })
		for _, t := range ready {
			done[t.name] = true
		}
		remaining = blocked
	}
}

// ComputeAnalysesOracle recomputes the suite on the pre-scheduler,
// pre-columnar path: strictly serial in the legacy order, the row-at-a-time
// oracle bodies for every aggregation-rewritten analysis, the serial
// clone-detection oracle, and a radar that recomputes its five inputs. It is
// the baseline BenchmarkRunAnalyses holds the scheduled columnar suite
// against.
func (r *Results) ComputeAnalysesOracle() {
	d := r.Dataset
	r.Overview = analysis.MarketOverviewOracle(d)
	r.Totals = analysis.TotalsOracle(d, r.Overview)
	r.Concentration = analysis.DownloadConcentration(d)
	r.Categories = analysis.CategoriesOracle(d)
	r.Downloads = analysis.DownloadsOracle(d)
	r.APILevelsGP, r.APILevelsCN = analysis.APILevelsOracle(d)
	r.ReleaseGP, r.ReleaseCN = analysis.ReleaseDates(d)
	r.LibraryUsage = analysis.LibraryUsageOracle(d)
	r.TopLibsGP, r.TopLibsCN = analysis.TopLibrariesOracle(d, 10)
	r.AdEcoGP, r.AdEcoCN = analysis.AdEcosystem(d)
	r.Ratings = analysis.Ratings(d)
	r.Publishing = analysis.PublishingOracle(d)
	r.StoreOverlap = analysis.StoreOverlap(d)
	r.Clusters = analysis.Clusters(d)
	r.Outdated = analysis.Outdated(d)
	r.Identical = analysis.IdenticalApps(d)
	mis := analysis.DefaultMisbehaviorOptions()
	mis.Clone = r.Config.Clone
	mis.Clone.Workers = 1 // the serial pre-index clone sweep
	r.Misbehavior = analysis.Misbehavior(d, mis)
	r.OverPrivGP, r.OverPrivCN = analysis.OverPrivilege(d)
	r.Malware = analysis.MalwarePrevalenceOracle(d)
	r.MalwareAvg = analysis.AverageChineseMalware(d, r.Malware)
	r.TopMalware = analysis.TopMalware(d, 10)
	r.FamiliesGP, r.FamiliesCN = analysis.MalwareFamilies(d, r.Config.AVRankThreshold, 15)
	r.Repackaged = analysis.RepackagedMalware(d, r.Misbehavior, r.Config.AVRankThreshold)
	r.Removal = analysis.PostAnalysis(d, r.SecondCrawl, r.Config.AVRankThreshold)
	r.StillHosted = analysis.StillHosted(d, r.SecondCrawl, r.Config.AVRankThreshold)
	r.Radar = analysis.Radar(d, nil)
}
