package core

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"marketscope/internal/analysis"
)

// analysesJSON snapshots every analysis field of a Results as canonical JSON
// so scheduler configurations can be compared byte for byte (JSON sorts map
// keys, and a NaN anywhere fails loudly instead of comparing as unequal).
func analysesJSON(t *testing.T, r *Results) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Overview      []analysis.MarketOverviewRow
		Totals        analysis.OverviewTotals
		Concentration []analysis.TopShareStats
		Categories    []analysis.CategoryDistribution
		Downloads     []analysis.DownloadRow
		APILevelsGP   analysis.APILevelDistribution
		APILevelsCN   analysis.APILevelDistribution
		ReleaseGP     analysis.ReleaseDateDistribution
		ReleaseCN     analysis.ReleaseDateDistribution
		LibraryUsage  []analysis.LibraryUsageRow
		TopLibsGP     []analysis.LibraryRank
		TopLibsCN     []analysis.LibraryRank
		AdEcoGP       analysis.AdEcosystemStats
		AdEcoCN       analysis.AdEcosystemStats
		Ratings       []analysis.RatingDistribution
		Publishing    analysis.PublishingStats
		StoreOverlap  []analysis.StoreOverlapRow
		Clusters      analysis.ClusterCDFs
		Outdated      []analysis.OutdatedRow
		Identical     analysis.IdenticalAppStats
		Misbehavior   *analysis.MisbehaviorResult
		OverPrivGP    analysis.OverPrivilegeStats
		OverPrivCN    analysis.OverPrivilegeStats
		Malware       []analysis.MalwareRow
		MalwareAvg    analysis.MalwareAverages
		TopMalware    []analysis.TopMalwareEntry
		FamiliesGP    []analysis.FamilyShare
		FamiliesCN    []analysis.FamilyShare
		Repackaged    analysis.RepackagedMalwareStats
		Removal       []analysis.RemovalRow
		StillHosted   analysis.StillHostedStats
		Radar         []analysis.RadarRow
	}{
		r.Overview, r.Totals, r.Concentration, r.Categories, r.Downloads,
		r.APILevelsGP, r.APILevelsCN, r.ReleaseGP, r.ReleaseCN,
		r.LibraryUsage, r.TopLibsGP, r.TopLibsCN, r.AdEcoGP, r.AdEcoCN,
		r.Ratings, r.Publishing, r.StoreOverlap, r.Clusters, r.Outdated,
		r.Identical, r.Misbehavior, r.OverPrivGP, r.OverPrivCN, r.Malware,
		r.MalwareAvg, r.TopMalware, r.FamiliesGP, r.FamiliesCN,
		r.Repackaged, r.Removal, r.StillHosted, r.Radar,
	})
	if err != nil {
		t.Fatalf("marshal analyses: %v", err)
	}
	return b
}

// analysesOnly clones the pipeline outputs of a Results so ComputeAnalyses
// can be re-run without touching the original's analysis fields.
func analysesOnly(r *Results) *Results {
	return &Results{
		Config:      r.Config,
		Ecosystem:   r.Ecosystem,
		FirstCrawl:  r.FirstCrawl,
		SecondCrawl: r.SecondCrawl,
		Dataset:     r.Dataset,
	}
}

// TestParallelAnalysesMatchSerial asserts the scheduler's Results at any
// worker count are byte-identical to Workers == 1 (the pre-scheduler serial
// order) — and that the Run call itself (default worker count) produced the
// same bytes.
func TestParallelAnalysesMatchSerial(t *testing.T) {
	r := quickRun(t)

	serial := analysesOnly(r)
	serial.ComputeAnalyses(1)
	want := analysesJSON(t, serial)

	if got := analysesJSON(t, r); !bytes.Equal(got, want) {
		t.Fatal("Run's scheduled analyses diverge from the serial order")
	}
	counts := []int{2, runtime.NumCPU()}
	for _, workers := range counts {
		par := analysesOnly(r)
		par.ComputeAnalyses(workers)
		if got := analysesJSON(t, par); !bytes.Equal(got, want) {
			t.Fatalf("ComputeAnalyses(%d) diverges from the serial order", workers)
		}
	}
}

// TestRadarReuseMatchesRecompute pins the RadarFrom shortcut: the scheduler
// builds Figure 13 from the already-computed inputs, which must equal the
// recompute-everything Radar the pre-scheduler path ran.
func TestRadarReuseMatchesRecompute(t *testing.T) {
	r := quickRun(t)
	recomputed := analysis.Radar(r.Dataset, nil)
	rj, _ := json.Marshal(recomputed)
	sj, _ := json.Marshal(r.Radar)
	if !bytes.Equal(rj, sj) {
		t.Fatalf("RadarFrom diverges from Radar:\nreuse     %s\nrecompute %s", sj, rj)
	}
}

// TestAnalysisTaskTable sanity-checks the dependency list: unique names,
// resolvable deps, and every dependency declared before its dependent so the
// Workers == 1 declaration-order run satisfies it trivially.
func TestAnalysisTaskTable(t *testing.T) {
	seen := map[string]bool{}
	for _, task := range analysisTasks() {
		if task.name == "" || task.run == nil {
			t.Fatalf("task %+v incomplete", task.name)
		}
		if seen[task.name] {
			t.Fatalf("duplicate task %q", task.name)
		}
		for _, dep := range task.deps {
			if !seen[dep] {
				t.Fatalf("task %q depends on %q, which is not declared before it", task.name, dep)
			}
		}
		seen[task.name] = true
	}
}

// TestComputeAnalysesOracleProducesFullSuite runs the serial-oracle baseline
// once: it must fill the same fields (the bench trusts it as a complete
// suite) even though its row-at-a-time internals differ.
func TestComputeAnalysesOracleProducesFullSuite(t *testing.T) {
	r := quickRun(t)
	oracle := analysesOnly(r)
	oracle.ComputeAnalysesOracle()
	if len(oracle.Overview) == 0 || len(oracle.Malware) == 0 ||
		oracle.Misbehavior == nil || len(oracle.Radar) == 0 {
		t.Fatal("oracle suite left analyses unfilled")
	}
	// The oracle bodies must agree with the scheduled columnar suite on
	// every analysis except the clone-detection comparison counter (the
	// serial sweep compares more pairs; its output clone set is identical).
	oracle.Misbehavior.CodeRes.ComparedPairs = r.Misbehavior.CodeRes.ComparedPairs
	if !bytes.Equal(analysesJSON(t, oracle), analysesJSON(t, r)) {
		t.Fatal("serial-oracle suite diverges from the scheduled columnar suite")
	}
}
