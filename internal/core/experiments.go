package core

import (
	"fmt"
	"io"
	"sort"

	"marketscope/internal/report"
)

// Experiment identifies one of the paper's tables or figures.
type Experiment struct {
	// ID is the short identifier used on the command line and in
	// EXPERIMENTS.md: "T1".."T6" for tables, "F1".."F13" for figures.
	ID string
	// Title is the artifact's caption in the paper.
	Title string
	// Render produces the reproduced artifact from a study's results.
	Render func(*Results) string
}

// experiments is the registry, in paper order.
var experiments = []Experiment{
	{ID: "T1", Title: "Dataset size and market features", Render: func(r *Results) string {
		return report.Table1(r.Overview, r.Totals)
	}},
	{ID: "F1", Title: "Distribution of app categories", Render: func(r *Results) string {
		return report.Figure1(r.Categories)
	}},
	{ID: "F2", Title: "Distribution of downloads across markets", Render: func(r *Results) string {
		return report.Figure2(r.Downloads)
	}},
	{ID: "F3", Title: "Distribution of minimum API level", Render: func(r *Results) string {
		return report.Figure3(r.APILevelsGP, r.APILevelsCN)
	}},
	{ID: "F4", Title: "Distribution of app release/update dates", Render: func(r *Results) string {
		return report.Figure4(r.ReleaseGP, r.ReleaseCN)
	}},
	{ID: "F5", Title: "Presence of third-party libraries", Render: func(r *Results) string {
		return report.Figure5(r.LibraryUsage)
	}},
	{ID: "T2", Title: "Top 10 third-party libraries", Render: func(r *Results) string {
		return report.Table2(r.TopLibsGP, r.TopLibsCN)
	}},
	{ID: "F6", Title: "Distribution of app ratings", Render: func(r *Results) string {
		return report.Figure6(r.Ratings)
	}},
	{ID: "F7", Title: "CDF of developer published markets", Render: func(r *Results) string {
		return report.Figure7(r.Publishing)
	}},
	{ID: "F8", Title: "CDFs of versions, name clusters and developers", Render: func(r *Results) string {
		return report.Figure8(r.Clusters)
	}},
	{ID: "F9", Title: "Comparison of app updates across markets", Render: func(r *Results) string {
		return report.Figure9(r.Outdated)
	}},
	{ID: "T3", Title: "Fake and cloned apps across stores", Render: func(r *Results) string {
		return report.Table3(r.Misbehavior)
	}},
	{ID: "F10", Title: "Intra- and inter-market app clones", Render: func(r *Results) string {
		return report.Figure10(r.Misbehavior.Heatmap, r.Dataset.MarketNames())
	}},
	{ID: "F11", Title: "Distribution of over-privileged apps", Render: func(r *Results) string {
		return report.Figure11(r.OverPrivGP, r.OverPrivCN)
	}},
	{ID: "T4", Title: "Apps labeled as malware by AV-rank", Render: func(r *Results) string {
		return report.Table4(r.Malware, r.MalwareAvg)
	}},
	{ID: "T5", Title: "Top 10 malicious apps by AV-rank", Render: func(r *Results) string {
		return report.Table5(r.TopMalware)
	}},
	{ID: "F12", Title: "Distribution of top malware families", Render: func(r *Results) string {
		return report.Figure12(r.FamiliesGP, r.FamiliesCN)
	}},
	{ID: "T6", Title: "Malware removed across markets", Render: func(r *Results) string {
		return report.Table6(r.Removal, r.StillHosted)
	}},
	{ID: "F13", Title: "Multi-dimensional market comparison", Render: func(r *Results) string {
		return report.Figure13(r.Radar)
	}},
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return append([]Experiment(nil), experiments...)
}

// ExperimentIDs returns the registered IDs in paper order.
func ExperimentIDs() []string {
	out := make([]string, 0, len(experiments))
	for _, e := range experiments {
		out = append(out, e.ID)
	}
	return out
}

// Render renders one experiment by ID.
func (r *Results) Render(id string) (string, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e.Render(r), nil
		}
	}
	known := ExperimentIDs()
	sort.Strings(known)
	return "", fmt.Errorf("core: unknown experiment %q (known: %v)", id, known)
}

// WriteReport renders every experiment to w, in paper order, preceded by a
// short summary of the run.
func (r *Results) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"marketscope study: %d apps, %d listings, %d markets, crawl mode %s, elapsed %s\n\n",
		len(r.Ecosystem.Apps), r.Dataset.NumListings(), len(r.Dataset.Markets), r.Config.Mode, r.Elapsed.Round(1e6)); err != nil {
		return err
	}
	for _, e := range experiments {
		if _, err := fmt.Fprintf(w, "[%s] %s\n%s\n", e.ID, e.Title, e.Render(r)); err != nil {
			return err
		}
	}
	// The paper's in-text findings that are not numbered artifacts.
	highlights := report.Highlights(r.Concentration, r.AdEcoGP, r.AdEcoCN,
		r.StoreOverlap, r.Identical, r.Repackaged, r.Publishing)
	if _, err := fmt.Fprintf(w, "[S] %s\n", highlights); err != nil {
		return err
	}
	return nil
}
