package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"marketscope/internal/market"
	"marketscope/internal/synth"
)

var (
	quickOnce    sync.Once
	quickResults *Results
	quickErr     error
)

// quickRun executes one small in-process study shared by the tests below.
func quickRun(t *testing.T) *Results {
	t.Helper()
	quickOnce.Do(func() {
		cfg := QuickConfig()
		cfg.Synth.NumApps = 260
		cfg.Synth.NumDevelopers = 100
		quickResults, quickErr = Run(context.Background(), cfg)
	})
	if quickErr != nil {
		t.Fatalf("Run: %v", quickErr)
	}
	return quickResults
}

func TestRunValidatesConfig(t *testing.T) {
	cfg := QuickConfig()
	cfg.Synth.NumApps = 1
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("invalid synth config accepted")
	}
	cfg = QuickConfig()
	cfg.Mode = Mode("teleport")
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunInProcessProducesAllResults(t *testing.T) {
	r := quickRun(t)
	if r.Dataset == nil || r.FirstCrawl == nil || r.SecondCrawl == nil {
		t.Fatal("missing pipeline outputs")
	}
	if r.FirstCrawl.NumRecords() != r.Dataset.NumListings() {
		t.Errorf("dataset size mismatch")
	}
	if r.SecondCrawl.NumRecords() >= r.FirstCrawl.NumRecords() {
		t.Errorf("moderation removed nothing: first=%d second=%d",
			r.FirstCrawl.NumRecords(), r.SecondCrawl.NumRecords())
	}
	if len(r.Overview) == 0 || len(r.Malware) == 0 || r.Misbehavior == nil || len(r.Radar) == 0 {
		t.Error("analyses missing from results")
	}
	if r.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
}

func TestExperimentRegistryCoversPaper(t *testing.T) {
	ids := ExperimentIDs()
	want := map[string]bool{}
	for _, id := range []string{"T1", "T2", "T3", "T4", "T5", "T6",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13"} {
		want[id] = true
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected experiment %q", id)
		}
	}
	for _, e := range Experiments() {
		if e.Title == "" || e.Render == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestRenderExperiments(t *testing.T) {
	r := quickRun(t)
	for _, id := range ExperimentIDs() {
		out, err := r.Render(id)
		if err != nil {
			t.Fatalf("Render(%s): %v", id, err)
		}
		if len(out) < 40 {
			t.Errorf("Render(%s) output suspiciously short: %q", id, out)
		}
	}
	if _, err := r.Render("T99"); err == nil {
		t.Error("unknown experiment rendered")
	}
}

func TestWriteReport(t *testing.T) {
	r := quickRun(t)
	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"[T1]", "[F13]", "Table 4", "Figure 10", market.GooglePlay} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunOverHTTP(t *testing.T) {
	cfg := QuickConfig()
	cfg.Mode = ModeHTTP
	cfg.Synth.NumApps = 60
	cfg.Synth.NumDevelopers = 25
	cfg.Synth.Markets = []string{market.GooglePlay, "Baidu Market", "Huawei Market", "25PP"}
	cfg.Concurrency = 6
	cfg.SeedCount = 25
	r, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run over HTTP: %v", err)
	}
	if r.CrawlStats.Requests == 0 || r.CrawlStats.RecordsFetched == 0 {
		t.Errorf("HTTP crawl made no requests: %+v", r.CrawlStats)
	}
	if r.Dataset.NumListings() == 0 {
		t.Fatal("HTTP crawl harvested nothing")
	}
	// The HTTP path must still support every experiment.
	if _, err := r.Render("T4"); err != nil {
		t.Errorf("Render after HTTP crawl: %v", err)
	}
}

func TestCrawlSeedsOrdering(t *testing.T) {
	eco, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seeds := crawlSeeds(eco, 10)
	if len(seeds) != 10 {
		t.Fatalf("seeds = %d", len(seeds))
	}
	seen := map[string]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Errorf("duplicate seed %q", s)
		}
		seen[s] = true
	}
	if got := crawlSeeds(eco, 0); len(got) == 0 {
		t.Error("default seed count should be positive")
	}
}
