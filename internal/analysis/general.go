package analysis

import (
	"sort"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
	"marketscope/internal/stats"
)

// CategoryDistribution is one market's share per consolidated category
// (one column of Figure 1).
type CategoryDistribution struct {
	Market string
	Shares map[appmeta.Category]float64
	// OtherShare is the share of listings whose market-native category
	// could not be mapped (NULL, numeric placeholders, ...).
	OtherShare float64
}

// Categories computes Figure 1: the distribution of consolidated app
// categories per market.
func Categories(d *Dataset) []CategoryDistribution {
	var out []CategoryDistribution
	for _, m := range d.Markets {
		apps := d.AppsIn(m.Name)
		dist := CategoryDistribution{Market: m.Name, Shares: map[appmeta.Category]float64{}}
		if len(apps) == 0 {
			out = append(out, dist)
			continue
		}
		h := stats.NewHistogram()
		for _, app := range apps {
			h.Add(string(app.Category()))
		}
		for _, c := range appmeta.Categories() {
			dist.Shares[c] = h.Share(string(c))
		}
		dist.OtherShare = dist.Shares[appmeta.CategoryOther]
		out = append(out, dist)
	}
	return out
}

// DownloadRow is one row of Figure 2: a market's share of apps per install
// range.
type DownloadRow struct {
	Market string
	// Distribution has one share per Google-Play install range, in
	// stats.DownloadBins order.
	Distribution stats.DownloadDistribution
	// Reported is the number of listings with a reported install count.
	Reported int
}

// Downloads computes Figure 2: the normalized install-range distribution per
// market. Markets that do not report installs (Xiaomi, App China) yield an
// all-zero row, matching the blank rows of the paper's figure.
func Downloads(d *Dataset) []DownloadRow {
	var out []DownloadRow
	for _, m := range d.Markets {
		row := DownloadRow{Market: m.Name}
		var installs []int64
		for _, app := range d.AppsIn(m.Name) {
			if app.Meta.ReportsDownloads() {
				installs = append(installs, app.Meta.Downloads)
			}
		}
		row.Reported = len(installs)
		row.Distribution = stats.ComputeDownloadDistribution(installs)
		out = append(out, row)
	}
	return out
}

// APILevelDistribution is Figure 3's data: the share of apps per declared
// minimum API level, for one market group.
type APILevelDistribution struct {
	Group string
	// Shares maps the minimum API level to its share of parsed apps.
	Shares map[int]float64
	// LowAPIShare is the share of apps with min API level below 9, the
	// headline statistic of Section 4.3 (63% in Chinese stores vs 22% on
	// Google Play).
	LowAPIShare float64
	Parsed      int
}

// APILevelsByMarket computes the min-API distribution for every market
// individually (the box-plot population of Figure 3).
func APILevelsByMarket(d *Dataset) map[string]APILevelDistribution {
	out := map[string]APILevelDistribution{}
	for _, m := range d.Markets {
		out[m.Name] = apiLevels(m.Name, d.AppsIn(m.Name))
	}
	return out
}

// APILevels computes the Google Play vs Chinese-markets aggregate of
// Figure 3.
func APILevels(d *Dataset) (googlePlay, chinese APILevelDistribution) {
	googlePlay = apiLevels("Google Play", d.GooglePlayApps())
	chinese = apiLevels("Chinese markets", d.ChineseApps())
	return googlePlay, chinese
}

func apiLevels(group string, apps []*App) APILevelDistribution {
	dist := APILevelDistribution{Group: group, Shares: map[int]float64{}}
	counts := map[int]int{}
	low := 0
	for _, app := range apps {
		if !app.HasAPK() {
			continue
		}
		level := app.Parsed.Manifest.MinSDK
		counts[level]++
		dist.Parsed++
		if level < 9 {
			low++
		}
	}
	if dist.Parsed == 0 {
		return dist
	}
	for level, n := range counts {
		dist.Shares[level] = float64(n) / float64(dist.Parsed)
	}
	dist.LowAPIShare = float64(low) / float64(dist.Parsed)
	return dist
}

// ReleaseDateBucket is one bucket of Figure 4's cumulative release/update
// date distribution.
type ReleaseDateBucket struct {
	Label  string
	Before time.Time
}

// ReleaseDateDistribution is the share of apps updated before each cut-off,
// for one market group.
type ReleaseDateDistribution struct {
	Group  string
	Shares map[string]float64
	// RecentShare is the share updated within the 6 months before the
	// crawl (23% for Google Play vs 5% for Chinese stores in the paper).
	RecentShare float64
	// StaleShare is the share not updated in the year before the crawl.
	StaleShare float64
	Total      int
}

// ReleaseDates computes Figure 4 for Google Play and the Chinese markets.
func ReleaseDates(d *Dataset) (googlePlay, chinese ReleaseDateDistribution) {
	return releaseDates("Google Play", d.GooglePlayApps(), d.CrawlTime),
		releaseDates("Chinese markets", d.ChineseApps(), d.CrawlTime)
}

func releaseDates(group string, apps []*App, crawl time.Time) ReleaseDateDistribution {
	if crawl.IsZero() {
		crawl = time.Date(2017, 8, 15, 0, 0, 0, 0, time.UTC)
	}
	dist := ReleaseDateDistribution{Group: group, Shares: map[string]float64{}}
	buckets := []ReleaseDateBucket{
		{Label: "before 2014", Before: time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before 2015", Before: time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before 2016", Before: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before 2017", Before: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before crawl", Before: crawl},
	}
	counts := make([]int, len(buckets))
	recent, stale := 0, 0
	for _, app := range apps {
		update := app.Meta.UpdateDate
		if update.IsZero() {
			continue
		}
		dist.Total++
		for i, b := range buckets {
			if update.Before(b.Before) {
				counts[i]++
			}
		}
		if update.After(crawl.AddDate(0, -6, 0)) {
			recent++
		}
		if update.Before(crawl.AddDate(-1, 0, 0)) {
			stale++
		}
	}
	if dist.Total == 0 {
		return dist
	}
	for i, b := range buckets {
		dist.Shares[b.Label] = float64(counts[i]) / float64(dist.Total)
	}
	dist.RecentShare = float64(recent) / float64(dist.Total)
	dist.StaleShare = float64(stale) / float64(dist.Total)
	return dist
}

// RatingDistribution is one market's user-rating profile (Figure 6).
type RatingDistribution struct {
	Market string
	// UnratedShare is the fraction of listings with no rating (score 0).
	UnratedShare float64
	// HighShare is the fraction rated 4.0 or higher.
	HighShare float64
	// DefaultBandShare is the fraction rated in [2.5, 3.0], the band that
	// exposes PC Online's default-rating behaviour.
	DefaultBandShare float64
	// CDF evaluates the rating CDF at half-star points 0, 0.5, ..., 5.
	CDF []float64
	// Points are the half-star evaluation points matching CDF.
	Points []float64
	Total  int
}

// Ratings computes Figure 6 for every market.
func Ratings(d *Dataset) []RatingDistribution {
	points := make([]float64, 0, 11)
	for v := 0.0; v <= 5.0001; v += 0.5 {
		points = append(points, v)
	}
	var out []RatingDistribution
	for _, m := range d.Markets {
		apps := d.AppsIn(m.Name)
		dist := RatingDistribution{Market: m.Name, Points: points}
		var ratings []float64
		for _, app := range apps {
			r := app.Meta.Rating
			ratings = append(ratings, r)
			switch {
			case r <= 0:
				dist.UnratedShare++
			case r >= 4:
				dist.HighShare++
			}
			if r >= 2.5 && r <= 3.0 {
				dist.DefaultBandShare++
			}
		}
		dist.Total = len(ratings)
		if dist.Total > 0 {
			dist.UnratedShare /= float64(dist.Total)
			dist.HighShare /= float64(dist.Total)
			dist.DefaultBandShare /= float64(dist.Total)
			dist.CDF = stats.NewCDF(ratings).Series(points)
		}
		out = append(out, dist)
	}
	return out
}

// GroupMarkets splits the dataset's market names into Google Play and Chinese
// stores; several figures aggregate by this grouping.
func GroupMarkets(d *Dataset) (googlePlay []string, chinese []string) {
	for _, m := range d.Markets {
		if m.IsChinese() {
			chinese = append(chinese, m.Name)
		} else if m.Name == market.GooglePlay {
			googlePlay = append(googlePlay, m.Name)
		}
	}
	sort.Strings(chinese)
	return googlePlay, chinese
}
