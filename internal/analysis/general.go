package analysis

import (
	"sort"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/stats"
)

// CategoryDistribution is one market's share per consolidated category
// (one column of Figure 1).
type CategoryDistribution struct {
	Market string
	Shares map[appmeta.Category]float64
	// OtherShare is the share of listings whose market-native category
	// could not be mapped (NULL, numeric placeholders, ...).
	OtherShare float64
}

// Categories computes Figure 1: the distribution of consolidated app
// categories per market. One grouped (market, category) count through the
// columnar aggregation engine replaces the per-market histogram sweeps;
// CategoriesOracle keeps the row-at-a-time body and the equivalence suite
// holds the two identical.
func Categories(d *Dataset) []CategoryDistribution {
	res := d.mustAggregate(query.Aggregate{
		GroupBy:    []string{"market", "category"},
		Aggregates: []query.AggSpec{{Op: query.AggCount}},
	})
	counts := map[string]map[string]int{}
	totals := map[string]int{}
	for _, r := range res.Rows {
		m, c, n := r[0].(string), r[1].(string), int(r[2].(int64))
		if counts[m] == nil {
			counts[m] = map[string]int{}
		}
		counts[m][c] = n
		totals[m] += n
	}
	var out []CategoryDistribution
	for _, m := range d.Markets {
		dist := CategoryDistribution{Market: m.Name, Shares: map[appmeta.Category]float64{}}
		if totals[m.Name] == 0 {
			out = append(out, dist)
			continue
		}
		total := float64(totals[m.Name])
		for _, c := range appmeta.Categories() {
			dist.Shares[c] = float64(counts[m.Name][string(c)]) / total
		}
		dist.OtherShare = dist.Shares[appmeta.CategoryOther]
		out = append(out, dist)
	}
	return out
}

// CategoriesOracle is the pre-aggregation serial body of Categories, kept
// verbatim as the oracle for the equivalence tests and the serial-suite
// benchmark baseline.
func CategoriesOracle(d *Dataset) []CategoryDistribution {
	var out []CategoryDistribution
	for _, m := range d.Markets {
		apps := d.AppsIn(m.Name)
		dist := CategoryDistribution{Market: m.Name, Shares: map[appmeta.Category]float64{}}
		if len(apps) == 0 {
			out = append(out, dist)
			continue
		}
		h := stats.NewHistogram()
		for _, app := range apps {
			h.Add(string(app.Category()))
		}
		for _, c := range appmeta.Categories() {
			dist.Shares[c] = h.Share(string(c))
		}
		dist.OtherShare = dist.Shares[appmeta.CategoryOther]
		out = append(out, dist)
	}
	return out
}

// DownloadRow is one row of Figure 2: a market's share of apps per install
// range.
type DownloadRow struct {
	Market string
	// Distribution has one share per Google-Play install range, in
	// stats.DownloadBins order.
	Distribution stats.DownloadDistribution
	// Reported is the number of listings with a reported install count.
	Reported int
}

// Downloads computes Figure 2: the normalized install-range distribution per
// market, as one grouped (market, download_bin) count over the typed columns.
// Markets that do not report installs (Xiaomi, App China) yield an all-zero
// row, matching the blank rows of the paper's figure.
func Downloads(d *Dataset) []DownloadRow {
	res := d.mustAggregate(query.Aggregate{
		GroupBy:    []string{"market", "download_bin"},
		Aggregates: []query.AggSpec{{Op: query.AggCount}},
		Filters:    []query.Filter{{Field: "download_bin", Op: query.OpIsNull, Value: false}},
	})
	binIndex := make(map[string]int, stats.NumDownloadBins())
	for _, b := range stats.DownloadBins() {
		binIndex[b.String()] = int(b)
	}
	type marketBins struct {
		counts   []int // indexed by DownloadBin
		reported int
	}
	perMarket := map[string]*marketBins{}
	for _, r := range res.Rows {
		m, bin, n := r[0].(string), r[1].(string), int(r[2].(int64))
		mb := perMarket[m]
		if mb == nil {
			mb = &marketBins{counts: make([]int, stats.NumDownloadBins())}
			perMarket[m] = mb
		}
		mb.counts[binIndex[bin]] = n
		mb.reported += n
	}
	var out []DownloadRow
	for _, m := range d.Markets {
		row := DownloadRow{Market: m.Name}
		if mb := perMarket[m.Name]; mb != nil {
			row.Reported = mb.reported
			for i := range row.Distribution {
				row.Distribution[i] = float64(mb.counts[i]) / float64(mb.reported)
			}
		}
		out = append(out, row)
	}
	return out
}

// DownloadsOracle is the pre-aggregation serial body of Downloads, kept
// verbatim as the oracle.
func DownloadsOracle(d *Dataset) []DownloadRow {
	var out []DownloadRow
	for _, m := range d.Markets {
		row := DownloadRow{Market: m.Name}
		var installs []int64
		for _, app := range d.AppsIn(m.Name) {
			if app.Meta.ReportsDownloads() {
				installs = append(installs, app.Meta.Downloads)
			}
		}
		row.Reported = len(installs)
		row.Distribution = stats.ComputeDownloadDistribution(installs)
		out = append(out, row)
	}
	return out
}

// APILevelDistribution is Figure 3's data: the share of apps per declared
// minimum API level, for one market group.
type APILevelDistribution struct {
	Group string
	// Shares maps the minimum API level to its share of parsed apps.
	Shares map[int]float64
	// LowAPIShare is the share of apps with min API level below 9, the
	// headline statistic of Section 4.3 (63% in Chinese stores vs 22% on
	// Google Play).
	LowAPIShare float64
	Parsed      int
}

// APILevelsByMarket computes the min-API distribution for every market
// individually (the box-plot population of Figure 3).
func APILevelsByMarket(d *Dataset) map[string]APILevelDistribution {
	out := map[string]APILevelDistribution{}
	for _, m := range d.Markets {
		out[m.Name] = apiLevels(m.Name, d.AppsIn(m.Name))
	}
	return out
}

// APILevels computes the Google Play vs Chinese-markets aggregate of
// Figure 3, each group as one min_sdk count aggregation over the columns
// (min_sdk is null exactly on unparsed listings, so the is_null filter is
// the HasAPK gate).
func APILevels(d *Dataset) (googlePlay, chinese APILevelDistribution) {
	googlePlay = apiLevelsAggregate(d, "Google Play",
		query.Filter{Field: "market", Op: query.OpEq, Value: market.GooglePlay})
	chinese = apiLevelsAggregate(d, "Chinese markets",
		query.Filter{Field: "market_chinese", Op: query.OpEq, Value: true})
	return googlePlay, chinese
}

// APILevelsOracle is the pre-aggregation serial body of APILevels, kept
// verbatim as the oracle.
func APILevelsOracle(d *Dataset) (googlePlay, chinese APILevelDistribution) {
	googlePlay = apiLevels("Google Play", d.GooglePlayApps())
	chinese = apiLevels("Chinese markets", d.ChineseApps())
	return googlePlay, chinese
}

func apiLevelsAggregate(d *Dataset, group string, sel query.Filter) APILevelDistribution {
	res := d.mustAggregate(query.Aggregate{
		GroupBy:    []string{"min_sdk"},
		Aggregates: []query.AggSpec{{Op: query.AggCount}},
		Filters:    []query.Filter{sel, {Field: "min_sdk", Op: query.OpIsNull, Value: false}},
	})
	dist := APILevelDistribution{Group: group, Shares: map[int]float64{}}
	counts := map[int]int{}
	low := 0
	for _, r := range res.Rows {
		level, n := int(r[0].(int64)), int(r[1].(int64))
		counts[level] = n
		dist.Parsed += n
		if level < 9 {
			low += n
		}
	}
	if dist.Parsed == 0 {
		return dist
	}
	for level, n := range counts {
		dist.Shares[level] = float64(n) / float64(dist.Parsed)
	}
	dist.LowAPIShare = float64(low) / float64(dist.Parsed)
	return dist
}

func apiLevels(group string, apps []*App) APILevelDistribution {
	dist := APILevelDistribution{Group: group, Shares: map[int]float64{}}
	counts := map[int]int{}
	low := 0
	for _, app := range apps {
		if !app.HasAPK() {
			continue
		}
		level := app.Parsed.Manifest.MinSDK
		counts[level]++
		dist.Parsed++
		if level < 9 {
			low++
		}
	}
	if dist.Parsed == 0 {
		return dist
	}
	for level, n := range counts {
		dist.Shares[level] = float64(n) / float64(dist.Parsed)
	}
	dist.LowAPIShare = float64(low) / float64(dist.Parsed)
	return dist
}

// ReleaseDateBucket is one bucket of Figure 4's cumulative release/update
// date distribution.
type ReleaseDateBucket struct {
	Label  string
	Before time.Time
}

// ReleaseDateDistribution is the share of apps updated before each cut-off,
// for one market group.
type ReleaseDateDistribution struct {
	Group  string
	Shares map[string]float64
	// RecentShare is the share updated within the 6 months before the
	// crawl (23% for Google Play vs 5% for Chinese stores in the paper).
	RecentShare float64
	// StaleShare is the share not updated in the year before the crawl.
	StaleShare float64
	Total      int
}

// ReleaseDates computes Figure 4 for Google Play and the Chinese markets.
func ReleaseDates(d *Dataset) (googlePlay, chinese ReleaseDateDistribution) {
	return releaseDates("Google Play", d.GooglePlayApps(), d.CrawlTime),
		releaseDates("Chinese markets", d.ChineseApps(), d.CrawlTime)
}

func releaseDates(group string, apps []*App, crawl time.Time) ReleaseDateDistribution {
	if crawl.IsZero() {
		crawl = time.Date(2017, 8, 15, 0, 0, 0, 0, time.UTC)
	}
	dist := ReleaseDateDistribution{Group: group, Shares: map[string]float64{}}
	buckets := []ReleaseDateBucket{
		{Label: "before 2014", Before: time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before 2015", Before: time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before 2016", Before: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before 2017", Before: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Label: "before crawl", Before: crawl},
	}
	counts := make([]int, len(buckets))
	recent, stale := 0, 0
	for _, app := range apps {
		update := app.Meta.UpdateDate
		if update.IsZero() {
			continue
		}
		dist.Total++
		for i, b := range buckets {
			if update.Before(b.Before) {
				counts[i]++
			}
		}
		if update.After(crawl.AddDate(0, -6, 0)) {
			recent++
		}
		if update.Before(crawl.AddDate(-1, 0, 0)) {
			stale++
		}
	}
	if dist.Total == 0 {
		return dist
	}
	for i, b := range buckets {
		dist.Shares[b.Label] = float64(counts[i]) / float64(dist.Total)
	}
	dist.RecentShare = float64(recent) / float64(dist.Total)
	dist.StaleShare = float64(stale) / float64(dist.Total)
	return dist
}

// RatingDistribution is one market's user-rating profile (Figure 6).
type RatingDistribution struct {
	Market string
	// UnratedShare is the fraction of listings with no rating (score 0).
	UnratedShare float64
	// HighShare is the fraction rated 4.0 or higher.
	HighShare float64
	// DefaultBandShare is the fraction rated in [2.5, 3.0], the band that
	// exposes PC Online's default-rating behaviour.
	DefaultBandShare float64
	// CDF evaluates the rating CDF at half-star points 0, 0.5, ..., 5.
	CDF []float64
	// Points are the half-star evaluation points matching CDF.
	Points []float64
	Total  int
}

// Ratings computes Figure 6 for every market.
func Ratings(d *Dataset) []RatingDistribution {
	points := make([]float64, 0, 11)
	for v := 0.0; v <= 5.0001; v += 0.5 {
		points = append(points, v)
	}
	var out []RatingDistribution
	for _, m := range d.Markets {
		apps := d.AppsIn(m.Name)
		dist := RatingDistribution{Market: m.Name, Points: points}
		var ratings []float64
		for _, app := range apps {
			r := app.Meta.Rating
			ratings = append(ratings, r)
			switch {
			case r <= 0:
				dist.UnratedShare++
			case r >= 4:
				dist.HighShare++
			}
			if r >= 2.5 && r <= 3.0 {
				dist.DefaultBandShare++
			}
		}
		dist.Total = len(ratings)
		if dist.Total > 0 {
			dist.UnratedShare /= float64(dist.Total)
			dist.HighShare /= float64(dist.Total)
			dist.DefaultBandShare /= float64(dist.Total)
			dist.CDF = stats.NewCDF(ratings).Series(points)
		}
		out = append(out, dist)
	}
	return out
}

// GroupMarkets splits the dataset's market names into Google Play and Chinese
// stores; several figures aggregate by this grouping.
func GroupMarkets(d *Dataset) (googlePlay []string, chinese []string) {
	for _, m := range d.Markets {
		if m.IsChinese() {
			chinese = append(chinese, m.Name)
		} else if m.Name == market.GooglePlay {
			googlePlay = append(googlePlay, m.Name)
		}
	}
	sort.Strings(chinese)
	return googlePlay, chinese
}
