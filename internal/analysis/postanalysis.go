package analysis

import (
	"marketscope/internal/appmeta"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
)

// RemovalRow is one row of Table 6: how a market's catalog changed between
// the two crawls with respect to the malware identified in the first crawl.
type RemovalRow struct {
	Market string
	// FlaggedFirstCrawl is the number of listings flagged (AV-rank >=
	// threshold) in the first crawl.
	FlaggedFirstCrawl int
	// RemovedShare is the fraction of those listings absent from the second
	// crawl.
	RemovedShare float64
	// OverlappedWithGPRM is the number of this market's flagged listings
	// whose package was also flagged on Google Play AND removed from Google
	// Play between the crawls.
	OverlappedWithGPRM int
	// RemovedShareOfGPRM is the fraction of the overlap that this market
	// also removed.
	RemovedShareOfGPRM float64
}

// PostAnalysis compares the first-crawl dataset with a second-crawl snapshot
// and computes Table 6. threshold is the AV-rank cut-off (10 in the paper).
func PostAnalysis(first *Dataset, second *crawler.Snapshot, threshold int) []RemovalRow {
	first.mustEnrich()
	if threshold <= 0 {
		threshold = 10
	}

	// Google Play removed malware (GPRM): packages flagged on Google Play
	// in the first crawl and absent from Google Play in the second.
	gprm := map[string]bool{}
	for _, app := range first.GooglePlayApps() {
		if app.AVReport == nil || !app.AVReport.Flagged(threshold) {
			continue
		}
		if !second.Has(appmeta.Key{Market: market.GooglePlay, Package: app.Meta.Package}) {
			gprm[app.Meta.Package] = true
		}
	}

	var rows []RemovalRow
	for _, m := range first.Markets {
		row := RemovalRow{Market: m.Name}
		removed := 0
		overlapRemoved := 0
		for _, app := range first.AppsIn(m.Name) {
			if app.AVReport == nil || !app.AVReport.Flagged(threshold) {
				continue
			}
			row.FlaggedFirstCrawl++
			gone := !second.Has(appmeta.Key{Market: m.Name, Package: app.Meta.Package})
			if gone {
				removed++
			}
			if m.Name != market.GooglePlay && gprm[app.Meta.Package] {
				row.OverlappedWithGPRM++
				if gone {
					overlapRemoved++
				}
			}
		}
		if row.FlaggedFirstCrawl > 0 {
			row.RemovedShare = float64(removed) / float64(row.FlaggedFirstCrawl)
		}
		if row.OverlappedWithGPRM > 0 {
			row.RemovedShareOfGPRM = float64(overlapRemoved) / float64(row.OverlappedWithGPRM)
		}
		rows = append(rows, row)
	}
	return rows
}

// StillHostedStats summarizes how much of the malware removed from Google
// Play remains available on Chinese stores after the second crawl
// (Section 7: over 70% in the paper).
type StillHostedStats struct {
	GPRemovedMalware int
	// StillHostedSomewhere is how many of those packages remain listed in
	// at least one Chinese market in the second crawl.
	StillHostedSomewhere int
	Share                float64
}

// StillHosted computes the persistence of Google-Play-removed malware on
// Chinese stores.
func StillHosted(first *Dataset, second *crawler.Snapshot, threshold int) StillHostedStats {
	first.mustEnrich()
	if threshold <= 0 {
		threshold = 10
	}
	gprm := map[string]bool{}
	for _, app := range first.GooglePlayApps() {
		if app.AVReport == nil || !app.AVReport.Flagged(threshold) {
			continue
		}
		if !second.Has(appmeta.Key{Market: market.GooglePlay, Package: app.Meta.Package}) {
			gprm[app.Meta.Package] = true
		}
	}
	_, chinese := GroupMarkets(first)
	var out StillHostedStats
	out.GPRemovedMalware = len(gprm)
	for pkg := range gprm {
		for _, m := range chinese {
			if second.Has(appmeta.Key{Market: m, Package: pkg}) {
				out.StillHostedSomewhere++
				break
			}
		}
	}
	if out.GPRemovedMalware > 0 {
		out.Share = float64(out.StillHostedSomewhere) / float64(out.GPRemovedMalware)
	}
	return out
}
