package analysis

import "testing"

func TestCloneThresholdSweep(t *testing.T) {
	f := testFixture(t)
	points := CloneThresholdSweep(f.dataset, []float64{0.01, 0.05, 0.20})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Loosening the threshold can only admit more candidate pairs.
	for i := 1; i < len(points); i++ {
		if points[i].CandidatePairs < points[i-1].CandidatePairs {
			t.Errorf("candidate pairs decreased when loosening threshold: %+v", points)
		}
		if points[i].Threshold <= points[i-1].Threshold {
			t.Errorf("thresholds not echoed in order: %+v", points)
		}
	}
	// The default sweep must also work.
	if got := CloneThresholdSweep(f.dataset, nil); len(got) == 0 {
		t.Error("default sweep empty")
	}
}

func TestCompareLibraryFiltering(t *testing.T) {
	f := testFixture(t)
	cmp := CompareLibraryFiltering(f.dataset)
	if cmp.WithFiltering.Threshold != cmp.WithoutFiltering.Threshold {
		t.Error("comparison ran at different thresholds")
	}
	// Shared library code makes unrelated apps look more alike, so removing
	// the filter must not reduce the candidate set.
	if cmp.WithoutFiltering.CandidatePairs < cmp.WithFiltering.CandidatePairs {
		t.Errorf("library filtering should prune candidate pairs: with=%d without=%d",
			cmp.WithFiltering.CandidatePairs, cmp.WithoutFiltering.CandidatePairs)
	}
}

func TestAVRankSweep(t *testing.T) {
	f := testFixture(t)
	points := AVRankSweep(f.dataset, []int{1, 10, 20})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		// Raising the threshold can only reduce flagged shares.
		if points[i].GooglePlayShare > points[i-1].GooglePlayShare+1e-9 {
			t.Errorf("GP share increased with threshold: %+v", points)
		}
		if points[i].ChineseAvgShare > points[i-1].ChineseAvgShare+1e-9 {
			t.Errorf("Chinese share increased with threshold: %+v", points)
		}
	}
	// At every threshold the Chinese average stays above Google Play.
	for _, p := range points {
		if p.ChineseAvgShare < p.GooglePlayShare {
			t.Errorf("threshold %d: Chinese share (%.3f) below Google Play (%.3f)",
				p.Threshold, p.ChineseAvgShare, p.GooglePlayShare)
		}
	}
	if got := AVRankSweep(f.dataset, nil); len(got) != 5 {
		t.Errorf("default sweep = %d points, want 5", len(got))
	}
}
