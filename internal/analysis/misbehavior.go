package analysis

import (
	"sort"

	"marketscope/internal/clonedetect"
	"marketscope/internal/permissions"
)

// MisbehaviorRow is one row of Table 3: the share of a market's listings
// flagged as fake, signature-based clones and code-based clones.
type MisbehaviorRow struct {
	Market string
	// FakeShare, SignatureCloneShare and CodeCloneShare are fractions of
	// the market's listings.
	FakeShare           float64
	SignatureCloneShare float64
	CodeCloneShare      float64
	// Absolute counts behind the shares.
	Fakes           int
	SignatureClones int
	CodeClones      int
	Apps            int
}

// MisbehaviorOptions tunes the clone/fake detectors.
type MisbehaviorOptions struct {
	Fake clonedetect.FakeConfig
	Code clonedetect.CodeConfig
	// Clone schedules the code-clone comparison stage: worker-pool size and
	// candidate-index probe width. The zero value runs the indexed detector
	// with one worker per CPU; Clone.Workers == 1 selects the serial oracle
	// whose output every other configuration reproduces exactly.
	Clone clonedetect.CloneOptions
	// FilterLibraries strips detected third-party library code from the
	// feature vectors before code-clone detection (the WuKong refinement);
	// disabling it is the ablation case.
	FilterLibraries bool
}

// DefaultMisbehaviorOptions returns the paper's settings.
func DefaultMisbehaviorOptions() MisbehaviorOptions {
	return MisbehaviorOptions{
		Fake:            clonedetect.DefaultFakeConfig(),
		Code:            clonedetect.DefaultCodeConfig(),
		FilterLibraries: true,
	}
}

// MisbehaviorResult bundles the three detectors' outputs plus the per-market
// rows of Table 3 and the clone-source heatmap of Figure 10.
type MisbehaviorResult struct {
	Rows    []MisbehaviorRow
	Fakes   *clonedetect.FakeResult
	SigRes  *clonedetect.SignatureResult
	CodeRes *clonedetect.CodeResult
	// Heatmap[source][destination] counts code clones by market of origin
	// and market of publication.
	Heatmap map[string]map[string]int
	// Averages across all markets (the "Average" row of Table 3).
	AvgFakeShare float64
	AvgSigShare  float64
	AvgCodeShare float64
}

// Misbehavior runs the fake-app and clone detectors over the dataset and
// assembles Table 3 and Figure 10.
func Misbehavior(d *Dataset, opts MisbehaviorOptions) *MisbehaviorResult {
	d.mustEnrich()
	instances := cloneInstances(d, opts.FilterLibraries)

	res := &MisbehaviorResult{
		Fakes:   clonedetect.DetectFakes(instances, opts.Fake),
		SigRes:  clonedetect.DetectSignatureClones(instances),
		CodeRes: clonedetect.DetectCodeClonesWith(instances, opts.Code, opts.Clone),
	}
	res.Heatmap = res.CodeRes.SourceHeatmap()

	fakeByMarket := res.Fakes.FakeByMarket()
	sigByMarket := res.SigRes.CloneByMarket()
	codeByMarket := res.CodeRes.CloneByMarket()

	var sumFake, sumSig, sumCode float64
	counted := 0
	for _, m := range d.Markets {
		apps := len(d.AppsIn(m.Name))
		row := MisbehaviorRow{
			Market:          m.Name,
			Apps:            apps,
			Fakes:           fakeByMarket[m.Name],
			SignatureClones: sigByMarket[m.Name],
			CodeClones:      codeByMarket[m.Name],
		}
		if apps > 0 {
			row.FakeShare = float64(row.Fakes) / float64(apps)
			row.SignatureCloneShare = float64(row.SignatureClones) / float64(apps)
			row.CodeCloneShare = float64(row.CodeClones) / float64(apps)
			sumFake += row.FakeShare
			sumSig += row.SignatureCloneShare
			sumCode += row.CodeCloneShare
			counted++
		}
		res.Rows = append(res.Rows, row)
	}
	if counted > 0 {
		res.AvgFakeShare = sumFake / float64(counted)
		res.AvgSigShare = sumSig / float64(counted)
		res.AvgCodeShare = sumCode / float64(counted)
	}
	return res
}

// CloneInstances converts the dataset's parsed listings into the clone
// detectors' input representation, optionally stripping detected third-party
// library code from the feature vectors. It is what Misbehavior feeds the
// detectors; benchmarks use it to isolate the detection stage from the
// conversion.
func (d *Dataset) CloneInstances(filterLibraries bool) []*clonedetect.AppInstance {
	d.mustEnrich()
	return cloneInstances(d, filterLibraries)
}

// cloneInstances converts the dataset's parsed listings into the clone
// detector's input representation, optionally filtering library code.
func cloneInstances(d *Dataset, filterLibraries bool) []*clonedetect.AppInstance {
	var out []*clonedetect.AppInstance
	for _, app := range d.Apps {
		if !app.HasAPK() {
			continue
		}
		var exclude []string
		if filterLibraries {
			for _, det := range app.Libraries {
				exclude = append(exclude, det.Prefix)
			}
		}
		code := app.Parsed.Dex
		filtered := code
		if len(exclude) > 0 {
			filtered = code.WithoutPrefixes(exclude)
		}
		downloads := app.Meta.Downloads
		if downloads < 0 {
			downloads = 0
		}
		out = append(out, &clonedetect.AppInstance{
			Market:    app.Meta.Market,
			Package:   app.Meta.Package,
			AppName:   app.Meta.AppName,
			Downloads: downloads,
			Developer: app.Parsed.Developer(),
			Vector:    clonedetect.NewVector(filtered, nil),
			Segments:  filtered.CodeSegments(),
		})
	}
	return out
}

// OverPrivilegeStats is Figure 11's data for one market group.
type OverPrivilegeStats struct {
	Group string
	// OverPrivilegedShare is the fraction of parsed apps requesting at
	// least one unused permission (65% GP vs 82% Chinese in the paper).
	OverPrivilegedShare float64
	// Distribution maps the number of unused permissions (0..9, with 10
	// standing for "10 or more") to the share of parsed apps.
	Distribution map[int]float64
	// TopUnused lists the most commonly unused dangerous permissions with
	// their share among over-privileged apps.
	TopUnused []PermissionShare
	Parsed    int
}

// PermissionShare pairs a permission with a share.
type PermissionShare struct {
	Permission string
	Share      float64
}

// OverPrivilege computes Figure 11 for Google Play and the Chinese markets.
func OverPrivilege(d *Dataset) (googlePlay, chinese OverPrivilegeStats) {
	d.mustEnrich()
	return overPrivilege("Google Play", d.GooglePlayApps()),
		overPrivilege("Chinese markets", d.ChineseApps())
}

// OverPrivilegeByMarket computes the per-market distributions backing the
// box-plots of Figure 11.
func OverPrivilegeByMarket(d *Dataset) map[string]OverPrivilegeStats {
	d.mustEnrich()
	out := map[string]OverPrivilegeStats{}
	for _, m := range d.Markets {
		out[m.Name] = overPrivilege(m.Name, d.AppsIn(m.Name))
	}
	return out
}

func overPrivilege(group string, apps []*App) OverPrivilegeStats {
	out := OverPrivilegeStats{Group: group, Distribution: map[int]float64{}}
	counts := map[int]int{}
	over := 0
	unusedCounts := map[string]int{}
	for _, app := range apps {
		if app.PermUsage == nil {
			continue
		}
		out.Parsed++
		n := app.PermUsage.OverPrivilegedCount()
		bucket := n
		if bucket > 10 {
			bucket = 10
		}
		counts[bucket]++
		if n > 0 {
			over++
			for _, p := range app.PermUsage.Unused {
				if permissions.IsDangerous(p) {
					unusedCounts[p]++
				}
			}
		}
	}
	if out.Parsed == 0 {
		return out
	}
	for bucket, n := range counts {
		out.Distribution[bucket] = float64(n) / float64(out.Parsed)
	}
	out.OverPrivilegedShare = float64(over) / float64(out.Parsed)
	perms := make([]string, 0, len(unusedCounts))
	for p := range unusedCounts {
		perms = append(perms, p)
	}
	sort.Slice(perms, func(i, j int) bool {
		if unusedCounts[perms[i]] != unusedCounts[perms[j]] {
			return unusedCounts[perms[i]] > unusedCounts[perms[j]]
		}
		return perms[i] < perms[j]
	})
	for i, p := range perms {
		if i >= 5 {
			break
		}
		share := float64(unusedCounts[p]) / float64(max(over, 1))
		out.TopUnused = append(out.TopUnused, PermissionShare{Permission: p, Share: share})
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
