package analysis

import (
	"sync"
	"testing"

	"marketscope/internal/appmeta"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/synth"
)

// fixture holds a generated corpus, its first- and second-crawl snapshots and
// the enriched dataset, shared by all tests in this package.
type fixture struct {
	eco     *synth.Ecosystem
	first   *crawler.Snapshot
	second  *crawler.Snapshot
	dataset *Dataset
}

var (
	fixtureOnce sync.Once
	fixtureVal  *fixture
	fixtureErr  error
)

func testFixture(t *testing.T) *fixture {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := synth.SmallConfig()
		cfg.NumApps = 320
		cfg.NumDevelopers = 120
		eco, err := synth.Generate(cfg)
		if err != nil {
			fixtureErr = err
			return
		}
		stores, err := eco.Populate()
		if err != nil {
			fixtureErr = err
			return
		}
		first, err := crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
		if err != nil {
			fixtureErr = err
			return
		}
		eco.ApplyModeration(stores)
		second, err := crawler.SnapshotFromStores(stores, false, cfg.CrawlDate.AddDate(0, 8, 0))
		if err != nil {
			fixtureErr = err
			return
		}
		dataset, err := BuildDataset(first)
		if err != nil {
			fixtureErr = err
			return
		}
		dataset.Enrich(DefaultEnrichOptions())
		fixtureVal = &fixture{eco: eco, first: first, second: second, dataset: dataset}
	})
	if fixtureErr != nil {
		t.Fatalf("fixture: %v", fixtureErr)
	}
	return fixtureVal
}

func chineseAverage(rows []MalwareRow, d *Dataset, pick func(MalwareRow) float64) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if marketIsChinese(d, r.Market) && r.Parsed > 0 {
			sum += pick(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestBuildDatasetShape(t *testing.T) {
	f := testFixture(t)
	d := f.dataset
	if d.NumListings() != f.first.NumRecords() {
		t.Errorf("dataset listings = %d, snapshot records = %d", d.NumListings(), f.first.NumRecords())
	}
	if len(d.Markets) == 0 || d.Markets[0].Name != market.GooglePlay {
		t.Errorf("markets not in canonical order: %v", d.MarketNames())
	}
	parsed := 0
	for _, app := range d.Apps {
		if app.HasAPK() {
			parsed++
			if app.Parsed.Manifest.Package != app.Meta.Package {
				t.Fatalf("parsed package mismatch for %s", app.Meta.Package)
			}
		}
	}
	if parsed == 0 {
		t.Fatal("no APKs parsed")
	}
	if !d.Enriched() {
		t.Fatal("fixture dataset should be enriched")
	}
	if d.LibraryDetector() == nil {
		t.Error("library detector missing after enrichment")
	}
}

func TestBuildDatasetNilAndEmpty(t *testing.T) {
	if _, err := BuildDataset(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	empty, err := BuildDataset(crawler.NewSnapshot(synth.SmallConfig().CrawlDate))
	if err != nil {
		t.Fatalf("empty snapshot rejected: %v", err)
	}
	if empty.NumListings() != 0 {
		t.Error("empty snapshot produced listings")
	}
}

func TestMustEnrichPanics(t *testing.T) {
	d, err := BuildDataset(crawler.NewSnapshot(synth.SmallConfig().CrawlDate))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("detector-backed analysis did not panic on unenriched dataset")
		}
	}()
	LibraryUsage(d)
}

func TestMarketOverviewTable1(t *testing.T) {
	f := testFixture(t)
	rows := MarketOverview(f.dataset)
	if len(rows) != len(f.dataset.Markets) {
		t.Fatalf("rows = %d, markets = %d", len(rows), len(f.dataset.Markets))
	}
	byName := map[string]MarketOverviewRow{}
	totalApps := 0
	for _, r := range rows {
		byName[r.Profile.Name] = r
		totalApps += r.Apps
		if r.Apps > 0 && r.Developers == 0 {
			t.Errorf("%s: apps without developers", r.Profile.Name)
		}
		if r.UniqueDeveloperShare < 0 || r.UniqueDeveloperShare > 1 {
			t.Errorf("%s: unique developer share out of range", r.Profile.Name)
		}
	}
	if totalApps != f.dataset.NumListings() {
		t.Errorf("sum of per-market apps = %d, listings = %d", totalApps, f.dataset.NumListings())
	}
	gp := byName[market.GooglePlay]
	if gp.Apps == 0 || gp.AggregatedDownloads == 0 {
		t.Errorf("Google Play row empty: %+v", gp)
	}
	totals := Totals(f.dataset, rows)
	if totals.Apps != totalApps || totals.Developers == 0 {
		t.Errorf("totals inconsistent: %+v", totals)
	}
	if totals.ChineseDownloads == 0 {
		t.Error("Chinese aggregate downloads zero")
	}
}

func TestDownloadConcentration(t *testing.T) {
	f := testFixture(t)
	rows := DownloadConcentration(f.dataset)
	for _, r := range rows {
		if r.TopOnePct < 0 || r.TopOnePct > 1 || r.TopTenthPct > r.TopOnePct+1e-9 {
			t.Errorf("%s: implausible concentration %+v", r.Market, r)
		}
	}
}

func TestCategoriesFigure1(t *testing.T) {
	f := testFixture(t)
	dists := Categories(f.dataset)
	for _, dist := range dists {
		sum := 0.0
		for _, share := range dist.Shares {
			sum += share
		}
		apps := len(f.dataset.AppsIn(dist.Market))
		if apps > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("%s: category shares sum to %g", dist.Market, sum)
		}
		if apps > 80 && dist.Shares[appmeta.CategoryGame] < 0.10 {
			t.Errorf("%s: game share %g implausibly low", dist.Market, dist.Shares[appmeta.CategoryGame])
		}
	}
}

func TestDownloadsFigure2(t *testing.T) {
	f := testFixture(t)
	rows := Downloads(f.dataset)
	for _, row := range rows {
		sum := 0.0
		for _, share := range row.Distribution {
			sum += share
		}
		if row.Reported > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("%s: download shares sum to %g", row.Market, sum)
		}
		profile, _ := market.ProfileByName(row.Market)
		if !profile.ReportsDownloads && row.Reported != 0 {
			t.Errorf("%s reports no downloads but %d records had counts", row.Market, row.Reported)
		}
	}
}

func TestAPILevelsFigure3(t *testing.T) {
	f := testFixture(t)
	gp, cn := APILevels(f.dataset)
	if gp.Parsed == 0 || cn.Parsed == 0 {
		t.Fatalf("parsed counts: gp=%d cn=%d", gp.Parsed, cn.Parsed)
	}
	if gp.LowAPIShare >= cn.LowAPIShare {
		t.Errorf("Google Play low-API share (%.2f) should be below Chinese markets (%.2f)",
			gp.LowAPIShare, cn.LowAPIShare)
	}
	perMarket := APILevelsByMarket(f.dataset)
	if len(perMarket) != len(f.dataset.Markets) {
		t.Errorf("per-market API levels missing entries")
	}
}

func TestReleaseDatesFigure4(t *testing.T) {
	f := testFixture(t)
	gp, cn := ReleaseDates(f.dataset)
	if gp.Total == 0 || cn.Total == 0 {
		t.Fatal("empty release-date distributions")
	}
	if gp.RecentShare <= cn.RecentShare {
		t.Errorf("Google Play recent-update share (%.2f) should exceed Chinese markets (%.2f)",
			gp.RecentShare, cn.RecentShare)
	}
	if cn.Shares["before crawl"] < 0.99 {
		t.Errorf("all updates should predate the crawl, got %.2f", cn.Shares["before crawl"])
	}
}

func TestLibraryUsageFigure5(t *testing.T) {
	f := testFixture(t)
	rows := LibraryUsage(f.dataset)
	nonEmpty := 0
	for _, r := range rows {
		if r.Parsed == 0 {
			continue
		}
		nonEmpty++
		if r.ShareWithLibraries < 0.5 {
			t.Errorf("%s: only %.2f of apps embed libraries", r.Market, r.ShareWithLibraries)
		}
		if r.AvgLibraries <= 0 || r.AvgAdLibraries < 0 {
			t.Errorf("%s: implausible averages %+v", r.Market, r)
		}
		if r.ShareWithAds > r.ShareWithLibraries+1e-9 {
			t.Errorf("%s: ad share exceeds library share", r.Market)
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no markets with parsed apps")
	}
}

func TestTopLibrariesTable2(t *testing.T) {
	f := testFixture(t)
	gp, cn := TopLibraries(f.dataset, 10)
	if len(gp) == 0 || len(cn) == 0 {
		t.Fatalf("empty library rankings: gp=%d cn=%d", len(gp), len(cn))
	}
	gpNames := map[string]bool{}
	for _, r := range gp {
		gpNames[r.Name] = true
	}
	if !gpNames["Google Mobile Services"] && !gpNames["Google AdMob"] {
		t.Errorf("Google Play top libraries miss Google SDKs: %+v", gp)
	}
	cnHasChinese := false
	for _, r := range cn {
		switch r.Name {
		case "Umeng", "Tencent WeChat SDK", "Baidu SDK (Map/Push)", "Alipay":
			cnHasChinese = true
		}
	}
	if !cnHasChinese {
		t.Errorf("Chinese top libraries miss Chinese SDKs: %+v", cn)
	}
	gpAds, cnAds := AdEcosystem(f.dataset)
	if gpAds.TopAdShare > 0 && cnAds.TopAdShare > 0 {
		if gpAds.TopAdShare <= cnAds.TopAdShare-0.25 {
			t.Errorf("Google Play ad market should be more concentrated: gp=%.2f cn=%.2f",
				gpAds.TopAdShare, cnAds.TopAdShare)
		}
	}
	if libs := ChineseSpecificLibraries(f.dataset); len(libs) == 0 {
		t.Error("no Chinese-specific libraries detected")
	}
}

func TestRatingsFigure6(t *testing.T) {
	f := testFixture(t)
	rows := Ratings(f.dataset)
	var gp RatingDistribution
	cnUnrated, cnN := 0.0, 0
	for _, r := range rows {
		if r.Total == 0 {
			continue
		}
		for i := 1; i < len(r.CDF); i++ {
			if r.CDF[i] < r.CDF[i-1]-1e-9 {
				t.Errorf("%s: rating CDF not monotone", r.Market)
			}
		}
		if r.Market == market.GooglePlay {
			gp = r
		} else if marketIsChinese(f.dataset, r.Market) {
			cnUnrated += r.UnratedShare
			cnN++
		}
	}
	if cnN == 0 || gp.Total == 0 {
		t.Fatal("missing rating distributions")
	}
	if gp.UnratedShare >= cnUnrated/float64(cnN) {
		t.Errorf("Google Play unrated share (%.2f) should be below Chinese average (%.2f)",
			gp.UnratedShare, cnUnrated/float64(cnN))
	}
}

func TestPublishingFigure7(t *testing.T) {
	f := testFixture(t)
	stats := Publishing(f.dataset)
	if stats.Developers == 0 {
		t.Fatal("no developers")
	}
	cdf := stats.MarketsPerDeveloperCDF
	if len(cdf) != market.NumMarkets() {
		t.Fatalf("CDF evaluated at %d points", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1]-1e-9 {
			t.Fatal("developer-coverage CDF not monotone")
		}
	}
	if cdf[len(cdf)-1] < 0.999 {
		t.Errorf("CDF should reach 1 at 17 markets, got %g", cdf[len(cdf)-1])
	}
	if stats.SingleMarketShare <= 0.2 {
		t.Errorf("single-market developer share %.2f implausibly low", stats.SingleMarketShare)
	}
	if stats.GPDevsNotInChineseShare <= 0.25 {
		t.Errorf("GP-only developer share %.2f too low vs paper's 57%%", stats.GPDevsNotInChineseShare)
	}
	if stats.ChineseDevsNotOnGPShare <= 0.25 {
		t.Errorf("Chinese-only developer share %.2f too low vs paper's ~48%%", stats.ChineseDevsNotOnGPShare)
	}
}

func TestStoreOverlapSection52(t *testing.T) {
	f := testFixture(t)
	rows := StoreOverlap(f.dataset)
	byName := map[string]StoreOverlapRow{}
	for _, r := range rows {
		byName[r.Market] = r
		if r.SingleStoreShare < 0 || r.SingleStoreShare > 1 {
			t.Errorf("%s: single-store share out of range", r.Market)
		}
	}
	gp := byName[market.GooglePlay]
	if gp.Apps > 0 && gp.SingleStoreShare < 0.3 {
		t.Errorf("Google Play single-store share %.2f implausibly low", gp.SingleStoreShare)
	}
}

func TestClustersFigure8(t *testing.T) {
	f := testFixture(t)
	c := Clusters(f.dataset)
	for name, series := range map[string][]float64{
		"versions": c.VersionsPerPackage, "names": c.NameClusterSize, "developers": c.DevelopersPerPackage,
	} {
		if len(series) == 0 {
			t.Fatalf("%s CDF empty", name)
		}
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1]-1e-9 {
				t.Errorf("%s CDF not monotone", name)
			}
		}
	}
	if c.MultiDeveloperShare <= 0 {
		t.Error("no multi-developer packages despite injected signature clones")
	}
	if c.SameNameShare <= 0 {
		t.Error("no same-name packages despite injected fakes")
	}
}

func TestOutdatedFigure9(t *testing.T) {
	f := testFixture(t)
	rows := Outdated(f.dataset)
	byName := map[string]OutdatedRow{}
	sumCN, nCN := 0.0, 0
	for _, r := range rows {
		byName[r.Market] = r
		if r.UpToDateShare < 0 || r.UpToDateShare > 1 {
			t.Errorf("%s: up-to-date share out of range", r.Market)
		}
		if marketIsChinese(f.dataset, r.Market) && r.MultiStoreApps > 0 {
			sumCN += r.UpToDateShare
			nCN++
		}
	}
	gp := byName[market.GooglePlay]
	if nCN > 0 && gp.MultiStoreApps > 0 && gp.UpToDateShare <= sumCN/float64(nCN) {
		t.Errorf("Google Play up-to-date share (%.2f) should exceed Chinese average (%.2f)",
			gp.UpToDateShare, sumCN/float64(nCN))
	}
}

func TestIdenticalAppsSection53(t *testing.T) {
	f := testFixture(t)
	stats := IdenticalApps(f.dataset)
	if stats.Triples == 0 {
		t.Skip("no multi-market triples in this corpus")
	}
	if stats.HashMismatchTriples == 0 {
		t.Error("channel files should make multi-market archives differ")
	}
	if stats.HashMismatchTriples > stats.Triples {
		t.Error("mismatch count exceeds triple count")
	}
}

func TestMisbehaviorTable3AndFigure10(t *testing.T) {
	f := testFixture(t)
	res := Misbehavior(f.dataset, DefaultMisbehaviorOptions())
	if len(res.Rows) != len(f.dataset.Markets) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.AvgCodeShare <= 0 || res.AvgSigShare <= 0 || res.AvgFakeShare <= 0 {
		t.Errorf("average misbehaviour shares should be positive: %+v", res)
	}
	var gpRow MisbehaviorRow
	for _, r := range res.Rows {
		if r.Market == market.GooglePlay {
			gpRow = r
		}
		if r.FakeShare < 0 || r.FakeShare > 1 || r.CodeCloneShare > 1 {
			t.Errorf("%s: shares out of range: %+v", r.Market, r)
		}
	}
	if gpRow.Apps > 0 && gpRow.FakeShare > res.AvgFakeShare*1.5+0.001 {
		t.Errorf("Google Play fake share (%.4f) should not greatly exceed the average (%.4f)",
			gpRow.FakeShare, res.AvgFakeShare)
	}
	if len(res.Heatmap) == 0 {
		t.Error("clone-source heatmap empty")
	}
}

func TestOverPrivilegeFigure11(t *testing.T) {
	f := testFixture(t)
	gp, cn := OverPrivilege(f.dataset)
	if gp.Parsed == 0 || cn.Parsed == 0 {
		t.Fatal("no over-privilege data")
	}
	if gp.OverPrivilegedShare >= cn.OverPrivilegedShare {
		t.Errorf("Google Play over-privileged share (%.2f) should be below Chinese markets (%.2f)",
			gp.OverPrivilegedShare, cn.OverPrivilegedShare)
	}
	sum := 0.0
	for _, share := range cn.Distribution {
		sum += share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("over-privilege distribution sums to %g", sum)
	}
	if len(cn.TopUnused) == 0 {
		t.Error("no common unused dangerous permissions reported")
	}
	perMarket := OverPrivilegeByMarket(f.dataset)
	if len(perMarket) != len(f.dataset.Markets) {
		t.Error("per-market over-privilege missing entries")
	}
}

func TestMalwareTable4(t *testing.T) {
	f := testFixture(t)
	rows := MalwarePrevalence(f.dataset)
	var gp MalwareRow
	for _, r := range rows {
		if r.ShareAtLeast1 < r.ShareAtLeast10 || r.ShareAtLeast10 < r.ShareAtLeast20 {
			t.Errorf("%s: threshold monotonicity violated: %+v", r.Market, r)
		}
		if r.Market == market.GooglePlay {
			gp = r
		}
	}
	cnAvg10 := chineseAverage(rows, f.dataset, func(r MalwareRow) float64 { return r.ShareAtLeast10 })
	if gp.Parsed == 0 {
		t.Fatal("no Google Play scans")
	}
	if gp.ShareAtLeast10 >= cnAvg10 {
		t.Errorf("Google Play malware share (%.3f) should be below Chinese average (%.3f)",
			gp.ShareAtLeast10, cnAvg10)
	}
	avg := AverageChineseMalware(f.dataset, rows)
	if avg.ShareAtLeast10 <= 0 {
		t.Error("Chinese average malware share should be positive")
	}
}

func TestTopMalwareTable5(t *testing.T) {
	f := testFixture(t)
	entries := TopMalware(f.dataset, 10)
	if len(entries) == 0 {
		t.Fatal("no top malware entries")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].AVRank > entries[i-1].AVRank {
			t.Error("top malware not sorted by AV-rank")
		}
	}
	if entries[0].AVRank < 10 {
		t.Errorf("top entry AV-rank = %d, implausibly low", entries[0].AVRank)
	}
	if len(entries[0].Markets) == 0 {
		t.Error("top entry lists no markets")
	}
}

func TestMalwareFamiliesFigure12(t *testing.T) {
	f := testFixture(t)
	_, cn := MalwareFamilies(f.dataset, 10, 15)
	if len(cn) == 0 {
		t.Fatal("no Chinese-market malware families")
	}
	total := 0.0
	for _, fs := range cn {
		total += fs.Share
		if fs.Count <= 0 {
			t.Errorf("family %q with non-positive count", fs.Family)
		}
	}
	if total > 1.001 {
		t.Errorf("family shares exceed 1: %g", total)
	}
	seen := map[string]bool{}
	for _, fs := range cn {
		seen[fs.Family] = true
	}
	anyKnown := false
	for _, fam := range []string{"kuguo", "airpush", "smsreg", "dowgin", "gappusin", "youmi", "revmob", "secapk"} {
		if seen[fam] {
			anyKnown = true
		}
	}
	if !anyKnown {
		t.Errorf("no known family among Chinese-market labels: %+v", cn)
	}
}

func TestRepackagedMalware(t *testing.T) {
	f := testFixture(t)
	mis := Misbehavior(f.dataset, DefaultMisbehaviorOptions())
	stats := RepackagedMalware(f.dataset, mis, 10)
	if stats.FlaggedPackages == 0 {
		t.Fatal("no flagged packages")
	}
	if stats.RepackagedShare < 0 || stats.RepackagedShare > 1 {
		t.Errorf("repackaged share out of range: %+v", stats)
	}
}

func TestPostAnalysisTable6(t *testing.T) {
	f := testFixture(t)
	rows := PostAnalysis(f.dataset, f.second, 10)
	var gp RemovalRow
	sumCN, nCN := 0.0, 0
	for _, r := range rows {
		if r.RemovedShare < 0 || r.RemovedShare > 1 {
			t.Errorf("%s: removal share out of range", r.Market)
		}
		if r.Market == market.GooglePlay {
			gp = r
		} else if marketIsChinese(f.dataset, r.Market) && r.FlaggedFirstCrawl > 0 {
			sumCN += r.RemovedShare
			nCN++
		}
	}
	if gp.FlaggedFirstCrawl == 0 || nCN == 0 {
		t.Skip("not enough flagged listings for removal comparison")
	}
	if gp.RemovedShare <= sumCN/float64(nCN) {
		t.Errorf("Google Play removal share (%.2f) should exceed Chinese average (%.2f)",
			gp.RemovedShare, sumCN/float64(nCN))
	}
	still := StillHosted(f.dataset, f.second, 10)
	if still.GPRemovedMalware > 0 && (still.Share < 0 || still.Share > 1) {
		t.Errorf("still-hosted share out of range: %+v", still)
	}
}

func TestRadarFigure13(t *testing.T) {
	f := testFixture(t)
	rows := Radar(f.dataset, nil)
	if len(rows) == 0 {
		t.Fatal("no radar rows")
	}
	for _, r := range rows {
		if len(r.Values) == 0 {
			t.Errorf("%s: empty metric vector", r.Market)
		}
		for metric, v := range r.Values {
			if v < 0 || v > 100.0001 {
				t.Errorf("%s: metric %s = %g out of [0,100]", r.Market, metric, v)
			}
		}
	}
}
