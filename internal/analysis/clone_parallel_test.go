package analysis

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"marketscope/internal/crawler"
	"marketscope/internal/synth"
)

// cloneOracleDataset builds a seeded synthetic corpus with aggressive clone
// injection, enriched and ready for the misbehavior analysis.
func cloneOracleDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.NumApps = 150
	cfg.NumDevelopers = 60
	cfg.CloneRate = 1.5
	cfg.FakeRate = 1.0
	eco, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := eco.Populate()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDataset(snap)
	if err != nil {
		t.Fatal(err)
	}
	d.Enrich(DefaultEnrichOptions())
	return d
}

// TestParallelCloneMatchesSerialOracle runs the full misbehavior analysis
// with the indexed detector at several worker counts over a seeded synth
// corpus and compares pairs, clusters, heatmap and per-market clone counts
// element by element against the Clone.Workers == 1 serial oracle.
func TestParallelCloneMatchesSerialOracle(t *testing.T) {
	d := cloneOracleDataset(t)

	oracleOpts := DefaultMisbehaviorOptions()
	oracleOpts.Clone.Workers = 1
	oracle := Misbehavior(d, oracleOpts)
	if len(oracle.CodeRes.Pairs) == 0 {
		t.Fatal("oracle found no code clones; the equivalence check is vacuous")
	}

	for _, workers := range []int{0, 2, runtime.NumCPU()} {
		opts := DefaultMisbehaviorOptions()
		opts.Clone.Workers = workers
		got := Misbehavior(d, opts)
		label := fmt.Sprintf("workers %d", workers)

		if len(got.CodeRes.Pairs) != len(oracle.CodeRes.Pairs) {
			t.Fatalf("%s: %d code pairs, oracle %d", label, len(got.CodeRes.Pairs), len(oracle.CodeRes.Pairs))
		}
		for i := range got.CodeRes.Pairs {
			if got.CodeRes.Pairs[i] != oracle.CodeRes.Pairs[i] {
				t.Fatalf("%s: code pair %d = %+v, oracle %+v", label, i, got.CodeRes.Pairs[i], oracle.CodeRes.Pairs[i])
			}
		}
		if got.CodeRes.CandidatePairs != oracle.CodeRes.CandidatePairs {
			t.Errorf("%s: CandidatePairs = %d, oracle %d", label, got.CodeRes.CandidatePairs, oracle.CodeRes.CandidatePairs)
		}
		if !reflect.DeepEqual(got.SigRes.Pairs, oracle.SigRes.Pairs) {
			t.Errorf("%s: signature pairs diverged", label)
		}
		if !reflect.DeepEqual(got.SigRes.Clusters, oracle.SigRes.Clusters) {
			t.Errorf("%s: signature clusters diverged", label)
		}
		if !reflect.DeepEqual(got.Heatmap, oracle.Heatmap) {
			t.Errorf("%s: heatmap diverged:\n%v\nvs\n%v", label, got.Heatmap, oracle.Heatmap)
		}
		if !reflect.DeepEqual(got.CodeRes.CloneByMarket(), oracle.CodeRes.CloneByMarket()) {
			t.Errorf("%s: CloneByMarket diverged: %v vs %v", label, got.CodeRes.CloneByMarket(), oracle.CodeRes.CloneByMarket())
		}
		if !reflect.DeepEqual(got.Rows, oracle.Rows) {
			t.Errorf("%s: Table 3 rows diverged", label)
		}
	}
}

// TestConcurrentMisbehavior runs the misbehavior analysis from several
// goroutines over one shared dataset — the detectors and the dataset reads
// must be race-free (exercised under -race in CI).
func TestConcurrentMisbehavior(t *testing.T) {
	d := cloneOracleDataset(t)
	oracleOpts := DefaultMisbehaviorOptions()
	oracleOpts.Clone.Workers = 1
	oracle := Misbehavior(d, oracleOpts)

	var wg sync.WaitGroup
	results := make([]*MisbehaviorResult, 3)
	for k := range results {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k] = Misbehavior(d, DefaultMisbehaviorOptions())
		}(k)
	}
	wg.Wait()
	for k, got := range results {
		if !reflect.DeepEqual(got.CodeRes.Pairs, oracle.CodeRes.Pairs) {
			t.Errorf("caller %d: code pairs diverged from the oracle", k)
		}
		if !reflect.DeepEqual(got.Rows, oracle.Rows) {
			t.Errorf("caller %d: Table 3 rows diverged", k)
		}
	}
}
