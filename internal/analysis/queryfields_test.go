package analysis

import (
	"sync"
	"testing"

	"marketscope/internal/query"
)

func TestQuerySourceFieldInventory(t *testing.T) {
	f := testFixture(t)
	src := f.dataset.QuerySource()
	fields := src.Fields()
	if len(fields) < 30 {
		t.Fatalf("registered %d fields, want >= 30", len(fields))
	}
	byCategory := map[string]int{}
	byName := map[string]query.FieldInfo{}
	for _, fi := range fields {
		byCategory[fi.Category]++
		byName[fi.Name] = fi
	}
	for _, cat := range []string{FieldCategoryMetadata, FieldCategoryAPK, FieldCategoryEnrichment} {
		if byCategory[cat] < 5 {
			t.Errorf("category %s has %d fields, want >= 5", cat, byCategory[cat])
		}
	}
	for _, name := range []string{"market", "package", "category", "downloads", "rating",
		"min_sdk", "apk_size", "permission_count", "signing_developer",
		"library_count", "av_positives", "av_family", "permissions_unused"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("field %q missing from registry", name)
		}
	}
}

// TestQuerySourceMatchesDirectIteration cross-checks engine counts against a
// hand-rolled pass over the same dataset.
func TestQuerySourceMatchesDirectIteration(t *testing.T) {
	f := testFixture(t)
	d := f.dataset

	wantParsed := 0
	wantFlagged10 := 0
	for _, app := range d.Apps {
		if app.HasAPK() {
			wantParsed++
		}
		if app.AVReport != nil && app.AVReport.Flagged(10) {
			wantFlagged10++
		}
	}

	gotParsed, err := d.CountMatching(query.Filter{Field: "apk_parsed", Op: query.OpEq, Value: true})
	if err != nil {
		t.Fatalf("count parsed: %v", err)
	}
	if gotParsed != wantParsed {
		t.Errorf("parsed count via engine = %d, direct = %d", gotParsed, wantParsed)
	}
	gotFlagged, err := d.CountMatching(query.Filter{Field: "av_positives", Op: query.OpGe, Value: 10})
	if err != nil {
		t.Fatalf("count flagged: %v", err)
	}
	if gotFlagged != wantFlagged10 {
		t.Errorf("flagged count via engine = %d, direct = %d", gotFlagged, wantFlagged10)
	}
}

// TestMalwarePrevalenceThroughEngine verifies the engine-backed Table 4
// equals the direct per-market iteration it replaced.
func TestMalwarePrevalenceThroughEngine(t *testing.T) {
	f := testFixture(t)
	d := f.dataset
	rows := MalwarePrevalence(d)
	if len(rows) != len(d.Markets) {
		t.Fatalf("got %d rows, want %d markets", len(rows), len(d.Markets))
	}
	for _, row := range rows {
		var parsed, c1, c10, c20 int
		for _, app := range d.AppsIn(row.Market) {
			if app.AVReport == nil {
				continue
			}
			parsed++
			if app.AVReport.Flagged(1) {
				c1++
			}
			if app.AVReport.Flagged(10) {
				c10++
			}
			if app.AVReport.Flagged(20) {
				c20++
			}
		}
		if row.Parsed != parsed || row.FlaggedAtLeast10 != c10 {
			t.Errorf("%s: engine row {parsed %d, c10 %d}, direct {parsed %d, c10 %d}",
				row.Market, row.Parsed, row.FlaggedAtLeast10, parsed, c10)
		}
		if parsed > 0 {
			if row.ShareAtLeast1 != float64(c1)/float64(parsed) ||
				row.ShareAtLeast20 != float64(c20)/float64(parsed) {
				t.Errorf("%s: shares diverge from direct computation", row.Market)
			}
		}
	}
}

// TestQuerySourcePaperSlice runs a representative full query: the flagged
// Chinese-market listings ordered by AV-rank, the slice behind Table 5.
func TestQuerySourcePaperSlice(t *testing.T) {
	f := testFixture(t)
	src := f.dataset.QuerySource()
	res, err := src.Scan(query.Query{
		Fields: []string{"package", "market", "av_positives", "av_family"},
		Filters: []query.Filter{
			{Field: "market_chinese", Op: query.OpEq, Value: true},
			{Field: "av_positives", Op: query.OpGe, Value: 1},
		},
		Sort:  []query.SortKey{{Field: "av_positives", Desc: true}, {Field: "package"}},
		Limit: 10,
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Meta.Returned > 10 {
		t.Fatalf("limit ignored: returned %d", res.Meta.Returned)
	}
	var prev int64 = 1 << 40
	for _, row := range res.Rows {
		rank := row[2].(int64)
		if rank > prev {
			t.Fatalf("rows not sorted by av_positives desc")
		}
		prev = rank
	}
}

// TestQuerySourceConcurrent scans the shared dataset from many goroutines;
// meaningful under -race.
func TestQuerySourceConcurrent(t *testing.T) {
	f := testFixture(t)
	src := f.dataset.QuerySource()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := src.Scan(query.Query{
					Fields:  []string{"package", "rating"},
					Filters: []query.Filter{{Field: "rating", Op: query.OpGe, Value: 4.0}},
					Sort:    []query.SortKey{{Field: "rating", Desc: true}},
					Limit:   5,
				})
				if err != nil {
					t.Errorf("concurrent scan: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
