package analysis

import (
	"fmt"

	"marketscope/internal/appmeta"
	"marketscope/internal/query"
)

// Durable-snapshot support: exporting a dataset's sealed column store and
// installing a previously exported one on a freshly restored dataset. The
// dataset itself (the *App rows) is always rebuilt from records + APK bytes
// through the ordinary incremental pipeline — that is what keeps a restored
// process byte-identical to a cold build — and the installed columns only
// spare the engine its boxed re-extraction of every field over every row.

// Records returns every listing's metadata record in dataset order — the
// order an ingest.Restore must feed them back in to reproduce the dataset.
func (d *Dataset) Records() []appmeta.Record {
	out := make([]appmeta.Record, len(d.Apps))
	for i, app := range d.Apps {
		out[i] = app.Meta
	}
	return out
}

// ExportQueryColumns materializes and exports every query field's column
// (plus the bitmap posting lists of indexed dictionary fields) from the
// dataset's cached engine. The dataset must be enriched — an unenriched
// column store would be missing every enrichment field and is not worth
// persisting.
func (d *Dataset) ExportQueryColumns() ([]query.ColumnData, error) {
	if !d.enriched.Load() {
		return nil, fmt.Errorf("analysis: export columns before enrichment")
	}
	eng, ok := d.QuerySource().(*query.Engine[*App])
	if !ok {
		return nil, fmt.Errorf("analysis: query source %T is not an exportable engine", d.QuerySource())
	}
	return eng.ExportColumns(), nil
}

// InstallQueryColumns replaces the dataset's lazy engine build with one whose
// columns come pre-installed from a durable snapshot. The caller asserts the
// columns were exported from a dataset identical to this one (same records,
// same APK bytes, same enrichment options); everything structural is
// validated by the import, and the durable layer's recovery suite asserts
// value agreement against the boxed-extractor oracle.
func (d *Dataset) InstallQueryColumns(cols []query.ColumnData) error {
	if !d.enriched.Load() {
		return fmt.Errorf("analysis: install columns before enrichment")
	}
	eng, err := query.NewEngineFromColumns(appFieldRegistry(d), d.Apps, cols)
	if err != nil {
		return err
	}
	d.queryMu.Lock()
	d.querySrc = eng
	d.queryEnriched = true
	d.queryMu.Unlock()
	return nil
}

// InstallPagedQueryColumns is InstallQueryColumns' bigger-than-RAM variant:
// the engine's columns stay on disk behind fetcher and page in on demand
// through pool's byte budget. Query results are byte-identical to the
// materialized engine's; only residency differs.
func (d *Dataset) InstallPagedQueryColumns(fetcher query.ColumnFetcher, pool *query.PagePool) error {
	if !d.enriched.Load() {
		return fmt.Errorf("analysis: install columns before enrichment")
	}
	eng, err := query.NewEnginePaged(appFieldRegistry(d), d.Apps, fetcher, pool)
	if err != nil {
		return err
	}
	d.queryMu.Lock()
	d.querySrc = eng
	d.queryEnriched = true
	d.queryMu.Unlock()
	return nil
}

// DropPagedColumns retires the dataset's engine from its page pool, if it has
// one: resident columns evict (pinned ones when their scans finish) and the
// budget belongs to the successor epoch. A no-op on nil datasets and on
// datasets serving a materialized engine.
func (d *Dataset) DropPagedColumns() {
	if d == nil {
		return
	}
	d.queryMu.Lock()
	eng, _ := d.querySrc.(*query.Engine[*App])
	d.queryMu.Unlock()
	if eng != nil {
		eng.RetirePages()
	}
}

// APKBytesOf adapts a blob map to the apkOf callback shape the build and
// restore paths take.
func APKBytesOf(blobs map[appmeta.Key][]byte) func(appmeta.Key) ([]byte, bool) {
	return func(k appmeta.Key) ([]byte, bool) {
		b, ok := blobs[k]
		return b, ok
	}
}
