package analysis

import (
	"testing"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
)

// emptyDataset builds an enriched dataset with no listings; every analysis
// must degrade gracefully (zero values, no panics, no division by zero).
func emptyDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := BuildDataset(crawler.NewSnapshot(time.Date(2017, 8, 15, 0, 0, 0, 0, time.UTC)))
	if err != nil {
		t.Fatal(err)
	}
	d.Enrich(DefaultEnrichOptions())
	return d
}

// metadataOnlyDataset builds a dataset whose snapshot has records but no APK
// bytes, mirroring the paper's metadata-only listings (Google Play's rate
// limiting prevented APK collection for most of its catalog).
func metadataOnlyDataset(t *testing.T) *Dataset {
	t.Helper()
	snap := crawler.NewSnapshot(time.Date(2017, 8, 15, 0, 0, 0, 0, time.UTC))
	recs := []appmeta.Record{
		{Market: market.GooglePlay, Package: "com.meta.only", AppName: "Meta Only",
			DeveloperName: "Dev", Category: "Tools", VersionCode: 3, VersionName: "1.2",
			Downloads: 120_000, Rating: 4.1,
			ReleaseDate: time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
			UpdateDate:  time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)},
		{Market: "Baidu Market", Package: "com.meta.only", AppName: "Meta Only",
			DeveloperName: "Dev", Category: "Tools", VersionCode: 2, VersionName: "1.1",
			Downloads: 4_000, Rating: 0,
			ReleaseDate: time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
			UpdateDate:  time.Date(2016, 9, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, r := range recs {
		if err := snap.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	d, err := BuildDataset(snap)
	if err != nil {
		t.Fatal(err)
	}
	d.Enrich(DefaultEnrichOptions())
	return d
}

func TestAnalysesOnEmptyDataset(t *testing.T) {
	d := emptyDataset(t)
	if rows := MarketOverview(d); len(rows) != 0 {
		t.Errorf("overview rows on empty dataset: %d", len(rows))
	}
	if got := Totals(d, nil); got.Apps != 0 || got.Developers != 0 {
		t.Errorf("totals on empty dataset: %+v", got)
	}
	if got := Categories(d); len(got) != 0 {
		t.Errorf("categories rows: %d", len(got))
	}
	gp, cn := APILevels(d)
	if gp.Parsed != 0 || cn.Parsed != 0 {
		t.Error("API levels invented data")
	}
	rgp, rcn := ReleaseDates(d)
	if rgp.Total != 0 || rcn.Total != 0 {
		t.Error("release dates invented data")
	}
	if got := Publishing(d); got.Developers != 0 {
		t.Errorf("publishing invented developers: %+v", got)
	}
	if got := Clusters(d); got.MultiDeveloperShare != 0 || len(got.VersionsPerPackage) != 0 {
		t.Errorf("clusters invented data: %+v", got)
	}
	if got := Outdated(d); len(got) != 0 {
		t.Errorf("outdated rows: %d", len(got))
	}
	if got := IdenticalApps(d); got.Triples != 0 {
		t.Errorf("identical apps invented triples: %+v", got)
	}
	if got := LibraryUsage(d); len(got) != 0 {
		t.Errorf("library rows: %d", len(got))
	}
	if got := MalwarePrevalence(d); len(got) != 0 {
		t.Errorf("malware rows: %d", len(got))
	}
	if got := TopMalware(d, 10); len(got) != 0 {
		t.Errorf("top malware entries: %d", len(got))
	}
	gpFam, cnFam := MalwareFamilies(d, 10, 15)
	if len(gpFam) != 0 || len(cnFam) != 0 {
		t.Error("families invented data")
	}
	res := Misbehavior(d, DefaultMisbehaviorOptions())
	if len(res.Rows) != 0 || len(res.CodeRes.Pairs) != 0 {
		t.Errorf("misbehaviour invented data: %+v", res)
	}
	second := crawler.NewSnapshot(time.Now())
	if got := PostAnalysis(d, second, 10); len(got) != 0 {
		t.Errorf("post-analysis rows: %d", len(got))
	}
	if got := StillHosted(d, second, 10); got.GPRemovedMalware != 0 {
		t.Errorf("still-hosted invented data: %+v", got)
	}
	if got := Radar(d, nil); len(got) != 0 {
		t.Errorf("radar rows: %d", len(got))
	}
	if got := CloneThresholdSweep(d, nil); len(got) == 0 {
		t.Error("sweep should still echo its thresholds")
	}
}

func TestAnalysesOnMetadataOnlyDataset(t *testing.T) {
	d := metadataOnlyDataset(t)
	if d.NumListings() != 2 {
		t.Fatalf("listings = %d", d.NumListings())
	}
	for _, app := range d.Apps {
		if app.HasAPK() {
			t.Fatal("metadata-only dataset should have no parsed APKs")
		}
		if app.ParseError == nil {
			t.Error("missing APK should record a parse error")
		}
	}
	// Metadata-backed analyses still work.
	rows := MarketOverview(d)
	if len(rows) != 2 {
		t.Fatalf("overview rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Apps != 1 || r.APKs != 0 {
			t.Errorf("row %s: %+v", r.Profile.Name, r)
		}
	}
	outdated := Outdated(d)
	byName := map[string]OutdatedRow{}
	for _, r := range outdated {
		byName[r.Market] = r
	}
	if byName[market.GooglePlay].UpToDateShare != 1 || byName["Baidu Market"].UpToDateShare != 0 {
		t.Errorf("outdated analysis wrong on metadata-only dataset: %+v", outdated)
	}
	// APK-backed analyses degrade to empty rather than failing.
	gp, cn := OverPrivilege(d)
	if gp.Parsed != 0 || cn.Parsed != 0 {
		t.Error("over-privilege invented parsed apps")
	}
	malware := MalwarePrevalence(d)
	for _, r := range malware {
		if r.Parsed != 0 {
			t.Errorf("malware analysis scanned nonexistent APKs: %+v", r)
		}
	}
}
