package analysis

import (
	"sort"

	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/stats"
)

// PublishingStats captures the developer-level publishing dynamics of
// Section 5.1 and Figure 7.
type PublishingStats struct {
	// Developers is the number of distinct developer identities.
	Developers int
	// MarketsPerDeveloperCDF evaluates the CDF of markets-per-developer at
	// 1..17 markets.
	MarketsPerDeveloperCDF []float64
	// SingleMarketShare is the fraction of developers publishing in exactly
	// one market.
	SingleMarketShare float64
	// AllMarketsCount is the number of developers present in every studied
	// market.
	AllMarketsCount int
	// GPDevsNotInChineseShare is, among developers present on Google Play,
	// the fraction absent from every Chinese store (57% in the paper).
	GPDevsNotInChineseShare float64
	// ChineseDevsNotOnGPShare is, among developers present on Chinese
	// stores, the fraction absent from Google Play (~48%).
	ChineseDevsNotOnGPShare float64
}

// Publishing computes the developer market-coverage statistics. One grouped
// aggregation — developers as groups, a distinct-market count next to a
// conditional Google-Play listing count — replaces the map-of-sets sweep;
// PublishingOracle keeps that sweep verbatim.
func Publishing(d *Dataset) PublishingStats {
	res := d.mustAggregate(query.Aggregate{
		GroupBy: []string{"developer_id"},
		Aggregates: []query.AggSpec{
			{Op: query.AggDistinct, Field: "market", As: "markets"},
			{Op: query.AggCount, As: "gp",
				Where: []query.Filter{{Field: "market", Op: query.OpEq, Value: market.GooglePlay}}},
		},
	})
	out := PublishingStats{Developers: len(res.Rows)}
	if len(res.Rows) == 0 {
		return out
	}
	var counts []float64
	single, all := 0, 0
	gpDevs, gpOnly, cnDevs, cnOnly := 0, 0, 0, 0
	numMarkets := len(d.Markets)
	for _, r := range res.Rows {
		n := int(r[1].(int64))
		counts = append(counts, float64(n))
		if n == 1 {
			single++
		}
		if n == numMarkets && numMarkets > 1 {
			all++
		}
		onGP := r[2].(int64) > 0
		chineseCount := n
		if onGP {
			chineseCount--
		}
		if onGP {
			gpDevs++
			if chineseCount == 0 {
				gpOnly++
			}
		}
		if chineseCount > 0 {
			cnDevs++
			if !onGP {
				cnOnly++
			}
		}
	}
	cdfPoints := make([]float64, 0, market.NumMarkets())
	for i := 1; i <= market.NumMarkets(); i++ {
		cdfPoints = append(cdfPoints, float64(i))
	}
	out.MarketsPerDeveloperCDF = stats.NewCDF(counts).Series(cdfPoints)
	out.SingleMarketShare = float64(single) / float64(len(res.Rows))
	out.AllMarketsCount = all
	if gpDevs > 0 {
		out.GPDevsNotInChineseShare = float64(gpOnly) / float64(gpDevs)
	}
	if cnDevs > 0 {
		out.ChineseDevsNotOnGPShare = float64(cnOnly) / float64(cnDevs)
	}
	return out
}

// PublishingOracle is the pre-aggregation serial body of Publishing, kept
// verbatim as the oracle.
func PublishingOracle(d *Dataset) PublishingStats {
	devMarkets := map[string]map[string]bool{}
	for _, m := range d.Markets {
		for _, app := range d.AppsIn(m.Name) {
			dev := app.DeveloperID()
			if devMarkets[dev] == nil {
				devMarkets[dev] = map[string]bool{}
			}
			devMarkets[dev][m.Name] = true
		}
	}
	out := PublishingStats{Developers: len(devMarkets)}
	if len(devMarkets) == 0 {
		return out
	}
	var counts []float64
	single, all := 0, 0
	gpDevs, gpOnly, cnDevs, cnOnly := 0, 0, 0, 0
	numMarkets := len(d.Markets)
	for _, markets := range devMarkets {
		n := len(markets)
		counts = append(counts, float64(n))
		if n == 1 {
			single++
		}
		if n == numMarkets && numMarkets > 1 {
			all++
		}
		onGP := markets[market.GooglePlay]
		chineseCount := n
		if onGP {
			chineseCount--
		}
		if onGP {
			gpDevs++
			if chineseCount == 0 {
				gpOnly++
			}
		}
		if chineseCount > 0 {
			cnDevs++
			if !onGP {
				cnOnly++
			}
		}
	}
	cdfPoints := make([]float64, 0, market.NumMarkets())
	for i := 1; i <= market.NumMarkets(); i++ {
		cdfPoints = append(cdfPoints, float64(i))
	}
	out.MarketsPerDeveloperCDF = stats.NewCDF(counts).Series(cdfPoints)
	out.SingleMarketShare = float64(single) / float64(len(devMarkets))
	out.AllMarketsCount = all
	if gpDevs > 0 {
		out.GPDevsNotInChineseShare = float64(gpOnly) / float64(gpDevs)
	}
	if cnDevs > 0 {
		out.ChineseDevsNotOnGPShare = float64(cnOnly) / float64(cnDevs)
	}
	return out
}

// StoreOverlapRow summarizes single- vs multi-store publication for one
// market (Section 5.2).
type StoreOverlapRow struct {
	Market string
	// SingleStoreShare is the fraction of this market's apps found in no
	// other studied market.
	SingleStoreShare float64
	// SharedWithGooglePlayShare is the fraction also present on Google
	// Play.
	SharedWithGooglePlayShare float64
	Apps                      int
}

// StoreOverlap computes single-/multi-store shares per market.
func StoreOverlap(d *Dataset) []StoreOverlapRow {
	pkgMarkets := map[string]map[string]bool{}
	for _, m := range d.Markets {
		for _, app := range d.AppsIn(m.Name) {
			if pkgMarkets[app.Meta.Package] == nil {
				pkgMarkets[app.Meta.Package] = map[string]bool{}
			}
			pkgMarkets[app.Meta.Package][m.Name] = true
		}
	}
	var out []StoreOverlapRow
	for _, m := range d.Markets {
		apps := d.AppsIn(m.Name)
		row := StoreOverlapRow{Market: m.Name, Apps: len(apps)}
		if len(apps) == 0 {
			out = append(out, row)
			continue
		}
		single, sharedGP := 0, 0
		for _, app := range apps {
			markets := pkgMarkets[app.Meta.Package]
			if len(markets) == 1 {
				single++
			}
			if m.Name != market.GooglePlay && markets[market.GooglePlay] {
				sharedGP++
			}
		}
		row.SingleStoreShare = float64(single) / float64(len(apps))
		row.SharedWithGooglePlayShare = float64(sharedGP) / float64(len(apps))
		out = append(out, row)
	}
	return out
}

// ClusterCDFs holds the three distributions of Figure 8.
type ClusterCDFs struct {
	// VersionsPerPackage evaluates, at 1..14, the CDF of the number of
	// distinct version codes observed per package across markets.
	VersionsPerPackage []float64
	// NameClusterSize evaluates, at 1..120 (sampled points), the CDF of
	// same-name cluster sizes.
	NameClusterSizePoints []float64
	NameClusterSize       []float64
	// DevelopersPerPackage evaluates, at 1..11, the CDF of distinct
	// developer signatures per package.
	DevelopersPerPackage []float64
	// MultiVersionShare is the share of packages listed with more than one
	// version simultaneously (≈14% in the paper).
	MultiVersionShare float64
	// MultiDeveloperShare is the share of packages signed by 2+ developers
	// (≈12% in the paper).
	MultiDeveloperShare float64
	// SameNameShare is the share of apps sharing their name with another
	// package (≈22% in the paper).
	SameNameShare float64
}

// Clusters computes Figure 8's three CDFs.
func Clusters(d *Dataset) ClusterCDFs {
	versionsPerPkg := map[string]map[int64]bool{}
	devsPerPkg := map[string]map[string]bool{}
	namesToPkgs := map[string]map[string]bool{}
	for _, app := range d.Apps {
		pkg := app.Meta.Package
		if versionsPerPkg[pkg] == nil {
			versionsPerPkg[pkg] = map[int64]bool{}
			devsPerPkg[pkg] = map[string]bool{}
		}
		versionsPerPkg[pkg][app.Meta.VersionCode] = true
		devsPerPkg[pkg][app.DeveloperID()] = true
		name := app.Meta.AppName
		if name != "" {
			if namesToPkgs[name] == nil {
				namesToPkgs[name] = map[string]bool{}
			}
			namesToPkgs[name][pkg] = true
		}
	}

	var out ClusterCDFs
	if len(versionsPerPkg) == 0 {
		return out
	}
	var versionCounts, devCounts []float64
	multiVersion, multiDev := 0, 0
	for pkg := range versionsPerPkg {
		v := len(versionsPerPkg[pkg])
		dcount := len(devsPerPkg[pkg])
		versionCounts = append(versionCounts, float64(v))
		devCounts = append(devCounts, float64(dcount))
		if v > 1 {
			multiVersion++
		}
		if dcount > 1 {
			multiDev++
		}
	}
	versionPoints := seq(1, 14)
	devPoints := seq(1, 11)
	out.VersionsPerPackage = stats.NewCDF(versionCounts).Series(versionPoints)
	out.DevelopersPerPackage = stats.NewCDF(devCounts).Series(devPoints)
	out.MultiVersionShare = float64(multiVersion) / float64(len(versionsPerPkg))
	out.MultiDeveloperShare = float64(multiDev) / float64(len(versionsPerPkg))

	// Name clusters: size = number of distinct packages sharing a name.
	var clusterSizes []float64
	appsInMultiPkgNames := 0
	totalPkgs := len(versionsPerPkg)
	pkgInMultiName := map[string]bool{}
	for _, pkgs := range namesToPkgs {
		clusterSizes = append(clusterSizes, float64(len(pkgs)))
		if len(pkgs) > 1 {
			for p := range pkgs {
				pkgInMultiName[p] = true
			}
		}
	}
	appsInMultiPkgNames = len(pkgInMultiName)
	out.NameClusterSizePoints = []float64{1, 2, 3, 5, 10, 19, 28, 37, 46, 64, 91, 120}
	out.NameClusterSize = stats.NewCDF(clusterSizes).Series(out.NameClusterSizePoints)
	if totalPkgs > 0 {
		out.SameNameShare = float64(appsInMultiPkgNames) / float64(totalPkgs)
	}
	return out
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}

// OutdatedRow is one bar of Figure 9: the share of a market's multi-store
// apps that carry the highest version observed anywhere for that package.
type OutdatedRow struct {
	Market string
	// UpToDateShare is the share of the market's multi-store apps whose
	// listed version equals the maximum across markets.
	UpToDateShare float64
	// MultiStoreApps is the number of apps considered (single-store apps
	// are excluded, being trivially up to date).
	MultiStoreApps int
}

// Outdated computes Figure 9.
func Outdated(d *Dataset) []OutdatedRow {
	maxVersion := map[string]int64{}
	marketsPerPkg := map[string]int{}
	for _, app := range d.Apps {
		pkg := app.Meta.Package
		marketsPerPkg[pkg]++
		if app.Meta.VersionCode > maxVersion[pkg] {
			maxVersion[pkg] = app.Meta.VersionCode
		}
	}
	var out []OutdatedRow
	for _, m := range d.Markets {
		row := OutdatedRow{Market: m.Name}
		upToDate := 0
		for _, app := range d.AppsIn(m.Name) {
			if marketsPerPkg[app.Meta.Package] < 2 {
				continue
			}
			row.MultiStoreApps++
			if app.Meta.VersionCode >= maxVersion[app.Meta.Package] {
				upToDate++
			}
		}
		if row.MultiStoreApps > 0 {
			row.UpToDateShare = float64(upToDate) / float64(row.MultiStoreApps)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpToDateShare > out[j].UpToDateShare })
	return out
}

// IdenticalAppStats quantifies Section 5.3: apps whose package, version and
// developer match across markets but whose archive hashes differ (channel
// files, store-mandated repacking).
type IdenticalAppStats struct {
	// Triples is the number of (package, version, developer) triples
	// observed in more than one market with APKs parsed.
	Triples int
	// HashMismatchTriples is how many of those triples have at least two
	// distinct archive hashes.
	HashMismatchTriples int
}

// IdenticalApps computes the store-introduced-difference statistics.
func IdenticalApps(d *Dataset) IdenticalAppStats {
	type tripleKey struct {
		pkg     string
		version int64
		dev     string
	}
	type tripleStats struct {
		listings int
		hashes   map[string]bool
	}
	triples := map[tripleKey]*tripleStats{}
	for _, app := range d.Apps {
		if !app.HasAPK() {
			continue
		}
		key := tripleKey{pkg: app.Meta.Package, version: app.Parsed.Manifest.VersionCode, dev: app.DeveloperID()}
		ts, ok := triples[key]
		if !ok {
			ts = &tripleStats{hashes: map[string]bool{}}
			triples[key] = ts
		}
		ts.listings++
		ts.hashes[app.Parsed.MD5] = true
	}
	var out IdenticalAppStats
	for _, ts := range triples {
		// Only triples listed in more than one market are interesting;
		// single listings cannot exhibit cross-market differences.
		if ts.listings < 2 {
			continue
		}
		out.Triples++
		if len(ts.hashes) > 1 {
			out.HashMismatchTriples++
		}
	}
	return out
}
