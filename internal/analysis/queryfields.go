package analysis

import (
	"marketscope/internal/manifest"
	"marketscope/internal/market"
	"marketscope/internal/permissions"
	"marketscope/internal/query"
	"marketscope/internal/stats"
)

// Field categories exposed by the dataset's query source.
const (
	FieldCategoryMetadata   = "metadata"   // market-reported listing metadata
	FieldCategoryAPK        = "apk"        // parsed-APK artifacts
	FieldCategoryEnrichment = "enrichment" // detector outputs (after Enrich)
)

// QuerySource exposes the dataset to the query engine: every listing becomes
// one scannable row with the field registry built by appFieldRegistry. The
// engine is built once and cached; it is safe for concurrent scans, so one
// dataset can back the HTTP /api/scan endpoint, the scan command and the
// fixed analyses simultaneously.
//
// Enrichment-category fields are null until Enrich has run; apk-category
// fields are null on listings whose APK was missing or failed to parse.
// Enrich's worker pool mutates the listings while it runs, so it must return
// before any concurrent scanning starts (any Enrich call returning is enough:
// concurrent callers all block until the one pipeline run completes) —
// enrich first, then attach/serve.
//
// The engine caches extracted values in typed columns, so a source handed
// out before Enrich would go stale when enrichment later mutates the
// listings; QuerySource therefore rebuilds the engine on first use after
// enrichment and callers should always re-fetch it rather than hold one
// across an Enrich call.
func (d *Dataset) QuerySource() query.Source {
	d.queryMu.Lock()
	defer d.queryMu.Unlock()
	enriched := d.enriched.Load()
	if d.querySrc == nil || d.queryEnriched != enriched {
		d.querySrc = query.NewEngine(appFieldRegistry(d), d.Apps)
		d.queryEnriched = enriched
	}
	return d.querySrc
}

// metaField registers a never-null metadata field.
func metaField(r *query.Registry[*App], name string, kind query.Kind, doc string, extract func(*App) (any, bool)) {
	r.MustRegister(query.Field[*App]{Name: name, Category: FieldCategoryMetadata, Kind: kind, Doc: doc, Extract: extract})
}

// apkField registers a field derived from the parsed APK; it is null when
// the listing's APK was not parsed.
func apkField(r *query.Registry[*App], name string, kind query.Kind, doc string, extract func(*App) (any, bool)) {
	r.MustRegister(query.Field[*App]{Name: name, Category: FieldCategoryAPK, Kind: kind, Doc: doc, Nullable: true,
		Extract: func(a *App) (any, bool) {
			if !a.HasAPK() {
				return nil, false
			}
			return extract(a)
		}})
}

// enrichField registers a detector-output field; it is null before Enrich
// and on unparsed listings (the detectors only run over parsed APKs).
func enrichField(r *query.Registry[*App], name string, kind query.Kind, doc string, extract func(*App) (any, bool)) {
	r.MustRegister(query.Field[*App]{Name: name, Category: FieldCategoryEnrichment, Kind: kind, Doc: doc, Nullable: true, Extract: extract})
}

// appFieldRegistry builds the ~40-field registry over the dataset's
// listings: the paper's metadata catalog, the parsed-APK artifacts and the
// enrichment results, each as a flat, filterable, sortable column.
func appFieldRegistry(d *Dataset) *query.Registry[*App] {
	profiles := make(map[string]market.Profile, len(d.Markets))
	for _, p := range d.Markets {
		profiles[p.Name] = p
	}

	r := query.NewRegistry[*App]()

	// --- metadata: what the market's app page reports -------------------
	metaField(r, "market", query.KindString, "hosting market name",
		func(a *App) (any, bool) { return a.Meta.Market, true })
	metaField(r, "package", query.KindString, "Android package name",
		func(a *App) (any, bool) { return a.Meta.Package, true })
	metaField(r, "app_name", query.KindString, "display name on the market page",
		func(a *App) (any, bool) { return a.Meta.AppName, true })
	metaField(r, "market_category", query.KindString, "market-native category string",
		func(a *App) (any, bool) { return a.Meta.Category, true })
	metaField(r, "category", query.KindString, "consolidated 22-category taxonomy (Figure 1)",
		func(a *App) (any, bool) { return string(a.Category()), true })
	metaField(r, "developer_name", query.KindString, "market-reported developer name",
		func(a *App) (any, bool) { return a.Meta.DeveloperName, true })
	metaField(r, "developer_id", query.KindString, "signing fingerprint when parsed, else name:<developer_name>",
		func(a *App) (any, bool) { return a.DeveloperID(), true })
	metaField(r, "version_code", query.KindInt, "market-reported version code",
		func(a *App) (any, bool) { return a.Meta.VersionCode, true })
	metaField(r, "version_name", query.KindString, "market-reported version name",
		func(a *App) (any, bool) { return a.Meta.VersionName, true })
	r.MustRegister(query.Field[*App]{Name: "downloads", Category: FieldCategoryMetadata, Kind: query.KindInt,
		Doc: "market-reported install count; null where the market reports none", Nullable: true,
		Extract: func(a *App) (any, bool) { return a.Meta.Downloads, a.Meta.ReportsDownloads() }})
	r.MustRegister(query.Field[*App]{Name: "download_bin", Category: FieldCategoryMetadata, Kind: query.KindString,
		Doc: "Google-Play install range of the reported count (Figure 2); null where unreported", Nullable: true,
		Extract: func(a *App) (any, bool) {
			if !a.Meta.ReportsDownloads() {
				return nil, false
			}
			return stats.BinDownloads(a.Meta.Downloads).String(), true
		}})
	r.MustRegister(query.Field[*App]{Name: "download_floor", Category: FieldCategoryMetadata, Kind: query.KindInt,
		Doc: "inclusive lower bound of the install range, the paper's conservative download estimate (Table 1); null where unreported", Nullable: true,
		Extract: func(a *App) (any, bool) {
			if !a.Meta.ReportsDownloads() {
				return nil, false
			}
			return stats.BinDownloads(a.Meta.Downloads).LowerBound(), true
		}})
	metaField(r, "rating", query.KindFloat, "average user rating in [0,5]; 0 means unrated",
		func(a *App) (any, bool) { return a.Meta.Rating, true })
	r.MustRegister(query.Field[*App]{Name: "release_date", Category: FieldCategoryMetadata, Kind: query.KindTime,
		Doc: "first-release date reported by the market; null when unset", Nullable: true,
		Extract: func(a *App) (any, bool) { return a.Meta.ReleaseDate, true }})
	r.MustRegister(query.Field[*App]{Name: "update_date", Category: FieldCategoryMetadata, Kind: query.KindTime,
		Doc: "last-update date reported by the market; null when unset", Nullable: true,
		Extract: func(a *App) (any, bool) { return a.Meta.UpdateDate, true }})
	metaField(r, "listed_apk_size", query.KindInt, "APK size in bytes as listed on the market page",
		func(a *App) (any, bool) { return a.Meta.APKSize, true })
	metaField(r, "has_ads", query.KindBool, "market labels the app as ad-supported",
		func(a *App) (any, bool) { return a.Meta.HasAds, true })
	metaField(r, "has_iap", query.KindBool, "market labels the app as having in-app purchases",
		func(a *App) (any, bool) { return a.Meta.HasIAP, true })
	metaField(r, "market_type", query.KindString, "market type (official, third-party, ...)",
		func(a *App) (any, bool) { return string(profiles[a.Meta.Market].Type), true })
	metaField(r, "market_chinese", query.KindBool, "hosted by one of the 16 Chinese markets",
		func(a *App) (any, bool) { return profiles[a.Meta.Market].IsChinese(), true })

	// --- apk: the parsed artifact --------------------------------------
	r.MustRegister(query.Field[*App]{Name: "apk_parsed", Category: FieldCategoryAPK, Kind: query.KindBool,
		Doc:     "the harvested APK parsed and verified",
		Extract: func(a *App) (any, bool) { return a.HasAPK(), true }})
	r.MustRegister(query.Field[*App]{Name: "parse_error", Category: FieldCategoryAPK, Kind: query.KindString,
		Doc: "why the APK could not be parsed; null on success", Nullable: true,
		Extract: func(a *App) (any, bool) {
			if a.ParseError == nil {
				return nil, false
			}
			return a.ParseError.Error(), true
		}})
	apkField(r, "apk_size", query.KindInt, "archive size in bytes",
		func(a *App) (any, bool) { return a.Parsed.Size, true })
	apkField(r, "apk_md5", query.KindString, "MD5 of the archive bytes",
		func(a *App) (any, bool) { return a.Parsed.MD5, true })
	apkField(r, "apk_sha256", query.KindString, "SHA-256 of the archive bytes",
		func(a *App) (any, bool) { return a.Parsed.SHA256, true })
	apkField(r, "min_sdk", query.KindInt, "manifest minSdkVersion (Figure 3)",
		func(a *App) (any, bool) { return a.Parsed.Manifest.MinSDK, true })
	apkField(r, "target_sdk", query.KindInt, "manifest targetSdkVersion",
		func(a *App) (any, bool) { return a.Parsed.Manifest.TargetSDK, true })
	apkField(r, "android_version", query.KindString, "Android release matching min_sdk",
		func(a *App) (any, bool) { return manifest.AndroidVersionForAPI(a.Parsed.Manifest.MinSDK), true })
	apkField(r, "debuggable", query.KindBool, "manifest debuggable flag",
		func(a *App) (any, bool) { return a.Parsed.Manifest.Debuggable, true })
	apkField(r, "permission_count", query.KindInt, "permissions requested in the manifest",
		func(a *App) (any, bool) { return len(a.Parsed.Manifest.Permissions), true })
	apkField(r, "component_count", query.KindInt, "declared manifest components",
		func(a *App) (any, bool) { return len(a.Parsed.Manifest.Components), true })
	apkField(r, "class_count", query.KindInt, "classes in the dex",
		func(a *App) (any, bool) { return a.Parsed.Dex.NumClasses(), true })
	apkField(r, "method_count", query.KindInt, "methods in the dex",
		func(a *App) (any, bool) { return a.Parsed.Dex.NumMethods(), true })
	apkField(r, "api_call_count", query.KindInt, "distinct framework APIs referenced by the code",
		func(a *App) (any, bool) { return len(a.Parsed.Dex.DistinctAPICalls()), true })
	apkField(r, "signing_developer", query.KindString, "hex fingerprint of the signing certificate",
		func(a *App) (any, bool) { return a.Parsed.Developer().String(), true })
	apkField(r, "channel_count", query.KindInt, "META-INF channel marker files (Section 5.3)",
		func(a *App) (any, bool) { return len(a.Parsed.Channel), true })

	// --- enrichment: detector outputs ----------------------------------
	enrichField(r, "library_count", query.KindInt, "third-party libraries detected (Figure 5)",
		func(a *App) (any, bool) {
			if !d.enriched.Load() || !a.HasAPK() {
				return nil, false
			}
			return len(a.Libraries), true
		})
	enrichField(r, "known_library_count", query.KindInt, "detections resolved to a catalog entry",
		func(a *App) (any, bool) {
			if !d.enriched.Load() || !a.HasAPK() {
				return nil, false
			}
			n := 0
			for _, det := range a.Libraries {
				if det.Known {
					n++
				}
			}
			return n, true
		})
	enrichField(r, "ad_library_count", query.KindInt, "advertising libraries detected",
		func(a *App) (any, bool) {
			if !d.enriched.Load() || !a.HasAPK() {
				return nil, false
			}
			n := 0
			for _, det := range a.Libraries {
				if det.IsAd() {
					n++
				}
			}
			return n, true
		})
	enrichField(r, "av_positives", query.KindInt, "AV-rank: engines flagging the sample (Table 4)",
		func(a *App) (any, bool) {
			if a.AVReport == nil {
				return nil, false
			}
			return a.AVReport.Positives, true
		})
	enrichField(r, "av_family", query.KindString, "AVClass plurality family; null when clean or unlabeled",
		func(a *App) (any, bool) {
			if a.AVReport == nil || a.AVReport.Family == "" {
				return nil, false
			}
			return a.AVReport.Family, true
		})
	enrichField(r, "flagged_malware", query.KindBool, "AV-rank >= 10, the paper's robust threshold",
		func(a *App) (any, bool) {
			if a.AVReport == nil {
				return nil, false
			}
			return a.AVReport.Flagged(10), true
		})
	enrichField(r, "permissions_used", query.KindInt, "mapped permissions reachable from code",
		func(a *App) (any, bool) {
			if a.PermUsage == nil {
				return nil, false
			}
			return len(a.PermUsage.Used), true
		})
	enrichField(r, "permissions_unused", query.KindInt, "permission gap: requested but never used (Figure 11)",
		func(a *App) (any, bool) {
			if a.PermUsage == nil {
				return nil, false
			}
			return a.PermUsage.OverPrivilegedCount(), true
		})
	enrichField(r, "over_privileged", query.KindBool, "requests at least one unused permission",
		func(a *App) (any, bool) {
			if a.PermUsage == nil {
				return nil, false
			}
			return a.PermUsage.IsOverPrivileged(), true
		})
	enrichField(r, "unused_dangerous_count", query.KindInt, "unused permissions in the dangerous group",
		func(a *App) (any, bool) {
			if a.PermUsage == nil {
				return nil, false
			}
			n := 0
			for _, p := range a.PermUsage.Unused {
				if permissions.IsDangerous(p) {
					n++
				}
			}
			return n, true
		})

	// Index hints: the planner may answer == / in / range filters on these
	// fields from secondary indexes instead of scanning every listing. The
	// set is the hot filter columns: low-cardinality strings and flags
	// (market, category, taxonomy, booleans) plus the numerics range
	// queries target (AV-rank, downloads, rating, SDK levels).
	if err := r.MarkIndexable(
		"market", "market_category", "category", "market_type", "market_chinese",
		"developer_id", "has_ads", "has_iap", "apk_parsed", "debuggable",
		"min_sdk", "target_sdk", "downloads", "rating", "version_code",
		"release_date", "update_date",
		"av_positives", "av_family", "flagged_malware", "over_privileged",
		"library_count", "permissions_unused",
	); err != nil {
		panic(err) // static field table: a bad name is a programming error
	}

	// Dictionary hints: low-cardinality strings whose values repeat across
	// most of the corpus. The engine re-encodes them as codes into a sorted
	// dictionary — group-by keys become int comparisons and, combined with
	// the index hints above, == / in filters become bitmap intersections.
	// The hint is free to be generous: a column whose cardinality turns out
	// too high (developer_id on a small corpus, say) silently keeps the
	// plain layout with identical results.
	if err := r.MarkDictionary(
		"market", "market_category", "category", "market_type",
		"developer_name", "developer_id", "version_name", "download_bin",
		"android_version", "av_family",
	); err != nil {
		panic(err)
	}

	return r
}

// QueryBaseline returns a fresh query engine over the same listings and
// field registry as QuerySource but with the compressed column layout
// (dictionary encoding, bitmap posting lists, zone maps) disabled — the
// planner and indexes of the pre-compression engine. Results are
// bit-identical to QuerySource's; the benchmarks use it to measure what the
// compressed layout buys. Unlike QuerySource the engine is not cached:
// production code has no reason to call this.
func (d *Dataset) QueryBaseline() query.Source {
	return query.NewEngineUncompressed(appFieldRegistry(d), d.Apps)
}

// CountMatching runs a count-only scan: the number of listings passing the
// filters, without materializing more than one row. It is the cheapest way
// for programmatic consumers to ask "how many listings look like X" through
// the same engine the /api/scan endpoint serves.
func (d *Dataset) CountMatching(filters ...query.Filter) (int, error) {
	res, err := d.QuerySource().Scan(query.Query{
		Fields:  []string{"package"},
		Filters: filters,
		Limit:   1,
	})
	if err != nil {
		return 0, err
	}
	return res.Meta.TotalMatched, nil
}
