package analysis

import "sort"

// RadarMetric names one axis of Figure 13's multi-dimensional market
// comparison.
type RadarMetric string

// The radar axes. Every metric is normalized to [0, 100] across the markets
// being compared, higher meaning "more/better on that axis" exactly as in the
// paper's figure (e.g. a high Malware value means a high malware share).
const (
	MetricCatalogSize   RadarMetric = "catalog size"
	MetricDownloads     RadarMetric = "aggregated downloads"
	MetricHighRatings   RadarMetric = "highly rated apps"
	MetricMalware       RadarMetric = "malware share"
	MetricFakes         RadarMetric = "fake app share"
	MetricClones        RadarMetric = "cloned app share"
	MetricOutdated      RadarMetric = "outdated app share"
	MetricRecentUpdates RadarMetric = "recently updated share"
)

// RadarRow is one market's normalized metric vector.
type RadarRow struct {
	Market string
	Values map[RadarMetric]float64
}

// Radar computes Figure 13 for the selected markets (nil means the five
// markets the paper plots: Google Play, Tencent, PC Online, Huawei, Lenovo),
// recomputing every input analysis from the dataset.
func Radar(d *Dataset, selected []string) []RadarRow {
	d.mustEnrich()
	return RadarFrom(d, selected, MarketOverview(d), Ratings(d), MalwarePrevalence(d),
		Misbehavior(d, DefaultMisbehaviorOptions()), Outdated(d))
}

// RadarFrom computes Figure 13 from already-computed input analyses, so a
// caller that has just produced Table 1, Figure 6, Table 4, Table 3 and
// Figure 9 (the core analysis scheduler) does not pay for recomputing them —
// the clone detection inside Misbehavior being the expensive one. The output
// is identical to Radar's: every input is a deterministic function of the
// dataset, and the clone-detection stage produces the same result for every
// worker/index configuration.
func RadarFrom(d *Dataset, selected []string, overview []MarketOverviewRow,
	ratings []RatingDistribution, malware []MalwareRow, mis *MisbehaviorResult,
	outdated []OutdatedRow) []RadarRow {
	if len(selected) == 0 {
		selected = []string{"Google Play", "Tencent Myapp", "PC Online", "Huawei Market", "Lenovo MM"}
	}
	present := map[string]bool{}
	for _, m := range d.Markets {
		present[m.Name] = true
	}
	var markets []string
	for _, name := range selected {
		if present[name] {
			markets = append(markets, name)
		}
	}
	sort.Strings(markets)

	overviewByMarket := map[string]MarketOverviewRow{}
	for _, row := range overview {
		overviewByMarket[row.Profile.Name] = row
	}
	ratingByMarket := map[string]RatingDistribution{}
	for _, r := range ratings {
		ratingByMarket[r.Market] = r
	}
	malwareByMarket := map[string]MalwareRow{}
	for _, r := range malware {
		malwareByMarket[r.Market] = r
	}
	misByMarket := map[string]MisbehaviorRow{}
	for _, r := range mis.Rows {
		misByMarket[r.Market] = r
	}
	outdatedByMarket := map[string]OutdatedRow{}
	for _, r := range outdated {
		outdatedByMarket[r.Market] = r
	}

	raw := map[string]map[RadarMetric]float64{}
	crawl := d.CrawlTime
	for _, name := range markets {
		apps := d.AppsIn(name)
		recent := 0
		for _, app := range apps {
			if !app.Meta.UpdateDate.IsZero() && app.Meta.UpdateDate.After(crawl.AddDate(0, -6, 0)) {
				recent++
			}
		}
		recentShare := 0.0
		if len(apps) > 0 {
			recentShare = float64(recent) / float64(len(apps))
		}
		raw[name] = map[RadarMetric]float64{
			MetricCatalogSize:   float64(overviewByMarket[name].Apps),
			MetricDownloads:     float64(overviewByMarket[name].AggregatedDownloads),
			MetricHighRatings:   ratingByMarket[name].HighShare,
			MetricMalware:       malwareByMarket[name].ShareAtLeast10,
			MetricFakes:         misByMarket[name].FakeShare,
			MetricClones:        misByMarket[name].CodeCloneShare,
			MetricOutdated:      1 - outdatedByMarket[name].UpToDateShare,
			MetricRecentUpdates: recentShare,
		}
	}

	metrics := []RadarMetric{
		MetricCatalogSize, MetricDownloads, MetricHighRatings, MetricMalware,
		MetricFakes, MetricClones, MetricOutdated, MetricRecentUpdates,
	}
	// Normalize each metric to [0, 100] across the selected markets.
	var rows []RadarRow
	for _, name := range markets {
		rows = append(rows, RadarRow{Market: name, Values: map[RadarMetric]float64{}})
	}
	for _, metric := range metrics {
		maxVal := 0.0
		for _, name := range markets {
			if v := raw[name][metric]; v > maxVal {
				maxVal = v
			}
		}
		for i, name := range markets {
			if maxVal > 0 {
				rows[i].Values[metric] = 100 * raw[name][metric] / maxVal
			} else {
				rows[i].Values[metric] = 0
			}
		}
	}
	return rows
}
