package analysis

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"marketscope/internal/crawler"
	"marketscope/internal/synth"
)

// enrichSnapshot builds one small crawl snapshot shared by the pipeline
// equivalence tests. It is separate from the package fixture because these
// tests need un-enriched datasets they can enrich with varying worker counts.
func enrichSnapshot(t *testing.T) *crawler.Snapshot {
	t.Helper()
	enrichSnapOnce.Do(func() {
		cfg := synth.SmallConfig()
		cfg.NumApps = 160
		cfg.NumDevelopers = 60
		eco, err := synth.Generate(cfg)
		if err != nil {
			enrichSnapErr = err
			return
		}
		stores, err := eco.Populate()
		if err != nil {
			enrichSnapErr = err
			return
		}
		enrichSnapVal, enrichSnapErr = crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	})
	if enrichSnapErr != nil {
		t.Fatalf("enrich snapshot: %v", enrichSnapErr)
	}
	return enrichSnapVal
}

var (
	enrichSnapOnce sync.Once
	enrichSnapVal  *crawler.Snapshot
	enrichSnapErr  error
)

// enrichedDataset builds and enriches a dataset with the given worker count.
func enrichedDataset(t *testing.T, snap *crawler.Snapshot, workers int) *Dataset {
	t.Helper()
	d, err := BuildDatasetWith(snap, BuildOptions{Workers: workers})
	if err != nil {
		t.Fatalf("build (workers=%d): %v", workers, err)
	}
	opts := DefaultEnrichOptions()
	opts.Workers = workers
	d.Enrich(opts)
	return d
}

// TestParallelEnrichMatchesSerialOracle is the pipeline's acceptance test:
// Workers == 1 runs the serial reference implementation, and every parallel
// worker count must reproduce its output exactly — same libraries, same AV
// reports, same permission gaps on every listing, and the same learned
// feature database.
func TestParallelEnrichMatchesSerialOracle(t *testing.T) {
	snap := enrichSnapshot(t)
	oracle := enrichedDataset(t, snap, 1)

	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("workers_%d", workers), func(t *testing.T) {
			got := enrichedDataset(t, snap, workers)
			if len(got.Apps) != len(oracle.Apps) {
				t.Fatalf("listing count %d, want %d", len(got.Apps), len(oracle.Apps))
			}
			for i, app := range got.Apps {
				want := oracle.Apps[i]
				if app.Meta.Key() != want.Meta.Key() {
					t.Fatalf("listing %d is %v, oracle has %v (order diverged)", i, app.Meta.Key(), want.Meta.Key())
				}
				if app.HasAPK() != want.HasAPK() {
					t.Fatalf("%v: parsed=%v, oracle parsed=%v", app.Meta.Key(), app.HasAPK(), want.HasAPK())
				}
				if !reflect.DeepEqual(app.Libraries, want.Libraries) {
					t.Errorf("%v: libraries diverge:\n got %+v\nwant %+v", app.Meta.Key(), app.Libraries, want.Libraries)
				}
				if !reflect.DeepEqual(app.AVReport, want.AVReport) {
					t.Errorf("%v: AV report diverges:\n got %+v\nwant %+v", app.Meta.Key(), app.AVReport, want.AVReport)
				}
				if !reflect.DeepEqual(app.PermUsage, want.PermUsage) {
					t.Errorf("%v: permission usage diverges:\n got %+v\nwant %+v", app.Meta.Key(), app.PermUsage, want.PermUsage)
				}
			}
			gotDB := got.LibraryDetector()
			wantDB := oracle.LibraryDetector()
			if gotDB == nil || wantDB == nil {
				t.Fatal("detector missing after enrichment")
			}
			// The learned databases must agree feature-for-feature; the
			// summary counts catch shard-merge bugs cheaply.
			if g, w := dbStats(got), dbStats(oracle); g != w {
				t.Errorf("feature DB diverges: got %v, want %v", g, w)
			}
		})
	}
}

// dbStats summarizes what the learned feature database produced — the
// detector does not expose its FeatureDB, so compare the stats the analyses
// observe: total and catalog-resolved detections across the corpus.
func dbStats(d *Dataset) [2]int {
	total := 0
	known := 0
	for _, app := range d.Apps {
		total += len(app.Libraries)
		for _, det := range app.Libraries {
			if det.Known {
				known++
			}
		}
	}
	return [2]int{total, known}
}

// TestBuildDatasetParallelMatchesSerial checks the parse stage alone: the
// listing order, metadata and parse outcomes must be independent of the
// parse worker count.
func TestBuildDatasetParallelMatchesSerial(t *testing.T) {
	snap := enrichSnapshot(t)
	serial, err := BuildDatasetWith(snap, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatalf("serial build: %v", err)
	}
	parallel, err := BuildDatasetWith(snap, BuildOptions{Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatalf("parallel build: %v", err)
	}
	if len(serial.Apps) != len(parallel.Apps) {
		t.Fatalf("listing count %d vs %d", len(parallel.Apps), len(serial.Apps))
	}
	for i := range serial.Apps {
		s, p := serial.Apps[i], parallel.Apps[i]
		if s.Meta.Key() != p.Meta.Key() {
			t.Fatalf("listing %d: %v vs %v", i, p.Meta.Key(), s.Meta.Key())
		}
		if s.HasAPK() != p.HasAPK() {
			t.Fatalf("%v: parse outcome diverges", s.Meta.Key())
		}
		if s.HasAPK() && s.Parsed.SHA256 != p.Parsed.SHA256 {
			t.Fatalf("%v: SHA-256 diverges", s.Meta.Key())
		}
		if (s.ParseError == nil) != (p.ParseError == nil) {
			t.Fatalf("%v: parse error diverges", s.Meta.Key())
		}
	}
	if !reflect.DeepEqual(serial.MarketNames(), parallel.MarketNames()) {
		t.Errorf("market order diverges: %v vs %v", parallel.MarketNames(), serial.MarketNames())
	}
}

// TestConcurrentEnrichIsSafe exercises the sync.Once contract under the race
// detector: many goroutines call Enrich (with different options — the first
// one in wins) while others poll Enriched; exactly one pipeline runs, every
// caller returns with the dataset fully enriched, and detector-backed
// analyses work from all goroutines afterwards.
func TestConcurrentEnrichIsSafe(t *testing.T) {
	snap := enrichSnapshot(t)
	d, err := BuildDataset(snap)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			opts := DefaultEnrichOptions()
			opts.Workers = workers
			d.Enrich(opts)
			if !d.Enriched() {
				t.Error("Enrich returned before enrichment completed")
			}
			// Detector-backed analyses must be usable the moment any
			// Enrich call returns.
			_ = MalwarePrevalence(d)
		}(i%4 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = d.Enriched() // concurrent polling must be race-free
		}()
	}
	wg.Wait()

	for _, app := range d.Apps {
		if app.HasAPK() && app.AVReport == nil {
			t.Fatalf("%v: listing left unenriched", app.Meta.Key())
		}
	}
}

// TestEnrichProgress checks the Progress contract on both paths: per-stage
// callbacks are serialized, strictly monotone and end at the listing total.
func TestEnrichProgress(t *testing.T) {
	snap := enrichSnapshot(t)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers_%d", workers), func(t *testing.T) {
			last := map[string]int{}
			progress := func(stage string, done, total int) {
				if done != last[stage]+1 {
					t.Errorf("stage %q: done jumped from %d to %d", stage, last[stage], done)
				}
				last[stage] = done
				if total != snap.NumRecords() {
					t.Errorf("stage %q: total = %d, want %d", stage, total, snap.NumRecords())
				}
			}
			d, err := BuildDatasetWith(snap, BuildOptions{Workers: workers, Progress: progress})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			opts := DefaultEnrichOptions()
			opts.Workers = workers
			opts.Progress = progress
			d.Enrich(opts)
			for _, stage := range []string{"parse", "learn", "detect"} {
				if last[stage] != snap.NumRecords() {
					t.Errorf("stage %q finished at %d of %d", stage, last[stage], snap.NumRecords())
				}
			}
		})
	}
}

// TestEnrichOnceFirstOptionsWin documents the sync.Once semantics: a second
// Enrich call with different options is a no-op.
func TestEnrichOnceFirstOptionsWin(t *testing.T) {
	snap := enrichSnapshot(t)
	d, err := BuildDataset(snap)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	d.Enrich(DefaultEnrichOptions())
	before := d.scanner.NumEngines()
	second := DefaultEnrichOptions()
	second.Engines = 7
	d.Enrich(second)
	if d.scanner.NumEngines() != before {
		t.Errorf("second Enrich rebuilt the scanner: %d engines, want %d", d.scanner.NumEngines(), before)
	}
}
