package analysis

import (
	"fmt"

	"marketscope/internal/libdetect"
	"marketscope/internal/query"
)

// The library-detection row source: Table 2 and the ad-ecosystem statistics
// aggregate over (listing, library) pairs, not listings, so the dataset
// exposes a second aggregation engine whose rows are the per-listing
// detections — deduplicated by library key within each listing exactly as
// the serial Table 2 body dedups them — in dataset order. The fixed analyses
// group and rank over it the same way /api/aggregate consumers group over
// the listing engine.

// libRow is one deduplicated (listing, detected library) pair.
type libRow struct {
	market  string
	chinese bool
	pkg     string
	// key is the ranking identity Table 2 counts by: the catalog name, or
	// the detected prefix when the detection resolved to no catalog entry.
	key      string
	prefix   string
	category string
	ad       bool
	known    bool
}

// libraryKey is the Table 2 ranking identity of one detection.
func libraryKey(det libdetect.Detection) string {
	key := det.Library.Name
	if key == "" || key == "unknown" {
		key = det.Prefix
	}
	return key
}

// libRowRegistry builds the field registry over detection rows.
func libRowRegistry() *query.Registry[libRow] {
	r := query.NewRegistry[libRow]()
	reg := func(name, doc string, kind query.Kind, extract func(libRow) (any, bool)) {
		r.MustRegister(query.Field[libRow]{Name: name, Category: "detection", Kind: kind, Doc: doc, Extract: extract})
	}
	reg("market", "market hosting the embedding listing", query.KindString,
		func(x libRow) (any, bool) { return x.market, true })
	reg("market_chinese", "listing hosted by one of the Chinese markets", query.KindBool,
		func(x libRow) (any, bool) { return x.chinese, true })
	reg("package", "package of the embedding listing", query.KindString,
		func(x libRow) (any, bool) { return x.pkg, true })
	reg("library", "library identity (catalog name, or prefix when unknown)", query.KindString,
		func(x libRow) (any, bool) { return x.key, true })
	reg("prefix", "package prefix the detector matched", query.KindString,
		func(x libRow) (any, bool) { return x.prefix, true })
	reg("library_category", "catalog category of the library", query.KindString,
		func(x libRow) (any, bool) { return x.category, true })
	reg("is_ad", "advertising library", query.KindBool,
		func(x libRow) (any, bool) { return x.ad, true })
	reg("known", "detection resolved to a catalog entry", query.KindBool,
		func(x libRow) (any, bool) { return x.known, true })
	if err := r.MarkIndexable("market", "market_chinese", "is_ad", "library"); err != nil {
		panic(err)
	}
	return r
}

// libraryRowSource returns the aggregation engine over the detection rows,
// built once after enrichment.
func (d *Dataset) libraryRowSource() query.AggregateSource {
	d.mustEnrich()
	d.queryMu.Lock()
	defer d.queryMu.Unlock()
	if d.libSrc != nil {
		return d.libSrc
	}
	// Library metadata (prefix, category, ad, known) is normalized per key
	// to its first occurrence in dataset order: detections of one key could
	// in principle resolve to differing Library values (cluster-learned
	// canonical prefixes), and rows of one ranking key must not split into
	// several (library, prefix, category) groups when Table 2 groups over
	// them.
	type libMeta struct {
		prefix, category string
		ad, known        bool
	}
	meta := map[string]libMeta{}
	var rows []libRow
	for _, app := range d.Apps {
		if !app.HasAPK() {
			continue
		}
		chinese := marketIsChinese(d, app.Meta.Market)
		seen := map[string]bool{}
		for _, det := range app.Libraries {
			key := libraryKey(det)
			if seen[key] {
				continue
			}
			seen[key] = true
			m, ok := meta[key]
			if !ok {
				m = libMeta{
					prefix:   det.Library.Prefix,
					category: string(det.Library.Category),
					ad:       det.IsAd(),
					known:    det.Known,
				}
				meta[key] = m
			}
			rows = append(rows, libRow{
				market:   app.Meta.Market,
				chinese:  chinese,
				pkg:      app.Meta.Package,
				key:      key,
				prefix:   m.prefix,
				category: m.category,
				ad:       m.ad,
				known:    m.known,
			})
		}
	}
	d.libSrc = query.NewEngine(libRowRegistry(), rows)
	return d.libSrc
}

// Aggregate runs one grouped aggregation over the listings through the same
// engine /api/aggregate serves. It is safe for concurrent use.
func (d *Dataset) Aggregate(a query.Aggregate) (*query.Result, error) {
	src, ok := d.QuerySource().(query.AggregateSource)
	if !ok {
		return nil, fmt.Errorf("analysis: query source %T does not aggregate", d.QuerySource())
	}
	return src.Aggregate(a)
}

// mustAggregate is Aggregate for the fixed analyses' static requests, where
// a failure is a programming mistake, not a data condition.
func (d *Dataset) mustAggregate(a query.Aggregate) *query.Result {
	res, err := d.Aggregate(a)
	if err != nil {
		panic(err)
	}
	return res
}
