package analysis

import (
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/avscan"
	"marketscope/internal/libdetect"
	"marketscope/internal/permissions"
	"marketscope/internal/pipeline"
	"marketscope/internal/query"
)

// Incremental dataset builds. IngestState carries the cumulative enrichment
// artifacts — the library-feature observations and the AV verdict cache —
// across append-only batches, so each Append yields a fresh, fully enriched
// Dataset without re-parsing or re-scanning anything already ingested. The
// correctness bar is exact: the dataset (and therefore every query result)
// after N batches is identical to one cold BuildDatasetFromRecords + Enrich
// over the concatenation of all N batches, which internal/ingest's
// randomized equivalence suite asserts byte for byte.
//
// What carries over and why it is sound:
//
//   - APK parses, AV reports and permission analyses are pure functions of
//     the archive (and the fixed scanner seed/pool), so they are computed at
//     a listing's first appearance and reused verbatim in every later epoch.
//   - Library feature observations merge: FeatureDB.Merge is commutative and
//     associative, so previous observations + the delta's observations equal
//     one cold learning pass over the union. The DB is replaced copy-on-write
//     each batch — the previous epoch's detector keeps reading its own frozen
//     DB while its engine is still live.
//   - Library detections do NOT carry over blindly: they depend on the whole
//     corpus (threshold crossings, canonical-prefix flips), so every batch
//     re-detects every previously ingested listing against the grown DB. A
//     listing whose detections are unchanged keeps its exact *App pointer —
//     no write ever lands on an App a live engine is serving — and when
//     nothing changed, the new epoch's engine is sealed from the previous
//     one's columns via query.NewEngineAppend instead of re-extracting the
//     whole corpus.
type IngestState struct {
	opts EnrichOptions
	// db accumulates the feature observations of every listing ingested so
	// far; replaced copy-on-write by each Append.
	db      *libdetect.FeatureDB
	scanner *avscan.Scanner
	// scans caches AV reports by archive SHA-256 across batches: a verdict
	// is a pure function of (seed, engine pool, sample), so re-listings of
	// an already-scanned archive reuse the epoch-independent report. Written
	// only between batch pipelines, read freely inside them.
	scans map[string]*avscan.Report
}

// NewIngestState prepares incremental enrichment with the given options
// (Workers sizes every per-batch pipeline; the other knobs mean exactly what
// they mean for Enrich). The options must stay fixed for the lifetime of the
// state — they define the corpus the equivalence contract compares against.
func NewIngestState(opts EnrichOptions) *IngestState {
	if opts.Engines == 0 {
		opts.Engines = avscan.DefaultEngineCount
	}
	return &IngestState{
		opts:    opts,
		db:      libdetect.NewFeatureDB(opts.LibraryMinApps, opts.LibraryMinDevelopers),
		scanner: avscan.NewScanner(opts.ScannerSeed, opts.Engines),
		scans:   map[string]*avscan.Report{},
	}
}

// AppendStats reports what one incremental build did.
type AppendStats struct {
	// Added is the number of listings appended.
	Added int
	// Redetected counts previously ingested listings whose library
	// detections changed under the grown feature DB (each got a fresh
	// shallow App copy; the old epoch's App is untouched).
	Redetected int
	// EngineSealed reports whether the new epoch's engine was built by
	// extending the previous epoch's columns (possible exactly when
	// Redetected == 0 and the previous dataset had a built engine).
	EngineSealed bool
}

// Append builds the next epoch's dataset: prev's listings (re-detected,
// pointer-preserved where unchanged) followed by the given records, parsed
// and enriched. prev is never mutated — its engine keeps serving the old
// epoch — and may be nil for the first batch. apkOf resolves the new
// records' APK bytes and may be nil.
func (st *IngestState) Append(prev *Dataset, crawlTime time.Time, records []appmeta.Record, apkOf func(appmeta.Key) ([]byte, bool)) (*Dataset, AppendStats) {
	stats := AppendStats{Added: len(records)}
	workers := st.opts.Workers

	// Parse only the delta; previously ingested listings are never re-parsed.
	// One backing array serves the whole batch — later epochs copy an App out
	// of it if and only if its detections change, exactly as with individual
	// allocations.
	backing := make([]App, len(records))
	fresh := make([]*App, len(records))
	pipeline.ForEach(len(records), workers, func(i int) {
		fresh[i] = parseListingInto(&backing[i], records[i], apkOf)
	})

	// Learn copy-on-write: a fresh DB absorbs the previous observations
	// (Merge leaves its argument unchanged) plus the delta's. Commutativity
	// makes this equal to one cold learning pass over the union.
	db := libdetect.NewFeatureDB(st.opts.LibraryMinApps, st.opts.LibraryMinDevelopers)
	db.Merge(st.db)
	for _, app := range fresh {
		if app.HasAPK() {
			db.Observe(app.Parsed.Dex, app.Meta.Package, app.Parsed.Developer())
		}
	}
	st.db = db
	detector := libdetect.NewDetector(nil, db)

	// Re-detect every previously ingested listing against the grown DB.
	// Unchanged detections keep the old *App; changed ones get a shallow
	// copy (Parsed, AVReport and PermUsage are archive-pure and shared).
	var prevApps []*App
	if prev != nil {
		prevApps = prev.Apps
	}
	olds := make([]*App, len(prevApps))
	pipeline.ForEach(len(prevApps), workers, func(i int) {
		old := prevApps[i]
		if !old.HasAPK() {
			olds[i] = old
			return
		}
		libs := detector.Detect(old.Parsed.Dex, old.Meta.Package)
		if detectionsEqual(libs, old.Libraries) {
			olds[i] = old
			return
		}
		cp := *old
		cp.Libraries = libs
		olds[i] = &cp
	})
	for i := range olds {
		if olds[i] != prevApps[i] {
			stats.Redetected++
		}
	}

	// Enrich the delta. st.scans reads are safe inside the pool — the map is
	// only written after it drains; unseen archives deduplicate through the
	// exactly-once batch cache.
	permAnalyzer := permissions.NewAnalyzer(nil)
	batchScans := pipeline.NewCache[*avscan.Report]()
	pipeline.ForEach(len(fresh), workers, func(i int) {
		app := fresh[i]
		if !app.HasAPK() {
			return
		}
		app.Libraries = detector.Detect(app.Parsed.Dex, app.Meta.Package)
		if report, ok := st.scans[app.Parsed.SHA256]; ok {
			app.AVReport = report
		} else {
			app.AVReport = batchScans.Do(app.Parsed.SHA256, func() *avscan.Report {
				return st.scanner.Scan(app.Parsed.SHA256, app.Parsed.Dex)
			})
		}
		app.PermUsage = permAnalyzer.Analyze(app.Parsed.Manifest, app.Parsed.Dex)
	})
	for _, app := range fresh {
		if app.HasAPK() {
			if _, ok := st.scans[app.Parsed.SHA256]; !ok {
				st.scans[app.Parsed.SHA256] = app.AVReport
			}
		}
	}

	// Assemble the new epoch: a fresh Dataset value, already enriched (the
	// pipelines above are the enrichment — a later Enrich call is a no-op).
	d := &Dataset{CrawlTime: crawlTime, byMarket: map[string][]*App{}}
	d.Apps = make([]*App, 0, len(olds)+len(fresh))
	d.Apps = append(d.Apps, olds...)
	d.Apps = append(d.Apps, fresh...)
	d.attachMarkets()
	d.libDetector = detector
	d.scanner = st.scanner
	d.enrichOnce.Do(func() {})
	d.enriched.Store(true)

	// Seal the engine when every old row is provably unchanged: the previous
	// epoch's built columns are then value-identical prefixes of the new
	// ones. Any change (or no built previous engine) falls back to the lazy
	// cold build in QuerySource.
	if stats.Redetected == 0 && prev != nil {
		if base := prev.builtEngine(); base != nil {
			if eng, err := query.NewEngineAppend(appFieldRegistry(d), base, fresh); err == nil {
				d.queryMu.Lock()
				d.querySrc = eng
				d.queryEnriched = true
				d.queryMu.Unlock()
				stats.EngineSealed = true
			}
		}
	}
	return d, stats
}

// detectionsEqual reports whether two detection slices are elementwise
// identical (Detection is a comparable struct).
func detectionsEqual(a, b []libdetect.Detection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// builtEngine returns the dataset's cached post-enrichment engine typed for
// appending, or nil when none was built (or it predates enrichment).
func (d *Dataset) builtEngine() *query.Engine[*App] {
	d.queryMu.Lock()
	defer d.queryMu.Unlock()
	if !d.queryEnriched {
		return nil
	}
	eng, _ := d.querySrc.(*query.Engine[*App])
	return eng
}
