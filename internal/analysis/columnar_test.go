package analysis

import (
	"encoding/json"
	"reflect"
	"testing"

	"marketscope/internal/query"
)

// querySingleCount is the one-row global count request.
func querySingleCount() query.Aggregate {
	return query.Aggregate{Aggregates: []query.AggSpec{{Op: query.AggCount}}}
}

// TestColumnarAnalysesMatchOracles holds every aggregation-rewritten
// analysis byte-identical to its kept serial body over the enriched synth
// fixture — the analysis-level face of the accelerate-and-prove contract
// (floats included: the columnar path visits each group's rows in the same
// dataset order the oracle does, so the arithmetic is bit-equal, not merely
// close).
func TestColumnarAnalysesMatchOracles(t *testing.T) {
	f := testFixture(t)
	d := f.dataset

	check := func(name string, got, want any) {
		t.Helper()
		if !reflect.DeepEqual(got, want) {
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			t.Errorf("%s diverged from its oracle:\ncolumnar %s\noracle   %s", name, gj, wj)
		}
	}

	overview := MarketOverview(d)
	overviewOracle := MarketOverviewOracle(d)
	check("MarketOverview", overview, overviewOracle)
	check("Totals", Totals(d, overview), TotalsOracle(d, overviewOracle))
	check("Categories", Categories(d), CategoriesOracle(d))
	check("Downloads", Downloads(d), DownloadsOracle(d))
	gp, cn := APILevels(d)
	gpO, cnO := APILevelsOracle(d)
	check("APILevels/GP", gp, gpO)
	check("APILevels/CN", cn, cnO)
	check("LibraryUsage", LibraryUsage(d), LibraryUsageOracle(d))
	for _, limit := range []int{1, 3, 10, 1 << 20} {
		tlGP, tlCN := TopLibraries(d, limit)
		tlGPo, tlCNo := TopLibrariesOracle(d, limit)
		check("TopLibraries/GP", tlGP, tlGPo)
		check("TopLibraries/CN", tlCN, tlCNo)
	}
	check("MalwarePrevalence", MalwarePrevalence(d), MalwarePrevalenceOracle(d))
	check("Publishing", Publishing(d), PublishingOracle(d))
}

// TestChineseAppsMemoized pins the memoization contract: repeated calls
// return the same backing slice with the same contents as a fresh sweep.
func TestChineseAppsMemoized(t *testing.T) {
	f := testFixture(t)
	d := f.dataset

	var want []*App
	for _, m := range d.Markets {
		if m.IsChinese() {
			want = append(want, d.byMarket[m.Name]...)
		}
	}
	first := d.ChineseApps()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("ChineseApps returned %d listings, fresh sweep %d", len(first), len(want))
	}
	second := d.ChineseApps()
	if len(first) > 0 && &first[0] != &second[0] {
		t.Error("ChineseApps rebuilt the slice on the second call")
	}
}

// TestLibraryRowSourceShape checks the detection-row engine: rows are
// deduplicated per listing by library identity, in dataset order.
func TestLibraryRowSourceShape(t *testing.T) {
	f := testFixture(t)
	d := f.dataset

	want := 0
	for _, app := range d.Apps {
		if !app.HasAPK() {
			continue
		}
		seen := map[string]bool{}
		for _, det := range app.Libraries {
			key := libraryKey(det)
			if !seen[key] {
				seen[key] = true
				want++
			}
		}
	}
	src := d.libraryRowSource()
	res, err := src.Aggregate(querySingleCount())
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if got := int(res.Rows[0][0].(int64)); got != want {
		t.Fatalf("detection rows = %d, direct sweep = %d", got, want)
	}
	if src != d.libraryRowSource() {
		t.Error("libraryRowSource rebuilt the engine on the second call")
	}
}
