package analysis

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"marketscope/internal/query"
	"marketscope/internal/synth"
)

// TestScaledDatasetShape checks the streamed corpus materializes with the
// row count asked for, market profiles attached in canonical order, and the
// metadata-only contract holding on every row (no APK, parse error set,
// apk-category fields null).
func TestScaledDatasetShape(t *testing.T) {
	d, err := NewScaledDataset(synth.ScaleConfig{Seed: 3, Rows: 2000})
	if err != nil {
		t.Fatalf("NewScaledDataset: %v", err)
	}
	if len(d.Apps) != 2000 {
		t.Fatalf("got %d apps, want 2000", len(d.Apps))
	}
	for i, app := range d.Apps {
		if app.ParseError == nil || app.Parsed != nil {
			t.Fatalf("app %d: scaled rows must be metadata-only (err=%v parsed=%v)",
				i, app.ParseError, app.Parsed)
		}
	}
	if len(d.Markets) == 0 {
		t.Fatal("no market profiles attached")
	}
	seen := map[string]bool{}
	for _, p := range d.Markets {
		if seen[p.Name] {
			t.Fatalf("market %q attached twice", p.Name)
		}
		seen[p.Name] = true
	}
	for name := range d.byMarket {
		if !seen[name] {
			t.Errorf("market %q present in rows but has no profile", name)
		}
	}
	if d.CrawlTime.IsZero() {
		t.Error("CrawlTime not set")
	}

	// The apk-category fields must scan as null on a metadata-only corpus.
	res, err := d.QuerySource().Scan(query.Query{
		Fields:  []string{"package", "apk_size", "method_count"},
		Filters: []query.Filter{{Field: "method_count", Op: query.OpIsNull, Value: true}},
		Limit:   5,
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Meta.TotalMatched != 2000 {
		t.Errorf("method_count should be null on all 2000 rows, matched %d", res.Meta.TotalMatched)
	}
}

// TestScaledDatasetDeterministicAndPrefix pins the generator's two
// reproducibility contracts: the same config yields an identical dataset,
// and a shorter corpus is a row-for-row prefix of a longer one with the same
// seed — which is what makes the 400 → 100k → 1M scaling curve measure one
// growing corpus rather than three unrelated ones.
func TestScaledDatasetDeterministicAndPrefix(t *testing.T) {
	a, err := NewScaledDataset(synth.ScaleConfig{Seed: 11, Rows: 1500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScaledDataset(synth.ScaleConfig{Seed: 11, Rows: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("row counts diverge: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		if !reflect.DeepEqual(a.Apps[i].Meta, b.Apps[i].Meta) {
			t.Fatalf("row %d diverges across generates:\n%+v\n%+v", i, a.Apps[i].Meta, b.Apps[i].Meta)
		}
	}

	// Prefix property: NumApps/NumDevelopers defaults depend on Rows, so pin
	// them — the contract is per-row purity given the same population sizes.
	big, err := NewScaledDataset(synth.ScaleConfig{Seed: 11, Rows: 1500, NumApps: 500, NumDevelopers: 63})
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewScaledDataset(synth.ScaleConfig{Seed: 11, Rows: 400, NumApps: 500, NumDevelopers: 63})
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Apps {
		if !reflect.DeepEqual(small.Apps[i].Meta, big.Apps[i].Meta) {
			t.Fatalf("row %d of the 400-row corpus differs from the 1500-row prefix", i)
		}
	}
}

// TestScaledDatasetQueryEquivalence runs dictionary-, bitmap- and zone-map-
// shaped queries plus a grouped aggregate over a scaled corpus through the
// compressed engine, the uncompressed baseline and the oracle — the scaled
// rows must not open any daylight between the three.
func TestScaledDatasetQueryEquivalence(t *testing.T) {
	d, err := NewScaledDataset(synth.ScaleConfig{Seed: 5, Rows: 3000})
	if err != nil {
		t.Fatal(err)
	}
	src := d.QuerySource()
	base := d.QueryBaseline()
	oracle := src.(query.OracleSource)

	for _, q := range []query.Query{
		{Fields: []string{"package", "market"},
			Filters: []query.Filter{{Field: "market", Op: query.OpEq, Value: "Tencent Myapp"}},
			Sort:    []query.SortKey{{Field: "package"}}, Limit: 40},
		{Fields: []string{"package", "market_category"},
			Filters: []query.Filter{{Field: "market_category", Op: query.OpIn,
				Value: []any{"Unclassified", "102229", "Online Game"}}},
			Sort: []query.SortKey{{Field: "package"}}, Limit: 40},
		{Fields: []string{"package", "release_date"},
			Filters: []query.Filter{{Field: "release_date", Op: query.OpLt, Value: "2016-02-01T00:00:00Z"}},
			Sort:    []query.SortKey{{Field: "release_date"}}, Limit: 40},
	} {
		planned, err := src.Scan(q)
		if err != nil {
			t.Fatalf("planned scan: %v", err)
		}
		want, err := oracle.ScanOracle(q)
		if err != nil {
			t.Fatalf("oracle scan: %v", err)
		}
		uncompressed, err := base.Scan(q)
		if err != nil {
			t.Fatalf("baseline scan: %v", err)
		}
		pj, _ := json.Marshal(planned.Rows)
		wj, _ := json.Marshal(want.Rows)
		uj, _ := json.Marshal(uncompressed.Rows)
		if !bytes.Equal(pj, wj) || !bytes.Equal(uj, wj) {
			t.Fatalf("scan diverges on scaled corpus (%+v):\nplanned  %s\nbaseline %s\noracle   %s",
				q.Filters, pj, uj, wj)
		}
		if planned.Meta.TotalMatched == 0 {
			t.Fatalf("query %+v matched nothing — not probative", q.Filters)
		}
	}

	agg := query.Aggregate{
		GroupBy: []string{"market", "market_category"},
		Aggregates: []query.AggSpec{
			{Op: query.AggCount, As: "n"},
			{Op: query.AggMean, Field: "rating", As: "mean_rating"},
		},
		Sort:  []query.SortKey{{Field: "n", Desc: true}},
		Limit: 20,
	}
	planned, err := d.Aggregate(agg)
	if err != nil {
		t.Fatalf("planned aggregate: %v", err)
	}
	want, err := src.(query.AggregateOracleSource).AggregateOracle(agg)
	if err != nil {
		t.Fatalf("oracle aggregate: %v", err)
	}
	uncompressed, err := base.(query.AggregateSource).Aggregate(agg)
	if err != nil {
		t.Fatalf("baseline aggregate: %v", err)
	}
	pj, _ := json.Marshal(planned.Rows)
	wj, _ := json.Marshal(want.Rows)
	uj, _ := json.Marshal(uncompressed.Rows)
	if !bytes.Equal(pj, wj) || !bytes.Equal(uj, wj) {
		t.Fatalf("aggregate diverges on scaled corpus:\nplanned  %s\nbaseline %s\noracle   %s", pj, uj, wj)
	}
}
