package analysis

import (
	"errors"
	"sort"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
	"marketscope/internal/synth"
)

// errScaledNoAPK marks every listing of a scaled dataset: the scale
// generator emits metadata only, so apk-category fields are null on every
// row, exactly like the paper's metadata catalog rows whose APK was never
// harvested.
var errScaledNoAPK = errors.New("analysis: scaled corpus has no APKs")

// NewScaledDataset materializes a metadata-only dataset from the streaming
// scale generator: cfg.Rows listings with full market metadata but no APK
// bytes, parsed artifacts or enrichment. It is the fixture of the scaling
// benchmarks (100k–1M rows) — QuerySource, QueryBaseline, Aggregate and the
// metadata analyses all work on it; apk- and enrichment-category fields are
// null on every row.
//
// Generation is streamed: only the final []*App accumulates, one compact
// record per listing, never the generator's intermediate state.
func NewScaledDataset(cfg synth.ScaleConfig) (*Dataset, error) {
	d := &Dataset{byMarket: map[string][]*App{}}
	err := synth.StreamListings(cfg, func(i int, rec appmeta.Record) error {
		app := &App{Meta: rec, ParseError: errScaledNoAPK}
		d.Apps = append(d.Apps, app)
		d.byMarket[rec.Market] = append(d.byMarket[rec.Market], app)
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.CrawlTime = cfg.StartDate
	if len(d.Apps) > 0 {
		d.CrawlTime = d.Apps[len(d.Apps)-1].Meta.UpdateDate
	}

	// Attach profiles for the markets present, canonical study order first,
	// exactly as BuildDataset does.
	seen := map[string]bool{}
	for name := range d.byMarket {
		seen[name] = true
	}
	for _, p := range market.Profiles() {
		if seen[p.Name] {
			d.Markets = append(d.Markets, p)
			delete(seen, p.Name)
		}
	}
	var extra []string
	for name := range seen {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		d.Markets = append(d.Markets, market.Profile{Name: name})
	}
	return d, nil
}
