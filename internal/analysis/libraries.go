package analysis

import (
	"sort"

	"marketscope/internal/libdetect"
	"marketscope/internal/market"
	"marketscope/internal/query"
)

// LibraryUsageRow is one market's third-party library statistics
// (Figure 5(a) and 5(b)).
type LibraryUsageRow struct {
	Market string
	// ShareWithLibraries is the fraction of parsed apps embedding at least
	// one third-party library.
	ShareWithLibraries float64
	// AvgLibraries is the mean number of libraries per parsed app.
	AvgLibraries float64
	// ShareWithAds is the fraction embedding at least one advertising
	// library.
	ShareWithAds float64
	// AvgAdLibraries is the mean number of ad libraries per parsed app.
	AvgAdLibraries float64
	Parsed         int
}

// LibraryUsage computes Figure 5 for every market as one grouped
// aggregation over the parsed listings: plain sums of the detection-count
// columns next to conditional (where-gated) counts of the listings embedding
// at least one library. LibraryUsageOracle keeps the per-market sweep.
func LibraryUsage(d *Dataset) []LibraryUsageRow {
	d.mustEnrich()
	res := d.mustAggregate(query.Aggregate{
		GroupBy: []string{"market"},
		Filters: []query.Filter{{Field: "apk_parsed", Op: query.OpEq, Value: true}},
		Aggregates: []query.AggSpec{
			{Op: query.AggCount, As: "parsed"},
			{Op: query.AggCount, As: "with_libs",
				Where: []query.Filter{{Field: "library_count", Op: query.OpGt, Value: 0}}},
			{Op: query.AggCount, As: "with_ads",
				Where: []query.Filter{{Field: "ad_library_count", Op: query.OpGt, Value: 0}}},
			{Op: query.AggSum, Field: "library_count", As: "libs"},
			{Op: query.AggSum, Field: "ad_library_count", As: "ads"},
		},
	})
	type counts struct{ parsed, withLibs, withAds, libs, ads int }
	byMarket := map[string]*counts{}
	for _, r := range res.Rows {
		byMarket[r[0].(string)] = &counts{
			parsed: int(r[1].(int64)), withLibs: int(r[2].(int64)), withAds: int(r[3].(int64)),
			libs: int(cellInt(r[4])), ads: int(cellInt(r[5])),
		}
	}
	var out []LibraryUsageRow
	for _, m := range d.Markets {
		row := LibraryUsageRow{Market: m.Name}
		if c := byMarket[m.Name]; c != nil && c.parsed > 0 {
			row.Parsed = c.parsed
			row.ShareWithLibraries = float64(c.withLibs) / float64(c.parsed)
			row.ShareWithAds = float64(c.withAds) / float64(c.parsed)
			row.AvgLibraries = float64(c.libs) / float64(c.parsed)
			row.AvgAdLibraries = float64(c.ads) / float64(c.parsed)
		}
		out = append(out, row)
	}
	return out
}

// cellInt unboxes a nullable int aggregate cell (a sum over zero
// contributing rows is null).
func cellInt(v any) int64 {
	if v == nil {
		return 0
	}
	return v.(int64)
}

// LibraryUsageOracle is the pre-aggregation serial body of LibraryUsage,
// kept verbatim as the oracle.
func LibraryUsageOracle(d *Dataset) []LibraryUsageRow {
	d.mustEnrich()
	var out []LibraryUsageRow
	for _, m := range d.Markets {
		row := LibraryUsageRow{Market: m.Name}
		var withLibs, withAds, totalLibs, totalAds int
		for _, app := range d.AppsIn(m.Name) {
			if !app.HasAPK() {
				continue
			}
			row.Parsed++
			s := libdetect.Summarize(app.Libraries)
			totalLibs += s.Total
			totalAds += s.Ad
			if s.Total > 0 {
				withLibs++
			}
			if s.Ad > 0 {
				withAds++
			}
		}
		if row.Parsed > 0 {
			row.ShareWithLibraries = float64(withLibs) / float64(row.Parsed)
			row.ShareWithAds = float64(withAds) / float64(row.Parsed)
			row.AvgLibraries = float64(totalLibs) / float64(row.Parsed)
			row.AvgAdLibraries = float64(totalAds) / float64(row.Parsed)
		}
		out = append(out, row)
	}
	return out
}

// LibraryRank is one entry of Table 2: a library and the share of apps that
// embed it.
type LibraryRank struct {
	Name     string
	Prefix   string
	Category libdetect.Category
	Share    float64
	Apps     int
}

// TopLibraries computes Table 2: the most common third-party libraries among
// Google Play apps and among Chinese-market apps, ranked by the share of
// parsed apps embedding them.
func TopLibraries(d *Dataset, limit int) (googlePlay, chinese []LibraryRank) {
	d.mustEnrich()
	if limit <= 0 {
		limit = 10
	}
	gpNames, cnNames := GroupMarkets(d)
	googlePlay = rankLibraries(d, gpNames, limit)
	chinese = rankLibraries(d, cnNames, limit)
	return googlePlay, chinese
}

// TopLibrariesOracle is TopLibraries on the pre-aggregation ranking body.
func TopLibrariesOracle(d *Dataset, limit int) (googlePlay, chinese []LibraryRank) {
	d.mustEnrich()
	if limit <= 0 {
		limit = 10
	}
	gpNames, cnNames := GroupMarkets(d)
	return rankLibrariesOracle(d, gpNames, limit), rankLibrariesOracle(d, cnNames, limit)
}

// rankLibraries ranks the market group's libraries through the
// detection-row aggregation engine: group by library identity, count the
// embedding listings (the rows are already deduplicated per listing), rank
// by count with the library name as tiebreak, keep the top `limit`.
// rankLibrariesOracle keeps the map-based sweep.
func rankLibraries(d *Dataset, markets []string, limit int) []LibraryRank {
	if len(markets) == 0 {
		return nil
	}
	parsed, err := d.CountMatching(
		query.Filter{Field: "market", Op: query.OpIn, Value: markets},
		query.Filter{Field: "apk_parsed", Op: query.OpEq, Value: true})
	if err != nil {
		panic(err) // static request over registered fields
	}
	if parsed == 0 {
		return nil
	}
	res, err := d.libraryRowSource().Aggregate(query.Aggregate{
		GroupBy:    []string{"library", "prefix", "library_category"},
		Filters:    []query.Filter{{Field: "market", Op: query.OpIn, Value: markets}},
		Aggregates: []query.AggSpec{{Op: query.AggCount, As: "apps"}},
		Sort:       []query.SortKey{{Field: "apps", Desc: true}, {Field: "library"}},
		Limit:      limit,
	})
	if err != nil {
		panic(err)
	}
	var out []LibraryRank // nil when nothing was detected, like the oracle
	for _, r := range res.Rows {
		apps := int(r[3].(int64))
		out = append(out, LibraryRank{
			Name:     r[0].(string),
			Prefix:   r[1].(string),
			Category: libdetect.Category(r[2].(string)),
			Share:    float64(apps) / float64(parsed),
			Apps:     apps,
		})
	}
	return out
}

func rankLibrariesOracle(d *Dataset, markets []string, limit int) []LibraryRank {
	type agg struct {
		lib  libdetect.Library
		apps int
	}
	counts := map[string]*agg{}
	parsed := 0
	for _, name := range markets {
		for _, app := range d.AppsIn(name) {
			if !app.HasAPK() {
				continue
			}
			parsed++
			seen := map[string]bool{}
			for _, det := range app.Libraries {
				key := det.Library.Name
				if key == "" || key == "unknown" {
					key = det.Prefix
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				a, ok := counts[key]
				if !ok {
					a = &agg{lib: det.Library}
					counts[key] = a
				}
				a.apps++
			}
		}
	}
	if parsed == 0 {
		return nil
	}
	var out []LibraryRank
	for name, a := range counts {
		out = append(out, LibraryRank{
			Name:     name,
			Prefix:   a.lib.Prefix,
			Category: a.lib.Category,
			Share:    float64(a.apps) / float64(parsed),
			Apps:     a.apps,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Apps != out[j].Apps {
			return out[i].Apps > out[j].Apps
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// AdEcosystemStats summarizes the concentration of the mobile ad market
// (Section 4.4): Google AdMob dominates Google Play while the Chinese ad
// ecosystem is decentralized.
type AdEcosystemStats struct {
	Group string
	// TopAdShare is the share of ad-library embeddings held by the single
	// most common ad library.
	TopAdShare float64
	// TopAdLibrary is that library's name.
	TopAdLibrary string
	// DistinctAdLibraries is how many different ad libraries appear.
	DistinctAdLibraries int
}

// AdEcosystem computes the ad-market concentration for Google Play and the
// Chinese markets.
func AdEcosystem(d *Dataset) (googlePlay, chinese AdEcosystemStats) {
	d.mustEnrich()
	gpNames, cnNames := GroupMarkets(d)
	return adEcosystem(d, "Google Play", gpNames), adEcosystem(d, "Chinese markets", cnNames)
}

func adEcosystem(d *Dataset, group string, markets []string) AdEcosystemStats {
	counts := map[string]int{}
	total := 0
	for _, name := range markets {
		for _, app := range d.AppsIn(name) {
			if !app.HasAPK() {
				continue
			}
			for _, det := range app.Libraries {
				if det.IsAd() {
					counts[det.Library.Name]++
					total++
				}
			}
		}
	}
	out := AdEcosystemStats{Group: group, DistinctAdLibraries: len(counts)}
	if total == 0 {
		return out
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if share := float64(counts[n]) / float64(total); share > out.TopAdShare {
			out.TopAdShare = share
			out.TopAdLibrary = n
		}
	}
	return out
}

// ChineseSpecificLibraries returns the Chinese-market-specific libraries
// (WeChat, Alipay, Umeng, Baidu, ...) present in the corpus with their
// Chinese-market share, illustrating the paper's observation that Chinese
// developers replace Google services with local equivalents.
func ChineseSpecificLibraries(d *Dataset) []LibraryRank {
	d.mustEnrich()
	_, cnNames := GroupMarkets(d)
	all := rankLibraries(d, cnNames, 1<<30)
	var out []LibraryRank
	catalog := libdetect.DefaultCatalog()
	for _, r := range all {
		if lib, ok := catalog.Lookup(r.Prefix); ok && lib.ChineseMarket {
			out = append(out, r)
		}
	}
	return out
}

// marketIsChinese reports whether the named market is one of the Chinese
// stores in the dataset.
func marketIsChinese(d *Dataset, name string) bool {
	for _, m := range d.Markets {
		if m.Name == name {
			return m.IsChinese() && m.Name != market.GooglePlay
		}
	}
	return false
}
