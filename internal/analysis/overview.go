package analysis

import (
	"sort"

	"marketscope/internal/market"
	"marketscope/internal/stats"
)

// MarketOverviewRow is one row of Table 1: the dataset size and developer
// statistics of one market, combined with its declared features.
type MarketOverviewRow struct {
	Profile market.Profile
	// Apps is the number of listings harvested from the market.
	Apps int
	// APKs is the number of listings whose APK was harvested and parsed.
	APKs int
	// AggregatedDownloads is the sum of install counts, estimated from the
	// lower bound of each listing's install range as the paper does for
	// Google Play.
	AggregatedDownloads int64
	// Developers is the number of distinct developer identities observed.
	Developers int
	// UniqueDeveloperShare is the fraction of this market's developers that
	// publish in no other studied market.
	UniqueDeveloperShare float64
}

// MarketOverview computes Table 1 for the dataset.
func MarketOverview(d *Dataset) []MarketOverviewRow {
	devsByMarket := map[string]map[string]bool{}
	devMarketCount := map[string]map[string]bool{} // developer -> set of markets
	for _, m := range d.Markets {
		devsByMarket[m.Name] = map[string]bool{}
	}
	for _, m := range d.Markets {
		for _, app := range d.AppsIn(m.Name) {
			dev := app.DeveloperID()
			devsByMarket[m.Name][dev] = true
			if devMarketCount[dev] == nil {
				devMarketCount[dev] = map[string]bool{}
			}
			devMarketCount[dev][m.Name] = true
		}
	}

	var rows []MarketOverviewRow
	for _, m := range d.Markets {
		apps := d.AppsIn(m.Name)
		row := MarketOverviewRow{Profile: m, Apps: len(apps)}
		var installs []int64
		for _, app := range apps {
			if app.HasAPK() {
				row.APKs++
			}
			if app.Meta.ReportsDownloads() {
				installs = append(installs, app.Meta.Downloads)
			}
		}
		row.AggregatedDownloads = stats.AggregateDownloadsLowerBound(installs)
		devs := devsByMarket[m.Name]
		row.Developers = len(devs)
		unique := 0
		for dev := range devs {
			if len(devMarketCount[dev]) == 1 {
				unique++
			}
		}
		if row.Developers > 0 {
			row.UniqueDeveloperShare = float64(unique) / float64(row.Developers)
		}
		rows = append(rows, row)
	}
	return rows
}

// OverviewTotals aggregates Table 1's bottom line.
type OverviewTotals struct {
	Apps                int
	APKs                int
	AggregatedDownloads int64
	Developers          int
	// GooglePlayDownloads and ChineseDownloads split the aggregate between
	// Google Play and the 16 Chinese stores; the paper highlights that the
	// Chinese aggregate is roughly three times Google Play's.
	GooglePlayDownloads int64
	ChineseDownloads    int64
}

// Totals computes the dataset-wide aggregate line of Table 1.
func Totals(d *Dataset, rows []MarketOverviewRow) OverviewTotals {
	var t OverviewTotals
	devs := map[string]bool{}
	for _, app := range d.Apps {
		devs[app.DeveloperID()] = true
	}
	t.Developers = len(devs)
	for _, row := range rows {
		t.Apps += row.Apps
		t.APKs += row.APKs
		t.AggregatedDownloads += row.AggregatedDownloads
		if row.Profile.IsChinese() {
			t.ChineseDownloads += row.AggregatedDownloads
		} else {
			t.GooglePlayDownloads += row.AggregatedDownloads
		}
	}
	return t
}

// TopShareStats captures the download-concentration statistics of
// Section 4.2: the share of total downloads contributed by the top 0.1% and
// top 1% of apps in a market.
type TopShareStats struct {
	Market         string
	TopTenthPct    float64 // share held by the top 0.1% of apps
	TopOnePct      float64 // share held by the top 1% of apps
	Gini           float64
	MedianInstalls float64
}

// DownloadConcentration computes per-market download concentration.
func DownloadConcentration(d *Dataset) []TopShareStats {
	var out []TopShareStats
	for _, m := range d.Markets {
		var installs []float64
		for _, app := range d.AppsIn(m.Name) {
			if app.Meta.ReportsDownloads() {
				installs = append(installs, float64(app.Meta.Downloads))
			}
		}
		if len(installs) == 0 {
			out = append(out, TopShareStats{Market: m.Name})
			continue
		}
		sort.Float64s(installs)
		out = append(out, TopShareStats{
			Market:         m.Name,
			TopTenthPct:    stats.TopShare(installs, 0.001),
			TopOnePct:      stats.TopShare(installs, 0.01),
			Gini:           stats.Gini(installs),
			MedianInstalls: stats.NewCDF(installs).Quantile(0.5),
		})
	}
	return out
}
