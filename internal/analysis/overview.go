package analysis

import (
	"sort"

	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/stats"
)

// MarketOverviewRow is one row of Table 1: the dataset size and developer
// statistics of one market, combined with its declared features.
type MarketOverviewRow struct {
	Profile market.Profile
	// Apps is the number of listings harvested from the market.
	Apps int
	// APKs is the number of listings whose APK was harvested and parsed.
	APKs int
	// AggregatedDownloads is the sum of install counts, estimated from the
	// lower bound of each listing's install range as the paper does for
	// Google Play.
	AggregatedDownloads int64
	// Developers is the number of distinct developer identities observed.
	Developers int
	// UniqueDeveloperShare is the fraction of this market's developers that
	// publish in no other studied market.
	UniqueDeveloperShare float64
}

// MarketOverview computes Table 1 for the dataset through the aggregation
// engine: one market-grouped request for the listing/APK/download/developer
// counts (downloads as a sum of the download_floor column, the paper's
// lower-bound estimate), one developer-grouped request for each developer's
// market spread, and one (market, developer) request to find the developers
// unique to each market. MarketOverviewOracle keeps the map-of-sets sweep.
func MarketOverview(d *Dataset) []MarketOverviewRow {
	perMarket := d.mustAggregate(query.Aggregate{
		GroupBy: []string{"market"},
		Aggregates: []query.AggSpec{
			{Op: query.AggCount, As: "apps"},
			{Op: query.AggCount, As: "apks",
				Where: []query.Filter{{Field: "apk_parsed", Op: query.OpEq, Value: true}}},
			{Op: query.AggSum, Field: "download_floor", As: "downloads"},
			{Op: query.AggDistinct, Field: "developer_id", As: "developers"},
		},
	})
	devSpread := d.mustAggregate(query.Aggregate{
		GroupBy:    []string{"developer_id"},
		Aggregates: []query.AggSpec{{Op: query.AggDistinct, Field: "market", As: "markets"}},
	})
	marketDevs := d.mustAggregate(query.Aggregate{
		GroupBy:    []string{"market", "developer_id"},
		Aggregates: []query.AggSpec{{Op: query.AggCount}},
	})

	type marketAgg struct {
		apps, apks, developers int
		downloads              int64
	}
	byMarket := map[string]*marketAgg{}
	for _, r := range perMarket.Rows {
		byMarket[r[0].(string)] = &marketAgg{
			apps: int(r[1].(int64)), apks: int(r[2].(int64)),
			downloads: cellInt(r[3]), developers: int(r[4].(int64)),
		}
	}
	spread := make(map[string]int, len(devSpread.Rows))
	for _, r := range devSpread.Rows {
		spread[r[0].(string)] = int(r[1].(int64))
	}
	uniqueByMarket := map[string]int{}
	for _, r := range marketDevs.Rows {
		if spread[r[1].(string)] == 1 {
			uniqueByMarket[r[0].(string)]++
		}
	}

	var rows []MarketOverviewRow
	for _, m := range d.Markets {
		row := MarketOverviewRow{Profile: m}
		if a := byMarket[m.Name]; a != nil {
			row.Apps = a.apps
			row.APKs = a.apks
			row.AggregatedDownloads = a.downloads
			row.Developers = a.developers
			if row.Developers > 0 {
				row.UniqueDeveloperShare = float64(uniqueByMarket[m.Name]) / float64(row.Developers)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// MarketOverviewOracle is the pre-aggregation serial body of MarketOverview,
// kept verbatim as the oracle.
func MarketOverviewOracle(d *Dataset) []MarketOverviewRow {
	devsByMarket := map[string]map[string]bool{}
	devMarketCount := map[string]map[string]bool{} // developer -> set of markets
	for _, m := range d.Markets {
		devsByMarket[m.Name] = map[string]bool{}
	}
	for _, m := range d.Markets {
		for _, app := range d.AppsIn(m.Name) {
			dev := app.DeveloperID()
			devsByMarket[m.Name][dev] = true
			if devMarketCount[dev] == nil {
				devMarketCount[dev] = map[string]bool{}
			}
			devMarketCount[dev][m.Name] = true
		}
	}

	var rows []MarketOverviewRow
	for _, m := range d.Markets {
		apps := d.AppsIn(m.Name)
		row := MarketOverviewRow{Profile: m, Apps: len(apps)}
		var installs []int64
		for _, app := range apps {
			if app.HasAPK() {
				row.APKs++
			}
			if app.Meta.ReportsDownloads() {
				installs = append(installs, app.Meta.Downloads)
			}
		}
		row.AggregatedDownloads = stats.AggregateDownloadsLowerBound(installs)
		devs := devsByMarket[m.Name]
		row.Developers = len(devs)
		unique := 0
		for dev := range devs {
			if len(devMarketCount[dev]) == 1 {
				unique++
			}
		}
		if row.Developers > 0 {
			row.UniqueDeveloperShare = float64(unique) / float64(row.Developers)
		}
		rows = append(rows, row)
	}
	return rows
}

// OverviewTotals aggregates Table 1's bottom line.
type OverviewTotals struct {
	Apps                int
	APKs                int
	AggregatedDownloads int64
	Developers          int
	// GooglePlayDownloads and ChineseDownloads split the aggregate between
	// Google Play and the 16 Chinese stores; the paper highlights that the
	// Chinese aggregate is roughly three times Google Play's.
	GooglePlayDownloads int64
	ChineseDownloads    int64
}

// Totals computes the dataset-wide aggregate line of Table 1; the distinct
// developer count runs as a global (group-by-nothing) aggregation.
func Totals(d *Dataset, rows []MarketOverviewRow) OverviewTotals {
	var t OverviewTotals
	res := d.mustAggregate(query.Aggregate{
		Aggregates: []query.AggSpec{{Op: query.AggDistinct, Field: "developer_id", As: "developers"}},
	})
	t.Developers = int(res.Rows[0][0].(int64))
	for _, row := range rows {
		t.Apps += row.Apps
		t.APKs += row.APKs
		t.AggregatedDownloads += row.AggregatedDownloads
		if row.Profile.IsChinese() {
			t.ChineseDownloads += row.AggregatedDownloads
		} else {
			t.GooglePlayDownloads += row.AggregatedDownloads
		}
	}
	return t
}

// TotalsOracle is the pre-aggregation body of Totals, kept verbatim as the
// oracle.
func TotalsOracle(d *Dataset, rows []MarketOverviewRow) OverviewTotals {
	var t OverviewTotals
	devs := map[string]bool{}
	for _, app := range d.Apps {
		devs[app.DeveloperID()] = true
	}
	t.Developers = len(devs)
	for _, row := range rows {
		t.Apps += row.Apps
		t.APKs += row.APKs
		t.AggregatedDownloads += row.AggregatedDownloads
		if row.Profile.IsChinese() {
			t.ChineseDownloads += row.AggregatedDownloads
		} else {
			t.GooglePlayDownloads += row.AggregatedDownloads
		}
	}
	return t
}

// TopShareStats captures the download-concentration statistics of
// Section 4.2: the share of total downloads contributed by the top 0.1% and
// top 1% of apps in a market.
type TopShareStats struct {
	Market         string
	TopTenthPct    float64 // share held by the top 0.1% of apps
	TopOnePct      float64 // share held by the top 1% of apps
	Gini           float64
	MedianInstalls float64
}

// DownloadConcentration computes per-market download concentration.
func DownloadConcentration(d *Dataset) []TopShareStats {
	var out []TopShareStats
	for _, m := range d.Markets {
		var installs []float64
		for _, app := range d.AppsIn(m.Name) {
			if app.Meta.ReportsDownloads() {
				installs = append(installs, float64(app.Meta.Downloads))
			}
		}
		if len(installs) == 0 {
			out = append(out, TopShareStats{Market: m.Name})
			continue
		}
		sort.Float64s(installs)
		out = append(out, TopShareStats{
			Market:         m.Name,
			TopTenthPct:    stats.TopShare(installs, 0.001),
			TopOnePct:      stats.TopShare(installs, 0.01),
			Gini:           stats.Gini(installs),
			MedianInstalls: stats.NewCDF(installs).Quantile(0.5),
		})
	}
	return out
}
