// Package analysis implements every measurement of the study over a crawl
// snapshot: the market overview of Table 1, the catalog characterizations of
// Section 4 (categories, downloads, API levels, release dates, third-party
// libraries, ratings), the publishing dynamics of Section 5, the misbehaviour
// analyses of Section 6 (fake apps, clones, over-privilege, malware) and the
// post-analysis of Section 7 (malware removal between crawls).
//
// The entry point is BuildDataset, which parses every harvested APK, followed
// by Enrich, which runs the third-party library detector, the permission-gap
// analyzer and the simulated VirusTotal scan once per listing so individual
// analyses can share the results.
package analysis

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"marketscope/internal/apk"
	"marketscope/internal/appmeta"
	"marketscope/internal/avscan"
	"marketscope/internal/crawler"
	"marketscope/internal/libdetect"
	"marketscope/internal/market"
	"marketscope/internal/permissions"
	"marketscope/internal/query"
)

// App is one market listing with its parsed and enriched artifacts.
type App struct {
	Meta   appmeta.Record
	Parsed *apk.Parsed
	// ParseError records why the APK could not be parsed (corrupted or
	// missing download); such listings still contribute to metadata-only
	// analyses.
	ParseError error

	// Enrichment results (populated by Dataset.Enrich).
	Libraries []libdetect.Detection
	AVReport  *avscan.Report
	PermUsage *permissions.Usage
}

// HasAPK reports whether the listing's APK was parsed successfully.
func (a *App) HasAPK() bool { return a.Parsed != nil }

// Category returns the consolidated category of the listing.
func (a *App) Category() appmeta.Category {
	return appmeta.ConsolidateCategory(a.Meta.Category)
}

// DeveloperID returns the best available developer identity: the signing
// certificate fingerprint when the APK parsed, otherwise the market-reported
// developer name.
func (a *App) DeveloperID() string {
	if a.Parsed != nil {
		return a.Parsed.Developer().String()
	}
	return "name:" + a.Meta.DeveloperName
}

// Dataset is a parsed crawl snapshot ready for analysis.
type Dataset struct {
	CrawlTime time.Time
	Markets   []market.Profile
	Apps      []*App

	byMarket map[string][]*App
	enriched bool

	// Detector state shared across analyses (populated by Enrich).
	libDetector *libdetect.Detector
	scanner     *avscan.Scanner

	// Query engine over the listings (built lazily by QuerySource).
	queryOnce sync.Once
	querySrc  query.Source
}

// BuildDataset parses every APK in the snapshot and organizes the listings
// for analysis. Listings whose APK is missing or fails to parse are kept with
// ParseError set, mirroring how the paper's metadata catalog (6.2 M apps) is
// larger than its APK collection (4.5 M).
func BuildDataset(snap *crawler.Snapshot) (*Dataset, error) {
	if snap == nil {
		return nil, fmt.Errorf("analysis: nil snapshot")
	}
	d := &Dataset{
		CrawlTime: snap.CrawlTime,
		byMarket:  map[string][]*App{},
	}
	seenMarkets := map[string]bool{}
	for _, rec := range snap.Records() {
		app := &App{Meta: rec}
		if data, ok := snap.APK(rec.Key()); ok {
			parsed, err := apk.Parse(data)
			if err != nil {
				app.ParseError = err
			} else {
				app.Parsed = parsed
			}
		} else {
			app.ParseError = fmt.Errorf("analysis: no APK harvested for %s/%s", rec.Market, rec.Package)
		}
		d.Apps = append(d.Apps, app)
		d.byMarket[rec.Market] = append(d.byMarket[rec.Market], app)
		seenMarkets[rec.Market] = true
	}
	// Attach profiles for the markets present, in canonical study order.
	for _, p := range market.Profiles() {
		if seenMarkets[p.Name] {
			d.Markets = append(d.Markets, p)
			delete(seenMarkets, p.Name)
		}
	}
	// Unknown markets (not part of the 17-market study) are still analyzed,
	// with a zero-value profile.
	var extra []string
	for name := range seenMarkets {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		d.Markets = append(d.Markets, market.Profile{Name: name})
	}
	return d, nil
}

// EnrichOptions tunes the enrichment pass.
type EnrichOptions struct {
	// ScannerSeed seeds the simulated AV engine pool.
	ScannerSeed uint64
	// Engines is the AV engine count (0 = default 62).
	Engines int
	// LibraryMinApps / LibraryMinDevelopers are the clustering thresholds
	// for learning the library feature database.
	LibraryMinApps       int
	LibraryMinDevelopers int
}

// DefaultEnrichOptions returns the options used throughout the study.
func DefaultEnrichOptions() EnrichOptions {
	return EnrichOptions{ScannerSeed: 1, Engines: avscan.DefaultEngineCount, LibraryMinApps: 3, LibraryMinDevelopers: 2}
}

// Enrich runs the per-listing detectors: third-party library detection (with
// a feature database learned from this very corpus, as the paper rebuilt
// LibRadar's), the permission-gap analysis and the simulated VirusTotal scan.
// Calling Enrich more than once is a no-op. Enrich writes the per-listing
// detection fields without locking: it must complete before concurrent
// readers (analyses, QuerySource scans) start.
func (d *Dataset) Enrich(opts EnrichOptions) {
	if d.enriched {
		return
	}
	if opts.Engines == 0 {
		opts.Engines = avscan.DefaultEngineCount
	}
	// Pass 1: learn the library feature database from the whole corpus.
	db := libdetect.NewFeatureDB(opts.LibraryMinApps, opts.LibraryMinDevelopers)
	for _, app := range d.Apps {
		if !app.HasAPK() {
			continue
		}
		db.Observe(app.Parsed.Dex, app.Meta.Package, app.Parsed.Developer())
	}
	d.libDetector = libdetect.NewDetector(nil, db)
	d.scanner = avscan.NewScanner(opts.ScannerSeed, opts.Engines)
	permAnalyzer := permissions.NewAnalyzer(nil)

	// Pass 2: per-listing detections. Scan results are cached by APK hash
	// so identical archives listed in several markets are scanned once,
	// which is also how VirusTotal deduplicates submissions.
	scanCache := map[string]*avscan.Report{}
	for _, app := range d.Apps {
		if !app.HasAPK() {
			continue
		}
		app.Libraries = d.libDetector.Detect(app.Parsed.Dex, app.Meta.Package)
		if report, ok := scanCache[app.Parsed.SHA256]; ok {
			app.AVReport = report
		} else {
			report = d.scanner.Scan(app.Parsed.SHA256, app.Parsed.Dex)
			scanCache[app.Parsed.SHA256] = report
			app.AVReport = report
		}
		app.PermUsage = permAnalyzer.Analyze(app.Parsed.Manifest, app.Parsed.Dex)
	}
	d.enriched = true
}

// Enriched reports whether Enrich has run.
func (d *Dataset) Enriched() bool { return d.enriched }

// LibraryDetector returns the detector built during enrichment (nil before
// Enrich).
func (d *Dataset) LibraryDetector() *libdetect.Detector { return d.libDetector }

// MarketNames returns the market names present, Google Play first if present,
// then the canonical Table 1 order.
func (d *Dataset) MarketNames() []string {
	out := make([]string, 0, len(d.Markets))
	for _, m := range d.Markets {
		out = append(out, m.Name)
	}
	return out
}

// AppsIn returns the listings of one market.
func (d *Dataset) AppsIn(marketName string) []*App { return d.byMarket[marketName] }

// NumListings returns the total number of listings.
func (d *Dataset) NumListings() int { return len(d.Apps) }

// ChineseApps returns all listings hosted by Chinese markets.
func (d *Dataset) ChineseApps() []*App {
	var out []*App
	for _, m := range d.Markets {
		if m.IsChinese() {
			out = append(out, d.byMarket[m.Name]...)
		}
	}
	return out
}

// GooglePlayApps returns the Google Play listings.
func (d *Dataset) GooglePlayApps() []*App { return d.byMarket[market.GooglePlay] }

// PackagesByMarket returns market -> set of packages, used by several
// cross-market analyses.
func (d *Dataset) PackagesByMarket() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for name, apps := range d.byMarket {
		set := map[string]bool{}
		for _, a := range apps {
			set[a.Meta.Package] = true
		}
		out[name] = set
	}
	return out
}

// mustEnrich panics if Enrich has not been called; analyses that depend on
// detections call it so misuse fails loudly instead of silently returning
// zeros.
func (d *Dataset) mustEnrich() {
	if !d.enriched {
		panic("analysis: Enrich must be called before detector-backed analyses")
	}
}
