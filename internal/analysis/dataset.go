// Package analysis implements every measurement of the study over a crawl
// snapshot: the market overview of Table 1, the catalog characterizations of
// Section 4 (categories, downloads, API levels, release dates, third-party
// libraries, ratings), the publishing dynamics of Section 5, the misbehaviour
// analyses of Section 6 (fake apps, clones, over-privilege, malware) and the
// post-analysis of Section 7 (malware removal between crawls).
//
// The entry point is BuildDataset, which parses every harvested APK, followed
// by Enrich, which runs the third-party library detector, the permission-gap
// analyzer and the simulated VirusTotal scan once per listing so individual
// analyses can share the results. Both stages run on the internal/pipeline
// worker pool: parsing and per-listing detection fan out across workers, the
// feature-database learning pass is a sharded map/merge, and the AV scan is
// deduplicated through a sharded exactly-once cache keyed by archive SHA-256.
// The parallel output is identical to the serial one; Workers == 1 selects
// the serial reference implementation that the equivalence tests use as the
// oracle.
package analysis

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"marketscope/internal/apk"
	"marketscope/internal/appmeta"
	"marketscope/internal/avscan"
	"marketscope/internal/crawler"
	"marketscope/internal/libdetect"
	"marketscope/internal/market"
	"marketscope/internal/permissions"
	"marketscope/internal/pipeline"
	"marketscope/internal/query"
)

// App is one market listing with its parsed and enriched artifacts.
type App struct {
	Meta   appmeta.Record
	Parsed *apk.Parsed
	// ParseError records why the APK could not be parsed (corrupted or
	// missing download); such listings still contribute to metadata-only
	// analyses.
	ParseError error

	// Enrichment results (populated by Dataset.Enrich).
	Libraries []libdetect.Detection
	AVReport  *avscan.Report
	PermUsage *permissions.Usage
}

// HasAPK reports whether the listing's APK was parsed successfully.
func (a *App) HasAPK() bool { return a.Parsed != nil }

// Category returns the consolidated category of the listing.
func (a *App) Category() appmeta.Category {
	return appmeta.ConsolidateCategory(a.Meta.Category)
}

// DeveloperID returns the best available developer identity: the signing
// certificate fingerprint when the APK parsed, otherwise the market-reported
// developer name.
func (a *App) DeveloperID() string {
	if a.Parsed != nil {
		return a.Parsed.Developer().String()
	}
	return "name:" + a.Meta.DeveloperName
}

// Dataset is a parsed crawl snapshot ready for analysis.
type Dataset struct {
	CrawlTime time.Time
	Markets   []market.Profile
	Apps      []*App

	byMarket map[string][]*App

	enrichOnce sync.Once
	enriched   atomic.Bool

	// Detector state shared across analyses (populated by Enrich).
	libDetector *libdetect.Detector
	scanner     *avscan.Scanner

	// Query engine over the listings (built lazily by QuerySource and
	// rebuilt after Enrich, since the engine's column caches snapshot
	// extracted values; queryEnriched records which state querySrc saw).
	queryMu       sync.Mutex
	querySrc      query.Source
	queryEnriched bool
	// libSrc is the lazily built aggregation engine over the per-listing
	// library detections (one row per deduplicated (listing, library) pair);
	// detections exist only after Enrich, so no staleness flag is needed.
	libSrc query.AggregateSource

	// chineseApps memoizes ChineseApps: the slice is rebuilt from byMarket
	// on first use and hit by several per-group analyses afterwards.
	chineseOnce sync.Once
	chineseApps []*App
}

// BuildOptions tunes the dataset build pass.
type BuildOptions struct {
	// Workers sizes the APK-parsing worker pool: 0 (or negative) means one
	// worker per CPU, 1 runs the parse loop serially. The resulting dataset
	// is identical either way — every listing parses independently and lands
	// in its snapshot-order slot.
	Workers int
	// Progress, when non-nil, is called after each listing is parsed with
	// stage "parse" and monotonically increasing done counts. Calls are
	// serialized; the callback needs no locking of its own.
	Progress func(stage string, done, total int)
}

// BuildDataset parses every APK in the snapshot and organizes the listings
// for analysis, using one parse worker per CPU. Listings whose APK is missing
// or fails to parse are kept with ParseError set, mirroring how the paper's
// metadata catalog (6.2 M apps) is larger than its APK collection (4.5 M).
func BuildDataset(snap *crawler.Snapshot) (*Dataset, error) {
	return BuildDatasetWith(snap, BuildOptions{})
}

// BuildDatasetWith is BuildDataset with explicit worker and progress knobs.
func BuildDatasetWith(snap *crawler.Snapshot, opts BuildOptions) (*Dataset, error) {
	if snap == nil {
		return nil, fmt.Errorf("analysis: nil snapshot")
	}
	return BuildDatasetFromRecords(snap.CrawlTime, snap.Records(), snap.APK, opts)
}

// BuildDatasetFromRecords builds a dataset over an explicit record slice,
// preserving the given order as the dataset order (BuildDataset passes the
// snapshot's canonical (market, package) order; incremental ingest passes
// batches in arrival order so each batch extends the previous dataset as a
// pure suffix). apkOf resolves a listing's APK bytes and may be nil when no
// archives were harvested.
func BuildDatasetFromRecords(crawlTime time.Time, records []appmeta.Record, apkOf func(appmeta.Key) ([]byte, bool), opts BuildOptions) (*Dataset, error) {
	d := &Dataset{
		CrawlTime: crawlTime,
		byMarket:  map[string][]*App{},
	}
	tracker := progressTracker(len(records), "parse", opts.Progress)

	// Parse in parallel: every listing owns its slot, so workers never touch
	// shared state (apkOf must be concurrency-safe, as Snapshot reads are)
	// and the slice is in record order regardless of scheduling.
	apps := make([]*App, len(records))
	pipeline.ForEach(len(records), opts.Workers, func(i int) {
		apps[i] = parseListing(records[i], apkOf)
		tracker.Tick()
	})
	d.Apps = apps
	d.attachMarkets()
	return d, nil
}

// parseListing builds one App: metadata always, parsed APK when apkOf has
// the archive and it parses.
// noAPKError formats lazily: metadata-only corpora mint one per listing, and
// eager fmt.Errorf for a message almost never read is measurable at 100k rows
// on both cold build and snapshot recovery.
type noAPKError struct{ market, pkg string }

func (e *noAPKError) Error() string {
	return fmt.Sprintf("analysis: no APK harvested for %s/%s", e.market, e.pkg)
}

func parseListing(rec appmeta.Record, apkOf func(appmeta.Key) ([]byte, bool)) *App {
	return parseListingInto(new(App), rec, apkOf)
}

// parseListingInto parses into caller-provided storage, so a large batch can
// back all its Apps with one allocation instead of one per listing (the
// incremental path's restore cost is dominated by exactly that).
func parseListingInto(app *App, rec appmeta.Record, apkOf func(appmeta.Key) ([]byte, bool)) *App {
	app.Meta = rec
	var data []byte
	var ok bool
	if apkOf != nil {
		data, ok = apkOf(rec.Key())
	}
	if !ok {
		app.ParseError = &noAPKError{market: rec.Market, pkg: rec.Package}
		return app
	}
	parsed, err := apk.Parse(data)
	if err != nil {
		app.ParseError = err
	} else {
		app.Parsed = parsed
	}
	return app
}

// attachMarkets derives byMarket and the Markets profile list from d.Apps:
// profiles for the markets present in canonical study order first, then
// unknown markets (not part of the 17-market study, still analyzed) sorted,
// with zero-value profiles.
func (d *Dataset) attachMarkets() {
	// Group through bucket pointers with a one-entry cache for runs of the
	// same market: large corpora hit the map roughly once per run instead of
	// twice per app, which is a measurable slice of snapshot-restore time.
	buckets := map[string]*[]*App{}
	var lastName string
	var lastB *[]*App
	for _, app := range d.Apps {
		name := app.Meta.Market
		if lastB == nil || name != lastName {
			b := buckets[name]
			if b == nil {
				b = new([]*App)
				buckets[name] = b
			}
			lastName, lastB = name, b
		}
		*lastB = append(*lastB, app)
	}
	seenMarkets := make(map[string]bool, len(buckets))
	for name, b := range buckets {
		d.byMarket[name] = *b
		seenMarkets[name] = true
	}
	for _, p := range market.Profiles() {
		if seenMarkets[p.Name] {
			d.Markets = append(d.Markets, p)
			delete(seenMarkets, p.Name)
		}
	}
	var extra []string
	for name := range seenMarkets {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		d.Markets = append(d.Markets, market.Profile{Name: name})
	}
}

// EnrichOptions tunes the enrichment pass.
type EnrichOptions struct {
	// ScannerSeed seeds the simulated AV engine pool.
	ScannerSeed uint64
	// Engines is the AV engine count (0 = default 62).
	Engines int
	// LibraryMinApps / LibraryMinDevelopers are the clustering thresholds
	// for learning the library feature database.
	LibraryMinApps       int
	LibraryMinDevelopers int
	// Workers sizes the enrichment worker pool: 0 (or negative) means one
	// worker per CPU; 1 selects the serial reference implementation, which
	// the equivalence tests keep as the oracle for the parallel path. Both
	// paths produce identical datasets.
	Workers int
	// Progress, when non-nil, receives serialized per-listing progress for
	// the enrichment stages ("learn": feature-database observation, "detect":
	// per-listing detections). The callback needs no locking of its own.
	Progress func(stage string, done, total int)
}

// DefaultEnrichOptions returns the options used throughout the study: one
// enrichment worker per CPU.
func DefaultEnrichOptions() EnrichOptions {
	return EnrichOptions{ScannerSeed: 1, Engines: avscan.DefaultEngineCount, LibraryMinApps: 3, LibraryMinDevelopers: 2}
}

// Enrich runs the per-listing detectors: third-party library detection (with
// a feature database learned from this very corpus, as the paper rebuilt
// LibRadar's), the permission-gap analysis and the simulated VirusTotal scan.
//
// Concurrency contract: Enrich is safe to call from multiple goroutines; the
// first caller runs the pipeline and every other caller blocks until it
// completes, so all callers return with the dataset fully enriched. Inside
// the pipeline each listing's detection fields are written by exactly one
// worker (the serialization point is the pipeline's own completion barrier),
// AV scans are deduplicated through a sharded exactly-once cache keyed by
// archive SHA-256, and the feature database is learned as a sharded
// map/merge — so the result is identical for every Workers setting. Later
// calls with different options are no-ops: the first options win.
func (d *Dataset) Enrich(opts EnrichOptions) {
	d.enrichOnce.Do(func() {
		d.enrich(opts)
		d.enriched.Store(true)
	})
}

// enrich dispatches to the serial oracle or the worker-pool implementation.
func (d *Dataset) enrich(opts EnrichOptions) {
	if opts.Engines == 0 {
		opts.Engines = avscan.DefaultEngineCount
	}
	if pipeline.Workers(opts.Workers, len(d.Apps)) == 1 {
		d.enrichSerial(opts)
		return
	}
	d.enrichParallel(opts)
}

// enrichSerial is the reference implementation: two plain O(N) passes, kept
// verbatim as the oracle the equivalence tests compare the worker pool
// against.
func (d *Dataset) enrichSerial(opts EnrichOptions) {
	learnTracker := progressTracker(len(d.Apps), "learn", opts.Progress)
	detectTracker := progressTracker(len(d.Apps), "detect", opts.Progress)

	// Pass 1: learn the library feature database from the whole corpus.
	db := libdetect.NewFeatureDB(opts.LibraryMinApps, opts.LibraryMinDevelopers)
	for _, app := range d.Apps {
		if app.HasAPK() {
			db.Observe(app.Parsed.Dex, app.Meta.Package, app.Parsed.Developer())
		}
		learnTracker.Tick()
	}
	d.libDetector = libdetect.NewDetector(nil, db)
	d.scanner = avscan.NewScanner(opts.ScannerSeed, opts.Engines)
	permAnalyzer := permissions.NewAnalyzer(nil)

	// Pass 2: per-listing detections. Scan results are cached by APK hash
	// so identical archives listed in several markets are scanned once,
	// which is also how VirusTotal deduplicates submissions.
	scanCache := map[string]*avscan.Report{}
	for _, app := range d.Apps {
		if !app.HasAPK() {
			detectTracker.Tick()
			continue
		}
		app.Libraries = d.libDetector.Detect(app.Parsed.Dex, app.Meta.Package)
		if report, ok := scanCache[app.Parsed.SHA256]; ok {
			app.AVReport = report
		} else {
			report = d.scanner.Scan(app.Parsed.SHA256, app.Parsed.Dex)
			scanCache[app.Parsed.SHA256] = report
			app.AVReport = report
		}
		app.PermUsage = permAnalyzer.Analyze(app.Parsed.Manifest, app.Parsed.Dex)
		detectTracker.Tick()
	}
}

// enrichParallel is the worker-pool implementation. Pass 1 shards the corpus
// across per-worker feature databases and merges them (FeatureDB.Merge is
// commutative, so the merged database is independent of scheduling); pass 2
// fans the per-listing detections out over the pool, with each worker writing
// only its own listing's fields and AV scans deduplicated through the shared
// exactly-once cache.
func (d *Dataset) enrichParallel(opts EnrichOptions) {
	learnTracker := progressTracker(len(d.Apps), "learn", opts.Progress)
	detectTracker := progressTracker(len(d.Apps), "detect", opts.Progress)

	// Pass 1: sharded map/merge over per-worker feature databases.
	db := pipeline.MapMerge(len(d.Apps), opts.Workers,
		func() *libdetect.FeatureDB {
			return libdetect.NewFeatureDB(opts.LibraryMinApps, opts.LibraryMinDevelopers)
		},
		func(acc *libdetect.FeatureDB, i int) {
			if app := d.Apps[i]; app.HasAPK() {
				acc.Observe(app.Parsed.Dex, app.Meta.Package, app.Parsed.Developer())
			}
			learnTracker.Tick()
		},
		func(dst, src *libdetect.FeatureDB) { dst.Merge(src) },
	)
	d.libDetector = libdetect.NewDetector(nil, db)
	d.scanner = avscan.NewScanner(opts.ScannerSeed, opts.Engines)
	permAnalyzer := permissions.NewAnalyzer(nil)

	// Pass 2: bounded worker pool over the listings. Detector, scanner and
	// analyzer are read-only after construction, so workers share them
	// without locks; the scan cache guarantees one Scan per distinct archive
	// no matter how many goroutines race on the same SHA-256.
	scanCache := pipeline.NewCache[*avscan.Report]()
	pipeline.ForEach(len(d.Apps), opts.Workers, func(i int) {
		app := d.Apps[i]
		if !app.HasAPK() {
			detectTracker.Tick()
			return
		}
		app.Libraries = d.libDetector.Detect(app.Parsed.Dex, app.Meta.Package)
		app.AVReport = scanCache.Do(app.Parsed.SHA256, func() *avscan.Report {
			return d.scanner.Scan(app.Parsed.SHA256, app.Parsed.Dex)
		})
		app.PermUsage = permAnalyzer.Analyze(app.Parsed.Manifest, app.Parsed.Dex)
		detectTracker.Tick()
	})
}

// progressTracker adapts a stage-labeled progress callback to a pipeline
// tracker; a nil callback yields a nil (no-op) tracker.
func progressTracker(total int, stage string, progress func(stage string, done, total int)) *pipeline.Tracker {
	if progress == nil {
		return nil
	}
	return pipeline.NewTracker(total, func(done, total int) { progress(stage, done, total) })
}

// Enriched reports whether Enrich has completed. It is safe to call
// concurrently with Enrich.
func (d *Dataset) Enriched() bool { return d.enriched.Load() }

// LibraryDetector returns the detector built during enrichment (nil before
// Enrich).
func (d *Dataset) LibraryDetector() *libdetect.Detector { return d.libDetector }

// MarketNames returns the market names present, Google Play first if present,
// then the canonical Table 1 order.
func (d *Dataset) MarketNames() []string {
	out := make([]string, 0, len(d.Markets))
	for _, m := range d.Markets {
		out = append(out, m.Name)
	}
	return out
}

// AppsIn returns the listings of one market.
func (d *Dataset) AppsIn(marketName string) []*App { return d.byMarket[marketName] }

// NumListings returns the total number of listings.
func (d *Dataset) NumListings() int { return len(d.Apps) }

// ChineseApps returns all listings hosted by Chinese markets. The slice is
// built once (the dataset's market partition is immutable after
// BuildDataset) and shared by every caller; callers must not mutate it.
func (d *Dataset) ChineseApps() []*App {
	d.chineseOnce.Do(func() {
		for _, m := range d.Markets {
			if m.IsChinese() {
				d.chineseApps = append(d.chineseApps, d.byMarket[m.Name]...)
			}
		}
	})
	return d.chineseApps
}

// GooglePlayApps returns the Google Play listings.
func (d *Dataset) GooglePlayApps() []*App { return d.byMarket[market.GooglePlay] }

// PackagesByMarket returns market -> set of packages, used by several
// cross-market analyses.
func (d *Dataset) PackagesByMarket() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for name, apps := range d.byMarket {
		set := map[string]bool{}
		for _, a := range apps {
			set[a.Meta.Package] = true
		}
		out[name] = set
	}
	return out
}

// mustEnrich panics if Enrich has not completed; analyses that depend on
// detections call it so misuse fails loudly instead of silently returning
// zeros.
func (d *Dataset) mustEnrich() {
	if !d.enriched.Load() {
		panic("analysis: Enrich must be called before detector-backed analyses")
	}
}
