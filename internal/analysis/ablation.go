package analysis

import "marketscope/internal/market"

// This file implements the ablation studies called out in DESIGN.md §5: the
// sensitivity of the clone detector to its distance threshold and to
// third-party library filtering, and the sensitivity of the malware
// prevalence numbers to the AV-rank threshold. The paper fixes these knobs
// (0.05, filtering enabled, AV-rank >= 10); the sweeps below quantify how
// much the headline results depend on those choices.

// CloneThresholdPoint is one point of the distance-threshold sweep.
type CloneThresholdPoint struct {
	Threshold float64
	// AvgCodeCloneShare is Table 3's "CB clones" average across markets at
	// this threshold.
	AvgCodeCloneShare float64
	// Pairs is the number of confirmed clone pairs; CandidatePairs the
	// number that passed the vector phase before segment confirmation.
	Pairs          int
	CandidatePairs int
}

// CloneThresholdSweep re-runs code-clone detection at each distance threshold.
func CloneThresholdSweep(d *Dataset, thresholds []float64) []CloneThresholdPoint {
	d.mustEnrich()
	if len(thresholds) == 0 {
		thresholds = []float64{0.01, 0.05, 0.10, 0.20}
	}
	out := make([]CloneThresholdPoint, 0, len(thresholds))
	for _, th := range thresholds {
		opts := DefaultMisbehaviorOptions()
		opts.Code.DistanceThreshold = th
		res := Misbehavior(d, opts)
		out = append(out, CloneThresholdPoint{
			Threshold:         th,
			AvgCodeCloneShare: res.AvgCodeShare,
			Pairs:             len(res.CodeRes.Pairs),
			CandidatePairs:    res.CodeRes.CandidatePairs,
		})
	}
	return out
}

// LibraryFilteringComparison contrasts clone detection with and without
// stripping detected third-party libraries from the feature vectors.
type LibraryFilteringComparison struct {
	WithFiltering    CloneThresholdPoint
	WithoutFiltering CloneThresholdPoint
}

// CompareLibraryFiltering runs the code-clone detector in both modes at the
// paper's threshold.
func CompareLibraryFiltering(d *Dataset) LibraryFilteringComparison {
	d.mustEnrich()
	run := func(filter bool) CloneThresholdPoint {
		opts := DefaultMisbehaviorOptions()
		opts.FilterLibraries = filter
		res := Misbehavior(d, opts)
		return CloneThresholdPoint{
			Threshold:         opts.Code.DistanceThreshold,
			AvgCodeCloneShare: res.AvgCodeShare,
			Pairs:             len(res.CodeRes.Pairs),
			CandidatePairs:    res.CodeRes.CandidatePairs,
		}
	}
	return LibraryFilteringComparison{
		WithFiltering:    run(true),
		WithoutFiltering: run(false),
	}
}

// AVRankPoint is one point of the AV-rank threshold sweep.
type AVRankPoint struct {
	Threshold int
	// GooglePlayShare is the share of Google Play's scanned apps flagged at
	// this threshold; ChineseAvgShare the unweighted average across the
	// Chinese markets.
	GooglePlayShare float64
	ChineseAvgShare float64
	// Gap is the ratio ChineseAvgShare / GooglePlayShare (0 when Google
	// Play has no flagged apps), the quantity the paper's conclusion rests
	// on.
	Gap float64
}

// AVRankSweep recomputes Table 4's headline comparison at each AV-rank
// threshold.
func AVRankSweep(d *Dataset, thresholds []int) []AVRankPoint {
	d.mustEnrich()
	if len(thresholds) == 0 {
		thresholds = []int{1, 5, 10, 20, 30}
	}
	out := make([]AVRankPoint, 0, len(thresholds))
	for _, th := range thresholds {
		p := AVRankPoint{Threshold: th}
		cnSum, cnMarkets := 0.0, 0
		for _, m := range d.Markets {
			flagged, parsed := 0, 0
			for _, app := range d.AppsIn(m.Name) {
				if app.AVReport == nil {
					continue
				}
				parsed++
				if app.AVReport.Flagged(th) {
					flagged++
				}
			}
			if parsed == 0 {
				continue
			}
			share := float64(flagged) / float64(parsed)
			if m.Name == market.GooglePlay {
				p.GooglePlayShare = share
			} else if m.IsChinese() {
				cnSum += share
				cnMarkets++
			}
		}
		if cnMarkets > 0 {
			p.ChineseAvgShare = cnSum / float64(cnMarkets)
		}
		if p.GooglePlayShare > 0 {
			p.Gap = p.ChineseAvgShare / p.GooglePlayShare
		}
		out = append(out, p)
	}
	return out
}
