package apk

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"marketscope/internal/dex"
	"marketscope/internal/manifest"
	"marketscope/internal/signing"
)

func sampleAPK() *APK {
	return &APK{
		Manifest: &manifest.Manifest{
			Package:     "com.example.player",
			VersionCode: 870,
			VersionName: "8.7.0",
			MinSDK:      14,
			TargetSDK:   23,
			AppLabel:    "Example Player",
			Permissions: []string{"android.permission.INTERNET", "android.permission.READ_PHONE_STATE"},
		},
		Dex: &dex.File{Classes: []dex.Class{
			{Name: "com.example.player.MainActivity", Methods: []dex.Method{
				{Name: "onCreate", APICalls: []string{"android.app.Activity.onCreate"}},
			}},
			{Name: "com.umeng.analytics.MobclickAgent", Methods: []dex.Method{
				{Name: "onEvent", APICalls: []string{"android.telephony.TelephonyManager.getDeviceId"}},
			}},
		}},
		Channel:   map[string]string{"kgchannel": "wandoujia"},
		Resources: []byte("resources-blob"),
		Assets:    map[string][]byte{"config.json": []byte(`{"region":"cn"}`)},
	}
}

func TestBuildAndParseRoundTrip(t *testing.T) {
	dev := signing.NewDeveloper("Example Inc", 101)
	data, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Manifest.Package != "com.example.player" {
		t.Errorf("package = %q", parsed.Manifest.Package)
	}
	if parsed.Manifest.VersionCode != 870 {
		t.Errorf("version code = %d", parsed.Manifest.VersionCode)
	}
	if parsed.Dex.NumClasses() != 2 {
		t.Errorf("dex classes = %d", parsed.Dex.NumClasses())
	}
	if parsed.Developer() != dev.Fingerprint() {
		t.Error("developer fingerprint mismatch")
	}
	if parsed.Channel["kgchannel"] != "wandoujia" {
		t.Errorf("channel = %v", parsed.Channel)
	}
	if parsed.Size != len(data) {
		t.Errorf("size = %d, want %d", parsed.Size, len(data))
	}
	if len(parsed.MD5) != 32 || len(parsed.SHA256) != 64 {
		t.Errorf("hash lengths: md5=%d sha=%d", len(parsed.MD5), len(parsed.SHA256))
	}
}

func TestBuildValidation(t *testing.T) {
	dev := signing.NewDeveloper("d", 1)
	a := sampleAPK()
	if _, err := Build(nil, dev); !errors.Is(err, ErrNilManifest) {
		t.Errorf("nil apk: %v", err)
	}
	if _, err := Build(&APK{Dex: a.Dex}, dev); !errors.Is(err, ErrNilManifest) {
		t.Errorf("nil manifest: %v", err)
	}
	if _, err := Build(&APK{Manifest: a.Manifest}, dev); !errors.Is(err, ErrNilDex) {
		t.Errorf("nil dex: %v", err)
	}
	if _, err := Build(a, nil); !errors.Is(err, ErrNilDeveloper) {
		t.Errorf("nil developer: %v", err)
	}
}

func TestBuildRejectsBadChannelNames(t *testing.T) {
	dev := signing.NewDeveloper("d", 2)
	for _, name := range []string{"", "a/b", `a\b`, "..", "CERT.SIG", "MANIFEST.MF"} {
		a := sampleAPK()
		a.Channel = map[string]string{name: "x"}
		if _, err := Build(a, dev); err == nil {
			t.Errorf("channel name %q accepted", name)
		}
	}
}

func TestBuildRejectsBadAssetNames(t *testing.T) {
	dev := signing.NewDeveloper("d", 3)
	a := sampleAPK()
	a.Assets = map[string][]byte{"../escape": []byte("x")}
	if _, err := Build(a, dev); err == nil {
		t.Error("asset path traversal accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	dev := signing.NewDeveloper("Example Inc", 101)
	a, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Build is not deterministic for identical input")
	}
}

func TestChannelFileChangesHashButNotIdentity(t *testing.T) {
	// Section 5.3: apps identical except for META-INF channel files have
	// different MD5 hashes but the same package/version/developer identity.
	dev := signing.NewDeveloper("Example Inc", 101)
	a := sampleAPK()
	b := sampleAPK()
	b.Channel["kgchannel"] = "huawei"
	dataA, err := Build(a, dev)
	if err != nil {
		t.Fatal(err)
	}
	dataB, err := Build(b, dev)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Parse(dataA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Parse(dataB)
	if err != nil {
		t.Fatal(err)
	}
	if pa.MD5 == pb.MD5 {
		t.Error("different channel files should change the archive hash")
	}
	if pa.Identity() != pb.Identity() {
		t.Error("identity triple should be unaffected by channel files")
	}
}

func TestParseRejectsTamperedDex(t *testing.T) {
	dev := signing.NewDeveloper("d", 5)
	data, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte("com.example.player.MainActivity"),
		[]byte("com.evil.injected.MainActivitx"), 1)
	if bytes.Equal(tampered, data) {
		t.Skip("could not locate payload to tamper")
	}
	if _, err := Parse(tampered); err == nil {
		t.Error("Parse accepted a tampered archive")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, {}, []byte("PK garbage"), bytes.Repeat([]byte{0x33}, 200)} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse accepted %d bytes of garbage", len(in))
		}
	}
}

func TestParseRejectsMissingEntries(t *testing.T) {
	dev := signing.NewDeveloper("d", 6)
	data, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the zip without the signature entry by parsing and
	// re-serializing through the zip package.
	stripped, err := stripEntry(data, EntrySignature)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(stripped); !errors.Is(err, ErrMissingEntry) {
		t.Errorf("want ErrMissingEntry, got %v", err)
	}
}

func TestDifferentDevelopersProduceDifferentSignatures(t *testing.T) {
	devA := signing.NewDeveloper("Original", 7)
	devB := signing.NewDeveloper("Cloner", 8)
	dataA, err := Build(sampleAPK(), devA)
	if err != nil {
		t.Fatal(err)
	}
	dataB, err := Build(sampleAPK(), devB)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := Parse(dataA)
	pb, _ := Parse(dataB)
	if pa.Developer() == pb.Developer() {
		t.Error("different developers produced the same fingerprint")
	}
	if pa.Identity() == pb.Identity() {
		t.Error("identity should include the signer")
	}
	if pa.Manifest.Package != pb.Manifest.Package {
		t.Error("package should match for a signature-based clone")
	}
}

func TestIdentityZeroValueForMissingSignature(t *testing.T) {
	p := &Parsed{Manifest: &manifest.Manifest{Package: "com.a.b", VersionCode: 1, MinSDK: 9}}
	if p.Developer() != (signing.Fingerprint{}) {
		t.Error("missing signature should yield zero fingerprint")
	}
}

// stripEntry re-writes the archive without the named entry.
func stripEntry(data []byte, drop string) ([]byte, error) {
	parsedEntries, err := readAll(data)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	zw := newDeterministicWriter(&buf)
	for _, e := range parsedEntries {
		if e.name == drop {
			continue
		}
		if err := zw.add(e.name, e.content); err != nil {
			return nil, err
		}
	}
	if err := zw.close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func TestParseRejectsUnlistedEntry(t *testing.T) {
	dev := signing.NewDeveloper("d", 9)
	data, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := readAll(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := newDeterministicWriter(&buf)
	for _, e := range entries {
		if err := zw.add(e.name, e.content); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.add("assets/injected.bin", []byte("smuggled")); err != nil {
		t.Fatal(err)
	}
	if err := zw.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(buf.Bytes()); !errors.Is(err, ErrUnlistedEntry) {
		t.Errorf("want ErrUnlistedEntry, got %v", err)
	}
}

func TestParsedIdentityString(t *testing.T) {
	dev := signing.NewDeveloper("d", 10)
	data, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	id := p.Identity()
	if id.Package != "com.example.player" || id.VersionCode != 870 {
		t.Errorf("identity = %+v", id)
	}
	if !strings.Contains(id.Developer.String(), dev.Fingerprint().Short()) {
		t.Error("identity developer should match the signing key")
	}
}

func BenchmarkBuild(b *testing.B) {
	dev := signing.NewDeveloper("bench", 1)
	a := sampleAPK()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(a, dev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	dev := signing.NewDeveloper("bench", 1)
	data, err := Build(sampleAPK(), dev)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConcurrentParse exercises Parse from many goroutines over the same
// archive bytes — the dataset build pool's access pattern — under the race
// detector.
func TestConcurrentParse(t *testing.T) {
	dev := signing.NewDeveloper("Example Inc", 101)
	data, err := Build(sampleAPK(), dev)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Parse(data)
			if err != nil {
				t.Errorf("Parse: %v", err)
				return
			}
			if got.SHA256 != want.SHA256 || got.Manifest.Package != want.Manifest.Package {
				t.Error("concurrent parse diverged from serial parse")
			}
		}()
	}
	wg.Wait()
}
