// Package apk builds and parses the APK containers used throughout the
// study.
//
// A real APK is a ZIP archive holding a binary AndroidManifest.xml, one or
// more classes.dex files, resources, assets and a META-INF directory with the
// signing metadata. This package reproduces that structure with the
// simplified binary formats from the manifest and dex packages, signed with
// Ed25519 developer keys from the signing package.
//
// The crawl pipeline downloads raw APK bytes from the simulated markets and
// parses them back with Parse, exactly as the paper's pipeline ran apktool /
// Androguard / ApkSigner over its 4.5 M downloaded APKs. Parse verifies entry
// digests and the developer signature, extracts the manifest, code and
// channel files, and computes the MD5/SHA-256 hashes used for identity
// comparisons in Section 5.3.
package apk

import (
	"archive/zip"
	"bytes"
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"marketscope/internal/dex"
	"marketscope/internal/manifest"
	"marketscope/internal/signing"
)

// Well-known entry names inside the archive.
const (
	EntryManifest     = "AndroidManifest.xml"
	EntryDex          = "classes.dex"
	EntryResources    = "resources.arsc"
	EntrySignature    = "META-INF/CERT.SIG"
	EntryFileManifest = "META-INF/MANIFEST.MF"
	channelPrefix     = "META-INF/"
	assetPrefix       = "assets/"
)

// APK is the logical content of an app package prior to signing.
type APK struct {
	Manifest *manifest.Manifest
	Dex      *dex.File
	// Channel holds META-INF channel marker files (e.g. "kgchannel" ->
	// "huawei"). The paper found 546,703 apps identical except for such
	// channel files; keeping them in the model lets us reproduce that
	// store-introduced difference.
	Channel map[string]string
	// Resources is an opaque resources.arsc payload.
	Resources []byte
	// Assets are additional opaque files under assets/.
	Assets map[string][]byte
}

// Parsed is the result of parsing a signed APK.
type Parsed struct {
	Manifest  *manifest.Manifest
	Dex       *dex.File
	Signature *signing.Block
	Channel   map[string]string
	// MD5 and SHA256 are hex digests of the raw archive bytes.
	MD5    string
	SHA256 string
	Size   int
}

// Errors returned by Build and Parse.
var (
	ErrNilManifest        = errors.New("apk: nil manifest")
	ErrNilDex             = errors.New("apk: nil dex")
	ErrNilDeveloper       = errors.New("apk: nil developer key")
	ErrMissingEntry       = errors.New("apk: missing required entry")
	ErrEntryDigest        = errors.New("apk: entry digest mismatch")
	ErrSignatureInvalid   = errors.New("apk: signature verification failed")
	ErrNotAnArchive       = errors.New("apk: not a zip archive")
	ErrBadFileManifest    = errors.New("apk: malformed META-INF/MANIFEST.MF")
	ErrUnlistedEntry      = errors.New("apk: entry not listed in MANIFEST.MF")
	ErrChannelNameInvalid = errors.New("apk: invalid channel file name")
)

// Build signs the APK with the developer's key and returns the archive bytes.
// The output is deterministic for identical inputs, which is what makes
// hash-based identity checks across markets meaningful.
func Build(a *APK, dev *signing.Developer) ([]byte, error) {
	if a == nil || a.Manifest == nil {
		return nil, ErrNilManifest
	}
	if a.Dex == nil {
		return nil, ErrNilDex
	}
	if dev == nil {
		return nil, ErrNilDeveloper
	}
	manifestBytes, err := manifest.Encode(a.Manifest)
	if err != nil {
		return nil, fmt.Errorf("apk: encode manifest: %w", err)
	}
	dexBytes, err := dex.Encode(a.Dex)
	if err != nil {
		return nil, fmt.Errorf("apk: encode dex: %w", err)
	}

	entries := map[string][]byte{
		EntryManifest: manifestBytes,
		EntryDex:      dexBytes,
	}
	if len(a.Resources) > 0 {
		entries[EntryResources] = a.Resources
	}
	for name, content := range a.Channel {
		if err := validateChannelName(name); err != nil {
			return nil, err
		}
		entries[channelPrefix+name] = []byte(content)
	}
	for name, content := range a.Assets {
		if name == "" || strings.Contains(name, "..") {
			return nil, fmt.Errorf("apk: invalid asset name %q", name)
		}
		entries[assetPrefix+name] = content
	}

	fileManifest := buildFileManifest(entries)
	contentDigest := sha256.Sum256(fileManifest)
	sigBlock := dev.Sign(contentDigest)

	entries[EntryFileManifest] = fileManifest
	entries[EntrySignature] = sigBlock.Encode()

	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, name := range names {
		// Store entries uncompressed with zeroed timestamps so the
		// archive bytes are a pure function of the content.
		hdr := &zip.FileHeader{Name: name, Method: zip.Store}
		w, err := zw.CreateHeader(hdr)
		if err != nil {
			return nil, fmt.Errorf("apk: create entry %q: %w", name, err)
		}
		if _, err := w.Write(entries[name]); err != nil {
			return nil, fmt.Errorf("apk: write entry %q: %w", name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: close archive: %w", err)
	}
	return buf.Bytes(), nil
}

func validateChannelName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("%w: %q", ErrChannelNameInvalid, name)
	}
	if name == "CERT.SIG" || name == "MANIFEST.MF" {
		return fmt.Errorf("%w: %q collides with signing metadata", ErrChannelNameInvalid, name)
	}
	return nil
}

// buildFileManifest renders a MANIFEST.MF-style digest listing:
//
//	Name: <entry>\nSHA-256: <hex>\n\n
//
// for every content entry in sorted order.
func buildFileManifest(entries map[string][]byte) []byte {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("Manifest-Version: 1.0\n\n")
	for _, name := range names {
		digest := sha256.Sum256(entries[name])
		fmt.Fprintf(&buf, "Name: %s\nSHA-256: %s\n\n", name, hex.EncodeToString(digest[:]))
	}
	return buf.Bytes()
}

// parseFileManifest parses the digest listing back into a map.
func parseFileManifest(data []byte) (map[string]string, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "Manifest-Version:") {
		return nil, fmt.Errorf("%w: missing version header", ErrBadFileManifest)
	}
	digests := make(map[string]string)
	var current string
	for _, line := range lines[1:] {
		line = strings.TrimRight(line, "\r")
		switch {
		case line == "":
			current = ""
		case strings.HasPrefix(line, "Name: "):
			current = strings.TrimPrefix(line, "Name: ")
		case strings.HasPrefix(line, "SHA-256: "):
			if current == "" {
				return nil, fmt.Errorf("%w: digest without a name", ErrBadFileManifest)
			}
			digests[current] = strings.TrimPrefix(line, "SHA-256: ")
		default:
			return nil, fmt.Errorf("%w: unexpected line %q", ErrBadFileManifest, line)
		}
	}
	return digests, nil
}

// Parse reads a signed APK produced by Build, verifies the per-entry digests
// and the developer signature, and extracts the artifacts the analyses need.
// Parse is a pure function of its input and safe to call from concurrent
// parse workers (the dataset build pass fans archives out over a pool).
func Parse(data []byte) (*Parsed, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotAnArchive, err)
	}
	contents := make(map[string][]byte, len(zr.File))
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("apk: open entry %q: %w", f.Name, err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("apk: read entry %q: %w", f.Name, err)
		}
		contents[f.Name] = b
	}

	for _, required := range []string{EntryManifest, EntryDex, EntryFileManifest, EntrySignature} {
		if _, ok := contents[required]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrMissingEntry, required)
		}
	}

	fileManifestBytes := contents[EntryFileManifest]
	digests, err := parseFileManifest(fileManifestBytes)
	if err != nil {
		return nil, err
	}
	// Every content entry (everything except the signing metadata itself)
	// must be listed and must match its digest.
	for name, content := range contents {
		if name == EntryFileManifest || name == EntrySignature {
			continue
		}
		want, ok := digests[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnlistedEntry, name)
		}
		digest := sha256.Sum256(content)
		if hex.EncodeToString(digest[:]) != want {
			return nil, fmt.Errorf("%w: %s", ErrEntryDigest, name)
		}
	}

	sigBlock, err := signing.DecodeBlock(contents[EntrySignature])
	if err != nil {
		return nil, fmt.Errorf("apk: decode signature: %w", err)
	}
	contentDigest := sha256.Sum256(fileManifestBytes)
	if err := sigBlock.Verify(contentDigest); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSignatureInvalid, err)
	}

	m, err := manifest.Decode(contents[EntryManifest])
	if err != nil {
		return nil, fmt.Errorf("apk: decode manifest: %w", err)
	}
	d, err := dex.Decode(contents[EntryDex])
	if err != nil {
		return nil, fmt.Errorf("apk: decode dex: %w", err)
	}

	channel := make(map[string]string)
	for name, content := range contents {
		if !strings.HasPrefix(name, channelPrefix) {
			continue
		}
		base := strings.TrimPrefix(name, channelPrefix)
		if base == "CERT.SIG" || base == "MANIFEST.MF" {
			continue
		}
		channel[base] = string(content)
	}

	md5Sum := md5.Sum(data)
	shaSum := sha256.Sum256(data)
	return &Parsed{
		Manifest:  m,
		Dex:       d,
		Signature: sigBlock,
		Channel:   channel,
		MD5:       hex.EncodeToString(md5Sum[:]),
		SHA256:    hex.EncodeToString(shaSum[:]),
		Size:      len(data),
	}, nil
}

// Developer returns the signing developer fingerprint of a parsed APK.
func (p *Parsed) Developer() signing.Fingerprint {
	if p.Signature == nil {
		return signing.Fingerprint{}
	}
	return p.Signature.Fingerprint
}

// Identity is the (package, version, signer) triple the paper uses to decide
// whether two APKs crawled from different stores are "the same app".
type Identity struct {
	Package     string
	VersionCode int64
	Developer   signing.Fingerprint
}

// Identity returns the parsed APK's identity triple.
func (p *Parsed) Identity() Identity {
	return Identity{
		Package:     p.Manifest.Package,
		VersionCode: p.Manifest.VersionCode,
		Developer:   p.Developer(),
	}
}
