package apk

import (
	"archive/zip"
	"bytes"
	"io"
)

// Test helpers for re-writing archives with entries added or removed.

type rawEntry struct {
	name    string
	content []byte
}

// readAll extracts every entry of a zip archive in file order.
func readAll(data []byte) ([]rawEntry, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	var out []rawEntry
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, rawEntry{name: f.Name, content: b})
	}
	return out, nil
}

type deterministicWriter struct {
	zw *zip.Writer
}

func newDeterministicWriter(buf *bytes.Buffer) *deterministicWriter {
	return &deterministicWriter{zw: zip.NewWriter(buf)}
}

func (w *deterministicWriter) add(name string, content []byte) error {
	fw, err := w.zw.CreateHeader(&zip.FileHeader{Name: name, Method: zip.Store})
	if err != nil {
		return err
	}
	_, err = fw.Write(content)
	return err
}

func (w *deterministicWriter) close() error { return w.zw.Close() }
