package dex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary dex format ("DEX-lite").
//
// Real classes.dex files store a string pool followed by type, method and
// code tables that reference it. We mirror that layout at reduced fidelity:
//
//	offset  size  field
//	0       8     magic "dex\n035\x00"
//	8       4     string pool count N
//	...           N length-prefixed UTF-8 strings (uint32 length)
//	...     4     class count C
//	...           C class records
//
// Class record:
//
//	[name strIdx u32][method count u16]
//	  method record * count
//
// Method record:
//
//	[name strIdx u32]
//	[api count u16][api strIdx u32 ...]
//	[intent count u16][intent strIdx u32 ...]
//	[uri count u16][uri strIdx u32 ...]

const dexMagic = "dex\n035\x00"

// Encoding and decoding errors.
var (
	ErrBadMagic     = errors.New("dex: bad magic")
	ErrTruncated    = errors.New("dex: truncated input")
	ErrBadStringRef = errors.New("dex: string index out of range")
)

// Encode serializes the file into the binary format. The file is validated
// first.
func Encode(f *File) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("dex: encode: %w", err)
	}
	pool := make(map[string]uint32)
	var strings []string
	intern := func(s string) uint32 {
		if idx, ok := pool[s]; ok {
			return idx
		}
		idx := uint32(len(strings))
		strings = append(strings, s)
		pool[s] = idx
		return idx
	}

	// First pass: intern all strings so the pool is written before the
	// class table, as in a real dex file.
	for _, c := range f.Classes {
		intern(c.Name)
		for _, m := range c.Methods {
			intern(m.Name)
			for _, s := range m.APICalls {
				intern(s)
			}
			for _, s := range m.IntentActions {
				intern(s)
			}
			for _, s := range m.ContentURIs {
				intern(s)
			}
		}
	}

	var buf bytes.Buffer
	buf.WriteString(dexMagic)
	putU32(&buf, uint32(len(strings)))
	for _, s := range strings {
		putU32(&buf, uint32(len(s)))
		buf.WriteString(s)
	}
	putU32(&buf, uint32(len(f.Classes)))
	for _, c := range f.Classes {
		putU32(&buf, intern(c.Name))
		if len(c.Methods) > 0xFFFF {
			return nil, fmt.Errorf("dex: class %q has too many methods (%d)", c.Name, len(c.Methods))
		}
		putU16(&buf, uint16(len(c.Methods)))
		for _, m := range c.Methods {
			putU32(&buf, intern(m.Name))
			if err := putStringList(&buf, m.APICalls, intern); err != nil {
				return nil, err
			}
			if err := putStringList(&buf, m.IntentActions, intern); err != nil {
				return nil, err
			}
			if err := putStringList(&buf, m.ContentURIs, intern); err != nil {
				return nil, err
			}
		}
	}
	return buf.Bytes(), nil
}

func putStringList(buf *bytes.Buffer, items []string, intern func(string) uint32) error {
	if len(items) > 0xFFFF {
		return fmt.Errorf("dex: string list too long (%d)", len(items))
	}
	putU16(buf, uint16(len(items)))
	for _, s := range items {
		putU32(buf, intern(s))
	}
	return nil
}

// Decode parses a binary dex file produced by Encode.
func Decode(data []byte) (*File, error) {
	r := &cursor{data: data}
	magic, err := r.take(len(dexMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != dexMagic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, string(magic))
	}
	poolCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(poolCount) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible string pool count %d", ErrTruncated, poolCount)
	}
	pool := make([]string, poolCount)
	for i := range pool {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(n) > uint64(len(data)) {
			return nil, fmt.Errorf("%w: implausible string length %d", ErrTruncated, n)
		}
		b, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		pool[i] = string(b)
	}
	str := func(idx uint32) (string, error) {
		if int(idx) >= len(pool) {
			return "", fmt.Errorf("%w: %d >= %d", ErrBadStringRef, idx, len(pool))
		}
		return pool[idx], nil
	}
	readList := func() ([]string, error) {
		n, err := r.u16()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]string, n)
		for i := range out {
			idx, err := r.u32()
			if err != nil {
				return nil, err
			}
			if out[i], err = str(idx); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	classCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(classCount) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible class count %d", ErrTruncated, classCount)
	}
	f := &File{}
	if classCount > 0 {
		f.Classes = make([]Class, 0, classCount)
	}
	for i := uint32(0); i < classCount; i++ {
		nameIdx, err := r.u32()
		if err != nil {
			return nil, err
		}
		name, err := str(nameIdx)
		if err != nil {
			return nil, err
		}
		methodCount, err := r.u16()
		if err != nil {
			return nil, err
		}
		c := Class{Name: name}
		if methodCount > 0 {
			c.Methods = make([]Method, 0, methodCount)
		}
		for j := uint16(0); j < methodCount; j++ {
			mNameIdx, err := r.u32()
			if err != nil {
				return nil, err
			}
			mName, err := str(mNameIdx)
			if err != nil {
				return nil, err
			}
			apis, err := readList()
			if err != nil {
				return nil, err
			}
			intents, err := readList()
			if err != nil {
				return nil, err
			}
			uris, err := readList()
			if err != nil {
				return nil, err
			}
			c.Methods = append(c.Methods, Method{
				Name: mName, APICalls: apis, IntentActions: intents, ContentURIs: uris,
			})
		}
		f.Classes = append(f.Classes, c)
	}
	if !r.eof() {
		return nil, fmt.Errorf("dex: %d trailing bytes after class table", len(data)-r.pos)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("dex: decode: %w", err)
	}
	return f, nil
}

type cursor struct {
	data []byte
	pos  int
}

func (c *cursor) eof() bool { return c.pos >= len(c.data) }

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.data) {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d", ErrTruncated, n, c.pos)
	}
	b := c.data[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

func (c *cursor) u16() (uint16, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func putU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}
