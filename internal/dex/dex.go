// Package dex models the executable code of an app (the classes.dex payload
// of an APK) at the granularity the study needs: classes, methods, and the
// Android framework API calls, intent actions and content-provider URIs each
// method references.
//
// This is the representation from which all code-level analyses derive their
// features:
//
//   - the over-privilege analysis maps API calls/intents/URIs to permissions
//     (PScout-style, Figure 11),
//   - the third-party library detector clusters package-prefix features
//     (LibRadar-style, Figure 5 and Table 2),
//   - the clone detector builds API-call count vectors and code-segment
//     digests (WuKong-style, Table 3 and Figure 10).
package dex

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Method is a single method body, reduced to the externally visible behaviour
// the analyses care about: which framework APIs it invokes, which intent
// actions it constructs and which content URIs it touches.
type Method struct {
	Name          string
	APICalls      []string
	IntentActions []string
	ContentURIs   []string
}

// Class is a named class with its methods.
type Class struct {
	Name    string
	Methods []Method
}

// File is a decoded classes.dex: the full set of classes in an app, including
// both the developer's own code and any embedded third-party libraries.
type File struct {
	Classes []Class
}

// Validation errors.
var (
	ErrEmptyClassName  = errors.New("dex: empty class name")
	ErrEmptyMethodName = errors.New("dex: empty method name")
	ErrDuplicateClass  = errors.New("dex: duplicate class name")
)

// Validate checks structural invariants: non-empty unique class names and
// non-empty method names.
func (f *File) Validate() error {
	seen := make(map[string]bool, len(f.Classes))
	for _, c := range f.Classes {
		if c.Name == "" {
			return ErrEmptyClassName
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: %q", ErrDuplicateClass, c.Name)
		}
		seen[c.Name] = true
		for _, m := range c.Methods {
			if m.Name == "" {
				return fmt.Errorf("%w (class %q)", ErrEmptyMethodName, c.Name)
			}
		}
	}
	return nil
}

// NumClasses returns the number of classes.
func (f *File) NumClasses() int { return len(f.Classes) }

// NumMethods returns the total number of methods across all classes.
func (f *File) NumMethods() int {
	n := 0
	for _, c := range f.Classes {
		n += len(c.Methods)
	}
	return n
}

// AddClass appends a class. It does not check for duplicates; call Validate
// before encoding.
func (f *File) AddClass(c Class) { f.Classes = append(f.Classes, c) }

// Clone returns a deep copy of the file.
func (f *File) Clone() *File {
	cp := &File{Classes: make([]Class, len(f.Classes))}
	for i, c := range f.Classes {
		cc := Class{Name: c.Name, Methods: make([]Method, len(c.Methods))}
		for j, m := range c.Methods {
			cc.Methods[j] = Method{
				Name:          m.Name,
				APICalls:      append([]string(nil), m.APICalls...),
				IntentActions: append([]string(nil), m.IntentActions...),
				ContentURIs:   append([]string(nil), m.ContentURIs...),
			}
		}
		cp.Classes[i] = cc
	}
	return cp
}

// PackageOf returns the package portion of a fully qualified class name, i.e.
// everything before the last dot. A name without a dot has an empty package.
func PackageOf(className string) string {
	idx := strings.LastIndex(className, ".")
	if idx < 0 {
		return ""
	}
	return className[:idx]
}

// PackagePrefix returns the first depth segments of a package name. It is the
// unit at which third-party libraries are identified ("com.google.ads",
// "com.umeng", ...). If the package has fewer segments, the whole package is
// returned.
func PackagePrefix(pkg string, depth int) string {
	if depth <= 0 || pkg == "" {
		return pkg
	}
	segments := strings.Split(pkg, ".")
	if len(segments) <= depth {
		return pkg
	}
	return strings.Join(segments[:depth], ".")
}

// ClassesUnderPrefix returns the classes whose package matches or falls under
// the given package prefix.
func (f *File) ClassesUnderPrefix(prefix string) []Class {
	var out []Class
	for _, c := range f.Classes {
		if UnderPrefix(c.Name, prefix) {
			out = append(out, c)
		}
	}
	return out
}

// UnderPrefix reports whether the fully qualified class name falls under the
// package prefix (exact package match or a sub-package).
func UnderPrefix(className, prefix string) bool {
	if prefix == "" {
		return false
	}
	pkg := PackageOf(className)
	return pkg == prefix || strings.HasPrefix(pkg, prefix+".")
}

// WithoutPrefixes returns a copy of the file with every class under any of
// the given package prefixes removed. The clone detector uses this to strip
// third-party library code before computing similarity, since on average more
// than 60% of an app's code is library code and would otherwise dominate the
// comparison.
func (f *File) WithoutPrefixes(prefixes []string) *File {
	out := &File{}
	for _, c := range f.Classes {
		excluded := false
		for _, p := range prefixes {
			if UnderPrefix(c.Name, p) {
				excluded = true
				break
			}
		}
		if !excluded {
			out.Classes = append(out.Classes, c)
		}
	}
	return out
}

// TopLevelPackages returns the distinct package prefixes of the given depth
// present in the file, sorted, with the number of classes under each.
func (f *File) TopLevelPackages(depth int) []PackageCount {
	counts := make(map[string]int)
	for _, c := range f.Classes {
		prefix := PackagePrefix(PackageOf(c.Name), depth)
		if prefix == "" {
			continue
		}
		counts[prefix]++
	}
	out := make([]PackageCount, 0, len(counts))
	for p, n := range counts {
		out = append(out, PackageCount{Package: p, Classes: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Classes != out[j].Classes {
			return out[i].Classes > out[j].Classes
		}
		return out[i].Package < out[j].Package
	})
	return out
}

// PackageCount pairs a package prefix with the number of classes under it.
type PackageCount struct {
	Package string
	Classes int
}

// APICallCounts returns how many times each framework API is invoked across
// the whole file. This is the raw material of the WuKong-style feature
// vector.
func (f *File) APICallCounts() map[string]int {
	counts := make(map[string]int)
	for _, c := range f.Classes {
		for _, m := range c.Methods {
			for _, call := range m.APICalls {
				counts[call]++
			}
		}
	}
	return counts
}

// IntentActionCounts returns how many times each intent action is referenced.
func (f *File) IntentActionCounts() map[string]int {
	counts := make(map[string]int)
	for _, c := range f.Classes {
		for _, m := range c.Methods {
			for _, a := range m.IntentActions {
				counts[a]++
			}
		}
	}
	return counts
}

// ContentURICounts returns how many times each content URI is referenced.
func (f *File) ContentURICounts() map[string]int {
	counts := make(map[string]int)
	for _, c := range f.Classes {
		for _, m := range c.Methods {
			for _, u := range m.ContentURIs {
				counts[u]++
			}
		}
	}
	return counts
}

// DistinctAPICalls returns the sorted set of framework APIs referenced
// anywhere in the file.
func (f *File) DistinctAPICalls() []string {
	counts := f.APICallCounts()
	out := make([]string, 0, len(counts))
	for call := range counts {
		out = append(out, call)
	}
	sort.Strings(out)
	return out
}

// CodeSegments returns a content digest per method, computed over the
// method's API-call sequence, intents and URIs. Two methods with the same
// behaviourally relevant content produce the same digest even if the method
// was renamed, which is what makes the second phase of clone detection robust
// to identifier renaming.
func (f *File) CodeSegments() [][32]byte {
	var out [][32]byte
	for _, c := range f.Classes {
		for _, m := range c.Methods {
			out = append(out, m.Digest())
		}
	}
	return out
}

// Digest computes the behaviour digest of a single method. The method name is
// deliberately excluded so trivial renaming does not change the digest.
func (m *Method) Digest() [32]byte {
	h := sha256.New()
	var lenBuf [4]byte
	writeSection := func(items []string) {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(items)))
		h.Write(lenBuf[:])
		for _, s := range items {
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
			h.Write(lenBuf[:])
			h.Write([]byte(s))
		}
	}
	writeSection(m.APICalls)
	writeSection(m.IntentActions)
	writeSection(m.ContentURIs)
	var digest [32]byte
	copy(digest[:], h.Sum(nil))
	return digest
}
