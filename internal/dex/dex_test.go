package dex

import (
	"testing"
)

func sampleFile() *File {
	return &File{Classes: []Class{
		{
			Name: "com.example.app.MainActivity",
			Methods: []Method{
				{
					Name:          "onCreate",
					APICalls:      []string{"android.app.Activity.onCreate", "android.telephony.TelephonyManager.getDeviceId"},
					IntentActions: []string{"android.intent.action.VIEW"},
				},
				{
					Name:        "loadContacts",
					APICalls:    []string{"android.content.ContentResolver.query"},
					ContentURIs: []string{"content://com.android.contacts"},
				},
			},
		},
		{
			Name: "com.example.app.util.Helper",
			Methods: []Method{
				{Name: "format", APICalls: []string{"android.text.TextUtils.isEmpty"}},
			},
		},
		{
			Name: "com.google.ads.AdView",
			Methods: []Method{
				{Name: "loadAd", APICalls: []string{"android.webkit.WebView.loadUrl", "android.net.ConnectivityManager.getActiveNetworkInfo"}},
			},
		},
		{
			Name: "com.umeng.analytics.MobclickAgent",
			Methods: []Method{
				{Name: "onEvent", APICalls: []string{"android.telephony.TelephonyManager.getDeviceId"}},
			},
		},
	}}
}

func TestValidate(t *testing.T) {
	if err := sampleFile().Validate(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	bad := &File{Classes: []Class{{Name: ""}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty class name accepted")
	}
	dup := &File{Classes: []Class{{Name: "com.a.B"}, {Name: "com.a.B"}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate class accepted")
	}
	noMethodName := &File{Classes: []Class{{Name: "com.a.B", Methods: []Method{{Name: ""}}}}}
	if err := noMethodName.Validate(); err == nil {
		t.Error("empty method name accepted")
	}
}

func TestCounts(t *testing.T) {
	f := sampleFile()
	if f.NumClasses() != 4 {
		t.Errorf("NumClasses = %d, want 4", f.NumClasses())
	}
	if f.NumMethods() != 5 {
		t.Errorf("NumMethods = %d, want 5", f.NumMethods())
	}
	api := f.APICallCounts()
	if api["android.telephony.TelephonyManager.getDeviceId"] != 2 {
		t.Errorf("getDeviceId count = %d, want 2", api["android.telephony.TelephonyManager.getDeviceId"])
	}
	intents := f.IntentActionCounts()
	if intents["android.intent.action.VIEW"] != 1 {
		t.Errorf("intent count wrong: %v", intents)
	}
	uris := f.ContentURICounts()
	if uris["content://com.android.contacts"] != 1 {
		t.Errorf("uri count wrong: %v", uris)
	}
}

func TestPackageHelpers(t *testing.T) {
	if got := PackageOf("com.example.app.MainActivity"); got != "com.example.app" {
		t.Errorf("PackageOf = %q", got)
	}
	if got := PackageOf("NoPackage"); got != "" {
		t.Errorf("PackageOf(no dot) = %q", got)
	}
	if got := PackagePrefix("com.google.ads.internal", 2); got != "com.google" {
		t.Errorf("PackagePrefix depth 2 = %q", got)
	}
	if got := PackagePrefix("com.umeng", 3); got != "com.umeng" {
		t.Errorf("PackagePrefix short = %q", got)
	}
	if got := PackagePrefix("", 2); got != "" {
		t.Errorf("PackagePrefix empty = %q", got)
	}
	if got := PackagePrefix("com.a.b", 0); got != "com.a.b" {
		t.Errorf("PackagePrefix depth 0 = %q", got)
	}
}

func TestUnderPrefix(t *testing.T) {
	cases := []struct {
		class, prefix string
		want          bool
	}{
		{"com.google.ads.AdView", "com.google.ads", true},
		{"com.google.ads.internal.X", "com.google.ads", true},
		{"com.google.adsense.Y", "com.google.ads", false},
		{"com.example.app.Main", "com.google.ads", false},
		{"com.example.app.Main", "", false},
	}
	for _, tc := range cases {
		if got := UnderPrefix(tc.class, tc.prefix); got != tc.want {
			t.Errorf("UnderPrefix(%q, %q) = %v, want %v", tc.class, tc.prefix, got, tc.want)
		}
	}
}

func TestClassesUnderPrefixAndWithout(t *testing.T) {
	f := sampleFile()
	ads := f.ClassesUnderPrefix("com.google.ads")
	if len(ads) != 1 || ads[0].Name != "com.google.ads.AdView" {
		t.Errorf("ClassesUnderPrefix = %+v", ads)
	}
	stripped := f.WithoutPrefixes([]string{"com.google.ads", "com.umeng"})
	if stripped.NumClasses() != 2 {
		t.Errorf("WithoutPrefixes left %d classes, want 2", stripped.NumClasses())
	}
	for _, c := range stripped.Classes {
		if UnderPrefix(c.Name, "com.google.ads") || UnderPrefix(c.Name, "com.umeng") {
			t.Errorf("library class %q survived filtering", c.Name)
		}
	}
	// Original must be unchanged.
	if f.NumClasses() != 4 {
		t.Error("WithoutPrefixes mutated the receiver")
	}
}

func TestTopLevelPackages(t *testing.T) {
	f := sampleFile()
	pkgs := f.TopLevelPackages(2)
	if len(pkgs) == 0 {
		t.Fatal("no packages found")
	}
	if pkgs[0].Package != "com.example" || pkgs[0].Classes != 2 {
		t.Errorf("top package = %+v, want com.example with 2 classes", pkgs[0])
	}
}

func TestDistinctAPICallsSorted(t *testing.T) {
	f := sampleFile()
	calls := f.DistinctAPICalls()
	if len(calls) != 6 {
		t.Fatalf("DistinctAPICalls returned %d, want 6: %v", len(calls), calls)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i-1] >= calls[i] {
			t.Fatalf("calls not sorted/unique at %d: %v", i, calls)
		}
	}
}

func TestMethodDigestIgnoresName(t *testing.T) {
	a := Method{Name: "original", APICalls: []string{"x.y.Z.call"}}
	b := Method{Name: "renamed", APICalls: []string{"x.y.Z.call"}}
	if a.Digest() != b.Digest() {
		t.Error("digest should not depend on the method name")
	}
	c := Method{Name: "original", APICalls: []string{"x.y.Z.other"}}
	if a.Digest() == c.Digest() {
		t.Error("digest should depend on the API calls")
	}
}

func TestMethodDigestSectionBoundaries(t *testing.T) {
	// The same strings split differently across sections must hash
	// differently (no ambiguity between API calls and intents).
	a := Method{APICalls: []string{"s1", "s2"}}
	b := Method{APICalls: []string{"s1"}, IntentActions: []string{"s2"}}
	if a.Digest() == b.Digest() {
		t.Error("digest is ambiguous across sections")
	}
}

func TestCodeSegments(t *testing.T) {
	f := sampleFile()
	segs := f.CodeSegments()
	if len(segs) != f.NumMethods() {
		t.Errorf("CodeSegments = %d, want %d", len(segs), f.NumMethods())
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := sampleFile()
	cp := f.Clone()
	cp.Classes[0].Methods[0].APICalls[0] = "mutated"
	cp.Classes[0].Name = "mutated.Class"
	if f.Classes[0].Methods[0].APICalls[0] == "mutated" {
		t.Error("Clone shares method slices")
	}
	if f.Classes[0].Name == "mutated.Class" {
		t.Error("Clone shares class headers")
	}
}
