package dex

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile()
	data, err := Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(&File{Classes: []Class{{Name: ""}}}); err == nil {
		t.Error("Encode accepted invalid file")
	}
}

func TestEncodeEmptyFile(t *testing.T) {
	data, err := Encode(&File{})
	if err != nil {
		t.Fatalf("Encode empty: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode empty: %v", err)
	}
	if got.NumClasses() != 0 {
		t.Errorf("empty file decoded with %d classes", got.NumClasses())
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data, _ := Encode(sampleFile())
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestDecodeRejectsGarbageAndTruncation(t *testing.T) {
	for _, in := range [][]byte{nil, {}, []byte("junk"), bytes.Repeat([]byte{0xAB}, 100)} {
		if _, err := Decode(in); err == nil {
			t.Errorf("Decode accepted %d bytes of garbage", len(in))
		}
	}
	data, _ := Encode(sampleFile())
	for n := 0; n < len(data); n += 7 {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("Decode accepted %d/%d-byte truncation", n, len(data))
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data, _ := Encode(sampleFile())
	data = append(data, 0x00, 0x01)
	if _, err := Decode(data); err == nil {
		t.Error("Decode accepted trailing bytes")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := sampleFile()
	a, _ := Encode(f)
	b, _ := Encode(f)
	if !bytes.Equal(a, b) {
		t.Error("Encode is not deterministic")
	}
}

func TestStringPoolSharing(t *testing.T) {
	// A file with many repeated API calls must not grow linearly with the
	// number of references, only with the number of distinct strings.
	many := &File{}
	for i := 0; i < 50; i++ {
		many.AddClass(Class{
			Name: "com.pool.C" + string(rune('A'+i%26)) + string(rune('a'+i/26)),
			Methods: []Method{{
				Name:     "m",
				APICalls: []string{"android.app.Activity.onCreate", "android.webkit.WebView.loadUrl"},
			}},
		})
	}
	data, err := Encode(many)
	if err != nil {
		t.Fatal(err)
	}
	// 50 classes * 2 calls * ~30 bytes would exceed 3000 bytes without a
	// pool; with interning it stays far below.
	if len(data) > 2500 {
		t.Errorf("encoded size %d suggests string pool is not shared", len(data))
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClasses() != 50 {
		t.Errorf("decoded %d classes, want 50", got.NumClasses())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(classNames []string, apiCalls []string) bool {
		file := &File{}
		seen := map[string]bool{}
		for i, name := range classNames {
			if i >= 10 {
				break
			}
			cn := "com.prop.C" + sanitize(name)
			if seen[cn] {
				continue
			}
			seen[cn] = true
			var calls []string
			for j, c := range apiCalls {
				if j >= 8 {
					break
				}
				calls = append(calls, "api."+sanitize(c))
			}
			file.AddClass(Class{Name: cn, Methods: []Method{{Name: "m", APICalls: calls}}})
		}
		data, err := Encode(file)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(file, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// sanitize maps an arbitrary string to a short identifier-safe suffix so the
// property test exercises structure rather than name validation.
func sanitize(s string) string {
	out := []rune{'x'}
	for i, r := range s {
		if i >= 8 {
			break
		}
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			out = append(out, r)
		} else {
			out = append(out, 'q')
		}
	}
	return string(out)
}

func BenchmarkEncode(b *testing.B) {
	f := sampleFile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	data, err := Encode(sampleFile())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPICallCounts(b *testing.B) {
	f := sampleFile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.APICallCounts()
	}
}
