package query

import "context"

// Cooperative cancellation for the planned execution paths. Scans and
// aggregations are CPU-bound loops over millions of rows; when the caller's
// context dies (request timeout, disconnected client) the engine should stop
// burning cores, not finish a result nobody will read. The row loops poll a
// canceler every cancelStride rows — one non-blocking channel read, free when
// the context can never cancel — and every fan-out path joins its workers
// before surfacing ctx.Err(), so a cancelled call never leaks a goroutine.

// cancelStride is the number of rows a scan loop processes between context
// checks: small enough that cancellation lands within microseconds of work,
// large enough that the poll is invisible in the per-row cost.
const cancelStride = 4096

// canceler is a cheap sampler of one context's done channel.
type canceler struct {
	done <-chan struct{}
}

func newCanceler(ctx context.Context) canceler {
	return canceler{done: ctx.Done()}
}

// hit reports whether the context has been cancelled. A background context
// (nil done channel) short-circuits to false.
func (c canceler) hit() bool {
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}
