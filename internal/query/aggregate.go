package query

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Grouped aggregation: the request model and the row-at-a-time reference
// executor. An Aggregate groups the rows passing its filters by any set of
// registered fields and computes one cell per (group, aggregate spec) —
// counts, sums, means, extrema, shares, distinct counts and per-group top-K
// value rankings. The result reuses the scan Result shape (the group-by
// fields become the leading output columns, one column per aggregate
// follows), so the HTTP endpoint, the CLI table renderer and JSON clients
// consume aggregations exactly like scans.
//
// Execution mirrors the scan contract: Engine.Aggregate runs the planned
// columnar path (groupby.go) — candidate pruning through the secondary
// indexes, parallel per-chunk grouping merged deterministically in dataset
// order, typed per-group aggregation — while AggregateOracle keeps the naive
// path (boxed extraction, one pass per row) verbatim. Both return
// byte-identical results for every request, the same accelerate-and-prove
// contract Scan/ScanOracle established.

// AggOp is a grouped-aggregation operator.
type AggOp string

// Aggregation operators. count and share take an optional / no field; every
// other operator aggregates one named field. Null field values never
// contribute (SQL semantics): count(field) counts non-null rows, sum/mean
// skip nulls, min/max ignore them, distinct and topk never see them.
const (
	// AggCount counts the group's rows; with a field, only rows where the
	// field is non-null.
	AggCount AggOp = "count"
	// AggSum sums an int, float or bool field (bools count true as 1, so a
	// bool sum is a conditional count).
	AggSum AggOp = "sum"
	// AggMean is sum divided by the number of non-null contributing rows;
	// null when no row contributes.
	AggMean AggOp = "mean"
	// AggMin / AggMax return the smallest / largest non-null value under the
	// field kind's ordering; null when no row contributes.
	AggMin AggOp = "min"
	AggMax AggOp = "max"
	// AggShare is the group's row count divided by the total rows matched by
	// the request filters (across all groups), a float in [0, 1].
	AggShare AggOp = "share"
	// AggDistinct counts the distinct non-null values of a field.
	AggDistinct AggOp = "distinct"
	// AggTopK renders the K most frequent non-null values of a field as
	// "value:count, ..." ordered by count desc, value asc; null when the
	// group has no non-null values. K defaults to 10.
	AggTopK AggOp = "topk"
)

// AggSpec is one requested aggregate.
type AggSpec struct {
	Op    AggOp  `json:"op"`
	Field string `json:"field,omitempty"`
	// Where restricts this one aggregate to the group rows passing the given
	// filters (SQL's FILTER clause): the request-level Filters select the
	// rows and form the groups, Where only gates which of a group's rows the
	// cell counts. This is how one query computes e.g. a parsed-app count
	// next to a flagged-at-threshold count per market.
	Where []Filter `json:"where,omitempty"`
	// K bounds the topk ranking (default 10); ignored by other operators.
	K int `json:"k,omitempty"`
	// As names the output column; defaults to "op" / "op(field)". Required
	// when two aggregates would otherwise collide.
	As string `json:"as,omitempty"`
}

// Aggregate is one grouped-aggregation request.
type Aggregate struct {
	// GroupBy lists the grouping fields, in output order. Groups appear in
	// first-occurrence dataset order (before Sort); a null field value forms
	// its own group. Empty means one global group — emitted even when no row
	// matches, so global aggregates always return exactly one row.
	GroupBy []string `json:"group_by,omitempty"`
	// Aggregates lists the cells to compute per group; at least one.
	Aggregates []AggSpec `json:"aggregates"`
	// Filters select the rows entering the aggregation (same conjunctive
	// model as a scan; the planner prunes candidates through the secondary
	// indexes exactly as Scan does).
	Filters []Filter `json:"filters,omitempty"`
	// Sort orders the output groups by output column names (group-by fields
	// or aggregate names), nulls last; ties keep first-occurrence order.
	Sort []SortKey `json:"sort,omitempty"`
	// Limit caps the returned groups after sorting; 0 means no cap.
	Limit int `json:"limit,omitempty"`
}

// ErrBadAggregate marks an invalid aggregation request.
var ErrBadAggregate = errors.New("query: bad aggregate")

// FieldCategoryAggregate is the Category of computed (non-group) output
// columns in an aggregation result.
const FieldCategoryAggregate = "aggregate"

// ParseAggregate decodes a JSON aggregation document, rejecting unknown keys
// like ParseQuery does.
func ParseAggregate(r io.Reader) (Aggregate, error) {
	var a Aggregate
	dec := json.NewDecoder(io.LimitReader(r, maxQueryBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		if errors.Is(err, io.EOF) {
			return a, ErrEmptyQuery
		}
		return a, fmt.Errorf("query: parse: %w", err)
	}
	if dec.More() {
		return a, errors.New("query: parse: trailing data after the aggregate object")
	}
	if a.Limit < 0 {
		return a, fmt.Errorf("%w: %d", ErrBadLimit, a.Limit)
	}
	return a, nil
}

// AggregateSource is the aggregation face of a source: consumers holding a
// Source (the HTTP endpoint, the CLI, the fixed analyses) type-assert to it.
// *Engine[T] implements it.
type AggregateSource interface {
	Source
	// Aggregate executes one grouped-aggregation request. It is safe for
	// concurrent use.
	Aggregate(a Aggregate) (*Result, error)
}

// ContextAggregateSource is implemented by aggregation sources honoring
// context cancellation, mirroring ContextSource for scans: a cancelled
// context stops the match, group and fold stages at the next chunk boundary
// with ctx.Err(); a context that never cancels is bit-identical to
// Aggregate. *Engine[T] implements it.
type ContextAggregateSource interface {
	AggregateSource
	// AggregateContext executes one grouped-aggregation request, stopping
	// early (with ctx.Err()) when the context is cancelled. It is safe for
	// concurrent use.
	AggregateContext(ctx context.Context, a Aggregate) (*Result, error)
}

// AggregateOracleSource adds the reference executor, for the equivalence
// suite and benchmarks only.
type AggregateOracleSource interface {
	AggregateSource
	// AggregateOracle executes the request on the row-at-a-time reference
	// path. Fields, Rows and TotalMatched are byte-identical to
	// Aggregate's; Meta.Scanned (always the dataset size here, the
	// rows-evaluated count on the planned path), QueryTimeMicros and the
	// absent Explain block differ, mirroring Scan vs ScanOracle.
	AggregateOracle(a Aggregate) (*Result, error)
}

// compiledAgg is one validated aggregate spec: field resolved, where filters
// compiled, output kind decided.
type compiledAgg[T any] struct {
	op    AggOp
	field Field[T] // zero value when ord < 0
	ord   int      // field's registration ordinal; -1 when no field
	where []compiledFilter[T]
	k     int
	kind  Kind // output column kind
}

// preparedAgg is one validated request, shared by both executors.
type preparedAgg[T any] struct {
	groupFields []Field[T]
	groupOrds   []int
	specs       []compiledAgg[T]
	filters     []compiledFilter[T]
	sortKeys    []SortKey
	sortCols    []int  // output column index per sort key
	sortKinds   []Kind // output column kind per sort key
	limit       int
	infos       []FieldInfo
}

func (e *Engine[T]) prepareAggregate(a Aggregate) (*preparedAgg[T], error) {
	if a.Limit < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLimit, a.Limit)
	}
	if len(a.Aggregates) == 0 {
		return nil, fmt.Errorf("%w: at least one aggregate is required", ErrBadAggregate)
	}
	pa := &preparedAgg[T]{limit: a.Limit}

	names := map[string]bool{}
	for _, name := range a.GroupBy {
		f, ok := e.reg.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q (in group_by)", ErrUnknownField, name)
		}
		if names[name] {
			return nil, fmt.Errorf("%w: duplicate group_by field %q", ErrBadAggregate, name)
		}
		names[name] = true
		pa.groupFields = append(pa.groupFields, f)
		pa.groupOrds = append(pa.groupOrds, e.ordinals[name])
		pa.infos = append(pa.infos, f.info())
	}

	for _, spec := range a.Aggregates {
		ca := compiledAgg[T]{op: spec.Op, ord: -1, k: spec.K}
		needsField := false
		switch spec.Op {
		case AggCount:
			// Field optional: counts non-null rows of it when given.
		case AggShare:
			if spec.Field != "" {
				return nil, fmt.Errorf("%w: share takes no field (got %q)", ErrBadAggregate, spec.Field)
			}
		case AggSum, AggMean, AggMin, AggMax, AggDistinct, AggTopK:
			needsField = true
		default:
			return nil, fmt.Errorf("%w: unknown aggregate op %q", ErrBadAggregate, spec.Op)
		}
		if needsField && spec.Field == "" {
			return nil, fmt.Errorf("%w: %s requires a field", ErrBadAggregate, spec.Op)
		}
		if spec.Field != "" {
			f, ok := e.reg.Lookup(spec.Field)
			if !ok {
				return nil, fmt.Errorf("%w: %q (in aggregate %s)", ErrUnknownField, spec.Field, spec.Op)
			}
			ca.field = f
			ca.ord = e.ordinals[spec.Field]
		}
		if spec.Op == AggSum || spec.Op == AggMean {
			switch ca.field.Kind {
			case KindInt, KindFloat, KindBool:
			default:
				return nil, fmt.Errorf("%w: %s on %s field %q", ErrBadOp, spec.Op, ca.field.Kind, spec.Field)
			}
		}
		for _, raw := range spec.Where {
			cf, err := compileFilter(e.reg, raw)
			if err != nil {
				return nil, fmt.Errorf("aggregate %s: %w", spec.Op, err)
			}
			ca.where = append(ca.where, cf)
		}
		if ca.op == AggTopK && ca.k <= 0 {
			ca.k = 10
		}
		ca.kind = aggOutputKind(ca)
		name := spec.As
		if name == "" {
			name = defaultAggName(spec, ca.k)
		}
		if names[name] {
			return nil, fmt.Errorf("%w: duplicate output column %q (name it with \"as\")", ErrBadAggregate, name)
		}
		names[name] = true
		pa.specs = append(pa.specs, ca)
		pa.infos = append(pa.infos, FieldInfo{
			Name: name, Category: FieldCategoryAggregate, Kind: ca.kind,
			Doc: aggDoc(spec), Nullable: aggNullable(ca),
		})
	}

	for _, raw := range a.Filters {
		cf, err := compileFilter(e.reg, raw)
		if err != nil {
			return nil, err
		}
		pa.filters = append(pa.filters, cf)
	}

	for _, key := range a.Sort {
		col := -1
		for i, info := range pa.infos {
			if info.Name == key.Field {
				col = i
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("%w: %q (sort keys name output columns)", ErrUnknownField, key.Field)
		}
		pa.sortKeys = append(pa.sortKeys, key)
		pa.sortCols = append(pa.sortCols, col)
		pa.sortKinds = append(pa.sortKinds, pa.infos[col].Kind)
	}
	return pa, nil
}

// aggOutputKind maps an aggregate to its output column kind.
func aggOutputKind[T any](ca compiledAgg[T]) Kind {
	switch ca.op {
	case AggCount, AggDistinct:
		return KindInt
	case AggMean, AggShare:
		return KindFloat
	case AggSum:
		if ca.field.Kind == KindFloat {
			return KindFloat
		}
		return KindInt
	case AggMin, AggMax:
		return ca.field.Kind
	case AggTopK:
		return KindString
	}
	return KindString
}

// aggNullable reports whether an aggregate can emit a null cell (no
// contributing rows).
func aggNullable[T any](ca compiledAgg[T]) bool {
	switch ca.op {
	case AggCount, AggShare, AggDistinct:
		return false
	}
	return true
}

// defaultAggName derives an output column name from a spec.
func defaultAggName(spec AggSpec, k int) string {
	switch {
	case spec.Op == AggTopK:
		return fmt.Sprintf("topk(%s,%d)", spec.Field, k)
	case spec.Field != "":
		return string(spec.Op) + "(" + spec.Field + ")"
	}
	return string(spec.Op)
}

// aggDoc renders the introspection doc of one aggregate column.
func aggDoc(spec AggSpec) string {
	doc := string(spec.Op)
	if spec.Field != "" {
		doc += " of " + spec.Field
	}
	if len(spec.Where) > 0 {
		doc += " (conditional)"
	}
	return doc
}

// --- group-key encoding -------------------------------------------------
//
// Group membership (and distinct/topk value identity) is decided by an
// order-preserving byte encoding of the normalized value, identical between
// the columnar and the oracle path: a null marker byte, then a typed payload.
// Floats compare by bit pattern, so every NaN payload is its own group —
// grouping needs an equivalence relation and compareValues' "NaN equals
// everything" is not one.

func appendKeyInt(buf []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(v))
}

func appendKeyFloat(buf []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendKeyString(buf []byte, v string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	return append(buf, v...)
}

func appendKeyBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendKeyTime(buf []byte, v time.Time) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(v.Unix()))
	return binary.BigEndian.AppendUint32(buf, uint32(v.Nanosecond()))
}

// appendKeyValue encodes one boxed normalized value (the oracle side).
func appendKeyValue(buf []byte, kind Kind, v any, null bool) []byte {
	if null {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	switch kind {
	case KindInt:
		return appendKeyInt(buf, v.(int64))
	case KindFloat:
		return appendKeyFloat(buf, v.(float64))
	case KindString:
		return appendKeyString(buf, v.(string))
	case KindBool:
		return appendKeyBool(buf, v.(bool))
	case KindTime:
		return appendKeyTime(buf, v.(time.Time))
	}
	return buf
}

// appendKey encodes the value at row i straight from the typed column (the
// planned side); byte-for-byte identical to appendKeyValue on the extracted
// value.
func (c *column) appendKey(buf []byte, i int) []byte {
	if c.nulls.get(i) {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	switch c.kind {
	case KindInt:
		return appendKeyInt(buf, c.ints[i])
	case KindFloat:
		return appendKeyFloat(buf, c.floats[i])
	case KindString:
		return appendKeyString(buf, c.str(i))
	case KindBool:
		return appendKeyBool(buf, c.bools[i])
	case KindTime:
		return appendKeyTime(buf, c.times[i])
	}
	return buf
}

// formatScalar renders one non-null normalized value inside a topk cell,
// identically on both paths.
func formatScalar(kind Kind, v any) string {
	switch kind {
	case KindInt:
		return strconv.FormatInt(v.(int64), 10)
	case KindFloat:
		return strconv.FormatFloat(v.(float64), 'g', -1, 64)
	case KindString:
		return v.(string)
	case KindBool:
		return strconv.FormatBool(v.(bool))
	case KindTime:
		return v.(time.Time).Format(time.RFC3339)
	}
	return fmt.Sprint(v)
}

// Aggregate implements AggregateSource on the planned columnar path
// (groupby.go); datasets beyond int32 row ids keep the reference semantics,
// mirroring Scan.
func (e *Engine[T]) Aggregate(a Aggregate) (*Result, error) {
	return e.AggregateContext(context.Background(), a)
}

// AggregateContext implements ContextAggregateSource: Aggregate with
// cooperative cancellation at the same chunk boundaries ScanContext uses.
func (e *Engine[T]) AggregateContext(ctx context.Context, a Aggregate) (*Result, error) {
	start := time.Now()
	pa, err := e.prepareAggregate(a)
	if err != nil {
		return nil, err
	}
	if len(e.items) > math.MaxInt32 {
		return e.aggregateOracle(pa, start), nil
	}
	if e.pager != nil {
		// Mirror ScanContext: pin the full column set (filters, group-bys,
		// every spec's value and where columns) up front, degrade cleanly if
		// the pages cannot be had.
		release, err := e.pinOrds(ctx, e.aggOrds(pa))
		if err != nil {
			return nil, err
		}
		defer release()
	}
	return e.aggregatePlanned(ctx, pa, start)
}

// AggregateOracle implements AggregateOracleSource: the row-at-a-time
// reference executor — boxed extraction through the same extract() the scan
// oracle uses, one sequential pass to form the groups, per-group sequential
// cell computation in dataset order.
func (e *Engine[T]) AggregateOracle(a Aggregate) (*Result, error) {
	start := time.Now()
	pa, err := e.prepareAggregate(a)
	if err != nil {
		return nil, err
	}
	return e.aggregateOracle(pa, start), nil
}

// oracleGroup is one group on the reference path.
type oracleGroup struct {
	keyCells []any // typed normalized group-key values, nil = null
	rows     []int
}

func (e *Engine[T]) aggregateOracle(pa *preparedAgg[T], start time.Time) *Result {
	matched := e.match(pa.filters)

	var groups []*oracleGroup
	if len(pa.groupFields) == 0 {
		groups = []*oracleGroup{{rows: matched}}
	} else {
		index := map[string]int{}
		var buf []byte
		for _, idx := range matched {
			buf = buf[:0]
			cells := make([]any, len(pa.groupFields))
			for i, f := range pa.groupFields {
				v, null := extract(f, e.items[idx])
				buf = appendKeyValue(buf, f.Kind, v, null)
				if !null {
					cells[i] = v
				}
			}
			gi, ok := index[string(buf)]
			if !ok {
				gi = len(groups)
				index[string(buf)] = gi
				groups = append(groups, &oracleGroup{keyCells: cells})
			}
			groups[gi].rows = append(groups[gi].rows, idx)
		}
	}

	rows := make([][]any, 0, len(groups))
	for _, g := range groups {
		cells := make([]any, 0, len(pa.infos))
		cells = append(cells, g.keyCells...)
		for s := range pa.specs {
			cells = append(cells, e.oracleCell(&pa.specs[s], g.rows, len(matched)))
		}
		rows = append(rows, cells)
	}
	sortAggRows(rows, pa)
	if pa.limit > 0 && len(rows) > pa.limit {
		rows = rows[:pa.limit]
	}
	emitAggRows(rows)

	return &Result{
		Fields: pa.infos,
		Rows:   rows,
		Meta: Meta{
			Scanned:         len(e.items),
			TotalMatched:    len(matched),
			Returned:        len(rows),
			QueryTimeMicros: time.Since(start).Microseconds(),
		},
	}
}

// oracleCell computes one aggregate over a group's rows on the reference
// path: boxed extraction, strictly in dataset order.
func (e *Engine[T]) oracleCell(ca *compiledAgg[T], rows []int, totalMatched int) any {
	pass := func(idx int) bool {
		for w := range ca.where {
			if !ca.where[w].match(e.items[idx]) {
				return false
			}
		}
		return true
	}
	switch ca.op {
	case AggCount:
		n := 0
		for _, idx := range rows {
			if !pass(idx) {
				continue
			}
			if ca.ord >= 0 {
				if _, null := extract(ca.field, e.items[idx]); null {
					continue
				}
			}
			n++
		}
		return int64(n)
	case AggShare:
		n := 0
		for _, idx := range rows {
			if pass(idx) {
				n++
			}
		}
		if totalMatched == 0 {
			return float64(0)
		}
		return float64(n) / float64(totalMatched)
	case AggSum, AggMean:
		var sumInt int64
		var sumFloat float64
		n := 0
		for _, idx := range rows {
			if !pass(idx) {
				continue
			}
			v, null := extract(ca.field, e.items[idx])
			if null {
				continue
			}
			switch ca.field.Kind {
			case KindInt:
				sumInt += v.(int64)
			case KindFloat:
				sumFloat += v.(float64)
			case KindBool:
				if v.(bool) {
					sumInt++
				}
			}
			n++
		}
		if ca.op == AggSum {
			if ca.field.Kind == KindFloat {
				if n == 0 {
					return nil
				}
				return sumFloat
			}
			if n == 0 {
				return nil
			}
			return sumInt
		}
		if n == 0 {
			return nil
		}
		if ca.field.Kind == KindFloat {
			return sumFloat / float64(n)
		}
		return float64(sumInt) / float64(n)
	case AggMin, AggMax:
		var best any
		for _, idx := range rows {
			if !pass(idx) {
				continue
			}
			v, null := extract(ca.field, e.items[idx])
			if null {
				continue
			}
			if best == nil {
				best = v
				continue
			}
			c := compareValues(ca.field.Kind, v, best)
			if (ca.op == AggMin && c < 0) || (ca.op == AggMax && c > 0) {
				best = v
			}
		}
		return best
	case AggDistinct:
		seen := map[string]bool{}
		var buf []byte
		for _, idx := range rows {
			if !pass(idx) {
				continue
			}
			v, null := extract(ca.field, e.items[idx])
			if null {
				continue
			}
			buf = appendKeyValue(buf[:0], ca.field.Kind, v, false)
			if !seen[string(buf)] {
				seen[string(buf)] = true
			}
		}
		return int64(len(seen))
	case AggTopK:
		type entry struct {
			v     any
			first int
			count int
		}
		index := map[string]int{}
		var entries []*entry
		var buf []byte
		for _, idx := range rows {
			if !pass(idx) {
				continue
			}
			v, null := extract(ca.field, e.items[idx])
			if null {
				continue
			}
			buf = appendKeyValue(buf[:0], ca.field.Kind, v, false)
			ei, ok := index[string(buf)]
			if !ok {
				ei = len(entries)
				index[string(buf)] = ei
				entries = append(entries, &entry{v: v, first: idx})
			}
			entries[ei].count++
		}
		if len(entries) == 0 {
			return nil
		}
		return renderTopK(len(entries), ca.k,
			func(i, j int) int {
				if entries[i].count != entries[j].count {
					if entries[i].count > entries[j].count {
						return -1
					}
					return 1
				}
				if c := compareValues(ca.field.Kind, entries[i].v, entries[j].v); c != 0 {
					return c
				}
				return entries[i].first - entries[j].first
			},
			func(i int) (string, int) {
				return formatScalar(ca.field.Kind, entries[i].v), entries[i].count
			})
	}
	return nil
}
