package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// testIndexedRegistry is testRegistry with the index hints the planner needs
// to exercise every index shape: hash on strings and bools, sorted on ints,
// floats and times.
func testIndexedRegistry() *Registry[row] {
	r := testRegistry()
	if err := r.MarkIndexable("name", "market", "size", "rating", "flagged", "date"); err != nil {
		panic(err)
	}
	return r
}

var testMarkets = []string{"Google Play", "Tencent Myapp", "Baidu Market", "Huawei Market", "Xiaomi Market"}

// randomRows generates a null-heavy dataset: ~1/3 of sizes and ratings are
// null, sizes and dates collide often (index posting lists and sort ties),
// names are near-unique.
func randomRows(rng *rand.Rand, n int) []row {
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{
			name:      fmt.Sprintf("app-%c%d", 'a'+rng.Intn(26), rng.Intn(n)),
			market:    testMarkets[rng.Intn(len(testMarkets))],
			size:      int64(rng.Intn(40)),
			hasSize:   rng.Intn(3) != 0,
			rating:    float64(rng.Intn(50)) / 10,
			hasRating: rng.Intn(3) != 0,
			flagged:   rng.Intn(2) == 0,
			date:      day(1 + rng.Intn(28)),
		}
	}
	return rows
}

// randomQuery builds a valid query over the test registry: random operators
// × fields × sorts × limits, operands drawn to collide with the data.
func randomQuery(rng *rand.Rand) Query {
	fieldNames := []string{"name", "market", "size", "rating", "flagged", "date"}
	q := Query{}
	if rng.Intn(5) > 0 {
		for _, f := range fieldNames {
			if rng.Intn(2) == 0 {
				q.Fields = append(q.Fields, f)
			}
		}
	}
	operand := func(field string) any {
		switch field {
		case "name":
			return fmt.Sprintf("app-%c%d", 'a'+rng.Intn(26), rng.Intn(50))
		case "market":
			if rng.Intn(8) == 0 {
				return "No Such Market"
			}
			return testMarkets[rng.Intn(len(testMarkets))]
		case "size":
			return float64(rng.Intn(45)) // JSON spelling of an int operand
		case "rating":
			return float64(rng.Intn(50)) / 10
		case "flagged":
			return rng.Intn(2) == 0
		default: // date
			return day(1 + rng.Intn(30)).Format(time.RFC3339)
		}
	}
	for i := rng.Intn(4); i > 0; i-- {
		field := fieldNames[rng.Intn(len(fieldNames))]
		var ops []Op
		switch field {
		case "flagged":
			ops = []Op{OpEq, OpNe, OpIsNull, OpIn}
		case "name", "market":
			ops = []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIn, OpContains, OpIsNull}
		default:
			ops = []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIn, OpIsNull}
		}
		op := ops[rng.Intn(len(ops))]
		f := Filter{Field: field, Op: op}
		switch op {
		case OpIsNull:
			if rng.Intn(2) == 0 {
				f.Value = rng.Intn(2) == 0
			}
		case OpIn:
			list := make([]any, 0, 3)
			for j := 1 + rng.Intn(3); j > 0; j-- {
				list = append(list, operand(field))
			}
			if rng.Intn(4) == 0 { // duplicate operands must not double-count
				list = append(list, list[0])
			}
			f.Value = list
		case OpContains:
			f.Value = string([]byte{byte('a' + rng.Intn(26))})
		default:
			f.Value = operand(field)
		}
		q.Filters = append(q.Filters, f)
	}
	for i := rng.Intn(3); i > 0; i-- {
		q.Sort = append(q.Sort, SortKey{
			Field: fieldNames[rng.Intn(len(fieldNames))],
			Desc:  rng.Intn(2) == 0,
		})
	}
	switch rng.Intn(4) {
	case 0:
		q.Limit = 1 + rng.Intn(5)
	case 1:
		q.Limit = 1 + rng.Intn(200)
	}
	return q
}

// requireSameResult asserts planner output is byte-identical to the oracle:
// fields, every row (order included), and the shared meta counts.
func requireSameResult(t *testing.T, q Query, planned, oracle *Result) {
	t.Helper()
	if !reflect.DeepEqual(planned.Fields, oracle.Fields) {
		t.Fatalf("query %+v:\nfields diverge:\nplanned %+v\noracle  %+v", q, planned.Fields, oracle.Fields)
	}
	if planned.Meta.TotalMatched != oracle.Meta.TotalMatched || planned.Meta.Returned != oracle.Meta.Returned {
		t.Fatalf("query %+v:\nmeta diverges: planned %+v, oracle %+v", q, planned.Meta, oracle.Meta)
	}
	if !reflect.DeepEqual(planned.Rows, oracle.Rows) {
		pj, _ := json.Marshal(planned.Rows)
		oj, _ := json.Marshal(oracle.Rows)
		t.Fatalf("query %+v:\nrows diverge:\nplanned %s\noracle  %s", q, pj, oj)
	}
}

// TestPlannerMatchesOracleRandom is the randomized equivalence suite: for
// many random (dataset, query) pairs the planned scan must return exactly
// what the row-at-a-time oracle returns.
func TestPlannerMatchesOracleRandom(t *testing.T) {
	const queriesPerSeed = 150
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			n := 50 + rng.Intn(400)
			e := NewEngine(testIndexedRegistry(), randomRows(rng, n))
			for i := 0; i < queriesPerSeed; i++ {
				q := randomQuery(rng)
				planned, err1 := e.Scan(q)
				oracle, err2 := e.ScanOracle(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("query %d (%+v): planned err %v, oracle err %v", i, q, err1, err2)
				}
				requireSameResult(t, q, planned, oracle)
				if planned.Meta.Explain == nil {
					t.Fatalf("query %d: planned scan has no explain block", i)
				}
				if c := planned.Meta.Explain.Candidates; c < planned.Meta.TotalMatched || c > n {
					t.Fatalf("query %d: candidates %d outside [matched=%d, n=%d]",
						i, c, planned.Meta.TotalMatched, n)
				}
			}
		})
	}
}

// TestPlannerMatchesOracleParallel runs the same equivalence over a dataset
// large enough that both match paths fan out across CPUs.
func TestPlannerMatchesOracleParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := NewEngine(testIndexedRegistry(), randomRows(rng, parallelThreshold*2+17))
	for i := 0; i < 40; i++ {
		q := randomQuery(rng)
		planned, err1 := e.Scan(q)
		oracle, err2 := e.ScanOracle(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d (%+v): planned err %v, oracle err %v", i, q, err1, err2)
		}
		requireSameResult(t, q, planned, oracle)
	}
}

// TestPlannerExplain pins the Explain/Scanned contract on hand-built
// queries: which index answers which filter, candidate counts, and the
// residual-scanned semantics of Meta.Scanned.
func TestPlannerExplain(t *testing.T) {
	e := NewEngine(testIndexedRegistry(), testRows())

	// Hash index answers ==, no residual left: nothing evaluated per row.
	res, err := e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "market", Op: OpEq, Value: "Tencent Myapp"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ex := res.Meta.Explain
	if ex == nil || ex.IndexUsed != "hash(market)" || ex.DatasetRows != 5 || ex.Candidates != 2 || ex.ResidualScanned != 0 {
		t.Fatalf("hash-eq explain = %+v", ex)
	}
	if res.Meta.Scanned != 0 {
		t.Fatalf("Scanned = %d, want 0 (index answered everything)", res.Meta.Scanned)
	}

	// Sorted index answers the range (bravo and delta at size 300; a span
	// larger than half the dataset would be demoted to a residual filter);
	// the contains filter stays residual and is only evaluated over the
	// candidates.
	res, err = e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "size", Op: OpGe, Value: float64(300)},
		{Field: "name", Op: OpContains, Value: "l"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ex = res.Meta.Explain
	if ex == nil || ex.IndexUsed != "sorted(size)" || ex.Candidates != 2 || ex.ResidualScanned != 2 {
		t.Fatalf("range+residual explain = %+v", ex)
	}
	if res.Meta.Scanned != 2 || res.Meta.TotalMatched != 1 {
		t.Fatalf("meta = %+v, want Scanned 2, TotalMatched 1 (delta)", res.Meta)
	}

	// Unindexable operator: full column scan preserves the old Scanned
	// meaning (dataset size) in both Scanned and Candidates.
	res, err = e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "market", Op: OpNe, Value: "Google Play"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ex = res.Meta.Explain
	if ex == nil || ex.IndexUsed != "" || ex.Candidates != 5 || ex.ResidualScanned != 5 || res.Meta.Scanned != 5 {
		t.Fatalf("full-scan explain = %+v, meta = %+v", ex, res.Meta)
	}

	// Two indexed filters intersect posting lists; explain names both.
	res, err = e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "market", Op: OpIn, Value: []any{"Baidu Market"}},
		{Field: "size", Op: OpGe, Value: float64(300)}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ex = res.Meta.Explain
	if ex == nil || ex.IndexUsed != "hash(market)+sorted(size)" || ex.Candidates != 1 {
		t.Fatalf("intersection explain = %+v", ex)
	}
	if res.Meta.TotalMatched != 1 {
		t.Fatalf("TotalMatched = %d, want 1 (delta)", res.Meta.TotalMatched)
	}
}

// TestTopKMatchesFullSort drives the bounded-heap selection across every
// limit over several sort shapes and checks it against the oracle's full
// stable sort.
func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine(testIndexedRegistry(), randomRows(rng, 257))
	sorts := [][]SortKey{
		{{Field: "size"}},
		{{Field: "size", Desc: true}, {Field: "name"}},
		{{Field: "rating", Desc: true}, {Field: "market"}, {Field: "date", Desc: true}},
		{{Field: "flagged"}, {Field: "rating"}},
	}
	for si, keys := range sorts {
		for limit := 1; limit <= 40; limit += 3 {
			q := Query{Fields: []string{"name", "size", "rating"}, Sort: keys, Limit: limit}
			planned, err1 := e.Scan(q)
			oracle, err2 := e.ScanOracle(q)
			if err1 != nil || err2 != nil {
				t.Fatalf("sort %d limit %d: errs %v / %v", si, limit, err1, err2)
			}
			requireSameResult(t, q, planned, oracle)
		}
	}
}

// TestConcurrentColdEngine hammers a freshly built engine (no columns, no
// indexes yet) with mixed queries from many goroutines: under -race this
// proves the lazy column and index builds are safe against concurrent first
// touches, and every result must still equal the oracle's.
func TestConcurrentColdEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rows := randomRows(rng, parallelThreshold+100)
	oracleEngine := NewEngine(testIndexedRegistry(), rows)
	queries := make([]Query, 24)
	oracles := make([]*Result, len(queries))
	for i := range queries {
		queries[i] = randomQuery(rng)
		var err error
		if oracles[i], err = oracleEngine.ScanOracle(queries[i]); err != nil {
			t.Fatalf("oracle %d: %v", i, err)
		}
	}

	cold := NewEngine(testIndexedRegistry(), rows)
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3*len(queries); i++ {
				qi := (w + i) % len(queries)
				res, err := cold.Scan(queries[qi])
				if err != nil {
					t.Errorf("cold scan %d: %v", qi, err)
					return
				}
				if !reflect.DeepEqual(res.Rows, oracles[qi].Rows) ||
					res.Meta.TotalMatched != oracles[qi].Meta.TotalMatched {
					t.Errorf("cold scan %d diverged from oracle", qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// FuzzScanQuery feeds arbitrary JSON query documents to both execution
// paths: they must agree on accept/reject, and on every accepted query the
// planned rows must be byte-identical to the oracle's.
func FuzzScanQuery(f *testing.F) {
	f.Add([]byte(`{"fields":["name"],"filters":[{"field":"market","op":"==","value":"Tencent Myapp"}]}`))
	f.Add([]byte(`{"filters":[{"field":"size","op":">=","value":100},{"field":"name","op":"contains","value":"a"}],"sort":[{"field":"size","desc":true},{"field":"name"}],"limit":2}`))
	f.Add([]byte(`{"filters":[{"field":"market","op":"in","value":["Baidu Market","Google Play","Baidu Market"]}]}`))
	f.Add([]byte(`{"filters":[{"field":"rating","op":"is_null"}],"sort":[{"field":"date","desc":true}]}`))
	f.Add([]byte(`{"filters":[{"field":"date","op":"<","value":"2018-05-03"}],"limit":1}`))
	f.Add([]byte(`{"filters":[{"field":"flagged","op":"==","value":true},{"field":"size","op":"!=","value":300}]}`))

	rng := rand.New(rand.NewSource(3))
	e := NewEngine(testIndexedRegistry(), randomRows(rng, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ParseQuery(bytes.NewReader(data))
		if err != nil {
			return
		}
		planned, err1 := e.Scan(q)
		oracle, err2 := e.ScanOracle(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("paths disagree on validity: planned err %v, oracle err %v (query %+v)", err1, err2, q)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(planned.Rows, oracle.Rows) ||
			!reflect.DeepEqual(planned.Fields, oracle.Fields) ||
			planned.Meta.TotalMatched != oracle.Meta.TotalMatched ||
			planned.Meta.Returned != oracle.Meta.Returned {
			pj, _ := json.Marshal(planned.Rows)
			oj, _ := json.Marshal(oracle.Rows)
			t.Fatalf("planned result diverges from oracle (query %+v):\nplanned %s\noracle  %s", q, pj, oj)
		}
	})
}
