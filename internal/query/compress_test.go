package query

import (
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"reflect"
	"testing"
)

// TestMain shrinks the zone-map segment size for the whole package run so
// the hundreds-of-rows test datasets span many segments and the pruning,
// skip-jump and stats paths are exercised everywhere — at the production
// segment size they would all fit one segment and zone maps would be
// untestable without million-row fixtures.
func TestMain(m *testing.M) {
	segmentSize = 64
	os.Exit(m.Run())
}

// testDictRegistry is testIndexedRegistry with the string fields hinted for
// dictionary encoding: market is genuinely low-cardinality (the intended
// case), name is near-unique so large datasets exercise the cardinality
// bail-out while small ones encode.
func testDictRegistry() *Registry[row] {
	r := testIndexedRegistry()
	if err := r.MarkDictionary("name", "market"); err != nil {
		panic(err)
	}
	return r
}

// --- bitmap containers ---------------------------------------------------

// refBitmap is the trivial reference: a map of set rows.
type refBitmap map[int32]bool

func buildBoth(rows []int32) (*bitmap, refBitmap) {
	bm := &bitmap{}
	ref := refBitmap{}
	for _, r := range rows {
		bm.add(r)
		ref[r] = true
	}
	return bm, ref
}

// ascendingSample draws an ascending row sample: density is the rough
// fraction of [0, limit) kept, so >4096-per-container densities force the
// array -> dense conversion.
func ascendingSample(rng *rand.Rand, limit int32, density float64) []int32 {
	var rows []int32
	for r := int32(0); r < limit; r++ {
		if rng.Float64() < density {
			rows = append(rows, r)
		}
	}
	return rows
}

func TestBitmapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name    string
		limit   int32
		density float64
	}{
		{"sparse_one_container", 1 << 16, 0.01},
		{"dense_one_container", 1 << 16, 0.30}, // ~19k rows: forces dense form
		{"sparse_many_containers", 5 << 16, 0.002},
		{"dense_many_containers", 3 << 16, 0.25},
		{"full_container", 1 << 16, 1.01},
		{"empty", 1 << 16, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rows := ascendingSample(rng, tc.limit, tc.density)
			bm, ref := buildBoth(rows)
			if bm.n != len(rows) {
				t.Fatalf("cardinality %d, want %d", bm.n, len(rows))
			}
			got := bm.rows()
			if !reflect.DeepEqual(got, append(make([]int32, 0, len(rows)), rows...)) {
				t.Fatalf("rows() diverges: got %d rows, want %d in ascending order", len(got), len(rows))
			}
			for probe := int32(0); probe < tc.limit; probe += 97 {
				if bm.contains(probe) != ref[probe] {
					t.Fatalf("contains(%d) = %v, want %v", probe, bm.contains(probe), ref[probe])
				}
			}
		})
	}
}

func TestBitmapAndOr(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		limit := int32(1<<16 + rng.Intn(3<<16))
		a, refA := buildBoth(ascendingSample(rng, limit, []float64{0.001, 0.05, 0.2}[trial%3]))
		b, refB := buildBoth(ascendingSample(rng, limit, []float64{0.15, 0.002, 0.08}[trial%3]))
		c, refC := buildBoth(ascendingSample(rng, limit, 0.01))

		and := bmAnd(a, b)
		wantAnd := 0
		for r := range refA {
			if refB[r] {
				wantAnd++
			}
		}
		if and.n != wantAnd {
			t.Fatalf("trial %d: AND cardinality %d, want %d", trial, and.n, wantAnd)
		}
		prev := int32(-1)
		for _, r := range and.rows() {
			if !refA[r] || !refB[r] {
				t.Fatalf("trial %d: AND emitted row %d not in both inputs", trial, r)
			}
			if r <= prev {
				t.Fatalf("trial %d: AND rows not strictly ascending at %d", trial, r)
			}
			prev = r
		}

		or := bmOrAll([]*bitmap{a, b, nil, c, a}) // nils ignored, duplicates idempotent
		union := map[int32]bool{}
		for r := range refA {
			union[r] = true
		}
		for r := range refB {
			union[r] = true
		}
		for r := range refC {
			union[r] = true
		}
		if or.n != len(union) {
			t.Fatalf("trial %d: OR cardinality %d, want %d", trial, or.n, len(union))
		}
		prev = -1
		for _, r := range or.rows() {
			if !union[r] {
				t.Fatalf("trial %d: OR emitted row %d not in any input", trial, r)
			}
			if r <= prev {
				t.Fatalf("trial %d: OR rows not strictly ascending at %d", trial, r)
			}
			prev = r
		}
	}
}

// --- dictionary encoding -------------------------------------------------

// TestDictEncodingLayout pins the layout contract: a hinted low-cardinality
// column encodes (sorted dictionary, plain slice dropped), a hinted
// high-cardinality column silently keeps the plain layout, and uncompressed
// engines never encode.
func TestDictEncodingLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 600 // above dictCardLimit floor so unique names must bail
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{
			name:    fmt.Sprintf("unique-app-%05d", i),
			market:  testMarkets[rng.Intn(len(testMarkets))],
			size:    int64(i),
			hasSize: true,
			date:    day(1 + i%28),
		}
	}
	e := NewEngine(testDictRegistry(), rows)

	market := e.columnFor(e.ordinals["market"])
	if market.dict == nil || market.strs != nil {
		t.Fatalf("market column not dictionary-encoded: dict=%v strs=%d", market.dict, len(market.strs))
	}
	for k := 1; k < len(market.dict); k++ {
		if market.dict[k-1] >= market.dict[k] {
			t.Fatalf("dictionary not sorted/deduped at %d: %q >= %q", k, market.dict[k-1], market.dict[k])
		}
	}
	for i := range rows {
		if got := market.str(i); got != rows[i].market {
			t.Fatalf("row %d decodes to %q, want %q", i, got, rows[i].market)
		}
	}

	name := e.columnFor(e.ordinals["name"])
	if name.dict != nil {
		t.Fatalf("near-unique name column encoded anyway (dict size %d); want cardinality bail-out", len(name.dict))
	}

	plain := NewEngineUncompressed(testDictRegistry(), rows)
	if c := plain.columnFor(plain.ordinals["market"]); c.dict != nil || c.zones != nil {
		t.Fatal("uncompressed engine built dict/zones")
	}
}

// TestBitmapExplain pins the planner's index naming on dictionary columns:
// == and in answer from bitmap posting lists, and mixed intersections name
// every index used.
func TestBitmapExplain(t *testing.T) {
	e := NewEngine(testDictRegistry(), testRows())

	res, err := e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "market", Op: OpEq, Value: "Tencent Myapp"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ex := res.Meta.Explain
	if ex == nil || ex.IndexUsed != "bitmap(market)" || ex.Candidates != 2 || ex.ResidualScanned != 0 {
		t.Fatalf("bitmap-eq explain = %+v", ex)
	}

	// Duplicate in-operands must not double-count the posting union (2 rows
	// of 5 stays under the n/2 demotion threshold only with exact dedup).
	res, err = e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "market", Op: OpIn, Value: []any{"Baidu Market", "Baidu Market", "No Such Market"}},
		{Field: "size", Op: OpGe, Value: float64(300)}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ex = res.Meta.Explain
	if ex == nil || ex.IndexUsed != "bitmap(market)+sorted(size)" {
		t.Fatalf("intersection explain = %+v", ex)
	}
	oracle, err := e.ScanOracle(Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "market", Op: OpIn, Value: []any{"Baidu Market", "Baidu Market", "No Such Market"}},
		{Field: "size", Op: OpGe, Value: float64(300)}}})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !reflect.DeepEqual(res.Rows, oracle.Rows) {
		t.Fatalf("bitmap intersection diverges from oracle: %v vs %v", res.Rows, oracle.Rows)
	}

	// An operand absent from the dictionary is an empty posting list: no
	// rows, still answered by the index.
	res, err = e.Scan(Query{Filters: []Filter{{Field: "market", Op: OpEq, Value: "No Such Market"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Meta.TotalMatched != 0 || res.Meta.Explain.IndexUsed != "bitmap(market)" {
		t.Fatalf("missing-operand scan = %+v", res.Meta)
	}
}

// TestDictPlannerMatchesOracleRandom re-runs the randomized scan equivalence
// suite with dictionary encoding forced on the string fields, and
// additionally cross-checks the compressed engine against an uncompressed
// engine over the same rows — three paths, one answer.
func TestDictPlannerMatchesOracleRandom(t *testing.T) {
	const queriesPerSeed = 120
	for seed := int64(31); seed <= 36; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			n := 50 + rng.Intn(400)
			rows := randomRows(rng, n)
			compressed := NewEngine(testDictRegistry(), rows)
			plain := NewEngineUncompressed(testDictRegistry(), rows)
			for i := 0; i < queriesPerSeed; i++ {
				q := randomQuery(rng)
				planned, err1 := compressed.Scan(q)
				oracle, err2 := compressed.ScanOracle(q)
				unc, err3 := plain.Scan(q)
				if err1 != nil || err2 != nil || err3 != nil {
					t.Fatalf("query %d (%+v): errs %v / %v / %v", i, q, err1, err2, err3)
				}
				requireSameResult(t, q, planned, oracle)
				if !reflect.DeepEqual(planned.Rows, unc.Rows) ||
					planned.Meta.TotalMatched != unc.Meta.TotalMatched {
					t.Fatalf("query %d (%+v): compressed diverges from uncompressed engine", i, q)
				}
			}
		})
	}
}

// TestDictAggregateMatchesOracle re-runs the randomized aggregation
// equivalence suite on dictionary-encoded columns, covering the packed
// group-key fast path (market/name/flagged group-bys), the per-code distinct
// and topk cells, and the same three-way cross-check as the scan suite.
func TestDictAggregateMatchesOracle(t *testing.T) {
	const requestsPerSeed = 100
	for seed := int64(41); seed <= 46; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			n := 50 + rng.Intn(400)
			rows := randomRows(rng, n)
			compressed := NewEngine(testDictRegistry(), rows)
			plain := NewEngineUncompressed(testDictRegistry(), rows)
			for i := 0; i < requestsPerSeed; i++ {
				a := randomAggregate(rng)
				planned, err1 := compressed.Aggregate(a)
				oracle, err2 := compressed.AggregateOracle(a)
				unc, err3 := plain.Aggregate(a)
				if (err1 == nil) != (err2 == nil) || (err1 == nil) != (err3 == nil) {
					t.Fatalf("request %d (%+v): errs %v / %v / %v", i, a, err1, err2, err3)
				}
				if err1 != nil {
					continue
				}
				requireSameAggregate(t, a, planned, oracle)
				if !reflect.DeepEqual(planned.Rows, unc.Rows) {
					t.Fatalf("request %d (%+v): compressed diverges from uncompressed engine", i, a)
				}
			}
		})
	}
}

// TestPackedGroupKeys asserts the packed-uint64 grouping fast path actually
// engages for all-dictionary group-bys and still produces oracle-identical
// groups when the group columns carry nulls.
func TestPackedGroupKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	rows := randomRows(rng, 300)
	e := NewEngine(testDictRegistry(), rows)

	cols := []*column{e.columnFor(e.ordinals["market"])}
	if _, keyBits, ok := packedKeyer(cols); !ok {
		t.Fatal("packedKeyer refused a single dictionary column")
	} else if want := bits.Len(uint(len(cols[0].dict))); keyBits != want {
		t.Fatalf("packedKeyer keyBits = %d, want %d", keyBits, want)
	}
	cols = append(cols, e.columnFor(e.ordinals["size"]))
	if _, _, ok := packedKeyer(cols); ok {
		t.Fatal("packedKeyer accepted a non-dictionary column")
	}

	a := Aggregate{
		GroupBy:    []string{"market", "name"},
		Aggregates: []AggSpec{{Op: AggCount, As: "n"}, {Op: AggDistinct, Field: "name", As: "names"}},
	}
	planned, err1 := e.Aggregate(a)
	oracle, err2 := e.AggregateOracle(a)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v / %v", err1, err2)
	}
	requireSameAggregate(t, a, planned, oracle)
}

// --- zone maps -----------------------------------------------------------

// clusteredRows builds rows whose size grows with the row index (values
// cluster per segment, the layout zone maps exploit) with a null stripe in
// the middle segments.
func clusteredRows(n int) []row {
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{
			name:    fmt.Sprintf("app-%04d", i),
			market:  testMarkets[i%len(testMarkets)],
			size:    int64(i),
			hasSize: i < n/3 || i >= n/2, // a fully-null stripe of segments
			date:    day(1 + (i/10)%28),
		}
	}
	return rows
}

// TestZoneMapSkipsSegments drives a range query over a clustered,
// unindexable dataset and asserts the zone maps skipped segments, that the
// skip/scan tallies exactly cover the dataset, and that the result is still
// oracle-identical.
func TestZoneMapSkipsSegments(t *testing.T) {
	n := segmentSize * 10
	// Plain registry: no secondary indexes, so the range runs as a full
	// column scan and pruning is the only accelerator.
	e := NewEngine(testRegistry(), clusteredRows(n))
	q := Query{Fields: []string{"name"}, Filters: []Filter{
		{Field: "size", Op: OpGe, Value: float64(n - segmentSize - 3)}}}
	res, err := e.Scan(q)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ex := res.Meta.Explain
	if ex == nil || ex.SegmentsSkipped == 0 {
		t.Fatalf("zone maps skipped nothing: explain = %+v", ex)
	}
	if ex.SegmentRowsSkipped+ex.SegmentRowsScanned != ex.DatasetRows {
		t.Fatalf("segment tallies %d+%d do not cover dataset %d",
			ex.SegmentRowsSkipped, ex.SegmentRowsScanned, ex.DatasetRows)
	}
	if ex.SegmentsSkipped+ex.SegmentsScanned != (n+segmentSize-1)/segmentSize {
		t.Fatalf("segment counts %d+%d do not cover %d segments",
			ex.SegmentsSkipped, ex.SegmentsScanned, (n+segmentSize-1)/segmentSize)
	}
	if res.Meta.Scanned != ex.SegmentRowsScanned {
		t.Fatalf("Scanned = %d, want the %d zone-scanned rows", res.Meta.Scanned, ex.SegmentRowsScanned)
	}
	oracle, err := e.ScanOracle(q)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !reflect.DeepEqual(res.Rows, oracle.Rows) || res.Meta.TotalMatched != oracle.Meta.TotalMatched {
		t.Fatal("zone-pruned scan diverges from oracle")
	}
}

// TestZonePruningOperators sweeps every operator with prunable shapes over
// the clustered dataset and checks (a) equivalence with the oracle and (b)
// that the segment tallies, when pruning ran, cover the dataset.
func TestZonePruningOperators(t *testing.T) {
	n := segmentSize * 8
	e := NewEngine(testRegistry(), clusteredRows(n))
	mid := float64(n / 2)
	queries := []Query{
		{Filters: []Filter{{Field: "size", Op: OpEq, Value: mid}}},
		{Filters: []Filter{{Field: "size", Op: OpNe, Value: mid}}},
		{Filters: []Filter{{Field: "size", Op: OpLt, Value: float64(segmentSize + 5)}}},
		{Filters: []Filter{{Field: "size", Op: OpLe, Value: float64(segmentSize)}}},
		{Filters: []Filter{{Field: "size", Op: OpGt, Value: float64(n - segmentSize)}}},
		{Filters: []Filter{{Field: "size", Op: OpGe, Value: mid}}},
		{Filters: []Filter{{Field: "size", Op: OpIn, Value: []any{float64(3), mid, float64(n + 99)}}}},
		{Filters: []Filter{{Field: "size", Op: OpIsNull}}},
		{Filters: []Filter{{Field: "size", Op: OpIsNull, Value: false}}},
		{Filters: []Filter{{Field: "size", Op: OpGe, Value: mid}, {Field: "name", Op: OpContains, Value: "app"}}},
	}
	for qi, q := range queries {
		planned, err1 := e.Scan(q)
		oracle, err2 := e.ScanOracle(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d: errs %v / %v", qi, err1, err2)
		}
		if !reflect.DeepEqual(planned.Rows, oracle.Rows) ||
			planned.Meta.TotalMatched != oracle.Meta.TotalMatched {
			t.Fatalf("query %d (%+v): zone-pruned scan diverges from oracle", qi, q)
		}
		ex := planned.Meta.Explain
		if ex.SegmentsSkipped+ex.SegmentsScanned > 0 &&
			ex.SegmentRowsSkipped+ex.SegmentRowsScanned != ex.DatasetRows {
			t.Fatalf("query %d: tallies %d+%d do not cover %d rows",
				qi, ex.SegmentRowsSkipped, ex.SegmentRowsScanned, ex.DatasetRows)
		}
	}
}
