package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Paged engines: columns live on disk and page in on first touch. A paged
// engine holds its items (the row slice recovered from the WAL-backed record
// section, which is what correctness falls back on) but leaves the typed
// column planes in the snapshot file, loading each through a ColumnFetcher the
// first time a scan needs it. Residency is governed by a byte-budget LRU
// (PagePool): a column is pinned while any scan uses it and evictable after,
// so the served corpus can exceed the budget as long as no single query's
// column set does.
//
// Every fetch is fallible, and the failure ladder is explicit:
//
//  1. Transient read errors retry with bounded backoff (ErrPageUnavailable
//     after the attempts are spent — the caller degrades the request, it does
//     not get a wrong answer).
//  2. A checksum or structural-validation failure quarantines the column
//     (the on-disk bytes are never trusted again this process) and falls back
//     to rebuilding it from the resident items — the WAL-sourced truth.
//  3. Budget exhaustion — the needed bytes cannot be freed because everything
//     resident is pinned — fails fast with ErrPageBudget; serving maps it to
//     a clean 503 + Retry-After.
//
// Paged engines answer every query byte-identically (Fields, Rows,
// TotalMatched) to a fully-materialized engine over the same rows: the
// planner skips secondary indexes (indexLookup returns "no index" so every
// filter runs as a residual scan — layout never changes results, only
// Explain), and the column values themselves are either the snapshot's
// validated planes or a rebuild through the same buildColumn the materialized
// engine uses.

// Fetch-failure sentinels. Fetchers wrap ErrPageCorrupt around checksum
// mismatches; the pool wraps ErrPageUnavailable around exhausted retries and
// ErrPageBudget around reservation failures. Serving layers classify with
// errors.Is.
var (
	// ErrPageBudget means the page budget cannot admit the columns a request
	// needs: everything resident is pinned by other requests. Transient by
	// nature — retry after in-flight scans release their pins.
	ErrPageBudget = errors.New("query: page budget exhausted")
	// ErrPageUnavailable means a column fetch kept failing after bounded
	// retries. The on-disk bytes may be fine (transient I/O), so the column is
	// not quarantined; the request degrades.
	ErrPageUnavailable = errors.New("query: column page unavailable")
	// ErrPageCorrupt marks a fetch whose bytes failed checksum or structural
	// validation. The pool quarantines the column and rebuilds it from items.
	ErrPageCorrupt = errors.New("query: column page corrupt")
)

// ColumnFetcher is the segment-fetch interface a paged engine loads columns
// through. Implementations must be safe for concurrent use; the durable
// layer's snapshot reader is the production one.
type ColumnFetcher interface {
	// Columns lists the fetchable column names (each registered on the
	// engine), fixed for the fetcher's lifetime.
	Columns() []string
	// ColumnBytes returns the decoded in-memory size estimate of one column,
	// the budget charge while it is resident. Must be positive for every name
	// in Columns.
	ColumnBytes(name string) int64
	// FetchColumn reads, checksum-verifies and decodes one column. A checksum
	// mismatch must return an error wrapping ErrPageCorrupt; any other error
	// is treated as transient and retried. A cancelled ctx aborts the fetch.
	FetchColumn(ctx context.Context, name string) (*ColumnData, error)
}

// PageStats is a point-in-time snapshot of a pool's counters, feeding the
// paged_* metrics.
type PageStats struct {
	Budget        int64
	ResidentBytes int64
	Fetches       int64
	Evictions     int64
	Retries       int64
	Quarantines   int64
}

// PagePool is the residency authority shared by the paged engines of one
// process (epochs hand their slots over via Retire, so one budget governs
// the old and new engine during a swap). All slot state below is guarded by
// mu; the column pointers themselves are the engines' atomic slots, so scans
// read them without the pool lock.
type PagePool struct {
	budget     int64
	retries    int
	retryDelay time.Duration

	mu       sync.Mutex
	resident int64
	// LRU of resident, unpinned slots: head is the eviction victim, tail the
	// most recently released.
	lruHead, lruTail *pagedSlot

	fetches     atomic.Int64
	evictions   atomic.Int64
	retryCount  atomic.Int64
	quarantines atomic.Int64
}

// NewPagePool creates a pool with a byte budget (<= 0 means unbounded — page
// lazily but never evict), a transient-fetch retry count and the base backoff
// delay between attempts (doubling per retry, capped at 8x).
func NewPagePool(budget int64, retries int, retryDelay time.Duration) *PagePool {
	if retries < 0 {
		retries = 0
	}
	if retryDelay <= 0 {
		retryDelay = time.Millisecond
	}
	return &PagePool{budget: budget, retries: retries, retryDelay: retryDelay}
}

// Stats returns the pool's current counters.
func (p *PagePool) Stats() PageStats {
	p.mu.Lock()
	resident := p.resident
	p.mu.Unlock()
	return PageStats{
		Budget:        p.budget,
		ResidentBytes: resident,
		Fetches:       p.fetches.Load(),
		Evictions:     p.evictions.Load(),
		Retries:       p.retryCount.Load(),
		Quarantines:   p.quarantines.Load(),
	}
}

// pagedSlot is one column's residency state. colp aliases the engine's atomic
// column slot: non-nil exactly while the slot is resident (charged against
// the budget). Everything else is guarded by the pool's mu, except
// quarantined, which only the slot's unique loader (serialized by loading)
// touches.
type pagedSlot struct {
	name    string
	bytes   int64
	colp    *atomic.Pointer[column]
	fetch   func(ctx context.Context) (*column, error)
	rebuild func() *column

	pins        int
	loading     chan struct{} // non-nil while one loader fetches; closed when done
	quarantined bool
	dead        bool // epoch retired: free on last release instead of entering the LRU
	inLRU       bool
	prev, next  *pagedSlot
}

func (p *PagePool) lruRemove(s *pagedSlot) {
	if !s.inLRU {
		return
	}
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		p.lruHead = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		p.lruTail = s.prev
	}
	s.prev, s.next, s.inLRU = nil, nil, false
}

func (p *PagePool) lruPush(s *pagedSlot) {
	s.prev, s.next, s.inLRU = p.lruTail, nil, true
	if p.lruTail != nil {
		p.lruTail.next = s
	} else {
		p.lruHead = s
	}
	p.lruTail = s
}

// evictLocked drops one resident, unpinned slot. Scans that loaded the column
// pointer before the store keep the immutable column alive through the GC —
// eviction is safe without waiting on them.
func (p *PagePool) evictLocked(s *pagedSlot) {
	p.lruRemove(s)
	s.colp.Store(nil)
	p.resident -= s.bytes
	p.evictions.Add(1)
}

// reserveLocked frees LRU victims until need bytes fit under the budget.
// False means everything resident is pinned and the request must degrade.
func (p *PagePool) reserveLocked(need int64) bool {
	if p.budget > 0 {
		for p.resident+need > p.budget {
			if p.lruHead == nil {
				return false
			}
			p.evictLocked(p.lruHead)
		}
	}
	p.resident += need
	return true
}

// acquire pins one column, loading it if absent. Exactly one goroutine
// performs a given slot's load; concurrent acquirers wait on the loading
// channel (or their context) and re-examine the slot when it closes.
func (p *PagePool) acquire(ctx context.Context, s *pagedSlot) error {
	p.mu.Lock()
	for {
		if s.colp.Load() != nil {
			s.pins++
			p.lruRemove(s)
			p.mu.Unlock()
			return nil
		}
		if s.loading == nil {
			break
		}
		ch := s.loading
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		p.mu.Lock()
	}
	// Become the loader: reserve the budget before fetching so a doomed
	// request fails before any I/O, then load outside the lock.
	if !p.reserveLocked(s.bytes) {
		p.mu.Unlock()
		return fmt.Errorf("%w: %d bytes for column %q (budget %d, all resident pinned)",
			ErrPageBudget, s.bytes, s.name, p.budget)
	}
	ch := make(chan struct{})
	s.loading = ch
	p.mu.Unlock()

	col, err := p.load(ctx, s)

	p.mu.Lock()
	s.loading = nil
	close(ch)
	if err != nil {
		p.resident -= s.bytes
		p.mu.Unlock()
		return err
	}
	s.colp.Store(col)
	s.pins++
	p.mu.Unlock()
	return nil
}

// load runs the fetch-failure ladder for one slot (sole loader, no lock
// held): bounded retries with doubling backoff for transient errors, then
// quarantine + rebuild-from-items for corruption, ErrPageUnavailable when the
// retries are spent.
func (p *PagePool) load(ctx context.Context, s *pagedSlot) (*column, error) {
	if !s.quarantined {
		p.fetches.Add(1)
		var lastErr error
		delay := p.retryDelay
		for attempt := 0; attempt <= p.retries; attempt++ {
			if attempt > 0 {
				p.retryCount.Add(1)
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				if delay < 8*p.retryDelay {
					delay *= 2
				}
			}
			col, err := s.fetch(ctx)
			if err == nil {
				return col, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if errors.Is(err, ErrPageCorrupt) {
				p.quarantines.Add(1)
				s.quarantined = true
				lastErr = err
				break
			}
			lastErr = err
		}
		if !s.quarantined {
			return nil, fmt.Errorf("%w: column %q: %v", ErrPageUnavailable, s.name, lastErr)
		}
	}
	// Quarantined: the snapshot bytes are not trusted; rebuild the column from
	// the resident items, which the WAL/record section vouches for.
	return s.rebuild(), nil
}

// release unpins one column; the last pin moves it to the LRU tail (or frees
// it outright when its epoch was retired).
func (p *PagePool) release(s *pagedSlot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s.pins--
	if s.pins > 0 {
		return
	}
	if s.dead {
		if s.colp.Load() != nil {
			s.colp.Store(nil)
			p.resident -= s.bytes
			p.evictions.Add(1)
		}
		return
	}
	p.lruPush(s)
}

// retire marks an engine's slots dead and evicts the unpinned ones — the
// epoch-swap hook: the old engine's residency is dropped (pinned columns
// linger only until their in-flight scans release).
func (p *PagePool) retire(slots []*pagedSlot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range slots {
		if s == nil || s.dead {
			continue
		}
		s.dead = true
		if s.pins == 0 && s.colp.Load() != nil {
			p.evictLocked(s)
		}
	}
}

// enginePager is one paged engine's view of the pool: a slot per paged
// ordinal (nil for fields that stay lazy).
type enginePager[T any] struct {
	fetcher ColumnFetcher
	pool    *PagePool
	slots   []*pagedSlot
}

// NewEnginePaged builds a compressed engine over items whose columns named by
// fetcher.Columns() page in on demand through pool. Fields the fetcher does
// not cover stay lazy, exactly as on a cold engine. The engine answers every
// query byte-identically (Fields/Rows/TotalMatched) to NewEngine(reg, items).
func NewEnginePaged[T any](reg *Registry[T], items []T, fetcher ColumnFetcher, pool *PagePool) (*Engine[T], error) {
	if fetcher == nil || pool == nil {
		return nil, fmt.Errorf("query: paged engine needs a fetcher and a pool")
	}
	e := NewEngine(reg, items)
	p := &enginePager[T]{fetcher: fetcher, pool: pool, slots: make([]*pagedSlot, len(reg.order))}
	for _, name := range fetcher.Columns() {
		ord, ok := e.ordinals[name]
		if !ok {
			return nil, fmt.Errorf("query: paged column %q is not registered", name)
		}
		if p.slots[ord] != nil {
			return nil, fmt.Errorf("query: duplicate paged column %q", name)
		}
		bytes := fetcher.ColumnBytes(name)
		if bytes <= 0 {
			return nil, fmt.Errorf("query: paged column %q has size %d, want > 0", name, bytes)
		}
		f := reg.byName[name]
		name := name
		s := &pagedSlot{name: name, bytes: bytes, colp: &e.cols[ord].col}
		s.fetch = func(ctx context.Context) (*column, error) {
			cd, err := fetcher.FetchColumn(ctx, name)
			if err != nil {
				return nil, err
			}
			c, err := importColumn(f.Dictionary, cd, len(items))
			if err != nil {
				// The frame checksum passed but the structure is inconsistent:
				// same trust verdict as a checksum failure.
				return nil, fmt.Errorf("%w: column %q: %v", ErrPageCorrupt, name, err)
			}
			return c, nil
		}
		s.rebuild = func() *column { return buildColumn(f, items, !e.uncompressed) }
		p.slots[ord] = s
	}
	e.pager = p
	return e, nil
}

// PageStats exposes the pool counters of a paged engine (zero stats on a
// fully-materialized engine).
func (e *Engine[T]) PageStats() PageStats {
	if e.pager == nil {
		return PageStats{}
	}
	return e.pager.pool.Stats()
}

// RetirePages drops the engine from its page pool: resident unpinned columns
// evict now, pinned ones when their scans finish. Epoch swaps call this on
// the outgoing engine so the budget belongs to the incoming one.
func (e *Engine[T]) RetirePages() {
	if e.pager != nil {
		e.pager.pool.retire(e.pager.slots)
	}
}

// filterOrds collects the registration ordinals of a compiled filter set.
func (e *Engine[T]) filterOrds(filters []compiledFilter[T], out []int) []int {
	for i := range filters {
		out = append(out, e.ordinals[filters[i].field.Name])
	}
	return out
}

// pinOrds pins every paged column in ords (deduplicated) for the duration of
// a request, paging absent ones in. On any failure it releases what it pinned
// and returns the error — a request never holds partial pins. The returned
// release must be called exactly once.
func (e *Engine[T]) pinOrds(ctx context.Context, ords []int) (release func(), err error) {
	p := e.pager
	if p == nil {
		return func() {}, nil
	}
	seen := make(map[int]bool, len(ords))
	pinned := make([]*pagedSlot, 0, len(ords))
	for _, ord := range ords {
		if seen[ord] {
			continue
		}
		seen[ord] = true
		s := p.slots[ord]
		if s == nil {
			continue // not paged: lazy build through columnFor
		}
		if err := p.pool.acquire(ctx, s); err != nil {
			for _, ps := range pinned {
				p.pool.release(ps)
			}
			return nil, err
		}
		pinned = append(pinned, s)
	}
	return func() {
		for _, ps := range pinned {
			p.pool.release(ps)
		}
	}, nil
}

// scanOrds is the full ordinal set a planned scan touches: filter columns
// (predicates, zone pruners), sort columns and output columns.
func (e *Engine[T]) scanOrds(pq *prepared[T]) []int {
	ords := make([]int, 0, len(pq.filters)+len(pq.sortOrds)+len(pq.outOrds))
	ords = e.filterOrds(pq.filters, ords)
	ords = append(ords, pq.sortOrds...)
	ords = append(ords, pq.outOrds...)
	return ords
}

// aggOrds is the full ordinal set a planned aggregation touches: request
// filters, group-by columns, each spec's value column and its where-filter
// columns.
func (e *Engine[T]) aggOrds(pa *preparedAgg[T]) []int {
	ords := make([]int, 0, len(pa.filters)+len(pa.groupOrds)+2*len(pa.specs))
	ords = e.filterOrds(pa.filters, ords)
	ords = append(ords, pa.groupOrds...)
	for i := range pa.specs {
		if pa.specs[i].ord >= 0 {
			ords = append(ords, pa.specs[i].ord)
		}
		ords = e.filterOrds(pa.specs[i].where, ords)
	}
	return ords
}

// transientColumn serves columnFor on a paged engine when the column is not
// resident (admin paths like ExportColumns that run unpinned): a one-off
// build from items, never installed or charged against the budget.
func (p *enginePager[T]) transientColumn(e *Engine[T], ord int) *column {
	f := e.reg.byName[e.reg.order[ord]]
	return buildColumn(f, e.items, !e.uncompressed)
}
