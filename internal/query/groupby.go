package query

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The planned grouped-aggregation executor: the request filters run through
// the same planner stage as a scan (posting lists, intersection, residual
// column scan), the matched rows are grouped in parallel per-chunk with the
// chunk partials merged in chunk order — so every group's row list is in
// ascending dataset order and groups appear in first-occurrence order,
// exactly as the oracle's sequential pass produces them — and the per-group
// cells compute over the typed columns, fanned out across CPUs group by
// group. Because each group's rows are visited in the same order the oracle
// visits them, even float sums are bit-identical, not merely close.

// colGroup is one group on the planned path.
type colGroup struct {
	firstRow int32 // first matched row, for group-key materialization
	rows     []int32
}

// aggregatePlanned is the default Aggregate executor. The match, group and
// per-group fold stages poll the context at chunk (respectively group)
// boundaries; a cancelled request joins every worker and returns ctx.Err().
func (e *Engine[T]) aggregatePlanned(ctx context.Context, pa *preparedAgg[T], start time.Time) (*Result, error) {
	matched, explain, err := e.planMatch(ctx, pa.filters)
	if err != nil {
		return nil, err
	}
	groups, err := e.groupRows(ctx, pa, matched)
	if err != nil {
		return nil, err
	}

	// Compile each spec's machinery once: the where-predicates and value
	// column are shared (read-only) by every group worker.
	cells := make([]*aggCellFn, len(pa.specs))
	for s := range pa.specs {
		cells[s] = e.compileAggCell(&pa.specs[s], len(matched))
	}

	cancel := newCanceler(ctx)
	rows := make([][]any, len(groups))
	fill := func(gi int) {
		g := groups[gi]
		out := make([]any, 0, len(pa.infos))
		for _, ord := range pa.groupOrds {
			out = append(out, e.columnFor(ord).typed(int(g.firstRow)))
		}
		for _, c := range cells {
			out = append(out, c.compute(g.rows))
		}
		rows[gi] = out
	}
	var cancelled atomic.Bool
	if len(matched) >= parallelThreshold && len(groups) > 1 {
		// Groups are independent (each writes only its slot), so fan them
		// out; group order is fixed before the fan-out, keeping the output
		// deterministic. Workers re-check cancellation before every group.
		workers := runtime.GOMAXPROCS(0)
		if workers > len(groups) {
			workers = len(groups)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for gi := range next {
					if cancel.hit() {
						cancelled.Store(true)
						continue // drain the channel so the feeder never blocks
					}
					fill(gi)
				}
			}()
		}
		for gi := range groups {
			next <- gi
		}
		close(next)
		wg.Wait()
	} else {
		for gi := range groups {
			if gi%16 == 0 && cancel.hit() {
				cancelled.Store(true)
				break
			}
			fill(gi)
		}
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}

	sortAggRows(rows, pa)
	if pa.limit > 0 && len(rows) > pa.limit {
		rows = rows[:pa.limit]
	}
	emitAggRows(rows)

	return &Result{
		Fields: pa.infos,
		Rows:   rows,
		Meta: Meta{
			Scanned:         explain.ResidualScanned,
			TotalMatched:    len(matched),
			Returned:        len(rows),
			QueryTimeMicros: time.Since(start).Microseconds(),
			Explain:         explain,
		},
	}, nil
}

// groupRows partitions the matched rows into groups keyed by the encoded
// group-by values: parallel per-chunk partial grouping above the scan
// threshold, merged in chunk order so group order (first occurrence) and
// per-group row order (ascending) match the oracle's sequential pass.
func (e *Engine[T]) groupRows(ctx context.Context, pa *preparedAgg[T], matched []int32) ([]*colGroup, error) {
	if len(pa.groupFields) == 0 {
		return []*colGroup{{rows: matched}}, nil
	}
	cancel := newCanceler(ctx)
	groupCols := make([]*column, len(pa.groupOrds))
	for i, ord := range pa.groupOrds {
		groupCols[i] = e.columnFor(ord)
	}

	// chunkGroups is one chunk's partial grouping: keys in first-occurrence
	// order plus the rows collected under each. nil marks a chunk abandoned
	// to cancellation.
	type chunkGroups struct {
		keys  []string
		index map[string]int
		rows  [][]int32
	}
	groupChunk := func(lo, hi int) *chunkGroups {
		ch := &chunkGroups{index: map[string]int{}}
		var buf []byte
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelStride == 0 && cancel.hit() {
				return nil
			}
			row := int(matched[i])
			buf = buf[:0]
			for _, col := range groupCols {
				buf = col.appendKey(buf, row)
			}
			gi, ok := ch.index[string(buf)]
			if !ok {
				gi = len(ch.keys)
				key := string(buf)
				ch.index[key] = gi
				ch.keys = append(ch.keys, key)
				ch.rows = append(ch.rows, nil)
			}
			ch.rows[gi] = append(ch.rows[gi], matched[i])
		}
		return ch
	}

	var chunks []*chunkGroups
	var started int
	if len(matched) < parallelThreshold {
		started = 1
		chunks = []*chunkGroups{groupChunk(0, len(matched))}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(matched) {
			workers = len(matched)
		}
		chunk := (len(matched) + workers - 1) / workers
		chunks = make([]*chunkGroups, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(matched) {
				hi = len(matched)
			}
			if lo >= hi {
				break
			}
			started++
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				chunks[w] = groupChunk(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
	}
	for _, ch := range chunks[:started] {
		if ch == nil {
			return nil, ctx.Err()
		}
	}

	// Deterministic merge: chunks in chunk order, keys in chunk-local
	// first-occurrence order. Concatenating each group's per-chunk row lists
	// in that order reassembles ascending dataset order.
	index := map[string]int{}
	var groups []*colGroup
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		for ki, key := range ch.keys {
			gi, ok := index[key]
			if !ok {
				gi = len(groups)
				index[key] = gi
				groups = append(groups, &colGroup{firstRow: ch.rows[ki][0]})
			}
			groups[gi].rows = append(groups[gi].rows, ch.rows[ki]...)
		}
	}
	return groups, nil
}

// aggCellFn computes one aggregate cell from a group's row list over the
// typed columns. compute is safe for concurrent calls on distinct groups.
type aggCellFn struct {
	compute func(rows []int32) any
}

// compileAggCell builds the typed per-group evaluator of one spec — the
// columnar mirror of oracleCell, computing the same arithmetic in the same
// row order.
func (e *Engine[T]) compileAggCell(ca *compiledAgg[T], totalMatched int) *aggCellFn {
	preds := make([]func(int) bool, len(ca.where))
	for i := range ca.where {
		preds[i] = e.predicate(ca.where[i])
	}
	pass := func(row int) bool {
		for _, p := range preds {
			if !p(row) {
				return false
			}
		}
		return true
	}
	var col *column
	if ca.ord >= 0 {
		col = e.columnFor(ca.ord)
	}

	switch ca.op {
	case AggCount:
		return &aggCellFn{compute: func(rows []int32) any {
			n := 0
			for _, r := range rows {
				row := int(r)
				if !pass(row) {
					continue
				}
				if col != nil && col.nulls.get(row) {
					continue
				}
				n++
			}
			return int64(n)
		}}
	case AggShare:
		return &aggCellFn{compute: func(rows []int32) any {
			n := 0
			for _, r := range rows {
				if pass(int(r)) {
					n++
				}
			}
			if totalMatched == 0 {
				return float64(0)
			}
			return float64(n) / float64(totalMatched)
		}}
	case AggSum, AggMean:
		mean := ca.op == AggMean
		kind := ca.field.Kind
		return &aggCellFn{compute: func(rows []int32) any {
			var sumInt int64
			var sumFloat float64
			n := 0
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				switch kind {
				case KindInt:
					sumInt += col.ints[row]
				case KindFloat:
					sumFloat += col.floats[row]
				case KindBool:
					if col.bools[row] {
						sumInt++
					}
				}
				n++
			}
			if n == 0 {
				return nil
			}
			if !mean {
				if kind == KindFloat {
					return sumFloat
				}
				return sumInt
			}
			if kind == KindFloat {
				return sumFloat / float64(n)
			}
			return float64(sumInt) / float64(n)
		}}
	case AggMin, AggMax:
		min := ca.op == AggMin
		return &aggCellFn{compute: func(rows []int32) any {
			best := -1
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				if best < 0 {
					best = row
					continue
				}
				c := col.compareRows(row, best)
				if (min && c < 0) || (!min && c > 0) {
					best = row
				}
			}
			if best < 0 {
				return nil
			}
			return col.typed(best)
		}}
	case AggDistinct:
		return &aggCellFn{compute: func(rows []int32) any {
			seen := map[string]bool{}
			var buf []byte
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				buf = col.appendKey(buf[:0], row)
				if !seen[string(buf)] {
					seen[string(buf)] = true
				}
			}
			return int64(len(seen))
		}}
	case AggTopK:
		kind := ca.field.Kind
		k := ca.k
		return &aggCellFn{compute: func(rows []int32) any {
			type entry struct {
				row   int // first row carrying the value
				count int
			}
			index := map[string]int{}
			var entries []entry
			var buf []byte
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				buf = col.appendKey(buf[:0], row)
				ei, ok := index[string(buf)]
				if !ok {
					ei = len(entries)
					index[string(buf)] = ei
					entries = append(entries, entry{row: row})
				}
				entries[ei].count++
			}
			if len(entries) == 0 {
				return nil
			}
			return renderTopK(len(entries), k,
				func(i, j int) int {
					if entries[i].count != entries[j].count {
						if entries[i].count > entries[j].count {
							return -1
						}
						return 1
					}
					if c := col.compareRows(entries[i].row, entries[j].row); c != 0 {
						return c
					}
					return entries[i].row - entries[j].row
				},
				func(i int) (string, int) {
					return formatScalar(kind, col.typed(entries[i].row)), entries[i].count
				})
		}}
	}
	return &aggCellFn{compute: func([]int32) any { return nil }}
}

// renderTopK sorts n ranking entries by cmp, keeps k and renders them as
// "value:count, ..." — the shared tail of both executors' topk cells.
func renderTopK(n, k int, cmp func(i, j int) int, get func(i int) (string, int)) string {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cmp(order[a], order[b]) < 0 })
	if k < len(order) {
		order = order[:k]
	}
	var sb strings.Builder
	for i, e := range order {
		if i > 0 {
			sb.WriteString(", ")
		}
		v, c := get(e)
		sb.WriteString(v)
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// sortAggRows orders the typed output rows by the request's sort keys: the
// scan comparator's null-last semantics per key, ties keeping the incoming
// (first-occurrence) group order via the stable sort.
func sortAggRows[T any](rows [][]any, pa *preparedAgg[T]) {
	if len(pa.sortKeys) == 0 {
		return
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for k, ci := range pa.sortCols {
			av, bv := rows[a][ci], rows[b][ci]
			c := compareNullable(pa.sortKinds[k], av, av == nil, bv, bv == nil, pa.sortKeys[k].Desc)
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// emitAggRows converts typed cells to their JSON-facing representation in
// place (time.Time to RFC 3339, everything else passing through).
func emitAggRows(rows [][]any) {
	for _, row := range rows {
		for i, v := range row {
			if v != nil {
				row[i] = emitValue(v)
			}
		}
	}
}
