package query

import (
	"context"
	"math/bits"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The planned grouped-aggregation executor: the request filters run through
// the same planner stage as a scan (posting lists, intersection, residual
// column scan), the matched rows are grouped in parallel per-chunk with the
// chunk partials merged in chunk order — so every group's row list is in
// ascending dataset order and groups appear in first-occurrence order,
// exactly as the oracle's sequential pass produces them — and the per-group
// cells compute over the typed columns, fanned out across CPUs group by
// group. Because each group's rows are visited in the same order the oracle
// visits them, even float sums are bit-identical, not merely close.

// colGroup is one group on the planned path.
type colGroup struct {
	firstRow int32 // first matched row, for group-key materialization
	rows     []int32
}

// aggregatePlanned is the default Aggregate executor. The match, group and
// per-group fold stages poll the context at chunk (respectively group)
// boundaries; a cancelled request joins every worker and returns ctx.Err().
func (e *Engine[T]) aggregatePlanned(ctx context.Context, pa *preparedAgg[T], start time.Time) (*Result, error) {
	matched, explain, err := e.planMatch(ctx, pa.filters)
	if err != nil {
		return nil, err
	}
	groups, err := e.groupRows(ctx, pa, matched)
	if err != nil {
		return nil, err
	}

	// Compile each spec's machinery once: the where-predicates and value
	// column are shared (read-only) by every group worker.
	cells := make([]*aggCellFn, len(pa.specs))
	for s := range pa.specs {
		cells[s] = e.compileAggCell(&pa.specs[s], len(matched))
	}

	cancel := newCanceler(ctx)
	rows := make([][]any, len(groups))
	fill := func(gi int) {
		g := groups[gi]
		out := make([]any, 0, len(pa.infos))
		for _, ord := range pa.groupOrds {
			out = append(out, e.columnFor(ord).typed(int(g.firstRow)))
		}
		for _, c := range cells {
			out = append(out, c.compute(g.rows))
		}
		rows[gi] = out
	}
	var cancelled atomic.Bool
	if len(matched) >= parallelThreshold && len(groups) > 1 {
		// Groups are independent (each writes only its slot), so fan them
		// out; group order is fixed before the fan-out, keeping the output
		// deterministic. Workers re-check cancellation before every group.
		workers := runtime.GOMAXPROCS(0)
		if workers > len(groups) {
			workers = len(groups)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for gi := range next {
					if cancel.hit() {
						cancelled.Store(true)
						continue // drain the channel so the feeder never blocks
					}
					fill(gi)
				}
			}()
		}
		for gi := range groups {
			next <- gi
		}
		close(next)
		wg.Wait()
	} else {
		for gi := range groups {
			if gi%16 == 0 && cancel.hit() {
				cancelled.Store(true)
				break
			}
			fill(gi)
		}
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}

	sortAggRows(rows, pa)
	if pa.limit > 0 && len(rows) > pa.limit {
		rows = rows[:pa.limit]
	}
	emitAggRows(rows)

	return &Result{
		Fields: pa.infos,
		Rows:   rows,
		Meta: Meta{
			Scanned:         explain.ResidualScanned,
			TotalMatched:    len(matched),
			Returned:        len(rows),
			QueryTimeMicros: time.Since(start).Microseconds(),
			Explain:         explain,
		},
	}, nil
}

// groupRows partitions the matched rows into groups keyed by the encoded
// group-by values: parallel per-chunk partial grouping above the scan
// threshold, merged in chunk order so group order (first occurrence) and
// per-group row order (ascending) match the oracle's sequential pass.
func (e *Engine[T]) groupRows(ctx context.Context, pa *preparedAgg[T], matched []int32) ([]*colGroup, error) {
	if len(pa.groupFields) == 0 {
		return []*colGroup{{rows: matched}}, nil
	}
	cancel := newCanceler(ctx)
	groupCols := make([]*column, len(pa.groupOrds))
	for i, ord := range pa.groupOrds {
		groupCols[i] = e.columnFor(ord)
	}
	if keyAt, keyBits, ok := packedKeyer(groupCols); ok {
		return groupRowsPacked(ctx, cancel, matched, keyAt, keyBits)
	}

	// chunkGroups is one chunk's partial grouping: keys in first-occurrence
	// order plus the rows collected under each. nil marks a chunk abandoned
	// to cancellation.
	type chunkGroups struct {
		keys  []string
		index map[string]int
		rows  [][]int32
	}
	groupChunk := func(lo, hi int) *chunkGroups {
		ch := &chunkGroups{index: map[string]int{}}
		var buf []byte
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelStride == 0 && cancel.hit() {
				return nil
			}
			row := int(matched[i])
			buf = buf[:0]
			for _, col := range groupCols {
				buf = col.appendKey(buf, row)
			}
			gi, ok := ch.index[string(buf)]
			if !ok {
				gi = len(ch.keys)
				key := string(buf)
				ch.index[key] = gi
				ch.keys = append(ch.keys, key)
				ch.rows = append(ch.rows, nil)
			}
			ch.rows[gi] = append(ch.rows[gi], matched[i])
		}
		return ch
	}

	var chunks []*chunkGroups
	var started int
	if len(matched) < parallelThreshold {
		started = 1
		chunks = []*chunkGroups{groupChunk(0, len(matched))}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(matched) {
			workers = len(matched)
		}
		chunk := (len(matched) + workers - 1) / workers
		chunks = make([]*chunkGroups, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(matched) {
				hi = len(matched)
			}
			if lo >= hi {
				break
			}
			started++
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				chunks[w] = groupChunk(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
	}
	for _, ch := range chunks[:started] {
		if ch == nil {
			return nil, ctx.Err()
		}
	}

	// Deterministic merge: chunks in chunk order, keys in chunk-local
	// first-occurrence order. Concatenating each group's per-chunk row lists
	// in that order reassembles ascending dataset order.
	index := map[string]int{}
	var groups []*colGroup
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		for ki, key := range ch.keys {
			gi, ok := index[key]
			if !ok {
				gi = len(groups)
				index[key] = gi
				groups = append(groups, &colGroup{firstRow: ch.rows[ki][0]})
			}
			groups[gi].rows = append(groups[gi].rows, ch.rows[ki]...)
		}
	}
	return groups, nil
}

// packedKeyer returns a per-row group-key packer when every group column is
// dictionary-encoded and the code widths fit one uint64: each column
// contributes bits.Len(len(dict)) bits holding 0 for null or code+1
// otherwise, so distinct value tuples map to distinct keys. Grouping then
// hashes machine words instead of encoded byte strings — the dictionary
// payoff for group-by. keyBits is the total packed width (every key is
// < 1<<keyBits), letting the caller pick a dense table over a hash map when
// the key space is small. ok is false (caller falls back to byte keys) when
// any column is plain or the widths overflow.
func packedKeyer(groupCols []*column) (keyAt func(int) uint64, keyBits int, ok bool) {
	shift := 0
	shifts := make([]int, len(groupCols))
	for i, col := range groupCols {
		if col.dict == nil {
			return nil, 0, false
		}
		shifts[i] = shift
		shift += bits.Len(uint(len(col.dict)))
	}
	if shift > 64 {
		return nil, 0, false
	}
	return func(row int) uint64 {
		var key uint64
		for i, col := range groupCols {
			if !col.nulls.get(row) {
				key |= (uint64(col.codes[row]) + 1) << shifts[i]
			}
		}
		return key
	}, shift, true
}

// denseKeyBits caps the packed key width for which grouping uses a direct
// slot table (one int32 per possible key, zeroed per chunk) instead of a
// hash map. 16 bits is a 256 KiB table per worker — cheap to clear relative
// to any chunk large enough to want it, and covers every realistic
// dictionary group-by (e.g. market × category packs into ~10 bits).
const denseKeyBits = 16

// groupChunkBounds splits matched into the contiguous chunks grouping
// parallelizes over: one chunk below parallelThreshold, else one per
// GOMAXPROCS worker. Both grouping passes must use identical bounds — the
// chunk-order merge is what makes parallel group order deterministic.
func groupChunkBounds(n int) [][2]int {
	if n < parallelThreshold {
		return [][2]int{{0, n}}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var bounds [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	return bounds
}

// groupRowsPacked is groupRows' fast path over packed uint64 group keys:
// identical chunking, identical chunk-order merge, so group order
// (first occurrence) and per-group row order (ascending) are bit-identical
// to the byte-key path and the oracle. Small key spaces take the dense
// counting-sort path; wide keys group through a uint64 map per chunk. Both
// produce the same output, so the choice never shows in results.
func groupRowsPacked(ctx context.Context, cancel canceler, matched []int32, keyAt func(int) uint64, keyBits int) ([]*colGroup, error) {
	if keyBits <= denseKeyBits && 1<<keyBits <= 8*len(matched) {
		return groupRowsPackedDense(ctx, cancel, matched, keyAt, keyBits)
	}
	type chunkGroups struct {
		keys []uint64
		rows [][]int32
	}
	groupChunk := func(lo, hi int) *chunkGroups {
		index := map[uint64]int32{}
		ch := &chunkGroups{}
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelStride == 0 && cancel.hit() {
				return nil
			}
			key := keyAt(int(matched[i]))
			gi, ok := index[key]
			if !ok {
				gi = int32(len(ch.keys))
				index[key] = gi
				ch.keys = append(ch.keys, key)
				ch.rows = append(ch.rows, nil)
			}
			ch.rows[gi] = append(ch.rows[gi], matched[i])
		}
		return ch
	}

	var chunks []*chunkGroups
	var started int
	if len(matched) < parallelThreshold {
		started = 1
		chunks = []*chunkGroups{groupChunk(0, len(matched))}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(matched) {
			workers = len(matched)
		}
		chunk := (len(matched) + workers - 1) / workers
		chunks = make([]*chunkGroups, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(matched) {
				hi = len(matched)
			}
			if lo >= hi {
				break
			}
			started++
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				chunks[w] = groupChunk(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
	}
	for _, ch := range chunks[:started] {
		if ch == nil {
			return nil, ctx.Err()
		}
	}

	index := map[uint64]int{}
	var groups []*colGroup
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		for ki, key := range ch.keys {
			gi, ok := index[key]
			if !ok {
				gi = len(groups)
				index[key] = gi
				groups = append(groups, &colGroup{firstRow: ch.rows[ki][0]})
			}
			groups[gi].rows = append(groups[gi].rows, ch.rows[ki]...)
		}
	}
	return groups, nil
}

// groupRowsPackedDense groups through a two-pass counting sort: pass one
// counts rows per packed key per chunk (a dense int32 table — no hashing),
// the merge turns counts into exact offsets inside one shared backing array,
// and pass two writes each row straight to its slot. No per-group append
// growth, no merge copying — the layout every aggregate cell then walks is a
// single contiguous allocation.
//
// Output is bit-identical to the map paths: the merge visits chunks in order
// and each chunk's keys in first-occurrence order, which IS global
// first-occurrence order (a key's first chunk sees its globally first row),
// and the per-chunk write cursors stack chunk 0's rows before chunk 1's, so
// per-group rows stay ascending.
func groupRowsPackedDense(ctx context.Context, cancel canceler, matched []int32, keyAt func(int) uint64, keyBits int) ([]*colGroup, error) {
	// Pass one records every row's key in scratch (keyBits <= 16, so uint16
	// holds any key) — pass two replays it with a plain load instead of
	// re-deriving codes from the dictionary columns.
	scratch := make([]uint16, len(matched))
	type chunkCounts struct {
		keys   []uint64 // first-occurrence order within the chunk
		counts []int32  // dense per-key row count
	}
	countChunk := func(lo, hi int) *chunkCounts {
		ch := &chunkCounts{counts: make([]int32, 1<<keyBits)}
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelStride == 0 && cancel.hit() {
				return nil
			}
			key := keyAt(int(matched[i]))
			scratch[i] = uint16(key)
			if ch.counts[key] == 0 {
				ch.keys = append(ch.keys, key)
			}
			ch.counts[key]++
		}
		return ch
	}

	bounds := groupChunkBounds(len(matched))
	chunks := make([]*chunkCounts, len(bounds))
	if len(bounds) == 1 {
		chunks[0] = countChunk(bounds[0][0], bounds[0][1])
	} else {
		var wg sync.WaitGroup
		for w, b := range bounds {
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				chunks[w] = countChunk(lo, hi)
			}(w, b[0], b[1])
		}
		wg.Wait()
	}
	for _, ch := range chunks {
		if ch == nil {
			return nil, ctx.Err()
		}
	}

	// Merge: assign group indexes in global first-occurrence order, then lay
	// the groups out back to back in one backing array, with a write cursor
	// per (chunk, group) so chunks fill disjoint ranges concurrently.
	slot := make([]int32, 1<<keyBits) // 0 = empty, else group index + 1
	var keys []uint64
	for _, ch := range chunks {
		for _, key := range ch.keys {
			if slot[key] == 0 {
				keys = append(keys, key)
				slot[key] = int32(len(keys))
			}
		}
	}
	starts := make([]int32, len(keys)+1)
	cursors := make([][]int32, len(chunks))
	for w := range chunks {
		cursors[w] = make([]int32, len(keys))
	}
	for g, key := range keys {
		pos := starts[g]
		for w, ch := range chunks {
			cursors[w][g] = pos
			pos += ch.counts[key]
		}
		starts[g+1] = pos
	}

	backing := make([]int32, len(matched))
	fillChunk := func(w, lo, hi int) bool {
		cur := cursors[w]
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelStride == 0 && cancel.hit() {
				return false
			}
			g := slot[scratch[i]] - 1
			backing[cur[g]] = matched[i]
			cur[g]++
		}
		return true
	}
	filled := make([]bool, len(bounds))
	if len(bounds) == 1 {
		filled[0] = fillChunk(0, bounds[0][0], bounds[0][1])
	} else {
		var wg sync.WaitGroup
		for w, b := range bounds {
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				filled[w] = fillChunk(w, lo, hi)
			}(w, b[0], b[1])
		}
		wg.Wait()
	}
	for _, ok := range filled {
		if !ok {
			return nil, ctx.Err()
		}
	}

	groups := make([]*colGroup, len(keys))
	for g := range groups {
		rows := backing[starts[g]:starts[g+1]:starts[g+1]]
		groups[g] = &colGroup{firstRow: rows[0], rows: rows}
	}
	return groups, nil
}

// aggCellFn computes one aggregate cell from a group's row list over the
// typed columns. compute is safe for concurrent calls on distinct groups.
type aggCellFn struct {
	compute func(rows []int32) any
}

// compileAggCell builds the typed per-group evaluator of one spec — the
// columnar mirror of oracleCell, computing the same arithmetic in the same
// row order.
func (e *Engine[T]) compileAggCell(ca *compiledAgg[T], totalMatched int) *aggCellFn {
	preds := make([]func(int) bool, len(ca.where))
	for i := range ca.where {
		preds[i] = e.predicate(ca.where[i])
	}
	pass := func(row int) bool {
		for _, p := range preds {
			if !p(row) {
				return false
			}
		}
		return true
	}
	var col *column
	if ca.ord >= 0 {
		col = e.columnFor(ca.ord)
	}

	switch ca.op {
	case AggCount:
		return &aggCellFn{compute: func(rows []int32) any {
			n := 0
			for _, r := range rows {
				row := int(r)
				if !pass(row) {
					continue
				}
				if col != nil && col.nulls.get(row) {
					continue
				}
				n++
			}
			return int64(n)
		}}
	case AggShare:
		return &aggCellFn{compute: func(rows []int32) any {
			n := 0
			for _, r := range rows {
				if pass(int(r)) {
					n++
				}
			}
			if totalMatched == 0 {
				return float64(0)
			}
			return float64(n) / float64(totalMatched)
		}}
	case AggSum, AggMean:
		mean := ca.op == AggMean
		kind := ca.field.Kind
		return &aggCellFn{compute: func(rows []int32) any {
			var sumInt int64
			var sumFloat float64
			n := 0
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				switch kind {
				case KindInt:
					sumInt += col.ints[row]
				case KindFloat:
					sumFloat += col.floats[row]
				case KindBool:
					if col.bools[row] {
						sumInt++
					}
				}
				n++
			}
			if n == 0 {
				return nil
			}
			if !mean {
				if kind == KindFloat {
					return sumFloat
				}
				return sumInt
			}
			if kind == KindFloat {
				return sumFloat / float64(n)
			}
			return float64(sumInt) / float64(n)
		}}
	case AggMin, AggMax:
		min := ca.op == AggMin
		return &aggCellFn{compute: func(rows []int32) any {
			best := -1
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				if best < 0 {
					best = row
					continue
				}
				c := col.compareRows(row, best)
				if (min && c < 0) || (!min && c > 0) {
					best = row
				}
			}
			if best < 0 {
				return nil
			}
			return col.typed(best)
		}}
	case AggDistinct:
		if col.dict != nil {
			// Distinct values are distinct codes: a flat bool table over the
			// dictionary replaces the map of encoded keys.
			return &aggCellFn{compute: func(rows []int32) any {
				seen := make([]bool, len(col.dict))
				n := 0
				for _, r := range rows {
					row := int(r)
					if !pass(row) || col.nulls.get(row) {
						continue
					}
					if !seen[col.codes[row]] {
						seen[col.codes[row]] = true
						n++
					}
				}
				return int64(n)
			}}
		}
		return &aggCellFn{compute: func(rows []int32) any {
			seen := map[string]bool{}
			var buf []byte
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				buf = col.appendKey(buf[:0], row)
				if !seen[string(buf)] {
					seen[string(buf)] = true
				}
			}
			return int64(len(seen))
		}}
	case AggTopK:
		kind := ca.field.Kind
		k := ca.k
		if col.dict != nil {
			// Count per dictionary code; code order is value order, so the
			// ranking comparator needs no string compares, and the first-row
			// tiebreak is unreachable (one entry per distinct value).
			return &aggCellFn{compute: func(rows []int32) any {
				counts := make([]int, len(col.dict))
				for _, r := range rows {
					row := int(r)
					if !pass(row) || col.nulls.get(row) {
						continue
					}
					counts[col.codes[row]]++
				}
				var live []int
				for code, c := range counts {
					if c > 0 {
						live = append(live, code)
					}
				}
				if len(live) == 0 {
					return nil
				}
				return renderTopK(len(live), k,
					func(i, j int) int {
						ci, cj := counts[live[i]], counts[live[j]]
						if ci != cj {
							if ci > cj {
								return -1
							}
							return 1
						}
						return live[i] - live[j]
					},
					func(i int) (string, int) { return col.dict[live[i]], counts[live[i]] })
			}}
		}
		return &aggCellFn{compute: func(rows []int32) any {
			type entry struct {
				row   int // first row carrying the value
				count int
			}
			index := map[string]int{}
			var entries []entry
			var buf []byte
			for _, r := range rows {
				row := int(r)
				if !pass(row) || col.nulls.get(row) {
					continue
				}
				buf = col.appendKey(buf[:0], row)
				ei, ok := index[string(buf)]
				if !ok {
					ei = len(entries)
					index[string(buf)] = ei
					entries = append(entries, entry{row: row})
				}
				entries[ei].count++
			}
			if len(entries) == 0 {
				return nil
			}
			return renderTopK(len(entries), k,
				func(i, j int) int {
					if entries[i].count != entries[j].count {
						if entries[i].count > entries[j].count {
							return -1
						}
						return 1
					}
					if c := col.compareRows(entries[i].row, entries[j].row); c != 0 {
						return c
					}
					return entries[i].row - entries[j].row
				},
				func(i int) (string, int) {
					return formatScalar(kind, col.typed(entries[i].row)), entries[i].count
				})
		}}
	}
	return &aggCellFn{compute: func([]int32) any { return nil }}
}

// renderTopK sorts n ranking entries by cmp, keeps k and renders them as
// "value:count, ..." — the shared tail of both executors' topk cells.
func renderTopK(n, k int, cmp func(i, j int) int, get func(i int) (string, int)) string {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cmp(order[a], order[b]) < 0 })
	if k < len(order) {
		order = order[:k]
	}
	var sb strings.Builder
	for i, e := range order {
		if i > 0 {
			sb.WriteString(", ")
		}
		v, c := get(e)
		sb.WriteString(v)
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// sortAggRows orders the typed output rows by the request's sort keys: the
// scan comparator's null-last semantics per key, ties keeping the incoming
// (first-occurrence) group order via the stable sort.
func sortAggRows[T any](rows [][]any, pa *preparedAgg[T]) {
	if len(pa.sortKeys) == 0 {
		return
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for k, ci := range pa.sortCols {
			av, bv := rows[a][ci], rows[b][ci]
			c := compareNullable(pa.sortKinds[k], av, av == nil, bv, bv == nil, pa.sortKeys[k].Desc)
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// emitAggRows converts typed cells to their JSON-facing representation in
// place (time.Time to RFC 3339, everything else passing through).
func emitAggRows(rows [][]any) {
	for _, row := range rows {
		for i, v := range row {
			if v != nil {
				row[i] = emitValue(v)
			}
		}
	}
}
