// Package query is a GraphQL-style scan engine over the enriched crawl
// dataset: the caller specifies exactly which fields to return, which filters
// to apply, how to sort and how many rows to keep, and the engine executes
// the scan and returns structured rows plus execution metadata.
//
// The engine is deliberately a dumb pipe: it knows nothing about the paper's
// tables, market semantics or strategy — consumers (the fixed analyses in
// internal/analysis, the /api/scan HTTP endpoint in internal/market, the
// scan command) bring that context. Fields are contributed by a caller-built
// Registry of typed extractors, so the engine itself has no dependency on
// the dataset representation; analysis.Dataset registers ~40 fields across
// the metadata, apk and enrichment categories.
//
// A query is a single JSON object:
//
//	{
//	  "fields":  ["package", "market", "av_positives"],
//	  "filters": [{"field": "av_positives", "op": ">=", "value": 10},
//	              {"field": "market_chinese", "op": "==", "value": true}],
//	  "sort":    [{"field": "av_positives", "desc": true},
//	              {"field": "package"}],
//	  "limit":   25
//	}
//
// Null semantics follow SQL: a comparison against a null (missing) value
// never matches, null-ness is tested explicitly with the is_null operator,
// and nulls order after every non-null value under both sort directions.
//
// # Execution and storage
//
// Execution is columnar: fields materialize lazily into typed column slices
// with null bitmaps, hot filter columns (a Registry.MarkIndexable hint) get
// secondary indexes, and a planner turns each filter into either an index
// lookup or a residual predicate over the surviving candidates. Storage is
// compressed where it pays, with a bail-out to the plain layout everywhere
// it would not: low-cardinality string columns (a Registry.MarkDictionary
// hint) re-encode as sorted dictionaries plus per-row codes, their posting
// lists become roaring-style compressed bitmaps (array or dense containers
// per 65536-row chunk), every column splits into fixed-size segments with
// per-segment min/max zone maps that let full scans skip segments a filter
// provably cannot match, and all-dictionary group-bys pack their keys into
// single machine words. NewEngineUncompressed builds the same engine with
// compression disabled, as a baseline for benchmarks and equivalence tests.
//
// # Determinism contract
//
// Every execution path — planned or oracle, compressed or uncompressed,
// serial or parallel — returns byte-identical results for the same query
// over the same engine: same rows, same order, same metadata counts, float
// aggregates folded in the same dataset order so even their bit patterns
// agree. Scan has ScanOracle and Aggregate has AggregateOracle, the kept
// row-at-a-time reference implementations the test suite holds the planner
// to. Engines are immutable once built and safe for concurrent use.
package query

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Kind is the value type of a field. Every extracted value normalizes to the
// Go representation listed next to its kind.
type Kind string

// Field kinds.
const (
	KindString Kind = "string" // string
	KindInt    Kind = "int"    // int64
	KindFloat  Kind = "float"  // float64
	KindBool   Kind = "bool"   // bool
	KindTime   Kind = "time"   // time.Time, emitted as RFC 3339
)

// FieldInfo describes one registered field for introspection (the
// /api/scan/fields endpoint and the scan command's -fields listing).
type FieldInfo struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Kind     Kind   `json:"kind"`
	Doc      string `json:"doc,omitempty"`
	// Nullable marks fields that can be missing on some rows (for example
	// every apk-category field is null on listings whose APK failed to
	// parse).
	Nullable bool `json:"nullable,omitempty"`
	// Indexable marks fields the planner may answer through a secondary
	// index (hash posting lists for == / in, a sorted index for ranges)
	// instead of scanning every row.
	Indexable bool `json:"indexable,omitempty"`
	// Dictionary marks string fields hinted for dictionary encoding (int
	// codes into a sorted dictionary, bitmap posting lists when also
	// Indexable). A hint, not a guarantee: high-cardinality columns fall
	// back to the plain layout with identical results.
	Dictionary bool `json:"dictionary,omitempty"`
}

// Op is a filter operator.
type Op string

// Filter operators. Ordering operators apply to int, float, string and time
// fields; contains applies to string fields only; in accepts a list of
// values of the field's kind; is_null applies to every field.
const (
	OpEq       Op = "=="
	OpNe       Op = "!="
	OpLt       Op = "<"
	OpLe       Op = "<="
	OpGt       Op = ">"
	OpGe       Op = ">="
	OpIn       Op = "in"
	OpContains Op = "contains"
	OpIsNull   Op = "is_null"
)

// Filter is one predicate; a query's filters are conjunctive (AND).
type Filter struct {
	Field string `json:"field"`
	Op    Op     `json:"op"`
	// Value is the comparison operand: a scalar for the ordering operators,
	// a list for in, a bool for is_null (omitted means true: "is null").
	Value any `json:"value,omitempty"`
}

// SortKey orders results by one field; earlier keys dominate. Rows with a
// null key value order after all non-null rows regardless of direction, and
// ties preserve dataset order (the sort is stable).
type SortKey struct {
	Field string `json:"field"`
	Desc  bool   `json:"desc,omitempty"`
}

// Query is one scan request.
type Query struct {
	// Fields lists the columns to return, in order. Empty means every
	// registered field in registration order.
	Fields  []string  `json:"fields"`
	Filters []Filter  `json:"filters,omitempty"`
	Sort    []SortKey `json:"sort,omitempty"`
	// Limit caps the returned rows; 0 means no cap. TotalMatched in the
	// result meta always counts every match regardless of the limit.
	Limit int `json:"limit,omitempty"`
}

// Explain describes how the planner executed one scan; it is attached to
// Meta on the planned (default) execution path and absent on the oracle
// path.
type Explain struct {
	// IndexUsed names the secondary indexes the planner consulted, e.g.
	// "bitmap(market)" (dictionary-encoded equality), "hash(market_chinese)"
	// or "hash(flagged)+sorted(av_positives)". Empty when the scan fell back
	// to a full column scan.
	IndexUsed string `json:"index_used,omitempty"`
	// DatasetRows is the total dataset size — what Meta.Scanned always
	// reported before the planner existed — so clients can still compute
	// selectivity when indexes prune the scan.
	DatasetRows int `json:"dataset_rows"`
	// Candidates is the number of rows entering the scan stage: the size of
	// the index posting-list intersection, or DatasetRows when no index
	// applied.
	Candidates int `json:"candidates"`
	// ResidualScanned is the number of rows that had at least one residual
	// (non-indexed) predicate evaluated against them: 0 when the indexes
	// answered the filters outright, Candidates otherwise — shrunk further
	// by whole segments the zone maps skipped on a full scan (see
	// SegmentRowsScanned).
	ResidualScanned int `json:"residual_scanned"`
	// SegmentsSkipped / SegmentsScanned count the fixed-size column segments
	// a full scan skipped via zone maps versus actually walked. Both are
	// zero when zone pruning did not run: on uncompressed engines, when
	// posting lists already narrowed the scan to candidates, or when no
	// filter had a usable zone rule.
	SegmentsSkipped int `json:"segments_skipped,omitempty"`
	SegmentsScanned int `json:"segments_scanned,omitempty"`
	// SegmentRowsSkipped / SegmentRowsScanned are the same tallies in rows.
	// When zone pruning ran, skipped + scanned rows always sum to
	// DatasetRows: every row is either provably excluded by its segment's
	// zone map or evaluated.
	SegmentRowsSkipped int `json:"segment_rows_skipped,omitempty"`
	SegmentRowsScanned int `json:"segment_rows_scanned,omitempty"`
}

// Meta is the execution metadata attached to every result.
type Meta struct {
	// Scanned is the number of rows the engine actually evaluated
	// predicates against. On a full scan with filters this is the dataset
	// size (the pre-planner behaviour); when the planner answers filters
	// from secondary indexes it shrinks to the rows the residual predicates
	// touched, and a query whose filters were answered entirely by indexes
	// (or that has no filters) reports 0. The old meaning of this field —
	// the full dataset size — is preserved in Explain.DatasetRows, and the
	// row count that entered the scan stage in Explain.Candidates.
	Scanned int `json:"scanned"`
	// TotalMatched counts every row passing the filters, before the limit.
	TotalMatched int `json:"total_matched"`
	// Returned is len(Rows) after sorting and limiting.
	Returned int `json:"returned"`
	// QueryTimeMicros is the wall-clock execution time in microseconds.
	QueryTimeMicros int64 `json:"query_time_us"`
	// Explain reports the planner's decisions (index choice, candidate and
	// residual row counts); nil on the oracle execution path.
	Explain *Explain `json:"explain,omitempty"`
}

// Result is the outcome of one scan: the requested columns, the row values
// (one slice per row, aligned with Fields; nil marks a null) and the meta.
type Result struct {
	Fields []FieldInfo `json:"fields"`
	Rows   [][]any     `json:"rows"`
	Meta   Meta        `json:"meta"`
}

// Errors returned by ParseQuery and Scan.
var (
	ErrUnknownField = errors.New("query: unknown field")
	ErrBadOp        = errors.New("query: operator not valid for field kind")
	ErrBadValue     = errors.New("query: filter value not valid for field kind")
	ErrBadLimit     = errors.New("query: negative limit")
	ErrEmptyQuery   = errors.New("query: empty query body")
)

// maxQueryBytes bounds the accepted query document; a scan query is a small
// hand- or machine-written object, never megabytes.
const maxQueryBytes = 1 << 20

// ParseQuery decodes a JSON query document, rejecting unknown keys so typos
// ("filter" for "filters") fail loudly instead of silently matching
// everything.
func ParseQuery(r io.Reader) (Query, error) {
	var q Query
	dec := json.NewDecoder(io.LimitReader(r, maxQueryBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		if errors.Is(err, io.EOF) {
			return q, ErrEmptyQuery
		}
		return q, fmt.Errorf("query: parse: %w", err)
	}
	if dec.More() {
		return q, errors.New("query: parse: trailing data after the query object")
	}
	if q.Limit < 0 {
		return q, fmt.Errorf("%w: %d", ErrBadLimit, q.Limit)
	}
	return q, nil
}

// Source is the non-generic face of an engine: everything the HTTP endpoint
// and the scan command need, independent of the row type. *Engine[T]
// implements it.
type Source interface {
	// Fields lists the registered fields in registration order.
	Fields() []FieldInfo
	// Scan executes one query. It is safe for concurrent use.
	Scan(q Query) (*Result, error)
}

// ContextSource is implemented by sources whose scans honor context
// cancellation: a scan observing a cancelled or expired context stops at the
// next chunk boundary and returns the context's error instead of burning CPU
// to completion. With a context that never cancels, ScanContext is
// bit-identical to Scan (which is ScanContext over context.Background()).
// *Engine[T] implements it; the HTTP endpoints use it to abandon work for
// timed-out or disconnected clients.
type ContextSource interface {
	Source
	// ScanContext executes one query, stopping early (with ctx.Err()) when
	// the context is cancelled. It is safe for concurrent use.
	ScanContext(ctx context.Context, q Query) (*Result, error)
}

// OracleSource is implemented by sources that retain the pre-planner
// row-at-a-time reference scan alongside the planned path. The equivalence
// tests and benchmarks compare Scan against ScanOracle; production callers
// should not use it. *Engine[T] implements it.
type OracleSource interface {
	Source
	// ScanOracle executes one query on the reference path: boxed per-row
	// extraction, full filter evaluation on every row and a full stable
	// sort. Rows and TotalMatched are byte-identical to Scan's.
	ScanOracle(q Query) (*Result, error)
}

// emitValue converts a normalized value into its JSON-facing representation:
// time.Time becomes an RFC 3339 string, everything else passes through.
func emitValue(v any) any {
	if t, ok := v.(time.Time); ok {
		return t.Format(time.RFC3339)
	}
	return v
}
