// Package query is a GraphQL-style scan engine over the enriched crawl
// dataset: the caller specifies exactly which fields to return, which filters
// to apply, how to sort and how many rows to keep, and the engine executes
// the scan and returns structured rows plus execution metadata.
//
// The engine is deliberately a dumb pipe: it knows nothing about the paper's
// tables, market semantics or strategy — consumers (the fixed analyses in
// internal/analysis, the /api/scan HTTP endpoint in internal/market, the
// scan command) bring that context. Fields are contributed by a caller-built
// Registry of typed extractors, so the engine itself has no dependency on
// the dataset representation; analysis.Dataset registers ~40 fields across
// the metadata, apk and enrichment categories.
//
// A query is a single JSON object:
//
//	{
//	  "fields":  ["package", "market", "av_positives"],
//	  "filters": [{"field": "av_positives", "op": ">=", "value": 10},
//	              {"field": "market_chinese", "op": "==", "value": true}],
//	  "sort":    [{"field": "av_positives", "desc": true},
//	              {"field": "package"}],
//	  "limit":   25
//	}
//
// Null semantics follow SQL: a comparison against a null (missing) value
// never matches, null-ness is tested explicitly with the is_null operator,
// and nulls order after every non-null value under both sort directions.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Kind is the value type of a field. Every extracted value normalizes to the
// Go representation listed next to its kind.
type Kind string

// Field kinds.
const (
	KindString Kind = "string" // string
	KindInt    Kind = "int"    // int64
	KindFloat  Kind = "float"  // float64
	KindBool   Kind = "bool"   // bool
	KindTime   Kind = "time"   // time.Time, emitted as RFC 3339
)

// FieldInfo describes one registered field for introspection (the
// /api/scan/fields endpoint and the scan command's -fields listing).
type FieldInfo struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Kind     Kind   `json:"kind"`
	Doc      string `json:"doc,omitempty"`
	// Nullable marks fields that can be missing on some rows (for example
	// every apk-category field is null on listings whose APK failed to
	// parse).
	Nullable bool `json:"nullable,omitempty"`
}

// Op is a filter operator.
type Op string

// Filter operators. Ordering operators apply to int, float, string and time
// fields; contains applies to string fields only; in accepts a list of
// values of the field's kind; is_null applies to every field.
const (
	OpEq       Op = "=="
	OpNe       Op = "!="
	OpLt       Op = "<"
	OpLe       Op = "<="
	OpGt       Op = ">"
	OpGe       Op = ">="
	OpIn       Op = "in"
	OpContains Op = "contains"
	OpIsNull   Op = "is_null"
)

// Filter is one predicate; a query's filters are conjunctive (AND).
type Filter struct {
	Field string `json:"field"`
	Op    Op     `json:"op"`
	// Value is the comparison operand: a scalar for the ordering operators,
	// a list for in, a bool for is_null (omitted means true: "is null").
	Value any `json:"value,omitempty"`
}

// SortKey orders results by one field; earlier keys dominate. Rows with a
// null key value order after all non-null rows regardless of direction, and
// ties preserve dataset order (the sort is stable).
type SortKey struct {
	Field string `json:"field"`
	Desc  bool   `json:"desc,omitempty"`
}

// Query is one scan request.
type Query struct {
	// Fields lists the columns to return, in order. Empty means every
	// registered field in registration order.
	Fields  []string  `json:"fields"`
	Filters []Filter  `json:"filters,omitempty"`
	Sort    []SortKey `json:"sort,omitempty"`
	// Limit caps the returned rows; 0 means no cap. TotalMatched in the
	// result meta always counts every match regardless of the limit.
	Limit int `json:"limit,omitempty"`
}

// Meta is the execution metadata attached to every result.
type Meta struct {
	// Scanned is the number of dataset rows examined.
	Scanned int `json:"scanned"`
	// TotalMatched counts every row passing the filters, before the limit.
	TotalMatched int `json:"total_matched"`
	// Returned is len(Rows) after sorting and limiting.
	Returned int `json:"returned"`
	// QueryTimeMicros is the wall-clock execution time in microseconds.
	QueryTimeMicros int64 `json:"query_time_us"`
}

// Result is the outcome of one scan: the requested columns, the row values
// (one slice per row, aligned with Fields; nil marks a null) and the meta.
type Result struct {
	Fields []FieldInfo `json:"fields"`
	Rows   [][]any     `json:"rows"`
	Meta   Meta        `json:"meta"`
}

// Errors returned by ParseQuery and Scan.
var (
	ErrUnknownField = errors.New("query: unknown field")
	ErrBadOp        = errors.New("query: operator not valid for field kind")
	ErrBadValue     = errors.New("query: filter value not valid for field kind")
	ErrBadLimit     = errors.New("query: negative limit")
	ErrEmptyQuery   = errors.New("query: empty query body")
)

// maxQueryBytes bounds the accepted query document; a scan query is a small
// hand- or machine-written object, never megabytes.
const maxQueryBytes = 1 << 20

// ParseQuery decodes a JSON query document, rejecting unknown keys so typos
// ("filter" for "filters") fail loudly instead of silently matching
// everything.
func ParseQuery(r io.Reader) (Query, error) {
	var q Query
	dec := json.NewDecoder(io.LimitReader(r, maxQueryBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		if errors.Is(err, io.EOF) {
			return q, ErrEmptyQuery
		}
		return q, fmt.Errorf("query: parse: %w", err)
	}
	if dec.More() {
		return q, errors.New("query: parse: trailing data after the query object")
	}
	if q.Limit < 0 {
		return q, fmt.Errorf("%w: %d", ErrBadLimit, q.Limit)
	}
	return q, nil
}

// Source is the non-generic face of an engine: everything the HTTP endpoint
// and the scan command need, independent of the row type. *Engine[T]
// implements it.
type Source interface {
	// Fields lists the registered fields in registration order.
	Fields() []FieldInfo
	// Scan executes one query. It is safe for concurrent use.
	Scan(q Query) (*Result, error)
}

// emitValue converts a normalized value into its JSON-facing representation:
// time.Time becomes an RFC 3339 string, everything else passes through.
func emitValue(v any) any {
	if t, ok := v.(time.Time); ok {
		return t.Format(time.RFC3339)
	}
	return v
}
