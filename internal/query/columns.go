package query

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Segment geometry for zone maps: every column is split into fixed-size row
// segments, each carrying a zone (row/null counts plus min/max witnesses) so
// a full scan can skip whole segments a filter provably cannot match. These
// are variables, not constants, so the test suite can shrink segments and
// exercise multi-segment pruning on small datasets; production code must not
// change them after any engine has been built.
var (
	// segmentSize is the number of rows per zone-mapped segment.
	segmentSize = 4096
)

// dictCardLimit is the largest dictionary worth keeping for an n-row string
// column. Below 256 distinct values encoding always wins; beyond that the
// dictionary must stay under half the row count or the column keeps its
// plain layout (a near-unique column pays dictionary overhead for nothing).
func dictCardLimit(n int) int {
	if n/2 > 256 {
		return n / 2
	}
	return 256
}

// zone summarizes one fixed-size row segment of a column for scan pruning:
// how many rows and nulls it holds, plus witness rows carrying its minimum
// and maximum non-null value (-1 when the segment has no non-null rows, or
// when the kind is unordered / the column contains NaN, whose comparison
// semantics break the min/max invariant). Storing witness rows instead of
// typed values keeps the zone layout kind-independent: bounds checks reuse
// compareOperand, so pruning decisions use exactly the scan's comparison
// semantics.
type zone struct {
	rows   int32
	nulls  int32
	minRow int32
	maxRow int32
}

// bitset is a fixed-size bitmap; columns use one to mark null rows.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// column is one field materialized as a typed slice plus a null bitmap.
// Exactly one of the value slices is populated, selected by kind, so filter
// and sort evaluation becomes tight loops over machine types instead of
// boxed extractor calls. A column is immutable once built.
type column struct {
	kind      Kind
	nulls     bitset
	nullCount int
	// hasNaN marks float columns containing NaN. compareValues treats NaN
	// as equal to everything, which breaks the transitivity a sorted index
	// needs, so such columns refuse to back one (the planner falls back to
	// a residual scan, matching the oracle bit for bit).
	hasNaN bool

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	times  []time.Time

	// Dictionary encoding (string columns marked Field.Dictionary, on
	// compressed engines): dict is the sorted slice of distinct non-null
	// values and codes holds one index into it per row (unspecified where
	// null). A non-nil dict marks the column encoded — strs is then nil.
	// Because dict is sorted, code order is value order, so comparisons and
	// group keys work on the ints alone.
	dict  []string
	codes []uint32

	// zones holds the per-segment zone maps (segmentSize rows each), built
	// on compressed engines; nil otherwise.
	zones []zone
}

// colSlot is the lazy holder of one field's column: built at most once per
// engine, concurrently safe. The pointer is atomic so NewEngineAppend can
// peek at which columns a live engine has already built without racing the
// sync.Once that builds them.
type colSlot struct {
	once sync.Once
	col  atomic.Pointer[column]
}

// buildColumn materializes a field over every item through the same
// extract() the oracle path uses, so cached values (nulls included) are
// identical to what a row-at-a-time scan would see. With compressed set it
// additionally dictionary-encodes hinted string columns and attaches
// per-segment zone maps; both change only the layout, never the values a
// scan observes.
func buildColumn[T any](f Field[T], items []T, compressed bool) *column {
	n := len(items)
	c := &column{kind: f.Kind, nulls: newBitset(n)}
	switch f.Kind {
	case KindInt:
		c.ints = make([]int64, n)
	case KindFloat:
		c.floats = make([]float64, n)
	case KindString:
		c.strs = make([]string, n)
	case KindBool:
		c.bools = make([]bool, n)
	case KindTime:
		c.times = make([]time.Time, n)
	}
	for i, item := range items {
		v, null := extract(f, item)
		if null {
			c.nulls.set(i)
			c.nullCount++
			continue
		}
		switch f.Kind {
		case KindInt:
			c.ints[i] = v.(int64)
		case KindFloat:
			x := v.(float64)
			c.floats[i] = x
			if math.IsNaN(x) {
				c.hasNaN = true
			}
		case KindString:
			c.strs[i] = v.(string)
		case KindBool:
			c.bools[i] = v.(bool)
		case KindTime:
			c.times[i] = v.(time.Time)
		}
	}
	if compressed {
		if f.Dictionary && f.Kind == KindString {
			c.encodeDict()
		}
		c.buildZones()
	}
	return c
}

// encodeDict rewrites a plain string column into dictionary form: distinct
// non-null values sorted into dict, per-row codes into it. Columns whose
// cardinality exceeds dictCardLimit keep the plain layout (the method is a
// no-op then) — the hint is best-effort, results never depend on it.
func (c *column) encodeDict() {
	n := len(c.strs)
	limit := dictCardLimit(n)
	codeOf := make(map[string]uint32, 64)
	var dict []string
	codes := make([]uint32, n)
	for i, s := range c.strs {
		if c.nulls.get(i) {
			continue
		}
		code, ok := codeOf[s]
		if !ok {
			if len(dict) >= limit {
				return
			}
			code = uint32(len(dict))
			codeOf[s] = code
			dict = append(dict, s)
		}
		codes[i] = code
	}
	// Sort the dictionary and remap codes so code order is value order:
	// compareRows then needs only an int compare, and range predicates
	// reduce to a code-interval test.
	sorted := append([]string(nil), dict...)
	sort.Strings(sorted)
	remap := make([]uint32, len(dict))
	for newCode, s := range sorted {
		remap[codeOf[s]] = uint32(newCode)
	}
	for i := range codes {
		if !c.nulls.get(i) {
			codes[i] = remap[codes[i]]
		}
	}
	c.dict, c.codes, c.strs = sorted, codes, nil
}

// buildZones computes the per-segment zone maps. Null and row counts are
// exact for every kind; min/max witnesses are recorded only for ordered
// kinds without NaN, mirroring the sorted index's refusal — compareValues
// treats NaN as equal to everything, which would make the bounds unsound.
func (c *column) buildZones() {
	n := columnLen(c)
	if n == 0 {
		return
	}
	ordered := sortable(c.kind) && !c.hasNaN
	zones := make([]zone, (n+segmentSize-1)/segmentSize)
	for s := range zones {
		lo := s * segmentSize
		hi := lo + segmentSize
		if hi > n {
			hi = n
		}
		z := &zones[s]
		z.rows = int32(hi - lo)
		z.minRow, z.maxRow = -1, -1
		for i := lo; i < hi; i++ {
			if c.nulls.get(i) {
				z.nulls++
				continue
			}
			if !ordered {
				continue
			}
			if z.minRow < 0 {
				z.minRow, z.maxRow = int32(i), int32(i)
				continue
			}
			if c.compareRows(i, int(z.minRow)) < 0 {
				z.minRow = int32(i)
			}
			if c.compareRows(i, int(z.maxRow)) > 0 {
				z.maxRow = int32(i)
			}
		}
	}
	c.zones = zones
}

// str returns the row's string value regardless of layout (dictionary code
// or plain slice). Callers must have checked nulls first.
func (c *column) str(i int) string {
	if c.dict != nil {
		return c.dict[c.codes[i]]
	}
	return c.strs[i]
}

// value boxes the row's value in its JSON-facing representation (time as
// RFC 3339, mirroring emitValue), nil when null. Used by row
// materialization so output cells match the oracle's extract+emitValue.
func (c *column) value(i int) any {
	if c.nulls.get(i) {
		return nil
	}
	switch c.kind {
	case KindInt:
		return c.ints[i]
	case KindFloat:
		return c.floats[i]
	case KindString:
		return c.str(i)
	case KindBool:
		return c.bools[i]
	case KindTime:
		return c.times[i].Format(time.RFC3339)
	}
	return nil
}

// typed boxes the row's value in its normalized (pre-emit) representation —
// time.Time stays a time.Time — or nil when null. The aggregation path keeps
// cells typed until after sorting, then emits them through emitValue exactly
// like value().
func (c *column) typed(i int) any {
	if c.nulls.get(i) {
		return nil
	}
	switch c.kind {
	case KindInt:
		return c.ints[i]
	case KindFloat:
		return c.floats[i]
	case KindString:
		return c.str(i)
	case KindBool:
		return c.bools[i]
	case KindTime:
		return c.times[i]
	}
	return nil
}

// compareRows orders the non-null values at rows a and b with exactly
// compareValues' semantics (floats: NaN compares equal to everything; times:
// instant comparison).
func (c *column) compareRows(a, b int) int {
	switch c.kind {
	case KindInt:
		return cmpOrdered(c.ints[a], c.ints[b])
	case KindFloat:
		return cmpOrdered(c.floats[a], c.floats[b])
	case KindString:
		if c.dict != nil {
			// The dictionary is sorted, so code order is value order.
			return cmpOrdered(c.codes[a], c.codes[b])
		}
		return cmpOrdered(c.strs[a], c.strs[b])
	case KindBool:
		return cmpBool(c.bools[a], c.bools[b])
	case KindTime:
		return cmpTime(c.times[a], c.times[b])
	}
	return 0
}

// compareOperand orders the non-null value at row i against a normalized
// filter operand, again with compareValues' semantics.
func (c *column) compareOperand(i int, operand any) int {
	switch c.kind {
	case KindInt:
		return cmpOrdered(c.ints[i], operand.(int64))
	case KindFloat:
		return cmpOrdered(c.floats[i], operand.(float64))
	case KindString:
		return cmpOrdered(c.str(i), operand.(string))
	case KindBool:
		return cmpBool(c.bools[i], operand.(bool))
	case KindTime:
		return cmpTime(c.times[i], operand.(time.Time))
	}
	return 0
}

func cmpOrdered[V int64 | float64 | string | uint32](x, y V) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

func cmpBool(x, y bool) int {
	switch {
	case !x && y:
		return -1
	case x && !y:
		return 1
	}
	return 0
}

func cmpTime(x, y time.Time) int {
	switch {
	case x.Before(y):
		return -1
	case x.After(y):
		return 1
	}
	return 0
}

// columnFor materializes (at most once, concurrently safe) the typed column
// of the field at registration ordinal ord. On a paged engine a paged ordinal
// returns the resident column the request pinned; unpinned access (admin
// paths) gets a transient build from items that is never installed, so the
// budget accounting stays exact.
func (e *Engine[T]) columnFor(ord int) *column {
	if p := e.pager; p != nil && p.slots[ord] != nil {
		if c := e.cols[ord].col.Load(); c != nil {
			return c
		}
		return p.transientColumn(e, ord)
	}
	slot := &e.cols[ord]
	slot.once.Do(func() {
		f := e.reg.byName[e.reg.order[ord]]
		slot.col.Store(buildColumn(f, e.items, !e.uncompressed))
	})
	return slot.col.Load()
}
