package query

import (
	"math"
	"sync"
	"time"
)

// bitset is a fixed-size bitmap; columns use one to mark null rows.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// column is one field materialized as a typed slice plus a null bitmap.
// Exactly one of the value slices is populated, selected by kind, so filter
// and sort evaluation becomes tight loops over machine types instead of
// boxed extractor calls. A column is immutable once built.
type column struct {
	kind      Kind
	nulls     bitset
	nullCount int
	// hasNaN marks float columns containing NaN. compareValues treats NaN
	// as equal to everything, which breaks the transitivity a sorted index
	// needs, so such columns refuse to back one (the planner falls back to
	// a residual scan, matching the oracle bit for bit).
	hasNaN bool

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	times  []time.Time
}

// colSlot is the lazy holder of one field's column: built at most once per
// engine, concurrently safe.
type colSlot struct {
	once sync.Once
	col  *column
}

// buildColumn materializes a field over every item through the same
// extract() the oracle path uses, so cached values (nulls included) are
// identical to what a row-at-a-time scan would see.
func buildColumn[T any](f Field[T], items []T) *column {
	n := len(items)
	c := &column{kind: f.Kind, nulls: newBitset(n)}
	switch f.Kind {
	case KindInt:
		c.ints = make([]int64, n)
	case KindFloat:
		c.floats = make([]float64, n)
	case KindString:
		c.strs = make([]string, n)
	case KindBool:
		c.bools = make([]bool, n)
	case KindTime:
		c.times = make([]time.Time, n)
	}
	for i, item := range items {
		v, null := extract(f, item)
		if null {
			c.nulls.set(i)
			c.nullCount++
			continue
		}
		switch f.Kind {
		case KindInt:
			c.ints[i] = v.(int64)
		case KindFloat:
			x := v.(float64)
			c.floats[i] = x
			if math.IsNaN(x) {
				c.hasNaN = true
			}
		case KindString:
			c.strs[i] = v.(string)
		case KindBool:
			c.bools[i] = v.(bool)
		case KindTime:
			c.times[i] = v.(time.Time)
		}
	}
	return c
}

// value boxes the row's value in its JSON-facing representation (time as
// RFC 3339, mirroring emitValue), nil when null. Used by row
// materialization so output cells match the oracle's extract+emitValue.
func (c *column) value(i int) any {
	if c.nulls.get(i) {
		return nil
	}
	switch c.kind {
	case KindInt:
		return c.ints[i]
	case KindFloat:
		return c.floats[i]
	case KindString:
		return c.strs[i]
	case KindBool:
		return c.bools[i]
	case KindTime:
		return c.times[i].Format(time.RFC3339)
	}
	return nil
}

// typed boxes the row's value in its normalized (pre-emit) representation —
// time.Time stays a time.Time — or nil when null. The aggregation path keeps
// cells typed until after sorting, then emits them through emitValue exactly
// like value().
func (c *column) typed(i int) any {
	if c.nulls.get(i) {
		return nil
	}
	switch c.kind {
	case KindInt:
		return c.ints[i]
	case KindFloat:
		return c.floats[i]
	case KindString:
		return c.strs[i]
	case KindBool:
		return c.bools[i]
	case KindTime:
		return c.times[i]
	}
	return nil
}

// compareRows orders the non-null values at rows a and b with exactly
// compareValues' semantics (floats: NaN compares equal to everything; times:
// instant comparison).
func (c *column) compareRows(a, b int) int {
	switch c.kind {
	case KindInt:
		return cmpOrdered(c.ints[a], c.ints[b])
	case KindFloat:
		return cmpOrdered(c.floats[a], c.floats[b])
	case KindString:
		return cmpOrdered(c.strs[a], c.strs[b])
	case KindBool:
		return cmpBool(c.bools[a], c.bools[b])
	case KindTime:
		return cmpTime(c.times[a], c.times[b])
	}
	return 0
}

// compareOperand orders the non-null value at row i against a normalized
// filter operand, again with compareValues' semantics.
func (c *column) compareOperand(i int, operand any) int {
	switch c.kind {
	case KindInt:
		return cmpOrdered(c.ints[i], operand.(int64))
	case KindFloat:
		return cmpOrdered(c.floats[i], operand.(float64))
	case KindString:
		return cmpOrdered(c.strs[i], operand.(string))
	case KindBool:
		return cmpBool(c.bools[i], operand.(bool))
	case KindTime:
		return cmpTime(c.times[i], operand.(time.Time))
	}
	return 0
}

func cmpOrdered[V int64 | float64 | string](x, y V) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

func cmpBool(x, y bool) int {
	switch {
	case !x && y:
		return -1
	case x && !y:
		return 1
	}
	return 0
}

func cmpTime(x, y time.Time) int {
	switch {
	case x.Before(y):
		return -1
	case x.After(y):
		return 1
	}
	return 0
}

// columnFor materializes (at most once, concurrently safe) the typed column
// of the field at registration ordinal ord.
func (e *Engine[T]) columnFor(ord int) *column {
	slot := &e.cols[ord]
	slot.once.Do(func() {
		f := e.reg.byName[e.reg.order[ord]]
		slot.col = buildColumn(f, e.items)
	})
	return slot.col
}
