package query

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// row is the test row type: a handful of typed fields with controllable
// nulls.
type row struct {
	name    string
	market  string
	size    int64
	rating  float64
	flagged bool
	date    time.Time
	// hasSize / hasRating gate null behaviour.
	hasSize   bool
	hasRating bool
}

func testRegistry() *Registry[row] {
	r := NewRegistry[row]()
	r.MustRegister(Field[row]{Name: "name", Category: "meta", Kind: KindString,
		Extract: func(x row) (any, bool) { return x.name, true }})
	r.MustRegister(Field[row]{Name: "market", Category: "meta", Kind: KindString,
		Extract: func(x row) (any, bool) { return x.market, true }})
	r.MustRegister(Field[row]{Name: "size", Category: "apk", Kind: KindInt, Nullable: true,
		Extract: func(x row) (any, bool) { return x.size, x.hasSize }})
	r.MustRegister(Field[row]{Name: "rating", Category: "meta", Kind: KindFloat, Nullable: true,
		Extract: func(x row) (any, bool) { return x.rating, x.hasRating }})
	r.MustRegister(Field[row]{Name: "flagged", Category: "enrichment", Kind: KindBool,
		Extract: func(x row) (any, bool) { return x.flagged, true }})
	r.MustRegister(Field[row]{Name: "date", Category: "meta", Kind: KindTime,
		Extract: func(x row) (any, bool) { return x.date, true }})
	return r
}

func day(d int) time.Time { return time.Date(2018, 5, d, 0, 0, 0, 0, time.UTC) }

func testRows() []row {
	return []row{
		{name: "alpha", market: "Google Play", size: 100, hasSize: true, rating: 4.5, hasRating: true, flagged: false, date: day(1)},
		{name: "bravo", market: "Tencent Myapp", size: 300, hasSize: true, rating: 3.0, hasRating: true, flagged: true, date: day(2)},
		{name: "charlie", market: "Tencent Myapp", hasSize: false, rating: 2.0, hasRating: true, flagged: false, date: day(3)},
		{name: "delta", market: "Baidu Market", size: 300, hasSize: true, hasRating: false, flagged: true, date: day(4)},
		{name: "echo", market: "Google Play", size: 50, hasSize: true, rating: 4.5, hasRating: true, flagged: false, date: day(5)},
	}
}

func testEngine() *Engine[row] { return NewEngine(testRegistry(), testRows()) }

// names extracts the first column of every row as strings.
func names(t *testing.T, res *Result) []string {
	t.Helper()
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		s, ok := r[0].(string)
		if !ok {
			t.Fatalf("first column is %T, want string", r[0])
		}
		out = append(out, s)
	}
	return out
}

func wantNames(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := names(t, res)
	if len(got) != len(want) {
		t.Fatalf("got rows %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %v, want %v", i, got, want)
		}
	}
}

func TestFilterOperators(t *testing.T) {
	e := testEngine()
	cases := []struct {
		name   string
		filter Filter
		want   []string
	}{
		{"eq-string", Filter{Field: "market", Op: OpEq, Value: "Google Play"}, []string{"alpha", "echo"}},
		{"ne-string", Filter{Field: "market", Op: OpNe, Value: "Google Play"}, []string{"bravo", "charlie", "delta"}},
		{"lt-int", Filter{Field: "size", Op: OpLt, Value: float64(300)}, []string{"alpha", "echo"}},
		{"le-int", Filter{Field: "size", Op: OpLe, Value: float64(100)}, []string{"alpha", "echo"}},
		{"gt-float", Filter{Field: "rating", Op: OpGt, Value: 3.0}, []string{"alpha", "echo"}},
		{"ge-float", Filter{Field: "rating", Op: OpGe, Value: 3.0}, []string{"alpha", "bravo", "echo"}},
		{"eq-bool", Filter{Field: "flagged", Op: OpEq, Value: true}, []string{"bravo", "delta"}},
		{"in-string", Filter{Field: "market", Op: OpIn, Value: []any{"Baidu Market", "Google Play"}}, []string{"alpha", "delta", "echo"}},
		{"in-int", Filter{Field: "size", Op: OpIn, Value: []any{float64(50), float64(100)}}, []string{"alpha", "echo"}},
		// Go-API callers pass typed slices; the JSON path passes []any.
		{"in-typed-string-slice", Filter{Field: "market", Op: OpIn, Value: []string{"Baidu Market", "Google Play"}}, []string{"alpha", "delta", "echo"}},
		{"in-typed-int-slice", Filter{Field: "size", Op: OpIn, Value: []int{50, 100}}, []string{"alpha", "echo"}},
		{"contains", Filter{Field: "name", Op: OpContains, Value: "ar"}, []string{"charlie"}},
		{"time-lt", Filter{Field: "date", Op: OpLt, Value: "2018-05-03"}, []string{"alpha", "bravo"}},
		{"time-ge-rfc3339", Filter{Field: "date", Op: OpGe, Value: "2018-05-04T00:00:00Z"}, []string{"delta", "echo"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{tc.filter}})
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			wantNames(t, res, tc.want...)
			if res.Meta.TotalMatched != len(tc.want) || res.Meta.Scanned != 5 {
				t.Fatalf("meta = %+v, want %d matched of 5", res.Meta, len(tc.want))
			}
		})
	}
}

func TestNullSemantics(t *testing.T) {
	e := testEngine()

	// Comparisons never match null values: charlie has no size, so every
	// ordering operator over size excludes it, including !=.
	res, err := e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpNe, Value: float64(300)}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	wantNames(t, res, "alpha", "echo")

	// is_null selects exactly the null rows...
	res, err = e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpIsNull}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	wantNames(t, res, "charlie")

	// ...and is_null=false the complement.
	res, err = e.Scan(Query{Fields: []string{"name"}, Filters: []Filter{{Field: "rating", Op: OpIsNull, Value: false}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	wantNames(t, res, "alpha", "bravo", "charlie", "echo")

	// Null values surface as nil cells in the output.
	res, err = e.Scan(Query{Fields: []string{"name", "size"}, Filters: []Filter{{Field: "name", Op: OpEq, Value: "charlie"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Rows[0][1] != nil {
		t.Fatalf("null size cell = %v, want nil", res.Rows[0][1])
	}
}

func TestSortMultiKeyStabilityAndNulls(t *testing.T) {
	e := testEngine()

	// Two-key sort: size desc then name asc. bravo and delta tie on size
	// 300 and break on name; charlie (null size) goes last despite desc.
	res, err := e.Scan(Query{
		Fields: []string{"name"},
		Sort:   []SortKey{{Field: "size", Desc: true}, {Field: "name"}},
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	wantNames(t, res, "bravo", "delta", "alpha", "echo", "charlie")

	// Stability: rating has a three-way tie at 4.5 between alpha and echo
	// plus equal markets; sorting only on market must keep dataset order
	// within each market group.
	res, err = e.Scan(Query{Fields: []string{"name"}, Sort: []SortKey{{Field: "market"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	wantNames(t, res, "delta", "alpha", "echo", "bravo", "charlie")

	// Nulls order last under asc too: delta has no rating.
	res, err = e.Scan(Query{Fields: []string{"name"}, Sort: []SortKey{{Field: "rating"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	wantNames(t, res, "charlie", "bravo", "alpha", "echo", "delta")
}

func TestLimitEnforcement(t *testing.T) {
	e := testEngine()
	res, err := e.Scan(Query{Fields: []string{"name"}, Sort: []SortKey{{Field: "name"}}, Limit: 2})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	wantNames(t, res, "alpha", "bravo")
	if res.Meta.TotalMatched != 5 {
		t.Fatalf("TotalMatched = %d, want 5 (limit must not affect the match count)", res.Meta.TotalMatched)
	}
	if res.Meta.Returned != 2 {
		t.Fatalf("Returned = %d, want 2", res.Meta.Returned)
	}
	if _, err := e.Scan(Query{Fields: []string{"name"}, Limit: -1}); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestEmptyFieldsMeansAll(t *testing.T) {
	e := testEngine()
	res, err := e.Scan(Query{Limit: 1})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(res.Fields) != 6 || len(res.Rows[0]) != 6 {
		t.Fatalf("all-fields scan returned %d columns, want 6", len(res.Fields))
	}
	if res.Fields[0].Name != "name" || res.Fields[5].Name != "date" {
		t.Fatalf("fields not in registration order: %+v", res.Fields)
	}
}

func TestQueryErrors(t *testing.T) {
	e := testEngine()
	bad := []Query{
		{Fields: []string{"nope"}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "nope", Op: OpEq, Value: "x"}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: Op("~"), Value: "x"}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpContains, Value: "x"}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpEq, Value: "big"}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpEq, Value: 1.5}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "flagged", Op: OpLt, Value: true}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpIn, Value: []any{}}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpEq}}},
		{Fields: []string{"name"}, Sort: []SortKey{{Field: "nope"}}},
		// Out-of-int64-range numbers must be rejected, not silently
		// converted (a wrapped value would match everything or nothing).
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpGe, Value: 1e19}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "size", Op: OpEq, Value: math.Inf(1)}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "date", Op: OpLt, Value: 1e19}}},
	}
	for i, q := range bad {
		if _, err := e.Scan(q); err == nil {
			t.Errorf("query %d accepted, want error", i)
		}
	}
}

func TestTimeEmittedAsRFC3339(t *testing.T) {
	e := testEngine()
	res, err := e.Scan(Query{Fields: []string{"date"}, Limit: 1})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if got := res.Rows[0][0]; got != "2018-05-01T00:00:00Z" {
		t.Fatalf("time cell = %v, want RFC 3339 string", got)
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery(strings.NewReader(`{
		"fields": ["name"],
		"filters": [{"field": "size", "op": ">=", "value": 100}],
		"sort": [{"field": "size", "desc": true}],
		"limit": 3
	}`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(q.Fields) != 1 || len(q.Filters) != 1 || len(q.Sort) != 1 || q.Limit != 3 {
		t.Fatalf("parsed query = %+v", q)
	}
	if _, err := ParseQuery(strings.NewReader(`{"filter": []}`)); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseQuery(strings.NewReader(``)); err == nil {
		t.Fatal("empty body accepted")
	}
	if _, err := ParseQuery(strings.NewReader(`{"limit": -2}`)); err == nil {
		t.Fatal("negative limit accepted")
	}
	if _, err := ParseQuery(strings.NewReader(`{"limit": 5}{"limit": 6}`)); err == nil {
		t.Fatal("trailing data after the query object accepted")
	}
}

// TestConcurrentScans hammers one engine from many goroutines; under -race
// this proves Scan is read-only.
func TestConcurrentScans(t *testing.T) {
	e := testEngine()
	queries := []Query{
		{Fields: []string{"name"}, Filters: []Filter{{Field: "flagged", Op: OpEq, Value: true}}},
		{Fields: []string{"name", "size"}, Sort: []SortKey{{Field: "size", Desc: true}, {Field: "name"}}, Limit: 3},
		{Filters: []Filter{{Field: "rating", Op: OpIsNull}}},
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := e.Scan(q); err != nil {
					t.Errorf("concurrent scan: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParallelMatchOrder pushes the dataset over the parallel threshold and
// checks the matched order is still dataset order and identical to a small
// serial scan of the same data.
func TestParallelMatchOrder(t *testing.T) {
	const n = parallelThreshold * 3
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{name: string(rune('a'+i%26)) + "-" + time.Unix(int64(i), 0).UTC().Format("150405"),
			market: "M", size: int64(i % 97), hasSize: true, hasRating: i%3 != 0, rating: float64(i % 7), date: day(1 + i%28)}
	}
	e := NewEngine(testRegistry(), rows)
	res, err := e.Scan(Query{Fields: []string{"size"}, Filters: []Filter{{Field: "size", Op: OpLt, Value: float64(5)}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	var prev int64 = -1
	seen := 0
	for i := 0; i < n; i++ {
		if int64(i%97) < 5 {
			seen++
		}
	}
	if res.Meta.TotalMatched != seen {
		t.Fatalf("TotalMatched = %d, want %d", res.Meta.TotalMatched, seen)
	}
	// Dataset order means sizes cycle 0,1,2,3,4,0,1,... monotone within
	// each period; verify the first period is ascending from 0.
	for i := 0; i < 5 && i < len(res.Rows); i++ {
		v := res.Rows[i][0].(int64)
		if v != prev+1 {
			t.Fatalf("row %d size = %d, want %d (dataset order violated)", i, v, prev+1)
		}
		prev = v
	}
}

// TestResultJSONRoundTrip ensures a Result survives the HTTP layer's JSON
// encoding with rows intact.
func TestResultJSONRoundTrip(t *testing.T) {
	e := testEngine()
	res, err := e.Scan(Query{Fields: []string{"name", "size", "rating", "flagged", "date"}, Sort: []SortKey{{Field: "name"}}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Rows) != len(res.Rows) || back.Meta.TotalMatched != res.Meta.TotalMatched {
		t.Fatalf("round trip lost rows: %+v", back.Meta)
	}
	if back.Rows[0][0] != "alpha" {
		t.Fatalf("round trip first cell = %v", back.Rows[0][0])
	}
}
