package query

import (
	"math/bits"
	"sort"
)

// Roaring-style compressed bitmaps over row ids. A bitmap partitions the
// int32 row space into 2^16-row chunks keyed by the high 16 bits; each chunk
// is stored as whichever container is smaller:
//
//   - an array container: the chunk's low 16 bits as a sorted []uint16, for
//     sparse chunks (at most arrayMaxCard rows);
//   - a dense container: a fixed 1024-word bit field, once a chunk exceeds
//     arrayMaxCard rows (beyond that point the bit field is the smaller and
//     faster representation).
//
// Dictionary-encoded columns keep one bitmap per dictionary code as their
// posting lists, so == becomes a container walk, in becomes a linear OR and
// conjunctions intersect with word-parallel ANDs instead of the sorted-slice
// merges the uncompressed hash index uses. Every operation preserves
// ascending row order when materialized, which is what keeps the planned
// path's candidate lists bit-identical to the oracle's dataset-order scan.

// arrayMaxCard is the array->dense conversion threshold: 4096 uint16 values
// occupy exactly the 8 KiB a dense container always costs.
const arrayMaxCard = 4096

// bmContainer holds one 2^16-row chunk of a bitmap. Exactly one of array and
// dense is non-nil.
type bmContainer struct {
	key   uint16   // high 16 bits of the rows in this container
	card  int      // number of rows set
	array []uint16 // sorted low halves (sparse form)
	dense []uint64 // 1024-word bit field (dense form)
}

// bitmap is an immutable-after-build compressed row set. Containers are
// ordered by key, so iteration yields ascending rows.
type bitmap struct {
	cs []bmContainer
	n  int // total rows set
}

// add appends one row. Rows MUST be added in strictly ascending order (the
// index builder walks the column once, in dataset order).
func (b *bitmap) add(row int32) {
	key := uint16(uint32(row) >> 16)
	low := uint16(row)
	if len(b.cs) == 0 || b.cs[len(b.cs)-1].key != key {
		b.cs = append(b.cs, bmContainer{key: key})
	}
	c := &b.cs[len(b.cs)-1]
	if c.dense != nil {
		c.dense[low>>6] |= 1 << (low & 63)
	} else if len(c.array) == arrayMaxCard {
		dense := make([]uint64, 1024)
		for _, v := range c.array {
			dense[v>>6] |= 1 << (v & 63)
		}
		dense[low>>6] |= 1 << (low & 63)
		c.array, c.dense = nil, dense
	} else {
		c.array = append(c.array, low)
	}
	c.card++
	b.n++
}

// appendRows materializes the bitmap onto dst in ascending row order.
func (b *bitmap) appendRows(dst []int32) []int32 {
	for i := range b.cs {
		c := &b.cs[i]
		base := int32(uint32(c.key) << 16)
		if c.dense == nil {
			for _, v := range c.array {
				dst = append(dst, base|int32(v))
			}
			continue
		}
		for w, word := range c.dense {
			for word != 0 {
				dst = append(dst, base|int32(w<<6)|int32(bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
	}
	return dst
}

// rows materializes the bitmap as a fresh ascending row list.
func (b *bitmap) rows() []int32 { return b.appendRows(make([]int32, 0, b.n)) }

// contains reports whether a row is set. Containers and array entries are
// sorted, so both lookups are binary searches.
func (b *bitmap) contains(row int32) bool {
	key := uint16(uint32(row) >> 16)
	low := uint16(row)
	ci := sort.Search(len(b.cs), func(i int) bool { return b.cs[i].key >= key })
	if ci == len(b.cs) || b.cs[ci].key != key {
		return false
	}
	c := &b.cs[ci]
	if c.dense != nil {
		return c.dense[low>>6]&(1<<(low&63)) != 0
	}
	ai := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	return ai < len(c.array) && c.array[ai] == low
}

// asDense renders a container as a dense bit field (its own storage when
// already dense, a scratch buffer otherwise).
func (c *bmContainer) asDense(scratch []uint64) []uint64 {
	if c.dense != nil {
		return c.dense
	}
	for i := range scratch {
		scratch[i] = 0
	}
	for _, v := range c.array {
		scratch[v>>6] |= 1 << (v & 63)
	}
	return scratch
}

// appendWords adds a dense word set back to a result bitmap as whichever
// container form fits, counting cardinality once.
func (b *bitmap) appendWords(key uint16, words []uint64) {
	card := 0
	for _, w := range words {
		card += bits.OnesCount64(w)
	}
	if card == 0 {
		return
	}
	c := bmContainer{key: key, card: card}
	if card > arrayMaxCard {
		c.dense = make([]uint64, 1024)
		copy(c.dense, words)
	} else {
		c.array = make([]uint16, 0, card)
		for w, word := range words {
			for word != 0 {
				c.array = append(c.array, uint16(w<<6)|uint16(bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
	}
	b.cs = append(b.cs, c)
	b.n += card
}

// bmAnd intersects two bitmaps into a fresh one.
func bmAnd(a, b *bitmap) *bitmap {
	out := &bitmap{}
	var scratchA, scratchB [1024]uint64
	var words [1024]uint64
	i, j := 0, 0
	for i < len(a.cs) && j < len(b.cs) {
		ca, cb := &a.cs[i], &b.cs[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			// Array-vs-anything: walk the smaller array and probe the other
			// side; dense-vs-dense: word-parallel AND.
			if ca.dense != nil && cb.dense != nil {
				for w := range words {
					words[w] = ca.dense[w] & cb.dense[w]
				}
				out.appendWords(ca.key, words[:])
			} else {
				arr, other := ca, cb
				if arr.dense != nil {
					arr, other = cb, ca
				}
				dense := other.asDense(scratchB[:])
				_ = scratchA
				base := int32(uint32(ca.key) << 16)
				for _, v := range arr.array {
					if dense[v>>6]&(1<<(v&63)) != 0 {
						out.add(base | int32(v))
					}
				}
			}
			i++
			j++
		}
	}
	return out
}

// bmOrAll unions any number of bitmaps (the in operator over dictionary
// posting lists) into a fresh bitmap. nil entries are ignored.
func bmOrAll(list []*bitmap) *bitmap {
	out := &bitmap{}
	// Merge container-by-container across all inputs in key order.
	idx := make([]int, len(list))
	var words [1024]uint64
	for {
		// Find the smallest pending container key.
		best := -1
		var bestKey uint16
		for li, b := range list {
			if b == nil || idx[li] >= len(b.cs) {
				continue
			}
			k := b.cs[idx[li]].key
			if best < 0 || k < bestKey {
				best, bestKey = li, k
			}
		}
		if best < 0 {
			return out
		}
		for i := range words {
			words[i] = 0
		}
		for li, b := range list {
			if b == nil || idx[li] >= len(b.cs) || b.cs[idx[li]].key != bestKey {
				continue
			}
			c := &b.cs[idx[li]]
			if c.dense != nil {
				for w := range words {
					words[w] |= c.dense[w]
				}
			} else {
				for _, v := range c.array {
					words[v>>6] |= 1 << (v & 63)
				}
			}
			idx[li]++
		}
		out.appendWords(bestKey, words[:])
	}
}
