package query

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// appendPair builds the same logical dataset twice: once cold over the full
// slice, once by appending the tail to a base engine that has already built
// (a random subset of) its columns. Every test then asserts the two are
// indistinguishable query-for-query.
func appendPair(rng *rand.Rand, base, added []row, uncompressed bool) (appended, cold *Engine[row], err error) {
	all := append(append([]row{}, base...), added...)
	build := NewEngine[row]
	if uncompressed {
		build = NewEngineUncompressed[row]
	}
	baseEng := build(testDictRegistry(), base)
	// Warm a random subset of the base columns (and its selectivity history)
	// with a few real scans, so the append seals a mix of built and
	// never-touched columns.
	for i := rng.Intn(4); i > 0; i-- {
		if _, err := baseEng.Scan(randomQuery(rng)); err != nil {
			return nil, nil, err
		}
	}
	appended, err = NewEngineAppend(testDictRegistry(), baseEng, added)
	if err != nil {
		return nil, nil, err
	}
	return appended, build(testDictRegistry(), all), nil
}

// TestAppendMatchesColdBuild is the randomized seal equivalence suite: for
// many (base, delta) splits — compressed and uncompressed, empty deltas and
// empty bases included — every random scan and aggregate over the appended
// engine is identical to the cold engine over the union.
func TestAppendMatchesColdBuild(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			nBase := rng.Intn(400)
			nAdded := rng.Intn(250)
			switch seed % 4 {
			case 1:
				nAdded = 0 // seal with an empty delta
			case 2:
				nBase = 0 // append to an empty engine
			}
			base := randomRows(rng, nBase)
			added := randomRows(rng, nAdded)
			appended, cold, err := appendPair(rng, base, added, seed%3 == 0)
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			if appended.Len() != nBase+nAdded {
				t.Fatalf("appended engine has %d rows, want %d", appended.Len(), nBase+nAdded)
			}
			for i := 0; i < 25; i++ {
				q := randomQuery(rng)
				got, err1 := appended.Scan(q)
				want, err2 := cold.Scan(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("query %d (%+v): appended err %v, cold err %v", i, q, err1, err2)
				}
				requireSameResult(t, q, got, want)
			}
			for i := 0; i < 15; i++ {
				a := randomAggregate(rng)
				got, err1 := appended.Aggregate(a)
				want, err2 := cold.Aggregate(a)
				if err1 != nil || err2 != nil {
					t.Fatalf("aggregate %d (%+v): appended err %v, cold err %v", i, a, err1, err2)
				}
				requireSameAggregate(t, a, got, want)
			}
		})
	}
}

// TestAppendReusesBuiltColumns pins the seal itself: a column the base
// engine materialized must not be rebuilt through the extractor for old
// rows. The extractor counts its calls; after the append only the added
// rows may pay it.
func TestAppendReusesBuiltColumns(t *testing.T) {
	var calls int
	counting := func() *Registry[row] {
		r := NewRegistry[row]()
		r.MustRegister(Field[row]{Name: "name", Kind: KindString,
			Extract: func(x row) (any, bool) { calls++; return x.name, true }})
		return r
	}
	base := testRows()
	added := []row{{name: "foxtrot"}, {name: "golf"}}
	baseEng := NewEngine(counting(), base)
	if _, err := baseEng.Scan(Query{Fields: []string{"name"}}); err != nil {
		t.Fatalf("warm scan: %v", err)
	}
	calls = 0
	appended, err := NewEngineAppend(counting(), baseEng, added)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	res, err := appended.Scan(Query{Fields: []string{"name"}})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(res.Rows) != len(base)+len(added) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(base)+len(added))
	}
	if calls != len(added) {
		t.Fatalf("extractor ran %d times after the append, want %d (added rows only)", calls, len(added))
	}
}

// TestAppendRegistryMismatch: a registry whose shape diverges from the
// base's must be rejected, not silently mis-sealed.
func TestAppendRegistryMismatch(t *testing.T) {
	base := NewEngine(testRegistry(), testRows())

	renamed := NewRegistry[row]()
	renamed.MustRegister(Field[row]{Name: "nom", Kind: KindString,
		Extract: func(x row) (any, bool) { return x.name, true }})
	if _, err := NewEngineAppend(renamed, base, nil); err == nil {
		t.Fatal("append accepted a registry with a different field count")
	}

	shadow := NewRegistry[row]()
	for _, info := range testRegistry().Fields() {
		g, _ := testRegistry().Lookup(info.Name)
		if info.Name == "name" {
			g.Kind = KindInt
			g.Extract = func(x row) (any, bool) { return int64(len(x.name)), true }
		}
		shadow.MustRegister(g)
	}
	if _, err := NewEngineAppend(shadow, base, nil); err == nil {
		t.Fatal("append accepted a registry with a re-kinded field")
	}
}

// TestAppendWhileBaseServes runs the append concurrently with scans on the
// base engine (the live-swap situation: the old epoch keeps serving while
// the new epoch seals its columns). Run under -race; results on both engines
// must stay correct throughout.
func TestAppendWhileBaseServes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomRows(rng, 300)
	added := randomRows(rng, 60)
	baseEng := NewEngine(testDictRegistry(), base)
	cold := NewEngine(testDictRegistry(), append(append([]row{}, base...), added...))

	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = randomQuery(rng)
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := baseEng.Scan(q)
		if err != nil {
			t.Fatalf("base scan: %v", err)
		}
		want[i] = r
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				res, err := baseEng.Scan(q)
				if err != nil {
					t.Errorf("base scan under append: %v", err)
					return
				}
				requireSameResult(t, q, res, want[(w+i)%len(queries)])
			}
		}(w)
	}
	for round := 0; round < 5; round++ {
		appended, err := NewEngineAppend(testDictRegistry(), baseEng, added)
		if err != nil {
			t.Fatalf("append round %d: %v", round, err)
		}
		q := queries[round%len(queries)]
		got, err1 := appended.Scan(q)
		ref, err2 := cold.Scan(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d: appended err %v, cold err %v", round, err1, err2)
		}
		requireSameResult(t, q, got, ref)
	}
	close(stop)
	wg.Wait()
}
