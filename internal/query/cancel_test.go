package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// The cancellation contract of ScanContext / AggregateContext: a dead context
// surfaces its error promptly, every fanned-out worker is joined before the
// error returns (no goroutine leaks), and a context that never cancels is
// invisible — results stay bit-identical to the oracle paths.

// parallelEngine builds an engine big enough that matching, grouping and the
// per-group fan-out all cross the parallel threshold.
func parallelEngine(seed int64) *Engine[row] {
	rng := rand.New(rand.NewSource(seed))
	return NewEngine(testIndexedRegistry(), randomRows(rng, parallelThreshold*3+41))
}

func TestScanContextPreCancelled(t *testing.T) {
	e := parallelEngine(11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, q := range []Query{
		{Fields: []string{"name"}}, // no filters: caught at the sort/materialize checkpoints
		{Fields: []string{"name"}, Filters: []Filter{{Field: "rating", Op: OpGe, Value: 1.0}}},
		{Fields: []string{"name"}, Filters: []Filter{{Field: "name", Op: OpContains, Value: "a"}}},
	} {
		res, err := e.ScanContext(ctx, q)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ScanContext(%+v) with cancelled ctx: res=%v err=%v, want context.Canceled", q, res, err)
		}
	}
}

func TestScanContextDeadlineExceeded(t *testing.T) {
	e := parallelEngine(12)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := e.ScanContext(ctx, Query{Filters: []Filter{{Field: "flagged", Op: OpEq, Value: true}}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err=%v, want context.DeadlineExceeded", err)
	}
}

func TestAggregateContextPreCancelled(t *testing.T) {
	e := parallelEngine(13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, a := range []Aggregate{
		{Aggregates: []AggSpec{{Op: AggCount}}}, // global group
		{GroupBy: []string{"market"}, Aggregates: []AggSpec{{Op: AggMean, Field: "rating"}}},
		{GroupBy: []string{"market", "flagged"},
			Aggregates: []AggSpec{{Op: AggTopK, Field: "name", K: 3}},
			Filters:    []Filter{{Field: "size", Op: OpGe, Value: 1.0}}},
	} {
		res, err := e.AggregateContext(ctx, a)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("AggregateContext(%+v) with cancelled ctx: res=%v err=%v, want context.Canceled", a, res, err)
		}
	}
}

// TestScanContextCancelledMidFlight cancels deterministically while the call
// is underway: a tripwire field's extractor pulls the plug partway through
// its column build, so the match stage that follows starts on an
// already-dead context — exactly the shape of a client disconnecting while
// the engine grinds.
func TestScanContextCancelledMidFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rows := randomRows(rng, parallelThreshold*3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	reg := testRegistry()
	var extracted atomic.Int64
	reg.MustRegister(Field[row]{Name: "trip", Category: "meta", Kind: KindBool,
		Extract: func(x row) (any, bool) {
			if extracted.Add(1) == int64(len(rows)/2) {
				cancel()
			}
			return true, true
		}})
	e := NewEngine(reg, rows)

	res, err := e.ScanContext(ctx, Query{Fields: []string{"name"},
		Filters: []Filter{{Field: "trip", Op: OpEq, Value: true}}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: res=%v err=%v, want context.Canceled", res, err)
	}
	if n := extracted.Load(); n < int64(len(rows)/2) {
		t.Fatalf("tripwire extracted %d rows, cancel never fired", n)
	}
}

// TestCancelledScansLeakNoGoroutines runs many cancelled parallel scans and
// aggregations and requires the goroutine count to settle back to where it
// started: every worker a cancelled call fanned out must be joined before
// the call returns.
func TestCancelledScansLeakNoGoroutines(t *testing.T) {
	e := parallelEngine(31)
	// Warm the lazy columns/indexes so their one-time builds don't blur the
	// goroutine accounting below.
	if _, err := e.Scan(Query{Filters: []Filter{{Field: "name", Op: OpContains, Value: "a"}}}); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 100; i++ {
		if _, err := e.ScanContext(ctx, Query{Filters: []Filter{{Field: "name", Op: OpContains, Value: "a"}}}); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err=%v, want context.Canceled", i, err)
		}
		if _, err := e.AggregateContext(ctx, Aggregate{GroupBy: []string{"market"},
			Aggregates: []AggSpec{{Op: AggCount}}}); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: aggregate err=%v, want context.Canceled", i, err)
		}
	}
	// Give any straggler (there must be none) a moment to show up.
	var after int
	for i := 0; i < 50; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d across cancelled calls", before, after)
	}
}

// TestScanContextUncancelledMatchesOracle re-runs the randomized equivalence
// suite through ScanContext with a live context: the cancellation plumbing
// must be invisible when nothing cancels.
func TestScanContextUncancelledMatchesOracle(t *testing.T) {
	for seed := int64(41); seed <= 43; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			e := NewEngine(testIndexedRegistry(), randomRows(rng, 50+rng.Intn(400)))
			ctx := context.Background()
			for i := 0; i < 120; i++ {
				q := randomQuery(rng)
				planned, err1 := e.ScanContext(ctx, q)
				oracle, err2 := e.ScanOracle(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("query %d (%+v): planned err %v, oracle err %v", i, q, err1, err2)
				}
				requireSameResult(t, q, planned, oracle)
			}
		})
	}
}

// TestAggregateContextUncancelledMatchesOracle is the aggregation face of the
// same guarantee, over a dataset large enough to fan out.
func TestAggregateContextUncancelledMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	e := NewEngine(testIndexedRegistry(), randomRows(rng, parallelThreshold*2+33))
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		a := randomAggregate(rng)
		planned, err1 := e.AggregateContext(ctx, a)
		oracle, err2 := e.AggregateOracle(a)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("request %d (%+v): planned err %v, oracle err %v", i, a, err1, err2)
		}
		if err1 != nil {
			continue
		}
		requireSameAggregate(t, a, planned, oracle)
	}
}
