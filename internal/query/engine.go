package query

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Engine executes queries over an immutable item slice using a registry's
// fields. Scans never mutate the engine, so one engine serves any number of
// concurrent callers.
type Engine[T any] struct {
	reg   *Registry[T]
	items []T
}

// NewEngine binds a registry to a dataset slice. The engine keeps the slice;
// callers must not mutate it afterwards.
func NewEngine[T any](reg *Registry[T], items []T) *Engine[T] {
	return &Engine[T]{reg: reg, items: items}
}

// Fields implements Source.
func (e *Engine[T]) Fields() []FieldInfo { return e.reg.Fields() }

// Len returns the number of scannable items.
func (e *Engine[T]) Len() int { return len(e.items) }

// parallelThreshold is the dataset size above which filter matching fans out
// across CPUs. Below it the goroutine overhead outweighs the work.
const parallelThreshold = 4096

// Scan implements Source: filter, sort, limit, extract.
func (e *Engine[T]) Scan(q Query) (*Result, error) {
	start := time.Now()
	if q.Limit < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLimit, q.Limit)
	}

	// Resolve the requested columns (empty = all, registration order).
	names := q.Fields
	outFields := make([]Field[T], 0, len(names))
	infos := make([]FieldInfo, 0, len(names))
	if len(names) == 0 {
		for _, info := range e.reg.Fields() {
			f, _ := e.reg.Lookup(info.Name)
			outFields = append(outFields, f)
			infos = append(infos, info)
		}
	} else {
		for _, name := range names {
			f, ok := e.reg.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownField, name)
			}
			outFields = append(outFields, f)
			infos = append(infos, f.info())
		}
	}

	// Compile filters and sort keys up front so per-row evaluation is a
	// plain function call and malformed queries fail before any scanning.
	filters := make([]compiledFilter[T], 0, len(q.Filters))
	for _, raw := range q.Filters {
		cf, err := compileFilter(e.reg, raw)
		if err != nil {
			return nil, err
		}
		filters = append(filters, cf)
	}
	sortFields := make([]Field[T], 0, len(q.Sort))
	for _, key := range q.Sort {
		f, ok := e.reg.Lookup(key.Field)
		if !ok {
			return nil, fmt.Errorf("%w: %q (in sort)", ErrUnknownField, key.Field)
		}
		sortFields = append(sortFields, f)
	}

	matched := e.match(filters)
	total := len(matched)
	if len(sortFields) > 0 {
		e.sortMatches(matched, q.Sort, sortFields)
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}

	rows := make([][]any, 0, len(matched))
	for _, idx := range matched {
		row := make([]any, len(outFields))
		for i, f := range outFields {
			if v, null := extract(f, e.items[idx]); !null {
				row[i] = emitValue(v)
			}
		}
		rows = append(rows, row)
	}

	return &Result{
		Fields: infos,
		Rows:   rows,
		Meta: Meta{
			Scanned:         len(e.items),
			TotalMatched:    total,
			Returned:        len(rows),
			QueryTimeMicros: time.Since(start).Microseconds(),
		},
	}, nil
}

// match returns the indices of items passing every filter, in dataset order.
// Large datasets are matched in parallel chunks; concatenating the per-chunk
// index slices in chunk order preserves dataset order, which is what makes
// the later stable sort (and unsorted queries) deterministic.
func (e *Engine[T]) match(filters []compiledFilter[T]) []int {
	n := len(e.items)
	if n < parallelThreshold {
		return e.matchRange(filters, 0, n)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	parts := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = e.matchRange(filters, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	if out == nil {
		out = []int{}
	}
	return out
}

func (e *Engine[T]) matchRange(filters []compiledFilter[T], lo, hi int) []int {
	out := []int{}
	for i := lo; i < hi; i++ {
		item := e.items[i]
		ok := true
		for f := range filters {
			if !filters[f].match(item) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// sortMatches orders matched indices by the sort keys. Key values are
// extracted once per row into columns rather than inside the comparator,
// keeping the comparator allocation-free.
func (e *Engine[T]) sortMatches(matched []int, keys []SortKey, fields []Field[T]) {
	type column struct {
		vals  []any
		nulls []bool
	}
	cols := make([]column, len(fields))
	for k, f := range fields {
		col := column{vals: make([]any, len(matched)), nulls: make([]bool, len(matched))}
		for i, idx := range matched {
			v, null := extract(f, e.items[idx])
			col.vals[i], col.nulls[i] = v, null
		}
		cols[k] = col
	}
	// Sort a permutation of positions so column lookups stay aligned; ties
	// keep dataset order because the sort is stable over the identity
	// permutation.
	perm := make([]int, len(matched))
	for i := range perm {
		perm[i] = i
	}
	cmp := func(a, b int) int {
		for k := range keys {
			c := compareNullable(fields[k].Kind, cols[k].vals[a], cols[k].nulls[a],
				cols[k].vals[b], cols[k].nulls[b], keys[k].Desc)
			if c != 0 {
				return c
			}
		}
		return 0
	}
	sort.SliceStable(perm, func(i, j int) bool { return cmp(perm[i], perm[j]) < 0 })
	reordered := make([]int, len(matched))
	for i, p := range perm {
		reordered[i] = matched[p]
	}
	copy(matched, reordered)
}

// compareNullable orders two possibly-null values under one sort key: nulls
// after every non-null value in both directions, non-nulls by kind order,
// inverted when descending.
func compareNullable(kind Kind, av any, aNull bool, bv any, bNull bool, desc bool) int {
	switch {
	case aNull && bNull:
		return 0
	case aNull:
		return 1
	case bNull:
		return -1
	}
	c := compareValues(kind, av, bv)
	if desc {
		return -c
	}
	return c
}
