package query

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Engine executes queries over an immutable item slice using a registry's
// fields. Scans never mutate the visible engine state, so one engine serves
// any number of concurrent callers; the typed column caches and secondary
// indexes build lazily under per-field sync.Once, which keeps concurrent
// first touches race-free.
type Engine[T any] struct {
	reg   *Registry[T]
	items []T

	// ordinals maps field name -> slot in the per-field cache slices below
	// (registration order, fixed at construction).
	ordinals  map[string]int
	cols      []colSlot
	hashes    []hashSlot
	sortedIdx []sortedSlot

	// chunkPool / candPool recycle the per-chunk match buffers of parallel
	// scans (oracle []int chunks, planned []int32 chunks).
	chunkPool sync.Pool
	candPool  sync.Pool

	// lastSel is the previously observed match rate (matches per 1<<16
	// scanned rows, stored +1 so zero means "no history"), the capacity
	// heuristic for preallocating match buffers.
	lastSel atomic.Uint32

	// uncompressed disables the compressed column layout (dictionary
	// encoding, bitmap posting lists, zone maps), reproducing the
	// pre-compression planner. See NewEngineUncompressed.
	uncompressed bool

	// pager, when non-nil, marks a paged engine (NewEnginePaged): columns
	// page in from a snapshot on first touch instead of building from items,
	// scans pin the columns they use, and the planner skips secondary
	// indexes. Results stay byte-identical to a materialized engine's.
	pager *enginePager[T]
}

// NewEngine binds a registry to a dataset slice. The engine keeps the slice;
// callers must not mutate it (or the registry's field set) afterwards.
func NewEngine[T any](reg *Registry[T], items []T) *Engine[T] {
	e := &Engine[T]{
		reg:       reg,
		items:     items,
		ordinals:  make(map[string]int, len(reg.order)),
		cols:      make([]colSlot, len(reg.order)),
		hashes:    make([]hashSlot, len(reg.order)),
		sortedIdx: make([]sortedSlot, len(reg.order)),
	}
	for i, name := range reg.order {
		e.ordinals[name] = i
	}
	return e
}

// NewEngineUncompressed binds a registry to a dataset like NewEngine but
// with the compressed column layout disabled: no dictionary encoding, no
// bitmap posting lists, no segment zone maps — the planner exactly as it was
// before compression existed. Results are bit-identical to NewEngine's for
// every query; only layout and speed differ. Benchmarks use it as the
// baseline the compressed engine is measured against, and the equivalence
// suite runs both. Production callers should use NewEngine.
func NewEngineUncompressed[T any](reg *Registry[T], items []T) *Engine[T] {
	e := NewEngine(reg, items)
	e.uncompressed = true
	return e
}

// Fields implements Source.
func (e *Engine[T]) Fields() []FieldInfo { return e.reg.Fields() }

// Len returns the number of scannable items.
func (e *Engine[T]) Len() int { return len(e.items) }

// parallelThreshold is the row count above which filter matching fans out
// across CPUs. Below it the goroutine overhead outweighs the work.
const parallelThreshold = 4096

// prepared is one validated, compiled query: output fields resolved,
// filters compiled, sort keys bound. Both execution paths run from the same
// prepared form, so they accept and reject exactly the same queries with
// identical errors.
type prepared[T any] struct {
	outFields  []Field[T]
	outOrds    []int
	infos      []FieldInfo
	filters    []compiledFilter[T]
	sortKeys   []SortKey
	sortFields []Field[T]
	sortOrds   []int
	limit      int
}

func (e *Engine[T]) prepare(q Query) (*prepared[T], error) {
	if q.Limit < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLimit, q.Limit)
	}
	pq := &prepared[T]{limit: q.Limit}

	// Resolve the requested columns (empty = all, registration order).
	names := q.Fields
	if len(names) == 0 {
		names = e.reg.order
	}
	pq.outFields = make([]Field[T], 0, len(names))
	pq.outOrds = make([]int, 0, len(names))
	pq.infos = make([]FieldInfo, 0, len(names))
	for _, name := range names {
		f, ok := e.reg.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownField, name)
		}
		pq.outFields = append(pq.outFields, f)
		pq.outOrds = append(pq.outOrds, e.ordinals[name])
		pq.infos = append(pq.infos, f.info())
	}

	// Compile filters and sort keys up front so per-row evaluation is a
	// plain function call and malformed queries fail before any scanning.
	pq.filters = make([]compiledFilter[T], 0, len(q.Filters))
	for _, raw := range q.Filters {
		cf, err := compileFilter(e.reg, raw)
		if err != nil {
			return nil, err
		}
		pq.filters = append(pq.filters, cf)
	}
	pq.sortKeys = q.Sort
	pq.sortFields = make([]Field[T], 0, len(q.Sort))
	pq.sortOrds = make([]int, 0, len(q.Sort))
	for _, key := range q.Sort {
		f, ok := e.reg.Lookup(key.Field)
		if !ok {
			return nil, fmt.Errorf("%w: %q (in sort)", ErrUnknownField, key.Field)
		}
		pq.sortFields = append(pq.sortFields, f)
		pq.sortOrds = append(pq.sortOrds, e.ordinals[key.Field])
	}
	return pq, nil
}

// Scan implements Source on the planned path: secondary indexes answer the
// filters they can, a typed column scan covers the rest, and a bounded
// top-K selection replaces the full sort when a limit applies. Results are
// byte-identical to ScanOracle (Fields, Rows, TotalMatched — order
// included); Meta gains an Explain block and the rows-evaluated Scanned
// semantics documented on Meta.
func (e *Engine[T]) Scan(q Query) (*Result, error) {
	return e.ScanContext(context.Background(), q)
}

// ScanContext implements ContextSource: Scan with cooperative cancellation.
// The match, group and sort stages check the context at chunk boundaries (a
// few thousand rows apart), so a cancelled scan returns ctx.Err() promptly
// and every fanned-out worker has exited by the time it does. A context that
// never cancels changes nothing: the result is bit-identical to Scan's.
func (e *Engine[T]) ScanContext(ctx context.Context, q Query) (*Result, error) {
	start := time.Now()
	pq, err := e.prepare(q)
	if err != nil {
		return nil, err
	}
	if len(e.items) > math.MaxInt32 {
		// Row ids are int32 in the column path; datasets beyond 2^31 rows
		// (never reached in practice) keep the reference semantics.
		return e.scanOracle(pq, start), nil
	}
	if e.pager != nil {
		// Page in and pin every column the scan touches before any planning
		// work: a request that cannot get its columns degrades cleanly here
		// (ErrPageBudget / ErrPageUnavailable) instead of failing mid-scan.
		release, err := e.pinOrds(ctx, e.scanOrds(pq))
		if err != nil {
			return nil, err
		}
		defer release()
	}
	return e.scanPlanned(ctx, pq, start)
}

// ScanOracle implements OracleSource: the pre-planner reference path kept
// verbatim — boxed per-row extraction, every filter on every row, full
// stable sort — for the equivalence suite and benchmarks to compare
// against.
func (e *Engine[T]) ScanOracle(q Query) (*Result, error) {
	start := time.Now()
	pq, err := e.prepare(q)
	if err != nil {
		return nil, err
	}
	return e.scanOracle(pq, start), nil
}

func (e *Engine[T]) scanOracle(pq *prepared[T], start time.Time) *Result {
	matched := e.match(pq.filters)
	total := len(matched)
	if len(pq.sortFields) > 0 {
		e.sortMatches(matched, pq.sortKeys, pq.sortFields)
	}
	if pq.limit > 0 && len(matched) > pq.limit {
		matched = matched[:pq.limit]
	}

	rows := make([][]any, 0, len(matched))
	for _, idx := range matched {
		row := make([]any, len(pq.outFields))
		for i, f := range pq.outFields {
			if v, null := extract(f, e.items[idx]); !null {
				row[i] = emitValue(v)
			}
		}
		rows = append(rows, row)
	}

	return &Result{
		Fields: pq.infos,
		Rows:   rows,
		Meta: Meta{
			Scanned:         len(e.items),
			TotalMatched:    total,
			Returned:        len(rows),
			QueryTimeMicros: time.Since(start).Microseconds(),
		},
	}
}

// capHint sizes a match buffer for a scan over n rows from the previously
// observed selectivity, so matchRange stops growing its output from nil on
// every chunk. New engines start small; a hint never exceeds n.
func (e *Engine[T]) capHint(n int) int {
	sel := e.lastSel.Load()
	if sel == 0 {
		if n < 64 {
			return n
		}
		return 64
	}
	c := int(uint64(n)*uint64(sel-1)>>16) + 8
	if c > n {
		c = n
	}
	return c
}

// observeSelectivity records a finished scan's match rate for the next
// capHint.
func (e *Engine[T]) observeSelectivity(matched, scanned int) {
	if scanned == 0 {
		return
	}
	e.lastSel.Store(uint32(uint64(matched)<<16/uint64(scanned)) + 1)
}

// match returns the indices of items passing every filter, in dataset order.
// Large datasets are matched in parallel chunks; concatenating the per-chunk
// index slices in chunk order preserves dataset order, which is what makes
// the later stable sort (and unsorted queries) deterministic.
func (e *Engine[T]) match(filters []compiledFilter[T]) []int {
	n := len(e.items)
	if n < parallelThreshold {
		out := e.matchRange(filters, 0, n, make([]int, 0, e.capHint(n)))
		e.observeSelectivity(len(out), n)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	parts := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Chunk buffers come from the pool and go back after the
			// chunk-order concatenation below, so steady-state scans stop
			// re-growing []int from nil on every chunk.
			buf, _ := e.chunkPool.Get().([]int)
			if cap(buf) == 0 {
				buf = make([]int, 0, e.capHint(hi-lo))
			}
			parts[w] = e.matchRange(filters, lo, hi, buf[:0])
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int, 0, total)
	for _, p := range parts {
		out = append(out, p...)
		e.chunkPool.Put(p[:0]) //nolint:staticcheck // buffer reuse is the point
	}
	e.observeSelectivity(len(out), n)
	return out
}

func (e *Engine[T]) matchRange(filters []compiledFilter[T], lo, hi int, out []int) []int {
	for i := lo; i < hi; i++ {
		item := e.items[i]
		ok := true
		for f := range filters {
			if !filters[f].match(item) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// sortMatches orders matched indices by the sort keys. Key values are
// extracted once per row into columns rather than inside the comparator,
// keeping the comparator allocation-free.
func (e *Engine[T]) sortMatches(matched []int, keys []SortKey, fields []Field[T]) {
	type column struct {
		vals  []any
		nulls []bool
	}
	cols := make([]column, len(fields))
	for k, f := range fields {
		col := column{vals: make([]any, len(matched)), nulls: make([]bool, len(matched))}
		for i, idx := range matched {
			v, null := extract(f, e.items[idx])
			col.vals[i], col.nulls[i] = v, null
		}
		cols[k] = col
	}
	// Sort a permutation of positions so column lookups stay aligned; ties
	// keep dataset order because the sort is stable over the identity
	// permutation.
	perm := make([]int, len(matched))
	for i := range perm {
		perm[i] = i
	}
	cmp := func(a, b int) int {
		for k := range keys {
			c := compareNullable(fields[k].Kind, cols[k].vals[a], cols[k].nulls[a],
				cols[k].vals[b], cols[k].nulls[b], keys[k].Desc)
			if c != 0 {
				return c
			}
		}
		return 0
	}
	sort.SliceStable(perm, func(i, j int) bool { return cmp(perm[i], perm[j]) < 0 })
	reordered := make([]int, len(matched))
	for i, p := range perm {
		reordered[i] = matched[p]
	}
	copy(matched, reordered)
}

// compareNullable orders two possibly-null values under one sort key: nulls
// after every non-null value in both directions, non-nulls by kind order,
// inverted when descending.
func compareNullable(kind Kind, av any, aNull bool, bv any, bNull bool, desc bool) int {
	switch {
	case aNull && bNull:
		return 0
	case aNull:
		return 1
	case bNull:
		return -1
	}
	c := compareValues(kind, av, bv)
	if desc {
		return -c
	}
	return c
}
