package query

import "fmt"

// Field is one named, typed column over rows of type T. Extract returns the
// value and true, or (anything, false) when the field is null for the row —
// for example an APK-derived field on a listing whose APK failed to parse.
//
// Extracted values must match the declared kind: string for KindString,
// int/int64 for KindInt, float64 for KindFloat, bool for KindBool and
// time.Time for KindTime. A zero time also counts as null, so extractors
// need not special-case unset dates.
type Field[T any] struct {
	Name     string
	Category string
	Kind     Kind
	Doc      string
	Nullable bool
	// Indexable lets the engine build secondary indexes (hash posting
	// lists, a sorted permutation) over this field, so == / in / range
	// filters can skip the full scan. Meant for fields that are filtered
	// often and cheap to index: low-cardinality strings and bools, and the
	// numeric fields range queries target.
	Indexable bool
	// Dictionary marks a low-cardinality string field for dictionary
	// encoding: the engine stores the column as int codes into a sorted
	// dictionary of distinct values, group-by keys compare as ints, and —
	// combined with Indexable — == / in posting lists become compressed
	// bitmaps. The hint is ignored for non-string kinds, on engines built
	// with NewEngineUncompressed, and for columns whose observed cardinality
	// turns out too high to benefit (the column silently stays plain).
	// Results are bit-identical either way; only the layout changes.
	Dictionary bool
	Extract    func(T) (any, bool)
}

// Registry holds the field set of one row type, preserving registration
// order for introspection and for "all fields" queries.
type Registry[T any] struct {
	byName map[string]Field[T]
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry[T any]() *Registry[T] {
	return &Registry[T]{byName: map[string]Field[T]{}}
}

// Register adds one field. Names must be unique and non-empty, the kind must
// be one of the declared kinds and the extractor must be set.
func (r *Registry[T]) Register(f Field[T]) error {
	if f.Name == "" {
		return fmt.Errorf("query: field with empty name")
	}
	if f.Extract == nil {
		return fmt.Errorf("query: field %q has no extractor", f.Name)
	}
	switch f.Kind {
	case KindString, KindInt, KindFloat, KindBool, KindTime:
	default:
		return fmt.Errorf("query: field %q has unknown kind %q", f.Name, f.Kind)
	}
	if _, dup := r.byName[f.Name]; dup {
		return fmt.Errorf("query: duplicate field %q", f.Name)
	}
	r.byName[f.Name] = f
	r.order = append(r.order, f.Name)
	return nil
}

// MustRegister is Register for statically-known field tables, where a
// registration failure is a programming error.
func (r *Registry[T]) MustRegister(f Field[T]) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// MarkIndexable flags the named (already registered) fields as eligible for
// secondary indexes. Splitting the hint from registration keeps the field
// tables readable: the registry is built field by field, then the consumer
// names its hot filter columns in one place.
func (r *Registry[T]) MarkIndexable(names ...string) error {
	for _, name := range names {
		f, ok := r.byName[name]
		if !ok {
			return fmt.Errorf("%w: %q (in MarkIndexable)", ErrUnknownField, name)
		}
		f.Indexable = true
		r.byName[name] = f
	}
	return nil
}

// MarkDictionary flags the named (already registered) string fields for
// dictionary encoding, following MarkIndexable's pattern of keeping layout
// hints separate from the field tables. Non-string fields are rejected; the
// encoding itself remains best-effort (see Field.Dictionary).
func (r *Registry[T]) MarkDictionary(names ...string) error {
	for _, name := range names {
		f, ok := r.byName[name]
		if !ok {
			return fmt.Errorf("%w: %q (in MarkDictionary)", ErrUnknownField, name)
		}
		if f.Kind != KindString {
			return fmt.Errorf("query: field %q is %s, not string (in MarkDictionary)", name, f.Kind)
		}
		f.Dictionary = true
		r.byName[name] = f
	}
	return nil
}

// info is the introspection view of a field.
func (f Field[T]) info() FieldInfo {
	return FieldInfo{Name: f.Name, Category: f.Category, Kind: f.Kind, Doc: f.Doc,
		Nullable: f.Nullable, Indexable: f.Indexable, Dictionary: f.Dictionary}
}

// Len returns the number of registered fields.
func (r *Registry[T]) Len() int { return len(r.order) }

// Lookup returns a field by name.
func (r *Registry[T]) Lookup(name string) (Field[T], bool) {
	f, ok := r.byName[name]
	return f, ok
}

// Fields returns every field's FieldInfo in registration order.
func (r *Registry[T]) Fields() []FieldInfo {
	out := make([]FieldInfo, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name].info())
	}
	return out
}
