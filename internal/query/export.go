package query

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"marketscope/internal/pipeline"
)

// Column export/import: the bridge between a built engine and the durable
// snapshot format. ExportColumns freezes every typed column (and the bitmap
// posting lists of dictionary-encoded indexable fields) into plain exported
// slices a codec can serialize; NewEngineFromColumns rebuilds an engine from
// those slices without re-running a single extractor.
//
// The contract mirrors NewEngineAppend's: the caller asserts that the items
// slice is row-for-row the one the columns were built over. Import validates
// everything structural — lengths, null-bitmap consistency, dictionary order,
// code ranges, posting-list membership, zone maps — so a corrupted snapshot
// fails loudly here, but value agreement between items and columns is the
// caller's contract (the durable layer's torture suite asserts it by
// comparing planned scans against the boxed-extractor oracle).

// ZoneData is the exported form of one segment zone map.
type ZoneData struct {
	Rows   int32
	Nulls  int32
	MinRow int32
	MaxRow int32
}

// ColumnData is one field's column in exported form. Exactly one value
// representation is populated, selected by Kind (strings use either Strs or
// Dict+Codes); times are decomposed into wall seconds, nanoseconds and the
// zone offset so the codec never touches time.Time internals.
type ColumnData struct {
	Name      string
	Kind      Kind
	NullWords []uint64
	NullCount int
	HasNaN    bool

	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool

	// Times: per-row absolute instant (Unix seconds + nanoseconds) and UTC
	// offset in seconds. The offset reproduces RFC 3339 formatting — the only
	// location property emitValue observes — without serializing zone names.
	TimeSec  []int64
	TimeNsec []int32
	TimeOff  []int32

	// Dictionary layout (string columns): Dict is sorted and unique, Codes
	// holds one index per row (zero where null).
	Dict  []string
	Codes []uint32

	// SegmentRows is the zone-map segment geometry the zones were built with;
	// Zones has one entry per segment. Import verifies them against a rebuild
	// over the imported values.
	SegmentRows int
	Zones       []ZoneData

	// Postings, when non-nil, carries the hash index's per-dictionary-code
	// posting lists (ascending rows); import rebuilds the compressed bitmaps
	// from them. Only dictionary-encoded indexable fields export postings.
	Postings [][]int32
}

// ExportColumns materializes every registered field's column (through the
// same lazy cache scans use) and returns the exported forms in registration
// order. The engine may be serving concurrent scans throughout.
func (e *Engine[T]) ExportColumns() []ColumnData {
	out := make([]ColumnData, 0, len(e.reg.order))
	for ord, name := range e.reg.order {
		f := e.reg.byName[name]
		c := e.columnFor(ord)
		cd := ColumnData{
			Name:      name,
			Kind:      c.kind,
			NullWords: c.nulls,
			NullCount: c.nullCount,
			HasNaN:    c.hasNaN,
			Ints:      c.ints,
			Floats:    c.floats,
			Strs:      c.strs,
			Bools:     c.bools,
			Dict:      c.dict,
			Codes:     c.codes,
		}
		if c.kind == KindTime {
			n := len(c.times)
			cd.TimeSec = make([]int64, n)
			cd.TimeNsec = make([]int32, n)
			cd.TimeOff = make([]int32, n)
			for i, t := range c.times {
				_, off := t.Zone()
				cd.TimeSec[i] = t.Unix()
				cd.TimeNsec[i] = int32(t.Nanosecond())
				cd.TimeOff[i] = int32(off)
			}
		}
		if c.kind == KindString && c.strs == nil && c.dict == nil {
			// A fully-null dictionary column degenerates to nil slices when
			// encoded (no non-null value ever reached the dictionary);
			// normalize to the plain layout so lengths stay row-counted.
			cd.Strs = make([]string, len(e.items))
			cd.Codes = nil
		}
		cd.SegmentRows = segmentSize
		cd.Zones = exportZones(c.zones)
		if c.dict != nil && f.Indexable {
			if ix := e.hashFor(ord); ix.dictBMs != nil {
				cd.Postings = make([][]int32, len(ix.dictBMs))
				for k, bm := range ix.dictBMs {
					cd.Postings[k] = bm.rows()
				}
			}
		}
		out = append(out, cd)
	}
	return out
}

func exportZones(zones []zone) []ZoneData {
	if zones == nil {
		return nil
	}
	out := make([]ZoneData, len(zones))
	for i, z := range zones {
		out[i] = ZoneData{Rows: z.rows, Nulls: z.nulls, MinRow: z.minRow, MaxRow: z.maxRow}
	}
	return out
}

// NewEngineFromColumns builds a compressed engine over items with every
// column in cols pre-installed instead of lazily extracted. Fields absent
// from cols stay lazy, exactly as on a cold engine. Every structural
// property of every column is validated against items' length and the null
// bitmap; any inconsistency returns an error and no engine.
func NewEngineFromColumns[T any](reg *Registry[T], items []T, cols []ColumnData) (*Engine[T], error) {
	e := NewEngine(reg, items)
	seen := make(map[string]bool, len(cols))
	ords := make([]int, len(cols))
	for i := range cols {
		cd := &cols[i]
		if seen[cd.Name] {
			return nil, fmt.Errorf("query: import: duplicate column %q", cd.Name)
		}
		seen[cd.Name] = true
		ord, ok := e.ordinals[cd.Name]
		if !ok {
			return nil, fmt.Errorf("query: import: unknown column %q", cd.Name)
		}
		if f := reg.byName[cd.Name]; f.Kind != cd.Kind {
			return nil, fmt.Errorf("query: import: column %q is %s, registry has %s", cd.Name, cd.Kind, f.Kind)
		}
		ords[i] = ord
	}
	// The per-column work — structural validation, zone rebuild-and-compare,
	// posting-list reconstruction — is independent across columns and
	// dominates snapshot recovery time, so fan it out; installation into the
	// engine's slots stays serial below.
	type imported struct {
		c   *column
		ix  *hashIndex
		err error
	}
	results := make([]imported, len(cols))
	pipeline.ForEach(len(cols), 0, func(i int) {
		cd := &cols[i]
		c, err := importColumn(reg.byName[cd.Name].Dictionary, cd, len(items))
		if err != nil {
			results[i].err = fmt.Errorf("query: import: column %q: %w", cd.Name, err)
			return
		}
		results[i].c = c
		if cd.Postings != nil {
			ix, err := importPostings(c, cd.Postings)
			if err != nil {
				results[i].err = fmt.Errorf("query: import: column %q postings: %w", cd.Name, err)
				return
			}
			results[i].ix = ix
		}
	})
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		slot := &e.cols[ords[i]]
		c := results[i].c
		slot.once.Do(func() { slot.col.Store(c) })
		if ix := results[i].ix; ix != nil {
			hslot := &e.hashes[ords[i]]
			hslot.once.Do(func() { hslot.ix = ix })
		}
	}
	return e, nil
}

// importColumn validates one exported column against the row count and
// reassembles the internal representation.
func importColumn(dictionaryHint bool, cd *ColumnData, n int) (*column, error) {
	c := &column{kind: cd.Kind, nulls: bitset(cd.NullWords), nullCount: cd.NullCount, hasNaN: cd.HasNaN}
	if len(cd.NullWords) != (n+63)/64 {
		return nil, fmt.Errorf("null bitmap has %d words, want %d for %d rows", len(cd.NullWords), (n+63)/64, n)
	}
	popcount := 0
	for _, w := range cd.NullWords {
		popcount += bits.OnesCount64(w)
	}
	if popcount != cd.NullCount {
		return nil, fmt.Errorf("null count %d does not match bitmap population %d", cd.NullCount, popcount)
	}
	if n%64 != 0 && len(cd.NullWords) > 0 {
		if stray := cd.NullWords[len(cd.NullWords)-1] >> (uint(n) % 64); stray != 0 {
			return nil, fmt.Errorf("null bitmap has bits set past row %d", n)
		}
	}

	wantLen := func(what string, got int) error {
		if got != n {
			return fmt.Errorf("%s has %d entries, want %d", what, got, n)
		}
		return nil
	}
	switch cd.Kind {
	case KindInt:
		if err := wantLen("int column", len(cd.Ints)); err != nil {
			return nil, err
		}
		c.ints = cd.Ints
	case KindFloat:
		if err := wantLen("float column", len(cd.Floats)); err != nil {
			return nil, err
		}
		hasNaN := false
		for i, v := range cd.Floats {
			if math.IsNaN(v) && !c.nulls.get(i) {
				hasNaN = true
				break
			}
		}
		if hasNaN != cd.HasNaN {
			return nil, fmt.Errorf("hasNaN flag %v does not match values (%v)", cd.HasNaN, hasNaN)
		}
		c.floats = cd.Floats
	case KindBool:
		if err := wantLen("bool column", len(cd.Bools)); err != nil {
			return nil, err
		}
		c.bools = cd.Bools
	case KindTime:
		if err := wantLen("time seconds", len(cd.TimeSec)); err != nil {
			return nil, err
		}
		if len(cd.TimeNsec) != n || len(cd.TimeOff) != n {
			return nil, fmt.Errorf("time column slices disagree: %d/%d/%d entries, want %d",
				len(cd.TimeSec), len(cd.TimeNsec), len(cd.TimeOff), n)
		}
		c.times = make([]time.Time, n)
		for i := range cd.TimeSec {
			if cd.TimeNsec[i] < 0 || cd.TimeNsec[i] >= 1e9 {
				return nil, fmt.Errorf("row %d has nanoseconds %d out of range", i, cd.TimeNsec[i])
			}
			t := time.Unix(cd.TimeSec[i], int64(cd.TimeNsec[i])).UTC()
			if off := cd.TimeOff[i]; off != 0 {
				t = t.In(time.FixedZone("", int(off)))
			}
			c.times[i] = t
		}
	case KindString:
		if cd.Dict != nil {
			if !dictionaryHint {
				return nil, fmt.Errorf("dictionary layout on a field without the dictionary hint")
			}
			if err := wantLen("code column", len(cd.Codes)); err != nil {
				return nil, err
			}
			for k := 1; k < len(cd.Dict); k++ {
				if cd.Dict[k-1] >= cd.Dict[k] {
					return nil, fmt.Errorf("dictionary not sorted/unique at entry %d", k)
				}
			}
			for i, code := range cd.Codes {
				if c.nulls.get(i) {
					if code != 0 {
						return nil, fmt.Errorf("null row %d has nonzero code %d", i, code)
					}
					continue
				}
				if int(code) >= len(cd.Dict) {
					return nil, fmt.Errorf("row %d has code %d past dictionary size %d", i, code, len(cd.Dict))
				}
			}
			c.dict, c.codes = cd.Dict, cd.Codes
		} else {
			if err := wantLen("string column", len(cd.Strs)); err != nil {
				return nil, err
			}
			c.strs = cd.Strs
		}
	default:
		return nil, fmt.Errorf("unknown kind %q", cd.Kind)
	}
	if cd.Kind != KindFloat && cd.HasNaN {
		return nil, fmt.Errorf("hasNaN set on a %s column", cd.Kind)
	}

	// Zone maps: adopt the stored ones when their geometry matches this
	// engine's segment size, otherwise derive them fresh. The stored zones are
	// integrity-checked by the caller's transport (the snapshot section CRC),
	// so a full value-by-value rebuild would only re-verify what the checksum
	// already guarantees — at a full compareRows pass per column, the single
	// largest cost of importing a snapshot. Adoption still validates every
	// structural invariant pruning relies on (witness rows in-segment,
	// non-null, index-safe, min<=max), so a logically inconsistent writer
	// fails loudly instead of mis-pruning.
	if cd.SegmentRows == segmentSize && len(cd.Zones) > 0 {
		zones, err := adoptZones(c, cd.Zones, n)
		if err != nil {
			return nil, fmt.Errorf("zone maps: %w", err)
		}
		c.zones = zones
	} else {
		c.buildZones()
	}
	return c, nil
}

// adoptZones converts exported zone maps into the internal representation,
// enforcing the invariants a pruning decision depends on. Checks are O(1) per
// segment — the point of adoption is skipping the O(rows) rebuild.
func adoptZones(c *column, stored []ZoneData, n int) ([]zone, error) {
	want := (n + segmentSize - 1) / segmentSize
	if len(stored) != want {
		return nil, fmt.Errorf("stored %d segments, want %d for %d rows", len(stored), want, n)
	}
	ordered := sortable(c.kind) && !c.hasNaN
	zones := make([]zone, len(stored))
	for i, s := range stored {
		lo := int32(i * segmentSize)
		hi := lo + int32(segmentSize)
		if int(hi) > n {
			hi = int32(n)
		}
		if s.Rows != hi-lo {
			return nil, fmt.Errorf("segment %d has %d rows, want %d", i, s.Rows, hi-lo)
		}
		// Null counts prune IS NULL / NOT NULL scans, so recount them from the
		// bitmap: segments are word-aligned (segmentSize is a multiple of 64)
		// and stray bits past the last row were rejected above, so a popcount
		// per word is exact.
		nulls := int32(0)
		for w := lo / 64; w < (hi+63)/64; w++ {
			nulls += int32(bits.OnesCount64(c.nulls[w]))
		}
		if s.Nulls != nulls {
			return nil, fmt.Errorf("segment %d claims %d nulls, bitmap holds %d", i, s.Nulls, nulls)
		}
		if !ordered || s.Nulls == s.Rows {
			// Unordered kinds, NaN-poisoned floats and all-null segments carry
			// no witnesses, mirroring buildZones.
			if s.MinRow != -1 || s.MaxRow != -1 {
				return nil, fmt.Errorf("segment %d has witnesses {%d %d} but must not", i, s.MinRow, s.MaxRow)
			}
			zones[i] = zone{rows: s.Rows, nulls: s.Nulls, minRow: -1, maxRow: -1}
			continue
		}
		// Ordered segment with at least one non-null row: witnesses must be
		// in-segment non-null rows (they index value slices during pruning)
		// with min <= max under the column's own comparison.
		for _, w := range [2]int32{s.MinRow, s.MaxRow} {
			if w < lo || w >= hi {
				return nil, fmt.Errorf("segment %d witness row %d outside [%d,%d)", i, w, lo, hi)
			}
			if c.nulls.get(int(w)) {
				return nil, fmt.Errorf("segment %d witness row %d is null", i, w)
			}
		}
		if c.compareRows(int(s.MinRow), int(s.MaxRow)) > 0 {
			return nil, fmt.Errorf("segment %d min witness %d exceeds max witness %d", i, s.MinRow, s.MaxRow)
		}
		zones[i] = zone{rows: s.Rows, nulls: s.Nulls, minRow: s.MinRow, maxRow: s.MaxRow}
	}
	return zones, nil
}

// importPostings validates exported posting lists against the column (every
// non-null row appears exactly once, under its own code, ascending) and
// rebuilds the per-code bitmaps.
func importPostings(c *column, postings [][]int32) (*hashIndex, error) {
	if c.dict == nil {
		return nil, fmt.Errorf("postings on a non-dictionary column")
	}
	if len(postings) != len(c.dict) {
		return nil, fmt.Errorf("%d posting lists for %d dictionary entries", len(postings), len(c.dict))
	}
	n := columnLen(c)
	total := 0
	ix := &hashIndex{ok: true, dict: c.dict, dictBMs: make([]*bitmap, len(postings))}
	for k, rows := range postings {
		bm := &bitmap{}
		prev := int32(-1)
		for _, row := range rows {
			if row <= prev || int(row) >= n {
				return nil, fmt.Errorf("code %d has row %d out of order or range", k, row)
			}
			if c.nulls.get(int(row)) || c.codes[row] != uint32(k) {
				return nil, fmt.Errorf("row %d listed under code %d but holds code %d (null=%v)",
					row, k, c.codes[row], c.nulls.get(int(row)))
			}
			bm.add(row)
			prev = row
		}
		total += len(rows)
		ix.dictBMs[k] = bm
	}
	if total != n-c.nullCount {
		return nil, fmt.Errorf("posting lists cover %d rows, column has %d non-null", total, n-c.nullCount)
	}
	return ix, nil
}
