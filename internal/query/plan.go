package query

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The planner: decide, per compiled filter, whether a secondary index can
// answer it; intersect the resulting posting lists in dataset order; run the
// remaining (residual) predicates as a typed column scan over only the
// candidates; then sort — a bounded top-K selection when a limit applies —
// and materialize rows straight from the column caches.
//
// The contract, enforced by the randomized equivalence suite and the fuzz
// target, is that Scan returns byte-identical Fields/Rows/TotalMatched to
// ScanOracle for every query, order included.

// indexedList is one filter the planner answered from an index: either a
// row slice or a compressed bitmap (dictionary posting lists), never both.
type indexedList struct {
	rows []int32 // ascending dataset order; may alias shared index state
	bm   *bitmap // compressed row set; may alias shared index state
	desc string  // explain fragment, e.g. "hash(market)" or "bitmap(market)"
	// owned is true when rows is a fresh allocation (a sorted-index span or
	// an in-merge) the scan may keep and mutate; false for hash posting
	// lists, which alias immutable index state and must be copied first.
	// Bitmaps are never mutated, so owned is irrelevant for them.
	owned bool
}

// size is the list's row count, however it is represented.
func (l *indexedList) size() int {
	if l.bm != nil {
		return l.bm.n
	}
	return len(l.rows)
}

// indexCandidate is a filter an index could answer, before the planner has
// decided to: count is the (upper-bound) row count known without
// materializing, so a non-selective candidate is demoted for free instead
// of paying an O(n log n) span copy it would then throw away.
type indexCandidate struct {
	count       int
	materialize func() indexedList
}

// planFilters splits the compiled filters into index-answered posting lists
// and residual predicates. A candidate covering more than half the dataset
// is demoted to a residual predicate: walking (and materializing) its rows
// would cost more than evaluating the filter inside the candidate scan.
func (e *Engine[T]) planFilters(filters []compiledFilter[T]) (lists []indexedList, residual []compiledFilter[T]) {
	n := len(e.items)
	for _, cf := range filters {
		cand, ok := e.indexLookup(cf)
		if !ok || cand.count > n/2 {
			residual = append(residual, cf)
			continue
		}
		lists = append(lists, cand.materialize())
	}
	return lists, residual
}

// indexLookup tries to answer one filter from a secondary index.
func (e *Engine[T]) indexLookup(cf compiledFilter[T]) (indexCandidate, bool) {
	if e.pager != nil {
		// Paged engines plan without secondary indexes: building one would
		// materialize a column outside the page budget, and a bitmap lookup
		// on an absent index must read as "no index", never as "no rows".
		// Every filter runs as a residual scan over the pinned columns —
		// results are identical, only Explain differs.
		return indexCandidate{}, false
	}
	f := cf.field
	if !f.Indexable {
		return indexCandidate{}, false
	}
	ord, ok := e.ordinals[f.Name]
	if !ok {
		return indexCandidate{}, false
	}
	desc := ""
	sortedSpan := func(op Op, operand any) (indexCandidate, bool) {
		six := e.sortedFor(ord)
		if !six.ok {
			return indexCandidate{}, false
		}
		lo, hi := six.spanBounds(op, operand)
		return indexCandidate{count: hi - lo, materialize: func() indexedList {
			return indexedList{rows: six.spanRows(op, lo, hi), desc: desc, owned: true}
		}}, true
	}
	switch cf.op {
	case OpEq:
		if hashable(f.Kind) {
			ix := e.hashFor(ord)
			if ix.dictBMs != nil {
				desc = "bitmap(" + f.Name + ")"
				bm := ix.dictBM(cf.operand)
				count := 0
				if bm != nil {
					count = bm.n
				}
				return indexCandidate{count: count, materialize: func() indexedList {
					if bm == nil {
						// Non-nil empty rows: an intersection producing zero
						// candidates must stay distinguishable from "no index
						// applied" (nil), which means a full scan downstream.
						return indexedList{rows: []int32{}, desc: desc, owned: true}
					}
					return indexedList{bm: bm, desc: desc}
				}}, true
			}
			desc = "hash(" + f.Name + ")"
			rows := ix.postings(cf.operand)
			return indexCandidate{count: len(rows), materialize: func() indexedList {
				return indexedList{rows: rows, desc: desc}
			}}, true
		}
		desc = "sorted(" + f.Name + ")"
		return sortedSpan(OpEq, cf.operand)
	case OpIn:
		if hashable(f.Kind) {
			ix := e.hashFor(ord)
			if ix.dictBMs != nil {
				// Union the per-code bitmaps eagerly: the OR costs O(result
				// words), gives an exact (duplicate-free) count for the
				// demotion check and is itself the materialized list.
				desc = "bitmap(" + f.Name + ")"
				bms := make([]*bitmap, 0, len(cf.operands))
				for _, operand := range cf.operands {
					if bm := ix.dictBM(operand); bm != nil {
						bms = append(bms, bm)
					}
				}
				merged := bmOrAll(bms)
				return indexCandidate{count: merged.n, materialize: func() indexedList {
					return indexedList{bm: merged, desc: desc}
				}}, true
			}
			desc = "hash(" + f.Name + ")"
			sub := make([][]int32, 0, len(cf.operands))
			total := 0
			for _, operand := range cf.operands {
				rows := ix.postings(operand)
				sub = append(sub, rows)
				total += len(rows)
			}
			// total counts duplicate operands' rows twice; it is only the
			// demotion upper bound, the merge dedups before intersection.
			return indexCandidate{count: total, materialize: func() indexedList {
				return indexedList{rows: mergePostings(sub), desc: desc, owned: true}
			}}, true
		}
	case OpLt, OpLe, OpGt, OpGe:
		desc = "sorted(" + f.Name + ")"
		return sortedSpan(cf.op, cf.operand)
	}
	return indexCandidate{}, false
}

// intersectLists intersects posting lists (each ascending) smallest-first,
// returning a slice the caller owns, in dataset order. Shared (index-owned)
// lists are copied before being written to. Bitmap lists intersect
// word-parallel among themselves; a mixed intersection materializes the
// bitmap product once and finishes with the in-place row-list merge.
// The result is never nil — matchColumns reads nil candidates as "full
// scan", and an empty intersection means the opposite: nothing can match.
func intersectLists(lists []indexedList) []int32 {
	sort.Slice(lists, func(i, j int) bool { return lists[i].size() < lists[j].size() })
	var out []int32
	var bm *bitmap
	switch first := lists[0]; {
	case first.bm != nil:
		bm = first.bm
	case first.owned:
		out = first.rows
	default:
		out = make([]int32, len(first.rows))
		copy(out, first.rows)
	}
	for _, l := range lists[1:] {
		if bm != nil {
			if l.bm != nil {
				bm = bmAnd(bm, l.bm)
				continue
			}
			out = bm.rows()
			bm = nil
		}
		if len(out) == 0 {
			break
		}
		if l.bm != nil {
			// Row list already smaller than the bitmap: probe membership.
			kept := out[:0]
			for _, row := range out {
				if l.bm.contains(row) {
					kept = append(kept, row)
				}
			}
			out = kept
			continue
		}
		out = intersect2(out, l.rows)
	}
	if bm != nil {
		return bm.rows()
	}
	if out == nil {
		out = []int32{}
	}
	return out
}

// intersect2 merges two ascending row lists in place of a (writes into a's
// prefix, which intersectLists owns).
func intersect2(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// predicate compiles one filter into a closure over the field's typed
// column: no boxing, no reflection, no normalize() in the row loop. Matches
// compiledFilter.match row for row.
func (e *Engine[T]) predicate(cf compiledFilter[T]) func(int) bool {
	col := e.columnFor(e.ordinals[cf.field.Name])
	nulls := col.nulls
	switch cf.op {
	case OpIsNull:
		want := cf.wantNull
		return func(i int) bool { return nulls.get(i) == want }
	case OpContains:
		sub := cf.operand.(string)
		if col.dict != nil {
			// One Contains per dictionary entry instead of one per row.
			match := make([]bool, len(col.dict))
			for k, s := range col.dict {
				match[k] = strings.Contains(s, sub)
			}
			codes := col.codes
			return func(i int) bool { return !nulls.get(i) && match[codes[i]] }
		}
		strs := col.strs
		return func(i int) bool { return !nulls.get(i) && strings.Contains(strs[i], sub) }
	case OpIn:
		if col.dict != nil {
			// Resolve each operand to a code once; the row loop is one
			// table lookup.
			match := make([]bool, len(col.dict))
			for _, operand := range cf.operands {
				s, ok := operand.(string)
				if !ok {
					continue
				}
				if k := sort.SearchStrings(col.dict, s); k < len(col.dict) && col.dict[k] == s {
					match[k] = true
				}
			}
			codes := col.codes
			return func(i int) bool { return !nulls.get(i) && match[codes[i]] }
		}
		operands := cf.operands
		return func(i int) bool {
			if nulls.get(i) {
				return false
			}
			for _, operand := range operands {
				if col.compareOperand(i, operand) == 0 {
					return true
				}
			}
			return false
		}
	}
	// Ordering operators: specialize the hot kinds so the row loop compares
	// machine types directly; the generic fallback still avoids boxing.
	op := cf.op
	switch col.kind {
	case KindInt:
		vals, want := col.ints, cf.operand.(int64)
		return func(i int) bool { return !nulls.get(i) && opHolds(op, cmpOrdered(vals[i], want)) }
	case KindFloat:
		vals, want := col.floats, cf.operand.(float64)
		return func(i int) bool { return !nulls.get(i) && opHolds(op, cmpOrdered(vals[i], want)) }
	case KindString:
		want := cf.operand.(string)
		if col.dict != nil {
			return dictOrderPredicate(col, op, want, nulls)
		}
		vals := col.strs
		return func(i int) bool { return !nulls.get(i) && opHolds(op, cmpOrdered(vals[i], want)) }
	}
	operand := cf.operand
	return func(i int) bool { return !nulls.get(i) && opHolds(op, col.compareOperand(i, operand)) }
}

// dictOrderPredicate compiles an ordering operator over a dictionary-encoded
// column: the operand binary-searches into the sorted dictionary once, then
// every row is a code-interval test — no string comparison in the loop.
func dictOrderPredicate(col *column, op Op, want string, nulls bitset) func(int) bool {
	firstGE := sort.SearchStrings(col.dict, want)
	exact := firstGE < len(col.dict) && col.dict[firstGE] == want
	codes := col.codes
	switch op {
	case OpEq:
		if !exact {
			return func(int) bool { return false }
		}
		w := uint32(firstGE)
		return func(i int) bool { return !nulls.get(i) && codes[i] == w }
	case OpNe:
		if !exact {
			return func(i int) bool { return !nulls.get(i) }
		}
		w := uint32(firstGE)
		return func(i int) bool { return !nulls.get(i) && codes[i] != w }
	}
	firstGT := firstGE
	if exact {
		firstGT++
	}
	// The matching codes form the half-open interval [lo, hi).
	var lo, hi uint32
	switch op {
	case OpLt:
		lo, hi = 0, uint32(firstGE)
	case OpLe:
		lo, hi = 0, uint32(firstGT)
	case OpGt:
		lo, hi = uint32(firstGT), uint32(len(col.dict))
	case OpGe:
		lo, hi = uint32(firstGE), uint32(len(col.dict))
	}
	return func(i int) bool { return !nulls.get(i) && codes[i] >= lo && codes[i] < hi }
}

// opHolds applies an ordering operator to a three-way comparison result.
func opHolds(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// zonePruners compiles the zone-map skip tests of a filter set: one
// func(segment) per filter whose column has zones and whose operator admits
// a sound rule. A pruner returning true means the segment provably contains
// no row matching that filter, so (filters being conjunctive) the whole
// segment is skipped.
func (e *Engine[T]) zonePruners(filters []compiledFilter[T]) []func(int) bool {
	var pruners []func(int) bool
	for _, cf := range filters {
		col := e.columnFor(e.ordinals[cf.field.Name])
		if col.zones == nil {
			continue
		}
		if p := zonePruner(col, cf.op, cf.operand, cf.operands, cf.wantNull); p != nil {
			pruners = append(pruners, p)
		}
	}
	return pruners
}

// zonePruner builds one filter's per-segment skip test over a zoned column.
// Bounds checks go through compareOperand on the zone's witness rows, so
// pruning uses exactly the scan's comparison semantics; columns without
// min/max witnesses (unordered kinds, NaN floats, all-null segments) fall
// back to null-count rules only. The test must never skip a segment holding
// a matching row — it may conservatively keep non-matching ones.
func zonePruner(col *column, op Op, operand any, operands []any, wantNull bool) func(int) bool {
	zones := col.zones
	if op == OpIsNull {
		if wantNull {
			return func(s int) bool { return zones[s].nulls == 0 }
		}
		return func(s int) bool { return zones[s].nulls == zones[s].rows }
	}
	// Every other operator matches only non-null rows, so an all-null
	// segment always prunes; the ordered rules below refine that.
	switch op {
	case OpEq:
		return func(s int) bool {
			z := &zones[s]
			if z.nulls == z.rows {
				return true
			}
			return z.minRow >= 0 &&
				(col.compareOperand(int(z.minRow), operand) > 0 ||
					col.compareOperand(int(z.maxRow), operand) < 0)
		}
	case OpNe:
		return func(s int) bool {
			z := &zones[s]
			if z.nulls == z.rows {
				return true
			}
			// Prunable only when every non-null row equals the operand.
			return z.minRow >= 0 &&
				col.compareOperand(int(z.minRow), operand) == 0 &&
				col.compareOperand(int(z.maxRow), operand) == 0
		}
	case OpLt:
		return func(s int) bool {
			z := &zones[s]
			return z.nulls == z.rows ||
				(z.minRow >= 0 && col.compareOperand(int(z.minRow), operand) >= 0)
		}
	case OpLe:
		return func(s int) bool {
			z := &zones[s]
			return z.nulls == z.rows ||
				(z.minRow >= 0 && col.compareOperand(int(z.minRow), operand) > 0)
		}
	case OpGt:
		return func(s int) bool {
			z := &zones[s]
			return z.nulls == z.rows ||
				(z.maxRow >= 0 && col.compareOperand(int(z.maxRow), operand) <= 0)
		}
	case OpGe:
		return func(s int) bool {
			z := &zones[s]
			return z.nulls == z.rows ||
				(z.maxRow >= 0 && col.compareOperand(int(z.maxRow), operand) < 0)
		}
	case OpIn:
		return func(s int) bool {
			z := &zones[s]
			if z.nulls == z.rows {
				return true
			}
			if z.minRow < 0 {
				return false
			}
			for _, operand := range operands {
				if col.compareOperand(int(z.minRow), operand) <= 0 &&
					col.compareOperand(int(z.maxRow), operand) >= 0 {
					return false
				}
			}
			return true
		}
	case OpContains:
		return func(s int) bool { return zones[s].nulls == zones[s].rows }
	}
	return nil
}

// matchColumns evaluates predicates over the typed columns. candidates nil
// means the full dataset; on that path, compiled zone pruners first decide
// per segment whether any row can match, whole skipped segments never enter
// the row loop, and the skip/scan tallies land in explain (which may be
// nil). Output is ascending dataset order; large inputs fan out across CPUs
// in chunk order exactly like the oracle's match(). The canceler is polled
// every cancelStride rows; a cancelled scan joins every worker, recycles the
// chunk buffers and returns ctx.Err().
func (e *Engine[T]) matchColumns(ctx context.Context, filters []compiledFilter[T], candidates []int32, explain *Explain) ([]int32, error) {
	cancel := newCanceler(ctx)
	preds := make([]func(int) bool, len(filters))
	for i, cf := range filters {
		preds[i] = e.predicate(cf)
	}
	n := len(e.items)
	if candidates != nil {
		n = len(candidates)
	}
	var skip []bool
	if candidates == nil && !e.uncompressed && n > 0 {
		if pruners := e.zonePruners(filters); len(pruners) > 0 {
			skip = make([]bool, (n+segmentSize-1)/segmentSize)
			for s := range skip {
				for _, p := range pruners {
					if p(s) {
						skip[s] = true
						break
					}
				}
			}
			if explain != nil {
				for s, sk := range skip {
					rows := segmentSize
					if (s+1)*segmentSize > n {
						rows = n - s*segmentSize
					}
					if sk {
						explain.SegmentsSkipped++
						explain.SegmentRowsSkipped += rows
					} else {
						explain.SegmentsScanned++
						explain.SegmentRowsScanned += rows
					}
				}
			}
		}
	}
	rowAt := func(i int) int {
		if candidates != nil {
			return int(candidates[i])
		}
		return i
	}
	// scanChunk returns false when it observed cancellation; out is then
	// partial and must be discarded.
	scanChunk := func(lo, hi int, out []int32) ([]int32, bool) {
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelStride == 0 && cancel.hit() {
				return out, false
			}
			if skip != nil && skip[i/segmentSize] {
				// Jump to the segment's last row; the loop increment moves
				// past it.
				i = (i/segmentSize+1)*segmentSize - 1
				continue
			}
			row := rowAt(i)
			ok := true
			for _, p := range preds {
				if !p(row) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, int32(row))
			}
		}
		return out, true
	}
	if n < parallelThreshold {
		out, ok := scanChunk(0, n, make([]int32, 0, e.capHint(n)))
		if !ok {
			return nil, ctx.Err()
		}
		return out, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	parts := make([][]int32, workers)
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf, _ := e.candPool.Get().([]int32)
			if cap(buf) == 0 {
				buf = make([]int32, 0, e.capHint(hi-lo))
			}
			part, ok := scanChunk(lo, hi, buf[:0])
			if !ok {
				cancelled.Store(true)
			}
			parts[w] = part
		}(w, lo, hi)
	}
	wg.Wait()
	if cancelled.Load() {
		for _, p := range parts {
			if p != nil {
				e.candPool.Put(p[:0]) //nolint:staticcheck // slice reuse is the point
			}
		}
		return nil, ctx.Err()
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
		e.candPool.Put(p[:0]) //nolint:staticcheck // slice reuse is the point
	}
	return out, nil
}

// planMatch is the planner's filter stage, shared by Scan and Aggregate:
// index-answered filters become posting lists intersected smallest-first,
// the residual predicates run as a typed column scan over only the
// candidates, and the Explain block records every decision. The returned
// rows are in ascending dataset order. A cancelled context surfaces as
// ctx.Err() from the column scan.
func (e *Engine[T]) planMatch(ctx context.Context, filters []compiledFilter[T]) ([]int32, *Explain, error) {
	n := len(e.items)
	lists, residual := e.planFilters(filters)

	explain := &Explain{DatasetRows: n}
	var matched []int32
	var err error
	if len(lists) == 0 {
		// No usable index: full column scan, the pre-planner row count —
		// minus whole segments the zone maps proved empty, when they ran.
		matched, err = e.matchColumns(ctx, filters, nil, explain)
		explain.Candidates = n
		if len(filters) > 0 {
			explain.ResidualScanned = n
			if explain.SegmentsSkipped+explain.SegmentsScanned > 0 {
				explain.ResidualScanned = explain.SegmentRowsScanned
			}
		}
	} else {
		frags := make([]string, len(lists))
		for i, l := range lists {
			frags[i] = l.desc
		}
		sort.Strings(frags)
		explain.IndexUsed = strings.Join(frags, "+")
		candidates := intersectLists(lists)
		explain.Candidates = len(candidates)
		if len(residual) > 0 {
			matched, err = e.matchColumns(ctx, residual, candidates, explain)
			explain.ResidualScanned = len(candidates)
		} else {
			matched = candidates
		}
	}
	if err != nil {
		return nil, nil, err
	}
	e.observeSelectivity(len(matched), explain.Candidates)
	return matched, explain, nil
}

// scanPlanned is the default Scan executor.
func (e *Engine[T]) scanPlanned(ctx context.Context, pq *prepared[T], start time.Time) (*Result, error) {
	matched, explain, err := e.planMatch(ctx, pq.filters)
	if err != nil {
		return nil, err
	}

	total := len(matched)
	if len(pq.sortFields) > 0 {
		// The sort and materialization stages run after a cancellation
		// point: a request whose deadline died during the match never pays
		// for ordering rows it will not return.
		if cancel := newCanceler(ctx); cancel.hit() {
			return nil, ctx.Err()
		}
		less := e.rowLess(pq.sortKeys, pq.sortOrds)
		if pq.limit > 0 && pq.limit < len(matched) {
			matched = topK(matched, pq.limit, less)
		} else {
			sort.Slice(matched, func(i, j int) bool { return less(matched[i], matched[j]) })
		}
	}
	if pq.limit > 0 && len(matched) > pq.limit {
		matched = matched[:pq.limit]
	}
	if cancel := newCanceler(ctx); cancel.hit() {
		return nil, ctx.Err()
	}

	return &Result{
		Fields: pq.infos,
		Rows:   e.materializeColumns(matched, pq.outOrds),
		Meta: Meta{
			Scanned:         explain.ResidualScanned,
			TotalMatched:    total,
			Returned:        len(matched),
			QueryTimeMicros: time.Since(start).Microseconds(),
			Explain:         explain,
		},
	}, nil
}

// rowLess builds the strict total order the sort stage uses: the query's
// sort keys over the cached columns (nulls after everything, direction
// inverted per key), ties broken by dataset order. Sorting by it is
// equivalent to the oracle's stable sort, and it is what makes bounded
// top-K selection exact.
func (e *Engine[T]) rowLess(keys []SortKey, ords []int) func(a, b int32) bool {
	cols := make([]*column, len(ords))
	for i, ord := range ords {
		cols[i] = e.columnFor(ord)
	}
	return func(a, b int32) bool {
		for k, col := range cols {
			aNull, bNull := col.nulls.get(int(a)), col.nulls.get(int(b))
			var c int
			switch {
			case aNull && bNull:
				c = 0
			case aNull:
				c = 1
			case bNull:
				c = -1
			default:
				c = col.compareRows(int(a), int(b))
				if keys[k].Desc {
					c = -c
				}
			}
			if c != 0 {
				return c < 0
			}
		}
		return a < b
	}
}

// materializeColumns builds the output rows from the column caches: one flat
// backing array for all cells, sliced per row, so a K-column × R-row result
// costs O(1) slice allocations instead of R.
func (e *Engine[T]) materializeColumns(matched []int32, ords []int) [][]any {
	cols := make([]*column, len(ords))
	for i, ord := range ords {
		cols[i] = e.columnFor(ord)
	}
	rows := make([][]any, 0, len(matched))
	if len(matched) == 0 {
		return rows
	}
	k := len(ords)
	backing := make([]any, len(matched)*k)
	for ri, m := range matched {
		row := backing[ri*k : (ri+1)*k : (ri+1)*k]
		for ci, col := range cols {
			row[ci] = col.value(int(m))
		}
		rows = append(rows, row)
	}
	return rows
}
