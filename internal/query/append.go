package query

import (
	"fmt"
	"math"
	"time"
)

// NewEngineAppend builds an engine over base's rows followed by added,
// sealing the column work base already did: every typed column base has
// materialized is extended — the old rows' values are copied from the built
// column, only the added rows go through the boxed extractor — then the
// dictionary and zone maps are rebuilt over the full length. Columns base
// never touched stay lazy on the new engine, exactly as on a cold build.
//
// Contract: reg must be shape-compatible with base's registry (same field
// names and kinds, in order; validated here) and every base row must extract
// the same value under reg's extractors as it did under base's — the caller
// asserts that nothing about the old rows changed. Incremental ingest
// guarantees it by re-checking every old listing's enrichment and falling
// back to a cold build the moment anything differs.
//
// base may be serving concurrent scans throughout: the build only loads the
// atomic column pointers and reads immutable columns/items, never base's
// lazy-build state.
//
// The result is semantically indistinguishable from NewEngine(reg, all):
// dictionaries and zone maps are rebuilt through the same code paths over
// the same values, so every scan and aggregate is byte-identical to the cold
// engine's — the appended engine only skips re-extracting old rows.
func NewEngineAppend[T any](reg *Registry[T], base *Engine[T], added []T) (*Engine[T], error) {
	if base == nil {
		return nil, fmt.Errorf("query: NewEngineAppend with nil base engine")
	}
	if err := compatibleRegistries(reg, base.reg); err != nil {
		return nil, err
	}
	items := make([]T, 0, len(base.items)+len(added))
	items = append(items, base.items...)
	items = append(items, added...)
	e := NewEngine(reg, items)
	e.uncompressed = base.uncompressed
	// Carry the observed selectivity so the first scans size their match
	// buffers like the warmed-up base did (a capacity hint only — results
	// never depend on it).
	e.lastSel.Store(base.lastSel.Load())
	oldN := len(base.items)
	for ord := range base.cols {
		old := base.cols[ord].col.Load()
		if old == nil {
			continue
		}
		f := reg.byName[reg.order[ord]]
		col := extendColumn(f, old, items, oldN, !e.uncompressed)
		slot := &e.cols[ord]
		slot.once.Do(func() { slot.col.Store(col) })
	}
	return e, nil
}

// compatibleRegistries checks that next exposes the same column shape as
// base: identical field names and kinds in identical order. Extractor
// equivalence over old rows cannot be checked structurally and remains the
// caller's contract.
func compatibleRegistries[T any](next, base *Registry[T]) error {
	if len(next.order) != len(base.order) {
		return fmt.Errorf("query: append registry has %d fields, base has %d", len(next.order), len(base.order))
	}
	for i, name := range next.order {
		if base.order[i] != name {
			return fmt.Errorf("query: append field %d is %q, base has %q", i, name, base.order[i])
		}
		if nk, bk := next.byName[name].Kind, base.byName[name].Kind; nk != bk {
			return fmt.Errorf("query: append field %q is %s, base has %s", name, nk, bk)
		}
	}
	return nil
}

// extendColumn builds the full-length column from a built prefix: old values
// copied (dictionary codes decoded back to strings first — the dictionary is
// re-derived over the full column below), added rows extracted fresh, then
// the compressed layout rebuilt through exactly the buildColumn code paths.
func extendColumn[T any](f Field[T], old *column, items []T, oldN int, compressed bool) *column {
	n := len(items)
	c := &column{kind: f.Kind, nulls: newBitset(n), nullCount: old.nullCount, hasNaN: old.hasNaN}
	// The old bitset's stray bits past oldN in its last word were never set,
	// so a plain word copy reproduces the prefix exactly.
	copy(c.nulls, old.nulls)
	switch f.Kind {
	case KindInt:
		c.ints = make([]int64, n)
		copy(c.ints, old.ints)
	case KindFloat:
		c.floats = make([]float64, n)
		copy(c.floats, old.floats)
	case KindString:
		c.strs = make([]string, n)
		if old.dict != nil {
			for i := 0; i < oldN; i++ {
				if !old.nulls.get(i) {
					c.strs[i] = old.dict[old.codes[i]]
				}
			}
		} else {
			copy(c.strs, old.strs)
		}
	case KindBool:
		c.bools = make([]bool, n)
		copy(c.bools, old.bools)
	case KindTime:
		c.times = make([]time.Time, n)
		copy(c.times, old.times)
	}
	for i := oldN; i < n; i++ {
		v, null := extract(f, items[i])
		if null {
			c.nulls.set(i)
			c.nullCount++
			continue
		}
		switch f.Kind {
		case KindInt:
			c.ints[i] = v.(int64)
		case KindFloat:
			x := v.(float64)
			c.floats[i] = x
			if math.IsNaN(x) {
				c.hasNaN = true
			}
		case KindString:
			c.strs[i] = v.(string)
		case KindBool:
			c.bools[i] = v.(bool)
		case KindTime:
			c.times[i] = v.(time.Time)
		}
	}
	if compressed {
		if f.Dictionary && f.Kind == KindString {
			c.encodeDict()
		}
		c.buildZones()
	}
	return c
}
