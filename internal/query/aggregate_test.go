package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// requireSameAggregate asserts the planned aggregation is byte-identical to
// the oracle: fields, every group row (order included), and the shared meta.
func requireSameAggregate(t *testing.T, a Aggregate, planned, oracle *Result) {
	t.Helper()
	if !reflect.DeepEqual(planned.Fields, oracle.Fields) {
		t.Fatalf("aggregate %+v:\nfields diverge:\nplanned %+v\noracle  %+v", a, planned.Fields, oracle.Fields)
	}
	if planned.Meta.TotalMatched != oracle.Meta.TotalMatched || planned.Meta.Returned != oracle.Meta.Returned {
		t.Fatalf("aggregate %+v:\nmeta diverges: planned %+v, oracle %+v", a, planned.Meta, oracle.Meta)
	}
	if !reflect.DeepEqual(planned.Rows, oracle.Rows) {
		pj, _ := json.Marshal(planned.Rows)
		oj, _ := json.Marshal(oracle.Rows)
		t.Fatalf("aggregate %+v:\nrows diverge:\nplanned %s\noracle  %s", a, pj, oj)
	}
}

func TestAggregateSemantics(t *testing.T) {
	e := NewEngine(testIndexedRegistry(), testRows())

	// Per-market counts and sums over the 5-row fixture: Google Play holds
	// alpha (size 100) and echo (50), Tencent bravo (300) and charlie
	// (null size), Baidu delta (300).
	res, err := e.Aggregate(Aggregate{
		GroupBy: []string{"market"},
		Aggregates: []AggSpec{
			{Op: AggCount},
			{Op: AggCount, Field: "size", As: "sized"},
			{Op: AggSum, Field: "size"},
			{Op: AggMean, Field: "rating"},
			{Op: AggMin, Field: "name"},
			{Op: AggMax, Field: "size"},
			{Op: AggShare},
			{Op: AggDistinct, Field: "size"},
			{Op: AggTopK, Field: "flagged", K: 1},
		},
	})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	wantFields := []string{"market", "count", "sized", "sum(size)", "mean(rating)",
		"min(name)", "max(size)", "share", "distinct(size)", "topk(flagged,1)"}
	if len(res.Fields) != len(wantFields) {
		t.Fatalf("fields = %+v", res.Fields)
	}
	for i, f := range res.Fields {
		if f.Name != wantFields[i] {
			t.Fatalf("field %d = %q, want %q", i, f.Name, wantFields[i])
		}
	}
	want := [][]any{
		{"Google Play", int64(2), int64(2), int64(150), 4.5, "alpha", int64(100), 0.4, int64(2), "false:2"},
		{"Tencent Myapp", int64(2), int64(1), int64(300), 2.5, "bravo", int64(300), 0.4, int64(1), "false:1"},
		{"Baidu Market", int64(1), int64(1), int64(300), nil, "delta", int64(300), 0.2, int64(1), "true:1"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		got, _ := json.Marshal(res.Rows)
		t.Fatalf("rows = %s", got)
	}
	if res.Meta.TotalMatched != 5 || res.Meta.Returned != 3 || res.Meta.Explain == nil {
		t.Fatalf("meta = %+v", res.Meta)
	}
}

func TestAggregateWhereFiltersAndSort(t *testing.T) {
	e := NewEngine(testIndexedRegistry(), testRows())

	// One query, two conditional counts per market, ranked by size sum.
	res, err := e.Aggregate(Aggregate{
		GroupBy: []string{"market"},
		Aggregates: []AggSpec{
			{Op: AggCount, As: "apps"},
			{Op: AggCount, Where: []Filter{{Field: "flagged", Op: OpEq, Value: true}}, As: "flagged"},
			{Op: AggSum, Field: "size", As: "bytes"},
		},
		Sort:  []SortKey{{Field: "bytes", Desc: true}, {Field: "market"}},
		Limit: 2,
	})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	want := [][]any{
		{"Baidu Market", int64(1), int64(1), int64(300)},
		{"Tencent Myapp", int64(2), int64(1), int64(300)},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		got, _ := json.Marshal(res.Rows)
		t.Fatalf("rows = %s", got)
	}
}

func TestAggregateGlobalGroup(t *testing.T) {
	e := NewEngine(testIndexedRegistry(), testRows())

	// No group_by: exactly one global row, even when nothing matches.
	res, err := e.Aggregate(Aggregate{
		Aggregates: []AggSpec{{Op: AggCount}, {Op: AggDistinct, Field: "market"}},
	})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if !reflect.DeepEqual(res.Rows, [][]any{{int64(5), int64(3)}}) {
		got, _ := json.Marshal(res.Rows)
		t.Fatalf("global rows = %s", got)
	}

	res, err = e.Aggregate(Aggregate{
		Filters:    []Filter{{Field: "market", Op: OpEq, Value: "No Such Market"}},
		Aggregates: []AggSpec{{Op: AggCount}, {Op: AggMin, Field: "size"}, {Op: AggShare}},
	})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if !reflect.DeepEqual(res.Rows, [][]any{{int64(0), nil, float64(0)}}) {
		got, _ := json.Marshal(res.Rows)
		t.Fatalf("empty-match global rows = %s", got)
	}
}

func TestAggregateNullGroupKeys(t *testing.T) {
	e := NewEngine(testIndexedRegistry(), testRows())

	// charlie has a null size: it must form its own group with a nil key
	// cell, not be dropped.
	res, err := e.Aggregate(Aggregate{
		GroupBy:    []string{"size"},
		Aggregates: []AggSpec{{Op: AggCount}},
		Sort:       []SortKey{{Field: "size"}},
	})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	want := [][]any{
		{int64(50), int64(1)},
		{int64(100), int64(1)},
		{int64(300), int64(2)},
		{nil, int64(1)}, // nulls sort last
	}
	if !reflect.DeepEqual(res.Rows, want) {
		got, _ := json.Marshal(res.Rows)
		t.Fatalf("rows = %s", got)
	}
}

func TestAggregateValidation(t *testing.T) {
	e := NewEngine(testIndexedRegistry(), testRows())
	cases := []struct {
		name string
		a    Aggregate
	}{
		{"no-aggregates", Aggregate{GroupBy: []string{"market"}}},
		{"unknown-group-field", Aggregate{GroupBy: []string{"nope"}, Aggregates: []AggSpec{{Op: AggCount}}}},
		{"duplicate-group-field", Aggregate{GroupBy: []string{"market", "market"}, Aggregates: []AggSpec{{Op: AggCount}}}},
		{"unknown-op", Aggregate{Aggregates: []AggSpec{{Op: "median", Field: "size"}}}},
		{"sum-needs-field", Aggregate{Aggregates: []AggSpec{{Op: AggSum}}}},
		{"sum-on-string", Aggregate{Aggregates: []AggSpec{{Op: AggSum, Field: "name"}}}},
		{"share-takes-no-field", Aggregate{Aggregates: []AggSpec{{Op: AggShare, Field: "size"}}}},
		{"unknown-agg-field", Aggregate{Aggregates: []AggSpec{{Op: AggMin, Field: "nope"}}}},
		{"duplicate-output", Aggregate{Aggregates: []AggSpec{{Op: AggCount}, {Op: AggCount}}}},
		{"collides-with-group", Aggregate{GroupBy: []string{"market"}, Aggregates: []AggSpec{{Op: AggCount, As: "market"}}}},
		{"bad-where", Aggregate{Aggregates: []AggSpec{{Op: AggCount, Where: []Filter{{Field: "size", Op: OpContains, Value: "x"}}}}}},
		{"bad-filter", Aggregate{Aggregates: []AggSpec{{Op: AggCount}}, Filters: []Filter{{Field: "nope", Op: OpEq, Value: 1}}}},
		{"bad-sort", Aggregate{Aggregates: []AggSpec{{Op: AggCount}}, Sort: []SortKey{{Field: "size"}}}},
		{"negative-limit", Aggregate{Aggregates: []AggSpec{{Op: AggCount}}, Limit: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.Aggregate(tc.a); err == nil {
				t.Errorf("planned path accepted %+v", tc.a)
			}
			if _, err := e.AggregateOracle(tc.a); err == nil {
				t.Errorf("oracle path accepted %+v", tc.a)
			}
		})
	}
}

// randomAggregate builds a valid-shaped (occasionally invalid, which both
// paths must reject identically) aggregation request over the test registry.
func randomAggregate(rng *rand.Rand) Aggregate {
	fieldNames := []string{"name", "market", "size", "rating", "flagged", "date"}
	numeric := []string{"size", "rating", "flagged"}
	a := Aggregate{}
	for _, f := range fieldNames {
		if rng.Intn(4) == 0 {
			a.GroupBy = append(a.GroupBy, f)
		}
	}
	used := map[string]bool{}
	for i := 1 + rng.Intn(4); i > 0; i-- {
		ops := []AggOp{AggCount, AggSum, AggMean, AggMin, AggMax, AggShare, AggDistinct, AggTopK}
		spec := AggSpec{Op: ops[rng.Intn(len(ops))]}
		switch spec.Op {
		case AggCount:
			if rng.Intn(2) == 0 {
				spec.Field = fieldNames[rng.Intn(len(fieldNames))]
			}
		case AggShare:
			// no field
		case AggSum, AggMean:
			spec.Field = numeric[rng.Intn(len(numeric))]
		default:
			spec.Field = fieldNames[rng.Intn(len(fieldNames))]
		}
		if spec.Op == AggTopK {
			spec.K = rng.Intn(4) // 0 exercises the default
		}
		if rng.Intn(3) == 0 {
			spec.Where = randomQuery(rng).Filters
		}
		spec.As = fmt.Sprintf("a%d_%s", i, spec.Op)
		if used[spec.As] {
			continue
		}
		used[spec.As] = true
		a.Aggregates = append(a.Aggregates, spec)
	}
	if len(a.Aggregates) == 0 {
		a.Aggregates = []AggSpec{{Op: AggCount}}
	}
	a.Filters = randomQuery(rng).Filters
	if rng.Intn(2) == 0 {
		// Sort over the output columns (group fields and aggregate names).
		cols := append([]string{}, a.GroupBy...)
		for _, spec := range a.Aggregates {
			cols = append(cols, spec.As)
		}
		for i := rng.Intn(3); i > 0 && len(cols) > 0; i-- {
			a.Sort = append(a.Sort, SortKey{Field: cols[rng.Intn(len(cols))], Desc: rng.Intn(2) == 0})
		}
	}
	if rng.Intn(3) == 0 {
		a.Limit = 1 + rng.Intn(10)
	}
	return a
}

// TestAggregateMatchesOracle is the randomized equivalence suite: seeds ×
// group-by fields × aggregate sets over null-heavy data, planned vs oracle.
func TestAggregateMatchesOracle(t *testing.T) {
	const requestsPerSeed = 120
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			n := 50 + rng.Intn(400)
			e := NewEngine(testIndexedRegistry(), randomRows(rng, n))
			for i := 0; i < requestsPerSeed; i++ {
				a := randomAggregate(rng)
				planned, err1 := e.Aggregate(a)
				oracle, err2 := e.AggregateOracle(a)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("request %d (%+v): planned err %v, oracle err %v", i, a, err1, err2)
				}
				if err1 != nil {
					continue
				}
				requireSameAggregate(t, a, planned, oracle)
				if planned.Meta.Explain == nil {
					t.Fatalf("request %d: planned aggregation has no explain block", i)
				}
			}
		})
	}
}

// TestAggregateMatchesOracleParallel runs the equivalence over a dataset
// large enough that matching, grouping and the per-group fan-out all cross
// the parallel threshold.
func TestAggregateMatchesOracleParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	e := NewEngine(testIndexedRegistry(), randomRows(rng, parallelThreshold*2+61))
	for i := 0; i < 30; i++ {
		a := randomAggregate(rng)
		planned, err1 := e.Aggregate(a)
		oracle, err2 := e.AggregateOracle(a)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("request %d (%+v): planned err %v, oracle err %v", i, a, err1, err2)
		}
		if err1 != nil {
			continue
		}
		requireSameAggregate(t, a, planned, oracle)
	}
}

// TestConcurrentColdAggregate hammers a freshly built engine with mixed
// aggregations from many goroutines: under -race this proves the lazy column
// and index builds stay safe when the first touches come from the
// aggregation path, and every result must equal the oracle's.
func TestConcurrentColdAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rows := randomRows(rng, parallelThreshold+200)
	warm := NewEngine(testIndexedRegistry(), rows)
	requests := make([]Aggregate, 0, 16)
	oracles := make([]*Result, 0, 16)
	for len(requests) < 16 {
		a := randomAggregate(rng)
		res, err := warm.AggregateOracle(a)
		if err != nil {
			continue
		}
		requests = append(requests, a)
		oracles = append(oracles, res)
	}

	cold := NewEngine(testIndexedRegistry(), rows)
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3*len(requests); i++ {
				ri := (w + i) % len(requests)
				res, err := cold.Aggregate(requests[ri])
				if err != nil {
					t.Errorf("cold aggregate %d: %v", ri, err)
					return
				}
				if !reflect.DeepEqual(res.Rows, oracles[ri].Rows) ||
					res.Meta.TotalMatched != oracles[ri].Meta.TotalMatched {
					t.Errorf("cold aggregate %d diverged from oracle", ri)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestParseAggregate(t *testing.T) {
	a, err := ParseAggregate(bytes.NewReader([]byte(`{
		"group_by": ["market"],
		"aggregates": [{"op":"count"},{"op":"mean","field":"rating","as":"avg"},
		               {"op":"count","where":[{"field":"flagged","op":"==","value":true}],"as":"bad"}],
		"filters": [{"field":"size","op":">=","value":100}],
		"sort": [{"field":"count","desc":true}],
		"limit": 3
	}`)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(a.GroupBy) != 1 || len(a.Aggregates) != 3 || len(a.Filters) != 1 || a.Limit != 3 {
		t.Fatalf("parsed = %+v", a)
	}
	if _, err := ParseAggregate(bytes.NewReader([]byte(`{"aggregate": []}`))); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseAggregate(bytes.NewReader(nil)); err != ErrEmptyQuery {
		t.Errorf("empty body error = %v", err)
	}
	if _, err := ParseAggregate(bytes.NewReader([]byte(`{"aggregates":[],"limit":-2}`))); err == nil {
		t.Error("negative limit accepted")
	}
}

// FuzzAggregate feeds arbitrary JSON aggregation documents to both
// executors: they must agree on accept/reject, and on every accepted request
// the planned groups must be byte-identical to the oracle's.
func FuzzAggregate(f *testing.F) {
	f.Add([]byte(`{"group_by":["market"],"aggregates":[{"op":"count"},{"op":"share"}]}`))
	f.Add([]byte(`{"group_by":["market","flagged"],"aggregates":[{"op":"sum","field":"size"},{"op":"mean","field":"rating"}],"sort":[{"field":"sum(size)","desc":true}],"limit":3}`))
	f.Add([]byte(`{"aggregates":[{"op":"distinct","field":"market"},{"op":"topk","field":"name","k":2}]}`))
	f.Add([]byte(`{"group_by":["size"],"aggregates":[{"op":"count","where":[{"field":"flagged","op":"==","value":true}],"as":"bad"}],"filters":[{"field":"rating","op":"is_null","value":false}]}`))
	f.Add([]byte(`{"group_by":["date"],"aggregates":[{"op":"min","field":"name"},{"op":"max","field":"rating"}]}`))

	rng := rand.New(rand.NewSource(5))
	e := NewEngine(testIndexedRegistry(), randomRows(rng, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ParseAggregate(bytes.NewReader(data))
		if err != nil {
			return
		}
		planned, err1 := e.Aggregate(a)
		oracle, err2 := e.AggregateOracle(a)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("paths disagree on validity: planned err %v, oracle err %v (request %+v)", err1, err2, a)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(planned.Rows, oracle.Rows) ||
			!reflect.DeepEqual(planned.Fields, oracle.Fields) ||
			planned.Meta.TotalMatched != oracle.Meta.TotalMatched ||
			planned.Meta.Returned != oracle.Meta.Returned {
			pj, _ := json.Marshal(planned.Rows)
			oj, _ := json.Marshal(oracle.Rows)
			t.Fatalf("planned result diverges from oracle (request %+v):\nplanned %s\noracle  %s", a, pj, oj)
		}
	})
}
