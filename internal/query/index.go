package query

import (
	"slices"
	"sort"
	"sync"
)

// Secondary indexes over typed columns. Both are built lazily (at most once
// per engine and field, under sync.Once) from the field's column cache and
// are immutable afterwards:
//
//   - hashIndex: value -> posting list of row ids in dataset order, for ==
//     and in on low-cardinality string/int/bool fields.
//   - sortedIndex: a permutation of the non-null rows ordered by value, so
//     range predicates (and == on kinds the hash index does not cover)
//     binary-search to a contiguous span.
//
// Null rows appear in neither structure, which encodes the SQL null rule for
// free: a comparison never matches a null row.

// hashable reports whether a kind gets a hash index. Floats are excluded
// because compareValues treats NaN as equal to everything, which map-key
// equality cannot reproduce; times are excluded because their natural map
// key (UnixNano) overflows for extreme years the comparison semantics still
// support.
func hashable(k Kind) bool { return k == KindString || k == KindInt || k == KindBool }

// sortable reports whether a kind gets a sorted index (every ordered kind;
// bools only ever see ==/!= which the hash index covers).
func sortable(k Kind) bool {
	return k == KindString || k == KindInt || k == KindFloat || k == KindTime
}

type hashIndex struct {
	ok    bool
	ints  map[int64][]int32
	strs  map[string][]int32
	boolT []int32
	boolF []int32

	// Dictionary-encoded string columns replace the strs map with one
	// compressed bitmap per dictionary code: dict aliases the column's
	// sorted dictionary (operands binary-search into it) and dictBMs[k] is
	// the row set of dict[k]. == then answers with a single bitmap, in with
	// a bitmap union, and conjunctions intersect word-parallel.
	dict    []string
	dictBMs []*bitmap
}

type hashSlot struct {
	once sync.Once
	ix   *hashIndex
}

func buildHashIndex(c *column) *hashIndex {
	ix := &hashIndex{ok: hashable(c.kind)}
	if !ix.ok {
		return ix
	}
	switch c.kind {
	case KindInt:
		ix.ints = make(map[int64][]int32)
		for i := range c.ints {
			if !c.nulls.get(i) {
				ix.ints[c.ints[i]] = append(ix.ints[c.ints[i]], int32(i))
			}
		}
	case KindString:
		if c.dict != nil {
			ix.dict = c.dict
			ix.dictBMs = make([]*bitmap, len(c.dict))
			for k := range ix.dictBMs {
				ix.dictBMs[k] = &bitmap{}
			}
			for i := range c.codes {
				if !c.nulls.get(i) {
					ix.dictBMs[c.codes[i]].add(int32(i))
				}
			}
			break
		}
		ix.strs = make(map[string][]int32)
		for i := range c.strs {
			if !c.nulls.get(i) {
				ix.strs[c.strs[i]] = append(ix.strs[c.strs[i]], int32(i))
			}
		}
	case KindBool:
		for i := range c.bools {
			if c.nulls.get(i) {
				continue
			}
			if c.bools[i] {
				ix.boolT = append(ix.boolT, int32(i))
			} else {
				ix.boolF = append(ix.boolF, int32(i))
			}
		}
	}
	return ix
}

// postings returns the rows equal to one normalized operand, ascending in
// dataset order. The returned slice is shared index state: callers must not
// mutate it.
func (ix *hashIndex) postings(operand any) []int32 {
	switch v := operand.(type) {
	case int64:
		return ix.ints[v]
	case string:
		return ix.strs[v]
	case bool:
		if v {
			return ix.boolT
		}
		return ix.boolF
	}
	return nil
}

// dictBM returns the posting bitmap of one string operand on a
// dictionary-backed index, nil when the operand is not in the dictionary
// (no row can match it).
func (ix *hashIndex) dictBM(operand any) *bitmap {
	s, ok := operand.(string)
	if !ok {
		return nil
	}
	k := sort.SearchStrings(ix.dict, s)
	if k < len(ix.dict) && ix.dict[k] == s {
		return ix.dictBMs[k]
	}
	return nil
}

// mergePostings unions several posting lists (the in operator) into a fresh
// ascending, duplicate-free row list; duplicate operands in the in-list must
// not double-count rows.
func mergePostings(lists [][]int32) []int32 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]int32, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	slices.Sort(out)
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

type sortedIndex struct {
	ok   bool
	col  *column
	perm []int32 // non-null rows ordered by (value asc, row asc)
}

type sortedSlot struct {
	once sync.Once
	ix   *sortedIndex
}

func buildSortedIndex(c *column) *sortedIndex {
	ix := &sortedIndex{col: c, ok: sortable(c.kind) && !c.hasNaN}
	if !ix.ok {
		return ix
	}
	n := columnLen(c)
	ix.perm = make([]int32, 0, n-c.nullCount)
	for i := 0; i < n; i++ {
		if !c.nulls.get(i) {
			ix.perm = append(ix.perm, int32(i))
		}
	}
	sort.Slice(ix.perm, func(i, j int) bool {
		a, b := ix.perm[i], ix.perm[j]
		if cmp := c.compareRows(int(a), int(b)); cmp != 0 {
			return cmp < 0
		}
		return a < b
	})
	return ix
}

func columnLen(c *column) int {
	switch c.kind {
	case KindInt:
		return len(c.ints)
	case KindFloat:
		return len(c.floats)
	case KindString:
		// A fully-null dictionary column has dict == nil with row-counted
		// codes; len(codes) is the row count whenever codes exist.
		if c.dict != nil || c.codes != nil {
			return len(c.codes)
		}
		return len(c.strs)
	case KindBool:
		return len(c.bools)
	case KindTime:
		return len(c.times)
	}
	return 0
}

// spanBounds locates the permutation window satisfying `value <op> operand`
// by binary search, without materializing it — the planner checks the
// window's size against its demotion threshold before paying for the copy.
// Valid ops: ==, <, <=, >, >=.
func (ix *sortedIndex) spanBounds(op Op, operand any) (lo, hi int) {
	n := len(ix.perm)
	// firstGE / firstGT locate the operand's window in value order.
	firstGE := sort.Search(n, func(k int) bool {
		return ix.col.compareOperand(int(ix.perm[k]), operand) >= 0
	})
	firstGT := sort.Search(n, func(k int) bool {
		return ix.col.compareOperand(int(ix.perm[k]), operand) > 0
	})
	switch op {
	case OpEq:
		return firstGE, firstGT
	case OpLt:
		return 0, firstGE
	case OpLe:
		return 0, firstGT
	case OpGt:
		return firstGT, n
	case OpGe:
		return firstGE, n
	}
	return 0, 0
}

// spanRows materializes a spanBounds window as a fresh slice in ascending
// dataset order.
func (ix *sortedIndex) spanRows(op Op, lo, hi int) []int32 {
	out := make([]int32, hi-lo)
	copy(out, ix.perm[lo:hi])
	if op != OpEq {
		// An equality span is one value whose ties are already row-ordered;
		// multi-value ranges are ordered by value first and need the sort.
		slices.Sort(out)
	}
	return out
}

// hashFor / sortedFor build (at most once) the indexes of the field at
// registration ordinal ord.
func (e *Engine[T]) hashFor(ord int) *hashIndex {
	slot := &e.hashes[ord]
	slot.once.Do(func() { slot.ix = buildHashIndex(e.columnFor(ord)) })
	return slot.ix
}

func (e *Engine[T]) sortedFor(ord int) *sortedIndex {
	slot := &e.sortedIdx[ord]
	slot.once.Do(func() { slot.ix = buildSortedIndex(e.columnFor(ord)) })
	return slot.ix
}
