package query

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"time"
)

// extract runs a field's extractor and normalizes the result. The second
// return is true when the value is null: the extractor said so, the value's
// dynamic type does not match the declared kind, or a time value is the zero
// time.
func extract[T any](f Field[T], item T) (any, bool) {
	raw, ok := f.Extract(item)
	if !ok {
		return nil, true
	}
	v, err := normalize(f.Kind, raw)
	if err != nil {
		return nil, true
	}
	if t, isTime := v.(time.Time); isTime && t.IsZero() {
		return nil, true
	}
	return v, false
}

// normalize coerces a value to the canonical representation of a kind:
// string, int64, float64, bool or time.Time. It accepts the natural Go
// spellings on the extractor side (int, int32, float32, fmt.Stringer-free
// named string types are the caller's job) and the JSON spellings on the
// filter side (every number arrives as float64, times arrive as strings).
func normalize(kind Kind, v any) (any, error) {
	switch kind {
	case KindString:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case KindInt:
		switch n := v.(type) {
		case int:
			return int64(n), nil
		case int32:
			return int64(n), nil
		case int64:
			return n, nil
		case float64:
			return floatToInt64(n)
		case json.Number:
			i, err := n.Int64()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadValue, err)
			}
			return i, nil
		}
	case KindFloat:
		switch n := v.(type) {
		case float64:
			return n, nil
		case float32:
			return float64(n), nil
		case int:
			return float64(n), nil
		case int64:
			return float64(n), nil
		}
	case KindBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case KindTime:
		switch t := v.(type) {
		case time.Time:
			return t, nil
		case string:
			return parseTime(t)
		case float64:
			secs, err := floatToInt64(t)
			if err != nil {
				return nil, err
			}
			return time.Unix(secs.(int64), 0).UTC(), nil
		}
	}
	return nil, fmt.Errorf("%w: %T for kind %s", ErrBadValue, v, kind)
}

// maxInt64Float is 2^63 as a float64. float64(math.MaxInt64) rounds up to
// exactly this value, so the valid int64 range in float space is
// [-maxInt64Float, maxInt64Float).
const maxInt64Float = float64(1 << 63)

// floatToInt64 converts a JSON number to int64, rejecting fractions and
// values outside the int64 range (whose float-to-int conversion would be
// implementation-defined and could silently match everything).
func floatToInt64(n float64) (any, error) {
	if n != math.Trunc(n) {
		return nil, fmt.Errorf("%w: %v is not an integer", ErrBadValue, n)
	}
	if n < -maxInt64Float || n >= maxInt64Float {
		return nil, fmt.Errorf("%w: %v overflows int64", ErrBadValue, n)
	}
	return int64(n), nil
}

// parseTime accepts RFC 3339 or a bare date.
func parseTime(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339, "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("%w: %q is not RFC 3339 or YYYY-MM-DD", ErrBadValue, s)
}

// compareValues orders two normalized non-null values of one kind. Bools
// order false before true so the ordering operators stay total.
func compareValues(kind Kind, a, b any) int {
	switch kind {
	case KindString:
		return strings.Compare(a.(string), b.(string))
	case KindInt:
		x, y := a.(int64), b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case KindFloat:
		x, y := a.(float64), b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case KindBool:
		x, y := a.(bool), b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	case KindTime:
		x, y := a.(time.Time), b.(time.Time)
		switch {
		case x.Before(y):
			return -1
		case x.After(y):
			return 1
		}
		return 0
	}
	return 0
}

// toAnySlice widens any slice value to []any: JSON lists arrive as []any
// already, while Go-API callers naturally write []string, []int, etc.
func toAnySlice(v any) []any {
	if l, ok := v.([]any); ok {
		return l
	}
	rv := reflect.ValueOf(v)
	if !rv.IsValid() || rv.Kind() != reflect.Slice {
		return nil
	}
	out := make([]any, rv.Len())
	for i := range out {
		out[i] = rv.Index(i).Interface()
	}
	return out
}

// compiledFilter is one pre-resolved predicate: the field, the operator and
// the operand(s) already normalized to the field's kind.
type compiledFilter[T any] struct {
	field    Field[T]
	op       Op
	operand  any   // scalar operand (nil for is_null / in)
	operands []any // in-list operands
	wantNull bool  // is_null operand
}

// compileFilter validates a filter against the registry and normalizes its
// operand so per-row matching does no type inspection.
func compileFilter[T any](reg *Registry[T], raw Filter) (compiledFilter[T], error) {
	var cf compiledFilter[T]
	f, ok := reg.Lookup(raw.Field)
	if !ok {
		return cf, fmt.Errorf("%w: %q", ErrUnknownField, raw.Field)
	}
	cf.field = f
	cf.op = raw.Op
	switch raw.Op {
	case OpIsNull:
		cf.wantNull = true
		if raw.Value != nil {
			b, isBool := raw.Value.(bool)
			if !isBool {
				return cf, fmt.Errorf("%w: is_null takes a bool, got %T", ErrBadValue, raw.Value)
			}
			cf.wantNull = b
		}
	case OpIn:
		list := toAnySlice(raw.Value)
		if list == nil {
			return cf, fmt.Errorf("%w: in takes a list, got %T", ErrBadValue, raw.Value)
		}
		if len(list) == 0 {
			return cf, fmt.Errorf("%w: in takes a non-empty list", ErrBadValue)
		}
		cf.operands = make([]any, 0, len(list))
		for _, item := range list {
			v, err := normalize(f.Kind, item)
			if err != nil {
				return cf, fmt.Errorf("field %q: %w", f.Name, err)
			}
			cf.operands = append(cf.operands, v)
		}
	case OpContains:
		if f.Kind != KindString {
			return cf, fmt.Errorf("%w: contains on %s field %q", ErrBadOp, f.Kind, f.Name)
		}
		s, isString := raw.Value.(string)
		if !isString {
			return cf, fmt.Errorf("%w: contains takes a string, got %T", ErrBadValue, raw.Value)
		}
		cf.operand = s
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if raw.Value == nil {
			return cf, fmt.Errorf("%w: %s needs a value (use is_null to test nulls)", ErrBadValue, raw.Op)
		}
		if f.Kind == KindBool && raw.Op != OpEq && raw.Op != OpNe {
			return cf, fmt.Errorf("%w: %s on bool field %q", ErrBadOp, raw.Op, f.Name)
		}
		v, err := normalize(f.Kind, raw.Value)
		if err != nil {
			return cf, fmt.Errorf("field %q: %w", f.Name, err)
		}
		cf.operand = v
	default:
		return cf, fmt.Errorf("%w: unknown operator %q", ErrBadOp, raw.Op)
	}
	return cf, nil
}

// match evaluates the predicate on one row. Null field values match only
// is_null (true); every comparison against null is false, as in SQL.
func (cf *compiledFilter[T]) match(item T) bool {
	v, null := extract(cf.field, item)
	if cf.op == OpIsNull {
		return null == cf.wantNull
	}
	if null {
		return false
	}
	switch cf.op {
	case OpIn:
		for _, operand := range cf.operands {
			if compareValues(cf.field.Kind, v, operand) == 0 {
				return true
			}
		}
		return false
	case OpContains:
		return strings.Contains(v.(string), cf.operand.(string))
	}
	c := compareValues(cf.field.Kind, v, cf.operand)
	switch cf.op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}
