package query

import "sort"

// topK returns the first k rows of the total order `less` over matched, in
// order, without sorting the full match set: a bounded max-heap keeps the k
// best rows seen so far, and each further row either beats the heap's worst
// (root) and replaces it or is discarded in O(1) comparisons.
//
// Because less is a strict total order (sort keys, then dataset order as the
// final tiebreak), the selected k rows are exactly the prefix a full stable
// sort plus limit would produce. matched itself is never mutated, so posting
// lists and pooled buffers can flow in safely.
func topK(matched []int32, k int, less func(a, b int32) bool) []int32 {
	heap := make([]int32, 0, k)
	for _, m := range matched {
		if len(heap) < k {
			heap = append(heap, m)
			siftUp(heap, len(heap)-1, less)
			continue
		}
		if less(m, heap[0]) {
			heap[0] = m
			siftDown(heap, 0, less)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return less(heap[i], heap[j]) })
	return heap
}

// siftUp restores the max-heap property (every parent orders after its
// children under less) from leaf i upward.
func siftUp(h []int32, i int, less func(a, b int32) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[parent], h[i]) {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the max-heap property from node i downward.
func siftDown(h []int32, i int, less func(a, b int32) bool) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		largest := left
		if right := left + 1; right < n && less(h[left], h[right]) {
			largest = right
		}
		if !less(h[i], h[largest]) {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
