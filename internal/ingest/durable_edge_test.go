package ingest_test

// Cursor-discipline edges when the ingest handler fronts a durable store:
// batches replayed by a reconnecting producer after a server restart must be
// acked no-ops (never double-applied, not even via WAL replay), and a gap
// after restart must 409 with the cursor the producer should resume from.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"marketscope/internal/durable"
	"marketscope/internal/durable/errfs"
	"marketscope/internal/ingest"
)

func postDelta(t *testing.T, h http.HandlerFunc, d ingest.Delta) (int, ingest.Result, uint64) {
	t.Helper()
	body, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, ingest.IngestPath, bytes.NewReader(body)))
	if rec.Code == http.StatusOK {
		var res ingest.Result
		if err := json.NewDecoder(rec.Body).Decode(&res); err != nil {
			t.Fatalf("decode result: %v", err)
		}
		return rec.Code, res, res.Cursor
	}
	var envelope struct {
		Error  string `json:"error"`
		Cursor uint64 `json:"cursor"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&envelope); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	return rec.Code, ingest.Result{}, envelope.Cursor
}

func TestDurableCursorEdgesAcrossRestart(t *testing.T) {
	snap := corpus(t)
	records := snap.Records()
	if len(records) < 30 {
		t.Fatalf("corpus too small: %d records", len(records))
	}
	var deltas []ingest.Delta
	for seq := 0; seq < 3; seq++ {
		d := ingest.Delta{Seq: uint64(seq)}
		for _, rec := range records[seq*10 : (seq+1)*10] {
			d.Listings = append(d.Listings, listingFor(snap, rec))
		}
		deltas = append(deltas, d)
	}

	fs := errfs.New()
	open := func() *durable.Store {
		s, err := durable.Open(durable.Options{
			FS: fs, Dir: "data",
			Ingest: ingest.Options{Enrich: enrichOpts(), CrawlTime: snap.CrawlTime},
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return s
	}

	s := open()
	h := ingest.Handler(s)
	for _, d := range deltas[:2] {
		if code, res, _ := postDelta(t, h, d); code != http.StatusOK || !res.Applied {
			t.Fatalf("seq %d: code %d res %+v", d.Seq, code, res)
		}
	}
	listings := s.Dataset().NumListings()
	s.Close()

	// Restart. The producer, unaware, replays its last acked batch: 200,
	// applied=false, and the dataset must not grow — the batch came back once
	// through WAL replay and once over HTTP, and neither lands twice.
	s = open()
	h = ingest.Handler(s)
	if s.Cursor() != 2 {
		t.Fatalf("recovered cursor %d, want 2", s.Cursor())
	}
	if got := s.Dataset().NumListings(); got != listings {
		t.Fatalf("WAL replay changed listings: %d != %d", got, listings)
	}
	code, res, cursor := postDelta(t, h, deltas[1])
	if code != http.StatusOK || res.Applied || cursor != 2 {
		t.Fatalf("replay after restart: code %d res %+v", code, res)
	}
	if got := s.Dataset().NumListings(); got != listings {
		t.Fatalf("replayed batch double-applied: %d != %d", got, listings)
	}

	// A producer that skipped ahead gets 409 plus the cursor to resume from.
	code, _, cursor = postDelta(t, h, ingest.Delta{Seq: 7})
	if code != http.StatusConflict || cursor != 2 {
		t.Fatalf("gap after restart: code %d cursor %d", code, cursor)
	}

	// Resuming at the advertised cursor works.
	code, res, _ = postDelta(t, h, deltas[2])
	if code != http.StatusOK || !res.Applied || res.Cursor != 3 {
		t.Fatalf("resume: code %d res %+v", code, res)
	}
	if got := s.Dataset().NumListings(); got <= listings {
		t.Fatalf("resumed batch did not land: %d", got)
	}
	s.Close()

	// One more restart: the full stream recovered, still exactly once.
	s = open()
	defer s.Close()
	want := 0
	seen := map[string]bool{}
	for _, d := range deltas {
		for _, l := range d.Listings {
			k := l.Record.Market + "\x00" + l.Record.Package
			if !seen[k] {
				seen[k] = true
				want++
			}
		}
	}
	if got := s.Dataset().NumListings(); got != want || s.Cursor() != 3 {
		t.Fatalf("final state: %d listings cursor %d, want %d/3", got, s.Cursor(), want)
	}
}
