// Package ingest turns append-only listing deltas into fully enriched,
// epoch-swapped datasets. A crawler (or any producer) POSTs batches of
// listings with a strictly sequential cursor; each accepted batch runs
// through the incremental build pipeline (analysis.IngestState) into a fresh
// dataset whose query engine is published atomically — typically via
// market.(*Server).SwapSource — so readers never block and every query stays
// consistent at one epoch.
//
// Cursor discipline (the retry contract):
//
//   - Seq == cursor: the batch applies atomically; the cursor advances.
//   - Seq <  cursor: an idempotent no-op — the producer is replaying a batch
//     whose acknowledgement it lost; it gets the current cursor back.
//   - Seq >  cursor: ErrCursorGap (HTTP 409) — the producer skipped ahead;
//     nothing changes, it must resync from the cursor endpoint.
//
// The feed is append-only at (market, package) granularity: a key already
// ingested is skipped (and counted), never updated — matching the paper's
// one-shot crawl semantics where a listing is observed once. Deltas may
// therefore safely overlap; a full re-crawl POSTed as one delta degrades to
// the new listings only.
package ingest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
)

// Listing is one crawled listing in a delta: the metadata record plus the
// optional APK archive (base64 in JSON).
type Listing struct {
	Record appmeta.Record `json:"record"`
	APK    []byte         `json:"apk,omitempty"`
}

// Delta is one append-only batch at one cursor position.
type Delta struct {
	Seq      uint64    `json:"seq"`
	Listings []Listing `json:"listings"`
}

// Result reports what applying a delta did.
type Result struct {
	// Seq echoes the delta's position; Cursor is the next expected Seq.
	Seq    uint64 `json:"seq"`
	Cursor uint64 `json:"cursor"`
	// Applied is false for an idempotent replay of an already-landed batch.
	Applied bool `json:"applied"`
	// Added / Skipped split the batch into new listings and already-known
	// (market, package) keys; Listings is the dataset size afterwards.
	Added    int `json:"added"`
	Skipped  int `json:"skipped"`
	Listings int `json:"listings"`
	// Redetected and Sealed surface the incremental build's work: how many
	// old listings' detections changed, and whether the new engine was
	// sealed from the previous epoch's columns.
	Redetected int  `json:"redetected"`
	Sealed     bool `json:"sealed"`
}

// ErrCursorGap is returned when a delta's Seq skips ahead of the cursor.
var ErrCursorGap = errors.New("ingest: delta seq is ahead of the cursor")

// Options configures an Ingestor.
type Options struct {
	// Enrich tunes the incremental enrichment exactly as it tunes
	// analysis.Dataset.Enrich; fixed for the ingestor's lifetime.
	Enrich analysis.EnrichOptions
	// CrawlTime stamps every published dataset.
	CrawlTime time.Time
	// Publish, when non-nil, receives each new epoch's dataset after its
	// batch lands (not called for empty, duplicate-only or replayed
	// batches). Called while the batch lock is held, so publishes are
	// ordered; keep it cheap — an atomic swap, not a rebuild.
	Publish func(*analysis.Dataset)
}

// Ingestor accepts deltas and maintains the current dataset epoch. All
// methods are safe for concurrent use; Apply serializes batch application
// while published datasets keep serving lock-free.
type Ingestor struct {
	mu    sync.Mutex
	opts  Options
	state *analysis.IngestState
	next  uint64
	seen  map[appmeta.Key]bool
	ds    *analysis.Dataset
}

// New builds an ingestor at cursor 0 with no dataset.
func New(opts Options) *Ingestor {
	return &Ingestor{
		opts:  opts,
		state: analysis.NewIngestState(opts.Enrich),
		seen:  map[appmeta.Key]bool{},
	}
}

// Cursor returns the next expected delta Seq.
func (ing *Ingestor) Cursor() uint64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.next
}

// Dataset returns the current epoch's dataset (nil before the first
// non-empty batch).
func (ing *Ingestor) Dataset() *analysis.Dataset {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.ds
}

// Apply lands one delta under the cursor discipline documented on the
// package. A batch is atomic: it either fully applies (cursor advances,
// dataset swaps) or leaves both exactly as they were.
func (ing *Ingestor) Apply(d Delta) (Result, error) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	res := Result{Seq: d.Seq, Cursor: ing.next}
	if ing.ds != nil {
		res.Listings = ing.ds.NumListings()
	}
	if d.Seq < ing.next {
		return res, nil
	}
	if d.Seq > ing.next {
		return res, fmt.Errorf("%w: got seq %d, want %d", ErrCursorGap, d.Seq, ing.next)
	}
	// Validate before touching any state: a rejected batch must leave the
	// cursor and the dataset exactly where they were.
	for i := range d.Listings {
		if err := d.Listings[i].Record.Validate(); err != nil {
			return res, fmt.Errorf("ingest: listing %d: %w", i, err)
		}
	}

	// Keep first-seen keys only, in canonical (market, package) order so the
	// dataset order is deterministic regardless of how the producer
	// assembled the batch.
	batch := append([]Listing(nil), d.Listings...)
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i].Record, batch[j].Record
		if a.Market != b.Market {
			return a.Market < b.Market
		}
		return a.Package < b.Package
	})
	kept := make([]appmeta.Record, 0, len(batch))
	apks := make(map[appmeta.Key][]byte, len(batch))
	inBatch := map[appmeta.Key]bool{}
	for _, l := range batch {
		key := l.Record.Key()
		if ing.seen[key] || inBatch[key] {
			res.Skipped++
			continue
		}
		inBatch[key] = true
		kept = append(kept, l.Record)
		if l.APK != nil {
			apks[key] = l.APK
		}
	}
	res.Added = len(kept)

	if len(kept) > 0 {
		ds, stats := ing.state.Append(ing.ds, ing.opts.CrawlTime, kept, func(k appmeta.Key) ([]byte, bool) {
			b, ok := apks[k]
			return b, ok
		})
		ing.ds = ds
		for key := range inBatch {
			ing.seen[key] = true
		}
		res.Redetected, res.Sealed, res.Listings = stats.Redetected, stats.EngineSealed, ds.NumListings()
	}
	ing.next = d.Seq + 1
	res.Cursor = ing.next
	res.Applied = true
	if res.Added > 0 && ing.opts.Publish != nil {
		ing.opts.Publish(ing.ds)
	}
	return res, nil
}
