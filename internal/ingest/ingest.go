// Package ingest turns append-only listing deltas into fully enriched,
// epoch-swapped datasets. A crawler (or any producer) POSTs batches of
// listings with a strictly sequential cursor; each accepted batch runs
// through the incremental build pipeline (analysis.IngestState) into a fresh
// dataset whose query engine is published atomically — typically via
// market.(*Server).SwapSource — so readers never block and every query stays
// consistent at one epoch.
//
// Cursor discipline (the retry contract):
//
//   - Seq == cursor: the batch applies atomically; the cursor advances.
//   - Seq <  cursor: an idempotent no-op — the producer is replaying a batch
//     whose acknowledgement it lost; it gets the current cursor back.
//   - Seq >  cursor: ErrCursorGap (HTTP 409) — the producer skipped ahead;
//     nothing changes, it must resync from the cursor endpoint.
//
// The feed is append-only at (market, package) granularity: a key already
// ingested is skipped (and counted), never updated — matching the paper's
// one-shot crawl semantics where a listing is observed once. Deltas may
// therefore safely overlap; a full re-crawl POSTed as one delta degrades to
// the new listings only.
package ingest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
)

// Listing is one crawled listing in a delta: the metadata record plus the
// optional APK archive (base64 in JSON).
type Listing struct {
	Record appmeta.Record `json:"record"`
	APK    []byte         `json:"apk,omitempty"`
}

// Delta is one append-only batch at one cursor position.
type Delta struct {
	Seq      uint64    `json:"seq"`
	Listings []Listing `json:"listings"`
}

// Result reports what applying a delta did.
type Result struct {
	// Seq echoes the delta's position; Cursor is the next expected Seq.
	Seq    uint64 `json:"seq"`
	Cursor uint64 `json:"cursor"`
	// Applied is false for an idempotent replay of an already-landed batch.
	Applied bool `json:"applied"`
	// Added / Skipped split the batch into new listings and already-known
	// (market, package) keys; Listings is the dataset size afterwards.
	Added    int `json:"added"`
	Skipped  int `json:"skipped"`
	Listings int `json:"listings"`
	// Redetected and Sealed surface the incremental build's work: how many
	// old listings' detections changed, and whether the new engine was
	// sealed from the previous epoch's columns.
	Redetected int  `json:"redetected"`
	Sealed     bool `json:"sealed"`
}

// ErrCursorGap is returned when a delta's Seq skips ahead of the cursor.
var ErrCursorGap = errors.New("ingest: delta seq is ahead of the cursor")

// Options configures an Ingestor.
type Options struct {
	// Enrich tunes the incremental enrichment exactly as it tunes
	// analysis.Dataset.Enrich; fixed for the ingestor's lifetime.
	Enrich analysis.EnrichOptions
	// CrawlTime stamps every published dataset.
	CrawlTime time.Time
	// Publish, when non-nil, receives each new epoch's dataset after its
	// batch lands (not called for empty, duplicate-only or replayed
	// batches). Called while the batch lock is held, so publishes are
	// ordered; keep it cheap — an atomic swap, not a rebuild.
	Publish func(*analysis.Dataset)
	// Commit, when non-nil, is called with every batch that is about to
	// apply — already validated and exactly at the cursor — before any state
	// changes. An error aborts the batch with the cursor and dataset
	// untouched, and is returned to the producer. The durable layer appends
	// the batch to its write-ahead log here, which is what makes an
	// acknowledgement mean "persisted": once Commit returns nil, nothing in
	// the apply path can fail. Replayed (Seq < cursor) and gapped batches
	// never reach Commit. Called under the batch lock.
	Commit func(Delta) error
}

// Ingestor accepts deltas and maintains the current dataset epoch. All
// methods are safe for concurrent use; Apply serializes batch application
// while published datasets keep serving lock-free.
type Ingestor struct {
	mu    sync.Mutex
	opts  Options
	state *analysis.IngestState
	next  uint64
	seen  map[appmeta.Key]bool
	ds    *analysis.Dataset
}

// New builds an ingestor at cursor 0 with no dataset.
func New(opts Options) *Ingestor {
	return &Ingestor{
		opts:  opts,
		state: analysis.NewIngestState(opts.Enrich),
		seen:  map[appmeta.Key]bool{},
	}
}

// Cursor returns the next expected delta Seq.
func (ing *Ingestor) Cursor() uint64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.next
}

// Dataset returns the current epoch's dataset (nil before the first
// non-empty batch).
func (ing *Ingestor) Dataset() *analysis.Dataset {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.ds
}

// Snapshot returns the cursor and the dataset as one consistent pair — the
// state a durable snapshot must capture atomically (a cursor read and a
// dataset read made separately could straddle a batch).
func (ing *Ingestor) Snapshot() (uint64, *analysis.Dataset) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.next, ing.ds
}

// Restore rebuilds an ingestor from durable state: the records of every
// listing landed so far (in dataset order) and the cursor they were landed
// under. The dataset is built in ONE incremental append — which the
// equivalence contract on analysis.IngestState guarantees is identical to a
// cold BuildDatasetFromRecords+Enrich over the same records — so a restored
// ingestor is indistinguishable from one that applied the original batches.
// Publish and Commit hooks are not invoked. apkOf resolves APK bytes exactly
// as at first ingest; records must already be deduplicated.
func Restore(opts Options, cursor uint64, records []appmeta.Record, apkOf func(appmeta.Key) ([]byte, bool)) (*Ingestor, error) {
	ing := New(opts)
	ing.seen = make(map[appmeta.Key]bool, len(records))
	for i := range records {
		if err := records[i].Validate(); err != nil {
			return nil, fmt.Errorf("ingest: restore record %d: %w", i, err)
		}
		key := records[i].Key()
		if ing.seen[key] {
			return nil, fmt.Errorf("ingest: restore: duplicate key %s/%s", key.Market, key.Package)
		}
		ing.seen[key] = true
	}
	if len(records) > 0 {
		ds, _ := ing.state.Append(nil, opts.CrawlTime, records, apkOf)
		ing.ds = ds
	}
	ing.next = cursor
	return ing, nil
}

// Apply lands one delta under the cursor discipline documented on the
// package. A batch is atomic: it either fully applies (cursor advances,
// dataset swaps) or leaves both exactly as they were.
func (ing *Ingestor) Apply(d Delta) (Result, error) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	res := Result{Seq: d.Seq, Cursor: ing.next}
	if ing.ds != nil {
		res.Listings = ing.ds.NumListings()
	}
	if d.Seq < ing.next {
		return res, nil
	}
	if d.Seq > ing.next {
		return res, fmt.Errorf("%w: got seq %d, want %d", ErrCursorGap, d.Seq, ing.next)
	}
	// Validate before touching any state: a rejected batch must leave the
	// cursor and the dataset exactly where they were.
	for i := range d.Listings {
		if err := d.Listings[i].Record.Validate(); err != nil {
			return res, fmt.Errorf("ingest: listing %d: %w", i, err)
		}
	}
	// Commit is the durability barrier: the batch is valid and at the
	// cursor, so once the hook persists it nothing below can fail — an
	// acknowledgement therefore always means "replayable from the log".
	if ing.opts.Commit != nil {
		if err := ing.opts.Commit(d); err != nil {
			return res, fmt.Errorf("ingest: commit seq %d: %w", d.Seq, err)
		}
	}

	keptListings := Kept(ing.seen, d.Listings)
	res.Skipped = len(d.Listings) - len(keptListings)
	kept := make([]appmeta.Record, 0, len(keptListings))
	apks := make(map[appmeta.Key][]byte, len(keptListings))
	for _, l := range keptListings {
		kept = append(kept, l.Record)
		if l.APK != nil {
			apks[l.Record.Key()] = l.APK
		}
	}
	res.Added = len(kept)

	if len(kept) > 0 {
		ds, stats := ing.state.Append(ing.ds, ing.opts.CrawlTime, kept, func(k appmeta.Key) ([]byte, bool) {
			b, ok := apks[k]
			return b, ok
		})
		ing.ds = ds
		res.Redetected, res.Sealed, res.Listings = stats.Redetected, stats.EngineSealed, ds.NumListings()
	}
	ing.next = d.Seq + 1
	res.Cursor = ing.next
	res.Applied = true
	if res.Added > 0 && ing.opts.Publish != nil {
		ing.opts.Publish(ing.ds)
	}
	return res, nil
}

// Kept canonicalizes one batch exactly as Apply does: listings sorted into
// (market, package) order, first occurrence of each not-yet-seen key kept and
// marked in seen, everything else dropped. Exported because the durable
// layer's snapshot writer folds the WAL prefix through the same function to
// recover which listing supplied each ingested key's APK bytes — the fold
// and the live apply path must agree byte for byte, so they share the code.
func Kept(seen map[appmeta.Key]bool, listings []Listing) []Listing {
	batch := append([]Listing(nil), listings...)
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i].Record, batch[j].Record
		if a.Market != b.Market {
			return a.Market < b.Market
		}
		return a.Package < b.Package
	})
	kept := batch[:0]
	for _, l := range batch {
		key := l.Record.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, l)
	}
	return kept
}
