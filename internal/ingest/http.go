package ingest

import (
	"encoding/json"
	"errors"
	"net/http"

	"marketscope/internal/analysis"
)

// IngestPath is the route the handler is conventionally mounted at (via
// market.(*Server).AttachPost or any mux).
const IngestPath = "/api/ingest"

// maxDeltaBytes bounds a POSTed delta body: batches carry base64 APKs, so the
// ceiling is generous, but a producer cannot make the server buffer
// arbitrarily much.
const maxDeltaBytes = 64 << 20

// CursorState is the GET response: where the feed is and how much has landed.
type CursorState struct {
	Cursor   uint64 `json:"cursor"`
	Listings int    `json:"listings"`
}

// ingestError is the JSON error envelope; Cursor tells a desynchronized
// producer where to resume.
type ingestError struct {
	Error  string `json:"error"`
	Cursor uint64 `json:"cursor"`
}

// Applier is what the HTTP handler needs from an ingest backend. *Ingestor
// implements it directly; the durable store wraps one, adding write-ahead
// logging and snapshot cadence around the same contract.
type Applier interface {
	Apply(Delta) (Result, error)
	Cursor() uint64
	Dataset() *analysis.Dataset
}

// Handler serves the delta feed over HTTP: GET returns the CursorState, POST
// applies one Delta and returns its Result. A cursor gap answers 409 with the
// expected cursor so the producer can resync without a second round trip.
func Handler(ing Applier) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			listings := 0
			if ds := ing.Dataset(); ds != nil {
				listings = ds.NumListings()
			}
			writeJSON(w, http.StatusOK, CursorState{Cursor: ing.Cursor(), Listings: listings})
		case http.MethodPost:
			var d Delta
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDeltaBytes))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&d); err != nil {
				writeJSON(w, http.StatusBadRequest, ingestError{Error: "bad delta: " + err.Error(), Cursor: ing.Cursor()})
				return
			}
			res, err := ing.Apply(d)
			if err != nil {
				status := http.StatusBadRequest
				if errors.Is(err, ErrCursorGap) {
					status = http.StatusConflict
				}
				writeJSON(w, status, ingestError{Error: err.Error(), Cursor: res.Cursor})
				return
			}
			writeJSON(w, http.StatusOK, res)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeJSON(w, http.StatusMethodNotAllowed, ingestError{Error: "method not allowed", Cursor: ing.Cursor()})
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
