package ingest_test

// The incremental-ingest acceptance suite. The load-bearing test is
// TestIncrementalMatchesColdBuild: partition a synthetic crawl into random
// delta batches (empty batches, scrambled arrival order, duplicate listings,
// replayed and gapped cursors included), feed them through an Ingestor, and
// require the resulting engine to answer a randomized query/aggregate mix
// byte-identically to one cold BuildDatasetFromRecords+Enrich over the union.
// Everything else pins the cursor discipline, the HTTP surface and the
// end-to-end publish path into market.Server.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"marketscope/internal/analysis"
	"marketscope/internal/appmeta"
	"marketscope/internal/crawler"
	"marketscope/internal/ingest"
	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/synth"
)

// corpus builds one small synthetic crawl shared by every test in the file.
var (
	corpusOnce sync.Once
	corpusSnap *crawler.Snapshot
	corpusErr  error
)

func corpus(t *testing.T) *crawler.Snapshot {
	t.Helper()
	corpusOnce.Do(func() {
		cfg := synth.SmallConfig()
		cfg.NumApps = 150
		cfg.NumDevelopers = 55
		eco, err := synth.Generate(cfg)
		if err != nil {
			corpusErr = err
			return
		}
		stores, err := eco.Populate()
		if err != nil {
			corpusErr = err
			return
		}
		corpusSnap, corpusErr = crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
	})
	if corpusErr != nil {
		t.Fatalf("corpus: %v", corpusErr)
	}
	return corpusSnap
}

// enrichOpts is the one enrichment configuration the whole file uses: the
// equivalence contract requires the ingestor and the cold oracle to enrich
// identically.
func enrichOpts() analysis.EnrichOptions { return analysis.DefaultEnrichOptions() }

// listingFor wraps one snapshot record (plus its APK, when harvested) as a
// delta listing.
func listingFor(snap *crawler.Snapshot, rec appmeta.Record) ingest.Listing {
	l := ingest.Listing{Record: rec}
	if data, ok := snap.APK(rec.Key()); ok {
		l.APK = data
	}
	return l
}

// coldSource is the oracle: one cold build + enrich over the given records in
// the given order, exactly what N batches of ingest must reproduce.
func coldSource(t *testing.T, snap *crawler.Snapshot, records []appmeta.Record) query.Source {
	t.Helper()
	d, err := analysis.BuildDatasetFromRecords(snap.CrawlTime, records, snap.APK, analysis.BuildOptions{})
	if err != nil {
		t.Fatalf("cold build: %v", err)
	}
	d.Enrich(enrichOpts())
	return d.QuerySource()
}

// canonicalJSON reduces a result to the bytes the equivalence is judged on:
// fields, rows and the match count (timings and explain plans legitimately
// differ between a sealed and a cold engine).
func canonicalJSON(t *testing.T, res *query.Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Fields []query.FieldInfo `json:"fields"`
		Rows   [][]any           `json:"rows"`
		Total  int               `json:"total"`
	}{res.Fields, res.Rows, res.Meta.TotalMatched})
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// requireSameScan runs q on both sources and requires byte-identical results.
func requireSameScan(t *testing.T, got, want query.Source, q query.Query) {
	t.Helper()
	gr, gerr := got.Scan(q)
	wr, werr := want.Scan(q)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("scan error mismatch: got %v, want %v (query %+v)", gerr, werr, q)
	}
	if gerr != nil {
		return
	}
	if g, w := canonicalJSON(t, gr), canonicalJSON(t, wr); !bytes.Equal(g, w) {
		t.Fatalf("scan diverged for %+v:\n got %s\nwant %s", q, g, w)
	}
}

// requireSameAggregate is requireSameScan for aggregation requests.
func requireSameAggregate(t *testing.T, got, want query.Source, a query.Aggregate) {
	t.Helper()
	gs, gok := got.(query.AggregateSource)
	ws, wok := want.(query.AggregateSource)
	if !gok || !wok {
		t.Fatalf("source lost aggregation support: got %v, want %v", gok, wok)
	}
	gr, gerr := gs.Aggregate(a)
	wr, werr := ws.Aggregate(a)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("aggregate error mismatch: got %v, want %v (request %+v)", gerr, werr, a)
	}
	if gerr != nil {
		return
	}
	if g, w := canonicalJSON(t, gr), canonicalJSON(t, wr); !bytes.Equal(g, w) {
		t.Fatalf("aggregate diverged for %+v:\n got %s\nwant %s", a, g, w)
	}
}

// fieldSamples dumps every column once and collects each field's non-null
// values, the pool the randomized filters draw operands from.
func fieldSamples(t *testing.T, src query.Source) ([]query.FieldInfo, map[string][]any) {
	t.Helper()
	res, err := src.Scan(query.Query{})
	if err != nil {
		t.Fatalf("full dump: %v", err)
	}
	samples := map[string][]any{}
	for c, f := range res.Fields {
		for _, row := range res.Rows {
			if row[c] != nil {
				samples[f.Name] = append(samples[f.Name], row[c])
			}
		}
	}
	return res.Fields, samples
}

// jsonRoundTrip re-parses a query through the production JSON path, so filter
// operands reach the engine in exactly the representation HTTP clients
// produce (numbers as float64, times as RFC 3339 strings).
func jsonRoundTrip(t *testing.T, q query.Query) query.Query {
	t.Helper()
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatalf("marshal query: %v", err)
	}
	out, err := query.ParseQuery(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("reparse query %s: %v", b, err)
	}
	return out
}

// aggRoundTrip is jsonRoundTrip for aggregation requests.
func aggRoundTrip(t *testing.T, a query.Aggregate) query.Aggregate {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal aggregate: %v", err)
	}
	out, err := query.ParseAggregate(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("reparse aggregate %s: %v", b, err)
	}
	return out
}

// randomFilter builds one valid filter against a sampled field value.
func randomFilter(rng *rand.Rand, fields []query.FieldInfo, samples map[string][]any) (query.Filter, bool) {
	f := fields[rng.Intn(len(fields))]
	if rng.Intn(6) == 0 {
		return query.Filter{Field: f.Name, Op: query.OpIsNull, Value: rng.Intn(2) == 0}, true
	}
	pool := samples[f.Name]
	if len(pool) == 0 {
		return query.Filter{Field: f.Name, Op: query.OpIsNull}, true
	}
	v := pool[rng.Intn(len(pool))]
	switch f.Kind {
	case query.KindString:
		ops := []query.Op{query.OpEq, query.OpNe, query.OpContains, query.OpLt, query.OpGe}
		op := ops[rng.Intn(len(ops))]
		if op == query.OpContains {
			s := v.(string)
			if len(s) > 2 {
				s = s[:1+rng.Intn(len(s)-1)]
			}
			return query.Filter{Field: f.Name, Op: op, Value: s}, true
		}
		return query.Filter{Field: f.Name, Op: op, Value: v}, true
	case query.KindInt, query.KindFloat, query.KindTime:
		ops := []query.Op{query.OpEq, query.OpNe, query.OpLt, query.OpLe, query.OpGt, query.OpGe}
		return query.Filter{Field: f.Name, Op: ops[rng.Intn(len(ops))], Value: v}, true
	case query.KindBool:
		return query.Filter{Field: f.Name, Op: query.OpEq, Value: v}, true
	}
	return query.Filter{}, false
}

// randomQuery assembles one scan request: random projection, 0-2 filters,
// 0-2 sort keys, an occasional limit.
func randomQuery(rng *rand.Rand, fields []query.FieldInfo, samples map[string][]any) query.Query {
	var q query.Query
	for i := 0; i < 1+rng.Intn(4); i++ {
		q.Fields = append(q.Fields, fields[rng.Intn(len(fields))].Name)
	}
	for i := rng.Intn(3); i > 0; i-- {
		if f, ok := randomFilter(rng, fields, samples); ok {
			q.Filters = append(q.Filters, f)
		}
	}
	for i := rng.Intn(3); i > 0; i-- {
		q.Sort = append(q.Sort, query.SortKey{
			Field: fields[rng.Intn(len(fields))].Name,
			Desc:  rng.Intn(2) == 0,
		})
	}
	// Unsorted scans return rows in dataset order, so they compare exactly
	// even under a limit; keep limits to sorted queries anyway for variety.
	if rng.Intn(2) == 0 {
		q.Limit = 1 + rng.Intn(40)
	}
	return q
}

// randomAggregate assembles one grouped-aggregation request over the sampled
// schema.
func randomAggregate(rng *rand.Rand, fields []query.FieldInfo, samples map[string][]any) query.Aggregate {
	var a query.Aggregate
	groupable := []string{"market", "market_chinese", "category", "flagged_malware"}
	for i := rng.Intn(3); i > 0; i-- {
		a.GroupBy = append(a.GroupBy, groupable[rng.Intn(len(groupable))])
	}
	a.Aggregates = append(a.Aggregates, query.AggSpec{Op: query.AggCount, As: "n"})
	for i := rng.Intn(3); i > 0; i-- {
		f := fields[rng.Intn(len(fields))]
		switch f.Kind {
		case query.KindInt, query.KindFloat, query.KindBool:
			ops := []query.AggOp{query.AggSum, query.AggMean, query.AggMin, query.AggMax}
			op := ops[rng.Intn(len(ops))]
			if f.Kind == query.KindBool && op != query.AggSum {
				op = query.AggSum
			}
			a.Aggregates = append(a.Aggregates, query.AggSpec{Op: op, Field: f.Name, As: fmt.Sprintf("a%d", i)})
		case query.KindString:
			ops := []query.AggOp{query.AggDistinct, query.AggTopK}
			a.Aggregates = append(a.Aggregates, query.AggSpec{
				Op: ops[rng.Intn(len(ops))], Field: f.Name, K: 1 + rng.Intn(5), As: fmt.Sprintf("a%d", i)})
		}
	}
	for i := rng.Intn(2); i > 0; i-- {
		if f, ok := randomFilter(rng, fields, samples); ok {
			a.Filters = append(a.Filters, f)
		}
	}
	a.Sort = []query.SortKey{{Field: "n", Desc: rng.Intn(2) == 0}}
	if rng.Intn(2) == 0 {
		a.Limit = 1 + rng.Intn(10)
	}
	return a
}

// requireEquivalent drives both sources through a full dump plus a randomized
// query/aggregate mix and requires byte-identical answers throughout.
func requireEquivalent(t *testing.T, rng *rand.Rand, got, want query.Source) {
	t.Helper()
	requireSameScan(t, got, want, query.Query{}) // every field, every row
	fields, samples := fieldSamples(t, want)
	for i := 0; i < 14; i++ {
		requireSameScan(t, got, want, jsonRoundTrip(t, randomQuery(rng, fields, samples)))
	}
	for i := 0; i < 8; i++ {
		requireSameAggregate(t, got, want, aggRoundTrip(t, randomAggregate(rng, fields, samples)))
	}
}

// TestIncrementalMatchesColdBuild is the acceptance test of the whole PR: N
// incremental batches must yield an engine byte-identical to one cold build
// over the union, for randomized partitions that include empty batches,
// scrambled arrival order, duplicate listings, cursor replays and gaps.
func TestIncrementalMatchesColdBuild(t *testing.T) {
	snap := corpus(t)
	records := snap.Records()

	for seed := 0; seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 17))
			shuffled := append([]appmeta.Record(nil), records...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

			ing := ingest.New(ingest.Options{Enrich: enrichOpts(), CrawlTime: snap.CrawlTime})
			seen := map[appmeta.Key]bool{}
			var keptOrder []appmeta.Record
			var seq uint64
			totalAdded, sealedBatches := 0, 0

			for off := 0; off < len(shuffled); {
				// Occasionally probe the cursor discipline mid-stream: a replay
				// must be a no-op and a gap must be rejected, neither touching
				// the dataset.
				if seq > 0 && rng.Intn(4) == 0 {
					before := ing.Dataset()
					res, err := ing.Apply(ingest.Delta{Seq: rng.Uint64() % seq, Listings: []ingest.Listing{listingFor(snap, shuffled[0])}})
					if err != nil || res.Applied {
						t.Fatalf("replayed delta: applied=%v err=%v", res.Applied, err)
					}
					if _, err := ing.Apply(ingest.Delta{Seq: seq + 1 + rng.Uint64()%5}); err == nil {
						t.Fatal("gapped delta was accepted")
					}
					if ing.Dataset() != before || ing.Cursor() != seq {
						t.Fatal("out-of-order deltas moved the cursor or the dataset")
					}
				}

				size := rng.Intn(40)
				if size > len(shuffled)-off {
					size = len(shuffled) - off
				}
				batch := shuffled[off : off+size]
				off += size
				listings := make([]ingest.Listing, 0, size+2)
				for _, rec := range batch {
					listings = append(listings, listingFor(snap, rec))
				}
				// Re-send a couple of already-ingested listings: append-only
				// means they must be skipped, not updated.
				for i := rng.Intn(3); i > 0 && len(keptOrder) > 0; i-- {
					listings = append(listings, listingFor(snap, keptOrder[rng.Intn(len(keptOrder))]))
				}
				rng.Shuffle(len(listings), func(i, j int) { listings[i], listings[j] = listings[j], listings[i] })

				res, err := ing.Apply(ingest.Delta{Seq: seq, Listings: listings})
				if err != nil {
					t.Fatalf("apply batch at seq %d: %v", seq, err)
				}
				seq++
				if !res.Applied || res.Cursor != seq {
					t.Fatalf("batch result %+v: want applied at cursor %d", res, seq)
				}
				totalAdded += res.Added
				if res.Sealed {
					sealedBatches++
				}

				// Track the expected dataset order: the batch's first-seen keys
				// in canonical (market, package) order.
				canon := append([]ingest.Listing(nil), listings...)
				sortListings(canon)
				added := 0
				for _, l := range canon {
					if !seen[l.Record.Key()] {
						seen[l.Record.Key()] = true
						keptOrder = append(keptOrder, l.Record)
						added++
					}
				}
				if res.Added != added || res.Listings != len(keptOrder) {
					t.Fatalf("batch bookkeeping %+v: want added=%d listings=%d", res, added, len(keptOrder))
				}

				// Sometimes publish (build the engine) mid-stream, which is what
				// arms the sealed-append fast path for the next batch.
				if rng.Intn(2) == 0 && ing.Dataset() != nil {
					ing.Dataset().QuerySource()
				}
			}

			if totalAdded != len(records) || len(keptOrder) != len(records) {
				t.Fatalf("ingested %d listings (tracked %d), want %d", totalAdded, len(keptOrder), len(records))
			}
			requireEquivalent(t, rng, ing.Dataset().QuerySource(), coldSource(t, snap, keptOrder))
			t.Logf("seed %d: %d batches, %d sealed", seed, seq, sealedBatches)
		})
	}
}

// sortListings orders a batch canonically by (market, package), mirroring the
// ingestor's documented dataset order.
func sortListings(ls []ingest.Listing) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0; j-- {
			a, b := ls[j-1].Record, ls[j].Record
			if a.Market < b.Market || (a.Market == b.Market && a.Package <= b.Package) {
				break
			}
			ls[j-1], ls[j] = ls[j], ls[j-1]
		}
	}
}

// TestSealedAppendPath pins the fast path deterministically: after the bulk
// of the corpus lands and its engine is built, a metadata-only batch (no APKs,
// so no new feature observations and no detection changes) must seal the next
// engine from the previous epoch's columns.
func TestSealedAppendPath(t *testing.T) {
	snap := corpus(t)
	records := snap.Records()
	ing := ingest.New(ingest.Options{Enrich: enrichOpts(), CrawlTime: snap.CrawlTime})

	bulk := make([]ingest.Listing, 0, len(records))
	for _, rec := range records {
		bulk = append(bulk, listingFor(snap, rec))
	}
	if _, err := ing.Apply(ingest.Delta{Seq: 0, Listings: bulk}); err != nil {
		t.Fatalf("bulk batch: %v", err)
	}
	ing.Dataset().QuerySource() // build (and thereby cache) the epoch-1 engine

	meta := []ingest.Listing{{Record: appmeta.Record{
		Market: "metadata-only-market", Package: "com.example.lateling",
		AppName: "Late Listing", Category: "tools", DeveloperName: "late dev",
		Downloads: 10, Rating: 4.0,
	}}}
	res, err := ing.Apply(ingest.Delta{Seq: 1, Listings: meta})
	if err != nil {
		t.Fatalf("metadata-only batch: %v", err)
	}
	if !res.Sealed || res.Redetected != 0 {
		t.Fatalf("metadata-only batch %+v: want sealed with zero redetections", res)
	}
	rng := rand.New(rand.NewSource(99))
	var keptOrder []appmeta.Record
	keptOrder = append(keptOrder, records...)
	keptOrder = append(keptOrder, meta[0].Record)
	requireEquivalent(t, rng, ing.Dataset().QuerySource(), coldSource(t, snap, keptOrder))
}

// TestCursorDiscipline pins every branch of the Apply contract that the
// randomized suite only samples.
func TestCursorDiscipline(t *testing.T) {
	snap := corpus(t)
	records := snap.Records()
	var published []*analysis.Dataset
	ing := ingest.New(ingest.Options{
		Enrich:    enrichOpts(),
		CrawlTime: snap.CrawlTime,
		Publish:   func(d *analysis.Dataset) { published = append(published, d) },
	})

	// An empty batch advances the cursor but publishes nothing.
	res, err := ing.Apply(ingest.Delta{Seq: 0})
	if err != nil || !res.Applied || res.Cursor != 1 || res.Added != 0 {
		t.Fatalf("empty batch: res=%+v err=%v", res, err)
	}
	if len(published) != 0 || ing.Dataset() != nil {
		t.Fatal("empty batch must not publish a dataset")
	}

	// A malformed listing rejects the whole batch: cursor and dataset stay.
	bad := ingest.Delta{Seq: 1, Listings: []ingest.Listing{
		listingFor(snap, records[0]),
		{Record: appmeta.Record{Market: "m"}}, // no package
	}}
	if _, err := ing.Apply(bad); err == nil {
		t.Fatal("batch with an invalid record was accepted")
	}
	if ing.Cursor() != 1 || ing.Dataset() != nil || len(published) != 0 {
		t.Fatal("rejected batch moved the cursor or the dataset")
	}

	// A real batch lands and publishes exactly once.
	res, err = ing.Apply(ingest.Delta{Seq: 1, Listings: []ingest.Listing{
		listingFor(snap, records[0]), listingFor(snap, records[1]),
	}})
	if err != nil || res.Added != 2 || len(published) != 1 || published[0] != ing.Dataset() {
		t.Fatalf("first real batch: res=%+v err=%v published=%d", res, err, len(published))
	}

	// A duplicate-only batch advances the cursor, skips everything, and does
	// not publish a new epoch.
	ds := ing.Dataset()
	res, err = ing.Apply(ingest.Delta{Seq: 2, Listings: []ingest.Listing{
		listingFor(snap, records[1]), listingFor(snap, records[1]),
	}})
	if err != nil || !res.Applied || res.Added != 0 || res.Skipped != 2 {
		t.Fatalf("duplicate-only batch: res=%+v err=%v", res, err)
	}
	if ing.Dataset() != ds || len(published) != 1 || ing.Cursor() != 3 {
		t.Fatal("duplicate-only batch published or failed to advance the cursor")
	}

	// Replay of a landed batch: acknowledged, not applied.
	res, err = ing.Apply(ingest.Delta{Seq: 1, Listings: []ingest.Listing{listingFor(snap, records[2])}})
	if err != nil || res.Applied || res.Cursor != 3 {
		t.Fatalf("replay: res=%+v err=%v", res, err)
	}

	// Gap: rejected with ErrCursorGap.
	if _, err := ing.Apply(ingest.Delta{Seq: 7}); err == nil || !strings.Contains(err.Error(), "want 3") {
		t.Fatalf("gap: err=%v", err)
	}
}

// TestIngestHTTP pins the HTTP surface: cursor probe, apply, replay, gap,
// malformed body, method gate.
func TestIngestHTTP(t *testing.T) {
	snap := corpus(t)
	records := snap.Records()
	ing := ingest.New(ingest.Options{Enrich: enrichOpts(), CrawlTime: snap.CrawlTime})
	h := ingest.Handler(ing)

	get := func() ingest.CursorState {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodGet, ingest.IngestPath, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET cursor: code %d", rec.Code)
		}
		var cs ingest.CursorState
		if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
			t.Fatalf("GET cursor body %q: %v", rec.Body.String(), err)
		}
		return cs
	}
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodPost, ingest.IngestPath, strings.NewReader(body)))
		return rec
	}
	deltaBody := func(seq uint64, recs ...appmeta.Record) string {
		d := ingest.Delta{Seq: seq}
		for _, r := range recs {
			d.Listings = append(d.Listings, listingFor(snap, r))
		}
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal delta: %v", err)
		}
		return string(b)
	}

	if cs := get(); cs.Cursor != 0 || cs.Listings != 0 {
		t.Fatalf("initial cursor state %+v", cs)
	}
	rec := post(deltaBody(0, records[0], records[1], records[2]))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST delta: code %d body %q", rec.Code, rec.Body.String())
	}
	var res ingest.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || !res.Applied || res.Added != 3 {
		t.Fatalf("POST delta result %+v (err %v)", res, err)
	}
	if cs := get(); cs.Cursor != 1 || cs.Listings != 3 {
		t.Fatalf("cursor state after delta %+v", cs)
	}

	// Replay: 200, not applied.
	if err := json.Unmarshal(post(deltaBody(0, records[0])).Body.Bytes(), &res); err != nil || res.Applied {
		t.Fatalf("replay result %+v (err %v)", res, err)
	}
	// Gap: 409 carrying the expected cursor.
	rec = post(deltaBody(5, records[3]))
	if rec.Code != http.StatusConflict {
		t.Fatalf("gapped POST: code %d", rec.Code)
	}
	var e struct {
		Error  string `json:"error"`
		Cursor uint64 `json:"cursor"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" || e.Cursor != 1 {
		t.Fatalf("gap body %q (err %v)", rec.Body.String(), err)
	}
	// Malformed body: 400.
	if rec := post(`{"seq": 1, "nope": true}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed POST: code %d", rec.Code)
	}
	// Invalid record: 400 (not a cursor conflict).
	if rec := post(`{"seq": 1, "listings": [{"record": {"market": "m"}}]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid-record POST: code %d body %q", rec.Code, rec.Body.String())
	}
	// Method gate: 405.
	recM := httptest.NewRecorder()
	h(recM, httptest.NewRequest(http.MethodDelete, ingest.IngestPath, nil))
	if recM.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: code %d", recM.Code)
	}
}

// TestEndToEndServerPublish wires the full production topology: a
// market.Server with the ingest handler mounted via AttachPost and the
// ingestor publishing each epoch through SwapSource. Deltas POSTed over HTTP
// must advance the serving epoch, invalidate the result cache, and change
// what /api/scan returns — without a restart.
func TestEndToEndServerPublish(t *testing.T) {
	snap := corpus(t)
	records := snap.Records()

	srv := market.NewServer(market.NewStore(market.Profile{Name: "analysis"}))
	empty, err := analysis.BuildDatasetFromRecords(snap.CrawlTime, nil, nil, analysis.BuildOptions{})
	if err != nil {
		t.Fatalf("empty dataset: %v", err)
	}
	empty.Enrich(enrichOpts())
	srv.AttachScan(empty.QuerySource())
	ing := ingest.New(ingest.Options{
		Enrich:    enrichOpts(),
		CrawlTime: snap.CrawlTime,
		Publish:   func(d *analysis.Dataset) { srv.SwapSource(d.QuerySource()) },
	})
	srv.AttachPost(ingest.IngestPath, ingest.Handler(ing))
	srv.ConfigureServing(market.ServeConfig{CacheBytes: 1 << 20})

	do := func(method, path, body string) *httptest.ResponseRecorder {
		var r *http.Request
		if body == "" {
			r = httptest.NewRequest(method, path, nil)
		} else {
			r = httptest.NewRequest(method, path, strings.NewReader(body))
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, r)
		return rec
	}
	countRows := func(body []byte) int {
		var res struct {
			Rows []json.RawMessage `json:"rows"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("scan body %q: %v", body, err)
		}
		return len(res.Rows)
	}
	postDelta := func(seq uint64, recs []appmeta.Record) {
		d := ingest.Delta{Seq: seq}
		for _, r := range recs {
			d.Listings = append(d.Listings, listingFor(snap, r))
		}
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal delta: %v", err)
		}
		if rec := do(http.MethodPost, ingest.IngestPath, string(b)); rec.Code != http.StatusOK {
			t.Fatalf("POST delta seq %d: code %d body %q", seq, rec.Code, rec.Body.String())
		}
	}

	const scanQ = `{"fields":["package"]}`
	if rec := do(http.MethodPost, market.ScanPath, scanQ); countRows(rec.Body.Bytes()) != 0 {
		t.Fatalf("pre-ingest scan returned rows: %s", rec.Body.String())
	}
	if srv.Epoch() != 0 {
		t.Fatalf("pre-ingest epoch %d", srv.Epoch())
	}

	postDelta(0, records[:30])
	if srv.Epoch() != 1 {
		t.Fatalf("epoch after first delta = %d, want 1", srv.Epoch())
	}
	rec := do(http.MethodPost, market.ScanPath, scanQ)
	if rec.Header().Get("X-Cache") != "MISS" || countRows(rec.Body.Bytes()) != 30 {
		t.Fatalf("scan after first delta: X-Cache=%q rows=%d", rec.Header().Get("X-Cache"), countRows(rec.Body.Bytes()))
	}
	if rec := do(http.MethodPost, market.ScanPath, scanQ); rec.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("repeat scan: X-Cache=%q, want HIT", rec.Header().Get("X-Cache"))
	}

	postDelta(1, records[30:50])
	if srv.Epoch() != 2 {
		t.Fatalf("epoch after second delta = %d, want 2", srv.Epoch())
	}
	rec = do(http.MethodPost, market.ScanPath, scanQ)
	if rec.Header().Get("X-Cache") != "MISS" || countRows(rec.Body.Bytes()) != 50 {
		t.Fatalf("scan after second delta: X-Cache=%q rows=%d", rec.Header().Get("X-Cache"), countRows(rec.Body.Bytes()))
	}
	// The cursor probe rides the same GET gate as every other route.
	rec = do(http.MethodGet, ingest.IngestPath, "")
	var cs ingest.CursorState
	if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil || cs.Cursor != 2 || cs.Listings != 50 {
		t.Fatalf("cursor probe: %+v (err %v, body %q)", cs, err, rec.Body.String())
	}
	// Aggregation works against the published (enriched) source.
	if rec := do(http.MethodPost, market.AggregatePath, `{"aggregates":[{"op":"count"}]}`); rec.Code != http.StatusOK {
		t.Fatalf("aggregate on published source: code %d body %q", rec.Code, rec.Body.String())
	}
}

// TestConcurrentScansDuringApply hammers the last published engine from
// reader goroutines while batches land; run under -race. Readers must always
// see a complete epoch: every response's row count is one of the published
// dataset sizes.
func TestConcurrentScansDuringApply(t *testing.T) {
	snap := corpus(t)
	records := snap.Records()

	var publishedSrc sync.Map // *querySourceBox
	sizes := map[int]bool{}
	var sizesMu sync.Mutex
	ing := ingest.New(ingest.Options{
		Enrich:    enrichOpts(),
		CrawlTime: snap.CrawlTime,
		Publish: func(d *analysis.Dataset) {
			sizesMu.Lock()
			sizes[d.NumListings()] = true
			sizesMu.Unlock()
			publishedSrc.Store("src", d.QuerySource())
		},
	})

	// First batch before the readers start, so there is always a source.
	first := make([]ingest.Listing, 0, 40)
	for _, rec := range records[:40] {
		first = append(first, listingFor(snap, rec))
	}
	if _, err := ing.Apply(ingest.Delta{Seq: 0, Listings: first}); err != nil {
		t.Fatalf("first batch: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, _ := publishedSrc.Load("src")
				src := v.(query.Source)
				res, err := src.Scan(query.Query{Fields: []string{"package"}})
				if err != nil {
					t.Errorf("scan during ingest: %v", err)
					return
				}
				sizesMu.Lock()
				ok := sizes[len(res.Rows)]
				sizesMu.Unlock()
				if !ok {
					t.Errorf("scan saw %d rows, not any published epoch size", len(res.Rows))
					return
				}
			}
		}()
	}
	seq := uint64(1)
	for off := 40; off < len(records); {
		size := 20
		if size > len(records)-off {
			size = len(records) - off
		}
		batch := make([]ingest.Listing, 0, size)
		for _, rec := range records[off : off+size] {
			batch = append(batch, listingFor(snap, rec))
		}
		off += size
		if _, err := ing.Apply(ingest.Delta{Seq: seq, Listings: batch}); err != nil {
			t.Fatalf("batch at seq %d: %v", seq, err)
		}
		seq++
	}
	close(stop)
	wg.Wait()
}
