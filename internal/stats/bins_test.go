package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinDownloads(t *testing.T) {
	cases := []struct {
		installs int64
		want     DownloadBin
	}{
		{0, Bin0To10},
		{9, Bin0To10},
		{10, Bin10To100},
		{99, Bin10To100},
		{100, Bin100To1K},
		{999, Bin100To1K},
		{1_000, Bin1KTo10K},
		{9_999, Bin1KTo10K},
		{10_000, Bin10KTo100K},
		{75_123, Bin10KTo100K},
		{100_000, Bin100KTo1M},
		{999_999, Bin100KTo1M},
		{1_000_000, BinOver1M},
		{5_000_000_000, BinOver1M},
	}
	for _, tc := range cases {
		if got := BinDownloads(tc.installs); got != tc.want {
			t.Errorf("BinDownloads(%d) = %v, want %v", tc.installs, got, tc.want)
		}
	}
}

func TestDownloadBinString(t *testing.T) {
	if Bin0To10.String() != "0-10" {
		t.Errorf("Bin0To10 = %q", Bin0To10.String())
	}
	if BinOver1M.String() != ">1M" {
		t.Errorf("BinOver1M = %q", BinOver1M.String())
	}
	if DownloadBin(99).String() == "" {
		t.Error("out-of-range bin should still render")
	}
}

func TestDownloadBinLowerBound(t *testing.T) {
	if Bin0To10.LowerBound() != 0 {
		t.Error("Bin0To10 lower bound should be 0")
	}
	if BinOver1M.LowerBound() != 1_000_000 {
		t.Error("BinOver1M lower bound should be 1M")
	}
	if DownloadBin(-1).LowerBound() != 0 {
		t.Error("invalid bin lower bound should be 0")
	}
}

func TestDownloadBinsCoverAll(t *testing.T) {
	bins := DownloadBins()
	if len(bins) != NumDownloadBins() {
		t.Fatalf("DownloadBins() length %d != NumDownloadBins() %d", len(bins), NumDownloadBins())
	}
	for i, b := range bins {
		if int(b) != i {
			t.Errorf("bin %d out of order: %v", i, b)
		}
	}
}

func TestComputeDownloadDistribution(t *testing.T) {
	installs := []int64{5, 5, 50, 500, 5_000, 50_000, 500_000, 5_000_000}
	dist := ComputeDownloadDistribution(installs)
	sum := 0.0
	for _, v := range dist {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %g", sum)
	}
	if math.Abs(dist[Bin0To10]-0.25) > 1e-9 {
		t.Errorf("0-10 share = %g, want 0.25", dist[Bin0To10])
	}
	var zero DownloadDistribution
	if ComputeDownloadDistribution(nil) != zero {
		t.Error("empty input should produce zero distribution")
	}
}

func TestComputeDownloadDistributionSumsToOneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		installs := make([]int64, len(raw))
		for i, v := range raw {
			installs[i] = int64(v)
		}
		dist := ComputeDownloadDistribution(installs)
		sum := 0.0
		for _, v := range dist {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateDownloadsLowerBound(t *testing.T) {
	installs := []int64{5, 75_123, 2_000_000}
	// 0 + 10_000 + 1_000_000
	if got := AggregateDownloadsLowerBound(installs); got != 1_010_000 {
		t.Errorf("AggregateDownloadsLowerBound = %d, want 1010000", got)
	}
	if AggregateDownloadsLowerBound(nil) != 0 {
		t.Error("empty aggregate should be 0")
	}
}

func TestRatingBucket(t *testing.T) {
	cases := []struct {
		rating float64
		want   string
	}{
		{0, "unrated"}, {-1, "unrated"}, {1.0, "low"}, {2.4, "low"},
		{2.5, "mid"}, {3.9, "mid"}, {4.0, "high"}, {5.0, "high"},
	}
	for _, tc := range cases {
		if got := RatingBucket(tc.rating); got != tc.want {
			t.Errorf("RatingBucket(%g) = %q, want %q", tc.rating, got, tc.want)
		}
	}
}
