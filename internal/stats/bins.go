package stats

import "fmt"

// DownloadBin is one of the install-count ranges used by Google Play and
// adopted by the paper (Figure 2) to normalize download counts across
// markets: 0-10, 10-100, ..., >1M.
type DownloadBin int

// The download bins in ascending order. These mirror the columns of the
// paper's Figure 2.
const (
	Bin0To10 DownloadBin = iota
	Bin10To100
	Bin100To1K
	Bin1KTo10K
	Bin10KTo100K
	Bin100KTo1M
	BinOver1M
	numDownloadBins
)

// downloadBinNames are the human-readable labels matching Figure 2's columns.
var downloadBinNames = [...]string{
	"0-10",
	"10-100",
	"100-1K",
	"1K-10K",
	"10K-100K",
	"100K-1M",
	">1M",
}

// downloadBinLower are the inclusive lower bounds of each bin. The paper
// estimates Google Play's aggregate downloads using these lower bounds.
var downloadBinLower = [...]int64{0, 10, 100, 1_000, 10_000, 100_000, 1_000_000}

// String returns the Figure 2 column label for the bin.
func (b DownloadBin) String() string {
	if b < 0 || int(b) >= len(downloadBinNames) {
		return fmt.Sprintf("DownloadBin(%d)", int(b))
	}
	return downloadBinNames[b]
}

// LowerBound returns the inclusive lower bound of the bin, used as the
// conservative estimate when aggregating downloads ("193 B" in Table 1 is
// computed this way).
func (b DownloadBin) LowerBound() int64 {
	if b < 0 || int(b) >= len(downloadBinLower) {
		return 0
	}
	return downloadBinLower[b]
}

// NumDownloadBins returns the number of bins.
func NumDownloadBins() int { return int(numDownloadBins) }

// DownloadBins returns all bins in ascending order.
func DownloadBins() []DownloadBin {
	out := make([]DownloadBin, numDownloadBins)
	for i := range out {
		out[i] = DownloadBin(i)
	}
	return out
}

// BinDownloads maps a raw install count to its Google Play range. This is the
// normalization the paper applies to every market's reported installs so the
// distributions are comparable ("75,123 after normalization becomes
// [50,000, 100,000]" — we bin to the coarser published column ranges of
// Figure 2).
func BinDownloads(installs int64) DownloadBin {
	switch {
	case installs < 10:
		return Bin0To10
	case installs < 100:
		return Bin10To100
	case installs < 1_000:
		return Bin100To1K
	case installs < 10_000:
		return Bin1KTo10K
	case installs < 100_000:
		return Bin10KTo100K
	case installs < 1_000_000:
		return Bin100KTo1M
	default:
		return BinOver1M
	}
}

// DownloadDistribution is a per-bin share vector, one row of Figure 2.
type DownloadDistribution [numDownloadBins]float64

// ComputeDownloadDistribution bins the install counts and returns the share
// of apps falling in each bin. An empty input yields the zero distribution.
func ComputeDownloadDistribution(installs []int64) DownloadDistribution {
	var dist DownloadDistribution
	if len(installs) == 0 {
		return dist
	}
	var counts [numDownloadBins]int
	for _, v := range installs {
		counts[BinDownloads(v)]++
	}
	for i := range dist {
		dist[i] = float64(counts[i]) / float64(len(installs))
	}
	return dist
}

// AggregateDownloadsLowerBound sums the lower bounds of the bins the installs
// fall into. This mirrors how the paper estimates Google Play's aggregate
// download volume from binned metadata.
func AggregateDownloadsLowerBound(installs []int64) int64 {
	var total int64
	for _, v := range installs {
		total += BinDownloads(v).LowerBound()
	}
	return total
}

// RatingBucket maps a 0-5 star rating to a coarse label used in rating
// distribution summaries: "unrated" (0), "low" (<2.5), "mid" (2.5-4) and
// "high" (>=4).
func RatingBucket(rating float64) string {
	switch {
	case rating <= 0:
		return "unrated"
	case rating < 2.5:
		return "low"
	case rating < 4.0:
		return "mid"
	default:
		return "high"
	}
}
