package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples integers in [1, n] following a Zipf distribution with exponent
// s. It is used to model app-popularity ranks: the paper observes that the
// top 0.1% of apps account for over 50% of downloads in every market, which
// is the signature of a Zipf-like download distribution (Section 4.2).
type Zipf struct {
	n   int
	s   float64
	cdf []float64
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s. s must be
// positive; values around 1.0-1.6 reproduce the paper's concentration of
// downloads in the top ranks.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf requires n > 0, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: zipf requires s > 0, got %g", s)
	}
	z := &Zipf{n: n, s: s, cdf: make([]float64, n)}
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		z.cdf[k-1] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	return z, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Sample returns a rank in [1, n].
func (z *Zipf) Sample(g *RNG) int {
	u := g.Float64()
	idx := sort.SearchFloat64s(z.cdf, u)
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx + 1
}

// Weight returns the unnormalized Zipf weight of rank k.
func (z *Zipf) Weight(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	return 1 / math.Pow(float64(k), z.s)
}

// BoundedPareto samples continuous values from a Pareto (power-law)
// distribution truncated to [lo, hi]. The paper's download counts span from
// fewer than 10 installs to over a billion, a range of eight orders of
// magnitude that a bounded Pareto captures directly.
type BoundedPareto struct {
	alpha  float64
	lo, hi float64
}

// NewBoundedPareto builds a bounded Pareto sampler with tail exponent alpha
// over [lo, hi]. alpha must be positive and 0 < lo < hi.
func NewBoundedPareto(alpha, lo, hi float64) (*BoundedPareto, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("stats: pareto requires alpha > 0, got %g", alpha)
	}
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: pareto requires 0 < lo < hi, got lo=%g hi=%g", lo, hi)
	}
	return &BoundedPareto{alpha: alpha, lo: lo, hi: hi}, nil
}

// Sample returns a value in [lo, hi].
func (p *BoundedPareto) Sample(g *RNG) float64 {
	u := g.Float64()
	la := math.Pow(p.lo, p.alpha)
	ha := math.Pow(p.hi, p.alpha)
	// Inverse transform sampling of the truncated Pareto CDF.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
	if x < p.lo {
		x = p.lo
	}
	if x > p.hi {
		x = p.hi
	}
	return x
}

// Categorical samples from a fixed discrete distribution over named
// categories. It is the workhorse for assigning app categories, API levels,
// malware families and library choices whose target shares are taken from the
// paper's figures.
type Categorical struct {
	labels  []string
	weights []float64
	cdf     []float64
	total   float64
}

// NewCategorical builds a categorical sampler. Labels and weights must have
// the same non-zero length and at least one weight must be positive.
func NewCategorical(labels []string, weights []float64) (*Categorical, error) {
	if len(labels) == 0 || len(labels) != len(weights) {
		return nil, fmt.Errorf("stats: categorical requires matching non-empty labels/weights, got %d/%d",
			len(labels), len(weights))
	}
	c := &Categorical{
		labels:  append([]string(nil), labels...),
		weights: append([]float64(nil), weights...),
		cdf:     make([]float64, len(labels)),
	}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: categorical weight %d is negative (%g)", i, w)
		}
		c.total += w
		c.cdf[i] = c.total
	}
	if c.total <= 0 {
		return nil, fmt.Errorf("stats: categorical requires at least one positive weight")
	}
	return c, nil
}

// Labels returns the category labels in declaration order.
func (c *Categorical) Labels() []string { return append([]string(nil), c.labels...) }

// Prob returns the normalized probability of the given label, or 0 if the
// label is unknown.
func (c *Categorical) Prob(label string) float64 {
	for i, l := range c.labels {
		if l == label {
			return c.weights[i] / c.total
		}
	}
	return 0
}

// Sample returns one label drawn according to the weights.
func (c *Categorical) Sample(g *RNG) string {
	target := g.Float64() * c.total
	idx := sort.SearchFloat64s(c.cdf, target)
	if idx >= len(c.labels) {
		idx = len(c.labels) - 1
	}
	return c.labels[idx]
}

// SampleIndex returns the index of a label drawn according to the weights.
func (c *Categorical) SampleIndex(g *RNG) int {
	target := g.Float64() * c.total
	idx := sort.SearchFloat64s(c.cdf, target)
	if idx >= len(c.labels) {
		idx = len(c.labels) - 1
	}
	return idx
}

// Mixture draws from one of several samplers with given weights. It is used,
// for example, to mix "abandoned old app" and "actively maintained app"
// release-date models within a single market.
type Mixture struct {
	weights []float64
	sample  []func(*RNG) float64
}

// NewMixture builds a mixture over component samplers.
func NewMixture(weights []float64, components []func(*RNG) float64) (*Mixture, error) {
	if len(weights) == 0 || len(weights) != len(components) {
		return nil, fmt.Errorf("stats: mixture requires matching non-empty weights/components")
	}
	return &Mixture{weights: append([]float64(nil), weights...), sample: components}, nil
}

// Sample draws a component then a value from it.
func (m *Mixture) Sample(g *RNG) float64 {
	return m.sample[g.PickWeighted(m.weights)](g)
}
