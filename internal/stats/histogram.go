package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram counts observations in named buckets. Analyses use it to build
// the per-market category, API-level and over-privilege distributions that
// back Figures 1, 3 and 11.
type Histogram struct {
	counts map[string]int
	total  int
	// ranked memoizes the count-descending bucket ranking that Buckets,
	// TopK and Shares all derive from, so repeated reads (the per-market
	// report loops) sort the keys once instead of once per call. Any AddN
	// invalidates it. rankedMu guards the memo so concurrent *reads* stay
	// safe (writes via AddN were never concurrency-safe and still are not).
	rankedMu sync.Mutex
	ranked   []BucketShare
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[string]int)}
}

// NewHistogramSize returns an empty histogram preallocated for n distinct
// buckets, sparing the incremental map growth of the hot per-market loops
// when the bucket universe (categories, API levels) is known up front.
func NewHistogramSize(n int) *Histogram {
	if n < 0 {
		n = 0
	}
	return &Histogram{counts: make(map[string]int, n)}
}

// Add increments the named bucket by one.
func (h *Histogram) Add(bucket string) { h.AddN(bucket, 1) }

// AddN increments the named bucket by n. Negative n is ignored.
func (h *Histogram) AddN(bucket string, n int) {
	if n <= 0 {
		return
	}
	h.counts[bucket] += n
	h.total += n
	h.rankedMu.Lock()
	h.ranked = nil
	h.rankedMu.Unlock()
}

// Count returns the count in the named bucket.
func (h *Histogram) Count(bucket string) int { return h.counts[bucket] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Share returns the fraction of observations in the named bucket, or 0 when
// the histogram is empty.
func (h *Histogram) Share(bucket string) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[bucket]) / float64(h.total)
}

// ranking returns the memoized count-descending (name-ascending on ties)
// bucket ranking, building it at most once between mutations. The slice is
// internal: callers receive copies.
func (h *Histogram) ranking() []BucketShare {
	h.rankedMu.Lock()
	defer h.rankedMu.Unlock()
	if h.ranked != nil || len(h.counts) == 0 {
		return h.ranked
	}
	ranked := make([]BucketShare, 0, len(h.counts))
	for name, count := range h.counts {
		ranked = append(ranked, BucketShare{Bucket: name, Count: count, Share: h.Share(name)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].Bucket < ranked[j].Bucket
	})
	h.ranked = ranked
	return ranked
}

// Buckets returns the bucket names sorted by descending count, breaking ties
// by name so the output is deterministic. Repeated calls between mutations
// reuse one memoized ranking instead of re-sorting.
func (h *Histogram) Buckets() []string {
	ranked := h.ranking()
	names := make([]string, len(ranked))
	for i, b := range ranked {
		names[i] = b.Bucket
	}
	return names
}

// Shares returns bucket->share for all buckets, computed off the memoized
// ranking.
func (h *Histogram) Shares() map[string]float64 {
	ranked := h.ranking()
	out := make(map[string]float64, len(ranked))
	for _, b := range ranked {
		out[b.Bucket] = b.Share
	}
	return out
}

// TopK returns the k most populated buckets and their shares. Repeated calls
// slice the memoized ranking instead of re-sorting the keys.
func (h *Histogram) TopK(k int) []BucketShare {
	ranked := h.ranking()
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	out := make([]BucketShare, k)
	copy(out, ranked[:k])
	return out
}

// BucketShare is a single named bucket with its count and share.
type BucketShare struct {
	Bucket string
	Count  int
	Share  float64
}

// CDF is an empirical cumulative distribution function over float64 samples.
// It backs the rating, developer-coverage and cluster-size CDFs of Figures 6,
// 7 and 8.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the given samples. The input slice is
// not modified.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples less than or equal to x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using nearest-rank
// interpolation. Quantile(0) is the minimum and Quantile(1) the maximum.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Series evaluates the CDF at the given points, returning one value per
// point. It is how figures are rendered as (x, P(X<=x)) series.
func (c *CDF) Series(points []float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = c.At(p)
	}
	return out
}

// Summary holds the standard five-number-style summary statistics plus mean
// and standard deviation for a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P90    float64
	P99    float64
	StdDev float64
}

// Summarize computes a Summary for the samples. It returns a zero Summary for
// an empty input.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	c := NewCDF(samples)
	var sum, sq float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	for _, v := range samples {
		d := v - mean
		sq += d * d
	}
	return Summary{
		N:      len(samples),
		Min:    c.Quantile(0),
		Max:    c.Quantile(1),
		Mean:   mean,
		Median: c.Quantile(0.5),
		P90:    c.Quantile(0.9),
		P99:    c.Quantile(0.99),
		StdDev: math.Sqrt(sq / float64(len(samples))),
	}
}

// TopShare returns the fraction of the total mass contributed by the top
// `fraction` of the samples (by value). The paper reports, for example, that
// the top 0.1% of apps account for more than 50% of all downloads; TopShare
// computes exactly that statistic.
func TopShare(samples []float64, fraction float64) float64 {
	if len(samples) == 0 || fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	s := append([]float64(nil), samples...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	k := int(math.Ceil(fraction * float64(len(s))))
	if k < 1 {
		k = 1
	}
	var top, total float64
	for i, v := range s {
		total += v
		if i < k {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// Gini computes the Gini coefficient of the samples, a standard measure of
// concentration used to compare download inequality across markets.
func Gini(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var cum, total float64
	for i, v := range s {
		if v < 0 {
			v = 0
		}
		total += v
		cum += v * float64(i+1)
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// String renders a compact representation useful in test failure messages.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g med=%.3g mean=%.3g p90=%.3g p99=%.3g max=%.3g sd=%.3g",
		s.N, s.Min, s.Median, s.Mean, s.P90, s.P99, s.Max, s.StdDev)
}
