package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("iteration %d: same seed diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestNewRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds produced %d identical values out of 64", same)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams overlap in %d of 64 draws", same)
	}
}

func TestBoolProbabilityBounds(t *testing.T) {
	g := NewRNG(3)
	if g.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !g.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if g.Bool(-0.5) {
		t.Error("Bool(-0.5) returned true")
	}
	if !g.Bool(1.5) {
		t.Error("Bool(1.5) returned false")
	}
}

func TestBoolFrequency(t *testing.T) {
	g := NewRNG(11)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want ~0.30", freq)
	}
}

func TestRange(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := g.Range(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("Range(3,9) returned %d", v)
		}
	}
	if v := g.Range(4, 4); v != 4 {
		t.Fatalf("Range(4,4) = %d, want 4", v)
	}
}

func TestRangePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(5,4) did not panic")
		}
	}()
	NewRNG(1).Range(5, 4)
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(13)
	for _, lambda := range []float64{0.5, 3, 10, 120} {
		const n = 5000
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.1+0.2 {
			t.Errorf("Poisson(%g) sample mean = %.2f", lambda, mean)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	g := NewRNG(1)
	if v := g.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d, want 0", v)
	}
	if v := g.Poisson(-3); v != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", v)
	}
}

func TestPickWeighted(t *testing.T) {
	g := NewRNG(17)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.PickWeighted(weights)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight index selected %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestPickWeightedAllZeroFallsBackToUniform(t *testing.T) {
	g := NewRNG(19)
	weights := []float64{0, 0, 0, 0}
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		idx := g.PickWeighted(weights)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 2 {
		t.Errorf("uniform fallback only produced indices %v", seen)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(23)
	got := g.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	all := g.SampleWithoutReplacement(5, 50)
	if len(all) != 5 {
		t.Fatalf("k>n: len = %d, want 5", len(all))
	}
}

func TestSampleWithoutReplacementProperty(t *testing.T) {
	f := func(seed uint64, n8, k8 uint8) bool {
		n := int(n8%50) + 1
		k := int(k8 % 60)
		g := NewRNG(seed)
		got := g.SampleWithoutReplacement(n, k)
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(29)
	for i := 0; i < 1000; i++ {
		if v := g.LogNormal(1, 2); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %g", v)
		}
	}
}
