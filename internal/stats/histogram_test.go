package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 {
		t.Errorf("empty total = %d", h.Total())
	}
	if h.Share("x") != 0 {
		t.Error("empty Share should be 0")
	}
	h.Add("game")
	h.Add("game")
	h.AddN("tools", 3)
	h.AddN("ignored", 0)
	h.AddN("ignored", -5)
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
	if h.Count("game") != 2 {
		t.Errorf("game count = %d, want 2", h.Count("game"))
	}
	if got := h.Share("tools"); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("tools share = %g, want 0.6", got)
	}
	if h.Count("ignored") != 0 {
		t.Error("non-positive AddN should be ignored")
	}
}

func TestHistogramBucketsOrdering(t *testing.T) {
	h := NewHistogram()
	h.AddN("b", 5)
	h.AddN("a", 5)
	h.AddN("c", 7)
	got := h.Buckets()
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets() = %v, want %v", got, want)
		}
	}
}

func TestHistogramTopK(t *testing.T) {
	h := NewHistogram()
	h.AddN("a", 10)
	h.AddN("b", 20)
	h.AddN("c", 70)
	top := h.TopK(2)
	if len(top) != 2 || top[0].Bucket != "c" || top[1].Bucket != "b" {
		t.Fatalf("TopK(2) = %+v", top)
	}
	if math.Abs(top[0].Share-0.7) > 1e-12 {
		t.Errorf("top share = %g, want 0.7", top[0].Share)
	}
	if got := h.TopK(10); len(got) != 3 {
		t.Errorf("TopK(10) length = %d, want 3", len(got))
	}
}

func TestHistogramSharesSumToOne(t *testing.T) {
	f := func(counts []uint8) bool {
		h := NewHistogram()
		any := false
		for i, c := range counts {
			if c == 0 {
				continue
			}
			any = true
			h.AddN(string(rune('a'+i%26)), int(c))
		}
		if !any {
			return true
		}
		sum := 0.0
		for _, s := range h.Shares() {
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAtAndQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want 1", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %g, want 5", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %g, want 3", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 {
		t.Error("empty CDF Len != 0")
	}
	if c.At(5) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF Quantile should be NaN")
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if !sort.Float64sAreSorted(in) && (in[0] != 3 || in[1] != 1 || in[2] != 2) {
		t.Error("NewCDF mutated its input")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		c := NewCDF(clean)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	got := c.Series([]float64{0, 2, 4})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary basics wrong: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 || math.Abs(s.Median-3) > 1e-12 {
		t.Errorf("mean/median wrong: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %g, want sqrt(2)", s.StdDev)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty Summarize N != 0")
	}
	if empty.String() == "" {
		t.Error("String() should render even for the zero Summary")
	}
}

func TestTopShare(t *testing.T) {
	// One dominant value holding 900 of the 990 total: 900/990.
	samples := []float64{900, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	got := TopShare(samples, 0.1)
	if math.Abs(got-900.0/990.0) > 1e-9 {
		t.Errorf("TopShare = %g, want %g", got, 900.0/990.0)
	}
	if TopShare(nil, 0.1) != 0 {
		t.Error("empty TopShare should be 0")
	}
	if TopShare(samples, 0) != 0 {
		t.Error("zero-fraction TopShare should be 0")
	}
	if got := TopShare(samples, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("fraction>1 TopShare = %g, want 1", got)
	}
}

func TestTopShareBoundedProperty(t *testing.T) {
	f := func(vals []float64, frac float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 {
				clean = append(clean, v)
			}
		}
		frac = math.Abs(math.Mod(frac, 1))
		got := TopShare(clean, frac)
		return got >= 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Errorf("equal distribution Gini = %g, want 0", g)
	}
	unequal := Gini([]float64{0, 0, 0, 100})
	if unequal < 0.7 {
		t.Errorf("concentrated distribution Gini = %g, want > 0.7", unequal)
	}
	if Gini(nil) != 0 {
		t.Error("empty Gini should be 0")
	}
	if Gini([]float64{0, 0}) != 0 {
		t.Error("all-zero Gini should be 0")
	}
}

func TestHistogramSizeAndRankingCache(t *testing.T) {
	h := NewHistogramSize(8)
	h.AddN("a", 3)
	h.AddN("b", 5)
	h.Add("c")
	first := h.Buckets()
	if want := []string{"b", "a", "c"}; !reflect.DeepEqual(first, want) {
		t.Fatalf("Buckets = %v, want %v", first, want)
	}
	// Repeated reads reuse the memoized ranking.
	top := h.TopK(2)
	if len(top) != 2 || top[0].Bucket != "b" || top[0].Count != 5 || top[1].Bucket != "a" {
		t.Fatalf("TopK = %+v", top)
	}
	shares := h.Shares()
	if shares["b"] != 5.0/9 || shares["c"] != 1.0/9 {
		t.Fatalf("Shares = %v", shares)
	}
	// TopK hands out copies, not the internal ranking.
	top[0].Bucket = "mutated"
	if h.TopK(1)[0].Bucket != "b" {
		t.Fatal("TopK exposed the internal ranking slice")
	}
	// A mutation invalidates the cache and changes the order.
	h.AddN("c", 10)
	if got := h.Buckets(); !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Fatalf("Buckets after mutation = %v", got)
	}
	if h.TopK(0) == nil || len(h.TopK(0)) != 0 {
		t.Fatalf("TopK(0) = %+v", h.TopK(0))
	}
	if h.TopK(-1) != nil && len(h.TopK(-1)) != 0 {
		t.Fatalf("TopK(-1) = %+v", h.TopK(-1))
	}
	if NewHistogramSize(-1).Total() != 0 {
		t.Fatal("negative size histogram broken")
	}
}
