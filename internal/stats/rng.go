// Package stats provides the statistical primitives used throughout
// marketscope: deterministic random number generation, heavy-tailed
// distribution samplers, histograms, empirical CDFs, quantiles and the
// download-range binning scheme used by Google Play.
//
// Every generator in marketscope is seeded, so a given configuration always
// produces the same synthetic ecosystem. That property is what makes the
// reproduction benches comparable across runs.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source. It wraps math/rand.Rand with a
// SplitMix64-style seed expansion so that nearby integer seeds produce
// uncorrelated streams, and adds a handful of convenience samplers that the
// synthetic ecosystem generator needs.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed. Two RNGs created
// with the same seed yield identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(int64(splitmix64(seed))))}
}

// splitmix64 is the standard SplitMix64 finalizer. It is used to decorrelate
// sequential seeds (1, 2, 3, ...) which would otherwise produce visibly
// similar streams from math/rand's LCG-style sources.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive returns a new RNG whose stream is a deterministic function of the
// parent's current position and the supplied label. It CONSUMES one value
// from the parent stream: two Derive calls at the same label yield different
// children, and the child depends on how much of the parent was consumed
// before the call. Only call it in a fixed program order — never from map
// iteration or goroutines. For order-independent sub-streams, build a fresh
// RNG from the configuration seed and a label hash instead (see
// synth.buildArtifacts).
func (g *RNG) Derive(label uint64) *RNG {
	return NewRNG(splitmix64(uint64(g.r.Int63())) ^ splitmix64(label))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Range returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (g *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("stats: invalid range")
	}
	if hi == lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed value parameterized by the
// mu/sigma of the underlying normal distribution.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Exponential returns an exponentially distributed value with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Poisson returns a Poisson-distributed integer with the given rate lambda.
// It uses Knuth's algorithm for small lambda and a normal approximation for
// large lambda, which is more than accurate enough for workload generation.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := g.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		k++
		p *= g.r.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// Shuffle permutes the integers [0, n) and calls swap for each exchange, in
// the manner of sort.Slice.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.r.Shuffle(n, swap)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PickWeighted returns an index in [0, len(weights)) chosen proportionally to
// the weights. Zero and negative weights are treated as zero. If all weights
// are zero it falls back to a uniform choice.
func (g *RNG) PickWeighted(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: PickWeighted with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return g.Intn(len(weights))
	}
	target := g.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns all n indices in random order.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return g.Perm(n)
	}
	perm := g.Perm(n)
	return perm[:k]
}
