package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0,1) accepted")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(10,0) accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(10,-1) accepted")
	}
	z, err := NewZipf(100, 1.2)
	if err != nil {
		t.Fatalf("NewZipf(100,1.2): %v", err)
	}
	if z.N() != 100 {
		t.Errorf("N() = %d, want 100", z.N())
	}
}

func TestZipfSampleRangeAndSkew(t *testing.T) {
	z, err := NewZipf(1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(42)
	counts := make(map[int]int)
	const n = 50000
	for i := 0; i < n; i++ {
		r := z.Sample(g)
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of [1,1000]", r)
		}
		counts[r]++
	}
	// Rank 1 must be sampled far more often than rank 100.
	if counts[1] < 5*counts[100]+1 {
		t.Errorf("zipf not skewed: rank1=%d rank100=%d", counts[1], counts[100])
	}
}

func TestZipfWeightMonotone(t *testing.T) {
	z, _ := NewZipf(50, 1.5)
	for k := 1; k < 50; k++ {
		if z.Weight(k) < z.Weight(k+1) {
			t.Fatalf("weight not monotone at rank %d", k)
		}
	}
	if z.Weight(0) != 0 || z.Weight(51) != 0 {
		t.Error("out-of-range weights should be 0")
	}
}

func TestBoundedParetoValidation(t *testing.T) {
	cases := []struct{ alpha, lo, hi float64 }{
		{0, 1, 10}, {-1, 1, 10}, {1, 0, 10}, {1, 10, 10}, {1, 10, 5},
	}
	for _, c := range cases {
		if _, err := NewBoundedPareto(c.alpha, c.lo, c.hi); err == nil {
			t.Errorf("NewBoundedPareto(%g,%g,%g) accepted", c.alpha, c.lo, c.hi)
		}
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	p, err := NewBoundedPareto(0.7, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(7)
	small, large := 0, 0
	for i := 0; i < 20000; i++ {
		v := p.Sample(g)
		if v < 1 || v > 1e9 {
			t.Fatalf("value %g out of bounds", v)
		}
		if v < 1000 {
			small++
		}
		if v > 1e6 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("bounded pareto should span orders of magnitude: small=%d large=%d", small, large)
	}
	if small <= large {
		t.Errorf("heavy tail inverted: small=%d large=%d", small, large)
	}
}

func TestCategoricalValidation(t *testing.T) {
	if _, err := NewCategorical(nil, nil); err == nil {
		t.Error("empty categorical accepted")
	}
	if _, err := NewCategorical([]string{"a"}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewCategorical([]string{"a", "b"}, []float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewCategorical([]string{"a", "b"}, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestCategoricalSampleAndProb(t *testing.T) {
	c, err := NewCategorical([]string{"game", "tools", "social"}, []float64{6, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Prob("game"); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Prob(game) = %g, want 0.6", got)
	}
	if got := c.Prob("missing"); got != 0 {
		t.Errorf("Prob(missing) = %g, want 0", got)
	}
	g := NewRNG(99)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[c.Sample(g)]++
	}
	for label, want := range map[string]float64{"game": 0.6, "tools": 0.3, "social": 0.1} {
		got := float64(counts[label]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("share of %q = %.3f, want ~%.2f", label, got, want)
		}
	}
}

func TestCategoricalSampleIndexMatchesLabels(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	c, _ := NewCategorical(labels, []float64{1, 2, 3, 4})
	g := NewRNG(5)
	for i := 0; i < 100; i++ {
		idx := c.SampleIndex(g)
		if idx < 0 || idx >= len(labels) {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestCategoricalLabelsCopy(t *testing.T) {
	labels := []string{"x", "y"}
	c, _ := NewCategorical(labels, []float64{1, 1})
	got := c.Labels()
	got[0] = "mutated"
	if c.Labels()[0] != "x" {
		t.Error("Labels() exposes internal slice")
	}
}

func TestMixture(t *testing.T) {
	m, err := NewMixture(
		[]float64{0.5, 0.5},
		[]func(*RNG) float64{
			func(*RNG) float64 { return 1 },
			func(*RNG) float64 { return 100 },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(3)
	low, high := 0, 0
	for i := 0; i < 2000; i++ {
		switch m.Sample(g) {
		case 1:
			low++
		case 100:
			high++
		default:
			t.Fatal("unexpected mixture value")
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("mixture never selected one component: low=%d high=%d", low, high)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]float64{1}, nil); err == nil {
		t.Error("mismatched mixture accepted")
	}
}

func TestZipfCDFIsNormalizedProperty(t *testing.T) {
	f := func(n8 uint8, sTenths uint8) bool {
		n := int(n8%200) + 1
		s := float64(sTenths%30)/10 + 0.1
		z, err := NewZipf(n, s)
		if err != nil {
			return false
		}
		last := z.cdf[len(z.cdf)-1]
		return math.Abs(last-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
