// Package clonedetect implements the fake-app and cloned-app detection of
// Section 6 of the paper.
//
// Three detectors are provided:
//
//   - Fake apps (Section 6.1): apps that imitate the *name* of a popular app
//     but ship under a different package name, found by clustering on
//     normalized app names and applying the paper's popularity heuristic.
//
//   - Signature-based clones (Section 6.2): apps sharing a package name but
//     signed by different developers.
//
//   - Code-based clones (Section 6.2): apps with different package names but
//     highly similar code, detected with the two-phase WuKong approach — a
//     normalized Manhattan distance over API-call count vectors followed by a
//     code-segment comparison.
//
// All detectors operate on AppInstance values, a market-agnostic view of one
// app listing with just enough information to attribute clones to source and
// destination markets (Figure 10).
package clonedetect

import (
	"sort"

	"marketscope/internal/dex"
	"marketscope/internal/signing"
)

// FeatureVector is a sparse API-call count vector. The original WuKong used
// a ~45K-dimension vector over Android API calls, intents and content
// providers; the sparse map representation is equivalent and does not require
// fixing the dimensionality up front.
type FeatureVector map[string]int

// NewVector builds the feature vector of an app's code, excluding classes
// under the given package prefixes (normally the detected third-party
// libraries, which would otherwise dominate the similarity signal).
func NewVector(code *dex.File, excludePrefixes []string) FeatureVector {
	filtered := code
	if len(excludePrefixes) > 0 {
		filtered = code.WithoutPrefixes(excludePrefixes)
	}
	v := FeatureVector{}
	for call, n := range filtered.APICallCounts() {
		v["api:"+call] += n
	}
	for action, n := range filtered.IntentActionCounts() {
		v["intent:"+action] += n
	}
	for uri, n := range filtered.ContentURICounts() {
		v["uri:"+uri] += n
	}
	return v
}

// Total returns the sum of all counts in the vector.
func (v FeatureVector) Total() int {
	t := 0
	for _, n := range v {
		t += n
	}
	return t
}

// Distance computes the normalized Manhattan distance used by WuKong:
//
//	distance(A,B) = sum_i |A_i - B_i| / sum_i (A_i + B_i)
//
// The result is in [0, 1]; 0 means identical counts, 1 means disjoint
// feature sets. Two empty vectors have distance 0.
func Distance(a, b FeatureVector) float64 {
	var num, den int
	for k, av := range a {
		bv := b[k]
		num += abs(av - bv)
		den += av + bv
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			num += bv
			den += bv
		}
	}
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// AppInstance is one app listing as seen by the clone detectors.
type AppInstance struct {
	Market    string
	Package   string
	AppName   string
	Downloads int64
	Developer signing.Fingerprint
	Vector    FeatureVector
	Segments  [][32]byte
}

// Ref identifies an app instance (one listing in one market).
type Ref struct {
	Market  string
	Package string
}

// Ref returns the instance's reference.
func (a *AppInstance) Ref() Ref { return Ref{Market: a.Market, Package: a.Package} }

// SegmentSimilarity returns the fraction of a's code segments that also
// appear in b (by digest). It is the second-phase WuKong check: candidate
// pairs from the vector phase are confirmed as clones only if they share a
// large fraction of concrete code segments.
func SegmentSimilarity(a, b [][32]byte) float64 {
	if len(a) == 0 {
		return 0
	}
	bSet := make(map[[32]byte]int, len(b))
	for _, s := range b {
		bSet[s]++
	}
	shared := 0
	for _, s := range a {
		if bSet[s] > 0 {
			bSet[s]--
			shared++
		}
	}
	return float64(shared) / float64(len(a))
}

// sortInstances orders instances deterministically (market, then package),
// which keeps every detector's output stable across runs.
func sortInstances(apps []*AppInstance) []*AppInstance {
	out := append([]*AppInstance(nil), apps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Market != out[j].Market {
			return out[i].Market < out[j].Market
		}
		return out[i].Package < out[j].Package
	})
	return out
}
