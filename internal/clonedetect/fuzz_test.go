package clonedetect

import (
	"testing"
)

// The fuzz targets below check the algebraic contracts the clone detector
// builds on: the normalized Manhattan distance is a symmetric function into
// [0, 1] with zero self-distance, vector totals are consistent sums, and the
// segment-similarity share is a fraction in [0, 1]. The decoders map
// arbitrary fuzz bytes onto sparse vectors and digest multisets, including
// the degenerate shapes (empty vectors, explicit zero counts, duplicate
// segments) that production code paths can produce.

// vectorFromBytes decodes fuzz input into a sparse feature vector: each byte
// pair is (feature id, count). Counts include explicit zeros so the fuzzers
// exercise degenerate entries that Total and Distance must tolerate.
func vectorFromBytes(data []byte) FeatureVector {
	v := FeatureVector{}
	for i := 0; i+1 < len(data); i += 2 {
		feature := "f" + string(rune('a'+int(data[i])%24))
		v[feature] += int(data[i+1]) % 32
	}
	return v
}

// segmentsFromBytes decodes fuzz input into a digest multiset drawn from a
// small pool, so overlapping and duplicated segments are common.
func segmentsFromBytes(data []byte) [][32]byte {
	segs := make([][32]byte, 0, len(data))
	for _, b := range data {
		var s [32]byte
		s[0] = b % 16
		s[1] = b % 3
		segs = append(segs, s)
	}
	return segs
}

func FuzzDistance(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 5, 1, 3}, []byte{0, 5, 1, 3})
	f.Add([]byte{0, 1}, []byte{10, 31, 11, 2})
	f.Add([]byte{0, 0, 1, 0}, []byte{2, 7})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a, b := vectorFromBytes(rawA), vectorFromBytes(rawB)
		d := Distance(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("Distance out of range: %v (a=%v b=%v)", d, a, b)
		}
		if rev := Distance(b, a); rev != d {
			t.Fatalf("Distance not symmetric: %v vs %v (a=%v b=%v)", d, rev, a, b)
		}
		if self := Distance(a, a); self != 0 {
			t.Fatalf("self-distance not zero: %v (a=%v)", self, a)
		}
		if self := Distance(b, b); self != 0 {
			t.Fatalf("self-distance not zero: %v (b=%v)", self, b)
		}
	})
}

func FuzzVectorTotal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 1, 3, 0, 5})
	f.Add([]byte{255, 31})
	f.Fuzz(func(t *testing.T, raw []byte) {
		v := vectorFromBytes(raw)
		total := v.Total()
		if total < 0 {
			t.Fatalf("negative total %d for %v", total, v)
		}
		sum := 0
		for _, n := range v {
			sum += n
		}
		if total != sum {
			t.Fatalf("Total = %d, independent sum = %d for %v", total, sum, v)
		}
		// Totals are what the blocking phase sorts on; merging two vectors
		// must add their masses exactly.
		merged := FeatureVector{}
		for k, n := range v {
			merged[k] = n
		}
		merged["fuzz:extra"] += 7
		if merged.Total() != total+7 {
			t.Fatalf("merged total %d != %d+7", merged.Total(), total)
		}
	})
}

func FuzzSegmentSimilarity(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 3})
	f.Add([]byte{1, 1, 1}, []byte{1})
	f.Add([]byte{9}, []byte{})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a, b := segmentsFromBytes(rawA), segmentsFromBytes(rawB)
		s := SegmentSimilarity(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("similarity out of range: %v", s)
		}
		if len(a) == 0 && s != 0 {
			t.Fatalf("empty query similarity = %v, want 0", s)
		}
		if self := SegmentSimilarity(a, a); len(a) > 0 && self != 1 {
			t.Fatalf("self-similarity = %v, want 1 (len %d)", self, len(a))
		}
		// Adding segments to the haystack can only help the query side.
		grown := append(append([][32]byte{}, b...), a...)
		if s2 := SegmentSimilarity(a, grown); len(a) > 0 && s2 != 1 {
			t.Fatalf("superset haystack similarity = %v, want 1", s2)
		}
	})
}
