package clonedetect

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"marketscope/internal/signing"
)

// buildCorpus creates a deterministic mixed corpus: original apps, code
// clones, signature clones and a fake — plus the tie cases the detectors
// must order deterministically. Every instance() vector has the same total,
// so all pairs collide in the blocking phase, and several entries share
// their download counts so the original-attribution heuristic sees ties too.
func buildCorpus() []*AppInstance {
	official := signing.NewDeveloper("official", 100)
	cloner := signing.NewDeveloper("cloner", 101)
	impostor := signing.NewDeveloper("impostor", 102)
	other := signing.NewDeveloper("other", 103)
	rival := signing.NewDeveloper("rival", 104)
	return []*AppInstance{
		instance("Google Play", "com.big.game", "Big Game", 8_000_000, official, "game"),
		instance("Tencent Myapp", "com.big.game", "Big Game", 2_000_000, official, "game"),
		instance("25PP", "com.big.game.free", "Big Game Free", 900, cloner, "game"),
		instance("PC Online", "com.big.game", "Big Game", 500, cloner, "game-mod"),
		instance("PC Online", "com.fake.game", "Big Game", 80, impostor, "fakegame"),
		instance("Baidu Market", "com.other.news", "Other News", 40_000, other, "news"),
		instance("Huawei Market", "com.other.weather", "Weather Now", 60_000, other, "weather"),
		// Download tie: three same-code listings whose downloads are all
		// equal, so original attribution must fall back to entry order.
		instance("Google Play", "com.tied.one", "Tied One", 5_000, other, "tied"),
		instance("Baidu Market", "com.tied.two", "Tied Two", 5_000, rival, "tied"),
		instance("25PP", "com.tied.three", "Tied Three", 5_000, impostor, "tied"),
		// Signature-cluster download tie: same package, two developers, equal
		// downloads.
		instance("Huawei Market", "com.tied.pkg", "Tied Pkg", 7_000, other, "tiedpkg"),
		instance("PC Online", "com.tied.pkg", "Tied Pkg", 7_000, rival, "tiedpkg-mod"),
	}
}

// shuffle returns a new slice with the corpus in a random (seeded) order.
func shuffle(apps []*AppInstance, seed int64) []*AppInstance {
	out := append([]*AppInstance(nil), apps...)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestDetectorsAreOrderInvariant checks that the output of every detector is
// a pure function of the corpus contents, not of the order in which listings
// were crawled or of the worker count the comparisons ran on — properties the
// real pipeline depends on because crawl order and goroutine scheduling are
// both nondeterministic. The corpus includes download and vector-total ties,
// so the detectors cannot rely on any input-order accident to break them.
func TestDetectorsAreOrderInvariant(t *testing.T) {
	base := buildCorpus()
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	refFakes := DetectFakes(base, DefaultFakeConfig())
	refSig := DetectSignatureClones(base)
	refCode := DetectCodeClonesWith(base, DefaultCodeConfig(), CloneOptions{Workers: 1})

	for seed := int64(1); seed <= 8; seed++ {
		perm := shuffle(base, seed)

		fakes := DetectFakes(perm, DefaultFakeConfig())
		if len(fakes.Fakes) != len(refFakes.Fakes) {
			t.Fatalf("seed %d: fake count changed with input order: %d vs %d",
				seed, len(fakes.Fakes), len(refFakes.Fakes))
		}
		for i := range fakes.Fakes {
			if fakes.Fakes[i] != refFakes.Fakes[i] {
				t.Fatalf("seed %d: fake %d differs: %+v vs %+v", seed, i, fakes.Fakes[i], refFakes.Fakes[i])
			}
		}

		sig := DetectSignatureClones(perm)
		if len(sig.Pairs) != len(refSig.Pairs) {
			t.Fatalf("seed %d: signature clone count changed: %d vs %d", seed, len(sig.Pairs), len(refSig.Pairs))
		}
		for i := range sig.Pairs {
			if sig.Pairs[i] != refSig.Pairs[i] {
				t.Fatalf("seed %d: signature pair %d differs", seed, i)
			}
		}
		if !reflect.DeepEqual(sig.Clusters, refSig.Clusters) {
			t.Fatalf("seed %d: signature clusters changed with input order", seed)
		}

		for _, workers := range workerCounts {
			code := DetectCodeClonesWith(perm, DefaultCodeConfig(), CloneOptions{Workers: workers})
			if len(code.Pairs) != len(refCode.Pairs) {
				t.Fatalf("seed %d workers %d: code clone count changed: %d vs %d",
					seed, workers, len(code.Pairs), len(refCode.Pairs))
			}
			for i := range code.Pairs {
				if code.Pairs[i] != refCode.Pairs[i] {
					t.Fatalf("seed %d workers %d: code pair %d differs: %+v vs %+v",
						seed, workers, i, code.Pairs[i], refCode.Pairs[i])
				}
			}
			if code.CandidatePairs != refCode.CandidatePairs {
				t.Fatalf("seed %d workers %d: CandidatePairs changed: %d vs %d",
					seed, workers, code.CandidatePairs, refCode.CandidatePairs)
			}
		}
	}
}

// TestTieOrderingIsDeterministic pins the tie-breaking contract directly: the
// tied-download clone cluster must attribute the same original at every
// worker count and in every input order.
func TestTieOrderingIsDeterministic(t *testing.T) {
	base := buildCorpus()
	ref := DetectCodeClonesWith(base, DefaultCodeConfig(), CloneOptions{Workers: 1})
	var tiedOriginals []Ref
	for _, p := range ref.Pairs {
		if p.Original.Package == "com.tied.one" || p.Original.Package == "com.tied.two" || p.Original.Package == "com.tied.three" {
			tiedOriginals = append(tiedOriginals, p.Original)
		}
	}
	if len(tiedOriginals) == 0 {
		t.Fatal("tied cluster produced no code-clone pairs; tie case not exercised")
	}
	for seed := int64(1); seed <= 4; seed++ {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			got := DetectCodeClonesWith(shuffle(base, seed), DefaultCodeConfig(), CloneOptions{Workers: workers})
			if !reflect.DeepEqual(got.Pairs, ref.Pairs) {
				t.Fatalf("seed %d workers %d: tied pairs reordered", seed, workers)
			}
		}
	}
}

// TestHeatmapMatchesPairs checks that the Figure 10 heatmap is exactly the
// aggregation of the detected pairs.
func TestHeatmapMatchesPairs(t *testing.T) {
	res := DetectCodeClones(buildCorpus(), DefaultCodeConfig())
	heat := res.SourceHeatmap()
	total := 0
	for _, row := range heat {
		for _, n := range row {
			total += n
		}
	}
	if total != len(res.Pairs) {
		t.Errorf("heatmap total %d != %d pairs", total, len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if heat[p.Original.Market][p.Clone.Market] == 0 {
			t.Errorf("pair %+v missing from heatmap", p)
		}
	}
}
