package clonedetect

import (
	"math/rand"
	"testing"

	"marketscope/internal/signing"
)

// buildCorpus creates a deterministic mixed corpus: original apps, one code
// clone, one signature clone and one fake.
func buildCorpus() []*AppInstance {
	official := signing.NewDeveloper("official", 100)
	cloner := signing.NewDeveloper("cloner", 101)
	impostor := signing.NewDeveloper("impostor", 102)
	other := signing.NewDeveloper("other", 103)
	return []*AppInstance{
		instance("Google Play", "com.big.game", "Big Game", 8_000_000, official, "game"),
		instance("Tencent Myapp", "com.big.game", "Big Game", 2_000_000, official, "game"),
		instance("25PP", "com.big.game.free", "Big Game Free", 900, cloner, "game"),
		instance("PC Online", "com.big.game", "Big Game", 500, cloner, "game-mod"),
		instance("PC Online", "com.fake.game", "Big Game", 80, impostor, "fakegame"),
		instance("Baidu Market", "com.other.news", "Other News", 40_000, other, "news"),
		instance("Huawei Market", "com.other.weather", "Weather Now", 60_000, other, "weather"),
	}
}

// shuffle returns a new slice with the corpus in a random (seeded) order.
func shuffle(apps []*AppInstance, seed int64) []*AppInstance {
	out := append([]*AppInstance(nil), apps...)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestDetectorsAreOrderInvariant checks that the output of every detector is
// a pure function of the corpus contents, not of the order in which listings
// were crawled — a property the real pipeline depends on because crawl order
// is nondeterministic.
func TestDetectorsAreOrderInvariant(t *testing.T) {
	base := buildCorpus()
	refFakes := DetectFakes(base, DefaultFakeConfig())
	refSig := DetectSignatureClones(base)
	refCode := DetectCodeClones(base, DefaultCodeConfig())

	for seed := int64(1); seed <= 8; seed++ {
		perm := shuffle(base, seed)

		fakes := DetectFakes(perm, DefaultFakeConfig())
		if len(fakes.Fakes) != len(refFakes.Fakes) {
			t.Fatalf("seed %d: fake count changed with input order: %d vs %d",
				seed, len(fakes.Fakes), len(refFakes.Fakes))
		}
		for i := range fakes.Fakes {
			if fakes.Fakes[i] != refFakes.Fakes[i] {
				t.Fatalf("seed %d: fake %d differs: %+v vs %+v", seed, i, fakes.Fakes[i], refFakes.Fakes[i])
			}
		}

		sig := DetectSignatureClones(perm)
		if len(sig.Pairs) != len(refSig.Pairs) {
			t.Fatalf("seed %d: signature clone count changed: %d vs %d", seed, len(sig.Pairs), len(refSig.Pairs))
		}
		for i := range sig.Pairs {
			if sig.Pairs[i] != refSig.Pairs[i] {
				t.Fatalf("seed %d: signature pair %d differs", seed, i)
			}
		}

		code := DetectCodeClones(perm, DefaultCodeConfig())
		if len(code.Pairs) != len(refCode.Pairs) {
			t.Fatalf("seed %d: code clone count changed: %d vs %d", seed, len(code.Pairs), len(refCode.Pairs))
		}
		for i := range code.Pairs {
			if code.Pairs[i].Original != refCode.Pairs[i].Original || code.Pairs[i].Clone != refCode.Pairs[i].Clone {
				t.Fatalf("seed %d: code pair %d differs: %+v vs %+v", seed, i, code.Pairs[i], refCode.Pairs[i])
			}
		}
	}
}

// TestHeatmapMatchesPairs checks that the Figure 10 heatmap is exactly the
// aggregation of the detected pairs.
func TestHeatmapMatchesPairs(t *testing.T) {
	res := DetectCodeClones(buildCorpus(), DefaultCodeConfig())
	heat := res.SourceHeatmap()
	total := 0
	for _, row := range heat {
		for _, n := range row {
			total += n
		}
	}
	if total != len(res.Pairs) {
		t.Errorf("heatmap total %d != %d pairs", total, len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if heat[p.Original.Market][p.Clone.Market] == 0 {
			t.Errorf("pair %+v missing from heatmap", p)
		}
	}
}
