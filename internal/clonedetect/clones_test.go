package clonedetect

import (
	"testing"

	"marketscope/internal/dex"
	"marketscope/internal/signing"
)

// instance builds an AppInstance with a synthetic code profile derived from
// the codeSeed: apps with the same codeSeed have identical code.
func instance(market, pkg, name string, downloads int64, dev *signing.Developer, codeSeed string) *AppInstance {
	calls := map[string]int{
		"android.app.Activity.onCreate":   2,
		"android.widget.TextView.setText": 3,
		"api.seed." + codeSeed + ".one":   4,
		"api.seed." + codeSeed + ".two":   5,
		"api.seed." + codeSeed + ".three": 1,
	}
	var methods []dex.Method
	for call, n := range calls {
		for i := 0; i < n; i++ {
			methods = append(methods, dex.Method{Name: "m", APICalls: []string{call, call + ".aux"}})
		}
	}
	code := &dex.File{Classes: []dex.Class{{Name: pkg + ".Main", Methods: methods}}}
	return &AppInstance{
		Market:    market,
		Package:   pkg,
		AppName:   name,
		Downloads: downloads,
		Developer: dev.Fingerprint(),
		Vector:    NewVector(code, nil),
		Segments:  code.CodeSegments(),
	}
}

func TestDetectSignatureClones(t *testing.T) {
	official := signing.NewDeveloper("official", 1)
	pirate := signing.NewDeveloper("pirate", 2)
	apps := []*AppInstance{
		instance("Google Play", "com.kugou.android", "Kugou Music", 5_000_000, official, "kugou"),
		instance("Tencent Myapp", "com.kugou.android", "Kugou Music", 3_000_000, official, "kugou"),
		instance("25PP", "com.kugou.android", "Kugou Music", 2_000, pirate, "kugou-mod"),
		instance("Baidu Market", "com.other.app", "Other", 100, official, "other"),
	}
	res := DetectSignatureClones(apps)
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly 1", res.Pairs)
	}
	p := res.Pairs[0]
	if p.Clone.Market != "25PP" || p.Original.Market != "Google Play" {
		t.Errorf("attribution wrong: %+v", p)
	}
	if p.Kind != "signature" {
		t.Errorf("kind = %q", p.Kind)
	}
	byMarket := res.CloneByMarket()
	if byMarket["25PP"] != 1 || byMarket["Google Play"] != 0 {
		t.Errorf("CloneByMarket = %v", byMarket)
	}
	// Cluster stats: com.kugou.android has 2 developers, com.other.app 1.
	foundKugou := false
	for _, c := range res.Clusters {
		if c.Package == "com.kugou.android" {
			foundKugou = true
			if c.Developers != 2 || c.Instances != 3 {
				t.Errorf("cluster = %+v", c)
			}
		}
	}
	if !foundKugou {
		t.Error("kugou cluster missing")
	}
}

func TestDetectSignatureClonesNoFalsePositives(t *testing.T) {
	dev := signing.NewDeveloper("solo", 3)
	apps := []*AppInstance{
		instance("Google Play", "com.solo.app", "Solo", 1000, dev, "solo"),
		instance("Huawei Market", "com.solo.app", "Solo", 900, dev, "solo"),
	}
	res := DetectSignatureClones(apps)
	if len(res.Pairs) != 0 {
		t.Errorf("same-developer multi-market app flagged as clone: %+v", res.Pairs)
	}
}

func TestDetectCodeClones(t *testing.T) {
	official := signing.NewDeveloper("official", 4)
	cloner := signing.NewDeveloper("cloner", 5)
	other := signing.NewDeveloper("other", 6)
	apps := []*AppInstance{
		// Original popular app.
		instance("Google Play", "com.game.legit", "Legit Game", 10_000_000, official, "game"),
		// Repackaged copy: identical code, new package name, new signer.
		instance("25PP", "com.game.cracked", "Legit Game Free", 500, cloner, "game"),
		// Unrelated app.
		instance("Baidu Market", "com.news.reader", "News Reader", 20_000, other, "news"),
	}
	res := DetectCodeClones(apps, DefaultCodeConfig())
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly 1", res.Pairs)
	}
	p := res.Pairs[0]
	if p.Original.Package != "com.game.legit" || p.Clone.Package != "com.game.cracked" {
		t.Errorf("attribution wrong: %+v", p)
	}
	if p.Kind != "code" || p.SegmentShare < 0.85 {
		t.Errorf("pair metadata wrong: %+v", p)
	}
	heat := res.SourceHeatmap()
	if heat["Google Play"]["25PP"] != 1 {
		t.Errorf("heatmap = %v", heat)
	}
	if res.ComparedPairs == 0 || res.CandidatePairs == 0 {
		t.Error("phase statistics not recorded")
	}
}

func TestDetectCodeClonesIgnoresSameDeveloperFamilies(t *testing.T) {
	dev := signing.NewDeveloper("family", 7)
	apps := []*AppInstance{
		instance("Google Play", "com.family.lite", "Family Lite", 1000, dev, "family"),
		instance("Google Play", "com.family.pro", "Family Pro", 2000, dev, "family"),
	}
	res := DetectCodeClones(apps, DefaultCodeConfig())
	if len(res.Pairs) != 0 {
		t.Errorf("same-developer app family flagged: %+v", res.Pairs)
	}
}

func TestDetectCodeClonesRespectsThreshold(t *testing.T) {
	a := signing.NewDeveloper("a", 8)
	b := signing.NewDeveloper("b", 9)
	apps := []*AppInstance{
		instance("Google Play", "com.app.one", "One", 1000, a, "alpha"),
		instance("360 Market", "com.app.two", "Two", 10, b, "beta"),
	}
	res := DetectCodeClones(apps, DefaultCodeConfig())
	if len(res.Pairs) != 0 {
		t.Errorf("dissimilar apps flagged as clones: %+v", res.Pairs)
	}
	// With an absurdly loose threshold the pair appears (segment share of
	// the common onCreate/setText methods is still below 0.85, so relax
	// both).
	loose := CodeConfig{DistanceThreshold: 0.99, SegmentThreshold: 0.01, MinVectorTotal: 1}
	res = DetectCodeClones(apps, loose)
	if len(res.Pairs) != 1 {
		t.Errorf("loose thresholds should flag the pair, got %+v", res.Pairs)
	}
}

func TestDetectCodeClonesSkipsTinyApps(t *testing.T) {
	a := signing.NewDeveloper("a", 10)
	b := signing.NewDeveloper("b", 11)
	tiny1 := &AppInstance{Market: "Google Play", Package: "com.tiny.one", Developer: a.Fingerprint(),
		Vector: FeatureVector{"api:x": 1}}
	tiny2 := &AppInstance{Market: "25PP", Package: "com.tiny.two", Developer: b.Fingerprint(),
		Vector: FeatureVector{"api:x": 1}}
	res := DetectCodeClones([]*AppInstance{tiny1, tiny2}, DefaultCodeConfig())
	if len(res.Pairs) != 0 {
		t.Errorf("near-empty apps should be skipped: %+v", res.Pairs)
	}
}

func TestDetectFakes(t *testing.T) {
	official := signing.NewDeveloper("tencent", 20)
	impostor := signing.NewDeveloper("impostor", 21)
	legit := signing.NewDeveloper("legit", 22)
	apps := []*AppInstance{
		// Official WeChat with 500M installs, listed in two markets.
		instance("Google Play", "com.tencent.mm", "WeChat", 500_000_000, official, "wechat"),
		instance("Tencent Myapp", "com.tencent.mm", "WeChat", 400_000_000, official, "wechat"),
		// Fake WeChat: same name, different package, unpopular, different dev.
		instance("PC Online", "com.fake.wechat", "WeChat", 300, impostor, "fakewechat"),
		// Same developer's platform variant must not be flagged.
		instance("Google Play", "com.tencent.mm.pad", "WeChat", 800, official, "wechatpad"),
		// Common-name cluster must be ignored entirely.
		instance("Google Play", "com.tools.flash1", "Flashlight", 2_000_000, legit, "flash1"),
		instance("25PP", "com.cheap.flash2", "Flashlight", 50, impostor, "flash2"),
	}
	res := DetectFakes(apps, DefaultFakeConfig())
	if len(res.Fakes) != 1 {
		t.Fatalf("fakes = %+v, want exactly 1", res.Fakes)
	}
	f := res.Fakes[0]
	if f.Fake.Package != "com.fake.wechat" || f.Fake.Market != "PC Online" {
		t.Errorf("fake attribution wrong: %+v", f)
	}
	if f.Official.Package != "com.tencent.mm" {
		t.Errorf("official attribution wrong: %+v", f)
	}
	byMarket := res.FakeByMarket()
	if byMarket["PC Online"] != 1 {
		t.Errorf("FakeByMarket = %v", byMarket)
	}
	// Name clusters should include both wechat and flashlight clusters.
	if len(res.Clusters) < 2 {
		t.Errorf("clusters = %+v", res.Clusters)
	}
}

func TestDetectFakesLargeClustersExcluded(t *testing.T) {
	official := signing.NewDeveloper("official", 30)
	apps := []*AppInstance{
		instance("Google Play", "com.popular.app", "Super Widget", 5_000_000, official, "w0"),
	}
	// Ten unpopular same-name apps -> cluster too large for the heuristic.
	for i := 0; i < 10; i++ {
		dev := signing.NewDeveloper("x", uint64(40+i))
		apps = append(apps, instance("25PP", "com.widget.v"+string(rune('a'+i)), "Super Widget", 10, dev, "w"+string(rune('a'+i))))
	}
	res := DetectFakes(apps, DefaultFakeConfig())
	if len(res.Fakes) != 0 {
		t.Errorf("oversized cluster should be excluded, got %d fakes", len(res.Fakes))
	}
}

func TestDetectFakesConfigDefaults(t *testing.T) {
	official := signing.NewDeveloper("o", 50)
	impostor := signing.NewDeveloper("i", 51)
	apps := []*AppInstance{
		instance("Google Play", "com.real.app", "Realapp", 2_000_000, official, "real"),
		instance("PC Online", "com.fake.app", "Realapp", 100, impostor, "fake"),
	}
	// Zero-value config falls back to defaults.
	res := DetectFakes(apps, FakeConfig{})
	if len(res.Fakes) != 1 {
		t.Errorf("default config not applied: %+v", res.Fakes)
	}
}

func BenchmarkDetectCodeClones(b *testing.B) {
	var apps []*AppInstance
	for i := 0; i < 200; i++ {
		dev := signing.NewDeveloper("d", uint64(i))
		seed := string(rune('a' + i%40))
		apps = append(apps, instance("Market", "com.bench.app"+string(rune('a'+i%26))+string(rune('a'+i/26)),
			"App", int64(i), dev, seed))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectCodeClones(apps, DefaultCodeConfig())
	}
}

func BenchmarkDetectSignatureClones(b *testing.B) {
	var apps []*AppInstance
	for i := 0; i < 500; i++ {
		dev := signing.NewDeveloper("d", uint64(i%100))
		apps = append(apps, instance("Market", "com.bench.pkg"+string(rune('a'+i%50)), "App", int64(i), dev, "s"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectSignatureClones(apps)
	}
}
