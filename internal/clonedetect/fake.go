package clonedetect

import (
	"sort"

	"marketscope/internal/appmeta"
)

// FakeConfig tunes the fake-app heuristic of Section 6.1. The defaults are
// the paper's: clusters of fewer than 5 distinct packages built on uncommon
// names, in which an official app with more than 1 M installs coexists with
// unpopular (≤ 1,000 installs) apps from other developers.
type FakeConfig struct {
	// OfficialMinDownloads is the install threshold above which a cluster
	// member is considered the official app.
	OfficialMinDownloads int64
	// FakeMaxDownloads is the install threshold below which an imitating
	// member is considered unpopular enough to be flagged.
	FakeMaxDownloads int64
	// MaxClusterPackages is the maximum number of distinct packages a
	// cluster may contain and still be considered; very large clusters are
	// generic names rather than impersonation targets.
	MaxClusterPackages int
}

// DefaultFakeConfig returns the paper's thresholds.
func DefaultFakeConfig() FakeConfig {
	return FakeConfig{
		OfficialMinDownloads: 1_000_000,
		FakeMaxDownloads:     1_000,
		MaxClusterPackages:   5,
	}
}

// FakeApp is one flagged fake app together with the official app it
// imitates.
type FakeApp struct {
	Fake     Ref
	Official Ref
	// Name is the shared (normalized) app name.
	Name string
}

// NameCluster is a group of app instances sharing a normalized app name but
// using at least two distinct package names. Figure 8(b) plots the
// distribution of these cluster sizes.
type NameCluster struct {
	Name string
	// Packages is the number of distinct package names in the cluster.
	Packages int
	// Instances is the total number of listings in the cluster.
	Instances int
}

// FakeResult is the output of the fake-app detector.
type FakeResult struct {
	Fakes []FakeApp
	// Clusters holds every multi-package name cluster (before the
	// popularity heuristic), used for Figure 8(b).
	Clusters []NameCluster
}

// FakeByMarket returns the number of fake apps flagged per market.
func (r *FakeResult) FakeByMarket() map[string]int {
	out := map[string]int{}
	for _, f := range r.Fakes {
		out[f.Fake.Market]++
	}
	return out
}

// DetectFakes clusters the corpus by normalized app name and applies the
// popularity heuristic. Instances of the same package in different markets
// are treated as one app (identified by package name), matching the paper's
// de-duplication by package name.
func DetectFakes(apps []*AppInstance, cfg FakeConfig) *FakeResult {
	if cfg.OfficialMinDownloads <= 0 || cfg.FakeMaxDownloads <= 0 || cfg.MaxClusterPackages <= 0 {
		cfg = DefaultFakeConfig()
	}
	ordered := sortInstances(apps)

	type pkgInfo struct {
		pkg          string
		name         string
		maxDownloads int64
		developers   map[string]bool
		instances    []*AppInstance
	}
	// Group listings by package: the same package listed in many markets is
	// one app.
	byPackage := map[string]*pkgInfo{}
	for _, a := range ordered {
		norm := appmeta.NormalizeAppName(a.AppName)
		if norm == "" {
			continue
		}
		pi, ok := byPackage[a.Package]
		if !ok {
			pi = &pkgInfo{pkg: a.Package, name: norm, developers: map[string]bool{}}
			byPackage[a.Package] = pi
		}
		if a.Downloads > pi.maxDownloads {
			pi.maxDownloads = a.Downloads
		}
		pi.developers[a.Developer.String()] = true
		pi.instances = append(pi.instances, a)
	}

	// Cluster packages by normalized name.
	clusters := map[string][]*pkgInfo{}
	for _, pi := range byPackage {
		clusters[pi.name] = append(clusters[pi.name], pi)
	}

	result := &FakeResult{}
	names := make([]string, 0, len(clusters))
	for name := range clusters {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		members := clusters[name]
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i].pkg < members[j].pkg })
		instances := 0
		for _, m := range members {
			instances += len(m.instances)
		}
		result.Clusters = append(result.Clusters, NameCluster{
			Name: name, Packages: len(members), Instances: instances,
		})

		// Apply the heuristic: skip generic names and oversized clusters.
		if appmeta.IsCommonAppName(name) {
			continue
		}
		if len(members) > cfg.MaxClusterPackages {
			continue
		}
		// Find the official member.
		var official *pkgInfo
		for _, m := range members {
			if m.maxDownloads >= cfg.OfficialMinDownloads &&
				(official == nil || m.maxDownloads > official.maxDownloads) {
				official = m
			}
		}
		if official == nil {
			continue
		}
		officialDev := singleDeveloper(official.developers)
		for _, m := range members {
			if m == official {
				continue
			}
			if m.maxDownloads > cfg.FakeMaxDownloads {
				continue
			}
			// A developer releasing the same-named app under several
			// package names (e.g. per-platform builds) is legitimate.
			if officialDev != "" && singleDeveloper(m.developers) == officialDev {
				continue
			}
			for _, inst := range m.instances {
				result.Fakes = append(result.Fakes, FakeApp{
					Fake:     inst.Ref(),
					Official: official.instances[0].Ref(),
					Name:     name,
				})
			}
		}
	}
	return result
}

// singleDeveloper returns the developer fingerprint if all instances of the
// package share one, or "" if the package has mixed signers.
func singleDeveloper(devs map[string]bool) string {
	if len(devs) != 1 {
		return ""
	}
	for d := range devs {
		return d
	}
	return ""
}
