package clonedetect

import (
	"sort"
)

// ClonePair is one detected clone relationship. Original is the app the
// heuristic attributes authorship to (the member with the most downloads,
// Section 6.2), Clone the repackaged copy.
type ClonePair struct {
	Original Ref
	Clone    Ref
	// Kind is "signature" or "code".
	Kind string
	// Distance is the vector distance for code-based clones (0 for
	// signature-based ones, where the package name already matches).
	Distance float64
	// SegmentShare is the fraction of shared code segments measured in the
	// second phase (code-based clones only).
	SegmentShare float64
}

// PackageCluster summarizes one package name observed with multiple
// developer signatures (Figure 8(c)).
type PackageCluster struct {
	Package    string
	Developers int
	Instances  int
}

// SignatureResult is the output of the signature-based clone detector.
type SignatureResult struct {
	Pairs []ClonePair
	// Clusters lists every package observed in the corpus with the number
	// of distinct developers that signed it.
	Clusters []PackageCluster
}

// CloneByMarket returns, per market, the number of listings flagged as
// signature-based clones.
func (r *SignatureResult) CloneByMarket() map[string]int {
	out := map[string]int{}
	seen := map[Ref]bool{}
	for _, p := range r.Pairs {
		if !seen[p.Clone] {
			seen[p.Clone] = true
			out[p.Clone.Market]++
		}
	}
	return out
}

// DetectSignatureClones groups the corpus by package name and flags every
// listing whose developer signature differs from the original's. The
// original is the listing with the most downloads among the signatures in
// the cluster, following the paper's attribution heuristic.
func DetectSignatureClones(apps []*AppInstance) *SignatureResult {
	ordered := sortInstances(apps)
	byPackage := map[string][]*AppInstance{}
	for _, a := range ordered {
		byPackage[a.Package] = append(byPackage[a.Package], a)
	}
	pkgs := make([]string, 0, len(byPackage))
	for p := range byPackage {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	result := &SignatureResult{}
	for _, pkg := range pkgs {
		group := byPackage[pkg]
		devs := map[string]bool{}
		for _, a := range group {
			devs[a.Developer.String()] = true
		}
		result.Clusters = append(result.Clusters, PackageCluster{
			Package: pkg, Developers: len(devs), Instances: len(group),
		})
		if len(devs) < 2 {
			continue
		}
		// Attribute the original to the developer of the most-downloaded
		// listing.
		var original *AppInstance
		for _, a := range group {
			if original == nil || a.Downloads > original.Downloads {
				original = a
			}
		}
		for _, a := range group {
			if a.Developer == original.Developer {
				continue
			}
			result.Pairs = append(result.Pairs, ClonePair{
				Original: original.Ref(),
				Clone:    a.Ref(),
				Kind:     "signature",
			})
		}
	}
	return result
}

// CodeConfig tunes the two-phase code-based clone detector.
type CodeConfig struct {
	// DistanceThreshold is the maximum normalized Manhattan distance for a
	// candidate pair. The paper experimentally selected 0.05 (95%
	// similarity).
	DistanceThreshold float64
	// SegmentThreshold is the minimum fraction of shared code segments for
	// a candidate to be confirmed as a clone (0.85 in the paper).
	SegmentThreshold float64
	// MinVectorTotal skips apps whose (library-filtered) code is too small
	// to compare meaningfully; near-empty apps would otherwise all look
	// alike.
	MinVectorTotal int
}

// DefaultCodeConfig returns the paper's thresholds.
func DefaultCodeConfig() CodeConfig {
	return CodeConfig{DistanceThreshold: 0.05, SegmentThreshold: 0.85, MinVectorTotal: 10}
}

// CodeResult is the output of the code-based clone detector.
type CodeResult struct {
	Pairs []ClonePair
	// CandidatePairs is the number of pairs that passed the vector phase
	// (useful to judge how much work the second phase saved).
	CandidatePairs int
	// ComparedPairs is the number of vector comparisons performed after
	// blocking.
	ComparedPairs int
}

// CloneByMarket returns, per market, the number of distinct listings flagged
// as code-based clones.
func (r *CodeResult) CloneByMarket() map[string]int {
	out := map[string]int{}
	seen := map[Ref]bool{}
	for _, p := range r.Pairs {
		if !seen[p.Clone] {
			seen[p.Clone] = true
			out[p.Clone.Market]++
		}
	}
	return out
}

// SourceHeatmap returns the clone-source matrix of Figure 10:
// heatmap[source][destination] counts clones published in `destination`
// whose original was published in `source`. Both intra-market and
// inter-market clones are counted.
func (r *CodeResult) SourceHeatmap() map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, p := range r.Pairs {
		row, ok := out[p.Original.Market]
		if !ok {
			row = map[string]int{}
			out[p.Original.Market] = row
		}
		row[p.Clone.Market]++
	}
	return out
}

// CloneOptions schedules the code-clone detector: how many workers run the
// candidate comparisons and how wide the candidate-index probe is. The zero
// value runs the indexed detector with one worker per CPU.
type CloneOptions struct {
	// Workers sizes the comparison pool. 0 (or negative) means one worker
	// per CPU; values >= 2 run the indexed detector on that many workers.
	// Workers == 1 selects the serial oracle: the pre-index sort-by-total
	// sweep kept verbatim, whose pairs every other configuration reproduces
	// byte for byte (only ComparedPairs differs — the oracle performs the
	// comparisons the index prunes away).
	Workers int
	// IndexTopK is the minimum number of dominant features each app probes
	// in the candidate index. The probe set grows automatically until it
	// covers more than DistanceThreshold of the app's vector mass — the
	// condition that makes the index lossless (see DESIGN.md) — so raising
	// IndexTopK widens the candidate set but never changes the result.
	// 0 means DefaultIndexTopK.
	IndexTopK int
}

// DefaultIndexTopK is the default probe width of the candidate index.
const DefaultIndexTopK = 4

// cloneEntry is one app admitted to the code-clone comparison, with its
// vector total cached for blocking.
type cloneEntry struct {
	app   *AppInstance
	total int
}

// buildCloneEntries filters out too-small apps and orders the corpus by
// vector total (ties broken by market then package), the order both the
// serial sweep and the candidate index share. Starting from sortInstances
// makes the result input-order invariant.
func buildCloneEntries(apps []*AppInstance, cfg CodeConfig) []cloneEntry {
	entries := make([]cloneEntry, 0, len(apps))
	for _, a := range sortInstances(apps) {
		t := a.Vector.Total()
		if t < cfg.MinVectorTotal {
			continue
		}
		entries = append(entries, cloneEntry{app: a, total: t})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].total != entries[j].total {
			return entries[i].total < entries[j].total
		}
		if entries[i].app.Market != entries[j].app.Market {
			return entries[i].app.Market < entries[j].app.Market
		}
		return entries[i].app.Package < entries[j].app.Package
	})
	return entries
}

// compareCandidate runs the phase-1 vector comparison and phase-2 segment
// confirmation for one candidate pair, recording the counters and any
// confirmed clone into res. a must precede b in entry order; both detector
// paths call this with the same (a, b) sequence restricted to their candidate
// sets, which is what keeps their outputs identical.
func compareCandidate(a, b cloneEntry, cfg CodeConfig, res *CodeResult) {
	if a.app.Package == b.app.Package {
		return
	}
	if a.app.Developer == b.app.Developer {
		return
	}
	res.ComparedPairs++
	d := Distance(a.app.Vector, b.app.Vector)
	if d > cfg.DistanceThreshold {
		return
	}
	res.CandidatePairs++
	// Phase 2: code segment comparison from the perspective of the
	// smaller app.
	share := SegmentSimilarity(a.app.Segments, b.app.Segments)
	if s2 := SegmentSimilarity(b.app.Segments, a.app.Segments); s2 < share {
		share = s2
	}
	if share < cfg.SegmentThreshold {
		return
	}
	original, clone := a.app, b.app
	if clone.Downloads > original.Downloads {
		original, clone = clone, original
	}
	res.Pairs = append(res.Pairs, ClonePair{
		Original:     original.Ref(),
		Clone:        clone.Ref(),
		Kind:         "code",
		Distance:     d,
		SegmentShare: share,
	})
}

// DetectCodeClones runs the two-phase WuKong detection over the corpus with
// the default scheduling: the candidate-indexed detector on one comparison
// worker per CPU. DetectCodeClonesWith exposes the scheduling knobs,
// including the serial oracle.
func DetectCodeClones(apps []*AppInstance, cfg CodeConfig) *CodeResult {
	return DetectCodeClonesWith(apps, cfg, CloneOptions{})
}

// DetectCodeClonesWith runs the two-phase WuKong detection over the corpus.
//
// Phase 1 compares API-call count vectors with the normalized Manhattan
// distance. To avoid the full O(n²) comparison, candidates are pruned at two
// levels: an inverted index over each app's dominant features (two apps
// within the distance threshold must share at least one of the smaller app's
// dominant features, see DESIGN.md) and the total-difference bound (a pair
// whose totals differ by more than threshold/(2-threshold) of their sum
// cannot be within the threshold). Surviving comparisons fan out across
// opts.Workers; with Workers == 1 the pre-index sort-by-total sweep runs
// serially instead, as the oracle the equivalence tests compare against.
//
// Phase 2 confirms candidates on the same pool by requiring that at least
// SegmentThreshold of the smaller app's code segments appear in the other
// app.
//
// Only pairs with different package names AND different developers are
// reported: same-package different-developer pairs are signature clones, and
// same-developer similar apps are legitimate app families.
//
// The output is deterministic: for a fixed corpus and config, every worker
// count yields the same pairs in the same order (sorted by the smaller
// entry's position, then the larger's), regardless of input order.
func DetectCodeClonesWith(apps []*AppInstance, cfg CodeConfig, opts CloneOptions) *CodeResult {
	if cfg.DistanceThreshold <= 0 {
		cfg = DefaultCodeConfig()
	}
	entries := buildCloneEntries(apps, cfg)
	if opts.Workers == 1 {
		return detectCodeClonesSerial(entries, cfg)
	}
	return detectCodeClonesIndexed(entries, cfg, opts)
}

// detectCodeClonesSerial is the pre-index detector kept verbatim: a serial
// sweep over the total-sorted corpus comparing every pair the blocking bound
// admits. It is the oracle the indexed detector is tested against.
func detectCodeClonesSerial(entries []cloneEntry, cfg CodeConfig) *CodeResult {
	result := &CodeResult{}
	for i := 0; i < len(entries); i++ {
		a := entries[i]
		for j := i + 1; j < len(entries); j++ {
			b := entries[j]
			// Blocking: |ta-tb|/(ta+tb) is a lower bound on the distance,
			// so once it exceeds the threshold no later entry can match.
			if float64(b.total-a.total)/float64(a.total+b.total) > cfg.DistanceThreshold {
				break
			}
			compareCandidate(a, b, cfg, result)
		}
	}
	return result
}
