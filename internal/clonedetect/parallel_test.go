package clonedetect

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"marketscope/internal/signing"
)

// randomCorpus generates a seeded corpus of code families: apps within one
// family share (almost) the same feature vector and code segments, so
// different-developer members become code-clone pairs. The generator bakes in
// the tie cases the detector must order deterministically — equal downloads,
// equal vector totals across families — plus tiny and empty vectors.
func randomCorpus(seed int64, n int) []*AppInstance {
	r := rand.New(rand.NewSource(seed))
	markets := []string{"Google Play", "Baidu Market", "25PP", "Huawei Market", "PC Online"}

	// Family vectors: deterministic per family id, with totals drawn from a
	// tiny set so totals collide across families (the blocking tie case).
	familyVector := func(fam int) FeatureVector {
		fr := rand.New(rand.NewSource(int64(fam) * 7919))
		v := FeatureVector{}
		// Common boilerplate everyone shares.
		v["api:android.app.Activity.onCreate"] = 2
		v["api:android.widget.TextView.setText"] = 3
		features := 4 + fr.Intn(5)
		for f := 0; f < features; f++ {
			v[fmt.Sprintf("api:fam%d.call%d", fam, f)] = 3 + fr.Intn(12)
		}
		return v
	}
	familySegments := func(fam int) [][32]byte {
		segs := make([][32]byte, 12)
		for k := range segs {
			segs[k][0] = byte(fam)
			segs[k][1] = byte(fam >> 8)
			segs[k][2] = byte(k)
		}
		return segs
	}

	apps := make([]*AppInstance, 0, n)
	for i := 0; i < n; i++ {
		fam := r.Intn(n / 4)
		dev := signing.NewDeveloper(fmt.Sprintf("dev%d", r.Intn(n/3)), uint64(1000+r.Intn(n/3)))
		v := FeatureVector{}
		for k, c := range familyVector(fam) {
			v[k] = c
		}
		segs := familySegments(fam)
		switch r.Intn(10) {
		case 0:
			// Small perturbation: still within the distance threshold of the
			// family, missing one segment (still above 0.85 of 12).
			v[fmt.Sprintf("api:fam%d.call0", fam)]++
			segs = segs[1:]
		case 1:
			// Tiny app below MinVectorTotal.
			v = FeatureVector{"api:tiny": 1 + r.Intn(3)}
			segs = segs[:1]
		case 2:
			// Degenerate: empty vector, no segments.
			v = FeatureVector{}
			segs = nil
		}
		// Downloads from a tiny set so the original-attribution heuristic
		// regularly sees ties.
		downloads := int64(r.Intn(5)) * 1000
		apps = append(apps, &AppInstance{
			Market:    markets[r.Intn(len(markets))],
			Package:   fmt.Sprintf("com.fam%d.app%d", fam, i),
			AppName:   fmt.Sprintf("App %d", fam),
			Downloads: downloads,
			Developer: dev.Fingerprint(),
			Vector:    v,
			Segments:  segs,
		})
	}
	return apps
}

// assertSameCodeResult checks that got reproduces the oracle element by
// element: pairs (all fields), candidate counts, the per-market clone counts
// and the source heatmap. ComparedPairs is exempt — it measures how much work
// each path performed, and pruning less work is the indexed path's purpose.
func assertSameCodeResult(t *testing.T, label string, oracle, got *CodeResult) {
	t.Helper()
	if len(got.Pairs) != len(oracle.Pairs) {
		t.Fatalf("%s: %d pairs, oracle found %d", label, len(got.Pairs), len(oracle.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != oracle.Pairs[i] {
			t.Fatalf("%s: pair %d = %+v, oracle %+v", label, i, got.Pairs[i], oracle.Pairs[i])
		}
	}
	if got.CandidatePairs != oracle.CandidatePairs {
		t.Errorf("%s: CandidatePairs = %d, oracle %d", label, got.CandidatePairs, oracle.CandidatePairs)
	}
	if got.ComparedPairs > oracle.ComparedPairs {
		t.Errorf("%s: ComparedPairs = %d exceeds the oracle's %d", label, got.ComparedPairs, oracle.ComparedPairs)
	}
	if !reflect.DeepEqual(got.CloneByMarket(), oracle.CloneByMarket()) {
		t.Errorf("%s: CloneByMarket diverged: %v vs %v", label, got.CloneByMarket(), oracle.CloneByMarket())
	}
	if !reflect.DeepEqual(got.SourceHeatmap(), oracle.SourceHeatmap()) {
		t.Errorf("%s: SourceHeatmap diverged", label)
	}
}

// TestIndexedDetectorMatchesSerialOracle runs the indexed detector across
// worker counts and probe widths over seeded random corpora and demands the
// exact output of the Workers: 1 serial sweep, including under configurations
// that exercise the degenerate index paths (zero MinVectorTotal admitting
// empty vectors, thresholds close to and above 1).
func TestIndexedDetectorMatchesSerialOracle(t *testing.T) {
	configs := []struct {
		name string
		cfg  CodeConfig
	}{
		{"default", DefaultCodeConfig()},
		{"loose", CodeConfig{DistanceThreshold: 0.30, SegmentThreshold: 0.50, MinVectorTotal: 0}},
		{"degenerate", CodeConfig{DistanceThreshold: 0.99, SegmentThreshold: 0.01, MinVectorTotal: 0}},
		{"over-one", CodeConfig{DistanceThreshold: 1.5, SegmentThreshold: 0.5, MinVectorTotal: 0}},
	}
	for seed := int64(1); seed <= 3; seed++ {
		apps := randomCorpus(seed, 160)
		for _, tc := range configs {
			oracle := DetectCodeClonesWith(apps, tc.cfg, CloneOptions{Workers: 1})
			if tc.name == "default" && len(oracle.Pairs) == 0 {
				t.Fatalf("seed %d: corpus produced no clone pairs; the equivalence check is vacuous", seed)
			}
			for _, workers := range []int{0, 2, 3, runtime.NumCPU()} {
				for _, topK := range []int{0, 1, 64} {
					got := DetectCodeClonesWith(apps, tc.cfg, CloneOptions{Workers: workers, IndexTopK: topK})
					label := fmt.Sprintf("seed %d cfg %s workers %d topK %d", seed, tc.name, workers, topK)
					assertSameCodeResult(t, label, oracle, got)
				}
			}
		}
	}
}

// TestIndexedDetectorPrunesComparisons pins the point of the index: on a
// corpus of distinct code families with colliding vector totals, the indexed
// path performs strictly fewer vector comparisons than the pre-index
// blocking while producing the same clones.
func TestIndexedDetectorPrunesComparisons(t *testing.T) {
	apps := randomCorpus(42, 200)
	cfg := DefaultCodeConfig()
	oracle := DetectCodeClonesWith(apps, cfg, CloneOptions{Workers: 1})
	indexed := DetectCodeClonesWith(apps, cfg, CloneOptions{})
	if indexed.ComparedPairs >= oracle.ComparedPairs {
		t.Errorf("index did not prune: %d comparisons vs %d pre-index", indexed.ComparedPairs, oracle.ComparedPairs)
	}
	assertSameCodeResult(t, "pruning run", oracle, indexed)
}

// TestConcurrentDetectCodeClones exercises concurrent detector runs over a
// shared corpus — the index, the scratch pool and the worker fan-out must be
// self-contained per call. Run under -race in CI.
func TestConcurrentDetectCodeClones(t *testing.T) {
	apps := randomCorpus(7, 150)
	cfg := DefaultCodeConfig()
	oracle := DetectCodeClonesWith(apps, cfg, CloneOptions{Workers: 1})

	const callers = 4
	results := make([]*CodeResult, callers)
	var wg sync.WaitGroup
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k] = DetectCodeClonesWith(apps, cfg, CloneOptions{Workers: 2 + k%2})
		}(k)
	}
	wg.Wait()
	for k, res := range results {
		assertSameCodeResult(t, fmt.Sprintf("concurrent caller %d", k), oracle, res)
	}
}
