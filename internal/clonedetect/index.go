package clonedetect

import (
	"sort"
	"sync"

	"marketscope/internal/pipeline"
)

// This file implements the indexed, parallel path of the code-clone detector.
//
// Candidates are pruned at two levels before any vector comparison:
//
//  1. An inverted index maps every feature to the (entry-order sorted) list
//     of entries whose vector contains it. Each entry probes the index with
//     its dominant features only. The probe is lossless: for a pair (A, B)
//     with Total(A) <= Total(B) and Distance(A, B) <= t, the shared mass
//     sum_f min(A_f, B_f) = (TA+TB - sum_f|A_f-B_f|)/2 >= (TA+TB)(1-t)/2
//     >= TA(1-t). If A's probed features cover mass S > t*TA, the shared
//     mass outside them is at most TA-S < TA(1-t), so B must have a nonzero
//     count on at least one probed feature and appears in its posting list.
//
//  2. The total-difference window inherited from the serial sweep:
//     |TA-TB|/(TA+TB) lower-bounds the distance, so posting lists are only
//     scanned inside the window of admissible totals.
//
// Every surviving comparison is handed to the pipeline worker pool, with the
// results written into a per-entry slot and flattened in entry order, so the
// output is identical at every worker count.

// candidateIndex is the two-level pruning structure. It is built once per
// detection run and only read afterwards, so concurrent probes need no
// locking.
type candidateIndex struct {
	entries []cloneEntry
	// postings maps a feature to the entries whose vector has a positive
	// count for it, in ascending entry order.
	postings map[string][]int32
	cfg      CodeConfig
	topK     int
}

func buildCandidateIndex(entries []cloneEntry, cfg CodeConfig, topK int) *candidateIndex {
	postings := map[string][]int32{}
	for i, e := range entries {
		for f, n := range e.app.Vector {
			if n > 0 {
				postings[f] = append(postings[f], int32(i))
			}
		}
	}
	return &candidateIndex{entries: entries, postings: postings, cfg: cfg, topK: topK}
}

// windowEnd returns the largest index j such that entries[i..j] are all
// within the total-difference bound of entries[i] — exactly the span the
// serial sweep covers before its break. Totals are sorted ascending, so the
// bound is monotone and binary-searchable. (For a zero-total entry the bound
// is NaN against other zero-total entries, which the serial sweep does not
// break on; the search preserves that by only stopping on a strict
// exceedance.)
func (ci *candidateIndex) windowEnd(i int) int {
	ti := ci.entries[i].total
	span := sort.Search(len(ci.entries)-i-1, func(k int) bool {
		tj := ci.entries[i+1+k].total
		return float64(tj-ti)/float64(ti+tj) > ci.cfg.DistanceThreshold
	})
	return i + span
}

// featureCount is one vector feature with its count, for dominance sorting.
type featureCount struct {
	feature string
	count   int
}

// probeScratch holds the per-worker reusable buffers of a probe: a
// generation-stamped dedup array, the candidate accumulator and the feature
// sort buffer. Scratch values are pooled because ForEach hands out indices,
// not worker identities.
type probeScratch struct {
	stamp []int
	gen   int
	cand  []int32
	feats []featureCount
}

// probe returns entry i's dominant features: at least topK of them, extended
// until they cover more than DistanceThreshold of the vector's total mass
// (the losslessness condition above). ok is false when no probe set can be
// lossless — an empty vector, or a threshold >= 1 — and the caller must scan
// the whole window instead.
func (ci *candidateIndex) probe(i int, s *probeScratch) (feats []featureCount, ok bool) {
	e := ci.entries[i]
	s.feats = s.feats[:0]
	for f, n := range e.app.Vector {
		if n > 0 {
			s.feats = append(s.feats, featureCount{feature: f, count: n})
		}
	}
	if len(s.feats) == 0 {
		return nil, false
	}
	sort.Slice(s.feats, func(a, b int) bool {
		if s.feats[a].count != s.feats[b].count {
			return s.feats[a].count > s.feats[b].count
		}
		return s.feats[a].feature < s.feats[b].feature
	})
	need := ci.cfg.DistanceThreshold * float64(e.total)
	covered := 0
	k := 0
	for k < len(s.feats) && (k < ci.topK || float64(covered) <= need) {
		covered += s.feats[k].count
		k++
	}
	if float64(covered) <= need {
		return nil, false
	}
	return s.feats[:k], true
}

// candidatesInto fills s.cand with the candidate partners of entry i — every
// j > i inside the total window that shares a dominant feature with i — in
// ascending order.
func (ci *candidateIndex) candidatesInto(i int, s *probeScratch) {
	s.cand = s.cand[:0]
	end := ci.windowEnd(i)
	if end <= i {
		return
	}
	feats, ok := ci.probe(i, s)
	if !ok {
		// Degenerate probe: fall back to the serial sweep's full window.
		for j := i + 1; j <= end; j++ {
			s.cand = append(s.cand, int32(j))
		}
		return
	}
	s.gen++
	for _, fc := range feats {
		posting := ci.postings[fc.feature]
		lo := sort.Search(len(posting), func(k int) bool { return posting[k] > int32(i) })
		for _, j := range posting[lo:] {
			if int(j) > end {
				break
			}
			if s.stamp[j] == s.gen {
				continue
			}
			s.stamp[j] = s.gen
			s.cand = append(s.cand, j)
		}
	}
	sort.Slice(s.cand, func(a, b int) bool { return s.cand[a] < s.cand[b] })
}

// detectCodeClonesIndexed is the indexed, parallel detector: build the
// candidate index, then fan the per-entry probe + comparison jobs (phase 1
// and phase 2 both) out over the worker pool. Each job writes only its own
// slot; flattening the slots in entry order afterwards makes the output
// independent of the worker count and of goroutine scheduling.
func detectCodeClonesIndexed(entries []cloneEntry, cfg CodeConfig, opts CloneOptions) *CodeResult {
	topK := opts.IndexTopK
	if topK <= 0 {
		topK = DefaultIndexTopK
	}
	idx := buildCandidateIndex(entries, cfg, topK)
	slots := make([]CodeResult, len(entries))
	scratch := sync.Pool{New: func() any {
		return &probeScratch{stamp: make([]int, len(entries))}
	}}
	pipeline.ForEach(len(entries), opts.Workers, func(i int) {
		s := scratch.Get().(*probeScratch)
		idx.candidatesInto(i, s)
		slot := &slots[i]
		for _, j := range s.cand {
			compareCandidate(entries[i], entries[j], cfg, slot)
		}
		scratch.Put(s)
	})
	result := &CodeResult{}
	for i := range slots {
		result.Pairs = append(result.Pairs, slots[i].Pairs...)
		result.ComparedPairs += slots[i].ComparedPairs
		result.CandidatePairs += slots[i].CandidatePairs
	}
	return result
}
