package clonedetect

import (
	"math"
	"testing"
	"testing/quick"

	"marketscope/internal/dex"
)

func codeWithCalls(pkg string, calls map[string]int) *dex.File {
	var methods []dex.Method
	for call, n := range calls {
		for i := 0; i < n; i++ {
			methods = append(methods, dex.Method{Name: "m", APICalls: []string{call}})
		}
	}
	return &dex.File{Classes: []dex.Class{{Name: pkg + ".Main", Methods: methods}}}
}

func TestNewVectorCountsAllFeatureKinds(t *testing.T) {
	code := &dex.File{Classes: []dex.Class{
		{Name: "com.a.Main", Methods: []dex.Method{
			{Name: "m", APICalls: []string{"x.Y.call", "x.Y.call"},
				IntentActions: []string{"android.intent.action.VIEW"},
				ContentURIs:   []string{"content://sms"}},
		}},
	}}
	v := NewVector(code, nil)
	if v["api:x.Y.call"] != 2 {
		t.Errorf("api count = %d", v["api:x.Y.call"])
	}
	if v["intent:android.intent.action.VIEW"] != 1 {
		t.Errorf("intent count = %d", v["intent:android.intent.action.VIEW"])
	}
	if v["uri:content://sms"] != 1 {
		t.Errorf("uri count = %d", v["uri:content://sms"])
	}
	if v.Total() != 4 {
		t.Errorf("Total = %d, want 4", v.Total())
	}
}

func TestNewVectorExcludesLibraryPrefixes(t *testing.T) {
	code := &dex.File{Classes: []dex.Class{
		{Name: "com.app.Main", Methods: []dex.Method{{Name: "m", APICalls: []string{"a.B.c"}}}},
		{Name: "com.umeng.Agent", Methods: []dex.Method{{Name: "m", APICalls: []string{"d.E.f"}}}},
	}}
	v := NewVector(code, []string{"com.umeng"})
	if _, ok := v["api:d.E.f"]; ok {
		t.Error("library API call not excluded")
	}
	if v["api:a.B.c"] != 1 {
		t.Error("host API call missing")
	}
}

func TestDistanceBasics(t *testing.T) {
	a := FeatureVector{"x": 10, "y": 5}
	if d := Distance(a, a); d != 0 {
		t.Errorf("identical vectors distance = %g", d)
	}
	b := FeatureVector{"z": 7}
	if d := Distance(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint vectors distance = %g, want 1", d)
	}
	if d := Distance(FeatureVector{}, FeatureVector{}); d != 0 {
		t.Errorf("empty vectors distance = %g", d)
	}
	// Small perturbation -> small distance.
	c := FeatureVector{"x": 10, "y": 6}
	if d := Distance(a, c); d > 0.1 {
		t.Errorf("near-identical distance = %g", d)
	}
}

func TestDistanceSymmetricAndBoundedProperty(t *testing.T) {
	f := func(keysA, keysB []uint8) bool {
		a := FeatureVector{}
		b := FeatureVector{}
		for _, k := range keysA {
			a[string(rune('a'+k%16))]++
		}
		for _, k := range keysB {
			b[string(rune('a'+k%16))]++
		}
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentSimilarity(t *testing.T) {
	s1 := [32]byte{1}
	s2 := [32]byte{2}
	s3 := [32]byte{3}
	if got := SegmentSimilarity([][32]byte{s1, s2}, [][32]byte{s1, s2, s3}); got != 1 {
		t.Errorf("full containment similarity = %g", got)
	}
	if got := SegmentSimilarity([][32]byte{s1, s2}, [][32]byte{s3}); got != 0 {
		t.Errorf("disjoint similarity = %g", got)
	}
	if got := SegmentSimilarity([][32]byte{s1, s2, s3}, [][32]byte{s1}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("partial similarity = %g", got)
	}
	if got := SegmentSimilarity(nil, [][32]byte{s1}); got != 0 {
		t.Errorf("empty similarity = %g", got)
	}
	// Multiset semantics: duplicates in a are only matched as often as they
	// appear in b.
	if got := SegmentSimilarity([][32]byte{s1, s1}, [][32]byte{s1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("multiset similarity = %g, want 0.5", got)
	}
}

func TestVectorFromGeneratedCode(t *testing.T) {
	code := codeWithCalls("com.x", map[string]int{"a.B.c": 3, "d.E.f": 2})
	v := NewVector(code, nil)
	if v.Total() != 5 {
		t.Errorf("Total = %d, want 5", v.Total())
	}
}
