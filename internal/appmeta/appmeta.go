// Package appmeta defines the app-metadata record exchanged between the
// simulated markets, the crawler and the analyses, together with the
// consolidated category taxonomy the paper uses to compare catalogs across
// stores (Section 4.1).
//
// Each market exposes its own metadata page per app (name, category,
// downloads, rating, release date, ...). The crawler harvests these records
// alongside the APK bytes; every per-market analysis consumes them.
package appmeta

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Record is the publicly visible metadata of one app listing in one market.
// Fields mirror what the paper collects: "the app name, version name, app
// category, description, downloads, ratings and release/update date".
type Record struct {
	Market        string `json:"market"`
	Package       string `json:"package"`
	AppName       string `json:"app_name"`
	Category      string `json:"category"`
	DeveloperName string `json:"developer_name"`
	VersionCode   int64  `json:"version_code"`
	VersionName   string `json:"version_name"`
	Description   string `json:"description,omitempty"`
	// Downloads is the install count as reported by the market. A value of
	// -1 means the market does not report install counts at all (Xiaomi and
	// App China in the paper).
	Downloads int64 `json:"downloads"`
	// Rating is the average user rating in [0, 5]; 0 means unrated unless
	// the market uses a non-zero default (PC Online defaults to 3).
	Rating      float64   `json:"rating"`
	ReleaseDate time.Time `json:"release_date"`
	UpdateDate  time.Time `json:"update_date"`
	APKSize     int64     `json:"apk_size"`
	HasAds      bool      `json:"has_ads"`
	HasIAP      bool      `json:"has_iap"`
}

// Validation errors.
var (
	ErrNoMarket  = errors.New("appmeta: missing market")
	ErrNoPackage = errors.New("appmeta: missing package")
	ErrBadRating = errors.New("appmeta: rating out of range")
)

// Validate checks the minimal invariants every record must satisfy before it
// enters a snapshot.
func (r *Record) Validate() error {
	if r.Market == "" {
		return ErrNoMarket
	}
	if r.Package == "" {
		return ErrNoPackage
	}
	if r.Rating < 0 || r.Rating > 5 {
		return fmt.Errorf("%w: %g", ErrBadRating, r.Rating)
	}
	return nil
}

// Key identifies a listing uniquely within a snapshot: one app (package) in
// one market.
type Key struct {
	Market  string
	Package string
}

// Key returns the record's snapshot key.
func (r *Record) Key() Key { return Key{Market: r.Market, Package: r.Package} }

// ReportsDownloads reports whether the market provided an install count for
// this record.
func (r *Record) ReportsDownloads() bool { return r.Downloads >= 0 }

// Category is one of the consolidated 22 app categories the paper maps every
// market-native category onto (Figure 1).
type Category string

// The consolidated taxonomy of Figure 1.
const (
	CategoryBooks           Category = "Books"
	CategoryBrowsers        Category = "Browsers"
	CategoryBusiness        Category = "Business"
	CategoryCommunication   Category = "Communication"
	CategoryEducation       Category = "Education"
	CategoryEntertainment   Category = "Entertainment"
	CategoryFinance         Category = "Finance"
	CategoryHealth          Category = "Health"
	CategoryInputMethods    Category = "InputMethods"
	CategoryLifestyle       Category = "Lifestyle"
	CategoryLocation        Category = "Location"
	CategoryNews            Category = "News"
	CategoryMusic           Category = "Music"
	CategoryPersonalization Category = "Personalization"
	CategoryPhotography     Category = "Photography"
	CategorySecurity        Category = "Security"
	CategoryShopping        Category = "Shopping"
	CategorySocial          Category = "Social"
	CategoryTools           Category = "Tools"
	CategoryVideo           Category = "Video"
	CategoryGame            Category = "Game"
	CategoryOther           Category = "Null/Other"
)

// Categories returns the consolidated taxonomy in the order used by Figure 1.
func Categories() []Category {
	return []Category{
		CategoryBooks, CategoryBrowsers, CategoryBusiness, CategoryCommunication,
		CategoryEducation, CategoryEntertainment, CategoryFinance, CategoryHealth,
		CategoryInputMethods, CategoryLifestyle, CategoryLocation, CategoryNews,
		CategoryMusic, CategoryPersonalization, CategoryPhotography, CategorySecurity,
		CategoryShopping, CategorySocial, CategoryTools, CategoryVideo, CategoryGame,
		CategoryOther,
	}
}

// NumCategories is the size of the consolidated taxonomy (22 in the paper).
func NumCategories() int { return len(Categories()) }

// marketCategoryAliases maps lower-cased market-native category names onto
// the consolidated taxonomy. Chinese markets use their own taxonomies (and
// sometimes numeric or NULL categories); this table is the "manually
// developed consolidated taxonomy" of Section 4.1.
var marketCategoryAliases = map[string]Category{
	// Direct names.
	"books": CategoryBooks, "books & reference": CategoryBooks, "reading": CategoryBooks,
	"comics": CategoryBooks, "novel": CategoryBooks,
	"browsers": CategoryBrowsers, "browser": CategoryBrowsers,
	"business": CategoryBusiness, "office": CategoryBusiness, "productivity": CategoryBusiness,
	"communication": CategoryCommunication, "chat": CategoryCommunication, "im": CategoryCommunication,
	"education": CategoryEducation, "learning": CategoryEducation, "study": CategoryEducation,
	"entertainment": CategoryEntertainment, "fun": CategoryEntertainment,
	"finance": CategoryFinance, "banking": CategoryFinance, "investment": CategoryFinance,
	"health": CategoryHealth, "health & fitness": CategoryHealth, "medical": CategoryHealth,
	"sports": CategoryHealth, "fitness": CategoryHealth,
	"input methods": CategoryInputMethods, "inputmethods": CategoryInputMethods, "keyboard": CategoryInputMethods,
	"lifestyle": CategoryLifestyle, "life": CategoryLifestyle, "food & drink": CategoryLifestyle,
	"house & home": CategoryLifestyle,
	"location":     CategoryLocation, "maps & navigation": CategoryLocation, "travel": CategoryLocation,
	"travel & local": CategoryLocation, "navigation": CategoryLocation,
	"news": CategoryNews, "news & magazines": CategoryNews,
	"music": CategoryMusic, "music & audio": CategoryMusic, "audio": CategoryMusic,
	"personalization": CategoryPersonalization, "theme": CategoryPersonalization,
	"wallpaper": CategoryPersonalization, "launcher": CategoryPersonalization,
	"photography": CategoryPhotography, "photo": CategoryPhotography, "camera": CategoryPhotography,
	"security": CategorySecurity, "antivirus": CategorySecurity, "safety": CategorySecurity,
	"shopping": CategoryShopping, "e-commerce": CategoryShopping,
	"social": CategorySocial, "social networking": CategorySocial, "community": CategorySocial,
	"dating": CategorySocial,
	"tools":  CategoryTools, "utilities": CategoryTools, "system": CategoryTools,
	"system tools": CategoryTools, "efficiency": CategoryTools,
	"video": CategoryVideo, "video players & editors": CategoryVideo, "media & video": CategoryVideo,
	"video & audio": CategoryVideo,
	"game":          CategoryGame, "games": CategoryGame, "casual": CategoryGame, "puzzle": CategoryGame,
	"arcade": CategoryGame, "action game": CategoryGame, "online game": CategoryGame,
	"role playing": CategoryGame, "strategy": CategoryGame,
}

// ConsolidateCategory maps a market-native category string onto the
// consolidated taxonomy. Unknown, empty, numeric or placeholder categories
// map to Null/Other, matching how the paper classified roughly 40% of
// Tencent/360/OPPO/25PP listings as "Other".
func ConsolidateCategory(marketCategory string) Category {
	normalized := strings.ToLower(strings.TrimSpace(marketCategory))
	if normalized == "" || normalized == "null" || normalized == "unclassified" || normalized == "other" {
		return CategoryOther
	}
	if c, ok := marketCategoryAliases[normalized]; ok {
		return c
	}
	// Purely numeric placeholder categories ("102229") appear in several
	// Chinese stores.
	digitsOnly := true
	for _, r := range normalized {
		if r < '0' || r > '9' {
			digitsOnly = false
			break
		}
	}
	if digitsOnly {
		return CategoryOther
	}
	return CategoryOther
}

// KnownCategoryName reports whether the market-native category maps to a
// concrete category (not Null/Other).
func KnownCategoryName(marketCategory string) bool {
	return ConsolidateCategory(marketCategory) != CategoryOther
}

// NormalizeAppName canonicalizes an app display name for fake-app clustering:
// lower-case, trimmed, with interior whitespace collapsed. The fake-app
// detector clusters on exact normalized names (Section 6.1).
func NormalizeAppName(name string) string {
	fields := strings.Fields(strings.ToLower(name))
	return strings.Join(fields, " ")
}

// CommonAppNames are generic names that legitimately recur across unrelated
// apps; clusters built on them are excluded from fake-app detection, exactly
// as the paper excludes "apps sharing common names like Flashlight,
// Calculator, or Wallpaper".
var CommonAppNames = map[string]bool{
	"flashlight": true, "calculator": true, "wallpaper": true, "compass": true,
	"notes": true, "clock": true, "alarm": true, "calendar": true, "camera": true,
	"browser": true, "weather": true, "music player": true, "file manager": true,
	"gallery": true, "recorder": true, "torch": true, "timer": true,
}

// IsCommonAppName reports whether the (raw) app name is one of the generic
// names excluded from fake-app clustering.
func IsCommonAppName(name string) bool {
	return CommonAppNames[NormalizeAppName(name)]
}
