package appmeta

import (
	"errors"
	"testing"
	"time"
)

func validRecord() *Record {
	return &Record{
		Market:        "Huawei Market",
		Package:       "com.example.app",
		AppName:       "Example App",
		Category:      "Tools",
		DeveloperName: "Example Inc",
		VersionCode:   12,
		VersionName:   "1.2",
		Downloads:     150_000,
		Rating:        4.2,
		ReleaseDate:   time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		UpdateDate:    time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		APKSize:       18 << 20,
	}
}

func TestRecordValidate(t *testing.T) {
	if err := validRecord().Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	r := validRecord()
	r.Market = ""
	if err := r.Validate(); !errors.Is(err, ErrNoMarket) {
		t.Errorf("missing market: %v", err)
	}
	r = validRecord()
	r.Package = ""
	if err := r.Validate(); !errors.Is(err, ErrNoPackage) {
		t.Errorf("missing package: %v", err)
	}
	r = validRecord()
	r.Rating = 5.5
	if err := r.Validate(); !errors.Is(err, ErrBadRating) {
		t.Errorf("bad rating: %v", err)
	}
	r = validRecord()
	r.Rating = -0.1
	if err := r.Validate(); !errors.Is(err, ErrBadRating) {
		t.Errorf("negative rating: %v", err)
	}
}

func TestRecordKey(t *testing.T) {
	r := validRecord()
	k := r.Key()
	if k.Market != "Huawei Market" || k.Package != "com.example.app" {
		t.Errorf("Key = %+v", k)
	}
}

func TestReportsDownloads(t *testing.T) {
	r := validRecord()
	if !r.ReportsDownloads() {
		t.Error("positive downloads should report")
	}
	r.Downloads = 0
	if !r.ReportsDownloads() {
		t.Error("zero downloads still counts as reported")
	}
	r.Downloads = -1
	if r.ReportsDownloads() {
		t.Error("-1 means the market does not report downloads")
	}
}

func TestCategoriesTaxonomySize(t *testing.T) {
	cats := Categories()
	if len(cats) != 22 {
		t.Fatalf("consolidated taxonomy has %d categories, want 22", len(cats))
	}
	if NumCategories() != 22 {
		t.Errorf("NumCategories = %d", NumCategories())
	}
	seen := map[Category]bool{}
	for _, c := range cats {
		if seen[c] {
			t.Errorf("duplicate category %q", c)
		}
		seen[c] = true
	}
	if !seen[CategoryGame] || !seen[CategoryOther] {
		t.Error("taxonomy missing Game or Null/Other")
	}
}

func TestConsolidateCategory(t *testing.T) {
	cases := []struct {
		in   string
		want Category
	}{
		{"Games", CategoryGame},
		{"game", CategoryGame},
		{"Casual", CategoryGame},
		{"Tools", CategoryTools},
		{"System Tools", CategoryTools},
		{"  Music & Audio ", CategoryMusic},
		{"Video Players & Editors", CategoryVideo},
		{"Theme", CategoryPersonalization},
		{"social networking", CategorySocial},
		{"Maps & Navigation", CategoryLocation},
		{"", CategoryOther},
		{"NULL", CategoryOther},
		{"Unclassified", CategoryOther},
		{"102229", CategoryOther},
		{"definitely-not-a-category", CategoryOther},
	}
	for _, tc := range cases {
		if got := ConsolidateCategory(tc.in); got != tc.want {
			t.Errorf("ConsolidateCategory(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestKnownCategoryName(t *testing.T) {
	if !KnownCategoryName("Games") {
		t.Error("Games should be known")
	}
	if KnownCategoryName("102229") {
		t.Error("numeric placeholder should be unknown")
	}
}

func TestNormalizeAppName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"WeChat", "wechat"},
		{"  Kugou   Music  ", "kugou music"},
		{"FLASHLIGHT", "flashlight"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := NormalizeAppName(tc.in); got != tc.want {
			t.Errorf("NormalizeAppName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestIsCommonAppName(t *testing.T) {
	if !IsCommonAppName("Flashlight") || !IsCommonAppName("  calculator ") {
		t.Error("common names not recognized")
	}
	if IsCommonAppName("WeChat") {
		t.Error("WeChat flagged as a common name")
	}
}
