package market

import (
	"container/list"
	"sync"
)

// The query-result cache. Scan and aggregate requests are pure functions of
// (request, dataset), so the server can remember the exact response bytes of
// the first execution and replay them until the dataset changes. The key is
// the canonical request — the parsed request struct re-marshalled, so
// whitespace, key order and other JSON surface differences collapse onto one
// entry — plus the server's dataset epoch; bumping the epoch makes every old
// key unreachable at once, which is the whole invalidation story. Storage is
// a byte-budgeted LRU, and concurrent identical misses collapse onto a single
// compute (singleflight): the first request runs the engine, the rest wait on
// its flight and share the bytes.

// cacheKey identifies one cached response.
type cacheKey struct {
	// epoch is the dataset generation the response was computed against.
	epoch uint64
	// kind separates the request namespaces ("scan", "aggregate") so a scan
	// and an aggregate that happen to marshal identically can never collide.
	kind string
	// req is the canonical (re-marshalled) request document.
	req string
}

// cacheEntry is one LRU node: the key (needed to unlink on eviction) and the
// exact response bytes as first written to the wire.
type cacheEntry struct {
	key  cacheKey
	body []byte
}

// flight is one in-progress compute that concurrent identical requests wait
// on. done is closed after body/err are set.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// cacheStats is a point-in-time snapshot of the cache counters.
type cacheStats struct {
	Hits      int64
	Misses    int64
	Collapsed int64
	Evictions int64
	Bytes     int64
	Entries   int
}

// resultCache is the byte-budgeted LRU + singleflight store. All methods are
// safe for concurrent use.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	entries  map[cacheKey]*list.Element
	flights  map[cacheKey]*flight
	// gen counts purges; a flight started before a purge must not insert its
	// stale result afterwards.
	gen int64

	hits, misses, collapsed, evictions int64
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  map[cacheKey]*list.Element{},
		flights:  map[cacheKey]*flight{},
	}
}

// do returns the response bytes for key: from the cache on a hit, from an
// in-progress identical compute when one exists, and by running compute
// otherwise (caching the result on success). hit reports whether the caller
// got bytes without running an engine pass of its own. Errors are never
// cached; a waiter whose flight leader failed falls back to computing
// independently, so one cancelled request cannot poison its followers.
func (c *resultCache) do(key cacheKey, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		body = el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.collapsed++
		c.mu.Unlock()
		<-f.done
		if f.err == nil {
			return f.body, true, nil
		}
		body, err = compute()
		return body, false, err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	gen := c.gen
	c.mu.Unlock()

	f.body, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil && gen == c.gen {
		c.insert(key, f.body)
	}
	c.mu.Unlock()
	return f.body, false, f.err
}

// insert stores body under key and evicts from the LRU tail until the byte
// budget holds again. Bodies over the whole budget are not cached. Callers
// hold c.mu.
func (c *resultCache) insert(key cacheKey, body []byte) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A fallback compute can race the next miss; keep the first insert.
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.curBytes += int64(len(body))
	for c.curBytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.curBytes -= int64(len(e.body))
		c.evictions++
	}
}

// purge drops every entry (the epoch-bump path). In-progress flights keep
// running but their results are discarded instead of inserted.
func (c *resultCache) purge() {
	c.mu.Lock()
	c.ll.Init()
	c.entries = map[cacheKey]*list.Element{}
	c.curBytes = 0
	c.gen++
	c.mu.Unlock()
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Collapsed: c.collapsed,
		Evictions: c.evictions,
		Bytes:     c.curBytes,
		Entries:   len(c.entries),
	}
}
