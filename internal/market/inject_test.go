package market_test

// Hostile-input tests for the serving layer: malformed JSON, oversized
// bodies, unknown keys, wrong methods and header abuse must come back as
// clean 4xx responses with JSON error bodies — never a panic, never a 5xx.
// FuzzServeHTTP generalizes the same contract over arbitrary
// method/path/header/body combinations.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"marketscope/internal/market"
)

// injectRequest drives the full serving chain in process and returns the
// recorded response.
func injectRequest(t testing.TB, srv *market.Server, method, path string, body []byte, hdr http.Header) *httptest.ResponseRecorder {
	t.Helper()
	req, err := http.NewRequest(method, "http://market.test"+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("build request %s %s: %v", method, path, err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.RemoteAddr = "192.0.2.1:1234"
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// decodedBody returns the response body, gunzipped when the response says it
// is gzip-encoded.
func decodedBody(t *testing.T, rec *httptest.ResponseRecorder) []byte {
	t.Helper()
	body := rec.Body.Bytes()
	if rec.Header().Get("Content-Encoding") != "gzip" {
		return body
	}
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("claimed gzip, not gzip: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	return out
}

// requireJSONError asserts the response carries the wanted status and a
// decodable {"error": ...} body.
func requireJSONError(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int) {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status = %d, want %d (body %.200s)", rec.Code, wantStatus, rec.Body.String())
	}
	var e struct {
		Error string `json:"error"`
	}
	if body := decodedBody(t, rec); json.Unmarshal(body, &e) != nil || e.Error == "" {
		t.Fatalf("error body not JSON {\"error\": ...} (body %.200s)", body)
	}
}

func TestScanEndpointRejectsHostileInput(t *testing.T) {
	srv := servingFixture(t)

	oversized := []byte(`{"fields":["` + strings.Repeat("a", 2<<20) + `"]}`)
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"truncated json", market.ScanPath, `{"fields": ["package"`, http.StatusBadRequest},
		{"not json at all", market.ScanPath, `GET / HTTP/1.1`, http.StatusBadRequest},
		{"empty body", market.ScanPath, ``, http.StatusBadRequest},
		{"unknown key", market.ScanPath, `{"filter": []}`, http.StatusBadRequest},
		{"trailing data", market.ScanPath, `{"fields":["package"]} {"again": true}`, http.StatusBadRequest},
		{"negative limit", market.ScanPath, `{"limit": -3}`, http.StatusBadRequest},
		{"wrong value type", market.ScanPath, `{"fields": 12}`, http.StatusBadRequest},
		{"oversized query", market.ScanPath, string(oversized), http.StatusBadRequest},
		{"agg truncated json", market.AggregatePath, `{"group_by": [`, http.StatusBadRequest},
		{"agg unknown key", market.AggregatePath, `{"aggregate": []}`, http.StatusBadRequest},
		{"agg empty body", market.AggregatePath, ``, http.StatusBadRequest},
		{"agg bad op", market.AggregatePath, `{"aggregates":[{"op":"median","field":"rating"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rec := injectRequest(t, srv, http.MethodPost, tc.path, []byte(tc.body), nil)
			requireJSONError(t, rec, tc.want)
		})
	}
}

func TestScanEndpointRejectsWrongMethods(t *testing.T) {
	srv := servingFixture(t)
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, market.ScanPath, http.StatusMethodNotAllowed},
		{http.MethodPut, market.ScanPath, http.StatusMethodNotAllowed},
		{http.MethodDelete, market.AggregatePath, http.StatusMethodNotAllowed},
		{http.MethodPost, market.ScanFieldsPath, http.StatusMethodNotAllowed},
		{http.MethodPost, market.HealthPath, http.StatusMethodNotAllowed},
		{http.MethodPost, market.MetricsPath, http.StatusMethodNotAllowed},
	} {
		rec := injectRequest(t, srv, tc.method, tc.path, []byte(`{}`), nil)
		if rec.Code != tc.want {
			t.Errorf("%s %s: status = %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
	}
}

// TestHeaderAbuse floods the chain with abusive but syntactically deliverable
// headers; a well-formed query must still answer 200 and hostile ones a clean
// 4xx, with the gzip negotiation untricked.
func TestHeaderAbuse(t *testing.T) {
	srv := servingFixture(t)
	good := []byte(`{"fields":["package"],"limit":1}`)

	bigHeader := http.Header{}
	bigHeader.Set("X-Filler", strings.Repeat("x", 1<<20))
	for i := 0; i < 500; i++ {
		bigHeader.Add("X-Many", fmt.Sprintf("v%d", i))
	}
	hostileEncodings := http.Header{}
	hostileEncodings.Set("Accept-Encoding", "br;q=nonsense, identity;;;, gzip\x7f")
	hostileEncodings.Set("Content-Type", "text/plain; boundary=\"unterminated")

	for _, tc := range []struct {
		name string
		hdr  http.Header
	}{
		{"huge and repeated headers", bigHeader},
		{"mangled negotiation headers", hostileEncodings},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rec := injectRequest(t, srv, http.MethodPost, market.ScanPath, good, tc.hdr)
			if rec.Code != http.StatusOK {
				t.Fatalf("valid query under %s: status %d (body %.200s)", tc.name, rec.Code, rec.Body.String())
			}
			if body := decodedBody(t, rec); !json.Valid(body) {
				t.Fatalf("response body not JSON: %.200s", body)
			}
			rec = injectRequest(t, srv, http.MethodPost, market.ScanPath, []byte(`{`), tc.hdr)
			requireJSONError(t, rec, http.StatusBadRequest)
		})
	}
}

// FuzzServeHTTP throws arbitrary method/path/header/body combinations at the
// full serving chain. The invariants: no panic anywhere, and the scan and
// aggregate endpoints never answer 5xx — every input that is not a valid
// query is the client's fault.
func FuzzServeHTTP(f *testing.F) {
	f.Add("POST", market.ScanPath, "gzip", []byte(`{"fields":["package"],"limit":2}`))
	f.Add("POST", market.ScanPath, "", []byte(`{"filters":[{"field":"av_positives","op":">=","value":3}]}`))
	f.Add("POST", market.AggregatePath, "identity", []byte(`{"group_by":["market"],"aggregates":[{"op":"count"}]}`))
	f.Add("POST", market.AggregatePath, "gzip, br", []byte(`{"aggregates":[{"op":"topk","field":"category","k":2}]}`))
	f.Add("GET", market.ScanFieldsPath, "gzip", []byte(nil))
	f.Add("GET", market.HealthPath, "", []byte(nil))
	f.Add("GET", market.MetricsPath, "", []byte(nil))
	f.Add("GET", "/api/app?pkg=%zz", "", []byte(nil))
	f.Add("GET", "/api/search?q="+strings.Repeat("a", 4096)+"&limit=-1", "", []byte(nil))
	f.Add("PATCH", market.ScanPath, "\x00", []byte(`{`))
	f.Add("POST", market.ScanPath, "gzip", []byte("\xff\xfe not json"))

	f.Fuzz(func(t *testing.T, method, path, acceptEncoding string, body []byte) {
		srv := servingFixture(t)
		req, err := http.NewRequest(method, "http://market.test"+path, bytes.NewReader(body))
		if err != nil {
			t.Skip("unbuildable request")
		}
		req.Header.Set("Accept-Encoding", acceptEncoding)
		req.RemoteAddr = "192.0.2.1:1234"
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)

		if rec.Code < 100 || rec.Code > 599 {
			t.Fatalf("%s %q: nonsense status %d", method, path, rec.Code)
		}
		if method == http.MethodPost && (path == market.ScanPath || path == market.AggregatePath) {
			if rec.Code >= 500 {
				t.Fatalf("%s %s with body %.100q: status %d (body %.200s)",
					method, path, body, rec.Code, rec.Body.String())
			}
			if respBody := decodedBody(t, rec); !json.Valid(respBody) {
				t.Fatalf("%s %s: non-JSON response %.200q", method, path, respBody)
			}
		}
	})
}
