package market

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"marketscope/internal/appmeta"
)

func newTestServer(t *testing.T, marketName string) (*httptest.Server, *Store) {
	t.Helper()
	profile, ok := ProfileByName(marketName)
	if !ok {
		t.Fatalf("unknown market %q", marketName)
	}
	store := NewStore(profile)
	apps := []appmeta.Record{
		record(marketName, "com.kugou.android", "Kugou Music", "Kugou Inc", "Music", 5_000_000),
		record(marketName, "com.kugou.ring", "Kugou Ring", "Kugou Inc", "Music", 40_000),
		record(marketName, "com.news.daily", "Daily News", "NewsCo", "News", 900_000),
	}
	for i, r := range apps {
		if err := store.Add(r, []byte{0xAA, byte(i), 0xBB}); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	return srv, store
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServerInfo(t *testing.T) {
	srv, _ := newTestServer(t, "Huawei Market")
	var info Info
	if code := getJSON(t, srv.URL+"/api/info", &info); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if info.Name != "Huawei Market" || info.NumApps != 3 || info.IndexStyle != IndexSearch {
		t.Errorf("info = %+v", info)
	}
}

func TestServerAppAndDownload(t *testing.T) {
	srv, _ := newTestServer(t, "Huawei Market")
	var rec appmeta.Record
	if code := getJSON(t, srv.URL+"/api/app?pkg=com.kugou.android", &rec); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if rec.AppName != "Kugou Music" || rec.Downloads != 5_000_000 {
		t.Errorf("record = %+v", rec)
	}
	if code := getJSON(t, srv.URL+"/api/app?pkg=com.missing", nil); code != http.StatusNotFound {
		t.Errorf("missing app status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/app", nil); code != http.StatusBadRequest {
		t.Errorf("missing pkg status = %d", code)
	}

	resp, err := http.Get(srv.URL + "/api/download?pkg=com.kugou.android")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 3 {
		t.Errorf("download status=%d len=%d", resp.StatusCode, len(body))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/vnd.android.package-archive" {
		t.Errorf("content type = %q", ct)
	}
	if code := getJSON(t, srv.URL+"/api/download?pkg=com.missing", nil); code != http.StatusNotFound {
		t.Errorf("missing download status = %d", code)
	}
}

func TestServerSearch(t *testing.T) {
	srv, _ := newTestServer(t, "Huawei Market")
	var hits []appmeta.Record
	if code := getJSON(t, srv.URL+"/api/search?q=kugou", &hits); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(hits) != 2 {
		t.Errorf("hits = %d", len(hits))
	}
	if code := getJSON(t, srv.URL+"/api/search", nil); code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", code)
	}
}

func TestServerIndexStyleGating(t *testing.T) {
	// A search-style market must reject /api/related and /api/index.
	srv, _ := newTestServer(t, "Huawei Market")
	if code := getJSON(t, srv.URL+"/api/related?pkg=com.kugou.android", nil); code != http.StatusNotFound {
		t.Errorf("related on search market = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/index?i=0", nil); code != http.StatusNotFound {
		t.Errorf("index on search market = %d", code)
	}

	// Baidu exposes the incremental index.
	baidu, _ := newTestServer(t, "Baidu Market")
	var rec appmeta.Record
	if code := getJSON(t, baidu.URL+"/api/index?i=0", &rec); code != http.StatusOK || rec.Package == "" {
		t.Errorf("baidu index: code=%d rec=%+v", code, rec)
	}
	if code := getJSON(t, baidu.URL+"/api/index?i=99", nil); code != http.StatusNotFound {
		t.Errorf("baidu out-of-range index = %d", code)
	}
	if code := getJSON(t, baidu.URL+"/api/index", nil); code != http.StatusBadRequest {
		t.Errorf("baidu missing i = %d", code)
	}
}

func TestServerCatalogPaging(t *testing.T) {
	srv, _ := newTestServer(t, "Huawei Market")
	var page []appmeta.Record
	if code := getJSON(t, srv.URL+"/api/catalog?page=0&size=2", &page); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(page) != 2 {
		t.Errorf("page size = %d", len(page))
	}
	if code := getJSON(t, srv.URL+"/api/catalog?page=99&size=2", &page); code != http.StatusOK || len(page) != 0 {
		t.Errorf("empty page: code=%d len=%d", code, len(page))
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t, "Huawei Market")
	resp, err := http.Post(srv.URL+"/api/info", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

func TestServerRateLimiting(t *testing.T) {
	// Google Play's profile sets a rate limit; hammering the endpoint must
	// eventually yield 429 responses.
	srv, _ := newTestServer(t, GooglePlay)
	limited := false
	for i := 0; i < 300; i++ {
		resp, err := http.Get(srv.URL + "/api/info")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				// Header is set before the error write in ServeHTTP.
				t.Log("Retry-After header missing on 429")
			}
			limited = true
			break
		}
	}
	if !limited {
		t.Error("rate limiter never engaged after 300 rapid requests")
	}
}

func TestServerRelatedOnGooglePlay(t *testing.T) {
	srv, _ := newTestServer(t, GooglePlay)
	// Retry to ride out the rate limiter from other tests (fresh server, so
	// only this test's requests count).
	var rel []appmeta.Record
	code := getJSON(t, srv.URL+"/api/related?pkg=com.kugou.android&limit=5", &rel)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(rel) == 0 {
		t.Error("no related apps returned")
	}
}
