package market_test

// Server-level tests of the serving layer: cache hits byte-identical to the
// misses that populated them, epoch invalidation, singleflight collapse over
// real concurrent requests, load shedding under saturation, per-request
// timeouts, per-client rate limiting, gzip, /healthz and /metrics.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marketscope/internal/market"
	"marketscope/internal/query"
)

// countingSource wraps the fixture engine and counts executions; when gate is
// non-nil every scan blocks on it first, so tests can hold a compute open
// while concurrent identical requests pile up.
type countingSource struct {
	src   query.Source
	scans atomic.Int64
	gate  chan struct{}
}

func (c *countingSource) Fields() []query.FieldInfo { return c.src.Fields() }

func (c *countingSource) Scan(q query.Query) (*query.Result, error) {
	c.scans.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return c.src.Scan(q)
}

// slowSource delays every scan, honouring cancellation — the stand-in for an
// expensive query when tests need predictable saturation.
type slowSource struct {
	src   query.Source
	delay time.Duration
}

func (s *slowSource) Fields() []query.FieldInfo { return s.src.Fields() }

func (s *slowSource) Scan(q query.Query) (*query.Result, error) {
	return s.ScanContext(context.Background(), q)
}

func (s *slowSource) ScanContext(ctx context.Context, q query.Query) (*query.Result, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.src.Scan(q)
}

// newServingServer builds a server over the fixture store/dataset with the
// given source and config.
func newServingServer(t *testing.T, src query.Source, cfg market.ServeConfig) *market.Server {
	t.Helper()
	srv := market.NewServer(scanStore)
	srv.AttachScan(src)
	srv.ConfigureServing(cfg)
	return srv
}

func postScan(t *testing.T, srv *market.Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, market.ScanPath, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestCacheHitByteIdenticalToMiss(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, ds.QuerySource(), market.ServeConfig{CacheBytes: 1 << 20})

	body := `{"fields":["package","market"],"filters":[{"field":"market_chinese","op":"==","value":true}],"limit":7}`
	first := postScan(t, srv, body)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first request: code=%d X-Cache=%q, want 200 MISS", first.Code, first.Header().Get("X-Cache"))
	}
	second := postScan(t, srv, body)
	if second.Code != http.StatusOK || second.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second request: code=%d X-Cache=%q, want 200 HIT", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("hit not byte-identical to the miss that populated it:\nmiss: %.200s\nhit:  %.200s",
			first.Body.Bytes(), second.Body.Bytes())
	}

	// A semantically identical request spelled differently (key order,
	// whitespace) must land on the same entry: the key is the canonical
	// parsed request, not the raw body.
	reordered := `{ "limit": 7, "filters": [ {"value": true, "op": "==", "field": "market_chinese"} ], "fields": ["package", "market"] }`
	third := postScan(t, srv, reordered)
	if third.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("reordered spelling missed the cache (X-Cache=%q)", third.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Fatal("reordered spelling returned different bytes")
	}
}

func TestCacheEpochInvalidation(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, ds.QuerySource(), market.ServeConfig{CacheBytes: 1 << 20})
	body := `{"fields":["package"],"limit":3}`

	postScan(t, srv, body)
	if rec := postScan(t, srv, body); rec.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("warmup did not cache (X-Cache=%q)", rec.Header().Get("X-Cache"))
	}
	epochBefore := srv.Epoch()
	srv.BumpEpoch()
	if srv.Epoch() != epochBefore+1 {
		t.Fatalf("epoch %d after bump of %d", srv.Epoch(), epochBefore)
	}
	if rec := postScan(t, srv, body); rec.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("request after epoch bump was a %q, want MISS", rec.Header().Get("X-Cache"))
	}
	if st := srv.ServingStats(); st.CacheMisses < 2 {
		t.Fatalf("stats did not record the second miss: %+v", st)
	}
}

func TestCacheSingleflightOverHTTP(t *testing.T) {
	ds, _ := scanFixture(t)
	cs := &countingSource{src: ds.QuerySource(), gate: make(chan struct{})}
	srv := newServingServer(t, cs, market.ServeConfig{CacheBytes: 1 << 20})
	body := `{"fields":["package"],"limit":5}`

	const callers = 12
	var wg sync.WaitGroup
	codes := make([]int, callers)
	bodies := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := postScan(t, srv, body)
			codes[i], bodies[i] = rec.Code, rec.Body.Bytes()
		}()
	}
	// Let the leader enter the engine and the followers pile onto its
	// flight, then release everyone.
	deadline := time.Now().Add(5 * time.Second)
	for cs.scans.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(cs.gate)
	wg.Wait()

	if n := cs.scans.Load(); n != 1 {
		t.Fatalf("%d engine executions for %d concurrent identical requests, want 1", n, callers)
	}
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
}

// TestLoadShedding is the overload acceptance test: offered load at twice
// the gate's total capacity must shed some requests with 503 + Retry-After
// while every accepted request completes within its timeout budget.
func TestLoadShedding(t *testing.T) {
	const (
		delay       = 50 * time.Millisecond
		maxInflight = 2
		maxQueue    = 2
		timeout     = 2 * time.Second
		offered     = 2 * (maxInflight + maxQueue) * 2 // 2x capacity, twice over
	)
	ds, _ := scanFixture(t)
	srv := newServingServer(t, &slowSource{src: ds.QuerySource(), delay: delay},
		market.ServeConfig{MaxInflight: maxInflight, MaxQueue: maxQueue, Timeout: timeout})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type outcome struct {
		code       int
		took       time.Duration
		retryAfter string
	}
	outcomes := make([]outcome, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct bodies so nothing collapses or caches away the load.
			body := fmt.Sprintf(`{"fields":["package"],"limit":%d}`, i+1)
			start := time.Now()
			resp, err := http.Post(ts.URL+market.ScanPath, "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{code: resp.StatusCode, took: time.Since(start),
				retryAfter: resp.Header.Get("Retry-After")}
		}()
	}
	wg.Wait()

	var accepted, shed int
	var worstAccepted time.Duration
	for i, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			accepted++
			if o.took > worstAccepted {
				worstAccepted = o.took
			}
		case http.StatusServiceUnavailable:
			shed++
			if o.retryAfter == "" {
				t.Errorf("request %d shed without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, o.code)
		}
		if o.took > timeout+time.Second {
			t.Errorf("request %d took %v, beyond its %v budget", i, o.took, timeout)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed at 2x capacity (accepted %d)", accepted)
	}
	if accepted == 0 {
		t.Fatal("every request shed; the gate admitted nothing")
	}
	// Accepted requests drain in batches of maxInflight; even the last
	// queued one is bounded well below the timeout.
	if bound := timeout; worstAccepted > bound {
		t.Fatalf("accepted p100 %v exceeds %v", worstAccepted, bound)
	}
	st := srv.ServingStats()
	if st.Shed != int64(shed) {
		t.Fatalf("stats shed %d, observed %d", st.Shed, shed)
	}
	if st.P99 <= 0 || st.P99 > timeout {
		t.Fatalf("p99 %v outside (0, %v]", st.P99, timeout)
	}
}

func TestTimeoutReturns504(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, &slowSource{src: ds.QuerySource(), delay: time.Second},
		market.ServeConfig{Timeout: 30 * time.Millisecond})

	start := time.Now()
	rec := postScan(t, srv, `{"fields":["package"],"limit":1}`)
	took := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %.200s)", rec.Code, rec.Body.String())
	}
	if took > 500*time.Millisecond {
		t.Fatalf("timed-out request held the connection %v", took)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("504 body is not a JSON error: %q", rec.Body.String())
	}
	if st := srv.ServingStats(); st.Timeouts == 0 {
		t.Fatalf("timeout not recorded in stats: %+v", st)
	}
}

func TestPerClientRateLimit(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, ds.QuerySource(),
		market.ServeConfig{RatePerSecond: 0.001, Burst: 2})

	get := func(remote string) int {
		req := httptest.NewRequest(http.MethodGet, "/api/info", nil)
		req.RemoteAddr = remote
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	if c := get("10.0.0.1:1111"); c != http.StatusOK {
		t.Fatalf("first request: %d", c)
	}
	if c := get("10.0.0.1:2222"); c != http.StatusOK {
		t.Fatalf("second request (same host, new port): %d", c)
	}
	if c := get("10.0.0.1:3333"); c != http.StatusTooManyRequests {
		t.Fatalf("third request past the burst: %d, want 429", c)
	}
	// A different client has its own bucket.
	if c := get("10.0.0.2:1111"); c != http.StatusOK {
		t.Fatalf("other client's first request: %d", c)
	}
	if st := srv.ServingStats(); st.RateLimited == 0 {
		t.Fatalf("429 not recorded in stats: %+v", st)
	}
}

func TestGzipResponses(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, ds.QuerySource(), market.ServeConfig{Gzip: true})

	plain := httptest.NewRecorder()
	srv.ServeHTTP(plain, httptest.NewRequest(http.MethodGet, "/api/info", nil))
	if enc := plain.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("uncompressed request got Content-Encoding %q", enc)
	}

	req := httptest.NewRequest(http.MethodGet, "/api/info", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	zipped := httptest.NewRecorder()
	srv.ServeHTTP(zipped, req)
	if enc := zipped.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(zipped.Body)
	if err != nil {
		t.Fatalf("gzip reader: %v", err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if !bytes.Equal(unzipped, plain.Body.Bytes()) {
		t.Fatalf("gzipped body decodes to different content:\nplain: %s\ngzip:  %s", plain.Body.Bytes(), unzipped)
	}
}

func TestHealthz(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, ds.QuerySource(), market.ServeConfig{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, market.HealthPath, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var h struct {
		Status string `json:"status"`
		Market string `json:"market"`
		Apps   int    `json:"apps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode healthz: %v (%q)", err, rec.Body.String())
	}
	if h.Status != "ok" || h.Market == "" || h.Apps <= 0 {
		t.Fatalf("healthz body %+v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, ds.QuerySource(), market.ServeConfig{CacheBytes: 1 << 20})
	body := `{"fields":["package"],"limit":2}`
	postScan(t, srv, body)
	postScan(t, srv, body) // hit

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, market.MetricsPath, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"market_http_requests_total 2",
		"market_cache_hits_total 1",
		"market_cache_misses_total 1",
		"market_http_request_seconds_bucket",
		"market_http_request_seconds_count 2",
		"market_http_qps",
		"market_cache_hit_ratio 0.5",
		"market_dataset_epoch",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHealthzBypassesGate pins that the operational endpoints answer even
// while the serving chain is saturated.
func TestHealthzBypassesGate(t *testing.T) {
	ds, _ := scanFixture(t)
	srv := newServingServer(t, &slowSource{src: ds.QuerySource(), delay: 300 * time.Millisecond},
		market.ServeConfig{MaxInflight: 1, MaxQueue: 0, Timeout: 2 * time.Second})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postScan(t, srv, `{"fields":["package"],"limit":1}`)
	}()
	time.Sleep(30 * time.Millisecond) // the slow scan now holds the only slot

	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, market.HealthPath, nil))
		done <- rec.Code
	}()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("healthz under saturation: %d", code)
		}
	case <-time.After(200 * time.Millisecond):
		t.Fatal("healthz blocked behind the inflight gate")
	}
	wg.Wait()
}
