package market

import (
	"errors"
	"testing"
	"time"

	"marketscope/internal/appmeta"
)

func TestProfilesCoverTable1(t *testing.T) {
	if NumMarkets() != 17 {
		t.Fatalf("NumMarkets = %d, want 17", NumMarkets())
	}
	names := MarketNames()
	if names[0] != GooglePlay {
		t.Errorf("first market = %q, want Google Play", names[0])
	}
	if len(ChineseMarketNames()) != 16 {
		t.Errorf("Chinese markets = %d, want 16", len(ChineseMarketNames()))
	}
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if seen[p.Name] {
			t.Errorf("duplicate market %q", p.Name)
		}
		seen[p.Name] = true
		if p.CatalogWeight <= 0 {
			t.Errorf("%s: catalog weight must be positive", p.Name)
		}
		if p.MalwareLaxness < 0 || p.MalwareLaxness > 1 {
			t.Errorf("%s: malware laxness out of range", p.Name)
		}
	}
	for _, must := range []string{"Tencent Myapp", "Huawei Market", "25PP", "PC Online", "Wandoujia"} {
		if !seen[must] {
			t.Errorf("market %q missing", must)
		}
	}
}

func TestProfileFeatureFidelity(t *testing.T) {
	gp, ok := ProfileByName(GooglePlay)
	if !ok {
		t.Fatal("Google Play profile missing")
	}
	if gp.IsChinese() {
		t.Error("Google Play must not be Chinese")
	}
	if !gp.RequiresPrivacyPolicy || !gp.ReportsIAP {
		t.Error("Google Play transparency features wrong")
	}
	if gp.IndexStyle != IndexRelated || gp.RateLimitPerSecond <= 0 {
		t.Error("Google Play crawl behaviour wrong")
	}

	hiapk, _ := ProfileByName("HiApk")
	if hiapk.CopyrightCheck || hiapk.AppVetting {
		t.Error("HiApk performs no copyright check or vetting per Table 1")
	}
	pco, _ := ProfileByName("PC Online")
	if pco.DefaultRating != 3 {
		t.Error("PC Online default rating should be 3")
	}
	lenovo, _ := ProfileByName("Lenovo MM")
	if lenovo.Openness != OpennessCompaniesOnly {
		t.Error("Lenovo MM should only accept companies")
	}
	baidu, _ := ProfileByName("Baidu Market")
	if baidu.IndexStyle != IndexIncremental {
		t.Error("Baidu should use incremental indexing")
	}
	threeSixty, _ := ProfileByName("360 Market")
	if !threeSixty.RequiresJiagu {
		t.Error("360 should require Jiagubao packing")
	}
	appchina, _ := ProfileByName("App China")
	if appchina.MaxAPKSizeMB != 50 || appchina.ReportsDownloads {
		t.Error("App China constraints wrong")
	}
	huawei, _ := ProfileByName("Huawei Market")
	if !huawei.HumanInspection || huawei.VettingDays < 3 {
		t.Error("Huawei vetting profile wrong")
	}
	if _, ok := ProfileByName("Nope Market"); ok {
		t.Error("unknown market resolved")
	}
}

func record(market, pkg, name, dev, category string, downloads int64) appmeta.Record {
	return appmeta.Record{
		Market: market, Package: pkg, AppName: name, DeveloperName: dev,
		Category: category, VersionCode: 1, VersionName: "1.0",
		Downloads: downloads, Rating: 4,
		ReleaseDate: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
		UpdateDate:  time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	profile, ok := ProfileByName("Huawei Market")
	if !ok {
		t.Fatal("profile missing")
	}
	s := NewStore(profile)
	apps := []appmeta.Record{
		record("Huawei Market", "com.kugou.android", "Kugou Music", "Kugou Inc", "Music", 5_000_000),
		record("Huawei Market", "com.kugou.ring", "Kugou Ring", "Kugou Inc", "Music", 40_000),
		record("Huawei Market", "com.news.daily", "Daily News", "NewsCo", "News", 900_000),
		record("Huawei Market", "com.tools.clean", "Cleaner", "ToolCo", "Tools", 10_000),
	}
	for i, r := range apps {
		if err := s.Add(r, []byte{0x50, 0x4B, byte(i)}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return s
}

func TestStoreAddValidation(t *testing.T) {
	profile, _ := ProfileByName("Huawei Market")
	s := NewStore(profile)
	good := record("Huawei Market", "com.a.b", "A", "Dev", "Tools", 10)
	if err := s.Add(good, nil); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Add(good, nil); !errors.Is(err, ErrDuplicateApp) {
		t.Errorf("duplicate add: %v", err)
	}
	wrong := record("Baidu Market", "com.c.d", "C", "Dev", "Tools", 10)
	if err := s.Add(wrong, nil); !errors.Is(err, ErrWrongMarket) {
		t.Errorf("wrong market: %v", err)
	}
	invalid := appmeta.Record{Market: "Huawei Market"}
	if err := s.Add(invalid, nil); !errors.Is(err, ErrInvalidRecord) {
		t.Errorf("invalid record: %v", err)
	}
}

func TestStoreGetRemove(t *testing.T) {
	s := newTestStore(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	l, ok := s.Get("com.kugou.android")
	if !ok || l.Meta.AppName != "Kugou Music" {
		t.Errorf("Get = %+v, %v", l, ok)
	}
	if _, ok := s.Get("com.missing.app"); ok {
		t.Error("Get returned missing app")
	}
	if !s.Remove("com.kugou.android") {
		t.Error("Remove failed")
	}
	if s.Remove("com.kugou.android") {
		t.Error("second Remove should fail")
	}
	if !s.WasRemoved("com.kugou.android") {
		t.Error("WasRemoved lost track")
	}
	if s.Len() != 3 {
		t.Errorf("Len after removal = %d", s.Len())
	}
	if _, err := s.APK("com.kugou.android"); !errors.Is(err, ErrAppNotFound) {
		t.Errorf("APK after removal: %v", err)
	}
}

func TestStoreByIndexWithGaps(t *testing.T) {
	s := newTestStore(t)
	if s.IndexSize() != 4 {
		t.Fatalf("IndexSize = %d", s.IndexSize())
	}
	rec, ok := s.ByIndex(0)
	if !ok || rec.Package != "com.kugou.android" {
		t.Errorf("ByIndex(0) = %+v, %v", rec, ok)
	}
	s.Remove("com.kugou.android")
	if _, ok := s.ByIndex(0); ok {
		t.Error("removed app should leave an index gap")
	}
	if _, ok := s.ByIndex(1); !ok {
		t.Error("later index positions should survive removals")
	}
	if _, ok := s.ByIndex(99); ok {
		t.Error("out-of-range index resolved")
	}
}

func TestStoreSearch(t *testing.T) {
	s := newTestStore(t)
	hits := s.SearchByName("kugou", 0)
	if len(hits) != 2 {
		t.Fatalf("search hits = %d, want 2", len(hits))
	}
	if hits[0].Package != "com.kugou.android" {
		t.Errorf("search not ordered by downloads: %+v", hits)
	}
	if got := s.SearchByName("kugou", 1); len(got) != 1 {
		t.Errorf("limit not applied: %d", len(got))
	}
	if got := s.SearchByName("", 10); len(got) != 0 {
		t.Errorf("empty query returned %d hits", len(got))
	}
	if got := s.SearchByName("nonexistent", 10); len(got) != 0 {
		t.Errorf("bogus query returned %d hits", len(got))
	}
}

func TestStoreRelated(t *testing.T) {
	s := newTestStore(t)
	rel := s.Related("com.kugou.android", 10)
	if len(rel) == 0 {
		t.Fatal("no related apps")
	}
	// Same-developer app must come first.
	if rel[0].Package != "com.kugou.ring" {
		t.Errorf("related[0] = %+v", rel[0])
	}
	if got := s.Related("com.missing.app", 5); got != nil {
		t.Error("related for missing app should be nil")
	}
}

func TestStoreCatalogPaging(t *testing.T) {
	s := newTestStore(t)
	page0 := s.Catalog(0, 3)
	page1 := s.Catalog(1, 3)
	if len(page0) != 3 || len(page1) != 1 {
		t.Errorf("pages = %d/%d", len(page0), len(page1))
	}
	if got := s.Catalog(5, 3); len(got) != 0 {
		t.Errorf("out-of-range page returned %d", len(got))
	}
	if got := s.Catalog(0, 0); len(got) != 4 {
		t.Errorf("default page size: %d", len(got))
	}
}

func TestStoreSnapshotSorted(t *testing.T) {
	s := newTestStore(t)
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Package >= snap[i].Package {
			t.Fatal("snapshot not sorted")
		}
	}
}

func TestStoreAPKIsCopied(t *testing.T) {
	s := newTestStore(t)
	a, err := s.APK("com.tools.clean")
	if err != nil {
		t.Fatal(err)
	}
	a[0] = 0xFF
	b, _ := s.APK("com.tools.clean")
	if b[0] == 0xFF {
		t.Error("APK bytes are shared with callers")
	}
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 2)
	base := time.Now()
	b.now = func() time.Time { return base }
	b.last = base
	if !b.allow() || !b.allow() {
		t.Fatal("burst capacity not available")
	}
	if b.allow() {
		t.Fatal("bucket should be empty")
	}
	// Advance 200ms -> 2 more tokens.
	base = base.Add(200 * time.Millisecond)
	if !b.allow() || !b.allow() {
		t.Error("refill did not happen")
	}
	if b.allow() {
		t.Error("refill exceeded capacity")
	}
}
