package market

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/query"
)

// Info is the market description served at /api/info, which tells the
// crawler which indexing strategy to use.
type Info struct {
	Name       string     `json:"name"`
	Type       Type       `json:"type"`
	IndexStyle IndexStyle `json:"index_style"`
	NumApps    int        `json:"num_apps"`
	IndexSize  int        `json:"index_size"`
}

// Server is the HTTP front-end of one simulated market.
//
// Routes (all GET):
//
//	/api/info                      market info
//	/api/app?pkg=<package>         metadata for one app
//	/api/download?pkg=<package>    APK bytes
//	/api/search?q=<query>&limit=N  keyword search
//	/api/related?pkg=<package>     related apps (BFS-style markets)
//	/api/index?i=N                 app at catalog position N (incremental markets)
//	/api/catalog?page=N&size=M     paged catalog listing
//
// When the profile sets RateLimitPerSecond the server answers 429 once the
// budget is exhausted, which is how Google Play's APK rate limiting is
// reproduced; the crawler must back off and retry.
type Server struct {
	store   *Store
	limiter *tokenBucket
	mux     *http.ServeMux

	// source is the atomically published (engine, epoch) pair behind every
	// scan, aggregate and cache read. Handlers load it exactly once per
	// request, so a concurrent SwapSource can never pair one epoch's engine
	// with another epoch's cache key. The pointer is never nil after
	// NewServer; the snapshot's src is nil until the first attach (the scan
	// routes 404 until then, like any unregistered path).
	source atomic.Pointer[sourceSnapshot]
	// swapMu serializes SwapSource/BumpEpoch so concurrent swaps cannot
	// reuse an epoch; reader loads stay lock-free.
	swapMu sync.Mutex
	// scanRoutes mounts the scan/aggregate routes at most once, on the
	// first attach.
	scanRoutes sync.Once
	// postPaths is the set of routes whose requests arrive as POSTed JSON
	// bodies (scan, aggregate, and anything mounted via AttachPost). Written
	// only during setup, before the server takes traffic.
	postPaths map[string]bool

	// The production serving layer, all nil until ConfigureServing: serving
	// is the composed middleware chain (plus /healthz and /metrics), cache
	// the query-result cache, metrics the instrument set. The cache keys
	// against the snapshot's epoch; SwapSource and BumpEpoch purge it.
	serving http.Handler
	cache   *resultCache
	metrics *serverMetrics
}

// sourceSnapshot is one published (engine, epoch) pair. Swapping the dataset
// replaces the whole snapshot behind Server.source, so an engine and the
// epoch it was published under are only ever observed together.
type sourceSnapshot struct {
	src   query.Source
	epoch uint64
}

// NewServer builds the HTTP front-end for a store.
func NewServer(store *Store) *Server {
	s := &Server{
		store:     store,
		postPaths: map[string]bool{ScanPath: true, AggregatePath: true},
	}
	s.source.Store(&sourceSnapshot{})
	if rate := store.Profile().RateLimitPerSecond; rate > 0 {
		s.limiter = newTokenBucket(rate, int(rate*2))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/info", s.handleInfo)
	mux.HandleFunc("/api/app", s.handleApp)
	mux.HandleFunc("/api/download", s.handleDownload)
	mux.HandleFunc("/api/search", s.handleSearch)
	mux.HandleFunc("/api/related", s.handleRelated)
	mux.HandleFunc("/api/index", s.handleIndex)
	mux.HandleFunc("/api/catalog", s.handleCatalog)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler. A server configured with
// ConfigureServing routes through the middleware chain; otherwise requests
// hit the routes directly (the pre-serving-layer behaviour, which the crawl
// tests rely on).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.serving != nil {
		s.serving.ServeHTTP(w, r)
		return
	}
	s.serveCore(w, r)
}

// serveCore is the innermost handler: method gate, the market profile's own
// rate limiter (modelling e.g. Google Play's APK throttling), then the
// routes. Every route is a GET except the postPaths set — /api/scan,
// /api/aggregate and any route mounted with AttachPost — whose requests
// arrive as POSTed JSON bodies (those routes also answer GETs themselves,
// e.g. the ingest cursor probe).
func (s *Server) serveCore(w http.ResponseWriter, r *http.Request) {
	postRoute := s.postPaths[r.URL.Path]
	if r.Method != http.MethodGet && !(r.Method == http.MethodPost && postRoute) {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.limiter != nil && !s.limiter.allow() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// AttachPost mounts an auxiliary handler (e.g. the ingest API) and lets
// POSTs through the method gate for that path; the handler does its own
// per-method dispatch. Like the rest of route setup it must happen before
// the server takes traffic.
func (s *Server) AttachPost(path string, h http.HandlerFunc) {
	s.postPaths[path] = true
	s.mux.HandleFunc(path, h)
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, Info{
		Name:       s.store.Name(),
		Type:       s.store.Profile().Type,
		IndexStyle: s.store.Profile().IndexStyle,
		NumApps:    s.store.Len(),
		IndexSize:  s.store.IndexSize(),
	})
}

func (s *Server) handleApp(w http.ResponseWriter, r *http.Request) {
	pkg := r.URL.Query().Get("pkg")
	if pkg == "" {
		http.Error(w, "missing pkg parameter", http.StatusBadRequest)
		return
	}
	l, ok := s.store.Get(pkg)
	if !ok {
		http.Error(w, "app not found", http.StatusNotFound)
		return
	}
	writeJSON(w, l.Meta)
}

func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	pkg := r.URL.Query().Get("pkg")
	if pkg == "" {
		http.Error(w, "missing pkg parameter", http.StatusBadRequest)
		return
	}
	apkBytes, err := s.store.APK(pkg)
	if err != nil {
		http.Error(w, "app not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/vnd.android.package-archive")
	w.Header().Set("Content-Length", strconv.Itoa(len(apkBytes)))
	_, _ = w.Write(apkBytes)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	limit := intParam(r, "limit", 20)
	writeJSON(w, s.store.SearchByName(q, limit))
}

func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	if s.store.Profile().IndexStyle != IndexRelated {
		http.Error(w, "related listing not supported by this market", http.StatusNotFound)
		return
	}
	pkg := r.URL.Query().Get("pkg")
	if pkg == "" {
		http.Error(w, "missing pkg parameter", http.StatusBadRequest)
		return
	}
	writeJSON(w, s.store.Related(pkg, intParam(r, "limit", 10)))
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if s.store.Profile().IndexStyle != IndexIncremental {
		http.Error(w, "index listing not supported by this market", http.StatusNotFound)
		return
	}
	idx := intParam(r, "i", -1)
	if idx < 0 {
		http.Error(w, "missing i parameter", http.StatusBadRequest)
		return
	}
	rec, ok := s.store.ByIndex(idx)
	if !ok {
		http.Error(w, "no app at index", http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	page := intParam(r, "page", 0)
	size := intParam(r, "size", 50)
	recs := s.store.Catalog(page, size)
	if recs == nil {
		recs = []appmeta.Record{}
	}
	writeJSON(w, recs)
}

func intParam(r *http.Request, name string, fallback int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fallback
	}
	return n
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The response is already partially written; nothing sensible can
		// be done beyond noting the failure in the status text for clients
		// that have not yet read the body.
		http.Error(w, "encoding error", http.StatusInternalServerError)
	}
}

// tokenBucket is a minimal thread-safe token-bucket rate limiter with
// refill-on-demand semantics.
type tokenBucket struct {
	mu         sync.Mutex
	capacity   float64
	tokens     float64
	refillRate float64 // tokens per second
	last       time.Time
	now        func() time.Time
}

func newTokenBucket(ratePerSecond float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{
		capacity:   float64(burst),
		tokens:     float64(burst),
		refillRate: ratePerSecond,
		last:       time.Now(),
		now:        time.Now,
	}
}

func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.refillRate
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
