package market_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"marketscope/internal/market"
	"marketscope/internal/query"
)

// TestScanEndpointUnderLoad hammers POST /api/scan with concurrent mixed
// queries — hash lookups, range scans, residual-only filters, sorts, limits
// — and requires every response to be identical to a direct Engine.Scan of
// the same query. Run under -race (the CI race job does) this also proves
// the engine's lazy column and index builds survive concurrent first
// touches behind the HTTP layer.
func TestScanEndpointUnderLoad(t *testing.T) {
	ds, srv := scanFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	src := ds.QuerySource()

	queries := []query.Query{
		{Fields: []string{"package", "market"},
			Filters: []query.Filter{{Field: "market_chinese", Op: query.OpEq, Value: true}},
			Sort:    []query.SortKey{{Field: "package"}}, Limit: 10},
		{Fields: []string{"package", "av_positives", "av_family"},
			Filters: []query.Filter{{Field: "av_positives", Op: query.OpGe, Value: 10}},
			Sort:    []query.SortKey{{Field: "av_positives", Desc: true}, {Field: "package"}}, Limit: 5},
		{Fields: []string{"package", "downloads", "rating"},
			Filters: []query.Filter{
				{Field: "downloads", Op: query.OpIsNull, Value: false},
				{Field: "rating", Op: query.OpGt, Value: 4.0}},
			Sort: []query.SortKey{{Field: "downloads", Desc: true}}, Limit: 8},
		{Fields: []string{"package", "market_category"},
			Filters: []query.Filter{{Field: "package", Op: query.OpContains, Value: "com."}}, Limit: 15},
		{Fields: []string{"package", "min_sdk"},
			Filters: []query.Filter{
				{Field: "min_sdk", Op: query.OpLe, Value: 15},
				{Field: "apk_parsed", Op: query.OpEq, Value: true}},
			Sort: []query.SortKey{{Field: "min_sdk"}, {Field: "package"}}},
		{Fields: []string{"package", "market", "category"},
			Filters: []query.Filter{{Field: "market", Op: query.OpIn,
				Value: []any{"Google Play", "Tencent Myapp", "Baidu Market"}}},
			Sort: []query.SortKey{{Field: "market"}, {Field: "package"}}, Limit: 20},
	}

	// Direct engine results, computed once; responses must match these
	// byte for byte (modulo the wall-clock field).
	type want struct {
		rowsJSON []byte
		meta     query.Meta
	}
	wants := make([]want, len(queries))
	for i, q := range queries {
		res, err := src.Scan(q)
		if err != nil {
			t.Fatalf("direct scan %d: %v", i, err)
		}
		rows, err := json.Marshal(res.Rows)
		if err != nil {
			t.Fatalf("marshal rows %d: %v", i, err)
		}
		meta := res.Meta
		meta.QueryTimeMicros = 0
		wants[i] = want{rowsJSON: rows, meta: meta}
	}

	const (
		workers   = 8
		perWorker = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perWorker; i++ {
				qi := (w + i) % len(queries)
				body, err := json.Marshal(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				resp, err := client.Post(ts.URL+market.ScanPath, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var got query.Result
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("decode query %d: %w", qi, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d", qi, resp.StatusCode)
					return
				}
				gotRows, err := json.Marshal(got.Rows)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(gotRows, wants[qi].rowsJSON) {
					errs <- fmt.Errorf("query %d: rows diverge from direct scan:\nhttp:   %s\ndirect: %s",
						qi, gotRows, wants[qi].rowsJSON)
					return
				}
				got.Meta.QueryTimeMicros = 0
				if !reflect.DeepEqual(got.Meta, wants[qi].meta) {
					errs <- fmt.Errorf("query %d: meta diverges: http %+v, direct %+v",
						qi, got.Meta, wants[qi].meta)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestScanResponseCarriesExplain pins the HTTP surface of the planner
// report: an indexed query's response must include meta.explain with the
// index that answered it.
func TestScanResponseCarriesExplain(t *testing.T) {
	_, srv := scanFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"fields":["package"],"filters":[{"field":"market_chinese","op":"==","value":true},{"field":"av_positives","op":">=","value":10}],"limit":3}`
	resp, err := http.Post(ts.URL+market.ScanPath, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var res query.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	ex := res.Meta.Explain
	if ex == nil {
		t.Fatal("response meta has no explain block")
	}
	if ex.IndexUsed == "" {
		t.Fatalf("indexed filters answered without an index: %+v", ex)
	}
	if ex.Candidates < res.Meta.TotalMatched {
		t.Fatalf("explain inconsistent: %+v vs meta %+v", ex, res.Meta)
	}
}
