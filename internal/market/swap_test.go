package market

// Regression tests for the three serving-source bugs that became real the
// moment the dataset could move (incremental ingest):
//
//  1. aggregateContext's unchecked s.scan.(query.AggregateSource) assertion
//     panicked the handler on a non-aggregating source — now a clean 501.
//  2. AttachScan's plain `s.scan = src` write raced in-flight handlers — now
//     an atomic (engine, epoch) snapshot swap (see also the -race test).
//  3. serveCached read s.epoch.Load() independently of the engine the
//     compute closure captured, so a swap between the two could cache one
//     dataset's bytes under another's epoch — now both come from one load.
//
// They are white-box (package market) so they can pin the snapshot/cache
// interaction itself, not just the HTTP surface.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"marketscope/internal/query"
)

// swapTestSource builds an engine over plain ints: enough surface to scan,
// aggregate, and tell two datasets apart by their rows.
func swapTestSource(vals ...int) query.Source {
	r := query.NewRegistry[int]()
	r.MustRegister(query.Field[int]{Name: "n", Kind: query.KindInt, Doc: "the value",
		Extract: func(x int) (any, bool) { return int64(x), true }})
	return query.NewEngine(r, vals)
}

// scanOnlySource hides every method beyond query.Source (interface embedding
// promotes only the interface's own methods), modelling a published source
// without aggregation support.
type scanOnlySource struct{ query.Source }

func newSwapServer(t *testing.T, src query.Source) *Server {
	t.Helper()
	srv := NewServer(NewStore(Profile{Name: "swap-test"}))
	srv.AttachScan(src)
	srv.ConfigureServing(ServeConfig{CacheBytes: 1 << 20})
	return srv
}

func postJSON(srv *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// decodeRows pulls the rows array out of a scan/aggregate response body.
func decodeRows(t *testing.T, body []byte) string {
	t.Helper()
	var res struct {
		Rows  json.RawMessage `json:"rows"`
		Error string          `json:"error"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("undecodable response %q: %v", body, err)
	}
	if res.Error != "" {
		t.Fatalf("error response: %s", res.Error)
	}
	return string(res.Rows)
}

// TestAggregateOnScanOnlySource501 — bug 1. A source without aggregation
// support must answer /api/aggregate with a clean 501 JSON error (the route
// exists; the capability is a property of the published source), and a later
// swap to an aggregating source must make the same request work.
func TestAggregateOnScanOnlySource501(t *testing.T) {
	srv := newSwapServer(t, scanOnlySource{swapTestSource(1, 2, 3)})

	body := `{"aggregates":[{"op":"count"}]}`
	rec := postJSON(srv, AggregatePath, body)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("aggregate on scan-only source: code %d, want %d (body %q)",
			rec.Code, http.StatusNotImplemented, rec.Body.String())
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("want a JSON error body, got %q (err %v)", rec.Body.String(), err)
	}
	// Scanning the same source still works.
	if rec := postJSON(srv, ScanPath, `{"fields":["n"]}`); rec.Code != http.StatusOK {
		t.Fatalf("scan on scan-only source: code %d, body %q", rec.Code, rec.Body.String())
	}
	// Swapping in a full engine turns the very same aggregate into a 200.
	srv.SwapSource(swapTestSource(1, 2, 3))
	if rec := postJSON(srv, AggregatePath, body); rec.Code != http.StatusOK {
		t.Fatalf("aggregate after swap to full engine: code %d, body %q", rec.Code, rec.Body.String())
	}
}

// TestSwapInvalidatesCache — bug 3, steady-state form. Before the snapshot
// swap, replacing the source via AttachScan left the epoch (and therefore
// the cache) untouched, so the old dataset's bytes kept serving under the
// new dataset. A swap must advance the epoch, purge, and recompute.
func TestSwapInvalidatesCache(t *testing.T) {
	srcA := swapTestSource(1, 2, 3)
	srcB := swapTestSource(10, 20, 30, 40, 50)
	srv := newSwapServer(t, srcA)

	const q = `{"fields":["n"]}`
	first := postJSON(srv, ScanPath, q)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first scan: code=%d X-Cache=%q", first.Code, first.Header().Get("X-Cache"))
	}
	rowsA := decodeRows(t, first.Body.Bytes())
	if hit := postJSON(srv, ScanPath, q); hit.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second scan: X-Cache=%q, want HIT", hit.Header().Get("X-Cache"))
	}

	srv.SwapSource(srcB)
	if got := srv.Epoch(); got != 1 {
		t.Fatalf("epoch after swap = %d, want 1", got)
	}
	after := postJSON(srv, ScanPath, q)
	if after.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("scan after swap: X-Cache=%q, want MISS (old epoch's entry must be unreachable)",
			after.Header().Get("X-Cache"))
	}
	if rowsB := decodeRows(t, after.Body.Bytes()); rowsB == rowsA {
		t.Fatalf("scan after swap still returns the old dataset's rows: %s", rowsB)
	}
}

// gatedSource blocks its first Scan until released, so a test can hold a
// request mid-compute while the source is swapped out from under it.
type gatedSource struct {
	inner   query.Source
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedSource) Fields() []query.FieldInfo { return g.inner.Fields() }
func (g *gatedSource) Scan(q query.Query) (*query.Result, error) {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	return g.inner.Scan(q)
}

// TestSwapMidFlightKeepsSnapshotConsistent — bug 3, forced interleaving. A
// request that loaded its (engine, epoch) snapshot before a swap must finish
// against exactly that engine, and its result must not land in (or poison)
// the new epoch's cache.
func TestSwapMidFlightKeepsSnapshotConsistent(t *testing.T) {
	gated := &gatedSource{
		inner:   swapTestSource(1, 2, 3),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	srv := newSwapServer(t, gated)
	srcB := swapTestSource(10, 20, 30, 40, 50)

	const q = `{"fields":["n"]}`
	type reply struct {
		code int
		rows string
	}
	done := make(chan reply, 1)
	go func() {
		rec := postJSON(srv, ScanPath, q)
		done <- reply{rec.Code, decodeRows(t, rec.Body.Bytes())}
	}()

	<-gated.started // the request holds its epoch-0 snapshot and is computing
	srv.SwapSource(srcB)
	close(gated.release)

	inflight := <-done
	if inflight.code != http.StatusOK {
		t.Fatalf("in-flight request: code %d", inflight.code)
	}
	wantA := decodeRows(t, mustScanBody(t, gated.inner, q))
	if inflight.rows != wantA {
		t.Fatalf("in-flight request crossed the swap: got rows %s, want the pre-swap engine's %s",
			inflight.rows, wantA)
	}

	// The stale flight must not have populated the post-swap cache: the same
	// query now misses and computes against the new engine.
	after := postJSON(srv, ScanPath, q)
	if after.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("post-swap scan: X-Cache=%q, want MISS", after.Header().Get("X-Cache"))
	}
	wantB := decodeRows(t, mustScanBody(t, srcB, q))
	if got := decodeRows(t, after.Body.Bytes()); got != wantB {
		t.Fatalf("post-swap scan rows %s, want the new engine's %s", got, wantB)
	}
	if st := srv.cache.stats(); st.Entries != 1 {
		t.Fatalf("cache holds %d entries, want exactly the new epoch's 1", st.Entries)
	}
}

// mustScanBody runs q directly against src and returns the response bytes
// the server would serve for it.
func mustScanBody(t *testing.T, src query.Source, body string) []byte {
	t.Helper()
	q, err := query.ParseQuery(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := src.Scan(q)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	b, err := encodeJSONBody(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

// TestSwapUnderConcurrentLoad — bug 2. Swap the source continuously while
// handlers hammer scan, aggregate and fields; run under -race. Every
// response must be well-formed and belong entirely to one of the two
// datasets — a torn read of (engine, epoch) would trip the race detector,
// and a mixed response would fail the row check.
func TestSwapUnderConcurrentLoad(t *testing.T) {
	srcA := swapTestSource(1, 2, 3)
	srcB := swapTestSource(10, 20, 30, 40, 50)
	srv := newSwapServer(t, srcA)

	const q = `{"fields":["n"]}`
	rowsA := decodeRows(t, mustScanBody(t, srcA, q))
	rowsB := decodeRows(t, mustScanBody(t, srcB, q))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0, 1:
					rec := postJSON(srv, ScanPath, q)
					if rec.Code != http.StatusOK {
						t.Errorf("scan under swap: code %d body %q", rec.Code, rec.Body.String())
						return
					}
					if rows := decodeRows(t, rec.Body.Bytes()); rows != rowsA && rows != rowsB {
						t.Errorf("scan under swap returned rows of neither dataset: %s", rows)
						return
					}
				case 2:
					req := httptest.NewRequest(http.MethodGet, ScanFieldsPath, nil)
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("fields under swap: code %d", rec.Code)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			srv.SwapSource(srcB)
		} else {
			srv.SwapSource(srcA)
		}
	}
	close(stop)
	wg.Wait()
	if got := srv.Epoch(); got != 200 {
		t.Fatalf("epoch after 200 swaps = %d, want 200", got)
	}
}
