package market

import (
	"compress/gzip"
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The serving middleware. Each piece is an independent http.Handler wrapper;
// ConfigureServing composes the ones the config enables, outermost first:
//
//	metrics -> panic recovery -> inflight gate -> per-client rate limit -> timeout -> gzip -> routes
//
// The gate sits outside the rate limiter so an overloaded server sheds with
// one atomic instead of taking the limiter lock, and the timeout sits inside
// the gate so a request's budget starts when it begins running, not while it
// queues (queue time is bounded anyway: slots free at the pace of running
// requests, each of which the timeout bounds).

// middleware wraps a handler with one serving concern.
type middleware func(http.Handler) http.Handler

// chainMiddleware applies mws to h so that mws[0] is the outermost layer.
func chainMiddleware(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// --- metrics ---

// statusRecorder captures the response status for the metrics layer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// metricsMiddleware counts every request, classifies its status and records
// its wall-clock latency.
func metricsMiddleware(m *serverMetrics) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			m.inflight.Add(1)
			sr := &statusRecorder{ResponseWriter: w}
			next.ServeHTTP(sr, r)
			m.inflight.Add(-1)
			m.latency.Observe(time.Since(start).Seconds())
			m.requests.Inc()
			switch status := sr.status; {
			case status >= 500:
				m.status5xx.Inc()
			case status >= 400:
				m.status4xx.Inc()
			default:
				m.status2xx.Inc()
			}
		})
	}
}

// --- panic recovery ---

// recoverMiddleware converts a handler panic into a clean 500 JSON error
// instead of letting net/http kill the connection mid-response: the stack is
// logged, serve_panics_total counts it, and the client gets a parseable body.
// It sits just inside the metrics layer so the 500 lands in the status
// counters, and writes the error only when the handler had not started a
// response (a half-written body cannot be unsent — the abort then surfaces as
// a truncated stream, which is all net/http could have offered anyway).
// http.ErrAbortHandler passes through untouched; it is the sanctioned way to
// abort deliberately.
func recoverMiddleware(m *serverMetrics) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				m.panics.Inc()
				log.Printf("market: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				if sr, ok := w.(*statusRecorder); !ok || sr.status == 0 {
					writeJSONStatus(w, http.StatusInternalServerError, scanError{Error: "internal server error"})
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// --- inflight gate ---

// inflightGate caps the number of concurrently running requests at the
// semaphore's capacity and lets at most maxQueue further requests wait for a
// slot; anything beyond that is shed immediately with 503.
type inflightGate struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
}

func newInflightGate(maxInflight, maxQueue int) *inflightGate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &inflightGate{sem: make(chan struct{}, maxInflight), maxQueue: int64(maxQueue)}
}

// inflightMiddleware admits, queues or sheds. Shedding answers 503 with
// Retry-After so well-behaved clients back off, and counts into m.shed — the
// overload signal the /metrics endpoint exposes.
func inflightMiddleware(g *inflightGate, m *serverMetrics) middleware {
	shed := func(w http.ResponseWriter) {
		m.shed.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded", http.StatusServiceUnavailable)
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case g.sem <- struct{}{}:
			default:
				// No free slot: take a queue place or shed on a full queue.
				if g.queued.Add(1) > g.maxQueue {
					g.queued.Add(-1)
					shed(w)
					return
				}
				select {
				case g.sem <- struct{}{}:
					g.queued.Add(-1)
				case <-r.Context().Done():
					g.queued.Add(-1)
					shed(w)
					return
				}
			}
			defer func() { <-g.sem }()
			next.ServeHTTP(w, r)
		})
	}
}

// --- per-client rate limit ---

// clientLimiter holds one token bucket per client key (the remote host).
// When the table exceeds maxClients it is reset wholesale: key churn then
// costs every client one refilled bucket rather than the server unbounded
// memory.
type clientLimiter struct {
	mu         sync.Mutex
	rate       float64
	burst      int
	maxClients int
	buckets    map[string]*tokenBucket
}

func newClientLimiter(ratePerSecond float64, burst int) *clientLimiter {
	if burst < 1 {
		burst = int(ratePerSecond * 2)
	}
	return &clientLimiter{
		rate:       ratePerSecond,
		burst:      burst,
		maxClients: 4096,
		buckets:    map[string]*tokenBucket{},
	}
}

func (cl *clientLimiter) allow(key string) bool {
	cl.mu.Lock()
	b, ok := cl.buckets[key]
	if !ok {
		if len(cl.buckets) >= cl.maxClients {
			cl.buckets = map[string]*tokenBucket{}
		}
		b = newTokenBucket(cl.rate, cl.burst)
		cl.buckets[key] = b
	}
	cl.mu.Unlock()
	return b.allow()
}

// clientKey buckets requests by remote host; the port changes per connection
// and must not split one client across buckets.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// rateLimitMiddleware generalizes the profile token bucket to one bucket per
// client: an aggressive client gets 429s while the rest are untouched.
func rateLimitMiddleware(cl *clientLimiter, m *serverMetrics) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !cl.allow(clientKey(r)) {
				m.rateLimited.Inc()
				w.Header().Set("Retry-After", "1")
				http.Error(w, "client rate limit exceeded", http.StatusTooManyRequests)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// --- timeout ---

// timeoutMiddleware attaches a deadline to the request context. Enforcement
// is cooperative: the context-aware engine paths stop at the next chunk
// boundary past the deadline and the scan handlers map DeadlineExceeded to
// 504, so a response is always written by the handler itself (unlike
// http.TimeoutHandler, which races the handler for the ResponseWriter).
func timeoutMiddleware(d time.Duration) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// --- gzip ---

var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// gzipResponseWriter compresses the body through a pooled gzip.Writer.
// Content-Length (if a handler set one) describes the identity encoding and
// is dropped when the compressed stream starts.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz          *gzip.Writer
	wroteHeader bool
}

func (g *gzipResponseWriter) WriteHeader(code int) {
	if !g.wroteHeader {
		g.wroteHeader = true
		g.Header().Del("Content-Length")
		g.ResponseWriter.WriteHeader(code)
	}
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	return g.gz.Write(p)
}

// gzipMiddleware compresses responses for clients that ask for it.
func gzipMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		gz := gzipPool.Get().(*gzip.Writer)
		gz.Reset(w)
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
		gw := &gzipResponseWriter{ResponseWriter: w, gz: gz}
		next.ServeHTTP(gw, r)
		_ = gz.Close()
		gzipPool.Put(gz)
	})
}
