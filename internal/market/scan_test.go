package market_test

// The scan-endpoint tests live in an external test package because they
// exercise the full integration: a real enriched analysis.Dataset served
// through a market Server (analysis imports market, so an internal test
// could not use it).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"marketscope/internal/analysis"
	"marketscope/internal/crawler"
	"marketscope/internal/market"
	"marketscope/internal/query"
	"marketscope/internal/synth"
)

var (
	scanOnce  sync.Once
	scanDS    *analysis.Dataset
	scanSrv   *market.Server
	scanStore *market.Store
	scanErr   error
)

// scanFixture builds a small enriched dataset and one market server with the
// scan engine attached. The server is an unlimited-rate store so the tests
// never trip the token bucket.
func scanFixture(t *testing.T) (*analysis.Dataset, *market.Server) {
	t.Helper()
	scanOnce.Do(func() {
		cfg := synth.SmallConfig()
		eco, err := synth.Generate(cfg)
		if err != nil {
			scanErr = err
			return
		}
		stores, err := eco.Populate()
		if err != nil {
			scanErr = err
			return
		}
		snap, err := crawler.SnapshotFromStores(stores, true, cfg.CrawlDate)
		if err != nil {
			scanErr = err
			return
		}
		ds, err := analysis.BuildDataset(snap)
		if err != nil {
			scanErr = err
			return
		}
		ds.Enrich(analysis.DefaultEnrichOptions())

		var store *market.Store
		for _, s := range stores {
			if s.Profile().RateLimitPerSecond == 0 {
				store = s
				break
			}
		}
		srv := market.NewServer(store)
		srv.AttachScan(ds.QuerySource())
		scanDS, scanSrv, scanStore = ds, srv, store
	})
	if scanErr != nil {
		t.Fatalf("scan fixture: %v", scanErr)
	}
	return scanDS, scanSrv
}

func TestScanFieldsEndpoint(t *testing.T) {
	_, srv := scanFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + market.ScanFieldsPath)
	if err != nil {
		t.Fatalf("GET fields: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET fields status = %d", resp.StatusCode)
	}
	var fr market.FieldsResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatalf("decode fields: %v", err)
	}
	if len(fr.Fields) < 30 {
		t.Fatalf("fields endpoint lists %d fields, want >= 30", len(fr.Fields))
	}
	categories := map[string]bool{}
	for _, f := range fr.Fields {
		if f.Name == "" || f.Category == "" || f.Kind == "" {
			t.Fatalf("incomplete field info: %+v", f)
		}
		categories[f.Category] = true
	}
	for _, want := range []string{"metadata", "apk", "enrichment"} {
		if !categories[want] {
			t.Errorf("category %q missing from fields listing", want)
		}
	}
}

// TestScanHTTPMatchesGoAPI executes the acceptance query — two filters, a
// two-key sort and a limit — over HTTP and through the Go API and requires
// identical rows.
func TestScanHTTPMatchesGoAPI(t *testing.T) {
	ds, srv := scanFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := query.Query{
		Fields: []string{"package", "market", "downloads", "rating"},
		Filters: []query.Filter{
			{Field: "rating", Op: query.OpGe, Value: 3.0},
			{Field: "downloads", Op: query.OpIsNull, Value: false},
		},
		Sort:  []query.SortKey{{Field: "downloads", Desc: true}, {Field: "package"}},
		Limit: 10,
	}

	direct, err := ds.QuerySource().Scan(q)
	if err != nil {
		t.Fatalf("direct scan: %v", err)
	}

	body, err := json.Marshal(q)
	if err != nil {
		t.Fatalf("marshal query: %v", err)
	}
	resp, err := http.Post(ts.URL+market.ScanPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST scan: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST scan status = %d", resp.StatusCode)
	}
	var remote query.Result
	if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
		t.Fatalf("decode result: %v", err)
	}

	if remote.Meta.TotalMatched != direct.Meta.TotalMatched ||
		remote.Meta.Returned != direct.Meta.Returned ||
		remote.Meta.Scanned != direct.Meta.Scanned {
		t.Fatalf("meta diverges: http %+v, direct %+v", remote.Meta, direct.Meta)
	}
	if len(remote.Rows) != len(direct.Rows) {
		t.Fatalf("row count diverges: http %d, direct %d", len(remote.Rows), len(direct.Rows))
	}
	directJSON, err := json.Marshal(direct.Rows)
	if err != nil {
		t.Fatalf("marshal direct rows: %v", err)
	}
	remoteJSON, err := json.Marshal(remote.Rows)
	if err != nil {
		t.Fatalf("marshal remote rows: %v", err)
	}
	if !bytes.Equal(directJSON, remoteJSON) {
		t.Fatalf("rows diverge:\nhttp:   %s\ndirect: %s", remoteJSON, directJSON)
	}
}

func TestScanEndpointErrors(t *testing.T) {
	_, srv := scanFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Unknown field -> 400 with a JSON error body.
	resp, err := http.Post(ts.URL+market.ScanPath, "application/json",
		strings.NewReader(`{"fields": ["no_such_field"]}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(e.Error, "no_such_field") {
		t.Fatalf("unknown field: status %d, error %q", resp.StatusCode, e.Error)
	}

	// Malformed JSON -> 400.
	resp, err = http.Post(ts.URL+market.ScanPath, "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// GET on the scan route -> 405.
	resp, err = http.Get(ts.URL + market.ScanPath)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET scan: status %d, want 405", resp.StatusCode)
	}

	// POST on a crawl route stays rejected.
	resp, err = http.Post(ts.URL+"/api/info", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("POST info: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/info: status %d, want 405", resp.StatusCode)
	}
}

// TestScanNotAttached checks a server without a scan source keeps 404ing the
// scan routes.
func TestScanNotAttached(t *testing.T) {
	store := market.NewStore(market.Profile{Name: "bare"})
	ts := httptest.NewServer(market.NewServer(store))
	defer ts.Close()
	resp, err := http.Post(ts.URL+market.ScanPath, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unattached scan: status %d, want 404", resp.StatusCode)
	}
}
