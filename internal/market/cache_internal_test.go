package market

// White-box tests of the result cache: LRU byte budget, eviction order,
// purge semantics and the singleflight error fallback. The server-level
// behaviour (hit byte-identity, epoch invalidation, collapse under real
// concurrent requests) is covered in the external serve tests.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func ck(epoch uint64, req string) cacheKey {
	return cacheKey{epoch: epoch, kind: "scan", req: req}
}

func mustDo(t *testing.T, c *resultCache, key cacheKey, body string) (string, bool) {
	t.Helper()
	got, hit, err := c.do(key, func() ([]byte, error) { return []byte(body), nil })
	if err != nil {
		t.Fatalf("do(%v): %v", key, err)
	}
	return string(got), hit
}

func TestCacheLRUBudget(t *testing.T) {
	// Budget fits exactly two 40-byte bodies.
	c := newResultCache(80)
	body := strings.Repeat("x", 40)

	if _, hit := mustDo(t, c, ck(0, "a"), body); hit {
		t.Fatal("first lookup of a was a hit")
	}
	if _, hit := mustDo(t, c, ck(0, "b"), body); hit {
		t.Fatal("first lookup of b was a hit")
	}
	if _, hit := mustDo(t, c, ck(0, "a"), body); !hit {
		t.Fatal("second lookup of a missed")
	}
	// Insert c: budget forces one eviction, and it must be b (a was touched
	// more recently).
	mustDo(t, c, ck(0, "c"), body)
	if _, hit := mustDo(t, c, ck(0, "a"), body); !hit {
		t.Fatal("a evicted despite being recently used")
	}
	st := c.stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats after eviction: %+v, want 2 entries / 80 bytes", st)
	}
	if st.Evictions == 0 {
		t.Fatal("no eviction recorded")
	}
	// b must have been the victim: looking it up again is a miss.
	if _, hit := mustDo(t, c, ck(0, "b"), body); hit {
		t.Fatal("b survived eviction")
	}
}

func TestCacheOversizedBodyNotCached(t *testing.T) {
	c := newResultCache(10)
	mustDo(t, c, ck(0, "big"), strings.Repeat("x", 11))
	if st := c.stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after oversized insert: %+v, want empty cache", st)
	}
	if _, hit := mustDo(t, c, ck(0, "big"), "whatever"); hit {
		t.Fatal("oversized body was cached")
	}
}

func TestCachePurge(t *testing.T) {
	c := newResultCache(1 << 10)
	mustDo(t, c, ck(0, "a"), "one")
	mustDo(t, c, ck(0, "b"), "two")
	c.purge()
	if st := c.stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after purge: %+v, want empty", st)
	}
	if _, hit := mustDo(t, c, ck(0, "a"), "one"); hit {
		t.Fatal("hit after purge")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(1 << 10)
	boom := errors.New("boom")
	if _, _, err := c.do(ck(0, "a"), func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not occupy the slot: the next lookup computes again.
	got, hit := mustDo(t, c, ck(0, "a"), "fresh")
	if hit || got != "fresh" {
		t.Fatalf("after error: got %q hit=%v, want fresh miss", got, hit)
	}
}

// TestCacheSingleflightCollapse launches many concurrent identical misses
// against a compute that blocks until every goroutine is underway, and
// counts exactly one compute.
func TestCacheSingleflightCollapse(t *testing.T) {
	c := newResultCache(1 << 10)
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() ([]byte, error) {
		computes.Add(1)
		<-release
		return []byte("answer"), nil
	}

	const callers = 16
	var started, wg sync.WaitGroup
	started.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			started.Done()
			body, _, err := c.do(ck(0, "same"), compute)
			if err != nil || string(body) != "answer" {
				t.Errorf("do: body=%q err=%v", body, err)
			}
		}()
	}
	started.Wait()
	release <- struct{}{} // the leader is inside compute; hand it the baton
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes for %d concurrent identical requests, want 1", n, callers)
	}
	st := c.stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Collapsed+st.Hits != callers-1 {
		t.Fatalf("collapsed=%d hits=%d, want %d followers accounted", st.Collapsed, st.Hits, callers-1)
	}
}

// TestCacheStaleFlightSkipsInsert pins the purge/flight race: a compute that
// finishes after a purge must not resurrect pre-purge state.
func TestCacheStaleFlightSkipsInsert(t *testing.T) {
	c := newResultCache(1 << 10)
	inCompute := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.do(ck(0, "a"), func() ([]byte, error) {
			close(inCompute)
			<-release
			return []byte("stale"), nil
		})
	}()
	<-inCompute
	c.purge() // dataset changed while the flight was computing
	close(release)
	<-done
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("stale flight inserted into purged cache: %+v", st)
	}
}

func TestCacheDistinctKeysDoNotCollapse(t *testing.T) {
	c := newResultCache(1 << 10)
	for i := 0; i < 4; i++ {
		body, hit := mustDo(t, c, ck(0, fmt.Sprintf("q%d", i)), fmt.Sprintf("body%d", i))
		if hit || body != fmt.Sprintf("body%d", i) {
			t.Fatalf("key q%d: body=%q hit=%v", i, body, hit)
		}
	}
	// Same request under a new epoch is a different key.
	if _, hit := mustDo(t, c, ck(1, "q0"), "other"); hit {
		t.Fatal("epoch-bumped key hit the old entry")
	}
}
