// Package market implements the app-store simulator: per-market profiles
// capturing the features of Table 1, an in-memory catalog store, and the
// HTTP front-end the crawler harvests.
//
// The original study crawls Google Play and 16 commercial Chinese app stores.
// Those services cannot be part of an offline reproduction, so this package
// stands in for them: each simulated market serves metadata pages, search
// results and APK downloads with the indexing style, rate limits, reporting
// quirks (default ratings, unreported install counts) and moderation
// behaviour (vetting strictness, post-hoc malware removal) attributed to the
// real store by the paper. The crawler exercises the same code paths it would
// against the real web front-ends.
//
// The package is also the dataset's serving front door: AttachScan mounts
// /api/scan and /api/aggregate over any query.Source, and ConfigureServing
// wraps the server in the production middleware stack — panic recovery,
// request IDs, concurrency limiting with queue shedding, per-request
// timeouts with cooperative query cancellation, per-client rate limits, a
// byte-identical result cache with epoch invalidation, and request metrics
// exported on /metrics via internal/metrics. The knobs live on ServeConfig;
// DefaultServeConfig is what cmd/marketsim serves with.
package market

import "sort"

// Type classifies a market by operator, following Section 2.
type Type string

// Market operator types.
const (
	TypeOfficial    Type = "Official"    // Google Play
	TypeWebCompany  Type = "Web Co."     // Tencent, Baidu, 360
	TypeVendor      Type = "HW Vendor"   // Huawei, Xiaomi, OPPO, Meizu, Lenovo
	TypeSpecialized Type = "Specialized" // 25PP, Wandoujia, ...
)

// IndexStyle describes how a market's web front-end exposes its catalog,
// which determines the crawling strategy (Section 3).
type IndexStyle string

// Index styles.
const (
	// IndexRelated exposes per-app "related apps" and "more by developer"
	// links; crawled breadth-first from seeds (Google Play).
	IndexRelated IndexStyle = "related"
	// IndexIncremental exposes apps at sequential integer positions
	// (Baidu's /software/INTEGER.html pages).
	IndexIncremental IndexStyle = "incremental"
	// IndexSearch exposes only keyword search plus category listings.
	IndexSearch IndexStyle = "search"
)

// Openness describes who may publish to the market.
type Openness string

// Openness levels (Table 1's Openness column).
const (
	OpennessOpen          Openness = "open"           // any registered developer
	OpennessCompaniesOnly Openness = "companies-only" // Lenovo MM
	OpennessPartial       Openness = "partial"        // OPPO: restricted categories
)

// Profile is everything the simulation knows about one market: the
// descriptive features of Table 1 plus the behavioural parameters the
// synthetic ecosystem generator uses to shape that market's catalog.
type Profile struct {
	Name string
	Type Type

	// Table 1 feature columns.
	Openness        Openness
	CopyrightCheck  bool
	AppVetting      bool
	SecurityCheck   bool
	HumanInspection bool
	// VettingDays is the typical inspection delay in days (0.2 ≈ hours).
	VettingDays   float64
	QualityRating bool
	// Publishing incentives (Section 2.1, item 3).
	IncentiveExclusive     bool
	IncentiveHighQuality   bool
	IncentiveEditorsChoice bool
	RequiresPrivacyPolicy  bool
	ReportsAds             bool
	ReportsIAP             bool

	// Metadata reporting quirks.
	ReportsDownloads bool
	// DefaultRating is the rating reported for apps nobody rated (PC Online
	// uses 3 instead of 0).
	DefaultRating float64
	// RequiresJiagu marks markets that force developers to repack apps with
	// an obfuscating packer before publication (360 Jiagubao).
	RequiresJiagu bool
	// MaxAPKSizeMB caps the APK size (App China: 50 MB); 0 means no cap.
	MaxAPKSizeMB int

	// Web front-end behaviour.
	IndexStyle IndexStyle
	// RateLimitPerSecond caps API requests per second (0 = unlimited).
	// Google Play's APK rate limiting is what forced the paper to fall back
	// to AndroZoo for most Google Play APKs.
	RateLimitPerSecond float64

	// Behavioural parameters for the synthetic ecosystem generator. These
	// are not observable features of the real store; they are the knobs
	// that make the generated catalog reproduce the paper's measurements.

	// CatalogWeight is the relative catalog size (proportional to Table 1's
	// app counts).
	CatalogWeight float64
	// PopularityBias (0..1) skews the catalog toward popular apps (vendor
	// stores curate; 25PP hosts a long tail of dead apps).
	PopularityBias float64
	// MalwareLaxness (0..1) is the probability that a malicious submission
	// survives vetting.
	MalwareLaxness float64
	// FakeLaxness (0..1) is the probability that a fake/cloned submission
	// survives copyright checks.
	FakeLaxness float64
	// UnratedShare is the fraction of listings with no user ratings.
	UnratedShare float64
	// StaleShare is the fraction of listings that lag behind the
	// developer's latest version.
	StaleShare float64
	// MalwareRemovalRate is the fraction of flagged malware removed between
	// the two crawls (Table 6).
	MalwareRemovalRate float64
}

// IsChinese reports whether the market is one of the 16 Chinese alternative
// stores (i.e. not Google Play).
func (p Profile) IsChinese() bool { return p.Type != TypeOfficial }

// GooglePlay is the name of the official market in every table.
const GooglePlay = "Google Play"

// profiles is the study's 17 markets. Feature columns follow Table 1;
// behavioural parameters are set so the synthetic catalogs reproduce the
// shapes reported in Sections 4-7 (see DESIGN.md for the mapping).
var profiles = []Profile{
	{
		Name: GooglePlay, Type: TypeOfficial,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 0.2, QualityRating: true,
		IncentiveExclusive: false, IncentiveHighQuality: true, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: true, ReportsAds: true, ReportsIAP: true,
		ReportsDownloads: true, IndexStyle: IndexRelated, RateLimitPerSecond: 40,
		CatalogWeight: 2.03, PopularityBias: 0.55, MalwareLaxness: 0.05, FakeLaxness: 0.02,
		UnratedShare: 0.093, StaleShare: 0.046, MalwareRemovalRate: 0.84,
	},
	{
		Name: "Tencent Myapp", Type: TypeWebCompany,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 1, QualityRating: true,
		IncentiveExclusive: true, IncentiveHighQuality: true, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.64, PopularityBias: 0.25, MalwareLaxness: 0.55, FakeLaxness: 0.5,
		UnratedShare: 0.82, StaleShare: 0.228, MalwareRemovalRate: 0.0875,
	},
	{
		Name: "Baidu Market", Type: TypeWebCompany,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: false, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: true, IncentiveHighQuality: false, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexIncremental, RateLimitPerSecond: 0,
		CatalogWeight: 0.23, PopularityBias: 0.35, MalwareLaxness: 0.6, FakeLaxness: 0.45,
		UnratedShare: 0.62, StaleShare: 0.471, MalwareRemovalRate: 0.2399,
	},
	{
		Name: "360 Market", Type: TypeWebCompany,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: false, VettingDays: 1, QualityRating: true,
		IncentiveExclusive: true, IncentiveHighQuality: true, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: true,
		ReportsDownloads: true, RequiresJiagu: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.16, PopularityBias: 0.4, MalwareLaxness: 0.58, FakeLaxness: 0.48,
		UnratedShare: 0.55, StaleShare: 0.273, MalwareRemovalRate: 0.43,
	},
	{
		Name: "OPPO Market", Type: TypeVendor,
		Openness: OpennessPartial, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: true, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.43, PopularityBias: 0.2, MalwareLaxness: 0.62, FakeLaxness: 0.42,
		UnratedShare: 0.83, StaleShare: 0.097, MalwareRemovalRate: 0.15,
	},
	{
		Name: "Xiaomi Market", Type: TypeVendor,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: false, ReportsAds: false, ReportsIAP: false,
		ReportsDownloads: false, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.091, PopularityBias: 0.6, MalwareLaxness: 0.5, FakeLaxness: 0.1,
		UnratedShare: 0.45, StaleShare: 0.334, MalwareRemovalRate: 0.325,
	},
	{
		Name: "MeiZu Market", Type: TypeVendor,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: false, ReportsAds: false, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.081, PopularityBias: 0.55, MalwareLaxness: 0.52, FakeLaxness: 0.55,
		UnratedShare: 0.5, StaleShare: 0.241, MalwareRemovalRate: 0.2918,
	},
	{
		Name: "Huawei Market", Type: TypeVendor,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 4, QualityRating: false,
		IncentiveExclusive: true, IncentiveHighQuality: true, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.051, PopularityBias: 0.75, MalwareLaxness: 0.18, FakeLaxness: 0.3,
		UnratedShare: 0.35, StaleShare: 0.309, MalwareRemovalRate: 0.2692,
	},
	{
		Name: "Lenovo MM", Type: TypeVendor,
		Openness: OpennessCompaniesOnly, CopyrightCheck: true, AppVetting: true, SecurityCheck: false,
		HumanInspection: false, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: false, ReportsAds: false, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.038, PopularityBias: 0.7, MalwareLaxness: 0.28, FakeLaxness: 0.6,
		UnratedShare: 0.4, StaleShare: 0.396, MalwareRemovalRate: 0.2275,
	},
	{
		Name: "25PP", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: false, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: true, IncentiveHighQuality: true, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 1.01, PopularityBias: 0.15, MalwareLaxness: 0.5, FakeLaxness: 0.52,
		UnratedShare: 0.85, StaleShare: 0.1, MalwareRemovalRate: 0.1963,
	},
	{
		Name: "Wandoujia", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: false, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: true, IncentiveEditorsChoice: true,
		RequiresPrivacyPolicy: false, ReportsAds: false, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.55, PopularityBias: 0.3, MalwareLaxness: 0.48, FakeLaxness: 0.4,
		UnratedShare: 0.6, StaleShare: 0.159, MalwareRemovalRate: 0.3451,
	},
	{
		Name: "HiApk", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: false, AppVetting: false, SecurityCheck: false,
		HumanInspection: false, VettingDays: 0, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: false, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.25, PopularityBias: 0.3, MalwareLaxness: 0.62, FakeLaxness: 0.64,
		UnratedShare: 0.65, StaleShare: 0.34, MalwareRemovalRate: 0.0,
	},
	{
		Name: "AnZhi Market", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: false, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.22, PopularityBias: 0.25, MalwareLaxness: 0.63, FakeLaxness: 0.5,
		UnratedShare: 0.7, StaleShare: 0.208, MalwareRemovalRate: 0.2761,
	},
	{
		Name: "LIQU", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: false, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.18, PopularityBias: 0.35, MalwareLaxness: 0.66, FakeLaxness: 0.44,
		UnratedShare: 0.6, StaleShare: 0.231, MalwareRemovalRate: 0.1408,
	},
	{
		Name: "PC Online", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: false, AppVetting: false, SecurityCheck: false,
		HumanInspection: false, VettingDays: 0, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: false, ReportsIAP: false,
		ReportsDownloads: true, DefaultRating: 3, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.135, PopularityBias: 0.1, MalwareLaxness: 0.85, FakeLaxness: 0.85,
		UnratedShare: 0.75, StaleShare: 0.336, MalwareRemovalRate: 0.0001,
	},
	{
		Name: "Sougou", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: false, VettingDays: 1, QualityRating: false,
		IncentiveExclusive: true, IncentiveHighQuality: true, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: true, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.128, PopularityBias: 0.2, MalwareLaxness: 0.72, FakeLaxness: 0.8,
		UnratedShare: 0.68, StaleShare: 0.275, MalwareRemovalRate: 0.2424,
	},
	{
		Name: "App China", Type: TypeSpecialized,
		Openness: OpennessOpen, CopyrightCheck: true, AppVetting: true, SecurityCheck: true,
		HumanInspection: true, VettingDays: 2, QualityRating: false,
		IncentiveExclusive: false, IncentiveHighQuality: false, IncentiveEditorsChoice: false,
		RequiresPrivacyPolicy: false, ReportsAds: true, ReportsIAP: false,
		ReportsDownloads: false, MaxAPKSizeMB: 50, IndexStyle: IndexSearch, RateLimitPerSecond: 0,
		CatalogWeight: 0.042, PopularityBias: 0.3, MalwareLaxness: 0.68, FakeLaxness: 0.12,
		UnratedShare: 0.66, StaleShare: 0.227, MalwareRemovalRate: 0.2051,
	},
}

// Profiles returns the 17 market profiles of the study, Google Play first and
// the Chinese markets in Table 1 order.
func Profiles() []Profile {
	return append([]Profile(nil), profiles...)
}

// ProfileByName looks up a profile by market name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// MarketNames returns the market names, Google Play first.
func MarketNames() []string {
	out := make([]string, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, p.Name)
	}
	return out
}

// ChineseMarketNames returns the names of the 16 Chinese markets sorted
// alphabetically.
func ChineseMarketNames() []string {
	var out []string
	for _, p := range profiles {
		if p.IsChinese() {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// NumMarkets returns the number of markets in the study (17).
func NumMarkets() int { return len(profiles) }
