package market_test

// The per-handler stress suite: every API route hammered by concurrent
// workers through the full production serving chain (cache, inflight gate,
// timeout, gzip), each response compared against the direct Go-API answer.
// Run under -race (the CI race job does) this is the proof that the serving
// layer neither corrupts nor reorders anything under concurrency.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"marketscope/internal/market"
	"marketscope/internal/query"
)

var (
	servingOnce sync.Once
	servingSrv  *market.Server
)

// servingFixture is scanFixture's dataset behind a second server configured
// with the full serving layer: result cache, inflight gate, per-request
// timeout and gzip (no per-client rate limit — the stress workers would trip
// it by design).
func servingFixture(t *testing.T) *market.Server {
	t.Helper()
	_, _ = scanFixture(t) // populates scanDS/scanStore
	servingOnce.Do(func() {
		srv := market.NewServer(scanStore)
		srv.AttachScan(scanDS.QuerySource())
		cfg := market.DefaultServeConfig()
		cfg.Timeout = 30 * time.Second
		srv.ConfigureServing(cfg)
		servingSrv = srv
	})
	return servingSrv
}

// normalizeScanBody decodes a scan/aggregate response and re-marshals it
// with the wall-clock field zeroed, so executions of different speed compare
// equal while everything else stays byte-compared.
func normalizeScanBody(t *testing.T, body []byte) []byte {
	t.Helper()
	var res query.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode scan result: %v (body %.200s)", err, body)
	}
	res.Meta.QueryTimeMicros = 0
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHandlersUnderLoad(t *testing.T) {
	srv := servingFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	src := scanDS.QuerySource()
	pkg := scanStore.Catalog(0, 1)[0].Package

	scanQ := query.Query{
		Fields:  []string{"package", "market", "av_positives"},
		Filters: []query.Filter{{Field: "av_positives", Op: query.OpGe, Value: 5}},
		Sort:    []query.SortKey{{Field: "av_positives", Desc: true}, {Field: "package"}},
		Limit:   10,
	}
	aggQ := query.Aggregate{
		GroupBy:    []string{"market"},
		Aggregates: []query.AggSpec{{Op: query.AggCount}, {Op: query.AggMean, Field: "rating"}},
		Sort:       []query.SortKey{{Field: "count", Desc: true}},
	}
	scanBody, err := json.Marshal(scanQ)
	if err != nil {
		t.Fatal(err)
	}
	aggBody, err := json.Marshal(aggQ)
	if err != nil {
		t.Fatal(err)
	}

	// Direct Go-API answers, computed once up front.
	scanRes, err := src.Scan(scanQ)
	if err != nil {
		t.Fatal(err)
	}
	aggRes, err := src.(query.AggregateSource).Aggregate(aggQ)
	if err != nil {
		t.Fatal(err)
	}
	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// GET handlers write through json.Encoder, which appends a newline.
	marshalBody := func(v any) []byte { return append(marshal(v), '\n') }
	scanRes.Meta.QueryTimeMicros = 0
	aggRes.Meta.QueryTimeMicros = 0
	appListing, ok := scanStore.Get(pkg)
	if !ok {
		t.Fatalf("fixture package %q missing", pkg)
	}

	cases := []struct {
		name   string
		method string
		url    string
		body   []byte
		// want is the exact expected response body; normalize (when set)
		// maps the received body into want's shape first.
		want      []byte
		normalize func(*testing.T, []byte) []byte
	}{
		{name: "scan", method: http.MethodPost, url: market.ScanPath, body: scanBody,
			want: marshal(scanRes), normalize: normalizeScanBody},
		{name: "aggregate", method: http.MethodPost, url: market.AggregatePath, body: aggBody,
			want: marshal(aggRes), normalize: normalizeScanBody},
		{name: "app", method: http.MethodGet, url: "/api/app?pkg=" + pkg,
			want: marshalBody(appListing.Meta)},
		{name: "search", method: http.MethodGet, url: "/api/search?q=a&limit=10",
			want: marshalBody(scanStore.SearchByName("a", 10))},
		{name: "catalog", method: http.MethodGet, url: "/api/catalog?page=0&size=25",
			want: marshalBody(scanStore.Catalog(0, 25))},
	}

	const (
		workers   = 8
		perWorker = 25
	)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := ts.Client()
					for i := 0; i < perWorker; i++ {
						req, err := http.NewRequest(tc.method, ts.URL+tc.url, bytes.NewReader(tc.body))
						if err != nil {
							errs <- err
							return
						}
						resp, err := client.Do(req)
						if err != nil {
							errs <- err
							return
						}
						body, err := io.ReadAll(resp.Body)
						resp.Body.Close()
						if err != nil {
							errs <- err
							return
						}
						if resp.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("iteration %d: status %d (%.200s)", i, resp.StatusCode, body)
							return
						}
						got := body
						if tc.normalize != nil {
							got = tc.normalize(t, body)
						}
						if !bytes.Equal(got, tc.want) {
							errs <- fmt.Errorf("iteration %d: response diverges from direct call:\nhttp:   %.300s\ndirect: %.300s",
								i, got, tc.want)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
