package market

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"marketscope/internal/query"
)

// Scan endpoint routes.
const (
	ScanPath       = "/api/scan"
	ScanFieldsPath = "/api/scan/fields"
	AggregatePath  = "/api/aggregate"
)

// FieldsResponse is the body of GET /api/scan/fields: every registered field
// grouped under a single key so the schema can grow without breaking
// clients.
type FieldsResponse struct {
	Fields []query.FieldInfo `json:"fields"`
}

// scanError is the JSON error body of a rejected scan.
type scanError struct {
	Error string `json:"error"`
}

// AttachScan mounts the dataset query engine on the server:
//
//	POST /api/scan          execute one JSON query, returns query.Result
//	GET  /api/scan/fields   list the registered fields with categories
//	POST /api/aggregate     execute one grouped aggregation (group_by /
//	                        aggregates / filters / sort / limit), returns
//	                        query.Result with one row per group
//
// Scan and aggregate responses carry the planner's execution report in
// meta.explain (index used, candidate rows, residual rows evaluated), so
// HTTP clients can see whether their filters hit the secondary indexes.
// /api/aggregate is mounted when the source implements
// query.AggregateSource (the dataset engine does).
//
// The source is typically analysis.(*Dataset).QuerySource() built from a
// crawl of this very market set. Scans are read-only and safe under the
// server's concurrency; the rate limiter applies to scan requests exactly as
// it does to crawl requests.
func (s *Server) AttachScan(src query.Source) {
	s.scan = src
	s.mux.HandleFunc(ScanPath, s.handleScan)
	s.mux.HandleFunc(ScanFieldsPath, s.handleScanFields)
	if _, ok := src.(query.AggregateSource); ok {
		s.mux.HandleFunc(AggregatePath, s.handleAggregate)
	}
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "scan queries are POSTed as JSON"})
		return
	}
	q, err := query.ParseQuery(r.Body)
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, scanError{Error: err.Error()})
		return
	}
	s.serveCached(w, "scan", q, func() ([]byte, error) {
		res, err := s.scanContext(r.Context(), q)
		if err != nil {
			return nil, err
		}
		return encodeJSONBody(res)
	})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "aggregations are POSTed as JSON"})
		return
	}
	a, err := query.ParseAggregate(r.Body)
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, scanError{Error: err.Error()})
		return
	}
	s.serveCached(w, "aggregate", a, func() ([]byte, error) {
		res, err := s.aggregateContext(r.Context(), a)
		if err != nil {
			return nil, err
		}
		return encodeJSONBody(res)
	})
}

// scanContext runs the scan under the request context when the source
// supports cancellation, falling back to the plain call otherwise.
func (s *Server) scanContext(ctx context.Context, q query.Query) (*query.Result, error) {
	if cs, ok := s.scan.(query.ContextSource); ok {
		return cs.ScanContext(ctx, q)
	}
	return s.scan.Scan(q)
}

func (s *Server) aggregateContext(ctx context.Context, a query.Aggregate) (*query.Result, error) {
	src := s.scan.(query.AggregateSource)
	if cs, ok := src.(query.ContextAggregateSource); ok {
		return cs.AggregateContext(ctx, a)
	}
	return src.Aggregate(a)
}

// serveCached answers a scan/aggregate request through the result cache when
// one is configured. The cache key is the canonical request — the parsed
// struct re-marshalled, so JSON surface differences (whitespace, key order)
// land on the same entry — under the current dataset epoch; the cached value
// is the exact byte body of the first execution, so a hit is byte-identical
// to the miss that populated it. Without a cache the request computes and
// writes directly, exactly the pre-cache behaviour.
func (s *Server) serveCached(w http.ResponseWriter, kind string, req any, compute func() ([]byte, error)) {
	if s.cache == nil {
		body, err := compute()
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		return
	}
	canonical, err := json.Marshal(req)
	if err != nil {
		writeJSONStatus(w, http.StatusInternalServerError, scanError{Error: err.Error()})
		return
	}
	key := cacheKey{epoch: s.epoch.Load(), kind: kind, req: string(canonical)}
	body, hit, err := s.cache.do(key, compute)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	label := "MISS"
	if hit {
		label = "HIT"
	}
	if s.metrics != nil {
		if hit {
			s.metrics.cacheHits.Inc()
		} else {
			s.metrics.cacheMisses.Inc()
		}
	}
	w.Header().Set("X-Cache", label)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// writeQueryError maps an engine error onto a status: malformed requests are
// the client's fault (400), an exceeded deadline is the server giving up
// (504), a cancelled context means the client is gone or the server is
// closing (503), anything else is a 500.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		if s.metrics != nil {
			s.metrics.timeouts.Inc()
		}
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.Is(err, query.ErrUnknownField), errors.Is(err, query.ErrBadOp),
		errors.Is(err, query.ErrBadValue), errors.Is(err, query.ErrBadLimit),
		errors.Is(err, query.ErrBadAggregate):
		status = http.StatusBadRequest
	}
	writeJSONStatus(w, status, scanError{Error: err.Error()})
}

// encodeJSONBody marshals v exactly as writeJSONBody's json.Encoder does
// (same escaping, same trailing newline), so cached bytes replayed on a hit
// are indistinguishable from a freshly encoded response.
func encodeJSONBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleScanFields(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "field listing is a GET"})
		return
	}
	writeJSON(w, FieldsResponse{Fields: s.scan.Fields()})
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, v)
}
