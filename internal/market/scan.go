package market

import (
	"errors"
	"net/http"

	"marketscope/internal/query"
)

// Scan endpoint routes.
const (
	ScanPath       = "/api/scan"
	ScanFieldsPath = "/api/scan/fields"
	AggregatePath  = "/api/aggregate"
)

// FieldsResponse is the body of GET /api/scan/fields: every registered field
// grouped under a single key so the schema can grow without breaking
// clients.
type FieldsResponse struct {
	Fields []query.FieldInfo `json:"fields"`
}

// scanError is the JSON error body of a rejected scan.
type scanError struct {
	Error string `json:"error"`
}

// AttachScan mounts the dataset query engine on the server:
//
//	POST /api/scan          execute one JSON query, returns query.Result
//	GET  /api/scan/fields   list the registered fields with categories
//	POST /api/aggregate     execute one grouped aggregation (group_by /
//	                        aggregates / filters / sort / limit), returns
//	                        query.Result with one row per group
//
// Scan and aggregate responses carry the planner's execution report in
// meta.explain (index used, candidate rows, residual rows evaluated), so
// HTTP clients can see whether their filters hit the secondary indexes.
// /api/aggregate is mounted when the source implements
// query.AggregateSource (the dataset engine does).
//
// The source is typically analysis.(*Dataset).QuerySource() built from a
// crawl of this very market set. Scans are read-only and safe under the
// server's concurrency; the rate limiter applies to scan requests exactly as
// it does to crawl requests.
func (s *Server) AttachScan(src query.Source) {
	s.scan = src
	s.mux.HandleFunc(ScanPath, s.handleScan)
	s.mux.HandleFunc(ScanFieldsPath, s.handleScanFields)
	if _, ok := src.(query.AggregateSource); ok {
		s.mux.HandleFunc(AggregatePath, s.handleAggregate)
	}
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "scan queries are POSTed as JSON"})
		return
	}
	q, err := query.ParseQuery(r.Body)
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, scanError{Error: err.Error()})
		return
	}
	res, err := s.scan.Scan(q)
	if err != nil {
		status := http.StatusBadRequest
		if !errors.Is(err, query.ErrUnknownField) && !errors.Is(err, query.ErrBadOp) &&
			!errors.Is(err, query.ErrBadValue) && !errors.Is(err, query.ErrBadLimit) {
			status = http.StatusInternalServerError
		}
		writeJSONStatus(w, status, scanError{Error: err.Error()})
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "aggregations are POSTed as JSON"})
		return
	}
	a, err := query.ParseAggregate(r.Body)
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, scanError{Error: err.Error()})
		return
	}
	res, err := s.scan.(query.AggregateSource).Aggregate(a)
	if err != nil {
		status := http.StatusBadRequest
		if !errors.Is(err, query.ErrUnknownField) && !errors.Is(err, query.ErrBadOp) &&
			!errors.Is(err, query.ErrBadValue) && !errors.Is(err, query.ErrBadLimit) &&
			!errors.Is(err, query.ErrBadAggregate) {
			status = http.StatusInternalServerError
		}
		writeJSONStatus(w, status, scanError{Error: err.Error()})
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleScanFields(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "field listing is a GET"})
		return
	}
	writeJSON(w, FieldsResponse{Fields: s.scan.Fields()})
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, v)
}
