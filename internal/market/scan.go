package market

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"marketscope/internal/query"
)

// Scan endpoint routes.
const (
	ScanPath       = "/api/scan"
	ScanFieldsPath = "/api/scan/fields"
	AggregatePath  = "/api/aggregate"
)

// FieldsResponse is the body of GET /api/scan/fields: every registered field
// grouped under a single key so the schema can grow without breaking
// clients.
type FieldsResponse struct {
	Fields []query.FieldInfo `json:"fields"`
}

// scanError is the JSON error body of a rejected scan.
type scanError struct {
	Error string `json:"error"`
}

// AttachScan mounts the dataset query engine on the server:
//
//	POST /api/scan          execute one JSON query, returns query.Result
//	GET  /api/scan/fields   list the registered fields with categories
//	POST /api/aggregate     execute one grouped aggregation (group_by /
//	                        aggregates / filters / sort / limit), returns
//	                        query.Result with one row per group
//
// Scan and aggregate responses carry the planner's execution report in
// meta.explain (index used, candidate rows, residual rows evaluated), so
// HTTP clients can see whether their filters hit the secondary indexes.
// /api/aggregate is always mounted; a source that does not implement
// query.AggregateSource (the dataset engine does) answers it with a clean
// 501 instead of the route not existing — whether aggregation works is a
// property of the currently published source, not of mount time.
//
// The source is typically analysis.(*Dataset).QuerySource() built from a
// crawl of this very market set. Scans are read-only and safe under the
// server's concurrency; the rate limiter applies to scan requests exactly as
// it does to crawl requests. AttachScan is SwapSource: calling it again
// (directly, or through an ingest publish) atomically swaps the live source.
func (s *Server) AttachScan(src query.Source) { s.SwapSource(src) }

// SwapSource atomically publishes a new dataset engine. The (engine, epoch)
// pair is replaced behind one pointer — a swap after the first attach
// advances the epoch and purges the result cache — so every in-flight
// request keeps computing, and caching, against the exact snapshot it loaded:
// readers never block, and no request can observe the new engine under the
// old epoch or vice versa. The first attach keeps epoch 0, matching the
// behaviour of a server whose dataset never moves.
func (s *Server) SwapSource(src query.Source) {
	if src == nil {
		panic("market: SwapSource with a nil source")
	}
	s.scanRoutes.Do(func() {
		s.mux.HandleFunc(ScanPath, s.handleScan)
		s.mux.HandleFunc(ScanFieldsPath, s.handleScanFields)
		s.mux.HandleFunc(AggregatePath, s.handleAggregate)
	})
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.source.Load()
	next := &sourceSnapshot{src: src, epoch: cur.epoch}
	if cur.src != nil {
		next.epoch++
	}
	s.source.Store(next)
	if cur.src != nil && s.cache != nil {
		s.cache.purge()
	}
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "scan queries are POSTed as JSON"})
		return
	}
	q, err := query.ParseQuery(r.Body)
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, scanError{Error: err.Error()})
		return
	}
	snap := s.source.Load()
	s.serveCached(w, snap, "scan", q, func() ([]byte, error) {
		res, err := scanContext(snap.src, r.Context(), q)
		if err != nil {
			return nil, err
		}
		return encodeJSONBody(res)
	})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "aggregations are POSTed as JSON"})
		return
	}
	a, err := query.ParseAggregate(r.Body)
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, scanError{Error: err.Error()})
		return
	}
	snap := s.source.Load()
	agg, ok := snap.src.(query.AggregateSource)
	if !ok {
		// A checked refusal, not an unchecked assertion: a published source
		// without aggregation support answers 501 instead of panicking the
		// handler goroutine.
		writeJSONStatus(w, http.StatusNotImplemented,
			scanError{Error: "the attached source does not support aggregation"})
		return
	}
	s.serveCached(w, snap, "aggregate", a, func() ([]byte, error) {
		res, err := aggregateContext(agg, r.Context(), a)
		if err != nil {
			return nil, err
		}
		return encodeJSONBody(res)
	})
}

// scanContext runs the scan under the request context when the source
// supports cancellation, falling back to the plain call otherwise. It takes
// the source explicitly — always the one from the caller's snapshot — so a
// swap mid-request cannot change which engine answers.
func scanContext(src query.Source, ctx context.Context, q query.Query) (*query.Result, error) {
	if cs, ok := src.(query.ContextSource); ok {
		return cs.ScanContext(ctx, q)
	}
	return src.Scan(q)
}

func aggregateContext(src query.AggregateSource, ctx context.Context, a query.Aggregate) (*query.Result, error) {
	if cs, ok := src.(query.ContextAggregateSource); ok {
		return cs.AggregateContext(ctx, a)
	}
	return src.Aggregate(a)
}

// serveCached answers a scan/aggregate request through the result cache when
// one is configured. The cache key is the canonical request — the parsed
// struct re-marshalled, so JSON surface differences (whitespace, key order)
// land on the same entry — under the epoch of the snapshot the handler
// loaded. The epoch and the engine the compute closure runs against come
// from that one atomic load, so a swap mid-request can never cache one
// epoch's bytes under another epoch's key (the purge generation guard
// additionally drops inserts from flights that started before a swap). The
// cached value is the exact byte body of the first execution, so a hit is
// byte-identical to the miss that populated it. Without a cache the request
// computes and writes directly, exactly the pre-cache behaviour.
func (s *Server) serveCached(w http.ResponseWriter, snap *sourceSnapshot, kind string, req any, compute func() ([]byte, error)) {
	if s.cache == nil {
		body, err := compute()
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		return
	}
	canonical, err := json.Marshal(req)
	if err != nil {
		writeJSONStatus(w, http.StatusInternalServerError, scanError{Error: err.Error()})
		return
	}
	key := cacheKey{epoch: snap.epoch, kind: kind, req: string(canonical)}
	body, hit, err := s.cache.do(key, compute)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	label := "MISS"
	if hit {
		label = "HIT"
	}
	if s.metrics != nil {
		if hit {
			s.metrics.cacheHits.Inc()
		} else {
			s.metrics.cacheMisses.Inc()
		}
	}
	w.Header().Set("X-Cache", label)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// writeQueryError maps an engine error onto a status: malformed requests are
// the client's fault (400), an exceeded deadline is the server giving up
// (504), a cancelled context means the client is gone or the server is
// closing (503), a degraded paged engine — page budget exhausted by
// concurrent working sets, or a column fetch that failed past its retries —
// is a 503 with Retry-After (the corpus is intact on disk; the request is
// worth repeating), anything else is a 500.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		if s.metrics != nil {
			s.metrics.timeouts.Inc()
		}
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.Is(err, query.ErrPageBudget), errors.Is(err, query.ErrPageUnavailable):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		if s.metrics != nil {
			s.metrics.pagedDegraded.Inc()
		}
	case errors.Is(err, query.ErrUnknownField), errors.Is(err, query.ErrBadOp),
		errors.Is(err, query.ErrBadValue), errors.Is(err, query.ErrBadLimit),
		errors.Is(err, query.ErrBadAggregate):
		status = http.StatusBadRequest
	}
	writeJSONStatus(w, status, scanError{Error: err.Error()})
}

// encodeJSONBody marshals v exactly as writeJSONBody's json.Encoder does
// (same escaping, same trailing newline), so cached bytes replayed on a hit
// are indistinguishable from a freshly encoded response.
func encodeJSONBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleScanFields(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSONStatus(w, http.StatusMethodNotAllowed, scanError{Error: "field listing is a GET"})
		return
	}
	writeJSON(w, FieldsResponse{Fields: s.source.Load().src.Fields()})
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, v)
}
