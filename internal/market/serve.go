package market

import (
	"net/http"
	"time"

	"marketscope/internal/metrics"
)

// The production serving layer: ConfigureServing wraps the bare route handler
// in the middleware chain, attaches the query-result cache and mounts the
// operational endpoints. An unconfigured server behaves exactly as before —
// every knob here is opt-in.

// Operational endpoint routes. They sit outside the middleware chain: a
// health probe must answer while the server sheds load, and a metrics scrape
// must not count itself into the request metrics it reports.
const (
	HealthPath  = "/healthz"
	MetricsPath = "/metrics"
)

// ServeConfig are the serving knobs. Zero values disable the corresponding
// layer, so ServeConfig{} configures a server that behaves like an
// unconfigured one (plus the operational endpoints).
type ServeConfig struct {
	// CacheBytes is the query-result cache budget in bytes; 0 disables the
	// cache.
	CacheBytes int64
	// Timeout bounds each request's execution; 0 means no deadline.
	Timeout time.Duration
	// MaxInflight caps concurrently running requests; 0 means unlimited.
	MaxInflight int
	// MaxQueue is how many requests may wait for an inflight slot before the
	// server sheds with 503. Only meaningful with MaxInflight > 0.
	MaxQueue int
	// RatePerSecond is the per-client request budget; 0 disables the
	// per-client limiter. (The market profile's global limiter, when the
	// profile sets one, applies regardless — it models the market's own
	// throttling, not the server's protection.)
	RatePerSecond float64
	// Burst is the per-client bucket depth; 0 derives 2x RatePerSecond.
	Burst int
	// Gzip enables response compression for clients that accept it.
	Gzip bool
}

// DefaultServeConfig returns the knobs marketsim serves with.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		CacheBytes:  8 << 20,
		Timeout:     5 * time.Second,
		MaxInflight: 64,
		MaxQueue:    128,
		Gzip:        true,
	}
}

// serverMetrics is the instrument set behind /metrics and ServingStats.
type serverMetrics struct {
	reg           *metrics.Registry
	requests      *metrics.Counter
	status2xx     *metrics.Counter
	status4xx     *metrics.Counter
	status5xx     *metrics.Counter
	rateLimited   *metrics.Counter
	shed          *metrics.Counter
	timeouts      *metrics.Counter
	panics        *metrics.Counter
	pagedDegraded *metrics.Counter
	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	inflight      *metrics.Gauge
	latency       *metrics.Histogram
	started       time.Time
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:           reg,
		requests:      reg.Counter("market_http_requests_total", "Requests served, any status."),
		status2xx:     reg.Counter("market_http_responses_2xx_total", "Successful responses."),
		status4xx:     reg.Counter("market_http_responses_4xx_total", "Client-error responses (including 429)."),
		status5xx:     reg.Counter("market_http_responses_5xx_total", "Server-error responses (including sheds and timeouts)."),
		rateLimited:   reg.Counter("market_http_rate_limited_total", "Requests rejected by the per-client rate limiter."),
		shed:          reg.Counter("market_http_shed_total", "Requests shed by the inflight gate."),
		timeouts:      reg.Counter("market_http_timeouts_total", "Requests that exceeded their execution deadline."),
		panics:        reg.Counter("serve_panics_total", "Handler panics recovered into clean 500 responses."),
		pagedDegraded: reg.Counter("market_paged_degraded_total", "Requests answered 503 because the paged engine could not pin its working set."),
		cacheHits:     reg.Counter("market_cache_hits_total", "Scan/aggregate responses served from the result cache."),
		cacheMisses:   reg.Counter("market_cache_misses_total", "Scan/aggregate responses that ran the engine."),
		inflight:      reg.Gauge("market_http_inflight", "Requests currently inside the serving chain."),
		started:       time.Now(),
	}
	m.latency = reg.Histogram("market_http_request_seconds",
		"Request wall-clock latency.", metrics.DefaultLatencyBounds())
	reg.GaugeFunc("market_http_qps", "Requests per second over the server's uptime.", func() float64 {
		up := time.Since(m.started).Seconds()
		if up <= 0 {
			return 0
		}
		return float64(m.requests.Value()) / up
	})
	reg.GaugeFunc("market_cache_hit_ratio", "Cache hits over cache lookups.", func() float64 {
		h, miss := m.cacheHits.Value(), m.cacheMisses.Value()
		if h+miss == 0 {
			return 0
		}
		return float64(h) / float64(h+miss)
	})
	reg.GaugeFunc("market_cache_bytes", "Bytes held by the result cache.", func() float64 {
		if s.cache == nil {
			return 0
		}
		return float64(s.cache.stats().Bytes)
	})
	reg.GaugeFunc("market_cache_entries", "Entries held by the result cache.", func() float64 {
		if s.cache == nil {
			return 0
		}
		return float64(s.cache.stats().Entries)
	})
	reg.GaugeFunc("market_dataset_epoch", "Dataset epoch the cache keys against.", func() float64 {
		return float64(s.Epoch())
	})
	return m
}

// ConfigureServing builds the middleware chain from cfg and mounts /healthz
// and /metrics. It must be called before the server takes traffic (it is not
// synchronized against in-flight requests); calling it twice replaces the
// previous configuration.
func (s *Server) ConfigureServing(cfg ServeConfig) {
	s.cache = nil
	if cfg.CacheBytes > 0 {
		s.cache = newResultCache(cfg.CacheBytes)
	}
	s.metrics = newServerMetrics(s)

	mws := []middleware{metricsMiddleware(s.metrics), recoverMiddleware(s.metrics)}
	if cfg.MaxInflight > 0 {
		mws = append(mws, inflightMiddleware(newInflightGate(cfg.MaxInflight, cfg.MaxQueue), s.metrics))
	}
	if cfg.RatePerSecond > 0 {
		mws = append(mws, rateLimitMiddleware(newClientLimiter(cfg.RatePerSecond, cfg.Burst), s.metrics))
	}
	if cfg.Timeout > 0 {
		mws = append(mws, timeoutMiddleware(cfg.Timeout))
	}
	if cfg.Gzip {
		mws = append(mws, gzipMiddleware)
	}
	chained := chainMiddleware(http.HandlerFunc(s.serveCore), mws...)
	s.serving = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case HealthPath:
			s.handleHealthz(w, r)
		case MetricsPath:
			s.handleMetrics(w, r)
		default:
			chained.ServeHTTP(w, r)
		}
	})
}

// BumpEpoch declares the current source's dataset changed in place: the
// epoch advances (new cache keys) and the cache purges. Since ingest swaps
// whole engines, the epoch normally advances inside SwapSource — one atomic
// publish of (engine, epoch) together — and BumpEpoch remains only for
// callers that mutate the data behind an already-attached source (the
// benchmark harness does; production ingest never does).
func (s *Server) BumpEpoch() {
	s.swapMu.Lock()
	cur := s.source.Load()
	s.source.Store(&sourceSnapshot{src: cur.src, epoch: cur.epoch + 1})
	s.swapMu.Unlock()
	if s.cache != nil {
		s.cache.purge()
	}
}

// Epoch returns the current dataset epoch.
func (s *Server) Epoch() uint64 { return s.source.Load().epoch }

// MetricsRegistry exposes the registry behind /metrics so other subsystems
// (the durable store, for one) can publish gauges alongside the serving
// metrics. Nil before ConfigureServing.
func (s *Server) MetricsRegistry() *metrics.Registry {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.reg
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status string `json:"status"`
	Market string `json:"market"`
	Apps   int    `json:"apps"`
	Epoch  uint64 `json:"epoch"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, healthResponse{
		Status: "ok",
		Market: s.store.Name(),
		Apps:   s.store.Len(),
		Epoch:  s.Epoch(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// ServingStats is a point-in-time snapshot of the serving counters, for the
// report renderer and for tests that assert on served traffic.
type ServingStats struct {
	Requests    int64
	RateLimited int64
	Shed        int64
	Timeouts    int64
	Panics      int64
	CacheHits   int64
	CacheMisses int64
	CacheBytes  int64
	CacheCount  int
	HitRate     float64
	P50         time.Duration
	P99         time.Duration
}

// ServingStats snapshots the configured server's counters; the zero value is
// returned before ConfigureServing.
func (s *Server) ServingStats() ServingStats {
	if s.metrics == nil {
		return ServingStats{}
	}
	st := ServingStats{
		Requests:    s.metrics.requests.Value(),
		RateLimited: s.metrics.rateLimited.Value(),
		Shed:        s.metrics.shed.Value(),
		Timeouts:    s.metrics.timeouts.Value(),
		Panics:      s.metrics.panics.Value(),
		CacheHits:   s.metrics.cacheHits.Value(),
		CacheMisses: s.metrics.cacheMisses.Value(),
		P50:         time.Duration(s.metrics.latency.Quantile(0.50) * float64(time.Second)),
		P99:         time.Duration(s.metrics.latency.Quantile(0.99) * float64(time.Second)),
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.HitRate = float64(st.CacheHits) / float64(lookups)
	}
	if s.cache != nil {
		cs := s.cache.stats()
		st.CacheBytes, st.CacheCount = cs.Bytes, cs.Entries
	}
	return st
}
