package market_test

// Panic-recovery tests: a scan source that panics mid-handler must come back
// as a clean 500 JSON error counted in serve_panics_total, with the server
// alive and serving afterwards — net/http's default (kill the connection)
// would surface to clients as an unparseable dropped response.

import (
	"net/http"
	"strings"
	"testing"

	"marketscope/internal/market"
	"marketscope/internal/query"
)

// panicSource explodes on every scan, modeling a latent engine bug.
type panicSource struct{}

func (panicSource) Fields() []query.FieldInfo { return nil }

func (panicSource) Scan(query.Query) (*query.Result, error) {
	panic("scan exploded")
}

func panicFixture(t *testing.T) *market.Server {
	t.Helper()
	srv := market.NewServer(market.NewStore(market.Profile{Name: "panic"}))
	srv.AttachScan(panicSource{})
	srv.ConfigureServing(market.ServeConfig{})
	return srv
}

func TestPanicRecoveredAsCleanError(t *testing.T) {
	srv := panicFixture(t)

	rec := injectRequest(t, srv, http.MethodPost, market.ScanPath, []byte(`{}`), nil)
	requireJSONError(t, rec, http.StatusInternalServerError)
	if st := srv.ServingStats(); st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}

	// The server survived: the health probe answers and a second panic is
	// recovered the same way.
	if rec := injectRequest(t, srv, http.MethodGet, market.HealthPath, nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", rec.Code)
	}
	rec = injectRequest(t, srv, http.MethodPost, market.ScanPath, []byte(`{}`), nil)
	requireJSONError(t, rec, http.StatusInternalServerError)
	if st := srv.ServingStats(); st.Panics != 2 {
		t.Fatalf("Panics = %d, want 2", st.Panics)
	}

	mrec := injectRequest(t, srv, http.MethodGet, market.MetricsPath, nil, nil)
	if mrec.Code != http.StatusOK || !strings.Contains(mrec.Body.String(), "serve_panics_total 2") {
		t.Fatalf("metrics after panics: %d %.300s", mrec.Code, mrec.Body.String())
	}
}

// TestPanicCountsIntoStatusMetrics pins that the recovered 500 flows through
// the status counters like any other server error (recovery sits inside the
// metrics layer).
func TestPanicCountsIntoStatusMetrics(t *testing.T) {
	srv := panicFixture(t)
	injectRequest(t, srv, http.MethodPost, market.ScanPath, []byte(`{}`), nil)
	body := injectRequest(t, srv, http.MethodGet, market.MetricsPath, nil, nil).Body.String()
	if !strings.Contains(body, "market_http_responses_5xx_total 1") {
		t.Fatalf("panic not counted as 5xx:\n%.500s", body)
	}
}
