package market

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"marketscope/internal/appmeta"
)

// Listing is one app hosted by a market: its public metadata plus the APK
// bytes served on download.
type Listing struct {
	Meta appmeta.Record
	APK  []byte
}

// Store is the catalog of one simulated market. It is safe for concurrent
// use; the HTTP front-end serves reads while the catalog-evolution hooks
// (removal of flagged malware between crawls) apply writes.
type Store struct {
	profile Profile

	mu       sync.RWMutex
	listings map[string]*Listing
	// order records insertion order, which is what the incremental index
	// style exposes (Baidu's sequential integer pages).
	order   []string
	removed map[string]bool
}

// Store errors.
var (
	ErrWrongMarket   = errors.New("market: record belongs to a different market")
	ErrDuplicateApp  = errors.New("market: package already listed")
	ErrAppNotFound   = errors.New("market: app not found")
	ErrInvalidRecord = errors.New("market: invalid record")
)

// NewStore creates an empty store for the given market profile.
func NewStore(profile Profile) *Store {
	return &Store{
		profile:  profile,
		listings: make(map[string]*Listing),
		removed:  make(map[string]bool),
	}
}

// Profile returns the market profile.
func (s *Store) Profile() Profile { return s.profile }

// Name returns the market name.
func (s *Store) Name() string { return s.profile.Name }

// Add publishes a listing. The record's Market must match the store and the
// package must not already be listed.
func (s *Store) Add(meta appmeta.Record, apkBytes []byte) error {
	if err := meta.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidRecord, err)
	}
	if meta.Market != s.profile.Name {
		return fmt.Errorf("%w: %q vs %q", ErrWrongMarket, meta.Market, s.profile.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.listings[meta.Package]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicateApp, meta.Package)
	}
	s.listings[meta.Package] = &Listing{Meta: meta, APK: append([]byte(nil), apkBytes...)}
	s.order = append(s.order, meta.Package)
	return nil
}

// Get returns the listing for a package.
func (s *Store) Get(pkg string) (*Listing, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.listings[pkg]
	if !ok {
		return nil, false
	}
	cp := *l
	return &cp, true
}

// Remove delists a package (the store's moderation action between the two
// crawls). It returns false if the package was not listed.
func (s *Store) Remove(pkg string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.listings[pkg]; !ok {
		return false
	}
	delete(s.listings, pkg)
	s.removed[pkg] = true
	return true
}

// WasRemoved reports whether a package was delisted at some point.
func (s *Store) WasRemoved(pkg string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.removed[pkg]
}

// Len returns the number of live listings.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.listings)
}

// Packages returns the live package names in insertion order.
func (s *Store) Packages() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.listings))
	for _, pkg := range s.order {
		if _, ok := s.listings[pkg]; ok {
			out = append(out, pkg)
		}
	}
	return out
}

// ByIndex returns the record at the given zero-based position of the
// insertion order (the incremental index style). Removed apps leave gaps, as
// they do on the real sites.
func (s *Store) ByIndex(i int) (appmeta.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.order) {
		return appmeta.Record{}, false
	}
	l, ok := s.listings[s.order[i]]
	if !ok {
		return appmeta.Record{}, false
	}
	return l.Meta, true
}

// IndexSize returns the number of index positions (including gaps left by
// removals).
func (s *Store) IndexSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// SearchByName returns records whose app name or package contains the query
// (case-insensitive), sorted by descending downloads then package name.
// A limit <= 0 means no limit.
func (s *Store) SearchByName(query string, limit int) []appmeta.Record {
	q := strings.ToLower(strings.TrimSpace(query))
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []appmeta.Record
	if q == "" {
		return out
	}
	for _, l := range s.listings {
		name := strings.ToLower(l.Meta.AppName)
		if strings.Contains(name, q) || strings.Contains(strings.ToLower(l.Meta.Package), q) {
			out = append(out, l.Meta)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Downloads != out[j].Downloads {
			return out[i].Downloads > out[j].Downloads
		}
		return out[i].Package < out[j].Package
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Related returns up to limit records related to the given package: other
// apps by the same developer first, then apps in the same category, ordered
// by downloads. This is what Google Play's "similar apps" / "more by this
// developer" links expose to the BFS crawler.
func (s *Store) Related(pkg string, limit int) []appmeta.Record {
	if limit <= 0 {
		limit = 10
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	base, ok := s.listings[pkg]
	if !ok {
		return nil
	}
	var sameDev, sameCat []appmeta.Record
	for _, l := range s.listings {
		if l.Meta.Package == pkg {
			continue
		}
		switch {
		case l.Meta.DeveloperName != "" && l.Meta.DeveloperName == base.Meta.DeveloperName:
			sameDev = append(sameDev, l.Meta)
		case l.Meta.Category == base.Meta.Category:
			sameCat = append(sameCat, l.Meta)
		}
	}
	byDownloads := func(recs []appmeta.Record) {
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Downloads != recs[j].Downloads {
				return recs[i].Downloads > recs[j].Downloads
			}
			return recs[i].Package < recs[j].Package
		})
	}
	byDownloads(sameDev)
	byDownloads(sameCat)
	out := append(sameDev, sameCat...)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Catalog returns one page of the catalog ordered by insertion. Pages are
// zero-based.
func (s *Store) Catalog(page, pageSize int) []appmeta.Record {
	if pageSize <= 0 {
		pageSize = 50
	}
	pkgs := s.Packages()
	start := page * pageSize
	if start < 0 || start >= len(pkgs) {
		return nil
	}
	end := start + pageSize
	if end > len(pkgs) {
		end = len(pkgs)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]appmeta.Record, 0, end-start)
	for _, pkg := range pkgs[start:end] {
		if l, ok := s.listings[pkg]; ok {
			out = append(out, l.Meta)
		}
	}
	return out
}

// Snapshot returns all live records, sorted by package name.
func (s *Store) Snapshot() []appmeta.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]appmeta.Record, 0, len(s.listings))
	for _, l := range s.listings {
		out = append(out, l.Meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package < out[j].Package })
	return out
}

// APK returns the APK bytes for a package.
func (s *Store) APK(pkg string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.listings[pkg]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrAppNotFound, pkg)
	}
	return append([]byte(nil), l.APK...), nil
}
