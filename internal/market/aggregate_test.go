package market_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"marketscope/internal/market"
	"marketscope/internal/query"
)

// acceptanceAggregate is the canonical aggregation document: per-market
// listing counts, a conditional flagged count, a mean and a share, ranked
// by size. The same request is exercised through the Go API here and
// through the CLI flags in cmd/scan's tests.
const acceptanceAggregate = `{
	"group_by": ["market"],
	"aggregates": [{"op": "count"},
	               {"op": "count", "where": [{"field": "av_positives", "op": ">=", "value": 10}], "as": "flagged"},
	               {"op": "mean", "field": "library_count", "as": "avg_libs"},
	               {"op": "share"}],
	"sort": [{"field": "count", "desc": true}, {"field": "market"}]
}`

func TestAggregateEndpointMatchesGoAPI(t *testing.T) {
	ds, srv := scanFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+market.AggregatePath, "application/json",
		strings.NewReader(acceptanceAggregate))
	if err != nil {
		t.Fatalf("POST aggregate: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var over query.Result
	if err := json.NewDecoder(resp.Body).Decode(&over); err != nil {
		t.Fatalf("decode: %v", err)
	}

	req, err := query.ParseAggregate(strings.NewReader(acceptanceAggregate))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	direct, err := ds.Aggregate(req)
	if err != nil {
		t.Fatalf("direct aggregate: %v", err)
	}
	// Compare over JSON: HTTP decoding widens every number to float64.
	wire, _ := json.Marshal(over.Rows)
	want, _ := json.Marshal(direct.Rows)
	var wireRows, wantRows [][]any
	_ = json.Unmarshal(wire, &wireRows)
	_ = json.Unmarshal(want, &wantRows)
	wj, _ := json.Marshal(wireRows)
	dj, _ := json.Marshal(wantRows)
	if !bytes.Equal(wj, dj) {
		t.Fatalf("endpoint rows diverge from Go API:\nhttp %s\ngo   %s", wj, dj)
	}
	if over.Meta.TotalMatched != direct.Meta.TotalMatched || over.Meta.Returned != direct.Meta.Returned {
		t.Fatalf("meta diverges: http %+v, go %+v", over.Meta, direct.Meta)
	}
	if over.Meta.Explain == nil {
		t.Fatal("aggregate response carries no explain block")
	}
}

func TestAggregateEndpointErrors(t *testing.T) {
	_, srv := scanFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + market.AggregatePath)
	if err != nil {
		t.Fatalf("GET aggregate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	for name, body := range map[string]string{
		"bad-json":     `{"group_by": [`,
		"unknown-key":  `{"groupby": ["market"], "aggregates": [{"op":"count"}]}`,
		"no-aggregate": `{"group_by": ["market"]}`,
		"bad-field":    `{"aggregates": [{"op":"sum","field":"no_such_field"}]}`,
		"bad-op":       `{"aggregates": [{"op":"median","field":"rating"}]}`,
	} {
		resp, err := http.Post(ts.URL+market.AggregatePath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: POST: %v", name, err)
		}
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Errorf("%s: status = %d, error = %q; want 400 with a message", name, resp.StatusCode, e.Error)
		}
	}
}
