package manifest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary manifest format ("AXML-lite").
//
// The real AndroidManifest.xml inside an APK is a binary XML document. We use
// a simplified but structurally similar format: a fixed header with a magic
// and version, a string pool, and a sequence of typed records that reference
// strings by index. The parser is strict: truncated or corrupted input is
// rejected with a descriptive error rather than silently producing a partial
// manifest, because corrupted APKs are common in large crawls and must be
// counted, not miscounted.
//
//	offset  size  field
//	0       4     magic "AXML"
//	4       2     format version (currently 1)
//	6       2     reserved (0)
//	8       4     string pool count N
//	...           N length-prefixed UTF-8 strings (uint16 length)
//	...           record stream until EOF
//
// Records:
//
//	0x01 package       [strIdx]
//	0x02 versionCode   [int64]
//	0x03 versionName   [strIdx]
//	0x04 minSdk        [uint16]
//	0x05 targetSdk     [uint16]
//	0x06 appLabel      [strIdx]
//	0x07 debuggable    [uint8]
//	0x08 permission    [strIdx]
//	0x09 component     [kind uint8][name strIdx][authority strIdx]
//	                   [exported uint8][actionCount uint16][action strIdx...]

const (
	axmlMagic         = "AXML"
	axmlFormatVersion = 1
)

// Record type identifiers in the binary manifest stream.
const (
	recPackage     = 0x01
	recVersionCode = 0x02
	recVersionName = 0x03
	recMinSDK      = 0x04
	recTargetSDK   = 0x05
	recAppLabel    = 0x06
	recDebuggable  = 0x07
	recPermission  = 0x08
	recComponent   = 0x09
)

// Encoding and decoding errors.
var (
	ErrBadMagic      = errors.New("manifest: bad magic")
	ErrBadFormat     = errors.New("manifest: unsupported format version")
	ErrTruncated     = errors.New("manifest: truncated input")
	ErrBadStringRef  = errors.New("manifest: string index out of range")
	ErrUnknownRecord = errors.New("manifest: unknown record type")
)

// stringPool interns strings and assigns them stable indices in first-seen
// order, mirroring the string pool of Android's binary XML.
type stringPool struct {
	byValue map[string]uint32
	values  []string
}

func newStringPool() *stringPool {
	return &stringPool{byValue: make(map[string]uint32)}
}

func (p *stringPool) intern(s string) uint32 {
	if idx, ok := p.byValue[s]; ok {
		return idx
	}
	idx := uint32(len(p.values))
	p.values = append(p.values, s)
	p.byValue[s] = idx
	return idx
}

// Encode serializes the manifest into the binary format. The manifest is
// validated first; invalid manifests are refused so the corpus never contains
// unparseable ground truth.
func Encode(m *Manifest) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest: encode: %w", err)
	}
	pool := newStringPool()
	type compRef struct {
		kind      uint8
		name      uint32
		authority uint32
		exported  uint8
		actions   []uint32
	}

	pkgIdx := pool.intern(m.Package)
	verNameIdx := pool.intern(m.VersionName)
	labelIdx := pool.intern(m.AppLabel)
	permIdx := make([]uint32, len(m.Permissions))
	for i, p := range m.Permissions {
		permIdx[i] = pool.intern(p)
	}
	comps := make([]compRef, len(m.Components))
	for i, c := range m.Components {
		cr := compRef{
			kind:      uint8(c.Kind),
			name:      pool.intern(c.Name),
			authority: pool.intern(c.Authority),
		}
		if c.Exported {
			cr.exported = 1
		}
		for _, a := range c.IntentActions {
			cr.actions = append(cr.actions, pool.intern(a))
		}
		comps[i] = cr
	}

	var buf bytes.Buffer
	buf.WriteString(axmlMagic)
	writeU16(&buf, axmlFormatVersion)
	writeU16(&buf, 0)
	writeU32(&buf, uint32(len(pool.values)))
	for _, s := range pool.values {
		if len(s) > 0xFFFF {
			return nil, fmt.Errorf("manifest: string too long (%d bytes)", len(s))
		}
		writeU16(&buf, uint16(len(s)))
		buf.WriteString(s)
	}

	// Record stream.
	buf.WriteByte(recPackage)
	writeU32(&buf, pkgIdx)
	buf.WriteByte(recVersionCode)
	writeU64(&buf, uint64(m.VersionCode))
	buf.WriteByte(recVersionName)
	writeU32(&buf, verNameIdx)
	buf.WriteByte(recMinSDK)
	writeU16(&buf, uint16(m.MinSDK))
	buf.WriteByte(recTargetSDK)
	writeU16(&buf, uint16(m.TargetSDK))
	buf.WriteByte(recAppLabel)
	writeU32(&buf, labelIdx)
	buf.WriteByte(recDebuggable)
	if m.Debuggable {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	for _, idx := range permIdx {
		buf.WriteByte(recPermission)
		writeU32(&buf, idx)
	}
	for _, c := range comps {
		buf.WriteByte(recComponent)
		buf.WriteByte(c.kind)
		writeU32(&buf, c.name)
		writeU32(&buf, c.authority)
		buf.WriteByte(c.exported)
		writeU16(&buf, uint16(len(c.actions)))
		for _, a := range c.actions {
			writeU32(&buf, a)
		}
	}
	return buf.Bytes(), nil
}

// Decode parses a binary manifest produced by Encode. It returns a
// descriptive error for any malformed input.
func Decode(data []byte) (*Manifest, error) {
	r := &reader{data: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != axmlMagic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, string(magic))
	}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != axmlFormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadFormat, version)
	}
	if _, err := r.u16(); err != nil { // reserved
		return nil, err
	}
	poolCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(poolCount) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible string pool count %d", ErrTruncated, poolCount)
	}
	pool := make([]string, poolCount)
	for i := range pool {
		n, err := r.u16()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return nil, err
		}
		pool[i] = string(b)
	}
	str := func(idx uint32) (string, error) {
		if int(idx) >= len(pool) {
			return "", fmt.Errorf("%w: %d >= %d", ErrBadStringRef, idx, len(pool))
		}
		return pool[idx], nil
	}

	m := &Manifest{}
	for !r.eof() {
		tag, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch tag {
		case recPackage:
			idx, err := r.u32()
			if err != nil {
				return nil, err
			}
			if m.Package, err = str(idx); err != nil {
				return nil, err
			}
		case recVersionCode:
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			m.VersionCode = int64(v)
		case recVersionName:
			idx, err := r.u32()
			if err != nil {
				return nil, err
			}
			if m.VersionName, err = str(idx); err != nil {
				return nil, err
			}
		case recMinSDK:
			v, err := r.u16()
			if err != nil {
				return nil, err
			}
			m.MinSDK = int(v)
		case recTargetSDK:
			v, err := r.u16()
			if err != nil {
				return nil, err
			}
			m.TargetSDK = int(v)
		case recAppLabel:
			idx, err := r.u32()
			if err != nil {
				return nil, err
			}
			if m.AppLabel, err = str(idx); err != nil {
				return nil, err
			}
		case recDebuggable:
			v, err := r.u8()
			if err != nil {
				return nil, err
			}
			m.Debuggable = v != 0
		case recPermission:
			idx, err := r.u32()
			if err != nil {
				return nil, err
			}
			p, err := str(idx)
			if err != nil {
				return nil, err
			}
			m.Permissions = append(m.Permissions, p)
		case recComponent:
			kind, err := r.u8()
			if err != nil {
				return nil, err
			}
			nameIdx, err := r.u32()
			if err != nil {
				return nil, err
			}
			authIdx, err := r.u32()
			if err != nil {
				return nil, err
			}
			exported, err := r.u8()
			if err != nil {
				return nil, err
			}
			actionCount, err := r.u16()
			if err != nil {
				return nil, err
			}
			c := Component{Kind: ComponentKind(kind), Exported: exported != 0}
			if c.Name, err = str(nameIdx); err != nil {
				return nil, err
			}
			if c.Authority, err = str(authIdx); err != nil {
				return nil, err
			}
			for i := 0; i < int(actionCount); i++ {
				aIdx, err := r.u32()
				if err != nil {
					return nil, err
				}
				a, err := str(aIdx)
				if err != nil {
					return nil, err
				}
				c.IntentActions = append(c.IntentActions, a)
			}
			m.Components = append(m.Components, c)
		default:
			return nil, fmt.Errorf("%w: 0x%02x at offset %d", ErrUnknownRecord, tag, r.pos-1)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest: decode: %w", err)
	}
	return m, nil
}

// reader is a bounds-checked cursor over the encoded bytes.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) eof() bool { return r.pos >= len(r.data) }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, r.pos, len(r.data)-r.pos)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}
