package manifest

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := validManifest()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	m := validManifest()
	m.Package = ""
	if _, err := Encode(m); err == nil {
		t.Error("Encode accepted invalid manifest")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	m := validManifest()
	data, _ := Encode(m)
	data[0] = 'Z'
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	m := validManifest()
	data, _ := Encode(m)
	data[4] = 0xFF
	if _, err := Decode(data); !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat, got %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	m := validManifest()
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must be handled cleanly: no panic, and anything
	// that does decode (a prefix that happens to end on a record boundary)
	// must still be a valid manifest. Prefixes cut inside the header or the
	// string pool must always fail.
	headerAndPool := 12 // magic + version + reserved + pool count
	for n := 0; n < len(data); n++ {
		m, err := Decode(data[:n])
		if err == nil {
			if n <= headerAndPool {
				t.Fatalf("Decode accepted a %d-byte header prefix", n)
			}
			if verr := m.Validate(); verr != nil {
				t.Fatalf("Decode returned invalid manifest for %d/%d bytes: %v", n, len(data), verr)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("not an apk manifest"),
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for i, in := range inputs {
		if _, err := Decode(in); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
}

func TestDecodeRejectsUnknownRecord(t *testing.T) {
	m := validManifest()
	data, _ := Encode(m)
	data = append(data, 0x7F)
	if _, err := Decode(data); !errors.Is(err, ErrUnknownRecord) {
		t.Errorf("want ErrUnknownRecord, got %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := validManifest()
	a, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Encode is not deterministic")
	}
}

func TestRoundTripEmptyOptionalFields(t *testing.T) {
	m := &Manifest{Package: "com.min.app", VersionCode: 1, MinSDK: 14}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Package != "com.min.app" || got.VersionCode != 1 || got.MinSDK != 14 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if len(got.Permissions) != 0 || len(got.Components) != 0 {
		t.Errorf("round trip invented fields: %+v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(verCode uint16, minSDK uint8, perms []string, debuggable bool) bool {
		m := &Manifest{
			Package:     "com.prop.app",
			VersionCode: int64(verCode) + 1,
			VersionName: "v",
			MinSDK:      int(minSDK%30) + 1,
			Debuggable:  debuggable,
		}
		seen := map[string]bool{}
		for i, p := range perms {
			if p == "" || seen[p] || len(p) > 1000 || i > 40 {
				continue
			}
			seen[p] = true
			m.Permissions = append(m.Permissions, p)
		}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	m := validManifest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	data, err := Encode(validManifest())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
