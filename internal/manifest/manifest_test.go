package manifest

import (
	"strings"
	"testing"
)

func validManifest() *Manifest {
	return &Manifest{
		Package:     "com.example.app",
		VersionCode: 42,
		VersionName: "1.4.2",
		MinSDK:      9,
		TargetSDK:   25,
		AppLabel:    "Example App",
		Permissions: []string{"android.permission.INTERNET", "android.permission.CAMERA"},
		Components: []Component{
			{Kind: Activity, Name: "com.example.app.MainActivity",
				IntentActions: []string{"android.intent.action.MAIN"}, Exported: true},
			{Kind: Service, Name: "com.example.app.SyncService"},
			{Kind: Provider, Name: "com.example.app.DataProvider", Authority: "com.example.app.provider"},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"no package", func(m *Manifest) { m.Package = "" }},
		{"malformed package", func(m *Manifest) { m.Package = "singleword" }},
		{"package with invalid char", func(m *Manifest) { m.Package = "com.exa-mple.app" }},
		{"zero version", func(m *Manifest) { m.VersionCode = 0 }},
		{"negative version", func(m *Manifest) { m.VersionCode = -1 }},
		{"zero minSdk", func(m *Manifest) { m.MinSDK = 0 }},
		{"huge minSdk", func(m *Manifest) { m.MinSDK = 99 }},
		{"target below min", func(m *Manifest) { m.MinSDK = 20; m.TargetSDK = 10 }},
		{"duplicate permission", func(m *Manifest) {
			m.Permissions = append(m.Permissions, "android.permission.INTERNET")
		}},
		{"empty permission", func(m *Manifest) { m.Permissions = append(m.Permissions, "") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := validManifest()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestValidPackageName(t *testing.T) {
	valid := []string{"com.example.app", "a.b", "com.kugou.android", "org.x_1.y2"}
	invalid := []string{"", "com", "com.", ".com", "com..app", "com.1abc", "com.a-b", "com.a b"}
	for _, s := range valid {
		if !ValidPackageName(s) {
			t.Errorf("ValidPackageName(%q) = false, want true", s)
		}
	}
	for _, s := range invalid {
		if ValidPackageName(s) {
			t.Errorf("ValidPackageName(%q) = true, want false", s)
		}
	}
}

func TestHasAndAddPermission(t *testing.T) {
	m := validManifest()
	if !m.HasPermission("android.permission.INTERNET") {
		t.Error("HasPermission missed existing permission")
	}
	if m.HasPermission("android.permission.BLUETOOTH") {
		t.Error("HasPermission reported missing permission")
	}
	if !m.AddPermission("android.permission.BLUETOOTH") {
		t.Error("AddPermission refused new permission")
	}
	if m.AddPermission("android.permission.BLUETOOTH") {
		t.Error("AddPermission added duplicate")
	}
	if m.AddPermission("") {
		t.Error("AddPermission accepted empty permission")
	}
}

func TestSortedPermissionsDoesNotMutate(t *testing.T) {
	m := &Manifest{
		Package: "com.a.b", VersionCode: 1, MinSDK: 9,
		Permissions: []string{"z.perm", "a.perm"},
	}
	sorted := m.SortedPermissions()
	if sorted[0] != "a.perm" {
		t.Errorf("SortedPermissions()[0] = %q", sorted[0])
	}
	if m.Permissions[0] != "z.perm" {
		t.Error("SortedPermissions mutated the manifest")
	}
}

func TestComponentsOfKindAndAuthorities(t *testing.T) {
	m := validManifest()
	if got := len(m.ComponentsOfKind(Activity)); got != 1 {
		t.Errorf("activities = %d, want 1", got)
	}
	if got := len(m.ComponentsOfKind(Receiver)); got != 0 {
		t.Errorf("receivers = %d, want 0", got)
	}
	auth := m.ProviderAuthorities()
	if len(auth) != 1 || auth[0] != "com.example.app.provider" {
		t.Errorf("authorities = %v", auth)
	}
}

func TestIntentActionsDeduplicated(t *testing.T) {
	m := validManifest()
	m.Components = append(m.Components, Component{
		Kind: Receiver, Name: "com.example.app.BootReceiver",
		IntentActions: []string{"android.intent.action.MAIN", "android.intent.action.BOOT_COMPLETED", ""},
	})
	actions := m.IntentActions()
	if len(actions) != 2 {
		t.Fatalf("IntentActions = %v, want 2 unique non-empty actions", actions)
	}
	if actions[0] != "android.intent.action.BOOT_COMPLETED" {
		t.Errorf("actions not sorted: %v", actions)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := validManifest()
	cp := m.Clone()
	cp.Permissions[0] = "mutated"
	cp.Components[0].IntentActions[0] = "mutated"
	cp.Package = "com.other.app"
	if m.Permissions[0] == "mutated" || m.Components[0].IntentActions[0] == "mutated" {
		t.Error("Clone shares slices with the original")
	}
	if m.Package != "com.example.app" {
		t.Error("Clone shares scalar state")
	}
}

func TestComponentKindString(t *testing.T) {
	if Activity.String() != "activity" || Provider.String() != "provider" {
		t.Error("component kind names wrong")
	}
	if !strings.Contains(ComponentKind(9).String(), "9") {
		t.Error("unknown component kind should include its value")
	}
}

func TestAndroidVersionForAPI(t *testing.T) {
	if AndroidVersionForAPI(9) != "2.3" {
		t.Errorf("API 9 = %q", AndroidVersionForAPI(9))
	}
	if AndroidVersionForAPI(23) != "6.0" {
		t.Errorf("API 23 = %q", AndroidVersionForAPI(23))
	}
	if AndroidVersionForAPI(999) != "unknown" {
		t.Error("unknown API level should map to \"unknown\"")
	}
}
