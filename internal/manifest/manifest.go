// Package manifest models the AndroidManifest.xml of an app and provides a
// compact binary encoding analogous to Android's binary XML (AXML) format.
//
// The study extracts from every APK's manifest the package name, version
// code/name, minimum and target SDK level, the set of requested permissions,
// and the declared components. Those fields drive the minimum-API-level
// analysis (Figure 3), the over-privilege analysis (Figure 11), and app
// identity throughout the pipeline.
package manifest

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ComponentKind identifies the four Android component types.
type ComponentKind uint8

// The four Android component kinds.
const (
	Activity ComponentKind = iota
	Service
	Receiver
	Provider
)

// String returns the manifest tag name of the component kind.
func (k ComponentKind) String() string {
	switch k {
	case Activity:
		return "activity"
	case Service:
		return "service"
	case Receiver:
		return "receiver"
	case Provider:
		return "provider"
	default:
		return fmt.Sprintf("ComponentKind(%d)", uint8(k))
	}
}

// Component is a declared application component: an activity, service,
// broadcast receiver or content provider, optionally with intent-filter
// actions (for the first three) or an authority (for providers).
type Component struct {
	Kind          ComponentKind
	Name          string
	IntentActions []string
	Authority     string
	Exported      bool
}

// Manifest is the decoded AndroidManifest.xml of an app.
type Manifest struct {
	Package     string
	VersionCode int64
	VersionName string
	MinSDK      int
	TargetSDK   int
	AppLabel    string
	Debuggable  bool
	Permissions []string
	Components  []Component
}

// Common validation errors.
var (
	ErrNoPackage       = errors.New("manifest: missing package name")
	ErrBadPackage      = errors.New("manifest: malformed package name")
	ErrBadVersion      = errors.New("manifest: version code must be positive")
	ErrBadSDK          = errors.New("manifest: invalid SDK levels")
	ErrDuplicatePerm   = errors.New("manifest: duplicate permission")
	ErrEmptyPermission = errors.New("manifest: empty permission name")
)

// Validate checks structural invariants that every well-formed manifest in
// the corpus must satisfy. Parsers call it after decoding; generators call it
// before encoding.
func (m *Manifest) Validate() error {
	if m.Package == "" {
		return ErrNoPackage
	}
	if !ValidPackageName(m.Package) {
		return fmt.Errorf("%w: %q", ErrBadPackage, m.Package)
	}
	if m.VersionCode <= 0 {
		return fmt.Errorf("%w: %d", ErrBadVersion, m.VersionCode)
	}
	if m.MinSDK < 1 || m.MinSDK > 40 {
		return fmt.Errorf("%w: minSdk=%d", ErrBadSDK, m.MinSDK)
	}
	if m.TargetSDK != 0 && m.TargetSDK < m.MinSDK {
		return fmt.Errorf("%w: targetSdk=%d < minSdk=%d", ErrBadSDK, m.TargetSDK, m.MinSDK)
	}
	seen := make(map[string]bool, len(m.Permissions))
	for _, p := range m.Permissions {
		if p == "" {
			return ErrEmptyPermission
		}
		if seen[p] {
			return fmt.Errorf("%w: %q", ErrDuplicatePerm, p)
		}
		seen[p] = true
	}
	return nil
}

// ValidPackageName reports whether s looks like a Java-style package name:
// at least two dot-separated segments, each starting with a letter and
// containing only letters, digits and underscores.
func ValidPackageName(s string) bool {
	segments := strings.Split(s, ".")
	if len(segments) < 2 {
		return false
	}
	for _, seg := range segments {
		if seg == "" {
			return false
		}
		for i, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
			case r == '_':
			case r >= '0' && r <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

// HasPermission reports whether the manifest requests the given permission.
func (m *Manifest) HasPermission(perm string) bool {
	for _, p := range m.Permissions {
		if p == perm {
			return true
		}
	}
	return false
}

// AddPermission adds a permission if not already present and returns whether
// it was added.
func (m *Manifest) AddPermission(perm string) bool {
	if perm == "" || m.HasPermission(perm) {
		return false
	}
	m.Permissions = append(m.Permissions, perm)
	return true
}

// SortedPermissions returns the requested permissions in sorted order without
// modifying the manifest.
func (m *Manifest) SortedPermissions() []string {
	out := append([]string(nil), m.Permissions...)
	sort.Strings(out)
	return out
}

// ComponentsOfKind returns the declared components of the given kind.
func (m *Manifest) ComponentsOfKind(kind ComponentKind) []Component {
	var out []Component
	for _, c := range m.Components {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

// ProviderAuthorities returns the authorities of all declared content
// providers; the clone detector folds these into its feature vector.
func (m *Manifest) ProviderAuthorities() []string {
	var out []string
	for _, c := range m.Components {
		if c.Kind == Provider && c.Authority != "" {
			out = append(out, c.Authority)
		}
	}
	sort.Strings(out)
	return out
}

// IntentActions returns the union of all intent-filter actions declared by
// the manifest's components, sorted and deduplicated.
func (m *Manifest) IntentActions() []string {
	set := make(map[string]bool)
	for _, c := range m.Components {
		for _, a := range c.IntentActions {
			if a != "" {
				set[a] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the manifest.
func (m *Manifest) Clone() *Manifest {
	cp := *m
	cp.Permissions = append([]string(nil), m.Permissions...)
	cp.Components = make([]Component, len(m.Components))
	for i, c := range m.Components {
		cc := c
		cc.IntentActions = append([]string(nil), c.IntentActions...)
		cp.Components[i] = cc
	}
	return &cp
}

// AndroidVersionForAPI maps an API level to the Android version string it
// corresponds to, e.g. 9 -> "2.3". Unknown levels return "unknown". The
// mapping covers the levels that appear in the paper's Figure 3.
func AndroidVersionForAPI(level int) string {
	versions := map[int]string{
		1: "1.0", 2: "1.1", 3: "1.5", 4: "1.6", 5: "2.0", 6: "2.0.1",
		7: "2.1", 8: "2.2", 9: "2.3", 10: "2.3.3", 11: "3.0", 12: "3.1",
		13: "3.2", 14: "4.0", 15: "4.0.3", 16: "4.1", 17: "4.2", 18: "4.3",
		19: "4.4", 21: "5.0", 22: "5.1", 23: "6.0", 24: "7.0", 25: "7.1",
		26: "8.0", 27: "8.1", 28: "9",
	}
	if v, ok := versions[level]; ok {
		return v
	}
	return "unknown"
}
