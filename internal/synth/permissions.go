package synth

import (
	"sort"

	"marketscope/internal/permissions"
	"marketscope/internal/stats"
)

// assignPermissions chooses the permissions an app requests and the subset it
// actually uses. The gap between the two is the over-privilege ground truth
// of Figure 11: roughly 65% of Google Play apps and 82% of Chinese-market
// apps request at least one permission their code never exercises, with the
// excess concentrated on READ_PHONE_STATE, location and CAMERA.
func (g *generator) assignPermissions(rng *stats.RNG, app *App) {
	// Almost every app uses the network.
	used := []string{permissions.Internet, permissions.AccessNetworkState}

	// A few genuinely used sensitive permissions. READ_PHONE_STATE, CAMERA
	// and the location permissions are deliberately rare here and common in
	// the over-request pool below, which is what makes them the most
	// frequently *unused* dangerous permissions, as the paper reports.
	pool := []string{
		permissions.AccessCoarseLocation, permissions.ReadContacts,
		permissions.RecordAudio, permissions.WriteExternalStorage,
		permissions.ReadExternalStorage, permissions.GetAccounts,
		permissions.AccessWifiState, permissions.Vibrate, permissions.WakeLock,
	}
	usedCount := rng.Range(1, 4)
	for _, idx := range rng.SampleWithoutReplacement(len(pool), usedCount) {
		if !contains(used, pool[idx]) {
			used = append(used, pool[idx])
		}
	}

	// Over-privilege injection.
	overProb, extraMean := 0.65, 1.8
	if app.Developer.Strategy != StrategyGlobalOnly {
		overProb, extraMean = 0.82, 2.6
	}
	requested := append([]string(nil), used...)
	if rng.Bool(overProb) {
		extras := []string{
			permissions.ReadPhoneState, permissions.ReadPhoneState, permissions.ReadPhoneState,
			permissions.AccessCoarseLocation, permissions.AccessCoarseLocation,
			permissions.AccessFineLocation, permissions.AccessFineLocation,
			permissions.Camera, permissions.Camera, permissions.ReadSMS, permissions.SendSMS,
			permissions.ReadCallLog, permissions.GetTasks, permissions.SystemAlertWindow,
			permissions.ReadCalendar, permissions.ReceiveBootCompleted, permissions.Bluetooth,
		}
		extraCount := 1 + rng.Poisson(extraMean)
		for i := 0; i < extraCount; i++ {
			p := extras[rng.Intn(len(extras))]
			if !contains(requested, p) {
				requested = append(requested, p)
			}
		}
	}

	// Occasionally request a custom (unmapped) permission, which the
	// over-privilege analysis must ignore rather than count.
	if rng.Bool(0.15) {
		requested = append(requested, "com."+app.Developer.Company+".permission.SDK")
	}
	sort.Strings(requested)
	sort.Strings(used)
	app.Permissions = requested
	app.UsedPermissions = used
}
