package synth

import (
	"math"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
	"marketscope/internal/stats"
)

// placeListings decides which markets host which apps and generates the
// per-listing metadata (version skew, downloads, ratings, dates, second-crawl
// removals).
func (g *generator) placeListings(eco *Ecosystem) {
	rng := g.rng.Derive(6)
	// occupied tracks (market, package) pairs so a signature clone is never
	// listed in a market that already lists the original package.
	occupied := map[string]map[string]bool{}
	for _, m := range eco.Markets {
		occupied[m.Name] = map[string]bool{}
	}

	for _, app := range eco.Apps {
		popularity := popularityFactor(app.BaseDownloads)
		for _, marketName := range app.Developer.TargetMarkets {
			profile, inStudy := g.profiles[marketName]
			if !inStudy {
				continue
			}
			if occupied[marketName][app.Package] {
				continue
			}
			accept := 0.62 + 0.33*popularity
			// Curated stores drop unpopular apps more aggressively.
			accept *= 1 - profile.PopularityBias*(1-popularity)*0.8
			// Vetting: misbehaving submissions survive only on lax markets.
			switch {
			case app.Kind == KindFake || app.Kind == KindSignatureClone || app.Kind == KindCodeClone:
				accept *= profile.FakeLaxness
				if app.IsMalicious() {
					accept *= profile.MalwareLaxness / math.Max(profile.FakeLaxness, 0.01)
				}
			case app.IsMalicious():
				accept *= profile.MalwareLaxness
			}
			if !rng.Bool(accept) {
				continue
			}
			app.Listings[marketName] = g.makeListing(rng, app, profile)
			occupied[marketName][app.Package] = true
		}
		// Guarantee legitimate apps at least one listing so the corpus does
		// not silently shrink; rejected-everywhere misbehaving apps simply
		// never surface, as in reality.
		if len(app.Listings) == 0 && app.Kind == KindBenign && len(app.Developer.TargetMarkets) > 0 {
			name := app.Developer.TargetMarkets[rng.Intn(len(app.Developer.TargetMarkets))]
			if profile, ok := g.profiles[name]; ok && !occupied[name][app.Package] {
				app.Listings[name] = g.makeListing(rng, app, profile)
				occupied[name][app.Package] = true
			}
		}
	}
}

// popularityFactor maps installs to [0, 1] on a log scale (1 ≈ 100 M+).
func popularityFactor(downloads int64) float64 {
	if downloads < 1 {
		return 0
	}
	f := math.Log10(float64(downloads)) / 8.0
	if f > 1 {
		return 1
	}
	return f
}

// makeListing generates the per-market metadata for one app.
func (g *generator) makeListing(rng *stats.RNG, app *App, profile market.Profile) *Listing {
	l := &Listing{
		Market:      profile.Name,
		VersionCode: app.VersionCode,
		ReleaseDate: app.ReleaseDate,
		UpdateDate:  app.UpdateDate,
	}

	// Outdated roll-outs: Google Play almost always carries the latest
	// version; several Chinese stores lag behind (Figure 9).
	if rng.Bool(profile.StaleShare) && app.VersionCode > 110 {
		lag := int64(rng.Range(1, 3)) * 10
		if app.VersionCode-lag < 100 {
			lag = app.VersionCode - 100
		}
		l.VersionCode = app.VersionCode - lag
		// The listed build is older, so its update date is too.
		daysEarlier := rng.Range(60, 480)
		l.UpdateDate = app.UpdateDate.AddDate(0, 0, -daysEarlier)
		if l.UpdateDate.Before(app.ReleaseDate) {
			l.UpdateDate = app.ReleaseDate
		}
	}

	// Install counts: each market sees a share of the app's total installs.
	if profile.ReportsDownloads {
		share := 0.15 + 0.45*rng.Float64()
		if profile.Name == market.GooglePlay {
			share = 0.35 + 0.45*rng.Float64()
		}
		downloads := float64(app.BaseDownloads) * share * rng.LogNormal(0, 0.3)
		l.Downloads = int64(downloads)
		if l.Downloads < 0 {
			l.Downloads = 0
		}
	} else {
		l.Downloads = -1
	}

	// Ratings: a large share of Chinese-market listings are never rated.
	if rng.Bool(profile.UnratedShare) || app.BaseRating == 0 {
		l.Rating = profile.DefaultRating
	} else {
		r := app.BaseRating + rng.Normal(0, 0.35)
		if r < 0.5 {
			r = 0.5
		}
		if r > 5 {
			r = 5
		}
		l.Rating = math.Round(r*10) / 10
	}

	// Second-crawl moderation: markets remove flagged malware at very
	// different rates (Table 6).
	if app.IsMalicious() && rng.Bool(profile.MalwareRemovalRate) {
		l.RemovedInSecondCrawl = true
	}
	// Google Play also removes most surviving fakes and clones.
	if profile.Name == market.GooglePlay && app.Kind != KindBenign && rng.Bool(0.7) {
		l.RemovedInSecondCrawl = true
	}
	return l
}

// marketCategoryName renders the category string the market's metadata page
// reports. Several large Chinese stores return placeholder categories for a
// large share of listings, which is why the paper maps ~40% of their apps to
// "Null/Other".
func (g *generator) marketCategoryName(rng *stats.RNG, profile market.Profile, category appmeta.Category) string {
	sloppy := map[string]float64{
		"Tencent Myapp": 0.40, "360 Market": 0.40, "OPPO Market": 0.42, "25PP": 0.38,
	}
	if p, ok := sloppy[profile.Name]; ok && rng.Bool(p) {
		if rng.Bool(0.5) {
			return "102229"
		}
		return "Unclassified"
	}
	// Vendor stores use their own category wording for some entries.
	if profile.Type == market.TypeVendor && rng.Bool(0.3) {
		switch category {
		case appmeta.CategoryGame:
			return "Online Game"
		case appmeta.CategoryTools:
			return "System Tools"
		case appmeta.CategoryVideo:
			return "Video & Audio"
		}
	}
	return string(category)
}

// recordFor renders the appmeta.Record served by the market front-end.
func (g *generator) recordFor(rng *stats.RNG, app *App, l *Listing, profile market.Profile, apkSize int) appmeta.Record {
	devName := app.Developer.DisplayName
	// The same key sometimes appears under a localized name variant on
	// Chinese stores.
	if profile.IsChinese() && rng.Bool(0.15) {
		devName = devName + " (CN)"
	}
	// Baidu explicitly labels ~30k listings as crawled from Google Play.
	if profile.Name == "Baidu Market" && app.Developer.Strategy == StrategyGlobalOnly && rng.Bool(0.5) {
		devName = "Crawled from Google Play"
	}
	return appmeta.Record{
		Market:        profile.Name,
		Package:       app.Package,
		AppName:       app.Name,
		Category:      g.marketCategoryName(rng, profile, app.Category),
		DeveloperName: devName,
		VersionCode:   l.VersionCode,
		VersionName:   versionName(l.VersionCode),
		Description:   app.Description,
		Downloads:     l.Downloads,
		Rating:        l.Rating,
		ReleaseDate:   l.ReleaseDate.UTC(),
		UpdateDate:    l.UpdateDate.UTC(),
		APKSize:       int64(apkSize),
		HasAds:        profile.ReportsAds && len(app.AdLibraries) > 0,
		HasIAP:        profile.ReportsIAP && rng.Bool(0.25),
	}
}

// crawlWindow returns the nominal metadata timestamps for the two crawls.
func (c Config) crawlWindow() (first, second time.Time) {
	return c.CrawlDate, c.CrawlDate.AddDate(0, 8, 15)
}
