package synth

import (
	"errors"
	"fmt"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
	"marketscope/internal/signing"
)

// Config controls the synthetic ecosystem generator.
type Config struct {
	// Seed makes the whole corpus reproducible.
	Seed uint64
	// NumApps is the number of distinct legitimate apps (packages) to
	// generate before misbehaviour injection adds fakes and clones.
	NumApps int
	// NumDevelopers is the number of developer identities.
	NumDevelopers int

	// MalwareRate is the fraction of generated apps that carry a malware
	// payload when submitted. Which markets end up hosting them depends on
	// each market's MalwareLaxness (vetting strictness).
	MalwareRate float64
	// FakeRate is the expected number of fake imitations per popular app.
	FakeRate float64
	// CloneRate is the expected number of repackaged clones per popular
	// app (split between signature-preserving-package and code clones).
	CloneRate float64

	// CrawlDate is the nominal date of the first crawl (the paper's crawl
	// was August 2017); release/update dates are generated relative to it.
	CrawlDate time.Time

	// Markets restricts the ecosystem to the named markets; empty means all
	// 17 study markets.
	Markets []string
}

// DefaultConfig returns a laptop-scale configuration that reproduces the
// shape of every table and figure in a few seconds: roughly 1,200 distinct
// apps across the 17 markets before misbehaviour injection.
func DefaultConfig() Config {
	return Config{
		Seed:          20170815,
		NumApps:       1200,
		NumDevelopers: 420,
		MalwareRate:   0.14,
		FakeRate:      0.9,
		CloneRate:     1.1,
		CrawlDate:     time.Date(2017, 8, 15, 0, 0, 0, 0, time.UTC),
	}
}

// SmallConfig returns a minimal configuration for tests and examples.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumApps = 220
	cfg.NumDevelopers = 90
	return cfg
}

// Validation errors.
var (
	ErrTooFewApps       = errors.New("synth: NumApps must be at least 10")
	ErrTooFewDevelopers = errors.New("synth: NumDevelopers must be at least 5")
	ErrBadRate          = errors.New("synth: rates must be in [0, 1] (malware) or non-negative (fake/clone)")
	ErrUnknownMarket    = errors.New("synth: unknown market name")
)

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.NumApps < 10 {
		return fmt.Errorf("%w: %d", ErrTooFewApps, c.NumApps)
	}
	if c.NumDevelopers < 5 {
		return fmt.Errorf("%w: %d", ErrTooFewDevelopers, c.NumDevelopers)
	}
	if c.MalwareRate < 0 || c.MalwareRate > 1 {
		return fmt.Errorf("%w: malware=%g", ErrBadRate, c.MalwareRate)
	}
	if c.FakeRate < 0 || c.CloneRate < 0 {
		return fmt.Errorf("%w: fake=%g clone=%g", ErrBadRate, c.FakeRate, c.CloneRate)
	}
	for _, name := range c.Markets {
		if _, ok := market.ProfileByName(name); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownMarket, name)
		}
	}
	if c.CrawlDate.IsZero() {
		return errors.New("synth: CrawlDate must be set")
	}
	return nil
}

// marketProfiles resolves the configured market subset.
func (c *Config) marketProfiles() []market.Profile {
	if len(c.Markets) == 0 {
		return market.Profiles()
	}
	var out []market.Profile
	for _, name := range c.Markets {
		if p, ok := market.ProfileByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// Developer is one synthetic developer identity together with its publishing
// strategy.
type Developer struct {
	Key *signing.Developer
	// DisplayName is the name shown in market metadata. The paper notes
	// the same key may appear under name variants across markets; the
	// generator occasionally localizes the name per market.
	DisplayName string
	// Company is the seed word used for this developer's package names.
	Company string
	// Strategy describes which side of the ecosystem the developer targets.
	Strategy PublishStrategy
	// TargetMarkets is the set of market names the developer publishes to.
	TargetMarkets []string
	// Quality in [0,1] correlates with app popularity, maintenance and
	// rating.
	Quality float64
}

// PublishStrategy is a developer's market-targeting behaviour, matching the
// split reported in Section 5.1: 57% of Google Play developers never publish
// to Chinese stores, while almost half of Chinese-market developers skip
// Google Play.
type PublishStrategy string

// Publishing strategies.
const (
	StrategyGlobalOnly  PublishStrategy = "global-only"  // Google Play only
	StrategyChineseOnly PublishStrategy = "chinese-only" // Chinese stores only
	StrategyBoth        PublishStrategy = "both"
)

// MisbehaviorKind labels the ground-truth class of a generated app.
type MisbehaviorKind string

// Misbehaviour classes.
const (
	KindBenign         MisbehaviorKind = "benign"
	KindMalware        MisbehaviorKind = "malware"
	KindFake           MisbehaviorKind = "fake"
	KindSignatureClone MisbehaviorKind = "signature-clone"
	KindCodeClone      MisbehaviorKind = "code-clone"
)

// App is one distinct package in the ground truth.
type App struct {
	Package       string
	Name          string
	Developer     *Developer
	Category      appmeta.Category
	MinSDK        int
	TargetSDK     int
	VersionCode   int64 // latest version
	ReleaseDate   time.Time
	UpdateDate    time.Time
	BaseDownloads int64   // total installs across the ecosystem
	BaseRating    float64 // intrinsic quality rating (0 = never rated)
	Description   string

	// Libraries is the set of third-party library prefixes embedded in the
	// app's code; AdLibraries is the advertising subset.
	Libraries   []string
	AdLibraries []string
	// Permissions requested in the manifest; UsedPermissions the subset the
	// code genuinely exercises (the difference is the over-privilege ground
	// truth).
	Permissions     []string
	UsedPermissions []string

	// Misbehaviour ground truth.
	Kind          MisbehaviorKind
	MalwareFamily string // non-empty iff the app carries a payload
	OriginalOf    string // for fakes/clones: the package being imitated

	// Listings maps market name -> the app's listing in that market.
	Listings map[string]*Listing
}

// IsMalicious reports whether the app carries a malware payload.
func (a *App) IsMalicious() bool { return a.MalwareFamily != "" }

// Listing is one app's presence in one market.
type Listing struct {
	Market      string
	VersionCode int64 // may lag behind App.VersionCode (outdated roll-outs)
	Downloads   int64 // -1 when the market does not report installs
	Rating      float64
	ReleaseDate time.Time
	UpdateDate  time.Time
	// RemovedInSecondCrawl marks listings the market delisted between the
	// August 2017 and April 2018 crawls (Table 6).
	RemovedInSecondCrawl bool
	// APK is the exact archive served by this market (markets add channel
	// files, so bytes differ across markets even for identical versions).
	APK []byte
	// Meta is the metadata record the market's front-end serves.
	Meta appmeta.Record
}

// Ecosystem is the complete generated ground truth.
type Ecosystem struct {
	Config     Config
	Markets    []market.Profile
	Developers []*Developer
	Apps       []*App
}

// AppsByMarket returns the apps listed in the given market.
func (e *Ecosystem) AppsByMarket(marketName string) []*App {
	var out []*App
	for _, a := range e.Apps {
		if _, ok := a.Listings[marketName]; ok {
			out = append(out, a)
		}
	}
	return out
}

// MarketNames returns the names of the generated markets in profile order.
func (e *Ecosystem) MarketNames() []string {
	out := make([]string, 0, len(e.Markets))
	for _, m := range e.Markets {
		out = append(out, m.Name)
	}
	return out
}

// NumListings returns the total number of (app, market) listings.
func (e *Ecosystem) NumListings() int {
	n := 0
	for _, a := range e.Apps {
		n += len(a.Listings)
	}
	return n
}

// GroundTruthCounts summarizes the injected misbehaviour, used by tests and
// EXPERIMENTS.md to sanity-check the corpus.
type GroundTruthCounts struct {
	Benign          int
	Malware         int
	Fakes           int
	SignatureClones int
	CodeClones      int
}

// GroundTruth tallies the corpus by misbehaviour kind.
func (e *Ecosystem) GroundTruth() GroundTruthCounts {
	var c GroundTruthCounts
	for _, a := range e.Apps {
		switch a.Kind {
		case KindMalware:
			c.Malware++
		case KindFake:
			c.Fakes++
		case KindSignatureClone:
			c.SignatureClones++
		case KindCodeClone:
			c.CodeClones++
		default:
			c.Benign++
		}
	}
	return c
}
