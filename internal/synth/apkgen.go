package synth

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"marketscope/internal/apk"
	"marketscope/internal/avscan"
	"marketscope/internal/dex"
	"marketscope/internal/manifest"
	"marketscope/internal/permissions"
	"marketscope/internal/stats"
)

// frameworkAPIPool is the vocabulary of ordinary framework APIs the generated
// "own code" draws from. Distinct apps draw different subsets with different
// counts, so their WuKong feature vectors are far apart; clones copy the
// original's code and therefore stay within the 0.05 distance threshold.
var frameworkAPIPool = []string{
	"android.app.Activity.onCreate", "android.app.Activity.onResume",
	"android.app.Activity.startActivity", "android.app.Fragment.onCreateView",
	"android.widget.TextView.setText", "android.widget.Button.setOnClickListener",
	"android.widget.ListView.setAdapter", "android.widget.ImageView.setImageBitmap",
	"android.widget.Toast.makeText", "android.view.LayoutInflater.inflate",
	"android.os.Handler.post", "android.os.Handler.postDelayed",
	"android.os.AsyncTask.execute", "android.os.Bundle.getString",
	"android.content.Intent.putExtra", "android.content.Intent.getStringExtra",
	"android.content.Context.getSharedPreferences", "android.content.SharedPreferences.Editor.putString",
	"android.content.Context.getSystemService", "android.content.Context.getPackageName",
	"android.content.res.Resources.getString", "android.graphics.BitmapFactory.decodeStream",
	"android.graphics.Canvas.drawBitmap", "android.media.MediaPlayer.start",
	"android.media.MediaPlayer.prepare", "android.database.sqlite.SQLiteDatabase.query",
	"android.database.sqlite.SQLiteDatabase.insert", "android.database.Cursor.moveToNext",
	"android.webkit.WebView.loadUrl", "android.webkit.WebSettings.setJavaScriptEnabled",
	"java.net.URL.openConnection", "java.net.HttpURLConnection.connect",
	"java.io.BufferedReader.readLine", "java.io.FileOutputStream.write",
	"java.util.List.add", "java.util.Map.put", "java.lang.String.format",
	"java.lang.StringBuilder.append", "java.lang.Thread.start",
	"org.json.JSONObject.getString", "org.json.JSONArray.length",
	"android.animation.ObjectAnimator.start", "android.view.View.findViewById",
	"android.view.View.setVisibility", "android.app.AlertDialog.Builder.show",
	"android.app.NotificationManager.notify", "android.net.Uri.parse",
	"android.content.ContentResolver.query", "android.location.Location.getLatitude",
	"android.hardware.SensorManager.getDefaultSensor", "android.util.Log.d",
}

// libraryAPIPool is the vocabulary library code draws from; library content is
// a deterministic function of the library prefix so every embedding of the
// same library looks identical (which is what the LibRadar clustering keys
// on).
var libraryAPIPool = []string{
	"android.content.Context.getPackageName", "android.content.Context.getSystemService",
	"android.net.ConnectivityManager.getActiveNetworkInfo", "android.net.wifi.WifiManager.getConnectionInfo",
	"android.telephony.TelephonyManager.getDeviceId", "android.telephony.TelephonyManager.getNetworkType",
	"android.webkit.WebView.loadUrl", "android.os.Build.VERSION.SDK_INT",
	"java.net.URL.openConnection", "java.net.HttpURLConnection.connect",
	"java.util.concurrent.Executors.newFixedThreadPool", "java.lang.Thread.start",
	"org.json.JSONObject.getString", "android.util.Log.d", "android.util.Base64.encodeToString",
	"android.app.NotificationManager.notify", "android.location.LocationManager.getLastKnownLocation",
	"android.provider.Settings.Secure.getString", "javax.crypto.Cipher.doFinal",
	"android.content.pm.PackageManager.getInstalledPackages",
}

// buildArtifacts builds the dex, manifest and per-listing APK bytes for every
// app in the ecosystem.
func (g *generator) buildArtifacts(eco *Ecosystem) error {
	// Index originals so clones can copy their code.
	byPackage := map[string]*App{}
	for _, a := range eco.Apps {
		if a.Kind == KindBenign || a.Kind == KindMalware {
			byPackage[a.Package] = a
		}
	}
	dexCache := map[string]*dex.File{}

	for _, app := range eco.Apps {
		var code *dex.File
		switch app.Kind {
		case KindSignatureClone, KindCodeClone:
			orig := byPackage[app.OriginalOf]
			if orig == nil {
				code = g.buildOwnCode(app)
			} else {
				origCode, ok := dexCache[orig.Package]
				if !ok {
					origCode = g.buildOwnCode(orig)
					dexCache[orig.Package] = origCode
				}
				code = g.repackageCode(origCode, orig.Package, app.Package)
			}
		default:
			var ok bool
			code, ok = dexCache[app.Package]
			if !ok {
				code = g.buildOwnCode(app)
				dexCache[app.Package] = code
			}
		}
		code = code.Clone()
		g.appendLibraryCode(code, app.Libraries)
		if app.MalwareFamily != "" {
			g.appendPayload(code, app.MalwareFamily)
		}
		if err := code.Validate(); err != nil {
			return fmt.Errorf("synth: generated dex for %s invalid: %w", app.Package, err)
		}

		for marketName, listing := range app.Listings {
			m := manifest.Manifest{
				Package:     app.Package,
				VersionCode: listing.VersionCode,
				VersionName: versionName(listing.VersionCode),
				MinSDK:      app.MinSDK,
				TargetSDK:   app.TargetSDK,
				AppLabel:    app.Name,
				Permissions: append([]string(nil), app.Permissions...),
				Components: []manifest.Component{
					{Kind: manifest.Activity, Name: app.Package + ".MainActivity",
						IntentActions: []string{"android.intent.action.MAIN"}, Exported: true},
				},
			}
			profile := g.profileByName(marketName)
			channel := map[string]string{
				"kgchannel": strings.ToLower(strings.ReplaceAll(marketName, " ", "_")),
			}
			if profile.RequiresJiagu {
				channel["jiagu"] = "360jiagubao-v3"
			}
			pkg := &apk.APK{
				Manifest:  &m,
				Dex:       code,
				Channel:   channel,
				Resources: resourceBlob(app.Package, listing.VersionCode),
			}
			data, err := apk.Build(pkg, app.Developer.Key)
			if err != nil {
				return fmt.Errorf("synth: build apk for %s in %s: %w", app.Package, marketName, err)
			}
			listing.APK = data
			// Pure per-listing derivation, like buildOwnCode's: Derive would
			// consume the parent stream, and this loop's map-iteration order
			// differs between processes, so listing metadata would not be
			// reproducible across runs of the same seed.
			rng := stats.NewRNG(g.cfg.Seed ^ hash64("meta:"+app.Package+"|"+marketName))
			listing.Meta = g.recordFor(rng, app, listing, profile, len(data))
		}
	}
	return nil
}

// buildOwnCode generates the app's first-party classes. The draw is
// deterministic per package.
//
// Besides framework APIs, every method also calls a few of the app's own
// internal helpers — in real corpora most invocations target the app's own
// (or obfuscated) methods, which is what gives each app's WuKong vector its
// distinctive dominant features and makes candidate indexing effective.
// Clones copy the original's code wholesale and therefore inherit its helper
// calls, exactly like real repackaged apps.
func (g *generator) buildOwnCode(app *App) *dex.File {
	rng := stats.NewRNG(g.cfg.Seed ^ hash64("code:"+app.Package))
	file := &dex.File{}

	pmap := permissions.DefaultMap()
	classCount := rng.Range(4, 12)
	// Distribute the APIs implied by the app's genuinely used permissions
	// across the classes so the over-privilege analysis sees them.
	var permissionAPIs []string
	for _, perm := range app.UsedPermissions {
		apis := pmap.APIsForPermission(perm)
		if len(apis) == 0 {
			continue
		}
		permissionAPIs = append(permissionAPIs, apis[rng.Intn(len(apis))])
	}
	sort.Strings(permissionAPIs)

	helperCount := rng.Range(3, 7)
	helpers := make([]string, helperCount)
	for h := range helpers {
		helpers[h] = fmt.Sprintf("%s.Helper.h%d", app.Package, h)
	}

	for c := 0; c < classCount; c++ {
		className := fmt.Sprintf("%s.%s%d", app.Package, []string{"Main", "Detail", "Util", "Net", "Data", "View"}[c%6], c)
		cls := dex.Class{Name: className}
		methodCount := rng.Range(2, 6)
		for mIdx := 0; mIdx < methodCount; mIdx++ {
			m := dex.Method{Name: fmt.Sprintf("m%d", mIdx)}
			callCount := rng.Range(2, 9)
			for k := 0; k < callCount; k++ {
				m.APICalls = append(m.APICalls, frameworkAPIPool[rng.Intn(len(frameworkAPIPool))])
			}
			helperCalls := rng.Range(1, 4)
			for k := 0; k < helperCalls; k++ {
				m.APICalls = append(m.APICalls, helpers[rng.Intn(len(helpers))])
			}
			if len(permissionAPIs) > 0 && mIdx == 0 {
				m.APICalls = append(m.APICalls, permissionAPIs[c%len(permissionAPIs)])
			}
			if rng.Bool(0.2) {
				m.IntentActions = append(m.IntentActions, "android.intent.action.VIEW")
			}
			if rng.Bool(0.08) {
				m.ContentURIs = append(m.ContentURIs, "content://media/external/images")
			}
			cls.Methods = append(cls.Methods, m)
		}
		file.AddClass(cls)
	}
	return file
}

// repackageCode copies the original's first-party code, renaming its classes
// into the clone's package (code-based clones) or keeping them (signature
// clones get the identical package anyway). A small "channel injection"
// class is added, which is what real repackagers do to redirect ad revenue.
func (g *generator) repackageCode(orig *dex.File, origPackage, clonePackage string) *dex.File {
	out := orig.Clone()
	if origPackage != clonePackage {
		for i, c := range out.Classes {
			if strings.HasPrefix(c.Name, origPackage+".") {
				out.Classes[i].Name = clonePackage + strings.TrimPrefix(c.Name, origPackage)
			}
		}
	}
	out.AddClass(dex.Class{
		Name: clonePackage + ".injected.RevenueRedirect",
		Methods: []dex.Method{{
			Name:     "redirect",
			APICalls: []string{"android.webkit.WebView.loadUrl", "java.net.URL.openConnection"},
		}},
	})
	return out
}

// appendLibraryCode adds the deterministic class set of each embedded library.
func (g *generator) appendLibraryCode(file *dex.File, libraries []string) {
	for _, lib := range libraries {
		rng := stats.NewRNG(hash64("lib:" + lib))
		classCount := 2 + rng.Intn(4)
		for c := 0; c < classCount; c++ {
			cls := dex.Class{Name: fmt.Sprintf("%s.internal.C%d", lib, c)}
			methodCount := 2 + rng.Intn(3)
			for mIdx := 0; mIdx < methodCount; mIdx++ {
				m := dex.Method{Name: fmt.Sprintf("f%d", mIdx)}
				callCount := 3 + rng.Intn(5)
				for k := 0; k < callCount; k++ {
					m.APICalls = append(m.APICalls, libraryAPIPool[rng.Intn(len(libraryAPIPool))])
				}
				// A library-specific marker call keeps different libraries'
				// features distinct even when they draw similar API subsets.
				m.APICalls = append(m.APICalls, "lib."+lib+".Api.call"+fmt.Sprint(mIdx))
				cls.Methods = append(cls.Methods, m)
			}
			file.AddClass(cls)
		}
	}
}

// appendPayload adds the malware family's payload classes.
func (g *generator) appendPayload(file *dex.File, familyName string) {
	fam, ok := avscan.FamilyByName(familyName)
	if !ok {
		return
	}
	file.AddClass(dex.Class{
		Name: fam.PayloadPrefix + ".Payload",
		Methods: []dex.Method{
			{Name: "activate", APICalls: append([]string{fam.MarkerAPI}, fam.SignatureAPIs...)},
			{Name: "beacon", APICalls: []string{"java.net.URL.openConnection", "android.util.Base64.encodeToString"}},
		},
	})
}

// resourceBlob produces a deterministic opaque resources.arsc payload whose
// size loosely scales with the version (newer builds carry more assets).
func resourceBlob(pkg string, version int64) []byte {
	size := 256 + int(version%512)
	out := make([]byte, size)
	seed := sha256.Sum256([]byte(pkg))
	for i := range out {
		out[i] = seed[i%len(seed)] ^ byte(i)
	}
	return out
}

// hash64 maps a string to a stable 64-bit value for seed derivation.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}
