package synth

import (
	"fmt"
	"sort"

	"marketscope/internal/market"
)

// Populate builds one market.Store per market and publishes every listing in
// the ecosystem to it, in a deterministic order. The returned map is keyed by
// market name and reflects the catalogs as of the first crawl.
func (e *Ecosystem) Populate() (map[string]*market.Store, error) {
	stores := make(map[string]*market.Store, len(e.Markets))
	for _, profile := range e.Markets {
		stores[profile.Name] = market.NewStore(profile)
	}
	// Publish apps ordered by descending downloads within each market so
	// the stores' insertion order resembles a popularity-sorted index.
	type pub struct {
		app     *App
		listing *Listing
	}
	byMarket := map[string][]pub{}
	for _, app := range e.Apps {
		for name, listing := range app.Listings {
			byMarket[name] = append(byMarket[name], pub{app: app, listing: listing})
		}
	}
	for name, pubs := range byMarket {
		store, ok := stores[name]
		if !ok {
			return nil, fmt.Errorf("synth: listing references unknown market %q", name)
		}
		sort.Slice(pubs, func(i, j int) bool {
			if pubs[i].listing.Downloads != pubs[j].listing.Downloads {
				return pubs[i].listing.Downloads > pubs[j].listing.Downloads
			}
			return pubs[i].app.Package < pubs[j].app.Package
		})
		for _, p := range pubs {
			if err := store.Add(p.listing.Meta, p.listing.APK); err != nil {
				return nil, fmt.Errorf("synth: publish %s to %s: %w", p.app.Package, name, err)
			}
		}
	}
	return stores, nil
}

// ApplyModeration advances the stores to the second-crawl state by removing
// every listing the market delisted between the two crawls. It returns the
// number of removals applied.
func (e *Ecosystem) ApplyModeration(stores map[string]*market.Store) int {
	removed := 0
	for _, app := range e.Apps {
		for name, listing := range app.Listings {
			if !listing.RemovedInSecondCrawl {
				continue
			}
			store, ok := stores[name]
			if !ok {
				continue
			}
			if store.Remove(app.Package) {
				removed++
			}
		}
	}
	return removed
}
