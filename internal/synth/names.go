// Package synth generates the synthetic app ecosystem the simulated markets
// serve: developers, apps, per-market listings, embedded libraries, and the
// misbehaviour ground truth (fake apps, clones, malware) whose prevalence the
// study measures.
//
// The original paper works from 6.2 M metadata records and 4.5 M APKs crawled
// from commercial app stores. Those inputs are unavailable offline, so this
// package produces a corpus whose *marginal distributions* follow the paper's
// reported measurements (category mix, download power law, API-level and
// release-date distributions, library usage, developer market coverage,
// misbehaviour rates per market). All generation is seeded and deterministic.
package synth

import (
	"fmt"
	"strings"

	"marketscope/internal/appmeta"
	"marketscope/internal/stats"
)

// Word pools for synthetic names. Package names are "com.<company>.<product>"
// style; app names are "<Adjective> <Noun>" style with category-flavoured
// nouns so name collisions (the raw material of fake-app detection) occur at
// realistic rates.
var (
	companyWords = []string{
		"zhangyue", "kuaikan", "meitu", "xunlei", "netdragon", "perfect", "cheetah",
		"sunny", "bluewave", "dragonsoft", "redstone", "silverapp", "golden", "moonlab",
		"starfish", "quickfox", "deepsea", "brightsky", "greenleaf", "firepeak",
		"softwind", "cloudnine", "pixelworks", "smartway", "easylife", "dailytech",
		"wisdom", "fortune", "lightning", "rainbow", "harmony", "phoenix", "tigerapp",
		"pandasoft", "lotus", "bamboo", "crane", "orchid", "jade", "pearl",
	}
	productWords = []string{
		"reader", "player", "browser", "launcher", "keyboard", "weather", "news",
		"music", "video", "photo", "camera", "wallet", "shop", "chat", "social",
		"game", "puzzle", "runner", "racing", "clean", "security", "battery",
		"manager", "notes", "calendar", "fitness", "doctor", "travel", "map",
		"translate", "dictionary", "radio", "comic", "novel", "live", "market",
		"assistant", "helper", "master", "box",
	}
	adjectiveWords = []string{
		"Super", "Happy", "Magic", "Smart", "Fast", "Easy", "Golden", "Lucky",
		"Mini", "Pro", "Ultra", "Daily", "Pocket", "Cloud", "Star", "Dream",
		"Sunny", "Royal", "Crystal", "Secret", "Wonder", "Power", "Mega", "Tiny",
	}
	categoryNouns = map[appmeta.Category][]string{
		appmeta.CategoryGame:            {"Saga", "Quest", "Legend", "Heroes", "Battle", "Puzzle", "Runner", "Racing", "Farm", "Castle", "Dragon", "Ninja"},
		appmeta.CategoryTools:           {"Cleaner", "Booster", "Manager", "Toolbox", "Scanner", "Backup"},
		appmeta.CategoryMusic:           {"Music", "Radio", "Ringtone", "Karaoke", "Player"},
		appmeta.CategoryVideo:           {"Video", "Theater", "Shows", "Clips", "Player"},
		appmeta.CategoryNews:            {"News", "Headlines", "Daily", "Times"},
		appmeta.CategorySocial:          {"Chat", "Friends", "Moments", "Circle"},
		appmeta.CategoryShopping:        {"Mall", "Deals", "Coupons", "Shop"},
		appmeta.CategoryFinance:         {"Wallet", "Bank", "Invest", "Ledger"},
		appmeta.CategoryLifestyle:       {"Life", "Home", "Recipes", "Style"},
		appmeta.CategoryPersonalization: {"Themes", "Wallpapers", "Icons", "Fonts"},
		appmeta.CategoryEducation:       {"Classroom", "Words", "Exam", "Study"},
		appmeta.CategoryPhotography:     {"Camera", "Editor", "Collage", "Filters"},
		appmeta.CategoryHealth:          {"Fitness", "Steps", "Doctor", "Sleep"},
		appmeta.CategoryBooks:           {"Reader", "Novels", "Comics", "Library"},
		appmeta.CategoryCommunication:   {"Messenger", "Mail", "Dialer", "Contacts"},
		appmeta.CategoryLocation:        {"Maps", "Navigator", "Metro", "Travel"},
	}
	genericNouns = []string{"App", "Helper", "Assistant", "Center", "Hub", "Studio", "Plus", "Express"}
)

// packageName builds a deterministic, valid package name from indices.
func packageName(g *stats.RNG, company string, serial int) string {
	product := productWords[g.Intn(len(productWords))]
	suffix := ""
	if serial > 0 {
		suffix = fmt.Sprintf("%d", serial)
	}
	return fmt.Sprintf("com.%s.%s%s", company, product, suffix)
}

// companyName picks a company word for a developer.
func companyName(g *stats.RNG) string {
	return companyWords[g.Intn(len(companyWords))]
}

// developerDisplayName renders the public developer name shown in market
// metadata.
func developerDisplayName(company string, serial int) string {
	base := strings.ToUpper(company[:1]) + company[1:]
	if serial == 0 {
		return base + " Studio"
	}
	return fmt.Sprintf("%s Studio %d", base, serial)
}

// appDisplayName builds an app name flavoured by its category.
func appDisplayName(g *stats.RNG, category appmeta.Category) string {
	adj := adjectiveWords[g.Intn(len(adjectiveWords))]
	nouns := categoryNouns[category]
	if len(nouns) == 0 {
		nouns = genericNouns
	}
	noun := nouns[g.Intn(len(nouns))]
	if g.Bool(0.25) {
		return fmt.Sprintf("%s %s %s", adj, noun, genericNouns[g.Intn(len(genericNouns))])
	}
	return fmt.Sprintf("%s %s", adj, noun)
}

// versionName renders a human-readable version string for a version code.
func versionName(code int64) string {
	major := code / 100
	minor := (code / 10) % 10
	patch := code % 10
	return fmt.Sprintf("%d.%d.%d", major, minor, patch)
}
