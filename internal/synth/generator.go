package synth

import (
	"fmt"
	"math"
	"sort"

	"marketscope/internal/appmeta"
	"marketscope/internal/avscan"
	"marketscope/internal/market"
	"marketscope/internal/signing"
	"marketscope/internal/stats"
)

// categoryDistribution approximates Figure 1: games account for roughly half
// of all listings, followed by lifestyle, personalization and tools; browsers,
// input methods and security tools are rare.
var categoryDistribution = map[appmeta.Category]float64{
	appmeta.CategoryGame:            38,
	appmeta.CategoryLifestyle:       8,
	appmeta.CategoryPersonalization: 7,
	appmeta.CategoryTools:           7,
	appmeta.CategoryEducation:       5,
	appmeta.CategoryEntertainment:   5,
	appmeta.CategoryBooks:           4,
	appmeta.CategoryVideo:           4,
	appmeta.CategoryMusic:           3,
	appmeta.CategoryNews:            3,
	appmeta.CategorySocial:          3,
	appmeta.CategoryShopping:        3,
	appmeta.CategoryPhotography:     3,
	appmeta.CategoryFinance:         2.5,
	appmeta.CategoryHealth:          2,
	appmeta.CategoryBusiness:        2,
	appmeta.CategoryCommunication:   2,
	appmeta.CategoryLocation:        2,
	appmeta.CategoryInputMethods:    0.7,
	appmeta.CategoryBrowsers:        0.6,
	appmeta.CategorySecurity:        0.7,
	appmeta.CategoryOther:           6,
}

// Global (Google-Play-leaning) library popularity, approximating Table 2 top.
var globalLibraryWeights = map[string]float64{
	"com.google.android.gms": 66, "com.google.ads": 62, "com.facebook": 21,
	"org.apache": 20, "com.squareup": 14, "com.google.gson": 13,
	"com.android.vending": 12, "com.unity3d": 12, "org.fmod": 10,
	"com.google.firebase": 9, "com.flurry": 6, "com.crashlytics": 6,
	"com.mopub": 4, "com.inmobi": 3, "com.startapp": 3, "com.twitter.sdk": 3,
	"com.nostra13": 5, "org.cocos2d": 3, "com.badlogic.gdx": 3,
}

// Chinese-market library popularity, approximating Table 2 bottom.
var chineseLibraryWeights = map[string]float64{
	"com.google.ads": 26, "org.apache": 24, "com.google.android.gms": 20,
	"com.tencent.mm": 17, "com.baidu": 17, "com.umeng": 16,
	"com.google.gson": 16, "com.alipay": 11, "com.facebook": 11,
	"com.nostra13": 11, "com.qq.e": 9, "com.sina.weibo": 7, "com.amap.api": 7,
	"com.tencent.open": 6, "com.getui": 5, "com.jpush": 5, "cn.jpush": 4,
	"com.xiaomi.mipush": 4, "com.tencent.bugly": 6, "com.iflytek": 3,
	"com.kyview": 3, "com.unionpay": 3, "com.unity3d": 5, "org.cocos2d": 3,
}

// Malware family mix for samples that circulate mainly in Google Play vs
// mainly in Chinese markets (Figure 12).
var gpFamilyWeights = map[string]float64{
	"airpush": 29, "revmob": 15, "leadbolt": 8, "adwo": 5, "dowgin": 4,
	"smsreg": 5, "youmi": 3, "domob": 3, "gappusin": 3, "kuguo": 0.6,
	"secapk": 2, "ramnit": 2, "mofin": 1, "eicar": 0.3,
}
var cnFamilyWeights = map[string]float64{
	"kuguo": 12.7, "airpush": 7, "smsreg": 6.5, "revmob": 4, "dowgin": 6,
	"gappusin": 5, "secapk": 4.5, "youmi": 4.5, "leadbolt": 3.5, "adwo": 3.5,
	"domob": 3, "commplat": 2.5, "adend": 2, "smspay": 2, "jiagu": 1.5,
	"ramnit": 2.5, "mofin": 1, "eicar": 0.2,
}

// Generate builds the full ground-truth ecosystem for the configuration.
func Generate(cfg Config) (*Ecosystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed),
		markets: cfg.marketProfiles(),
	}
	for _, m := range g.markets {
		if m.IsChinese() {
			g.chineseMarkets = append(g.chineseMarkets, m.Name)
		} else {
			g.hasGooglePlay = true
		}
		g.profileByName(m.Name) // warm the cache and validate
	}
	eco := &Ecosystem{Config: cfg, Markets: g.markets}

	g.generateDevelopers(eco)
	g.generateBaseApps(eco)
	g.injectMalware(eco)
	g.injectFakes(eco)
	g.injectClones(eco)
	g.placeListings(eco)
	if err := g.buildArtifacts(eco); err != nil {
		return nil, err
	}
	return eco, nil
}

type generator struct {
	cfg            Config
	rng            *stats.RNG
	markets        []market.Profile
	chineseMarkets []string
	hasGooglePlay  bool
	profiles       map[string]market.Profile
	devSerial      uint64
	pkgSerial      map[string]int
}

func (g *generator) profileByName(name string) market.Profile {
	if g.profiles == nil {
		g.profiles = make(map[string]market.Profile)
	}
	if p, ok := g.profiles[name]; ok {
		return p
	}
	p, ok := market.ProfileByName(name)
	if !ok {
		panic(fmt.Sprintf("synth: unknown market %q", name))
	}
	g.profiles[name] = p
	return p
}

// newDeveloperIdentity mints a unique signing key.
func (g *generator) newDeveloperIdentity(name string) *signing.Developer {
	g.devSerial++
	return signing.NewDeveloper(name, g.cfg.Seed^(g.devSerial*0x9E3779B97F4A7C15))
}

// uniquePackage returns a package name not yet used in the ecosystem.
func (g *generator) uniquePackage(rng *stats.RNG, company string) string {
	if g.pkgSerial == nil {
		g.pkgSerial = make(map[string]int)
	}
	for {
		serial := g.pkgSerial[company]
		pkg := packageName(rng, company, serial)
		g.pkgSerial[company] = serial + 1
		if _, taken := g.pkgSerial["used:"+pkg]; !taken {
			g.pkgSerial["used:"+pkg] = 1
			return pkg
		}
	}
}

// generateDevelopers creates the developer population with the strategy split
// of Section 5.1.
func (g *generator) generateDevelopers(eco *Ecosystem) {
	rng := g.rng.Derive(1)
	for i := 0; i < g.cfg.NumDevelopers; i++ {
		company := companyName(rng)
		dev := &Developer{
			Key:         g.newDeveloperIdentity(company),
			DisplayName: developerDisplayName(company, i),
			Company:     company,
			Quality:     rng.Float64(),
		}
		// Strategy split: ~30% Google-Play-only, ~22% both, ~48%
		// Chinese-only.
		roll := rng.Float64()
		switch {
		case !g.hasGooglePlay || roll < 0.48:
			dev.Strategy = StrategyChineseOnly
		case roll < 0.48+0.30:
			dev.Strategy = StrategyGlobalOnly
		default:
			dev.Strategy = StrategyBoth
		}
		dev.TargetMarkets = g.pickTargetMarkets(rng, dev)
		eco.Developers = append(eco.Developers, dev)
	}
}

// pickTargetMarkets chooses which markets a developer publishes to,
// reproducing Figure 7's coverage CDF (most developers target few stores,
// a handful target all 17).
func (g *generator) pickTargetMarkets(rng *stats.RNG, dev *Developer) []string {
	var targets []string
	switch dev.Strategy {
	case StrategyGlobalOnly:
		return []string{market.GooglePlay}
	case StrategyBoth:
		targets = append(targets, market.GooglePlay)
	}
	if len(g.chineseMarkets) == 0 {
		return targets
	}
	// Number of Chinese stores: heavy-tailed, 1..all.
	var count int
	switch {
	case rng.Bool(0.42):
		count = 1
	case rng.Bool(0.5):
		count = rng.Range(2, 3)
	case rng.Bool(0.7):
		hi := min(7, len(g.chineseMarkets))
		count = rng.Range(min(4, hi), hi)
	default:
		count = rng.Range(min(8, len(g.chineseMarkets)), len(g.chineseMarkets))
	}
	if count > len(g.chineseMarkets) {
		count = len(g.chineseMarkets)
	}
	// Weight store choice by catalog size so Tencent/25PP attract most
	// developers.
	weights := make([]float64, len(g.chineseMarkets))
	for i, name := range g.chineseMarkets {
		weights[i] = g.profileByName(name).CatalogWeight
	}
	chosen := map[int]bool{}
	for len(chosen) < count {
		chosen[rng.PickWeighted(weights)] = true
	}
	idxs := make([]int, 0, len(chosen))
	for idx := range chosen {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		targets = append(targets, g.chineseMarkets[idx])
	}
	return targets
}

// generateBaseApps creates the legitimate app population.
func (g *generator) generateBaseApps(eco *Ecosystem) {
	rng := g.rng.Derive(2)
	catSampler := newCategorySampler()
	// The tail exponent is chosen so that a laptop-scale corpus of a few
	// hundred to a few thousand apps still contains a meaningful head of
	// million-install apps (the BFS crawl of the paper is likewise biased
	// toward popular apps), while ~85% of apps stay below 10K installs.
	downloads, err := stats.NewBoundedPareto(0.30, 50, 6e8)
	if err != nil {
		panic(err)
	}
	for i := 0; i < g.cfg.NumApps; i++ {
		dev := eco.Developers[rng.Intn(len(eco.Developers))]
		category := catSampler.sample(rng)
		app := &App{
			Package:   g.uniquePackage(rng, dev.Company),
			Name:      appDisplayName(rng, category),
			Developer: dev,
			Category:  category,
			Kind:      KindBenign,
			Listings:  map[string]*Listing{},
		}
		// Popularity: heavy-tailed, boosted by developer quality.
		base := downloads.Sample(rng)
		app.BaseDownloads = int64(base * (0.4 + 1.2*dev.Quality))
		if app.BaseDownloads < 1 {
			app.BaseDownloads = 1
		}
		g.assignLifecycle(rng, app)
		g.assignLibraries(rng, app)
		g.assignPermissions(rng, app)
		app.Description = fmt.Sprintf("%s — a %s app by %s.", app.Name, app.Category, dev.DisplayName)
		eco.Apps = append(eco.Apps, app)
	}
}

// assignLifecycle picks release/update dates, versions and SDK levels. Apps
// maintained recently declare newer minimum API levels; abandoned apps keep
// the Gingerbread-era levels that dominate Chinese catalogs (Figures 3, 4).
func (g *generator) assignLifecycle(rng *stats.RNG, app *App) {
	dev := app.Developer
	crawl := g.cfg.CrawlDate

	// Whether the developer actively maintains this app. Google-Play-
	// focused developers maintain far more of their catalog.
	var maintainProb float64
	switch dev.Strategy {
	case StrategyGlobalOnly:
		maintainProb = 0.45
	case StrategyBoth:
		maintainProb = 0.35
	default:
		maintainProb = 0.12
	}
	maintained := rng.Bool(maintainProb + 0.2*dev.Quality)

	ageYears := 0.5 + rng.Float64()*5.2 // first release 0.5-5.7 years before crawl
	app.ReleaseDate = crawl.AddDate(0, 0, -int(ageYears*365))
	if maintained {
		// Updated within the last year, often within 6 months.
		daysAgo := rng.Range(5, 360)
		if rng.Bool(0.55) {
			daysAgo = rng.Range(5, 180)
		}
		app.UpdateDate = crawl.AddDate(0, 0, -daysAgo)
	} else {
		// Last touched 1.5 to ~5 years ago (never before first release).
		maxDays := int(ageYears * 365)
		minDays := 540
		if minDays > maxDays {
			minDays = maxDays
		}
		app.UpdateDate = crawl.AddDate(0, 0, -rng.Range(minDays, maxDays))
	}
	if app.UpdateDate.Before(app.ReleaseDate) {
		app.UpdateDate = app.ReleaseDate
	}

	// Version count grows with maintenance.
	versions := 1 + rng.Poisson(2)
	if maintained {
		versions += rng.Poisson(6)
	}
	app.VersionCode = int64(100 + versions*10 + rng.Intn(10))

	// Minimum SDK correlates with the update date and with the developer's
	// market orientation: Chinese-market developers keep Gingerbread-era
	// minimum API levels for device compatibility long after Google Play
	// developers have moved on (Section 4.3: 63% of Chinese-store apps
	// declare minSdk < 9 vs 22% on Google Play).
	chineseOriented := dev.Strategy != StrategyGlobalOnly
	var lowAPIProb float64
	switch {
	case app.UpdateDate.After(crawl.AddDate(0, -9, 0)):
		lowAPIProb = 0.05
	case app.UpdateDate.After(crawl.AddDate(-2, -6, 0)):
		lowAPIProb = 0.18
		if chineseOriented {
			lowAPIProb = 0.55
		}
	default:
		lowAPIProb = 0.32
		if chineseOriented {
			lowAPIProb = 0.78
		}
	}
	if rng.Bool(lowAPIProb) {
		app.MinSDK = []int{7, 7, 8, 8, 8}[rng.Intn(5)]
	} else if app.UpdateDate.After(crawl.AddDate(0, -9, 0)) {
		app.MinSDK = []int{14, 15, 16, 19, 21, 23}[rng.Intn(6)]
	} else {
		app.MinSDK = []int{9, 9, 10, 14, 15, 16}[rng.Intn(6)]
	}
	app.TargetSDK = app.MinSDK + rng.Range(0, 8)

	// Intrinsic rating: popular, maintained apps earn better ratings, and
	// Google-Play-oriented developers skew higher (over half of Google Play
	// apps are rated above 4 in the paper).
	quality := 0.3*dev.Quality + 0.4*rng.Float64()
	if maintained {
		quality += 0.2
	}
	if app.BaseDownloads > 1_000_000 {
		quality += 0.15
	}
	if dev.Strategy != StrategyChineseOnly {
		quality += 0.25
	}
	app.BaseRating = math.Min(5, 2.3+2.8*quality)
}

// assignLibraries embeds third-party libraries according to the developer's
// market orientation (Section 4.4, Table 2, Figure 5).
func (g *generator) assignLibraries(rng *stats.RNG, app *App) {
	weights := chineseLibraryWeights
	meanLibs := 13.0
	adShare := 0.53
	if app.Developer.Strategy == StrategyGlobalOnly {
		weights = globalLibraryWeights
		meanLibs = 8.0
		adShare = 0.70
	}
	// ~6-15% of apps ship with no third-party code at all.
	noLibProb := 0.06
	if app.Developer.Strategy != StrategyGlobalOnly {
		noLibProb = 0.12
	}
	if rng.Bool(noLibProb) {
		return
	}
	prefixes := make([]string, 0, len(weights))
	w := make([]float64, 0, len(weights))
	for p, wt := range weights {
		prefixes = append(prefixes, p)
		w = append(w, wt)
	}
	sort.Strings(prefixes)
	// Re-align weights with the sorted prefix order for determinism.
	for i, p := range prefixes {
		w[i] = weights[p]
	}
	count := 1 + rng.Poisson(meanLibs-1)
	if count > len(prefixes) {
		count = len(prefixes)
	}
	chosen := map[string]bool{}
	for len(chosen) < count {
		chosen[prefixes[rng.PickWeighted(w)]] = true
	}
	for _, p := range prefixes {
		if chosen[p] {
			app.Libraries = append(app.Libraries, p)
		}
	}
	// Advertising libraries: ensure presence matches the target share. The
	// pools deliberately exclude SDKs that double as grayware families
	// (airpush, youmi, domob, ...): those only enter the corpus through
	// malware injection, so the AV ground truth stays aligned with the
	// intent of the developer.
	if rng.Bool(adShare) {
		adPool := []string{"com.google.ads", "com.umeng", "com.qq.e",
			"com.kyview", "com.mopub", "com.inmobi", "com.startapp"}
		if app.Developer.Strategy == StrategyGlobalOnly {
			adPool = []string{"com.google.ads", "com.google.ads", "com.google.ads", "com.mopub",
				"com.inmobi", "com.startapp"}
		}
		ad := adPool[rng.Intn(len(adPool))]
		if !contains(app.Libraries, ad) {
			app.Libraries = append(app.Libraries, ad)
		}
	} else {
		// Strip ad libraries picked by the general draw so the app really
		// has none.
		app.Libraries = removeAdLibraries(app.Libraries)
	}
	app.AdLibraries = adLibrariesOf(app.Libraries)
	sort.Strings(app.Libraries)
}

// adPrefixes is the subset of library prefixes that are advertising SDKs,
// mirrored from the libdetect catalog.
var adPrefixes = map[string]bool{
	"com.google.ads": true, "com.mopub": true, "com.inmobi": true, "com.startapp": true,
	"com.airpush": true, "com.revmob": true, "com.leadbolt": true, "com.qq.e": true,
	"net.youmi": true, "cn.domob": true, "com.adwo": true, "com.kyview": true,
	"com.kuguo.sdk": true, "com.dowgin": true, "com.waps": true, "com.bytedance": true,
}

func adLibrariesOf(libs []string) []string {
	var out []string
	for _, l := range libs {
		if adPrefixes[l] {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

func removeAdLibraries(libs []string) []string {
	var out []string
	for _, l := range libs {
		if !adPrefixes[l] {
			out = append(out, l)
		}
	}
	return out
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// newCategorySampler builds the Figure 1 category sampler.
func newCategorySampler() *categorySampler {
	cats := appmeta.Categories()
	labels := make([]string, len(cats))
	weights := make([]float64, len(cats))
	for i, c := range cats {
		labels[i] = string(c)
		weights[i] = categoryDistribution[c]
		if weights[i] == 0 {
			weights[i] = 0.5
		}
	}
	sampler, err := stats.NewCategorical(labels, weights)
	if err != nil {
		panic(err)
	}
	return &categorySampler{sampler: sampler}
}

type categorySampler struct{ sampler *stats.Categorical }

func (s *categorySampler) sample(rng *stats.RNG) appmeta.Category {
	return appmeta.Category(s.sampler.Sample(rng))
}

// familySampler builds a malware-family sampler from a weight table.
func familySampler(weights map[string]float64) *stats.Categorical {
	names := make([]string, 0, len(weights))
	for n := range weights {
		names = append(names, n)
	}
	sort.Strings(names)
	w := make([]float64, len(names))
	for i, n := range names {
		w[i] = weights[n]
	}
	s, err := stats.NewCategorical(names, w)
	if err != nil {
		panic(err)
	}
	return s
}

// injectMalware marks a fraction of the base apps as carrying a payload.
func (g *generator) injectMalware(eco *Ecosystem) {
	rng := g.rng.Derive(3)
	gpFamilies := familySampler(gpFamilyWeights)
	cnFamilies := familySampler(cnFamilyWeights)
	for _, app := range eco.Apps {
		if !rng.Bool(g.cfg.MalwareRate) {
			continue
		}
		app.Kind = KindMalware
		if app.Developer.Strategy == StrategyGlobalOnly {
			app.MalwareFamily = gpFamilies.Sample(rng)
		} else {
			app.MalwareFamily = cnFamilies.Sample(rng)
		}
		if _, ok := avscan.FamilyByName(app.MalwareFamily); !ok {
			panic("synth: family sampler produced unknown family " + app.MalwareFamily)
		}
	}
}

// injectFakes creates fake imitations of popular apps.
func (g *generator) injectFakes(eco *Ecosystem) {
	rng := g.rng.Derive(4)
	var popular []*App
	for _, a := range eco.Apps {
		if a.BaseDownloads >= 1_000_000 && a.Kind == KindBenign {
			popular = append(popular, a)
		}
	}
	var fakes []*App
	for _, target := range popular {
		n := rng.Poisson(g.cfg.FakeRate)
		for i := 0; i < n; i++ {
			dev := g.newShadyDeveloper(eco, rng)
			fake := &App{
				Package:       g.uniquePackage(rng, dev.Company),
				Name:          target.Name, // identical display name
				Developer:     dev,
				Category:      target.Category,
				Kind:          KindFake,
				OriginalOf:    target.Package,
				BaseDownloads: int64(rng.Range(1, 900)),
				MinSDK:        target.MinSDK,
				TargetSDK:     target.TargetSDK,
				VersionCode:   100 + int64(rng.Intn(30)),
				ReleaseDate:   g.cfg.CrawlDate.AddDate(0, -rng.Range(2, 20), 0),
				BaseRating:    0,
				Listings:      map[string]*Listing{},
			}
			fake.UpdateDate = fake.ReleaseDate
			g.assignLibraries(rng, fake)
			g.assignPermissions(rng, fake)
			// Many fakes double as malware carriers.
			if rng.Bool(0.5) {
				fake.MalwareFamily = familySampler(cnFamilyWeights).Sample(rng)
			}
			fakes = append(fakes, fake)
		}
	}
	eco.Apps = append(eco.Apps, fakes...)
}

// injectClones creates repackaged copies (signature-based and code-based) of
// popular apps.
func (g *generator) injectClones(eco *Ecosystem) {
	rng := g.rng.Derive(5)
	var popular []*App
	for _, a := range eco.Apps {
		if a.BaseDownloads >= 200_000 && a.Kind == KindBenign {
			popular = append(popular, a)
		}
	}
	var clones []*App
	for _, orig := range popular {
		n := rng.Poisson(g.cfg.CloneRate)
		for i := 0; i < n; i++ {
			dev := g.newShadyDeveloper(eco, rng)
			clone := &App{
				Developer:       dev,
				Name:            orig.Name,
				Category:        orig.Category,
				OriginalOf:      orig.Package,
				BaseDownloads:   int64(rng.Range(10, 20_000)),
				MinSDK:          orig.MinSDK,
				TargetSDK:       orig.TargetSDK,
				VersionCode:     orig.VersionCode,
				ReleaseDate:     orig.ReleaseDate.AddDate(0, rng.Range(1, 10), 0),
				BaseRating:      0,
				Libraries:       append([]string(nil), orig.Libraries...),
				AdLibraries:     append([]string(nil), orig.AdLibraries...),
				Permissions:     append([]string(nil), orig.Permissions...),
				UsedPermissions: append([]string(nil), orig.UsedPermissions...),
				Listings:        map[string]*Listing{},
			}
			clone.UpdateDate = clone.ReleaseDate
			if rng.Bool(0.35) {
				// Signature-based clone: keeps the package name, signed by a
				// different key.
				clone.Kind = KindSignatureClone
				clone.Package = orig.Package
			} else {
				// Code-based clone: renamed package, near-identical code.
				clone.Kind = KindCodeClone
				clone.Package = g.uniquePackage(rng, dev.Company)
				clone.Name = orig.Name + " " + []string{"Free", "HD", "Pro", "Lite", "2017"}[rng.Intn(5)]
			}
			// Clones frequently carry additional payloads, but most are
			// plain repackaging for ad revenue: the paper finds only 38.3%
			// of malware is repackaged and vice versa.
			if rng.Bool(0.3) {
				clone.MalwareFamily = familySampler(cnFamilyWeights).Sample(rng)
			}
			clones = append(clones, clone)
		}
	}
	eco.Apps = append(eco.Apps, clones...)
}

// newShadyDeveloper creates a throwaway developer identity used by fake/clone
// publishers, biased toward Chinese-only distribution.
func (g *generator) newShadyDeveloper(eco *Ecosystem, rng *stats.RNG) *Developer {
	company := companyName(rng)
	dev := &Developer{
		Key:         g.newDeveloperIdentity(company + "-x"),
		DisplayName: developerDisplayName(company, 9000+len(eco.Developers)),
		Company:     company,
		Strategy:    StrategyChineseOnly,
		Quality:     rng.Float64() * 0.3,
	}
	if len(g.chineseMarkets) == 0 {
		dev.Strategy = StrategyGlobalOnly
	}
	dev.TargetMarkets = g.pickTargetMarkets(rng, dev)
	eco.Developers = append(eco.Developers, dev)
	return dev
}
