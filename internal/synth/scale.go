package synth

import (
	"fmt"
	"time"

	"marketscope/internal/appmeta"
	"marketscope/internal/market"
	"marketscope/internal/stats"
)

// ScaleConfig sizes a streamed, metadata-only corpus for the scaling
// benchmarks. Unlike Generate, which builds full APK bytes for a few hundred
// listings, the scale generator emits only the market-facing metadata record
// of each listing — the shape the compressed column store ingests — so
// corpora of 100k–1M rows generate in seconds and only ever exist one record
// at a time during generation.
type ScaleConfig struct {
	// Seed makes the corpus reproducible: the i-th record is a pure function
	// of (Seed, i), independent of generation order or process.
	Seed uint64
	// Rows is the number of listing records to stream.
	Rows int
	// NumApps is the distinct package population; listings cross-list these
	// packages across markets. 0 means Rows/3 (so the average package is
	// listed in three markets, roughly the paper's cross-listing rate).
	NumApps int
	// NumDevelopers is the distinct developer population. 0 means
	// NumApps/8 + 1.
	NumDevelopers int
	// StartDate anchors the release-date ramp; zero means 2016-01-01 UTC.
	// Release dates grow (noisily) with the row index, mirroring how real
	// crawl snapshots arrive roughly in publication order — the clustering
	// that makes zone maps effective on date-range filters.
	StartDate time.Time
}

// releaseStep is the fixed per-row advance of the release-date ramp. It must
// not depend on Rows — the i-th record is a pure function of (Seed, i), and a
// Rows-derived step would give the same row different dates in a 400-row and
// a 100k-row corpus, breaking the prefix contract. Ten minutes puts the
// headline 100k corpus at ~two years of releases, the paper's crawl window.
const releaseStep = 10 * time.Minute

func (c ScaleConfig) withDefaults() (ScaleConfig, error) {
	if c.Rows <= 0 {
		return c, fmt.Errorf("synth: ScaleConfig.Rows must be positive, got %d", c.Rows)
	}
	if c.NumApps <= 0 {
		c.NumApps = c.Rows / 3
		if c.NumApps == 0 {
			c.NumApps = 1
		}
	}
	if c.NumDevelopers <= 0 {
		c.NumDevelopers = c.NumApps/8 + 1
	}
	if c.StartDate.IsZero() {
		c.StartDate = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return c, nil
}

// scaledCategories is the market-native category vocabulary of the scaled
// corpus: one native spelling per consolidated category plus the sloppy
// variants real Chinese stores serve. Low cardinality by construction — the
// dictionary-encoding showcase.
func scaledCategories() []string {
	cats := appmeta.Categories()
	out := make([]string, 0, len(cats)+3)
	for _, c := range cats {
		out = append(out, string(c))
	}
	return append(out, "Unclassified", "102229", "Online Game")
}

// StreamListings streams cfg.Rows listing records, invoking yield once per
// record in row order. The record passed to yield is yielded by value and
// never retained, so the corpus is never fully resident in the generator —
// the consumer decides what to keep. A non-nil error from yield aborts the
// stream and is returned unchanged.
//
// Determinism contract: record i is derived from a stats.RNG seeded purely by
// (Seed, i). Two streams of the same config yield identical records in
// identical order, across processes; changing Rows does not change the
// records shared by both sizes (the 400-row prefix of a 100k corpus IS the
// 400-row corpus of the same seed), provided NumApps and NumDevelopers are
// pinned explicitly — their defaults derive from Rows.
//
// Listings draw (market, package) independently, so a package can appear
// twice in one market with different version rows — harmless for the scan
// and aggregation benchmarks this corpus feeds, which treat every row as one
// listing.
func StreamListings(cfg ScaleConfig, yield func(i int, rec appmeta.Record) error) error {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	profiles := market.Profiles()
	weights := make([]float64, len(profiles))
	for i, p := range profiles {
		weights[i] = p.CatalogWeight
	}
	cats := scaledCategories()

	for i := 0; i < cfg.Rows; i++ {
		rng := stats.NewRNG(cfg.Seed ^ hash64(fmt.Sprintf("scale:%d", i)))
		profile := profiles[rng.PickWeighted(weights)]
		appIdx := rng.Intn(cfg.NumApps)
		devIdx := appIdx % cfg.NumDevelopers

		rating := 0.0
		if !rng.Bool(profile.UnratedShare) {
			rating = 1 + 4*rng.Float64()
		} else if profile.DefaultRating > 0 {
			rating = profile.DefaultRating
		}
		downloads := int64(-1)
		if profile.ReportsDownloads {
			downloads = int64(rng.LogNormal(8, 2.2))
		}

		// The ramp: monotone in i up to one day of jitter, so consecutive
		// rows (and therefore column segments) hold adjacent dates.
		release := cfg.StartDate.Add(time.Duration(i)*releaseStep + time.Duration(rng.Float64()*float64(24*time.Hour)))
		update := release.Add(time.Duration(rng.Exponential(45*24) * float64(time.Hour)))

		versionCode := int64(rng.Range(1, 60))
		rec := appmeta.Record{
			Market:        profile.Name,
			Package:       fmt.Sprintf("com.scale.app%07d", appIdx),
			AppName:       fmt.Sprintf("Scale App %d", appIdx),
			Category:      cats[rng.Intn(len(cats))],
			DeveloperName: fmt.Sprintf("scale-dev-%05d", devIdx),
			VersionCode:   versionCode,
			VersionName:   versionName(versionCode),
			Downloads:     downloads,
			Rating:        rating,
			ReleaseDate:   release.UTC(),
			UpdateDate:    update.UTC(),
			APKSize:       int64(rng.LogNormal(16.3, 0.9)),
			HasAds:        profile.ReportsAds && rng.Bool(0.55),
			HasIAP:        profile.ReportsIAP && rng.Bool(0.25),
		}
		if err := yield(i, rec); err != nil {
			return err
		}
	}
	return nil
}
