package synth

import (
	"bytes"
	"reflect"
	"testing"

	"marketscope/internal/apk"
	"marketscope/internal/market"
)

// smallEcosystem is shared across tests in this package; generation is
// deterministic so sharing is safe.
var smallEcosystem *Ecosystem

func ecosystem(t *testing.T) *Ecosystem {
	t.Helper()
	if smallEcosystem != nil {
		return smallEcosystem
	}
	eco, err := Generate(SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	smallEcosystem = eco
	return eco
}

func TestConfigValidate(t *testing.T) {
	good := SmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := SmallConfig()
	bad.NumApps = 3
	if err := bad.Validate(); err == nil {
		t.Error("tiny NumApps accepted")
	}
	bad = SmallConfig()
	bad.NumDevelopers = 1
	if err := bad.Validate(); err == nil {
		t.Error("tiny NumDevelopers accepted")
	}
	bad = SmallConfig()
	bad.MalwareRate = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad malware rate accepted")
	}
	bad = SmallConfig()
	bad.Markets = []string{"Not A Market"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown market accepted")
	}
	bad = SmallConfig()
	bad.CrawlDate = SmallConfig().CrawlDate.AddDate(-100, 0, 0)
	if err := bad.Validate(); err != nil {
		t.Errorf("old crawl date rejected: %v", err)
	}
}

func TestGenerateBasicShape(t *testing.T) {
	eco := ecosystem(t)
	cfg := SmallConfig()
	if len(eco.Markets) != market.NumMarkets() {
		t.Errorf("markets = %d, want %d", len(eco.Markets), market.NumMarkets())
	}
	if len(eco.Apps) < cfg.NumApps {
		t.Errorf("apps = %d, want >= %d (misbehaviour should only add)", len(eco.Apps), cfg.NumApps)
	}
	if len(eco.Developers) < cfg.NumDevelopers {
		t.Errorf("developers = %d, want >= %d", len(eco.Developers), cfg.NumDevelopers)
	}
	if eco.NumListings() <= len(eco.Apps)/2 {
		t.Errorf("listings = %d, implausibly few for %d apps", eco.NumListings(), len(eco.Apps))
	}
	gt := eco.GroundTruth()
	if gt.Malware == 0 || gt.Fakes == 0 || gt.CodeClones == 0 || gt.SignatureClones == 0 {
		t.Errorf("missing misbehaviour classes: %+v", gt)
	}
	if gt.Benign < gt.Malware {
		t.Errorf("benign apps should dominate: %+v", gt)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumApps = 40
	cfg.NumDevelopers = 15
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Apps) != len(b.Apps) || a.NumListings() != b.NumListings() {
		t.Fatalf("same seed produced different corpora: %d/%d apps, %d/%d listings",
			len(a.Apps), len(b.Apps), a.NumListings(), b.NumListings())
	}
	for i := range a.Apps {
		if a.Apps[i].Package != b.Apps[i].Package || a.Apps[i].Kind != b.Apps[i].Kind {
			t.Fatalf("app %d differs: %s/%s vs %s/%s", i,
				a.Apps[i].Package, a.Apps[i].Kind, b.Apps[i].Package, b.Apps[i].Kind)
		}
		// Every listing must match byte for byte, metadata included. The
		// metadata draw once rode on map-iteration order over Listings, so
		// Category/DeveloperName/HasIAP differed between two generates of the
		// same seed; this guards the pure per-listing derivation.
		if len(a.Apps[i].Listings) != len(b.Apps[i].Listings) {
			t.Fatalf("app %d listing count differs", i)
		}
		for mkt, la := range a.Apps[i].Listings {
			lb, ok := b.Apps[i].Listings[mkt]
			if !ok {
				t.Fatalf("app %d missing %s listing on regenerate", i, mkt)
			}
			if !reflect.DeepEqual(la.Meta, lb.Meta) {
				t.Fatalf("app %d %s metadata differs across generates:\n%+v\nvs\n%+v",
					i, mkt, la.Meta, lb.Meta)
			}
			if !bytes.Equal(la.APK, lb.APK) {
				t.Fatalf("app %d %s APK bytes differ across generates", i, mkt)
			}
		}
	}
	// A different seed must produce a different corpus.
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Apps {
		if i < len(c.Apps) && a.Apps[i].Package == c.Apps[i].Package {
			same++
		}
	}
	if same == len(a.Apps) {
		t.Error("different seeds produced identical package sequences")
	}
}

func TestGeneratedAPKsParse(t *testing.T) {
	eco := ecosystem(t)
	parsed := 0
	for _, app := range eco.Apps {
		for marketName, listing := range app.Listings {
			if parsed >= 50 {
				return
			}
			p, err := apk.Parse(listing.APK)
			if err != nil {
				t.Fatalf("APK for %s in %s does not parse: %v", app.Package, marketName, err)
			}
			if p.Manifest.Package != app.Package {
				t.Errorf("parsed package %q, want %q", p.Manifest.Package, app.Package)
			}
			if p.Manifest.VersionCode != listing.VersionCode {
				t.Errorf("parsed version %d, want %d", p.Manifest.VersionCode, listing.VersionCode)
			}
			if p.Developer() != app.Developer.Key.Fingerprint() {
				t.Errorf("parsed developer mismatch for %s", app.Package)
			}
			if len(p.Channel) == 0 {
				t.Errorf("listing %s/%s has no channel file", marketName, app.Package)
			}
			parsed++
		}
	}
	if parsed == 0 {
		t.Fatal("no listings to parse")
	}
}

func TestChannelFilesDifferAcrossMarkets(t *testing.T) {
	eco := ecosystem(t)
	for _, app := range eco.Apps {
		if len(app.Listings) < 2 {
			continue
		}
		hashes := map[string]bool{}
		versions := map[int64]bool{}
		for _, listing := range app.Listings {
			p, err := apk.Parse(listing.APK)
			if err != nil {
				t.Fatal(err)
			}
			hashes[p.MD5] = true
			versions[listing.VersionCode] = true
		}
		// Same app listed in multiple markets: archives differ (channel
		// files) even when the version is the same.
		if len(versions) == 1 && len(hashes) < 2 {
			t.Errorf("%s: multi-market listings share identical archives", app.Package)
		}
		return // one multi-market app is enough
	}
}

func TestMalwarePlacementRespectsVetting(t *testing.T) {
	eco := ecosystem(t)
	listed := map[string]int{}  // market -> total listings
	malware := map[string]int{} // market -> malicious listings
	for _, app := range eco.Apps {
		for name := range app.Listings {
			listed[name]++
			if app.IsMalicious() {
				malware[name]++
			}
		}
	}
	gpRate := rate(malware[market.GooglePlay], listed[market.GooglePlay])
	cnMal, cnAll := 0, 0
	for name, n := range listed {
		if name == market.GooglePlay {
			continue
		}
		cnAll += n
		cnMal += malware[name]
	}
	cnRate := rate(cnMal, cnAll)
	if gpRate >= cnRate {
		t.Errorf("Google Play malware rate (%.3f) should be below Chinese markets (%.3f)", gpRate, cnRate)
	}
}

func rate(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

func TestDeveloperStrategies(t *testing.T) {
	eco := ecosystem(t)
	counts := map[PublishStrategy]int{}
	for _, d := range eco.Developers {
		counts[d.Strategy]++
		switch d.Strategy {
		case StrategyGlobalOnly:
			if len(d.TargetMarkets) != 1 || d.TargetMarkets[0] != market.GooglePlay {
				t.Errorf("global-only developer targets %v", d.TargetMarkets)
			}
		case StrategyChineseOnly:
			for _, m := range d.TargetMarkets {
				if m == market.GooglePlay {
					t.Errorf("chinese-only developer targets Google Play")
				}
			}
		}
	}
	if counts[StrategyChineseOnly] == 0 || counts[StrategyGlobalOnly] == 0 || counts[StrategyBoth] == 0 {
		t.Errorf("strategy mix missing a class: %v", counts)
	}
}

func TestPopulateAndModeration(t *testing.T) {
	eco := ecosystem(t)
	stores, err := eco.Populate()
	if err != nil {
		t.Fatalf("Populate: %v", err)
	}
	if len(stores) != len(eco.Markets) {
		t.Fatalf("stores = %d, want %d", len(stores), len(eco.Markets))
	}
	total := 0
	for _, s := range stores {
		total += s.Len()
	}
	if total != eco.NumListings() {
		t.Errorf("store listings = %d, ecosystem listings = %d", total, eco.NumListings())
	}
	removed := eco.ApplyModeration(stores)
	if removed == 0 {
		t.Error("moderation removed nothing; Table 6 would be empty")
	}
	afterTotal := 0
	for _, s := range stores {
		afterTotal += s.Len()
	}
	if afterTotal != total-removed {
		t.Errorf("after moderation %d listings, want %d", afterTotal, total-removed)
	}
}

func TestListingMetadataConsistency(t *testing.T) {
	eco := ecosystem(t)
	xiaomiSeen := false
	for _, app := range eco.Apps {
		for name, l := range app.Listings {
			if err := l.Meta.Validate(); err != nil {
				t.Fatalf("invalid record for %s in %s: %v", app.Package, name, err)
			}
			if l.Meta.Market != name || l.Meta.Package != app.Package {
				t.Fatalf("metadata identity mismatch for %s in %s", app.Package, name)
			}
			profile, _ := market.ProfileByName(name)
			if !profile.ReportsDownloads {
				xiaomiSeen = true
				if l.Meta.Downloads != -1 {
					t.Errorf("%s should not report downloads, got %d", name, l.Meta.Downloads)
				}
			}
			if l.Meta.Rating < 0 || l.Meta.Rating > 5 {
				t.Errorf("rating out of range: %g", l.Meta.Rating)
			}
		}
	}
	if !xiaomiSeen {
		t.Log("no listings on non-reporting markets in this corpus (acceptable for small configs)")
	}
}

func TestOutdatedListingsExist(t *testing.T) {
	eco := ecosystem(t)
	stale := 0
	multi := 0
	for _, app := range eco.Apps {
		if len(app.Listings) < 2 {
			continue
		}
		multi++
		for _, l := range app.Listings {
			if l.VersionCode < app.VersionCode {
				stale++
				break
			}
		}
	}
	if multi > 20 && stale == 0 {
		t.Error("no outdated listings generated; Figure 9 would be degenerate")
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := SmallConfig()
	cfg.NumApps = 60
	cfg.NumDevelopers = 25
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
