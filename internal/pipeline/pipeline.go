// Package pipeline provides the concurrency primitives behind the parallel
// build/enrich path of the study: a work-stealing index pool (ForEach), a
// sharded map/merge fold for building per-worker accumulators (MapMerge), a
// sharded exactly-once memoization cache (Cache) and a serialized progress
// tracker (Tracker).
//
// The primitives are designed so that the parallel pipeline is byte-for-byte
// deterministic: every index is processed exactly once, each index writes
// only to state it owns, and merge steps are restricted to order-independent
// (commutative, associative) accumulators. Under those rules the output of a
// run with N workers is identical to the serial run, which the analysis
// package keeps behind Workers == 1 as the oracle for its equivalence tests.
//
// Consumers beyond the enrichment pipeline: the analysis scheduler runs its
// dependency-ordered task waves on ForEach, the clone-detection index sweeps
// on it too, Cache memoizes the per-APK AV scans, and the query engine's
// parallel scan and grouping stages follow the same chunk-and-merge-in-order
// discipline — one discipline carrying the repo's determinism-under-
// parallelism argument end to end.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean runtime.NumCPU(),
// and the result is never larger than n (spawning more workers than items
// only burns goroutines) or smaller than 1.
func Workers(knob, n int) int {
	w := knob
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if n > 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachWorker is the shared work-stealing loop: workers goroutines drain
// the indices [0, n) off one atomic counter, calling fn(worker, i) for each.
// Every index is claimed by exactly one worker. workers must already be
// resolved (>= 2).
func forEachWorker(n, workers int, fn func(worker, i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) across the given number of
// workers. Each index is handed to exactly one worker via an atomic
// work-stealing counter, so fn must only write state owned by index i; under
// that rule the result is deterministic regardless of the worker count.
// With workers <= 1 the loop runs serially on the calling goroutine.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	forEachWorker(n, workers, func(_, i int) { fn(i) })
}

// MapMerge folds the indices [0, n) into per-worker accumulators and merges
// them into one. newAcc builds an empty accumulator, fold adds index i to a
// worker's private accumulator, and merge folds src into dst (dst is always
// the first worker's accumulator; merges run serially after all workers
// finish, in worker order).
//
// Which indices land in which worker's accumulator is not deterministic, so
// the accumulator must be order-independent: fold+merge must commute (counts,
// set unions, max/min — not ordered appends). Under that rule the merged
// result is identical to the serial fold, which is what makes the learned
// feature database independent of the worker count.
func MapMerge[A any](n, workers int, newAcc func() A, fold func(acc A, i int), merge func(dst, src A)) A {
	workers = Workers(workers, n)
	if workers == 1 {
		acc := newAcc()
		for i := 0; i < n; i++ {
			fold(acc, i)
		}
		return acc
	}
	accs := make([]A, workers)
	for w := range accs {
		accs[w] = newAcc()
	}
	forEachWorker(n, workers, func(worker, i int) { fold(accs[worker], i) })
	dst := accs[0]
	for _, src := range accs[1:] {
		merge(dst, src)
	}
	return dst
}

// Tracker serializes progress reports from concurrent workers: Tick may be
// called from any goroutine, and the callback always observes monotonically
// increasing done counts, one call at a time. A nil Tracker (no callback
// installed) is valid and Tick on it is a no-op.
type Tracker struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

// NewTracker builds a tracker over total items reporting to fn. It returns
// nil when fn is nil, so callers can unconditionally Tick.
func NewTracker(total int, fn func(done, total int)) *Tracker {
	if fn == nil {
		return nil
	}
	return &Tracker{total: total, fn: fn}
}

// Tick records one finished item and reports the new count.
func (t *Tracker) Tick() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	t.fn(t.done, t.total)
}
