package pipeline

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		knob, n, want int
	}{
		{0, 100, runtime.NumCPU()},
		{-3, 100, runtime.NumCPU()},
		{1, 100, 1},
		{4, 100, 4},
		{8, 3, 3}, // never more workers than items
		{8, 0, 8}, // n == 0 means "unknown", keep the knob
		{0, 1, 1}, // single item runs serially
	}
	for _, c := range cases {
		want := c.want
		if want > c.n && c.n > 0 {
			want = c.n
		}
		if got := Workers(c.knob, c.n); got != want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.knob, c.n, got, want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, runtime.NumCPU() + 2} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapMergeMatchesSerialFold(t *testing.T) {
	// Accumulate a commutative histogram of i%7 and compare against the
	// serial oracle for several worker counts.
	const n = 5000
	newAcc := func() map[int]int { return map[int]int{} }
	fold := func(acc map[int]int, i int) { acc[i%7]++ }
	merge := func(dst, src map[int]int) {
		for k, v := range src {
			dst[k] += v
		}
	}
	want := MapMerge(n, 1, newAcc, fold, merge)
	for _, workers := range []int{2, 3, 8} {
		got := MapMerge(n, workers, newAcc, fold, merge)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d buckets, want %d", workers, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("workers=%d: bucket %d = %d, want %d", workers, k, got[k], v)
			}
		}
	}
}

func TestCacheComputesOncePerKey(t *testing.T) {
	c := NewCache[int]()
	var computes atomic.Int32
	const n = 2000
	results := make([]int, n)
	ForEach(n, 8, func(i int) {
		key := string(rune('a' + i%5))
		results[i] = c.Do(key, func() int {
			computes.Add(1)
			return i % 5 // first caller wins; all later callers see its value
		})
	})
	if got := computes.Load(); got != 5 {
		t.Fatalf("compute ran %d times, want 5", got)
	}
	if c.Len() != 5 {
		t.Fatalf("cache holds %d keys, want 5", c.Len())
	}
	for i := 0; i < n; i++ {
		if results[i] != results[i%5] {
			t.Fatalf("key %d: callers disagree on cached value", i%5)
		}
	}
}

func TestTrackerSerializesTicks(t *testing.T) {
	var last, calls int
	tr := NewTracker(100, func(done, total int) {
		if total != 100 {
			t.Errorf("total = %d, want 100", total)
		}
		if done != last+1 {
			t.Errorf("done jumped from %d to %d", last, done)
		}
		last = done
		calls++
	})
	ForEach(100, 8, func(int) { tr.Tick() })
	if calls != 100 || last != 100 {
		t.Fatalf("callback saw %d calls ending at %d, want 100/100", calls, last)
	}
}

func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	tr.Tick() // must not panic
	if NewTracker(10, nil) != nil {
		t.Fatal("NewTracker(nil fn) should return nil")
	}
}
