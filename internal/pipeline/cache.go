package pipeline

import (
	"sync"
)

// cacheShards is the number of independent locks in a Cache. Sharding keeps
// goroutines scanning different archives from contending on one mutex; the
// count is a power of two so the shard index is a cheap mask.
const cacheShards = 64

// Cache is a sharded, exactly-once memoization map keyed by string. Do
// guarantees that the compute function for a given key runs exactly once no
// matter how many goroutines ask for it concurrently — the analogue of how
// VirusTotal deduplicates submissions by file hash — and every caller gets
// the same value back.
type Cache[V any] struct {
	shards [cacheShards]cacheShard[V]
}

type cacheShard[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry[V])
	}
	return c
}

// Do returns the cached value for key, running compute to produce it if this
// is the first request. Concurrent callers for the same key block until the
// single compute finishes and then share its result.
func (c *Cache[V]) Do(key string, compute func() V) V {
	// Inline FNV-1a: hash.Hash32 would heap-allocate on every call of the
	// per-listing hot path.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	shard := &c.shards[h&(cacheShards-1)]

	shard.mu.Lock()
	e, ok := shard.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		shard.entries[key] = e
	}
	shard.mu.Unlock()

	e.once.Do(func() { e.val = compute() })
	return e.val
}

// Len returns the number of distinct keys computed or in flight.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
